// Package repro is a rule-management platform for semantics-intensive Big
// Data systems, reproducing "Why Big Data Industrial Systems Need Rules and
// What We Can Do About It" (SIGMOD 2015).
//
// The package is a documented facade over the implementation packages in
// internal/; examples/ and cmd/ build exclusively against it. The main entry
// points:
//
//   - Rules: NewWhitelist / NewBlacklist / NewGate / NewAttrExists /
//     NewAttrValue / NewFilter construct analyst rules; NewRulebase manages
//     them with versioning, scale-down/up and an audit log.
//   - Execution: NewIndexedExecutor / NewSequentialExecutor evaluate rules
//     over items; ExecuteBatch shards a batch across workers.
//   - The pipeline: NewPipeline assembles the Chimera architecture
//     (Figure 2): Gate Keeper → rule, attribute and learned classifiers →
//     Voting Master → Filter, plus the crowd-evaluation / analyst-repair
//     loop.
//   - Tools: NewSynonymTool is the §5.1 synonym finder; GenerateRules is
//     the §5.2 rule miner (AprioriAll + Greedy-Biased selection).
//   - Evaluation: EvaluateWithValidationSet / EvaluatePerRule /
//     EvaluateModule are the three §4 quality-evaluation methods.
//   - Maintenance: FindSubsumed / FindDuplicates / FindOverlaps / FindStale
//     / ConsolidateWhitelists are the §4 maintenance analyses.
//   - Substrates: NewCatalog generates the synthetic product feed; NewCrowd
//     and NewAnalyst simulate the human layer; the em, ie, kb and social
//     capabilities of §6 are re-exported under their own names.
package repro

import (
	"repro/internal/catalog"
	"repro/internal/chimera"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/em"
	"repro/internal/evaluate"
	"repro/internal/faultinject"
	"repro/internal/ie"
	"repro/internal/kb"
	"repro/internal/learn"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/opshttp"
	"repro/internal/pattern"
	"repro/internal/persist"
	"repro/internal/randx"
	"repro/internal/serve"
	"repro/internal/social"
	"repro/internal/synonym"
)

// --- Rule model and management (internal/core) -----------------------------

type (
	// Rule is one managed classification rule (whitelist, blacklist, gate,
	// attribute, or filter).
	Rule = core.Rule
	// Rulebase is the versioned, auditable rule repository.
	Rulebase = core.Rulebase
	// RuleKind enumerates rule families.
	RuleKind = core.Kind
	// Guard is an attribute-side rule condition (§4's language extension:
	// "title contains Apple AND price < 100").
	Guard = core.Guard
	// Verdict is the outcome of executing a rule set on an item.
	Verdict = core.Verdict
	// Executor evaluates rule sets against items.
	Executor = core.Executor
	// RuleIndex locates the rules likely to match an item.
	RuleIndex = core.RuleIndex
	// BatchMatcher evaluates a rule index against whole batches via the
	// batch-inverted join (§5.3 set-oriented execution).
	BatchMatcher = core.BatchMatcher
	// BatchApplier is the batch-at-a-time counterpart of Executor.
	BatchApplier = core.BatchApplier
	// DataIndex locates the items a rule is likely to match.
	DataIndex = core.DataIndex
	// SubsumedPair, DuplicatePair, OverlapPair and StaleRule are the
	// maintenance findings of §4.
	SubsumedPair  = core.SubsumedPair
	DuplicatePair = core.DuplicatePair
	OverlapPair   = core.OverlapPair
	StaleRule     = core.StaleRule
	// Consolidation is a merge of several whitelist rules.
	Consolidation = core.Consolidation
	// DevSession is the indexed rule-development loop of §4.
	DevSession = core.DevSession
	// DevReport is one rule attempt's feedback.
	DevReport = core.DevReport
	// RetargetProposal suggests successor rules after a taxonomy split.
	RetargetProposal = core.RetargetProposal
)

// Rule kinds.
const (
	Whitelist  = core.Whitelist
	Blacklist  = core.Blacklist
	AttrExists = core.AttrExists
	AttrValue  = core.AttrValue
	Gate       = core.Gate
	Filter     = core.Filter
	// TypeRestrict constrains an item's admissible types by title pattern.
	TypeRestrict = core.TypeRestrict
)

// Rule constructors.
var (
	NewWhitelist    = core.NewWhitelist
	NewBlacklist    = core.NewBlacklist
	NewGate         = core.NewGate
	NewAttrExists   = core.NewAttrExists
	NewAttrValue    = core.NewAttrValue
	NewFilter       = core.NewFilter
	NewTypeRestrict = core.NewTypeRestrict
	NewRulebase     = core.NewRulebase
	NewDevSession   = core.NewDevSession
)

// Execution.
var (
	NewSequentialExecutor    = core.NewSequentialExecutor
	NewIndexedExecutor       = core.NewIndexedExecutor
	NewIndexedExecutorWithDF = core.NewIndexedExecutorWithDF
	NewRuleIndex             = core.NewRuleIndex
	NewDataIndex             = core.NewDataIndex
	NewBatchMatcher          = core.NewBatchMatcher
	ExecuteBatch             = core.ExecuteBatch
	ExecuteBatchItemwise     = core.ExecuteBatchItemwise
	TokenDF                  = core.TokenDF
	CheckOrderIndependence   = core.CheckOrderIndependence
	FindConflicts            = core.FindConflicts
)

// Maintenance analyses.
var (
	FindSubsumed          = core.FindSubsumed
	FindDuplicates        = core.FindDuplicates
	FindOverlaps          = core.FindOverlaps
	FindStale             = core.FindStale
	ConsolidateWhitelists = core.ConsolidateWhitelists
	SplitConsolidated     = core.SplitConsolidated
	ProposeRetarget       = core.ProposeRetarget
)

// --- Pattern language (internal/pattern) -----------------------------------

type (
	// Pattern is a compiled analyst rule pattern.
	Pattern = pattern.Pattern
	// SynMatch is one \syn-slot match with its context windows.
	SynMatch = pattern.SynMatch
)

var (
	// ParsePattern compiles the analyst pattern dialect (rings?,
	// (motor | engine) oils?, diamond.*trio sets?, …).
	ParsePattern = pattern.Parse
	// MustParsePattern panics on error; for static patterns.
	MustParsePattern = pattern.MustParse
	// Subsumes reports provable pattern subsumption.
	Subsumes = pattern.Subsumes
)

// --- Chimera pipeline (internal/chimera) -----------------------------------

type (
	// Pipeline is the Figure-2 classification system.
	Pipeline = chimera.Pipeline
	// PipelineConfig parameterizes it.
	PipelineConfig = chimera.Config
	// Decision is the pipeline's per-item output.
	Decision = chimera.Decision
	// BatchResult aggregates a processed batch.
	BatchResult = chimera.BatchResult
	// ImproveReport summarizes one evaluation/repair round.
	ImproveReport = chimera.ImproveReport
	// OnboardReport summarizes a §2.2 scale-up round over declined items.
	OnboardReport = chimera.OnboardReport
	// RestoreToken undoes a type scale-down.
	RestoreToken = chimera.RestoreToken
)

// NewPipeline assembles a pipeline with the standard ensemble.
var NewPipeline = chimera.New

// --- Learning (internal/learn) ----------------------------------------------

type (
	// Classifier is the train/predict contract.
	Classifier = learn.Classifier
	// Prediction is one ranked class guess.
	Prediction = learn.Prediction
	// Ensemble combines classifiers by weighted vote.
	Ensemble = learn.Ensemble
)

var (
	NewNaiveBayes = learn.NewNaiveBayes
	NewKNN        = learn.NewKNN
	NewPerceptron = learn.NewPerceptron
	NewEnsemble   = learn.NewEnsemble
)

// --- Tools (internal/synonym, internal/mining) ------------------------------

type (
	// SynonymTool is one §5.1 expansion session.
	SynonymTool = synonym.Tool
	// SynonymOptions configures it.
	SynonymOptions = synonym.Options
	// SynonymSessionStats summarizes a completed session.
	SynonymSessionStats = synonym.SessionStats
	// SynonymOracle answers accept/reject for candidates.
	SynonymOracle = synonym.Oracle
	// MiningOptions configures §5.2 rule generation.
	MiningOptions = mining.Options
	// MiningResult is its output.
	MiningResult = mining.Result
	// MiningCandidate is one generated rule with confidence and coverage.
	MiningCandidate = mining.Candidate
)

var (
	NewSynonymTool    = synonym.NewTool
	RunSynonymSession = synonym.RunSession
	GenerateRules     = mining.GenerateRules
	FrequentSequences = mining.FrequentSequences
	GreedySelect      = mining.Greedy
	GreedyBiased      = mining.GreedyBiased
)

// --- Evaluation (internal/evaluate) -----------------------------------------

type (
	// RulePrecision is one rule's estimated precision.
	RulePrecision = evaluate.RulePrecision
	// PerRuleResult is the method-2 outcome.
	PerRuleResult = evaluate.PerRuleResult
	// ModuleResult is the method-3 outcome.
	ModuleResult = evaluate.ModuleResult
	// ImpactTracker alerts on impactful un-evaluated rules.
	ImpactTracker = evaluate.ImpactTracker
)

var (
	EvaluateWithValidationSet = evaluate.WithValidationSet
	EvaluatePerRule           = evaluate.PerRule
	EvaluateModule            = evaluate.Module
	HeadTailSplit             = evaluate.HeadTailSplit
	NewImpactTracker          = evaluate.NewImpactTracker
	ValidateRule              = evaluate.ValidateRule
)

// --- Substrates (internal/catalog, internal/crowd, internal/randx) -----------

type (
	// Catalog generates the synthetic product feed.
	Catalog = catalog.Catalog
	// CatalogConfig parameterizes it.
	CatalogConfig = catalog.Config
	// Item is one product record (Figure 1).
	Item = catalog.Item
	// BatchSpec describes one incoming batch.
	BatchSpec = catalog.BatchSpec
	// TypeSpec is one product type's vocabulary.
	TypeSpec = catalog.TypeSpec
	// Crowd is the budgeted worker-pool simulator.
	Crowd = crowd.Crowd
	// CrowdConfig parameterizes it.
	CrowdConfig = crowd.Config
	// Analyst is a single high-accuracy oracle.
	Analyst = crowd.Analyst
	// Rand is the deterministic splittable RNG.
	Rand = randx.Rand
)

var (
	NewCatalog = catalog.New
	NewCrowd   = crowd.New
	NewAnalyst = crowd.NewAnalyst
	NewRand    = randx.New
)

// --- §6 sister systems (internal/em, internal/ie, internal/kb, internal/social)

type (
	// EMRule is a conjunction of match predicates.
	EMRule = em.Rule
	// EMRuleSet is a disjunction of EM rules.
	EMRuleSet = em.RuleSet
	// EMPair is a labeled record pair.
	EMPair = em.Pair
	// EMMetrics scores a rule set on labeled pairs.
	EMMetrics = em.Metrics
	// IEExtractor bundles IE rules with normalizers.
	IEExtractor = ie.Extractor
	// IEExtraction is one extracted attribute value.
	IEExtraction = ie.Extraction
	// KB is a built knowledge base.
	KB = kb.KB
	// CurationLog is the replayable analyst-edit log.
	CurationLog = kb.CurationLog
	// CurationRule is one captured edit.
	CurationRule = kb.CurationRule
	// Tagger is the entity-mention pipeline.
	Tagger = social.Tagger
	// EventMonitor is the Tweetbeat-style display monitor.
	EventMonitor = social.Monitor
	// SocialEvent is one monitored event.
	SocialEvent = social.Event
)

var (
	NewEMRule         = em.NewRule
	EMAttrEquals      = em.AttrEquals
	EMQGramJaccard    = em.QGramJaccard
	EMTokenJaccard    = em.TokenJaccard
	EMNumericWithin   = em.NumericWithin
	EvaluateEM        = em.Evaluate
	GenerateEMPairs   = em.GeneratePairs
	NewEMBlocker      = em.NewBlocker
	EMMatchCorpus     = em.MatchCorpus
	EMClusters        = em.Clusters
	EMNot             = em.Not
	EMPredicatePool   = em.DefaultPredicatePool
	EMLabelPairs      = em.LabelPairs
	EMInduceRules     = em.InduceRules
	NewIEDictRule     = ie.NewDictRule
	NewIERuleset      = ie.NewRuleset
	NewIENormalizer   = ie.NewNormalizer
	NewIETokenTagger  = ie.NewTokenTagger
	EvaluateIE        = ie.EvaluateExtractor
	BuildKB           = kb.Build
	SyntheticKBSource = kb.SyntheticSource
	NewTagger         = social.NewTagger
	NewEventMonitor   = social.NewMonitor
	NewTweetStream    = social.NewStream
)

// --- Observability (internal/obs, instrumentation in core and chimera) ------

type (
	// Metrics is a registry of counters, gauges and latency histograms with
	// atomic hot paths; Snapshot() round-trips through JSON and renders
	// Prometheus text exposition.
	Metrics = obs.Registry
	// MetricsSnapshot is a frozen, serializable registry.
	MetricsSnapshot = obs.Snapshot
	// Tracer records per-stage span trees (the -profile timing output).
	Tracer = obs.Tracer
	// Span is one timed pipeline stage.
	Span = obs.Span
	// InstrumentedExecutor decorates an executor with per-rule hit counts,
	// index selectivity and per-Apply latency; verdicts are identical to
	// the wrapped executor's.
	InstrumentedExecutor = core.InstrumentedExecutor
	// RuleHealth is one rule's telemetry-derived health record (never-fired,
	// always-vetoed, low-precision).
	RuleHealth = core.RuleHealth
	// HealthAction is a telemetry-derived maintenance recommendation.
	HealthAction = core.HealthAction
	// BatchProfile is the per-batch operational profile (items/sec, decline
	// rate, queue depth, per-stage decision counts).
	BatchProfile = chimera.BatchProfile
	// AuditLog is the decision-provenance ring: a lock-free, fixed-capacity,
	// sampled log of per-item DecisionRecords with always-capture bias for
	// declines, degraded service and errors.
	AuditLog = obs.AuditLog
	// AuditConfig parameterizes an AuditLog (capacity, sample stride).
	AuditConfig = obs.AuditConfig
	// DecisionRecord is one item's decision provenance: request ID, snapshot
	// version, path taken, rules fired/vetoed, stage latencies and outcome.
	DecisionRecord = obs.DecisionRecord
	// StageLatency is one named stage duration inside a DecisionRecord.
	StageLatency = obs.StageLatency
	// OpsServer is the embeddable live-ops HTTP surface (/metrics, /healthz,
	// /readyz, /decisions, /snapshot, /debug/pprof).
	OpsServer = opshttp.Server
	// OpsOptions wires an OpsServer to the process's observability state.
	OpsOptions = opshttp.Options
	// OpsHealthStatus is one health-probe result.
	OpsHealthStatus = opshttp.HealthStatus
	// OpsSnapshotInfo describes the active rule set for /snapshot.
	OpsSnapshotInfo = opshttp.SnapshotInfo
)

// Decision-provenance paths and outcomes (DecisionRecord vocabulary).
const (
	DecisionPathPerItem    = obs.PathPerItem
	DecisionPathBatchGate  = obs.PathBatchGate
	DecisionPathClassifier = obs.PathClassifier
	DecisionPathDegraded   = obs.PathDegraded
	DecisionPathCrowd      = obs.PathCrowd
	DecisionPathManual     = obs.PathManual
	DecisionPathServe      = obs.PathServe

	DecisionOutcomeClassified = obs.OutcomeClassified
	DecisionOutcomeDeclined   = obs.OutcomeDeclined
	DecisionOutcomeShed       = obs.OutcomeShed
	DecisionOutcomeDrain      = obs.OutcomeDrain
	DecisionOutcomeExpired    = obs.OutcomeExpired
	DecisionOutcomeVerified   = obs.OutcomeVerified
	DecisionOutcomeFlagged    = obs.OutcomeFlagged
	DecisionOutcomeLabeled    = obs.OutcomeLabeled
)

// --- Serving layer (internal/serve) ------------------------------------------

type (
	// ServeSnapshot is an immutable, pre-built view of the active rules at
	// one rulebase version: lock-free to read, never torn.
	ServeSnapshot = serve.Snapshot
	// ServeEngine owns the current snapshot and keeps it fresh — either
	// synchronously and version-cached (Acquire) or via the async
	// rebuild-and-swap loop (Start/Current).
	ServeEngine = serve.Engine
	// ServeEngineOptions parameterizes a ServeEngine.
	ServeEngineOptions = serve.EngineOptions
	// ServeOptions parameterizes a Server (workers, queue depth).
	ServeOptions = serve.ServerOptions
	// Server is the concurrent serving frontend instantiated by
	// Pipeline.NewServer: bounded queue, worker pool, explicit shed and
	// graceful drain. Each batch is classified under one snapshot.
	Server = serve.Server[chimera.Decision]
	// ServeTicket is the caller's handle on a submitted batch.
	ServeTicket = serve.Ticket[chimera.Decision]
	// ServeRetrier wraps Submit with capped exponential backoff and full
	// jitter for queue-full sheds.
	ServeRetrier = serve.Retrier[chimera.Decision]
	// ServeRetryOptions parameterizes a ServeRetrier.
	ServeRetryOptions = serve.RetryOptions
	// ResilientClient is the failure-aware pipeline frontend: deadline
	// propagation, retry/backoff, and gate-only degraded fallback
	// (Pipeline.NewResilientClient).
	ResilientClient = chimera.ResilientClient
	// ResilienceOptions parameterizes a ResilientClient.
	ResilienceOptions = chimera.ResilienceOptions
	// ShardedServer is the scatter-gather serving tier instantiated by
	// Pipeline.NewShardedServer: a consistent-hash router over N independent
	// per-shard engines and servers, each with its own queue, snapshot
	// lifecycle, retry budget and degraded state.
	ShardedServer = serve.ShardedServer[chimera.Decision]
	// ShardedOptions parameterizes a ShardedServer.
	ShardedOptions = serve.ShardedOptions
	// ShardedTicket is the caller's handle on one scatter-gather submission.
	ShardedTicket = serve.ShardedTicket[chimera.Decision]
	// GatherResult is a merged scatter-gather resolution (per-item verdicts,
	// errors, snapshots and shard assignments, in submission order).
	GatherResult = serve.GatherResult[chimera.Decision]
	// ShardRouter is the consistent-hash key → shard ring.
	ShardRouter = serve.ShardRouter
	// ShardStatus is one shard's live state (ShardedServer.ShardStatuses).
	ShardStatus = serve.ShardStatus
	// RouteKeyFunc extracts an item's shard routing key.
	RouteKeyFunc = serve.RouteKeyFunc
	// OpsShardHealth is one shard's health inside a sharded OpsHealthStatus
	// (drives /readyz per-shard aggregation).
	OpsShardHealth = opshttp.ShardHealth
	// VerdictCache is the snapshot-versioned, single-flight verdict cache
	// (serve.VerdictCache) owned by an engine and served through
	// Snapshot.ApplyCached.
	VerdictCache = serve.VerdictCache
	// VerdictCacheConfig sizes a VerdictCache (serve.EngineOptions.Cache /
	// ShardedOptions.Cache / ChimeraConfig.CacheCapacity).
	VerdictCacheConfig = serve.CacheConfig
	// VerdictCacheStats is a point-in-time cache counter snapshot.
	VerdictCacheStats = serve.CacheStats
	// FaultInjector is the deterministic, seeded fault-injection source for
	// chaos drills (handler latency, rebuild stalls/failures, crowd faults).
	FaultInjector = faultinject.Injector
	// FaultConfig parameterizes a FaultInjector.
	FaultConfig = faultinject.Config
)

var (
	// NewServeEngine builds the snapshot engine for a standalone rulebase
	// (pipelines get one automatically; see Pipeline.Snapshots).
	NewServeEngine = serve.NewEngine
	// NewServeRetrier wraps a pipeline Server in retry/backoff.
	NewServeRetrier = serve.NewRetrier[chimera.Decision]
	// BuildServeSnapshot builds an immutable serving snapshot of a rulebase's
	// active rules directly (engines do this internally; exposed for restart
	// drills and tests that compare verdicts byte for byte).
	BuildServeSnapshot = serve.BuildSnapshot
	// NewVerdictCache builds a standalone verdict cache (engines build their
	// own from EngineOptions.Cache; this is for tests and tooling).
	NewVerdictCache = serve.NewVerdictCache
	// NewFaultInjector builds a seeded fault injector.
	NewFaultInjector = faultinject.New
	// ErrServeQueueFull is Submit's explicit-shed error.
	ErrServeQueueFull = serve.ErrQueueFull
	// ErrServeShutdown is returned by Submit after shutdown began.
	ErrServeShutdown = serve.ErrShutdown
	// ErrServeDeclined resolves tickets declined by an expiring drain.
	ErrServeDeclined = serve.ErrDeclined
	// ErrServeRetryBudget is returned when a retrier's lifetime budget is
	// exhausted; it unwraps to ErrServeQueueFull.
	ErrServeRetryBudget = serve.ErrRetryBudget
	// ErrServePartial marks a scatter batch that resolved with a mix of
	// served and failed items (see GatherResult.Errs).
	ErrServePartial = serve.ErrPartial
	// NewShardRouter builds a standalone consistent-hash ring (ShardedServer
	// builds its own; this is for tests and capacity planning).
	NewShardRouter = serve.NewShardRouter
	// WithShard / ShardFromContext annotate handler contexts with the shard
	// index (ShardFromContext returns -1 outside a ShardedServer).
	WithShard        = serve.WithShard
	ShardFromContext = serve.ShardFromContext
	// ErrFaultInjected marks every injected failure (errors.Is-matchable).
	ErrFaultInjected = faultinject.ErrInjected
	// ErrCrowdNoAnswers is returned when every crowd assignment for a task
	// was lost to timeouts or no-shows.
	ErrCrowdNoAnswers = crowd.ErrNoAnswers
	// CrowdFloat makes a *float64 for CrowdConfig's pointer-typed knobs
	// (explicit zero accuracy/spread is distinct from unset).
	CrowdFloat = crowd.Float
)

// Serving-layer metric names (in the pipeline's Obs registry).
const (
	MetricServeSnapshotSwaps   = serve.MetricSnapshotSwaps
	MetricServeQueueDepth      = serve.MetricQueueDepth
	MetricServeShed            = serve.MetricShed
	MetricServeBatches         = serve.MetricBatches
	MetricServeItems           = serve.MetricItems
	MetricServeDeclined        = serve.MetricDeclined
	MetricServeDeadlineExpired = serve.MetricDeadlineExpired
	MetricServeRetryAttempts   = serve.MetricRetryAttempts
	MetricServeRetrySuccess    = serve.MetricRetrySuccess
	MetricServeRetryGiveUp     = serve.MetricRetryGiveUp
	MetricServeBuildErrors     = serve.MetricBuildErrors
	MetricServeDegraded        = serve.MetricDegraded
	MetricServeCacheHits       = serve.MetricCacheHits
	MetricServeCacheMisses     = serve.MetricCacheMisses
	MetricServeCacheCoalesced  = serve.MetricCacheCoalesced
	MetricServeCacheEvictions  = serve.MetricCacheEvictions
	MetricServeCacheStaleDrops = serve.MetricCacheStaleDrops
	MetricServeCacheSize       = serve.MetricCacheSize
	MetricDegradedItems        = chimera.MetricDegradedItems
	MetricDegradedBatches      = chimera.MetricDegradedBatches
)

// Sharded serving-tier metric names: the serve_shard_* families carry a
// "shard" label; serve_scatter_* describe whole scatter-gather batches.
const (
	MetricServeShardRouted     = serve.MetricShardRouted
	MetricServeShardServed     = serve.MetricShardServed
	MetricServeShardShed       = serve.MetricShardShed
	MetricServeShardExpired    = serve.MetricShardExpired
	MetricServeShardDeclined   = serve.MetricShardDeclined
	MetricServeShardRejected   = serve.MetricShardRejected
	MetricServeShardQueueDepth = serve.MetricShardQueueDepth
	MetricServeShardQueueCap   = serve.MetricShardQueueCap
	MetricServeShardVersion    = serve.MetricShardVersion
	MetricServeShardDegraded   = serve.MetricShardDegraded
	MetricServeScatterBatches  = serve.MetricScatterBatches
	MetricServeScatterItems    = serve.MetricScatterItems
	MetricServeScatterPartial  = serve.MetricScatterPartial
	MetricServeScatterFanout   = serve.MetricScatterFanout
)

// --- Durable rulebase (internal/persist) -------------------------------------

type (
	// PersistStore is the durable rulebase store: a CRC-framed write-ahead
	// log of rule mutations plus periodic compacted snapshots, with
	// crash-safe valid-prefix recovery (OpenPersist → Restore → Attach).
	PersistStore = persist.Store
	// PersistOptions parameterizes OpenPersist (directory, fsync policy,
	// snapshot cadence, metrics registry, fault injector).
	PersistOptions = persist.Options
	// PersistRestoreStats summarizes one Restore (snapshot version, WAL
	// records replayed, final version).
	PersistRestoreStats = persist.RestoreStats
	// WALRecord is one decoded write-ahead-log entry.
	WALRecord = persist.Record
	// RulebaseChange is one applyable rulebase mutation — the change-feed
	// payload (Rulebase.SubscribeChanges) the WAL persists and
	// Rulebase.ApplyChange replays.
	RulebaseChange = core.Change
)

var (
	// OpenPersist opens (or creates) a durable store directory.
	OpenPersist = persist.Open
	// ExportDecisions writes the audit ring's newest n decision records to a
	// file as NDJSON, atomically (temp + rename).
	ExportDecisions = persist.ExportDecisions
	// WriteDecisionsNDJSON streams decision records to a writer as NDJSON.
	WriteDecisionsNDJSON = persist.WriteDecisionsNDJSON
	// ErrPersistTornWrite marks a store killed by a torn WAL append; reopen
	// to recover the valid prefix.
	ErrPersistTornWrite = persist.ErrTornWrite
	// ErrPersistShortRead marks a store that saw a truncated WAL read at
	// open: restores serve the valid prefix, writes are refused.
	ErrPersistShortRead = persist.ErrShortRead
)

// Persistence metric names (persist_*, in the store's Obs registry).
const (
	MetricPersistWALAppends      = persist.MetricWALAppends
	MetricPersistWALBytes        = persist.MetricWALBytes
	MetricPersistFsyncSeconds    = persist.MetricFsyncSeconds
	MetricPersistSnapshots       = persist.MetricSnapshots
	MetricPersistSnapshotBytes   = persist.MetricSnapshotBytes
	MetricPersistSnapshotSeconds = persist.MetricSnapshotSeconds
	MetricPersistReplayed        = persist.MetricReplayed
	MetricPersistRestores        = persist.MetricRestores
	MetricPersistTornTails       = persist.MetricTornTails
)

var (
	// NewMetrics returns an empty metric registry.
	NewMetrics = obs.NewRegistry
	// DefaultMetrics is the process-wide registry, dumped by the CLIs.
	DefaultMetrics = obs.Default
	// NewTracer returns an empty span tracer.
	NewTracer = obs.NewTracer
	// NewInstrumentedExecutor wraps an executor with telemetry.
	NewInstrumentedExecutor = core.NewInstrumentedExecutor
	// PlanHealthActions turns a RuleHealth report into maintenance actions.
	PlanHealthActions = core.PlanHealthActions
	// LatencyBuckets is the default latency histogram layout (seconds).
	LatencyBuckets = obs.LatencyBuckets
	// NewAuditLog builds a decision-provenance ring (see AuditConfig; a
	// negative Capacity disables capture entirely).
	NewAuditLog = obs.NewAuditLog
	// FormatDecisionBreakdown renders an AuditLog.Breakdown() as the aligned
	// path × outcome table the CLI prints.
	FormatDecisionBreakdown = obs.FormatBreakdown
	// NewOpsServer assembles the live-ops HTTP surface (not yet listening;
	// call Start).
	NewOpsServer = opshttp.New
	// WithRequestID / RequestIDFrom / NewRequestID propagate decision
	// provenance request IDs through context.Context.
	WithRequestID = obs.WithRequestID
	RequestIDFrom = obs.RequestID
	NewRequestID  = obs.NewRequestID
)
