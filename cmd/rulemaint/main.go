// Command rulemaint runs the §4 maintenance analyses over a rulebase:
// subsumption, duplicates, significant overlaps, staleness against a fresh
// corpus, consolidation candidates, and taxonomy-split retargeting. It
// consumes a rulebase JSON written by `rulegen -o` (or builds a demo
// rulebase when none is given) and can apply the safe cleanups with -apply.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/experiments"
)

func main() {
	var (
		in         = flag.String("in", "", "rulebase JSON (from rulegen -o); empty builds a demo rulebase")
		seed       = flag.Uint64("seed", 42, "deterministic seed")
		types      = flag.Int("types", 100, "taxonomy size for the corpus")
		corpusSize = flag.Int("corpus", 5000, "fresh-corpus size for coverage analyses")
		overlapThr = flag.Float64("overlap", 0.4, "significant-overlap Jaccard threshold")
		apply      = flag.Bool("apply", false, "retire subsumed/duplicate/stale rules")
		out        = flag.String("o", "", "write the (possibly cleaned) rulebase JSON here")
		persistDir = flag.String("persist-dir", "", "durable rulebase store directory: restore the rulebase from it (unless -in overrides), write-ahead-log every maintenance mutation, and compact a snapshot at exit")
	)
	flag.Parse()

	cat := repro.NewCatalog(repro.CatalogConfig{Seed: *seed, NumTypes: *types})
	rb := repro.NewRulebase()
	var store *repro.PersistStore
	restored := false
	if *persistDir != "" {
		st, err := repro.OpenPersist(repro.PersistOptions{Dir: *persistDir, Fsync: true})
		if err != nil {
			fatal("persist: %v", err)
		}
		if *in == "" {
			// Restore before Attach; an -in file instead wins over the store
			// (Attach re-baselines the store to the file's state below).
			stats, err := st.Restore(rb)
			if err != nil {
				fatal("persist restore: %v", err)
			}
			if stats.Version > 0 {
				restored = true
				fmt.Printf("persist: restored rulebase version %d from %s (snapshot v%d + %d WAL records replayed)\n",
					stats.Version, *persistDir, stats.SnapshotVersion, stats.Replayed)
			}
		}
		store = st
	}
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fatal("reading %s: %v", *in, err)
		}
		if err := json.Unmarshal(data, rb); err != nil {
			fatal("parsing %s: %v", *in, err)
		}
	} else if !restored {
		if err := experiments.SeedRules(cat, rb, "ana"); err != nil {
			fatal("seeding: %v", err)
		}
		// Demo redundancy: the paper's motifs.
		demo := []func() (*repro.Rule, error){
			func() (*repro.Rule, error) { return repro.NewWhitelist("jeans?", "jeans") },
			func() (*repro.Rule, error) { return repro.NewWhitelist("denim.*jeans?", "jeans") },
			func() (*repro.Rule, error) { return repro.NewWhitelist("jeans?", "jeans") },
			func() (*repro.Rule, error) { return repro.NewWhitelist("pants?", "pants") },
		}
		for _, mk := range demo {
			if r, err := mk(); err == nil {
				_, _ = rb.Add(r, "ana2")
			}
		}
	}
	if store != nil {
		// From here on every retire/add/retarget is write-ahead-logged; if the
		// rulebase came from -in or the seed, Attach baselines the store first.
		if err := store.Attach(rb); err != nil {
			fatal("persist attach: %v", err)
		}
	}
	fmt.Printf("rulebase: %d rules\n", rb.Len())

	corpus := cat.GenerateBatch(repro.BatchSpec{Size: *corpusSize, Epoch: 1})
	di := repro.NewDataIndex(corpus)
	active := rb.Active()

	retire := func(id, why string) {
		if *apply {
			if err := rb.Retire(id, "rulemaint", why); err == nil {
				fmt.Printf("    retired %s (%s)\n", id, why)
			}
		}
	}

	subs := repro.FindSubsumed(active)
	fmt.Printf("\nsubsumed pairs: %d\n", len(subs))
	for i, p := range subs {
		if i < 10 {
			fmt.Printf("  %s ⊂ %s (target %s)\n", rb.Get(p.SpecificID).Source, rb.Get(p.GeneralID).Source, p.TargetType)
		}
		retire(p.SpecificID, "subsumed by "+p.GeneralID)
	}

	dups := repro.FindDuplicates(rb.Active())
	fmt.Printf("duplicate pairs: %d\n", len(dups))
	for _, d := range dups {
		retire(d.DropID, "duplicate of "+d.KeepID)
	}

	overlaps := repro.FindOverlaps(rb.Active(), di, *overlapThr)
	fmt.Printf("significant overlaps (J ≥ %.2f): %d\n", *overlapThr, len(overlaps))
	for i, o := range overlaps {
		if i < 10 {
			fmt.Printf("  %s ~ %s (J=%.2f, %d shared items) — review\n",
				rb.Get(o.AID).Source, rb.Get(o.BID).Source, o.Jaccard, o.SharedItems)
		}
	}

	valid := map[string]bool{}
	for _, ty := range cat.Types() {
		valid[ty.Name] = true
	}
	stale := repro.FindStale(rb.Active(), di, valid)
	fmt.Printf("stale rules: %d\n", len(stale))
	for i, s := range stale {
		if i < 10 {
			fmt.Printf("  %s — %s\n", rb.Get(s.RuleID).String(), s.Reason)
		}
		retire(s.RuleID, s.Reason)
	}

	// Taxonomy-split retargeting for dead targets still active.
	dead := map[string]bool{}
	for _, r := range rb.Active() {
		if r.TargetType != "" && !valid[r.TargetType] {
			dead[r.TargetType] = true
		}
	}
	if len(dead) > 0 {
		props := repro.ProposeRetarget(rb.Active(), di, dead, 0.2)
		fmt.Printf("retarget proposals: %d\n", len(props))
		for _, p := range props {
			fmt.Printf("  %s →", rb.Get(p.OldRuleID).Source)
			for _, nr := range p.NewRules {
				fmt.Printf(" %q", nr.TargetType)
			}
			fmt.Println()
			if *apply {
				for _, nr := range p.NewRules {
					_, _ = rb.Add(nr, "rulemaint")
				}
				retire(p.OldRuleID, "taxonomy split")
			}
		}
	}

	cons := repro.ConsolidateWhitelists(rb.Active())
	fmt.Printf("consolidation candidates: %d (analyst trade-off — not auto-applied)\n", len(cons))

	if *apply {
		fmt.Printf("\nafter cleanup: %+v\n", rb.Stats().ByStatus)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rb, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal("write: %v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if store != nil {
		if err := store.Snapshot(); err != nil {
			fatal("persist snapshot: %v", err)
		}
		if err := store.Close(); err != nil {
			fatal("persist close: %v", err)
		}
		fmt.Printf("persist: rulebase version %d durable in %s\n", rb.Version(), *persistDir)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
