// Command ruleeval runs the three §4 rule-quality evaluation methods over a
// generated rulebase and compares their coverage and crowd cost — the
// economics that make rule evaluation "a major challenge in industry".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/experiments"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 42, "deterministic seed")
		types      = flag.Int("types", 100, "taxonomy size")
		corpusSize = flag.Int("corpus", 5000, "evaluation corpus size")
		validation = flag.Int("validation", 600, "labeled validation-set size (method 1)")
		perRule    = flag.Int("sample", 15, "crowd sample size per rule (method 2)")
	)
	flag.Parse()

	cat := repro.NewCatalog(repro.CatalogConfig{Seed: *seed, NumTypes: *types})
	rb := repro.NewRulebase()
	if err := experiments.SeedRules(cat, rb, "ana"); err != nil {
		fmt.Fprintf(os.Stderr, "seeding: %v\n", err)
		os.Exit(1)
	}
	labeled := cat.LabeledData(4000)
	mined, err := repro.GenerateRules(labeled, repro.MiningOptions{MinSupport: 0.05, MaxRulesPerType: 3})
	if err == nil {
		for _, r := range mined.Selected() {
			clone, cerr := repro.NewWhitelist(r.Source, r.TargetType)
			if cerr == nil {
				clone.Confidence = r.Confidence
				clone.Provenance = "mined"
				_, _ = rb.Add(clone, "rulegen")
			}
		}
	}
	rules := rb.Active()
	corpus := cat.GenerateBatch(repro.BatchSpec{Size: *corpusSize, Epoch: 0})
	valSet := cat.GenerateBatch(repro.BatchSpec{Size: *validation, Epoch: 0})
	head, tail := repro.HeadTailSplit(rules, corpus, 25)
	fmt.Printf("rulebase: %d rules (%d head / %d tail at 25 touches)\n\n", len(rules), len(head), len(tail))

	fmt.Printf("%-44s %10s %10s %12s\n", "method", "evaluable", "tail eval", "crowd cost")

	m1 := repro.EvaluateWithValidationSet(rules, valSet)
	e1, t1 := countEvaluable(m1, tail)
	fmt.Printf("%-44s %10d %10d %12d\n", "1: global validation set", e1, t1, 0)

	cr := repro.NewCrowd(repro.CrowdConfig{Seed: *seed + 1})
	m2, err := repro.EvaluatePerRule(rules, corpus, cr, repro.NewRand(*seed+2), *perRule, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "method 2: %v\n", err)
		os.Exit(1)
	}
	e2, t2 := countEvaluable(m2.Precisions, tail)
	fmt.Printf("%-44s %10d %10d %12d\n", "2: per-rule samples (independent)", e2, t2, m2.CrowdQuestions)

	cr2 := repro.NewCrowd(repro.CrowdConfig{Seed: *seed + 1})
	m2s, err := repro.EvaluatePerRule(rules, corpus, cr2, repro.NewRand(*seed+2), *perRule, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "method 2 shared: %v\n", err)
		os.Exit(1)
	}
	e2s, t2s := countEvaluable(m2s.Precisions, tail)
	fmt.Printf("%-44s %10d %10d %12d   (%d verdicts reused)\n",
		"2: per-rule samples (overlap-shared [18])", e2s, t2s, m2s.CrowdQuestions, m2s.Reused)

	cr3 := repro.NewCrowd(repro.CrowdConfig{Seed: *seed + 3})
	m3, err := repro.EvaluateModule(rules, corpus, cr3, repro.NewRand(*seed+4), 150)
	if err != nil {
		fmt.Fprintf(os.Stderr, "method 3: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-44s %10s %10s %12d   (module precision %.3f)\n",
		"3: module-level sample", "—", "—", m3.CrowdQuestions, m3.Precision)

	// Worst rules by method 2.
	fmt.Println("\nlowest-precision evaluable rules (method 2, shared):")
	printed := 0
	for _, r := range rules {
		p, ok := m2s.Precisions[r.ID]
		if !ok || !p.Evaluable || p.Precision > 0.8 {
			continue
		}
		fmt.Printf("  %-60s precision %.2f [%.2f, %.2f]\n", r.String(), p.Precision, p.WilsonLo, p.WilsonHi)
		printed++
		if printed >= 8 {
			break
		}
	}
	if printed == 0 {
		fmt.Println("  (none below 0.80)")
	}
}

func countEvaluable(precs map[string]repro.RulePrecision, tail []*repro.Rule) (total, tailN int) {
	tailSet := map[string]bool{}
	for _, r := range tail {
		tailSet[r.ID] = true
	}
	for id, p := range precs {
		if p.Evaluable {
			total++
			if tailSet[id] {
				tailN++
			}
		}
	}
	return total, tailN
}
