// Command experiments regenerates the paper's quantitative claims (E1–E11,
// see DESIGN.md) and renders the paper-vs-measured report.
//
// Usage:
//
//	experiments -all [-o EXPERIMENTS.md]     run everything
//	experiments -run E3                      run one experiment
//	experiments -list                        list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		all  = flag.Bool("all", false, "run all experiments E1–E11")
		run  = flag.String("run", "", "run a single experiment by ID (e.g. E3)")
		list = flag.Bool("list", false, "list experiment IDs and titles")
		seed = flag.Uint64("seed", 42, "deterministic seed")
		out  = flag.String("o", "", "also write the markdown report to this file")
	)
	flag.Parse()

	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	var reports []*experiments.Report
	switch {
	case *all:
		for _, id := range ids {
			start := time.Now()
			fmt.Fprintf(os.Stderr, "running %s…", id)
			rep := experiments.ByID(id, *seed)
			fmt.Fprintf(os.Stderr, " done in %v (shape ok: %v)\n", time.Since(start).Round(time.Millisecond), rep.ShapeOK)
			reports = append(reports, rep)
		}
	case *run != "":
		rep := experiments.ByID(*run, *seed)
		if rep == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		reports = append(reports, rep)
	default:
		flag.Usage()
		os.Exit(2)
	}

	md := experiments.RenderMarkdown(reports)
	fmt.Print(md)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
