// Command experiments regenerates the paper's quantitative claims (E1–E11,
// see DESIGN.md) and renders the paper-vs-measured report.
//
// Usage:
//
//	experiments -all [-o EXPERIMENTS.md]     run everything
//	experiments -run E3                      run one experiment
//	experiments -list                        list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run all experiments E1–E11")
		run     = flag.String("run", "", "run a single experiment by ID (e.g. E3)")
		list    = flag.Bool("list", false, "list experiment IDs and titles")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
		out     = flag.String("o", "", "also write the markdown report to this file")
		metrics = flag.String("metrics", "", `dump the process metric snapshot after the run: "json" or "prom"`)
		profile = flag.Bool("profile", false, "print the per-experiment timing tree after the run")
	)
	flag.Parse()
	if *metrics != "" && *metrics != "json" && *metrics != "prom" {
		fmt.Fprintf(os.Stderr, "-metrics must be \"json\" or \"prom\", got %q\n", *metrics)
		os.Exit(2)
	}
	tracer := obs.NewTracer()

	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	var reports []*experiments.Report
	switch {
	case *all:
		for _, id := range ids {
			start := time.Now()
			fmt.Fprintf(os.Stderr, "running %s…", id)
			sp := tracer.Start(id)
			rep := experiments.ByID(id, *seed)
			sp.End()
			fmt.Fprintf(os.Stderr, " done in %v (shape ok: %v)\n", time.Since(start).Round(time.Millisecond), rep.ShapeOK)
			reports = append(reports, rep)
		}
	case *run != "":
		sp := tracer.Start(*run)
		rep := experiments.ByID(*run, *seed)
		sp.End()
		if rep == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		reports = append(reports, rep)
	default:
		flag.Usage()
		os.Exit(2)
	}

	md := experiments.RenderMarkdown(reports)
	fmt.Print(md)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *profile {
		fmt.Fprintf(os.Stderr, "\n== experiment timings ==\n%s", tracer.Render())
	}
	if *metrics != "" {
		// Experiments run their pipelines against the process-wide default
		// registry; the snapshot is the aggregate over everything that ran.
		snap := obs.Default().Snapshot()
		fmt.Fprintf(os.Stderr, "\n== metrics ==\n")
		if *metrics == "prom" {
			fmt.Fprint(os.Stderr, snap.PrometheusText())
		} else {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "marshaling metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, string(data))
		}
	}
}
