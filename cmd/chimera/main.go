// Command chimera runs the Figure-2 classification pipeline over a stream of
// generated batches, printing the per-batch precision estimates, decline
// rates and analyst interventions — a miniature of the production system's
// operating log. Batch 3 is a drift episode (late-epoch vocabulary from a
// brand-new vendor) that demonstrates detection, scale-down and repair.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/experiments"
)

// seedRules installs the analyst seed rulebase (see experiments.SeedRules).
func seedRules(cat *repro.Catalog, rb *repro.Rulebase) error {
	return experiments.SeedRules(cat, rb, "ana")
}

func main() {
	var (
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		types     = flag.Int("types", 120, "taxonomy size")
		trainSize = flag.Int("train", 10000, "bootstrap training items")
		batches   = flag.Int("batches", 5, "number of incoming batches")
		batchSize = flag.Int("batch-size", 2000, "items per batch")
		metrics   = flag.String("metrics", "", `dump the metric snapshot after the run: "json" or "prom"`)
		profile   = flag.Bool("profile", false, "print the per-batch stage timing tree after the run")
		health    = flag.Int("health", 0, "print the top-N telemetry-ranked rule-health entries after the run")
	)
	flag.Parse()
	if *metrics != "" && *metrics != "json" && *metrics != "prom" {
		fmt.Fprintf(os.Stderr, "-metrics must be \"json\" or \"prom\", got %q\n", *metrics)
		os.Exit(2)
	}

	cat := repro.NewCatalog(repro.CatalogConfig{Seed: *seed, NumTypes: *types, ZipfS: 1.3})
	p := repro.NewPipeline(repro.PipelineConfig{Seed: *seed})

	fmt.Printf("bootstrapping: %d types, %d training items\n", *types, *trainSize)
	p.Train(cat.LabeledData(*trainSize))
	if err := seedRules(cat, p.Rules); err != nil {
		fmt.Fprintf(os.Stderr, "seeding rules: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("initial state: %s\n\n", p.Describe())
	fmt.Printf("%-8s %-28s %9s %9s %9s %9s  %s\n",
		"batch", "source", "est prec", "true prec", "recall", "declined", "actions")

	for i := 0; i < *batches; i++ {
		spec := repro.BatchSpec{Size: *batchSize, Epoch: i / 2}
		source := fmt.Sprintf("epoch %d mixed vendors", spec.Epoch)
		if i == 3 {
			spec.Epoch, spec.Vendor = 3, "brand-new-vendor"
			source = "epoch 3 NEW vendor (drift)"
		}
		batch := cat.GenerateBatch(spec)
		res := p.ProcessBatch(batch)
		truePrec, rec := res.TruePrecisionRecall()
		rep, err := p.EvaluateAndImprove(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evaluation: %v\n", err)
			os.Exit(1)
		}

		actions := fmt.Sprintf("%d patch rules, %d relabeled", len(rep.NewRuleIDs), rep.Relabeled)
		if !rep.PassedGate {
			// First-responder drill: scale down the degraded types, note it.
			flagged := flaggedDecisions(res)
			degraded := degradedTypes(flagged)
			for _, ty := range degraded {
				if _, err := p.ScaleDownType(ty, "ana", "auto scale-down"); err == nil {
					actions += fmt.Sprintf(", scaled down %q", ty)
				}
			}
		}
		fmt.Printf("%-8d %-28s %9.3f %9.3f %9.3f %9.3f  %s\n",
			i, source, rep.EstPrecision, truePrec, rec, res.DeclineRate(), actions)
	}
	fmt.Printf("\nfinal state: %s\n", p.Describe())
	fmt.Printf("precision history: %v\n", p.PrecisionHistory())

	if *profile {
		fmt.Printf("\n== per-batch stage timings ==\n%s", p.Trace.Render())
	}
	if *health > 0 {
		report := p.RuleHealth(0.92)
		if len(report) > *health {
			report = report[:*health]
		}
		fmt.Printf("\n== rule health (unhealthiest first) ==\n")
		fmt.Printf("%-10s %-14s %8s %10s %6s  %s\n", "rule", "kind", "fired", "effective", "conf", "issues")
		for _, h := range report {
			fmt.Printf("%-10s %-14s %8d %10d %6.2f  %v\n",
				h.RuleID, h.Kind, h.Fired, h.Effective, h.Confidence, h.Issues)
		}
	}
	if *metrics != "" {
		snap := p.Obs.Snapshot()
		fmt.Printf("\n== metrics ==\n")
		if *metrics == "prom" {
			fmt.Print(snap.PrometheusText())
		} else {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "marshaling metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(data))
		}
	}
}

func flaggedDecisions(res *repro.BatchResult) []repro.Decision {
	var out []repro.Decision
	for _, d := range res.Decisions {
		if !d.Declined && d.Type != d.Item.TrueType {
			out = append(out, d)
		}
	}
	return out
}

func degradedTypes(flagged []repro.Decision) []string {
	counts := map[string]int{}
	for _, d := range flagged {
		counts[d.Type]++
	}
	var out []string
	for ty, n := range counts {
		if n >= 10 {
			out = append(out, ty)
		}
	}
	return out
}
