// Command chimera runs the Figure-2 classification pipeline over a stream of
// generated batches, printing the per-batch precision estimates, decline
// rates and analyst interventions — a miniature of the production system's
// operating log. Batch 3 is a drift episode (late-epoch vocabulary from a
// brand-new vendor) that demonstrates detection, scale-down and repair.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
)

// seedRules installs the analyst seed rulebase (see experiments.SeedRules).
func seedRules(cat *repro.Catalog, rb *repro.Rulebase) error {
	return experiments.SeedRules(cat, rb, "ana")
}

func main() {
	var (
		seed         = flag.Uint64("seed", 42, "deterministic seed")
		types        = flag.Int("types", 120, "taxonomy size")
		trainSize    = flag.Int("train", 10000, "bootstrap training items")
		batches      = flag.Int("batches", 5, "number of incoming batches")
		batchSize    = flag.Int("batch-size", 2000, "items per batch")
		metrics      = flag.String("metrics", "", `dump the metric snapshot after the run: "json" or "prom"`)
		profile      = flag.Bool("profile", false, "print the per-batch stage timing tree after the run")
		health       = flag.Int("health", 0, "print the top-N telemetry-ranked rule-health entries after the run")
		serveFor     = flag.Duration("serve", 0, "after the batch loop, run the concurrent serving drill for this long (0 = off)")
		shards       = flag.Int("shards", 0, "run the serving drill through the sharded scatter-gather tier with this many shards (requires -serve; 0 = single-engine drill)")
		serveCli     = flag.Int("serve-clients", 4, "concurrent catalog clients in the serving drill")
		serveMut     = flag.Int("serve-mutations", 50, "rule mutations per second during the serving drill")
		chaos        = flag.Bool("chaos", false, "inject deterministic seeded faults (handler latency, rebuild stalls and failures) during the serving drill, and shrink the pool to force transient overload")
		deadline     = flag.Duration("deadline", 0, "per-batch caller deadline in the serving drill (0 = none)")
		retry        = flag.Int("retry", 0, "max retry-with-backoff attempts for shed submissions in the serving drill (0 = no retries)")
		perItem      = flag.Bool("per-item", false, "classify batches item-at-a-time (reference path) instead of the batch-inverted matcher")
		cacheCap     = flag.Int("cache", 0, "verdict-cache capacity: memoize classifier verdicts by (item fingerprint, snapshot version); per engine, so with -shards each shard gets its own cache of this size (0 = off)")
		opsAddr      = flag.String("ops", "", `serve the live-ops HTTP surface (/metrics, /healthz, /readyz, /decisions, /decisions/export, /snapshot, /debug/pprof) on this address for the duration of the run (e.g. "127.0.0.1:6060" or ":0")`)
		opsLinger    = flag.Duration("ops-linger", 0, "keep the ops server (and the process) up this long after the run finishes, so scrapers can read the final state (requires -ops)")
		auditTail    = flag.Int("audit", 0, "print the last N decision-provenance records as NDJSON after the run")
		auditEach    = flag.Int("audit-sample", 0, "capture 1-in-N classified decisions in the provenance ring (0 = default stride; declines, degraded service and serve failures are always captured)")
		rebuildP     = flag.Float64("chaos-rebuild-p", 0.05, "snapshot-rebuild failure probability injected under -chaos")
		persistDir   = flag.String("persist-dir", "", "durable rulebase store directory: restore the rulebase from it at startup (skipping the analyst seed when state exists), write-ahead-log every mutation, and compact a snapshot at exit")
		persistFsync = flag.Bool("persist-fsync", true, "fsync every WAL append in the durable store (requires -persist-dir; disable only for throwaway runs)")
		persistDrill = flag.Bool("persist-drill", false, "after the run, prove the durability contract live: mutate a store-attached rulebase, kill it without a parting snapshot, restore, and require byte-identical verdicts")
		decisionsOut = flag.String("decisions-out", "", "export the retained decision-provenance ring to this file as NDJSON at the end of the run (atomic write)")
	)
	flag.Parse()
	if *metrics != "" && *metrics != "json" && *metrics != "prom" {
		fmt.Fprintf(os.Stderr, "-metrics must be \"json\" or \"prom\", got %q\n", *metrics)
		os.Exit(2)
	}
	if *serveFor <= 0 && (*chaos || *deadline > 0 || *retry > 0 || *shards > 0) {
		fmt.Fprintln(os.Stderr, "-chaos, -deadline, -retry and -shards only apply to the serving drill; set -serve too")
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 0, got %d\n", *shards)
		os.Exit(2)
	}
	if *retry < 0 {
		fmt.Fprintf(os.Stderr, "-retry must be >= 0, got %d\n", *retry)
		os.Exit(2)
	}
	if *cacheCap < 0 {
		fmt.Fprintf(os.Stderr, "-cache must be >= 0, got %d\n", *cacheCap)
		os.Exit(2)
	}
	if *opsLinger > 0 && *opsAddr == "" {
		fmt.Fprintln(os.Stderr, "-ops-linger only applies to the ops server; set -ops too")
		os.Exit(2)
	}
	if *rebuildP < 0 || *rebuildP > 1 {
		fmt.Fprintf(os.Stderr, "-chaos-rebuild-p must be in [0,1], got %g\n", *rebuildP)
		os.Exit(2)
	}
	if *auditTail < 0 || *auditEach < 0 {
		fmt.Fprintln(os.Stderr, "-audit and -audit-sample must be >= 0")
		os.Exit(2)
	}

	cat := repro.NewCatalog(repro.CatalogConfig{Seed: *seed, NumTypes: *types, ZipfS: 1.3})
	p := repro.NewPipeline(repro.PipelineConfig{
		Seed:          *seed,
		PerItem:       *perItem,
		CacheCapacity: *cacheCap,
		Audit:         repro.NewAuditLog(repro.AuditConfig{SampleEvery: *auditEach}),
	})

	var opsSrv *repro.OpsServer
	if *opsAddr != "" {
		srv, err := repro.NewOpsServer(opsOptions(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ops server: %v\n", err)
			os.Exit(1)
		}
		addr, err := srv.Start(*opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ops server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ops: listening on %s\n", addr)
		opsSrv = srv
	}

	// The durable store is wired before any rule lands in the rulebase:
	// Restore first (so existing state wins over the analyst seed), then
	// Attach (so every later mutation — seed included — hits the WAL).
	var store *repro.PersistStore
	restoredRules := false
	if *persistDir != "" {
		st, err := repro.OpenPersist(repro.PersistOptions{Dir: *persistDir, Fsync: *persistFsync, Obs: p.Obs})
		if err != nil {
			fmt.Fprintf(os.Stderr, "persist: %v\n", err)
			os.Exit(1)
		}
		stats, err := st.Restore(p.Rules)
		if err != nil {
			fmt.Fprintf(os.Stderr, "persist restore: %v\n", err)
			os.Exit(1)
		}
		if stats.Version > 0 {
			restoredRules = true
			fmt.Printf("persist: restored rulebase version %d from %s (snapshot v%d + %d WAL records replayed)\n",
				stats.Version, *persistDir, stats.SnapshotVersion, stats.Replayed)
		}
		if err := st.Attach(p.Rules); err != nil {
			fmt.Fprintf(os.Stderr, "persist attach: %v\n", err)
			os.Exit(1)
		}
		store = st
	}

	fmt.Printf("bootstrapping: %d types, %d training items\n", *types, *trainSize)
	p.Train(cat.LabeledData(*trainSize))
	if restoredRules {
		fmt.Printf("persist: skipping analyst seed (%d restored rules)\n", p.Rules.Len())
	} else if err := seedRules(cat, p.Rules); err != nil {
		fmt.Fprintf(os.Stderr, "seeding rules: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("initial state: %s\n\n", p.Describe())
	fmt.Printf("%-8s %-28s %9s %9s %9s %9s  %s\n",
		"batch", "source", "est prec", "true prec", "recall", "declined", "actions")

	for i := 0; i < *batches; i++ {
		spec := repro.BatchSpec{Size: *batchSize, Epoch: i / 2}
		source := fmt.Sprintf("epoch %d mixed vendors", spec.Epoch)
		if i == 3 {
			spec.Epoch, spec.Vendor = 3, "brand-new-vendor"
			source = "epoch 3 NEW vendor (drift)"
		}
		batch := cat.GenerateBatch(spec)
		res := p.ProcessBatch(batch)
		truePrec, rec := res.TruePrecisionRecall()
		rep, err := p.EvaluateAndImprove(res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evaluation: %v\n", err)
			os.Exit(1)
		}

		actions := fmt.Sprintf("%d patch rules, %d relabeled", len(rep.NewRuleIDs), rep.Relabeled)
		if !rep.PassedGate {
			// First-responder drill: scale down the degraded types, note it.
			flagged := flaggedDecisions(res)
			degraded := degradedTypes(flagged)
			for _, ty := range degraded {
				if _, err := p.ScaleDownType(ty, "ana", "auto scale-down"); err == nil {
					actions += fmt.Sprintf(", scaled down %q", ty)
				}
			}
		}
		fmt.Printf("%-8d %-28s %9.3f %9.3f %9.3f %9.3f  %s\n",
			i, source, rep.EstPrecision, truePrec, rec, res.DeclineRate(), actions)
	}
	fmt.Printf("\nfinal state: %s\n", p.Describe())
	fmt.Printf("precision history: %v\n", p.PrecisionHistory())
	printCacheStats("cache", p.Snapshots().Cache().Stats())

	if *serveFor > 0 {
		o := drillOptions{
			window:   *serveFor,
			clients:  *serveCli,
			mutPerS:  *serveMut,
			seed:     *seed,
			chaos:    *chaos,
			rebuildP: *rebuildP,
			deadline: *deadline,
			retry:    *retry,
			shards:   *shards,
		}
		if *shards > 0 {
			shardedDrill(cat, p, o)
		} else {
			serveDrill(cat, p, o)
		}
	}

	if *persistDrill {
		persistRestartDrill(cat, p)
	}

	// Decision provenance: the per-path/outcome breakdown is exact (sampled-out
	// decisions are still counted), the tail is whatever the ring retained.
	fmt.Printf("\n== decision paths ==\n%s", repro.FormatDecisionBreakdown(p.Audit.Breakdown()))
	fmt.Printf("audit: %d captured, %d sampled out, %d offered (ring capacity %d, 1-in-%d)\n",
		p.Audit.Captured(), p.Audit.SampledOut(), p.Audit.Offered(),
		p.Audit.Capacity(), p.Audit.SampleEvery())
	if *auditTail > 0 {
		fmt.Printf("\n== decision tail (last %d) ==\n", *auditTail)
		enc := json.NewEncoder(os.Stdout)
		for _, rec := range p.Audit.Tail(*auditTail) {
			_ = enc.Encode(rec)
		}
	}

	if *decisionsOut != "" {
		n, err := repro.ExportDecisions(*decisionsOut, p.Audit, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decisions export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("decisions: exported %d records to %s\n", n, *decisionsOut)
	}

	if *profile {
		fmt.Printf("\n== per-batch stage timings ==\n%s", p.Trace.Render())
	}
	if *health > 0 {
		report := p.RuleHealth(0.92)
		if len(report) > *health {
			report = report[:*health]
		}
		fmt.Printf("\n== rule health (unhealthiest first) ==\n")
		fmt.Printf("%-10s %-14s %8s %10s %6s  %s\n", "rule", "kind", "fired", "effective", "conf", "issues")
		for _, h := range report {
			fmt.Printf("%-10s %-14s %8d %10d %6.2f  %v\n",
				h.RuleID, h.Kind, h.Fired, h.Effective, h.Confidence, h.Issues)
		}
	}
	if *metrics != "" {
		snap := p.Obs.Snapshot()
		fmt.Printf("\n== metrics ==\n")
		if *metrics == "prom" {
			fmt.Print(snap.PrometheusText())
		} else {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "marshaling metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(data))
		}
	}

	if store != nil {
		// Compact at exit: fold the run's WAL into one snapshot so the next
		// start restores without a replay. Durability never depends on this —
		// a kill before here replays the WAL instead.
		if err := store.Snapshot(); err != nil {
			fmt.Fprintf(os.Stderr, "persist snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "persist close: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("persist: rulebase version %d durable in %s\n", p.Rules.Version(), *persistDir)
	}

	if opsSrv != nil {
		if *opsLinger > 0 {
			time.Sleep(*opsLinger)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = opsSrv.Close(ctx)
		cancel()
	}
}

// persistRestartDrill proves the durability contract live: load the
// pipeline's rules into a store-attached rulebase, layer fresh mutations on
// top (so the WAL has a tail), kill the store — Close never writes a parting
// snapshot — then restore into a new rulebase and require the same version
// and byte-identical verdicts over a fresh sample batch.
func persistRestartDrill(cat *repro.Catalog, p *repro.Pipeline) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "persist drill: "+format+"\n", args...)
		os.Exit(1)
	}
	dir, err := os.MkdirTemp("", "chimera-persist-drill-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(dir)

	st, err := repro.OpenPersist(repro.PersistOptions{Dir: dir, Fsync: true})
	if err != nil {
		fail("%v", err)
	}
	live := repro.NewRulebase()
	if err := st.Attach(live); err != nil {
		fail("attach: %v", err)
	}
	// Loading the pipeline's rule state wholesale re-baselines the store;
	// the mutations after it land as WAL records recovery must replay.
	state, err := json.Marshal(p.Rules)
	if err != nil {
		fail("marshal: %v", err)
	}
	if err := json.Unmarshal(state, live); err != nil {
		fail("load: %v", err)
	}
	r, err := repro.NewWhitelist("vinyl records?", "vinyl")
	if err != nil {
		fail("%v", err)
	}
	id, err := live.Add(r, "drill")
	if err != nil {
		fail("mutate: %v", err)
	}
	for _, err := range []error{
		live.UpdateConfidence(id, 0.66, "drill"),
		live.Disable(id, "drill", "drill toggle"),
		live.Enable(id, "drill", "drill toggle"),
	} {
		if err != nil {
			fail("mutate: %v", err)
		}
	}
	if err := st.Close(); err != nil { // the kill: WAL tail stays unreplayed
		fail("close: %v", err)
	}

	rst, err := repro.OpenPersist(repro.PersistOptions{Dir: dir})
	if err != nil {
		fail("reopen: %v", err)
	}
	restored := repro.NewRulebase()
	stats, err := rst.Restore(restored)
	if err != nil {
		fail("restore: %v", err)
	}
	if err := rst.Close(); err != nil {
		fail("close after restore: %v", err)
	}

	fmt.Printf("\n== persist restart drill ==\n")
	fmt.Printf("mutated to version %d, killed, restored snapshot v%d + %d WAL records\n",
		live.Version(), stats.SnapshotVersion, stats.Replayed)
	if restored.Version() != live.Version() {
		fail("restored version %d, live version %d", restored.Version(), live.Version())
	}
	liveJSON, err := json.Marshal(live)
	if err != nil {
		fail("%v", err)
	}
	restoredJSON, err := json.Marshal(restored)
	if err != nil {
		fail("%v", err)
	}
	if string(liveJSON) != string(restoredJSON) {
		fail("restored rulebase state (rules + audit log) differs from live")
	}
	items := cat.GenerateBatch(repro.BatchSpec{Size: 200, Epoch: 1})
	liveSnap := repro.BuildServeSnapshot(live, nil)
	restoredSnap := repro.BuildServeSnapshot(restored, nil)
	for i, it := range items {
		if liveSnap.Apply(it).Explain() != restoredSnap.Apply(it).Explain() {
			fail("verdict %d not byte-equal after restore", i)
		}
	}
	fmt.Printf("verdicts byte-equal: %d/%d, rulebase state identical (version, rules, audit log)\n", len(items), len(items))
	fmt.Printf("persist drill: OK\n")
}

// opsQueueCap mirrors the serving drill's queue capacity so the ops /readyz
// watermark has a denominator; zero outside the drill.
var opsQueueCap atomic.Int64

// opsShardStatuses holds a func() []repro.ShardStatus while the sharded
// drill runs, so the ops health provider can report per-shard readiness (and
// refresh the labeled shard gauges on every scrape). A typed-nil func means
// "not sharded right now".
var opsShardStatuses atomic.Value

func init() { opsShardStatuses.Store((func() []repro.ShardStatus)(nil)) }

// opsOptions wires the ops surface to the pipeline: metrics from its
// registry, decisions from its audit ring, health from the snapshot engine's
// degraded state plus the live queue-depth gauge, and /snapshot from the
// engine's current view plus telemetry-ranked rule health.
func opsOptions(p *repro.Pipeline) repro.OpsOptions {
	eng := p.Snapshots()
	return repro.OpsOptions{
		Registry: p.Obs,
		Audit:    p.Audit,
		Health: func() repro.OpsHealthStatus {
			st := repro.OpsHealthStatus{
				Degraded:        eng.Degraded(),
				Ready:           true,
				QueueDepth:      int(p.Obs.Gauge(repro.MetricServeQueueDepth).Value()),
				QueueCapacity:   int(opsQueueCap.Load()),
				SnapshotVersion: eng.Current().Version(),
			}
			if st.Degraded {
				st.Detail = "serving stale snapshot: last rebuild failed"
			}
			// Under the sharded drill, /readyz switches to per-shard judgment:
			// the tier is ready while any shard can absorb traffic.
			if f, _ := opsShardStatuses.Load().(func() []repro.ShardStatus); f != nil {
				degraded := 0
				for _, ss := range f() {
					st.Shards = append(st.Shards, repro.OpsShardHealth{
						Shard:           ss.Shard,
						Degraded:        ss.Degraded,
						QueueDepth:      ss.QueueDepth,
						QueueCapacity:   ss.QueueCapacity,
						SnapshotVersion: ss.SnapshotVersion,
					})
					if ss.Degraded {
						degraded++
					}
				}
				if degraded > 0 {
					st.Detail = fmt.Sprintf("%d/%d shards serving stale snapshots", degraded, len(st.Shards))
				}
			}
			return st
		},
		Snapshot: func() repro.OpsSnapshotInfo {
			snap := eng.Current()
			ids := snap.ActiveIDs()
			return repro.OpsSnapshotInfo{
				Version:     snap.Version(),
				ActiveRules: len(ids),
				RuleIDs:     ids,
				RuleHealth:  p.RuleHealth(0.92),
			}
		},
	}
}

// drillOptions bundles the serving-drill knobs.
type drillOptions struct {
	window   time.Duration
	clients  int
	mutPerS  int
	seed     uint64
	chaos    bool
	rebuildP float64
	deadline time.Duration
	retry    int
	shards   int
}

// printCacheStats prints one serve_cache_* summary line; silent when caching
// is disabled (zero capacity).
func printCacheStats(label string, st repro.VerdictCacheStats) {
	if st.Capacity == 0 {
		return
	}
	fmt.Printf("%s: %d hits, %d misses, %d coalesced, %d evicted, %d stale drops (hit rate %.1f%%, resident %d/%d)\n",
		label, st.Hits, st.Misses, st.Coalesced, st.Evictions, st.StaleDrops,
		100*st.HitRate(), st.Size, st.Capacity)
}

// serveDrill exercises the snapshot-isolated serving layer under live
// maintenance: clients submit catalog batches through the pipeline's Server
// while a mutator toggles and re-weights rules at the requested rate. The
// catalog generator is not concurrency-safe, so each client gets its own
// pre-generated batch pool and cycles it (submitting strictly one batch at a
// time, so no item is classified by two workers at once).
//
// With -chaos the pool is undersized relative to the client fleet and a
// seeded injector adds handler latency and rebuild stalls/failures, so
// transient overload (sheds) actually occurs; -retry wraps each submission
// in capped-backoff retries, turning those sheds into recovered requests;
// -deadline bounds each submission end to end through queue and wait.
func serveDrill(cat *repro.Catalog, p *repro.Pipeline, o drillOptions) {
	clients := o.clients
	if clients <= 0 {
		clients = 1
	}
	const poolBatches, poolBatchSize = 8, 100
	pools := make([][][]*repro.Item, clients)
	for c := range pools {
		pools[c] = make([][]*repro.Item, poolBatches)
		for b := range pools[c] {
			pools[c][b] = cat.GenerateBatch(repro.BatchSpec{Size: poolBatchSize, Epoch: 2})
		}
	}

	var inj *repro.FaultInjector
	sopts := repro.ServeOptions{Workers: clients, QueueDepth: 4 * clients}
	if o.chaos {
		inj = repro.NewFaultInjector(repro.FaultConfig{
			Seed: o.seed + 99,
			// Per-item: a 100-item batch picks up ~10ms of injected latency,
			// enough to congest the halved pool without starving every
			// deadline-bound client.
			HandlerLatencyP: 0.20, HandlerLatency: 500 * time.Microsecond,
			RebuildStallP: 0.10, RebuildStall: time.Millisecond,
			RebuildErrorP: o.rebuildP,
		})
		p.Snapshots().SetRebuildFault(inj.RebuildFault)
		defer p.Snapshots().SetRebuildFault(nil)
		// Undersize the pool so the fleet can actually overload it.
		sopts.Workers = (clients + 1) / 2
		sopts.QueueDepth = 2
	}
	opsQueueCap.Store(int64(sopts.QueueDepth))
	defer opsQueueCap.Store(0)
	ropts := repro.ResilienceOptions{Faults: inj}
	if o.retry > 0 {
		// Backoff spans a batch's service time (tens of ms), so a retried
		// shed has a real chance of landing in a freed slot.
		ropts.Retry = repro.ServeRetryOptions{
			MaxAttempts: o.retry,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    80 * time.Millisecond,
			Seed:        o.seed + 11,
		}
	}
	rc := p.NewResilientClient(sopts, ropts)
	srv := rc.Server()

	deadline := time.Now().Add(o.window)
	var (
		mu       sync.Mutex
		versions = map[uint64]bool{}
		served   int
		items    int
		shed     int
		expired  int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for b := 0; time.Now().Before(deadline); b++ {
				ctx := context.Background()
				cancel := func() {}
				if o.deadline > 0 {
					ctx, cancel = context.WithTimeout(ctx, o.deadline)
				}
				var ticket *repro.ServeTicket
				var err error
				if o.retry > 0 {
					ticket, err = rc.Retrier().Submit(ctx, pools[c][b%poolBatches])
				} else {
					ticket, err = srv.SubmitCtx(ctx, pools[c][b%poolBatches])
				}
				if err != nil {
					cancel()
					if errors.Is(err, repro.ErrServeShutdown) {
						return
					}
					mu.Lock()
					if errors.Is(err, repro.ErrServeQueueFull) {
						shed++
					} else {
						expired++ // caller deadline spent while shed-retrying
					}
					mu.Unlock()
					time.Sleep(time.Millisecond)
					continue
				}
				out, snap, err := ticket.WaitContext(ctx)
				cancel()
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
						mu.Lock()
						expired++
						mu.Unlock()
						continue
					}
					return // declined during shutdown; the drill is over
				}
				mu.Lock()
				served++
				items += len(out)
				versions[snap.Version()] = true
				mu.Unlock()
			}
		}(c)
	}

	// The maintenance side: disable/enable cycles and confidence updates
	// against live rules, at the requested rate.
	stopMut := make(chan struct{})
	var mutations int
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := repro.NewRand(o.seed + 7)
		interval := time.Second
		if o.mutPerS > 0 {
			interval = time.Second / time.Duration(o.mutPerS)
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var disabled []string
		for {
			select {
			case <-stopMut:
				// Leave the rulebase as we found it.
				for _, id := range disabled {
					_ = p.Rules.Enable(id, "drill", "serve drill cleanup")
				}
				return
			case <-tick.C:
				active := p.Rules.Active()
				if len(active) == 0 {
					continue
				}
				r := active[rng.Intn(len(active))]
				switch {
				case len(disabled) > 0 && rng.Intn(3) == 0:
					id := disabled[len(disabled)-1]
					disabled = disabled[:len(disabled)-1]
					_ = p.Rules.Enable(id, "drill", "serve drill")
				case rng.Intn(2) == 0:
					if err := p.Rules.Disable(r.ID, "drill", "serve drill"); err == nil {
						disabled = append(disabled, r.ID)
					}
				default:
					_ = p.Rules.UpdateConfidence(r.ID, 0.5+float64(rng.Intn(50))/100, "drill")
				}
				mutations++
			}
		}
	}()

	time.Sleep(time.Until(deadline))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	close(stopMut)
	wg.Wait()

	reg := p.Obs
	fmt.Printf("\n== serve drill ==\n")
	fmt.Printf("clients %d, mutation target %d/s, window %v\n", clients, o.mutPerS, o.window)
	fmt.Printf("served: %d batches (%d items), shed: %d, declined: %d items\n",
		served, items, shed, reg.Counter(repro.MetricServeDeclined).Value())
	fmt.Printf("mutations applied: %d, snapshot swaps: %d, versions observed: %d, final rulebase version: %d\n",
		mutations, reg.Counter(repro.MetricServeSnapshotSwaps).Value(), len(versions), p.Rules.Version())
	printCacheStats("cache", p.Snapshots().Cache().Stats())
	if o.deadline > 0 {
		fmt.Printf("deadline %v: %d expired (%d recorded while queued)\n",
			o.deadline, expired, reg.Counter(repro.MetricServeDeadlineExpired).Value())
	}
	if o.retry > 0 {
		fmt.Printf("retry (max %d): %d attempts, %d sheds recovered on retry, %d gave up\n",
			o.retry,
			reg.Counter(repro.MetricServeRetryAttempts).Value(),
			reg.Counter(repro.MetricServeRetrySuccess).Value(),
			reg.Counter(repro.MetricServeRetryGiveUp).Value())
	}
	if inj != nil {
		fmt.Printf("chaos: %d faults injected %v, rebuild errors: %d, degraded now: %v\n",
			inj.Total(), inj.Counts(),
			reg.Counter(repro.MetricServeBuildErrors).Value(),
			p.Snapshots().Degraded())
		// Clear the injector and prove recovery: with the fault gone, one
		// clean rebuild un-degrades the engine (the /healthz flip back that
		// the ops drill observes).
		p.Snapshots().SetRebuildFault(nil)
		p.Snapshots().Acquire()
	}
}

// shardedDrill exercises the scatter-gather serving tier under live
// maintenance: clients submit catalog batches that fan out across the
// consistent-hash ring while a mutator churns the rulebase under every
// shard's snapshot engine at once. Each shard is an independent capacity
// unit (its own worker pool, bounded queue and snapshot lifecycle), so the
// drill's summary is a per-shard table, not one aggregate line.
//
// With -chaos a seeded injector stalls shard 0's handlers (targeted shard
// stalls) and fails its snapshot rebuilds, proving the isolation story live:
// shard 0 degrades and sheds while the other shards' key ranges keep
// serving; the recovery line shows one clean rebuild un-degrading it.
// -deadline bounds each scatter end to end; -retry gives every shard its own
// retry budget.
func shardedDrill(cat *repro.Catalog, p *repro.Pipeline, o drillOptions) {
	clients := o.clients
	if clients <= 0 {
		clients = 1
	}
	const poolBatches, poolBatchSize = 8, 100
	pools := make([][][]*repro.Item, clients)
	for c := range pools {
		pools[c] = make([][]*repro.Item, poolBatches)
		for b := range pools[c] {
			pools[c][b] = cat.GenerateBatch(repro.BatchSpec{Size: poolBatchSize, Epoch: 2})
		}
	}

	var inj *repro.FaultInjector
	sopts := repro.ShardedOptions{
		Shards: o.shards,
		// Uniform per-unit capacity: every shard gets the same worker pool
		// and queue, so adding shards adds capacity instead of re-slicing it.
		Workers:    2,
		QueueDepth: 8,
	}
	if o.chaos {
		inj = repro.NewFaultInjector(repro.FaultConfig{
			Seed:            o.seed + 99,
			HandlerLatencyP: 0.05, HandlerLatency: 200 * time.Microsecond,
			// The targeted stall: shard 0's handlers slow to a crawl while
			// the other shards never feel it.
			ShardStallP: 0.6, ShardStall: 2 * time.Millisecond, ShardTarget: 0,
		})
		sopts.QueueDepth = 2
	}
	if o.retry > 0 {
		sopts.Retry = &repro.ServeRetryOptions{
			MaxAttempts: o.retry,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    40 * time.Millisecond,
			Seed:        o.seed + 11,
		}
	}
	srv := p.NewShardedServer(sopts, inj)
	if o.chaos {
		// Shard 0's rebuilds also fail with probability -chaos-rebuild-p.
		failer := repro.NewFaultInjector(repro.FaultConfig{Seed: o.seed + 101, RebuildErrorP: o.rebuildP})
		srv.Engine(0).SetRebuildFault(failer.RebuildFault)
	}
	opsQueueCap.Store(int64(sopts.QueueDepth))
	opsShardStatuses.Store(func() []repro.ShardStatus { return srv.ShardStatuses() })
	defer func() {
		opsQueueCap.Store(0)
		opsShardStatuses.Store((func() []repro.ShardStatus)(nil))
	}()

	deadline := time.Now().Add(o.window)
	var (
		mu       sync.Mutex
		versions = map[uint64]bool{}
		batches  int
		served   int
		shed     int
		expired  int
		partial  int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for b := 0; time.Now().Before(deadline); b++ {
				ctx := context.Background()
				cancel := func() {}
				if o.deadline > 0 {
					ctx, cancel = context.WithTimeout(ctx, o.deadline)
				}
				ticket, err := srv.SubmitCtx(ctx, pools[c][b%poolBatches])
				if err != nil {
					cancel()
					if errors.Is(err, repro.ErrServeShutdown) {
						return
					}
					continue // an already-expired submit ctx
				}
				res := ticket.Wait()
				cancel()
				mu.Lock()
				batches++
				served += res.Served
				if errors.Is(res.Err(), repro.ErrServePartial) {
					partial++
				}
				for i, e := range res.Errs {
					switch {
					case e == nil:
						versions[res.Snapshots[i].Version()] = true
					case errors.Is(e, repro.ErrServeQueueFull):
						shed++
					case errors.Is(e, context.DeadlineExceeded), errors.Is(e, context.Canceled):
						expired++
					}
				}
				mu.Unlock()
			}
		}(c)
	}

	stopMut := make(chan struct{})
	var mutations int
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := repro.NewRand(o.seed + 7)
		interval := time.Second
		if o.mutPerS > 0 {
			interval = time.Second / time.Duration(o.mutPerS)
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var disabled []string
		for {
			select {
			case <-stopMut:
				for _, id := range disabled {
					_ = p.Rules.Enable(id, "drill", "sharded drill cleanup")
				}
				return
			case <-tick.C:
				active := p.Rules.Active()
				if len(active) == 0 {
					continue
				}
				r := active[rng.Intn(len(active))]
				switch {
				case len(disabled) > 0 && rng.Intn(3) == 0:
					id := disabled[len(disabled)-1]
					disabled = disabled[:len(disabled)-1]
					_ = p.Rules.Enable(id, "drill", "sharded drill")
				case rng.Intn(2) == 0:
					if err := p.Rules.Disable(r.ID, "drill", "sharded drill"); err == nil {
						disabled = append(disabled, r.ID)
					}
				default:
					_ = p.Rules.UpdateConfidence(r.ID, 0.5+float64(rng.Intn(50))/100, "drill")
				}
				mutations++
			}
		}
	}()

	time.Sleep(time.Until(deadline))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	close(stopMut)
	wg.Wait()

	sts := srv.ShardStatuses()
	fmt.Printf("\n== sharded serve drill ==\n")
	fmt.Printf("shards %d, clients %d, mutation target %d/s, window %v\n",
		srv.Shards(), clients, o.mutPerS, o.window)
	fmt.Printf("scatter: %d batches, served: %d items, shed: %d, expired: %d, partial gathers: %d\n",
		batches, served, shed, expired, partial)
	fmt.Printf("mutations applied: %d, versions observed: %d, final rulebase version: %d\n",
		mutations, len(versions), p.Rules.Version())
	printCacheStats("cache (all shards)", srv.CacheStats())
	fmt.Printf("%-6s %9s %9s %8s %7s %9s  %s\n",
		"shard", "routed", "served", "shed", "queue", "version", "degraded")
	for _, st := range sts {
		fmt.Printf("%-6d %9d %9d %8d %3d/%-3d %9d  %v\n",
			st.Shard, st.Routed, st.Served, st.Shed,
			st.QueueDepth, st.QueueCapacity, st.SnapshotVersion, st.Degraded)
	}
	if o.retry > 0 {
		var attempts, success int64
		for i := 0; i < srv.Shards(); i++ {
			attempts += srv.ShardRegistry(i).Counter(repro.MetricServeRetryAttempts).Value()
			success += srv.ShardRegistry(i).Counter(repro.MetricServeRetrySuccess).Value()
		}
		fmt.Printf("retry (max %d, per-shard budgets): %d attempts, %d sheds recovered\n",
			o.retry, attempts, success)
	}
	if inj != nil {
		fmt.Printf("chaos: %d faults injected %v, shard 0 degraded: %v\n",
			inj.Total(), inj.Counts(), srv.Engine(0).Degraded())
		// Recovery: with the fault cleared, one clean synchronous rebuild
		// un-degrades shard 0 — the isolation story closed out live.
		srv.Engine(0).SetRebuildFault(nil)
		srv.Engine(0).Acquire()
		fmt.Printf("recovery: shard 0 degraded after clean rebuild: %v\n", srv.Engine(0).Degraded())
	}
}

func flaggedDecisions(res *repro.BatchResult) []repro.Decision {
	var out []repro.Decision
	for _, d := range res.Decisions {
		if !d.Declined && d.Type != d.Item.TrueType {
			out = append(out, d)
		}
	}
	return out
}

func degradedTypes(flagged []repro.Decision) []string {
	counts := map[string]int{}
	for _, d := range flagged {
		counts[d.Type]++
	}
	var out []string
	for ty, n := range counts {
		if n >= 10 {
			out = append(out, ty)
		}
	}
	return out
}
