package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// binPath is the chimera binary built once in TestMain; the CLI tests drive
// the real executable end to end, flags and exit codes included.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "chimera-cli")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "chimera")
	build := exec.Command("go", "build", "-o", binPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		panic("building chimera: " + err.Error() + "\n" + string(out))
	}
	os.Exit(m.Run())
}

// run executes the binary with small-world flags plus extra, returning
// combined output and the exit error (nil on success).
func run(t *testing.T, extra ...string) (string, error) {
	t.Helper()
	args := append([]string{
		"-types", "20", "-train", "400", "-batches", "2", "-batch-size", "150",
	}, extra...)
	out, err := exec.Command(binPath, args...).CombinedOutput()
	return string(out), err
}

// TestCLIBaseRun checks the operating-log skeleton of a plain run.
func TestCLIBaseRun(t *testing.T) {
	out, err := run(t)
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"bootstrapping: 20 types, 400 training items",
		"initial state:",
		"epoch 0 mixed vendors",
		"final state:",
		"precision history:",
		"== decision paths ==",
		"classifier/classified",
		"audit: ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "== serve drill ==") {
		t.Errorf("serve drill ran without -serve:\n%s", out)
	}
}

// TestCLIDiagnostics exercises -metrics prom, -health and -profile together.
func TestCLIDiagnostics(t *testing.T) {
	out, err := run(t, "-metrics", "prom", "-health", "5", "-profile")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== per-batch stage timings ==",
		"== rule health (unhealthiest first) ==",
		"== metrics ==",
		"chimera_batches_total",
		"serve_snapshot_swaps_total", // pipeline classifies via snapshots now
		"serve_snapshot_version",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIMetricsJSON checks the JSON metric dump parses structurally (starts
// with the snapshot object) and includes the serving gauge.
func TestCLIMetricsJSON(t *testing.T) {
	out, err := run(t, "-metrics", "json")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "== metrics ==") ||
		!strings.Contains(out, `"serve_snapshot_version"`) {
		t.Errorf("JSON metrics dump missing serve gauge:\n%s", out)
	}
}

// TestCLIBadMetricsFlag: an invalid -metrics value must exit 2 with a usage
// message, not run the pipeline.
func TestCLIBadMetricsFlag(t *testing.T) {
	out, err := exec.Command(binPath, "-metrics", "bogus").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), `-metrics must be "json" or "prom"`) {
		t.Errorf("missing usage message:\n%s", out)
	}
	if strings.Contains(string(out), "bootstrapping") {
		t.Errorf("pipeline ran despite bad flag:\n%s", out)
	}
}

// TestCLIServeDrill runs the -serve mode and checks the drill summary: work
// was served, the serving layer swapped snapshots under mutation, and the
// drill reports its accounting lines.
func TestCLIServeDrill(t *testing.T) {
	out, err := run(t, "-serve", "300ms", "-serve-clients", "2", "-serve-mutations", "200")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== serve drill ==",
		"clients 2, mutation target 200/s, window 300ms",
		"served: ",
		"mutations applied: ",
		"snapshot swaps: ",
		"final rulebase version: ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "served: 0 batches") {
		t.Errorf("serve drill served nothing:\n%s", out)
	}
	for _, absent := range []string{"deadline ", "retry (max", "chaos:"} {
		if strings.Contains(out, absent) {
			t.Errorf("resilience line %q printed without its flag:\n%s", absent, out)
		}
	}
}

// TestCLIChaosRetryDrill is the resilience drill end to end: under -chaos
// the pool is undersized and faults are injected, so transient overload
// occurs; -retry wraps submissions in backoff and the summary plus the
// metric snapshot show the serve_retry_* accounting.
func TestCLIChaosRetryDrill(t *testing.T) {
	out, err := run(t, "-serve", "400ms", "-serve-clients", "6", "-chaos", "-retry", "5", "-metrics", "prom")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== serve drill ==",
		"retry (max 5): ",
		"sheds recovered on retry",
		"gave up",
		"chaos: ",
		"faults injected",
		"handler_latency",
		// serve_retry_* counters in the metric snapshot (ticket acceptance).
		"serve_retry_attempts_total",
		"serve_retry_success_total",
		"serve_retry_giveup_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "served: 0 batches") {
		t.Errorf("chaos drill served nothing:\n%s", out)
	}
	if strings.Contains(out, "chaos: 0 faults injected") {
		t.Errorf("chaos drill injected no faults:\n%s", out)
	}
	if strings.Contains(out, "retry (max 5): 0 attempts") {
		t.Errorf("chaos drill never retried — no transient overload reached the retrier:\n%s", out)
	}
}

// TestCLIDeadlineDrill: -deadline bounds each submission end to end and the
// summary reports the expiry accounting line.
func TestCLIDeadlineDrill(t *testing.T) {
	out, err := run(t, "-serve", "300ms", "-serve-clients", "2", "-deadline", "250ms")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== serve drill ==",
		"deadline 250ms: ",
		"expired (",
		"recorded while queued",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "served: 0 batches") {
		t.Errorf("deadline drill served nothing — deadline too tight for the small world:\n%s", out)
	}
}

// startOps launches the binary with -ops on an ephemeral port plus the small
// world and extra flags, parses the printed bound address, and returns the
// base URL. Stdout keeps draining in the background so the process never
// blocks on a full pipe; the process is killed at test cleanup.
func startOps(t *testing.T, extra ...string) string {
	t.Helper()
	args := append([]string{
		"-types", "20", "-train", "400", "-batches", "2", "-batch-size", "150",
		"-ops", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(binPath, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ops: listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("ops server address never printed")
		return ""
	}
}

// pollStatus GETs url until it answers with the wanted status code or the
// budget runs out.
func pollStatus(url string, want int, budget time.Duration) bool {
	end := time.Now().Add(budget)
	for time.Now().Before(end) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// TestCLIOpsSurface scrapes the live ops endpoints of a real `chimera -ops`
// process: /metrics shows the finished run's counters, /healthz reports
// healthy JSON, /decisions streams parseable NDJSON provenance, /snapshot
// describes the active rule set.
func TestCLIOpsSurface(t *testing.T) {
	base := startOps(t, "-ops-linger", "15s", "-audit-sample", "1")

	// The batch loop runs after the server comes up; poll until its counters
	// land in the scrape.
	deadline := time.Now().Add(30 * time.Second)
	var body string
	for {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(b)
			if resp.StatusCode == 200 && strings.Contains(body, "chimera_batches_total 2") {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed the finished run:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(body, "# TYPE chimera_batches_total counter") {
		t.Errorf("/metrics missing TYPE header:\n%.400s", body)
	}

	code, health := httpGet(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d (%s)", code, health)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(health), &st); err != nil || st["degraded"] != false {
		t.Fatalf("/healthz body: %s (err %v)", health, err)
	}

	code, decisions := httpGet(t, base+"/decisions?n=8")
	if code != 200 || strings.TrimSpace(decisions) == "" {
		t.Fatalf("/decisions = %d:\n%s", code, decisions)
	}
	for _, line := range strings.Split(strings.TrimSpace(decisions), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("NDJSON line did not parse: %v\n%s", err, line)
		}
		if rec["path"] == "" || rec["item_id"] == "" {
			t.Errorf("decision record missing provenance fields: %s", line)
		}
	}

	if code, snap := httpGet(t, base+"/snapshot"); code != 200 || !strings.Contains(snap, `"active_rules"`) {
		t.Fatalf("/snapshot = %d:\n%.300s", code, snap)
	}
}

// TestCLIOpsHealthFlipsUnderChaos is the liveness drill end to end: with
// every snapshot rebuild failing (-chaos -chaos-rebuild-p 1) the engine goes
// degraded and /healthz flips to 503; after the drill clears the injector and
// rebuilds cleanly, /healthz recovers to 200.
func TestCLIOpsHealthFlipsUnderChaos(t *testing.T) {
	base := startOps(t,
		"-serve", "900ms", "-serve-clients", "4", "-serve-mutations", "200",
		"-chaos", "-chaos-rebuild-p", "1", "-ops-linger", "15s")

	if !pollStatus(base+"/healthz", http.StatusServiceUnavailable, 30*time.Second) {
		t.Fatal("/healthz never flipped to 503 while rebuilds were failing")
	}
	if !pollStatus(base+"/healthz", 200, 30*time.Second) {
		t.Fatal("/healthz never recovered after the drill cleared the fault")
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestCLIPersistRestart drives the durability story through the real
// binary: run one, mutated during its batch loop, compacts a snapshot into
// -persist-dir; run two restores the exact version, skips the analyst seed,
// and keeps appending from there.
func TestCLIPersistRestart(t *testing.T) {
	dir := t.TempDir()
	out, err := run(t, "-persist-dir", dir)
	if err != nil {
		t.Fatalf("first run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "persist: rulebase version ") {
		t.Fatalf("first run missing the durable-exit line:\n%s", out)
	}
	if strings.Contains(out, "persist: restored") {
		t.Errorf("first run claims to have restored from an empty dir:\n%s", out)
	}
	version := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "persist: rulebase version "); ok {
			version = strings.Fields(rest)[0]
		}
	}
	if version == "" {
		t.Fatalf("no version parsed from:\n%s", out)
	}
	for _, name := range []string{"snapshot.json", "wal.log"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("store file %s: %v", name, err)
		}
	}

	out2, err := run(t, "-persist-dir", dir)
	if err != nil {
		t.Fatalf("second run failed: %v\n%s", err, out2)
	}
	for _, want := range []string{
		"persist: restored rulebase version " + version + " from " + dir,
		"persist: skipping analyst seed",
		"persist: rulebase version ",
	} {
		if !strings.Contains(out2, want) {
			t.Errorf("second run missing %q:\n%s", want, out2)
		}
	}
}

// TestCLIPersistDrill runs the restart drill: mutate → kill (no parting
// snapshot) → restore → byte-equal verdicts, reported live by the binary.
func TestCLIPersistDrill(t *testing.T) {
	out, err := run(t, "-persist-drill")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== persist restart drill ==",
		"mutated to version ",
		"killed, restored snapshot v",
		"WAL records",
		"verdicts byte-equal: 200/200",
		"persist drill: OK",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIDecisionsOut: -decisions-out writes the retained provenance ring as
// parseable NDJSON with the expected fields.
func TestCLIDecisionsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.ndjson")
	out, err := run(t, "-decisions-out", path, "-audit-sample", "1")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "decisions: exported ") || !strings.Contains(out, path) {
		t.Fatalf("missing export line:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("export holds %d records, expected the run's decisions", len(lines))
	}
	for _, line := range lines[:10] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("NDJSON line did not parse: %v\n%s", err, line)
		}
		if rec["item_id"] == "" || rec["path"] == "" || rec["outcome"] == "" {
			t.Errorf("decision record missing provenance fields: %s", line)
		}
	}
}

// TestCLIOpsDecisionsExport scrapes /decisions/export from a live -ops
// process: full-ring NDJSON served as an attachment.
func TestCLIOpsDecisionsExport(t *testing.T) {
	base := startOps(t, "-ops-linger", "15s", "-audit-sample", "1")
	if !pollStatus(base+"/healthz", 200, 30*time.Second) {
		t.Fatal("ops surface never came up")
	}
	// Wait for the batch loop to finish so the ring is populated.
	deadline := time.Now().Add(30 * time.Second)
	var body string
	var disposition string
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/decisions/export")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(b)
			disposition = resp.Header.Get("Content-Disposition")
			if resp.StatusCode == 200 && strings.Count(body, "\n") >= 100 {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if strings.Count(body, "\n") < 100 {
		t.Fatalf("/decisions/export never filled up:\n%.400s", body)
	}
	if !strings.Contains(disposition, "attachment") {
		t.Errorf("Content-Disposition = %q, want attachment", disposition)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n")[:5] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("export NDJSON line did not parse: %v\n%s", err, line)
		}
	}
}

// TestCLIResilienceFlagsRequireServe: the drill-only flags exit 2 with a
// usage message when -serve is absent.
func TestCLIResilienceFlagsRequireServe(t *testing.T) {
	for _, flags := range [][]string{
		{"-chaos"},
		{"-deadline", "10ms"},
		{"-retry", "3"},
	} {
		out, err := exec.Command(binPath, flags...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: want exit error, got %v\n%s", flags, err, out)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Fatalf("%v: exit code = %d, want 2\n%s", flags, code, out)
		}
		if !strings.Contains(string(out), "set -serve too") {
			t.Errorf("%v: missing usage message:\n%s", flags, out)
		}
		if strings.Contains(string(out), "bootstrapping") {
			t.Errorf("%v: pipeline ran despite bad flag combination:\n%s", flags, out)
		}
	}
}

// TestCLIShardedDrill drives the scatter-gather tier end to end: the drill
// summary switches to the per-shard table, traffic spreads over more than
// one shard, and the single-engine drill lines stay absent.
func TestCLIShardedDrill(t *testing.T) {
	out, err := run(t, "-serve", "400ms", "-shards", "4", "-serve-clients", "4", "-metrics", "prom")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== sharded serve drill ==",
		"shards 4, clients 4",
		"scatter: ",
		"mutations applied: ",
		"shard ",
		"serve_shard_routed_total{shard=\"0\"}",
		"serve_scatter_batches_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "== serve drill ==") {
		t.Errorf("single-engine drill ran alongside -shards:\n%s", out)
	}
	if strings.Contains(out, "scatter: 0 batches") {
		t.Errorf("sharded drill served nothing:\n%s", out)
	}
	// Traffic must actually fan out: at least two shards with routed > 0.
	busy := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && len(f[0]) == 1 && f[0] >= "0" && f[0] <= "9" && f[1] != "routed" && f[1] != "0" {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("traffic landed on %d shard(s), want fan-out across >= 2:\n%s", busy, out)
	}
}

// TestCLIShardedChaosDrill: -shards with -chaos stalls shard 0 and fails its
// rebuilds; the summary prints the chaos and recovery lines.
func TestCLIShardedChaosDrill(t *testing.T) {
	out, err := run(t, "-serve", "400ms", "-shards", "3", "-serve-clients", "4",
		"-chaos", "-chaos-rebuild-p", "1.0", "-retry", "3")
	if err != nil {
		t.Fatalf("chimera failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"== sharded serve drill ==",
		"chaos: ",
		"shard_stall",
		"recovery: shard 0 degraded after clean rebuild: false",
		"retry (max 3, per-shard budgets): ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIShardsRequiresServe: -shards without -serve is a usage error.
func TestCLIShardsRequiresServe(t *testing.T) {
	out, err := run(t, "-shards", "4")
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("expected exit 2, got %v\n%s", err, out)
	}
	if !strings.Contains(out, "-shards only apply to the serving drill") {
		t.Errorf("missing usage hint:\n%s", out)
	}
	if out2, err2 := run(t, "-serve", "100ms", "-shards", "-1"); err2 == nil ||
		!strings.Contains(out2, "-shards must be >= 0") {
		t.Errorf("negative -shards accepted: %v\n%s", err2, out2)
	}
}
