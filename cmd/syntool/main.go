// Command syntool is the §5.1 synonym-finder: given a pattern with a \syn
// slot, it mines a product-title corpus for candidate synonyms, ranks them
// by context similarity, and runs the accept/reject feedback loop either
// interactively (default) or automatically against the catalog's
// ground-truth vocabulary (-auto -type <product type>).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/tokenize"
)

func main() {
	var (
		patSrc = flag.String("pattern", `(motor | engine | \syn) oils?`, "pattern with a \\syn slot")
		typ    = flag.String("type", "motor oil", "target product type (oracle for -auto)")
		corpus = flag.Int("corpus", 10000, "corpus size (generated titles)")
		seed   = flag.Uint64("seed", 42, "deterministic seed")
		auto   = flag.Bool("auto", false, "answer with the ground-truth oracle instead of stdin")
		topK   = flag.Int("k", 10, "candidates shown per iteration")
	)
	flag.Parse()

	pat, err := repro.ParsePattern(*patSrc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pattern: %v\n", err)
		os.Exit(2)
	}
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: *seed, NumTypes: 120})
	items := cat.GenerateBatch(repro.BatchSpec{Size: *corpus, Epoch: 1})
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = it.TitleTokens()
	}

	tool, err := repro.NewSynonymTool(pat, titles, repro.SynonymOptions{TopK: *topK})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tool: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pattern %s: %d golden matches, %d candidate synonyms in a %d-title corpus\n",
		pat.Raw(), tool.GoldenMatches(), tool.Remaining(), len(titles))

	if *auto {
		oracle := lexiconOracle(cat, *typ)
		stats := repro.RunSynonymSession(tool, oracle, 0, 3)
		fmt.Printf("session: %d iterations, %d candidates shown, %d accepted\n",
			stats.Iterations, stats.CandidatesShown, stats.Accepted)
	} else {
		interactive(tool, titles, *topK)
	}

	fmt.Println("\naccepted synonyms:")
	for _, ph := range tool.Accepted() {
		fmt.Printf("  %s\n", strings.Join(ph, " "))
	}
	fmt.Printf("\nexpanded rule pattern:\n  %s\n", tool.ExpandedPattern().String())
}

// interactive runs the analyst loop on stdin: y accepts, n rejects, q quits.
func interactive(tool *repro.SynonymTool, titles [][]string, topK int) {
	in := bufio.NewScanner(os.Stdin)
	for tool.Remaining() > 0 {
		top := tool.Top(topK)
		if len(top) == 0 {
			return
		}
		var accepted, rejected []string
		for _, c := range top {
			fmt.Printf("\ncandidate: %q  (%d matches)\n", c.Key(), c.Matches)
			for _, ti := range c.SampleTitles {
				fmt.Printf("  sample: %s\n", strings.Join(titles[ti], " "))
			}
			fmt.Print("accept? [y/n/q] ")
			if !in.Scan() {
				return
			}
			switch strings.TrimSpace(in.Text()) {
			case "y", "Y":
				accepted = append(accepted, c.Key())
			case "q", "Q":
				tool.Feedback(accepted, rejected)
				return
			default:
				rejected = append(rejected, c.Key())
			}
		}
		tool.Feedback(accepted, rejected)
	}
}

// lexiconOracle accepts candidates from the target type's vocabulary.
func lexiconOracle(cat *repro.Catalog, typeName string) repro.SynonymOracle {
	spec := cat.TypeByName(typeName)
	valid := map[string]bool{}
	if spec != nil {
		for _, m := range spec.Modifiers {
			valid[m] = true
		}
		for _, b := range spec.Brands {
			valid[b] = true
		}
		for _, s := range append(spec.Synonyms, spec.HeadTerms...) {
			toks := tokenize.Tokenize(s.Text)
			if len(toks) > 1 {
				valid[strings.Join(toks[:len(toks)-1], " ")] = true
			}
		}
	}
	return func(phrase []string) bool { return valid[strings.Join(phrase, " ")] }
}
