// Command rulegen is the §5.2 tool: generate classification rules from
// labeled data via frequent-sequence mining and Greedy-Biased selection,
// report the selection statistics, and optionally write the resulting
// rulebase as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 42, "deterministic seed")
		types  = flag.Int("types", 120, "taxonomy size")
		items  = flag.Int("items", 10000, "labeled items to mine")
		minSup = flag.Float64("minsup", 0.02, "AprioriAll minimum support per type")
		q      = flag.Int("q", 500, "max selected rules per type (the paper's q)")
		alpha  = flag.Float64("alpha", 0.7, "high/low confidence split")
		top    = flag.Int("top", 15, "example rules to print")
		out    = flag.String("o", "", "write the generated rulebase as JSON to this file")
	)
	flag.Parse()

	cat := repro.NewCatalog(repro.CatalogConfig{Seed: *seed, NumTypes: *types})
	labeled := cat.LabeledData(*items)
	fmt.Printf("mining %d labeled items across %d types (minsup %.3f, q=%d, α=%.2f)\n",
		len(labeled), *types, *minSup, *q, *alpha)

	res, err := repro.GenerateRules(labeled, repro.MiningOptions{
		MinSupport: *minSup, MaxRulesPerType: *q, Alpha: *alpha,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mining: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("candidates mined:        %d\n", res.TotalCandidates)
	fmt.Printf("rejected (training FPs): %d\n", res.RejectedFP)
	fmt.Printf("selected high-confidence: %d\n", len(res.High))
	fmt.Printf("selected low-confidence:  %d\n", len(res.Low))

	fmt.Printf("\nexample high-confidence rules:\n")
	for i, c := range res.High {
		if i >= *top {
			break
		}
		fmt.Printf("  %-50s → %-25s conf %.2f cov %d\n",
			c.Rule.Source, c.Rule.TargetType, c.Confidence, len(c.Coverage))
	}

	if *out != "" {
		rb := repro.NewRulebase()
		for _, r := range res.Selected() {
			if _, err := rb.Add(r, "rulegen"); err != nil {
				fmt.Fprintf(os.Stderr, "adding rule: %v\n", err)
				os.Exit(1)
			}
		}
		data, err := json.MarshalIndent(rb, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote rulebase (%d rules) to %s\n", rb.Len(), *out)
	}
}
