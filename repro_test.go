package repro_test

// Integration tests over the public facade: the end-to-end stories a
// downstream adopter would script, exercised exactly the way examples/ and
// cmd/ use the library.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro"
)

func TestFacadeRuleLifecycle(t *testing.T) {
	rb := repro.NewRulebase()
	r, err := repro.NewWhitelist("wedding band", "rings")
	if err != nil {
		t.Fatal(err)
	}
	id, err := rb.Add(r, "ana")
	if err != nil {
		t.Fatal(err)
	}
	exec := repro.NewIndexedExecutor(rb.Active())
	it := &repro.Item{ID: "1", Attrs: map[string]string{"Title": "Platinaire Wedding Band"}}
	if got := exec.Apply(it).FinalTypes(); len(got) != 1 || got[0] != "rings" {
		t.Fatalf("facade execution broken: %v", got)
	}
	if err := rb.Disable(id, "ana", "drill"); err != nil {
		t.Fatal(err)
	}
	exec = repro.NewIndexedExecutor(rb.Active())
	if got := exec.Apply(it).FinalTypes(); len(got) != 0 {
		t.Fatalf("disabled rule still fires: %v", got)
	}
}

func TestFacadeGuardedRule(t *testing.T) {
	r, err := repro.NewBlacklist("apple", "smart phones")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WithGuards(repro.Guard{Attr: "Price", Op: "<", Value: "100"}); err != nil {
		t.Fatal(err)
	}
	cheap := &repro.Item{ID: "1", Attrs: map[string]string{"Title": "apple case", "Price": "9.99"}}
	if !r.Matches(cheap) {
		t.Fatal("guarded blacklist should fire on the cheap item")
	}
}

func TestFacadeEndToEndPipeline(t *testing.T) {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 3, NumTypes: 30})
	p := repro.NewPipeline(repro.PipelineConfig{Seed: 3})
	p.Train(cat.LabeledData(2000))
	r, err := repro.NewWhitelist("rings?", "rings")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rules.Add(r, "ana"); err != nil {
		t.Fatal(err)
	}
	res := p.ProcessBatch(cat.GenerateBatch(repro.BatchSpec{Size: 600, Epoch: 0}))
	prec, rec := res.TruePrecisionRecall()
	if prec < 0.8 || rec < 0.4 {
		t.Fatalf("pipeline quality implausible: p=%.3f r=%.3f", prec, rec)
	}
	if _, err := p.EvaluateAndImprove(res); err != nil {
		t.Fatal(err)
	}
	if len(p.PrecisionHistory()) != 1 {
		t.Fatal("history not recorded through the facade")
	}
}

func TestFacadeMiningToRulebaseRoundTrip(t *testing.T) {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 5, NumTypes: 20})
	res, err := repro.GenerateRules(cat.LabeledData(1500), repro.MiningOptions{MinSupport: 0.05, MaxRulesPerType: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.High) == 0 {
		t.Fatal("nothing mined")
	}
	rb := repro.NewRulebase()
	for _, r := range res.Selected() {
		if _, err := rb.Add(r, "rulegen"); err != nil {
			t.Fatal(err)
		}
	}
	// Serialize, reload, and verify the rules still execute identically.
	data, err := json.Marshal(rb)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := repro.NewRulebase()
	if err := json.Unmarshal(data, reloaded); err != nil {
		t.Fatal(err)
	}
	a := repro.NewIndexedExecutor(rb.Active())
	b := repro.NewIndexedExecutor(reloaded.Active())
	for _, it := range cat.GenerateBatch(repro.BatchSpec{Size: 300, Epoch: 0}) {
		av, bv := a.Apply(it).FinalTypes(), b.Apply(it).FinalTypes()
		if strings.Join(av, "|") != strings.Join(bv, "|") {
			t.Fatalf("serialization changed semantics: %v vs %v", av, bv)
		}
	}
}

func TestFacadeSynonymToolFlow(t *testing.T) {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 7, NumTypes: 40})
	items := cat.GenerateBatch(repro.BatchSpec{Size: 3000, Epoch: 1})
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = it.TitleTokens()
	}
	pat := repro.MustParsePattern(`(area | \syn) rugs?`)
	tool, err := repro.NewSynonymTool(pat, titles, repro.SynonymOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stats := repro.RunSynonymSession(tool, func(ph []string) bool {
		return strings.Join(ph, " ") == "oriental" || strings.Join(ph, " ") == "braided"
	}, 6, 2)
	if stats.Iterations == 0 {
		t.Fatal("session never iterated")
	}
	expanded := tool.ExpandedPattern()
	if expanded.HasSyn() {
		t.Fatal("expansion incomplete")
	}
	// Whatever was accepted must now be deployable as a rule.
	if _, err := repro.NewWhitelist(expanded.String(), "area rugs"); err != nil {
		t.Fatalf("expanded pattern not deployable: %v", err)
	}
}

func TestFacadeMaintenance(t *testing.T) {
	rb := repro.NewRulebase()
	add := func(src string) {
		r, err := repro.NewWhitelist(src, "jeans")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
	add("jeans?")
	add("denim.*jeans?")
	pairs := repro.FindSubsumed(rb.Active())
	if len(pairs) != 1 {
		t.Fatalf("facade subsumption broken: %v", pairs)
	}
}

func TestFacadeSisterSystems(t *testing.T) {
	// KB + tagging.
	base := repro.BuildKB(repro.SyntheticKBSource(1, 0))
	tagger := repro.NewTagger(base)
	if ms := tagger.Mentions("breaking news obama arrives in melbourne"); len(ms) != 2 {
		t.Fatalf("tagging broken: %v", ms)
	}
	// EM.
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 9, NumTypes: 20})
	pairs := repro.GenerateEMPairs(cat, repro.NewRand(10), 50, 50)
	rs := &repro.EMRuleSet{Rules: []*repro.EMRule{
		repro.NewEMRule("t", repro.EMQGramJaccard("Title", 3, 0.8)),
	}}
	m := repro.EvaluateEM(rs, pairs)
	if m.Precision == 0 && m.Recall == 0 {
		t.Fatal("EM evaluation degenerate")
	}
	// IE.
	x := &repro.IEExtractor{Rules: repro.NewIERuleset(
		repro.NewIEDictRule("d", "Brand Name", []string{"apex"}, 0))}
	it := &repro.Item{ID: "1", Attrs: map[string]string{"Title": "apex laptop"}}
	if es := x.Extract(it); len(es) != 1 || es[0].Value != "apex" {
		t.Fatalf("IE facade broken: %v", es)
	}
}

func TestFacadeOrderIndependence(t *testing.T) {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 11, NumTypes: 20})
	rb := repro.NewRulebase()
	for _, src := range []string{"rings?", "jeans?", "laptops?"} {
		r, err := repro.NewWhitelist(src, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
	items := cat.GenerateBatch(repro.BatchSpec{Size: 100, Epoch: 0})
	rep := repro.CheckOrderIndependence(rb.Active(), items, repro.NewRand(12), 10)
	if !rep.Holds {
		t.Fatalf("order independence should hold: %s", rep.Witness)
	}
}
