// Classification: run the full Chimera pipeline (Figure 2) on generated
// batches — training, rules, the precision gate, the crowd-evaluation loop
// and a scale-down/restore drill on a drifting type.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 7, NumTypes: 60})
	p := repro.NewPipeline(repro.PipelineConfig{Seed: 7})

	// Bootstrap: labeled data for the learners, obvious rules from analysts.
	p.Train(cat.LabeledData(5000))
	mustAdd := func(r *repro.Rule, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.Rules.Add(r, "ana"); err != nil {
			log.Fatal(err)
		}
	}
	mustAdd(repro.NewWhitelist("rings?", "rings"))
	mustAdd(repro.NewGate("wedding band", "rings"))
	mustAdd(repro.NewWhitelist("(area | oriental | braided) rugs?", "area rugs"))
	mustAdd(repro.NewWhitelist("jeans?", "jeans"))
	mustAdd(repro.NewAttrExists("isbn", "books"))

	// Process a batch; evaluate a crowd sample; accept or repair.
	batch := cat.GenerateBatch(repro.BatchSpec{Size: 1500, Epoch: 0})
	res := p.ProcessBatch(batch)
	rep, err := p.EvaluateAndImprove(res)
	if err != nil {
		log.Fatal(err)
	}
	prec, rec := res.TruePrecisionRecall()
	fmt.Printf("batch: est precision %.3f (true %.3f), recall %.3f, declined %.1f%%\n",
		rep.EstPrecision, prec, rec, 100*res.DeclineRate())
	fmt.Printf("gate (0.92) passed: %v; analyst wrote %d patch rules, relabeled %d pairs\n",
		rep.PassedGate, len(rep.NewRuleIDs), rep.Relabeled)

	// Scale-down drill: rings classification suddenly degrades → route the
	// type to manual review, then restore.
	tok, err := p.ScaleDownType("rings", "ana", "vendor sent mislabeled rings")
	if err != nil {
		log.Fatal(err)
	}
	down := p.ProcessBatch(cat.GenerateBatch(repro.BatchSpec{Size: 500, Epoch: 0, OnlyTypes: []string{"rings"}}))
	fmt.Printf("\nscaled down: %.1f%% of a rings-only batch declined to manual\n", 100*down.DeclineRate())
	if err := p.Restore(tok, "dev"); err != nil {
		log.Fatal(err)
	}
	up := p.ProcessBatch(cat.GenerateBatch(repro.BatchSpec{Size: 500, Epoch: 0, OnlyTypes: []string{"rings"}}))
	fmt.Printf("restored: %.1f%% declined\n", 100*up.DeclineRate())
	fmt.Printf("\n%s\n", p.Describe())
}
