// Rulegen: the §5.2 flow — mine frequent token sequences from labeled data,
// score and select rules with Greedy-Biased, and inspect what came out.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 11, NumTypes: 30})
	labeled := cat.LabeledData(4000)

	res, err := repro.GenerateRules(labeled, repro.MiningOptions{
		MinSupport:      0.05,
		MaxRulesPerType: 25,
		Alpha:           0.7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d candidates from %d labeled items; rejected %d with training false positives\n",
		res.TotalCandidates, len(labeled), res.RejectedFP)
	fmt.Printf("selected %d high-confidence and %d low-confidence rules (α=0.7)\n\n",
		len(res.High), len(res.Low))

	fmt.Println("rules selected for 'jeans':")
	for _, c := range res.PerType["jeans"] {
		fmt.Printf("  %-40s conf %.2f covers %d items\n", c.Rule.Source, c.Confidence, len(c.Coverage))
	}

	// The selected rules are ordinary managed rules: drop them into a
	// rulebase and execute.
	rb := repro.NewRulebase()
	for _, r := range res.Selected() {
		if _, err := rb.Add(r, "rulegen"); err != nil {
			log.Fatal(err)
		}
	}
	exec := repro.NewIndexedExecutor(rb.Active())
	test := cat.GenerateBatch(repro.BatchSpec{Size: 2000, Epoch: 0})
	classified, correct := 0, 0
	for _, it := range test {
		finals := exec.Apply(it).FinalTypes()
		if len(finals) == 1 {
			classified++
			if finals[0] == it.TrueType {
				correct++
			}
		}
	}
	fmt.Printf("\non fresh data: %d/%d items classified by mined rules alone, precision %.3f\n",
		classified, len(test), float64(correct)/float64(classified))
}
