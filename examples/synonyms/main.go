// Synonyms: the §5.1 tool — expand the disjunction of a rule pattern with
// corpus-mined synonyms, with the feedback loop driven by a scripted
// analyst. Reproduces the motor-oil walkthrough of the paper.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// R3 from the paper: the analyst wants the tool to expand the first
	// disjunction of (motor | engine) oils?.
	pat := repro.MustParsePattern(`(motor | engine | \syn) oils?`)

	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 13, NumTypes: 80})
	items := cat.GenerateBatch(repro.BatchSpec{Size: 8000, Epoch: 1})
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = it.TitleTokens()
	}

	tool, err := repro.NewSynonymTool(pat, titles, repro.SynonymOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d golden matches seed the context vectors; %d candidates to rank\n\n",
		tool.GoldenMatches(), tool.Remaining())

	// The analyst knows a vehicle word when they see one.
	vehicles := map[string]bool{
		"truck": true, "car": true, "suv": true, "van": true, "vehicle": true,
		"motorcycle": true, "pickup": true, "scooter": true, "atv": true,
		"boat": true, "auto": true, "automotive": true,
	}
	iteration := 0
	for tool.Remaining() > 0 && iteration < 5 {
		iteration++
		top := tool.Top(10)
		if len(top) == 0 {
			break
		}
		fmt.Printf("iteration %d — top candidates:\n", iteration)
		var accepted, rejected []string
		for _, c := range top {
			verdict := "reject"
			if vehicles[c.Key()] {
				verdict = "ACCEPT"
				accepted = append(accepted, c.Key())
			} else {
				rejected = append(rejected, c.Key())
			}
			fmt.Printf("  %-22s score %.3f matches %d → %s\n", c.Key(), c.Score, c.Matches, verdict)
		}
		tool.Feedback(accepted, rejected) // Rocchio re-ranks the rest
		fmt.Println()
	}

	var found []string
	for _, ph := range tool.Accepted() {
		found = append(found, strings.Join(ph, " "))
	}
	fmt.Printf("accepted synonyms: %s\n", strings.Join(found, ", "))
	fmt.Printf("expanded rule (the paper's R2, grown from R1):\n  %s → motor oil\n",
		tool.ExpandedPattern().String())
}
