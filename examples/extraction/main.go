// Extraction: the §6 IE substrate — dictionary rules with context
// constraints for brands, unit-pattern rules for weights/sizes, and
// normalization rules ("the big blue" → "IBM Corporation").
package main

import (
	"fmt"

	"repro"
	"repro/internal/ie"
)

func main() {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 19, NumTypes: 60})

	// Brand dictionary straight from the KB ("Chimera uses several KBs that
	// contain brand names").
	brandSet := map[string]bool{}
	for _, ty := range cat.Types() {
		for _, b := range ty.Brands {
			brandSet[b] = true
		}
	}
	var brands []string
	for b := range brandSet {
		brands = append(brands, b)
	}

	weightRule := &ie.UnitRule{RuleID: "unit-weight", Attr: "Weight", Units: map[string]string{
		"oz": "oz", "lb": "lb", "qt": "qt", "ml": "ml",
	}}
	sizeRule := &ie.UnitRule{RuleID: "unit-size", Attr: "Size", Units: map[string]string{
		"in": "inch", "inch": "inch", "ft": "ft",
	}}
	x := &repro.IEExtractor{
		Rules: repro.NewIERuleset(
			repro.NewIEDictRule("dict-brand", "Brand Name", brands, 1),
			weightRule, sizeRule,
		),
		Normalizers: []*ie.Normalizer{repro.NewIENormalizer("norm-brand", map[string][]string{
			"LubOil Motor Company": {"luboil"},
			"Dickies Workwear":     {"dickies"},
		})},
	}

	titles := []string{
		"LubOil synthetic motor oil 5 qt jug",
		"Dickies 38in. x 30in. relaxed fit denim jeans",
		"morningpeak medium roast ground coffee 12oz",
	}
	for _, title := range titles {
		it := &repro.Item{ID: "x", Attrs: map[string]string{"Title": title}}
		fmt.Printf("%s\n", title)
		for _, e := range x.Extract(it) {
			fmt.Printf("  %-12s = %q (rule %s, tokens %d–%d)\n", e.Attr, e.Value, e.RuleID, e.Start, e.End)
		}
		fmt.Println()
	}

	// Measured against the catalog's ground truth, and against the learned
	// baseline the paper's industry survey says loses on maintainability.
	test := cat.GenerateBatch(repro.BatchSpec{Size: 2000, Epoch: 0})
	p, r := repro.EvaluateIE(x.Extract, test, "Brand Name")
	fmt.Printf("dictionary brand extraction on 2000 items: precision %.3f recall %.3f\n", p, r)

	tagger := repro.NewIETokenTagger("Brand Name", 4)
	tagger.Train(cat.GenerateBatch(repro.BatchSpec{Size: 4000, Epoch: 0}))
	lp, lr := repro.EvaluateIE(func(it *repro.Item) []repro.IEExtraction {
		return tagger.Extract(it.TitleTokens())
	}, test, "Brand Name")
	fmt.Printf("learned-tagger baseline:                    precision %.3f recall %.3f\n", lp, lr)
}
