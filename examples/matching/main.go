// Matching: the §6 entity-matching substrate — analyst match rules in the
// paper's own notation, evaluated on a labeled pair corpus with blocking.
package main

import (
	"fmt"

	"repro"
)

func main() {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 17, NumTypes: 40})
	pairs := repro.GenerateEMPairs(cat, repro.NewRand(18), 400, 400)

	// The paper's book rule: [a.isbn = b.isbn] ∧ [jaccard.3g(title) ≥ 0.8],
	// plus two analyst rules for non-book products.
	rules := &repro.EMRuleSet{Rules: []*repro.EMRule{
		repro.NewEMRule("books",
			repro.EMAttrEquals("isbn"),
			repro.EMQGramJaccard("Title", 3, 0.5)),
		repro.NewEMRule("brand-title",
			repro.EMTokenJaccard("Title", 0.6),
			repro.EMAttrEquals("Brand Name")),
		repro.NewEMRule("title-strict",
			repro.EMQGramJaccard("Title", 3, 0.8)),
	}}
	for _, r := range rules.Rules {
		fmt.Println(r)
	}

	m := repro.EvaluateEM(rules, pairs)
	fmt.Printf("\n%d pairs: precision %.3f, recall %.3f, F1 %.3f\n",
		len(pairs), m.Precision, m.Recall, m.F1)
	for id, n := range m.PerRule {
		fmt.Printf("  %-14s matched %d pairs\n", id, n)
	}

	// Disable a misbehaving rule — same scale-down story as classification.
	rules.Rules[2].Disabled = true
	m2 := repro.EvaluateEM(rules, pairs)
	fmt.Printf("\nwith title-strict disabled: precision %.3f, recall %.3f (recall is the price)\n",
		m2.Precision, m2.Recall)

	// Blocking keeps candidate generation away from the cross product.
	items := cat.GenerateBatch(repro.BatchSpec{Size: 2000, Epoch: 0})
	blocker := repro.NewEMBlocker(items)
	total := 0
	for _, it := range items[:100] {
		total += len(blocker.Candidates(it, 2))
	}
	fmt.Printf("\nblocking: %.0f candidates/record instead of %d\n", float64(total)/100, len(items))
}
