// Ruledev: the §4 rule-development loop — an analyst refines a rule against
// an indexed development corpus, getting instant coverage/precision/confusion
// feedback for every variation; the final candidate is crowd-validated
// before deployment (§4's crowd-assisted rule creation), and a taxonomy
// split is migrated with ProposeRetarget.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	cat := repro.NewCatalog(repro.CatalogConfig{Seed: 23, NumTypes: 60})
	dev := repro.NewDevSession(cat.GenerateBatch(repro.BatchSpec{Size: 6000, Epoch: 0}))
	fmt.Printf("development corpus: %d labeled items, indexed once\n\n", dev.Size())

	// The analyst's refinement session for a motor-oil rule, from too-broad
	// to production-ready — each attempt is one indexed query.
	attempts := []string{
		"oils?",
		"(motor | engine) oils?",
		"(motor | engine | truck | car | motorcycle | boat | atv | suv | van | pickup | vehicle | scooter) (oil | lubricant)s?",
	}
	var last *repro.DevReport
	for i, src := range attempts {
		rep, err := dev.Try(src, "motor oil")
		if err != nil {
			log.Fatal(err)
		}
		last = rep
		fmt.Printf("attempt %d: %s\n", i+1, src)
		fmt.Printf("  coverage %d, precision %.3f, %v\n", rep.Coverage, rep.Precision, rep.Elapsed.Round(1000))
		for j, c := range rep.Confusions {
			if j >= 3 {
				break
			}
			fmt.Printf("  confused with %q ×%d\n", c.Label, c.Count)
		}
		fmt.Println()
	}

	// Crowd validation before deployment (§4: crowdsourcing helps the
	// analyst create rules).
	corpus := cat.GenerateBatch(repro.BatchSpec{Size: 4000, Epoch: 0})
	cr := repro.NewCrowd(repro.CrowdConfig{Seed: 24})
	est, ok, err := repro.ValidateRule(last.Rule, corpus, cr, repro.NewRand(25), 40, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crowd validation: precision %.3f [%.3f, %.3f] on %d samples → deploy: %v (cost %d answers)\n",
		est.Precision, est.WilsonLo, est.WilsonHi, est.Sampled, ok, cr.Spent())

	// Later, the taxonomy splits "pants" into "work pants" and "jeans":
	// retarget the orphaned rules instead of rewriting them by hand.
	rb := repro.NewRulebase()
	orphan, err := repro.NewWhitelist("(pants? | jeans?)", "pants")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rb.Add(orphan, "ana"); err != nil {
		log.Fatal(err)
	}
	relabeled := repro.NewDataIndex(cat.GenerateBatch(repro.BatchSpec{
		Size: 3000, Epoch: 0, OnlyTypes: []string{"work pants", "jeans"},
	}))
	props := repro.ProposeRetarget(rb.Active(), relabeled, map[string]bool{"pants": true}, 0.2)
	for _, p := range props {
		var dist []string
		for _, lc := range p.Distribution {
			dist = append(dist, fmt.Sprintf("%s×%d", lc.Label, lc.Count))
		}
		fmt.Printf("\ntaxonomy split: rule %q covered %d items (%s)\n",
			orphan.Source, p.Coverage, strings.Join(dist, ", "))
		for _, nr := range p.NewRules {
			fmt.Printf("  proposed: %s\n", nr)
		}
	}
}
