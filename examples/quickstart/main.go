// Quickstart: write a few analyst rules, execute them over product items,
// and read the explainable verdicts — the 30-second tour of the library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rb := repro.NewRulebase()

	// The paper's opening examples: "if the title contains 'wedding band'
	// then it is a ring", "if a product has an isbn attribute it is a book".
	add := func(r *repro.Rule, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rb.Add(r, "ana"); err != nil {
			log.Fatal(err)
		}
	}
	add(repro.NewWhitelist("rings?", "rings"))
	add(repro.NewWhitelist("wedding band", "rings"))
	add(repro.NewWhitelist("(motor | engine) oils?", "motor oil"))
	add(repro.NewBlacklist("olive oils?", "motor oil"))
	add(repro.NewAttrExists("isbn", "books"))

	exec := repro.NewIndexedExecutor(rb.Active())

	items := []*repro.Item{
		{ID: "1", Attrs: map[string]string{"Title": "Always & Forever Platinaire Wedding Band"}},
		{ID: "2", Attrs: map[string]string{"Title": "Castrol GTX Motor Oil 5 qt"}},
		{ID: "3", Attrs: map[string]string{"Title": "Oliveto Extra Virgin Olive Oil"}},
		{ID: "4", Attrs: map[string]string{"Title": "The Long Afternoon", "isbn": "9781234567890"}},
	}
	for _, it := range items {
		v := exec.Apply(it)
		fmt.Printf("%-45s → %v\n", it.Attrs["Title"], v.FinalTypes())
	}

	// Every prediction is explainable (§3.2's liability requirement).
	fmt.Println("\nwhy is item 1 a ring?")
	fmt.Print(exec.Apply(items[0]).Explain())

	// The rulebase is a managed system of record: disable a misfiring rule
	// and the audit log remembers who did what.
	_ = rb.Disable(rb.Active()[0].ID, "ana", "demo scale-down")
	fmt.Printf("\nrulebase: %+v\n", rb.Stats().ByStatus)
	last := rb.Audit()[len(rb.Audit())-1]
	fmt.Printf("last audit entry: v%d %s %s by %s\n", last.Version, last.Action, last.RuleID, last.Actor)
}
