package repro_test

import (
	"fmt"

	"repro"
)

// ExampleNewWhitelist shows the paper's opening rule: a title containing
// "wedding band" classifies as a ring.
func ExampleNewWhitelist() {
	rb := repro.NewRulebase()
	r, _ := repro.NewWhitelist("wedding band", "rings")
	_, _ = rb.Add(r, "ana")

	exec := repro.NewIndexedExecutor(rb.Active())
	it := &repro.Item{ID: "1", Attrs: map[string]string{"Title": "Platinaire Wedding Band Size 7"}}
	fmt.Println(exec.Apply(it).FinalTypes())
	// Output: [rings]
}

// ExampleNewAttrExists shows the isbn → books rule.
func ExampleNewAttrExists() {
	r, _ := repro.NewAttrExists("isbn", "books")
	it := &repro.Item{ID: "1", Attrs: map[string]string{
		"Title": "The Long Afternoon",
		"isbn":  "9781234567890",
	}}
	fmt.Println(r.Matches(it))
	// Output: true
}

// ExampleRule_WithGuards shows the §4 rule-language extension: "if the title
// contains Apple but the price is less than $100 then it is not a phone".
func ExampleRule_WithGuards() {
	r, _ := repro.NewBlacklist("apple", "smart phones")
	r, _ = r.WithGuards(repro.Guard{Attr: "Price", Op: "<", Value: "100"})

	cheap := &repro.Item{ID: "1", Attrs: map[string]string{"Title": "apple case", "Price": "12.99"}}
	flagship := &repro.Item{ID: "2", Attrs: map[string]string{"Title": "apple smartphone", "Price": "899.00"}}
	fmt.Println(r.Matches(cheap), r.Matches(flagship))
	// Output: true false
}

// ExampleSubsumes shows the §4 maintenance example: jeans? subsumes
// denim.*jeans?, so the specific rule is redundant.
func ExampleSubsumes() {
	general := repro.MustParsePattern("jeans?")
	specific := repro.MustParsePattern("denim.*jeans?")
	fmt.Println(repro.Subsumes(general, specific), repro.Subsumes(specific, general))
	// Output: true false
}

// ExampleNewEMRule shows the paper's book-matching rule in its own notation.
func ExampleNewEMRule() {
	rule := repro.NewEMRule("book-rule",
		repro.EMAttrEquals("isbn"),
		repro.EMQGramJaccard("Title", 3, 0.8),
	)
	fmt.Println(rule)
	// Output: book-rule: [a.isbn = b.isbn] ^ [jaccard.3g(a.Title, b.Title) >= 0.80] => a ~ b
}

// ExampleVerdict_Explain shows rule-level provenance for a prediction — the
// explainability requirement of §3.2.
func ExampleVerdict_Explain() {
	rb := repro.NewRulebase()
	r, _ := repro.NewWhitelist("rings?", "rings")
	_, _ = rb.Add(r, "ana")
	exec := repro.NewSequentialExecutor(rb.Active())
	it := &repro.Item{ID: "1", Attrs: map[string]string{"Title": "Diamond Accent Ring"}}
	fmt.Print(exec.Apply(it).Explain())
	// Output:
	// type rings because:
	//   + [R000001 whitelist] rings? → rings
}
