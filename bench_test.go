package repro

// One benchmark per paper table/figure/number (E1–E11, see DESIGN.md's
// per-experiment index), each reporting the headline quantities via
// b.ReportMetric, plus micro-benchmarks for the hot paths (pattern matching,
// rule-index lookup, executor throughput, mining, the synonym tool).
//
// Experiment benchmarks run the corresponding experiments.E* function at a
// bench-sized scale: large enough for the paper's shape to show, small
// enough that `go test -bench=.` completes on a laptop.

import (
	"strconv"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/experiments"
	"repro/internal/learn"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/synonym"
	"repro/internal/tokenize"
)

// reportRow surfaces a named table cell as a benchmark metric when it
// parses as a number.
func reportCell(b *testing.B, rep *experiments.Report, rowPrefix, metric string, col int) {
	b.Helper()
	for _, row := range rep.Rows {
		if len(row) > col && len(row[0]) >= len(rowPrefix) && row[0][:len(rowPrefix)] == rowPrefix {
			if v, err := strconv.ParseFloat(row[col], 64); err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

func reportShape(b *testing.B, rep *experiments.Report) {
	b.Helper()
	if rep.ShapeOK {
		b.ReportMetric(1, "shape_ok")
	} else {
		b.ReportMetric(0, "shape_ok")
		b.Logf("%s shape not reproduced at bench scale:\n%s", rep.ID, rep.Markdown())
	}
}

// BenchmarkE1_ChimeraPrecision regenerates §3.3's precision/recall table:
// learning-only vs rules-only vs combined against the 92% gate.
func BenchmarkE1_ChimeraPrecision(b *testing.B) {
	// E1's shape (learning-only misses the gate) needs the full taxonomy
	// and training sizes; smaller catalogs are too easy for the ensemble.
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E1(experiments.ClassifyOptions{Seed: 42})
	}
	reportCell(b, rep, "learning-only", "prec_learning", 1)
	reportCell(b, rep, "rules+learning", "prec_combined", 1)
	reportCell(b, rep, "rules+learning", "recall_combined", 2)
	reportShape(b, rep)
}

// BenchmarkE2_SynonymTool regenerates Table 1 and the §5.1 evaluation
// (25 patterns, synonyms found, iterations).
func BenchmarkE2_SynonymTool(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E2(experiments.SynonymOptions{Seed: 42, CorpusSize: 8000})
	}
	withSyn := 0
	totalSyn := 0
	for _, row := range rep.Rows {
		if n, err := strconv.Atoi(row[2]); err == nil {
			totalSyn += n
			if n > 0 {
				withSyn++
			}
		}
	}
	b.ReportMetric(float64(withSyn), "patterns_with_synonyms")
	b.ReportMetric(float64(totalSyn)/float64(len(rep.Rows)), "mean_synonyms")
	reportShape(b, rep)
}

// BenchmarkE3_RuleGeneration regenerates the §5.2 numbers: mined candidates,
// high/low selection, precision of each set, decline reduction.
func BenchmarkE3_RuleGeneration(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E3(experiments.RuleGenOptions{
			Seed: 42, NumTypes: 60, TrainSize: 5000, TestSize: 2000, MinSupport: 0.03,
		})
	}
	reportCell(b, rep, "mined candidate rules", "candidates", 1)
	reportCell(b, rep, "selected high-confidence rules", "high_rules", 1)
	reportCell(b, rep, "precision of high-confidence set", "prec_high", 1)
	reportShape(b, rep)
}

// BenchmarkE4_RuleExecution regenerates the §4/§5.3 execution comparison
// (naive vs indexed vs parallel over a 20k-rule-class rulebase).
func BenchmarkE4_RuleExecution(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E4(experiments.ExecOptions{
			Seed: 42, NumTypes: 80, RuleCount: 8000, ItemCount: 800,
		})
	}
	reportShape(b, rep)
}

// BenchmarkE5_OrderIndependence regenerates the §4 property check.
func BenchmarkE5_OrderIndependence(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E5(experiments.ExecOptions{Seed: 42})
	}
	reportShape(b, rep)
}

// BenchmarkE6_RuleEvalMethods regenerates the §4 evaluation-method
// comparison (coverage vs crowd cost, overlap sharing).
func BenchmarkE6_RuleEvalMethods(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E6(experiments.EvalOptions{
			Seed: 42, NumTypes: 60, CorpusSize: 3000, Validation: 500, SamplePerRule: 10,
		})
	}
	reportShape(b, rep)
}

// BenchmarkE7_IE regenerates the §6 IE comparison.
func BenchmarkE7_IE(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E7(experiments.SisterOptions{Seed: 42, NumTypes: 60, TrainSize: 4000, TestSize: 1500})
	}
	reportCell(b, rep, "dictionary rule", "dict_precision", 2)
	reportCell(b, rep, "learned tagger", "learned_precision", 2)
	reportShape(b, rep)
}

// BenchmarkE8_EM regenerates the §6 EM numbers.
func BenchmarkE8_EM(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E8(experiments.SisterOptions{Seed: 42, NumTypes: 60})
	}
	reportCell(b, rep, "precision", "precision", 1)
	reportCell(b, rep, "recall", "recall", 1)
	reportShape(b, rep)
}

// BenchmarkE9_KBCuration regenerates the §6 KB curation-replay numbers.
func BenchmarkE9_KBCuration(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E9(experiments.SisterOptions{Seed: 42})
	}
	reportShape(b, rep)
}

// BenchmarkE10_DriftAndScaleDown regenerates the §2.2/§6 ongoing-operation
// drill (drift → detect → scale down → repair).
func BenchmarkE10_DriftAndScaleDown(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E10(experiments.ClassifyOptions{
			Seed: 42, NumTypes: 100, TrainSize: 6000, TestSize: 2500,
		})
	}
	reportShape(b, rep)
}

// BenchmarkE11_Maintenance regenerates the §4 maintenance analyses over a
// large rulebase.
func BenchmarkE11_Maintenance(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E11(experiments.ExecOptions{Seed: 42, NumTypes: 80, RuleCount: 6000})
	}
	reportCell(b, rep, "subsumed pairs", "subsumed", 1)
	reportCell(b, rep, "significant overlaps", "overlaps", 1)
	reportShape(b, rep)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the hot paths
// ---------------------------------------------------------------------------

func benchItems(n int) []*catalog.Item {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 80})
	return cat.GenerateBatch(catalog.BatchSpec{Size: n, Epoch: 0})
}

func BenchmarkPatternMatch(b *testing.B) {
	p := pattern.MustParse("(motor | engine | auto(motive)? | car | truck) (oil | lubricant)s?")
	tokens := tokenize.Tokenize("castrol gtx high mileage motor oil 5 qt synthetic blend")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Match(tokens) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkPatternParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pattern.Parse("(abrasive|sand(er|ing))[ -](wheels?|discs?)"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRules(b *testing.B) []*core.Rule {
	b.Helper()
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 80})
	rb := core.NewRulebase()
	for _, ty := range cat.Types() {
		for _, h := range ty.HeadTerms {
			if r, err := core.NewWhitelist(h.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
		for _, s := range ty.Synonyms {
			if r, err := core.NewWhitelist(s.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
	}
	return rb.Active()
}

func BenchmarkRuleIndexBuild(b *testing.B) {
	rules := benchRules(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewRuleIndex(rules)
	}
}

func BenchmarkRuleIndexLookup(b *testing.B) {
	rules := benchRules(b)
	idx := core.NewRuleIndex(rules)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.CandidatesFor(items[i%len(items)])
	}
}

func BenchmarkIndexedExecutorApply(b *testing.B) {
	rules := benchRules(b)
	ex := core.NewIndexedExecutor(rules)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Apply(items[i%len(items)])
	}
}

// BenchmarkInstrumentedExecutorApply measures the telemetry decorator against
// BenchmarkIndexedExecutorApply on the same rulebase and items; the ratio of
// the two ns/op figures is the observability overhead (budget: <5%).
func BenchmarkInstrumentedExecutorApply(b *testing.B) {
	rules := benchRules(b)
	ex := core.NewInstrumentedExecutor(core.NewIndexedExecutor(rules), obs.NewRegistry())
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Apply(items[i%len(items)])
	}
}

func BenchmarkSequentialExecutorApply(b *testing.B) {
	rules := benchRules(b)
	ex := core.NewSequentialExecutor(rules)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Apply(items[i%len(items)])
	}
}

func BenchmarkFrequentSequences(b *testing.B) {
	items := benchItems(400)
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = tokenize.NormalizeTokens(it.TitleTokens())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.FrequentSequences(titles, 0.05, 2, 4)
	}
}

func BenchmarkSynonymToolBuild(b *testing.B) {
	items := benchItems(4000)
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = it.TitleTokens()
	}
	p := pattern.MustParse(`(area | \syn) rugs?`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synonym.NewTool(p, titles, synonym.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveBayesPredict(b *testing.B) {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 60})
	train := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 0})
	nb := learn.NewNaiveBayes()
	nb.Train(train)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Predict(items[i%len(items)])
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 60})
	train := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 0})
	knn := learn.NewKNN(5)
	knn.Train(train)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.Predict(items[i%len(items)])
	}
}

func BenchmarkDevSessionTry(b *testing.B) {
	dev := core.NewDevSession(benchItems(4000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Try("(motor | engine) oils?", "motor oil"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuardedRuleMatch(b *testing.B) {
	r, err := core.NewBlacklist("apple", "smart phones")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.WithGuards(core.Guard{Attr: "Price", Op: "<", Value: "100"}); err != nil {
		b.Fatal(err)
	}
	it := &catalog.Item{ID: "x", Attrs: map[string]string{"Title": "apple branded case deluxe", "Price": "12.99"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Matches(it) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkEMMatchCorpus(b *testing.B) {
	items := benchItems(1500)
	rs := &em.RuleSet{Rules: []*em.Rule{
		em.NewRule("title", em.QGramJaccard("Title", 3, 0.8)),
		em.NewRule("brand-title", em.AttrEquals("Brand Name"), em.TokenJaccard("Title", 0.6)),
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.MatchCorpus(rs, items, 2, 4)
	}
}

func BenchmarkCatalogGenerate(b *testing.B) {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 120})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.GenerateBatch(catalog.BatchSpec{Size: 100, Epoch: 1})
	}
}
