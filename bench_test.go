package repro

// One benchmark per paper table/figure/number (E1–E11, see DESIGN.md's
// per-experiment index), each reporting the headline quantities via
// b.ReportMetric, plus micro-benchmarks for the hot paths (pattern matching,
// rule-index lookup, executor throughput, mining, the synonym tool).
//
// Experiment benchmarks run the corresponding experiments.E* function at a
// bench-sized scale: large enough for the paper's shape to show, small
// enough that `go test -bench=.` completes on a laptop.

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/chimera"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/experiments"
	"repro/internal/learn"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/persist"
	"repro/internal/randx"
	"repro/internal/serve"
	"repro/internal/synonym"
	"repro/internal/tokenize"
)

// reportRow surfaces a named table cell as a benchmark metric when it
// parses as a number.
func reportCell(b *testing.B, rep *experiments.Report, rowPrefix, metric string, col int) {
	b.Helper()
	for _, row := range rep.Rows {
		if len(row) > col && len(row[0]) >= len(rowPrefix) && row[0][:len(rowPrefix)] == rowPrefix {
			if v, err := strconv.ParseFloat(row[col], 64); err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

func reportShape(b *testing.B, rep *experiments.Report) {
	b.Helper()
	if rep.ShapeOK {
		b.ReportMetric(1, "shape_ok")
	} else {
		b.ReportMetric(0, "shape_ok")
		b.Logf("%s shape not reproduced at bench scale:\n%s", rep.ID, rep.Markdown())
	}
}

// BenchmarkE1_ChimeraPrecision regenerates §3.3's precision/recall table:
// learning-only vs rules-only vs combined against the 92% gate.
func BenchmarkE1_ChimeraPrecision(b *testing.B) {
	// E1's shape (learning-only misses the gate) needs the full taxonomy
	// and training sizes; smaller catalogs are too easy for the ensemble.
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E1(experiments.ClassifyOptions{Seed: 42})
	}
	reportCell(b, rep, "learning-only", "prec_learning", 1)
	reportCell(b, rep, "rules+learning", "prec_combined", 1)
	reportCell(b, rep, "rules+learning", "recall_combined", 2)
	reportShape(b, rep)
}

// BenchmarkE2_SynonymTool regenerates Table 1 and the §5.1 evaluation
// (25 patterns, synonyms found, iterations).
func BenchmarkE2_SynonymTool(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E2(experiments.SynonymOptions{Seed: 42, CorpusSize: 8000})
	}
	withSyn := 0
	totalSyn := 0
	for _, row := range rep.Rows {
		if n, err := strconv.Atoi(row[2]); err == nil {
			totalSyn += n
			if n > 0 {
				withSyn++
			}
		}
	}
	b.ReportMetric(float64(withSyn), "patterns_with_synonyms")
	b.ReportMetric(float64(totalSyn)/float64(len(rep.Rows)), "mean_synonyms")
	reportShape(b, rep)
}

// BenchmarkE3_RuleGeneration regenerates the §5.2 numbers: mined candidates,
// high/low selection, precision of each set, decline reduction.
func BenchmarkE3_RuleGeneration(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E3(experiments.RuleGenOptions{
			Seed: 42, NumTypes: 60, TrainSize: 5000, TestSize: 2000, MinSupport: 0.03,
		})
	}
	reportCell(b, rep, "mined candidate rules", "candidates", 1)
	reportCell(b, rep, "selected high-confidence rules", "high_rules", 1)
	reportCell(b, rep, "precision of high-confidence set", "prec_high", 1)
	reportShape(b, rep)
}

// BenchmarkE4_RuleExecution regenerates the §4/§5.3 execution comparison
// (naive vs indexed vs parallel over a 20k-rule-class rulebase).
func BenchmarkE4_RuleExecution(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E4(experiments.ExecOptions{
			Seed: 42, NumTypes: 80, RuleCount: 8000, ItemCount: 800,
		})
	}
	reportShape(b, rep)
}

// BenchmarkE5_OrderIndependence regenerates the §4 property check.
func BenchmarkE5_OrderIndependence(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E5(experiments.ExecOptions{Seed: 42})
	}
	reportShape(b, rep)
}

// BenchmarkE6_RuleEvalMethods regenerates the §4 evaluation-method
// comparison (coverage vs crowd cost, overlap sharing).
func BenchmarkE6_RuleEvalMethods(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E6(experiments.EvalOptions{
			Seed: 42, NumTypes: 60, CorpusSize: 3000, Validation: 500, SamplePerRule: 10,
		})
	}
	reportShape(b, rep)
}

// BenchmarkE7_IE regenerates the §6 IE comparison.
func BenchmarkE7_IE(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E7(experiments.SisterOptions{Seed: 42, NumTypes: 60, TrainSize: 4000, TestSize: 1500})
	}
	reportCell(b, rep, "dictionary rule", "dict_precision", 2)
	reportCell(b, rep, "learned tagger", "learned_precision", 2)
	reportShape(b, rep)
}

// BenchmarkE8_EM regenerates the §6 EM numbers.
func BenchmarkE8_EM(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E8(experiments.SisterOptions{Seed: 42, NumTypes: 60})
	}
	reportCell(b, rep, "precision", "precision", 1)
	reportCell(b, rep, "recall", "recall", 1)
	reportShape(b, rep)
}

// BenchmarkE9_KBCuration regenerates the §6 KB curation-replay numbers.
func BenchmarkE9_KBCuration(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E9(experiments.SisterOptions{Seed: 42})
	}
	reportShape(b, rep)
}

// BenchmarkE10_DriftAndScaleDown regenerates the §2.2/§6 ongoing-operation
// drill (drift → detect → scale down → repair).
func BenchmarkE10_DriftAndScaleDown(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E10(experiments.ClassifyOptions{
			Seed: 42, NumTypes: 100, TrainSize: 6000, TestSize: 2500,
		})
	}
	reportShape(b, rep)
}

// BenchmarkE11_Maintenance regenerates the §4 maintenance analyses over a
// large rulebase.
func BenchmarkE11_Maintenance(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E11(experiments.ExecOptions{Seed: 42, NumTypes: 80, RuleCount: 6000})
	}
	reportCell(b, rep, "subsumed pairs", "subsumed", 1)
	reportCell(b, rep, "significant overlaps", "overlaps", 1)
	reportShape(b, rep)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the hot paths
// ---------------------------------------------------------------------------

func benchItems(n int) []*catalog.Item {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 80})
	return cat.GenerateBatch(catalog.BatchSpec{Size: n, Epoch: 0})
}

func BenchmarkPatternMatch(b *testing.B) {
	p := pattern.MustParse("(motor | engine | auto(motive)? | car | truck) (oil | lubricant)s?")
	tokens := tokenize.Tokenize("castrol gtx high mileage motor oil 5 qt synthetic blend")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Match(tokens) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkPatternParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pattern.Parse("(abrasive|sand(er|ing))[ -](wheels?|discs?)"); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRules(b *testing.B) []*core.Rule {
	b.Helper()
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 80})
	rb := core.NewRulebase()
	for _, ty := range cat.Types() {
		for _, h := range ty.HeadTerms {
			if r, err := core.NewWhitelist(h.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
		for _, s := range ty.Synonyms {
			if r, err := core.NewWhitelist(s.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
	}
	return rb.Active()
}

func BenchmarkRuleIndexBuild(b *testing.B) {
	rules := benchRules(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewRuleIndex(rules)
	}
}

func BenchmarkRuleIndexLookup(b *testing.B) {
	rules := benchRules(b)
	idx := core.NewRuleIndex(rules)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.CandidatesFor(items[i%len(items)])
	}
}

func BenchmarkIndexedExecutorApply(b *testing.B) {
	rules := benchRules(b)
	ex := core.NewIndexedExecutor(rules)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Apply(items[i%len(items)])
	}
}

// BenchmarkInstrumentedExecutorApply measures the telemetry decorator against
// BenchmarkIndexedExecutorApply on the same rulebase and items; the ratio of
// the two ns/op figures is the observability overhead (budget: <5%).
func BenchmarkInstrumentedExecutorApply(b *testing.B) {
	rules := benchRules(b)
	ex := core.NewInstrumentedExecutor(core.NewIndexedExecutor(rules), obs.NewRegistry())
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Apply(items[i%len(items)])
	}
}

func BenchmarkSequentialExecutorApply(b *testing.B) {
	rules := benchRules(b)
	ex := core.NewSequentialExecutor(rules)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Apply(items[i%len(items)])
	}
}

func BenchmarkFrequentSequences(b *testing.B) {
	items := benchItems(400)
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = tokenize.NormalizeTokens(it.TitleTokens())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.FrequentSequences(titles, 0.05, 2, 4)
	}
}

func BenchmarkSynonymToolBuild(b *testing.B) {
	items := benchItems(4000)
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = it.TitleTokens()
	}
	p := pattern.MustParse(`(area | \syn) rugs?`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synonym.NewTool(p, titles, synonym.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveBayesPredict(b *testing.B) {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 60})
	train := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 0})
	nb := learn.NewNaiveBayes()
	nb.Train(train)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Predict(items[i%len(items)])
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 60})
	train := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 0})
	knn := learn.NewKNN(5)
	knn.Train(train)
	items := benchItems(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.Predict(items[i%len(items)])
	}
}

func BenchmarkDevSessionTry(b *testing.B) {
	dev := core.NewDevSession(benchItems(4000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Try("(motor | engine) oils?", "motor oil"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuardedRuleMatch(b *testing.B) {
	r, err := core.NewBlacklist("apple", "smart phones")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.WithGuards(core.Guard{Attr: "Price", Op: "<", Value: "100"}); err != nil {
		b.Fatal(err)
	}
	it := &catalog.Item{ID: "x", Attrs: map[string]string{"Title": "apple branded case deluxe", "Price": "12.99"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Matches(it) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkEMMatchCorpus(b *testing.B) {
	items := benchItems(1500)
	rs := &em.RuleSet{Rules: []*em.Rule{
		em.NewRule("title", em.QGramJaccard("Title", 3, 0.8)),
		em.NewRule("brand-title", em.AttrEquals("Brand Name"), em.TokenJaccard("Title", 0.6)),
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.MatchCorpus(rs, items, 2, 4)
	}
}

// ---------------------------------------------------------------------------
// Serving-under-mutation benchmarks (locked vs snapshot)
// ---------------------------------------------------------------------------

// benchServeSetup builds the serving rulebase (same population as benchRules)
// plus a shared item pool with pre-warmed token caches (items are shared
// across the parallel classifier goroutines, and the lazy TitleTokens cache
// must be populated before they race over it).
func benchServeSetup(b *testing.B) (*core.Rulebase, string, []*catalog.Item) {
	b.Helper()
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 80})
	rb := core.NewRulebase()
	for _, ty := range cat.Types() {
		for _, h := range ty.HeadTerms {
			if r, err := core.NewWhitelist(h.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
		for _, s := range ty.Synonyms {
			if r, err := core.NewWhitelist(s.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
	}
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 256, Epoch: 0})
	for _, it := range items {
		it.TitleTokens()
	}
	return rb, rb.Active()[0].ID, items
}

// lockedServe is the pre-snapshot serving design this PR replaces: one
// executor guarded by a RWMutex, classification under the read lock, and a
// rulebase mutation forcing the next reader to rebuild inline under the
// write lock — which stalls every concurrent reader for the whole rebuild
// and convoys them on the lock even when nothing changed.
type lockedServe struct {
	rb   *core.Rulebase
	reg  *obs.Registry
	mu   sync.RWMutex
	ver  uint64
	exec core.Executor
}

func newLockedServe(rb *core.Rulebase) *lockedServe {
	ls := &lockedServe{rb: rb, reg: obs.NewRegistry()}
	ls.refresh()
	return ls
}

func (ls *lockedServe) refresh() {
	ver, active := ls.rb.ActiveView()
	// Same telemetry decoration as the snapshot path, so the comparison
	// isolates the serving architecture, not the instrumentation.
	ls.exec = core.NewInstrumentedExecutor(core.NewIndexedExecutor(active), ls.reg)
	ls.ver = ver
}

func (ls *lockedServe) Apply(it *catalog.Item) *core.Verdict {
	for {
		ls.mu.RLock()
		if ls.ver == ls.rb.Version() {
			v := ls.exec.Apply(it)
			ls.mu.RUnlock()
			return v
		}
		ls.mu.RUnlock()
		ls.mu.Lock()
		if ls.ver != ls.rb.Version() {
			ls.refresh()
		}
		ls.mu.Unlock()
	}
}

// serveMutationEvery is the serving benchmarks' mutation cadence: one rule
// mutation per this many items served — the pipeline's own maintenance
// rhythm (EvaluateAndImprove writes tens of patch rules, confidence updates
// and scale-downs per ~2000-item batch). The locked design must rebuild
// inline once per observed version change (~150–300µs for this rulebase),
// so under this load a large fraction of its serving time goes to rebuilds;
// the snapshot engine's debounced background loop collapses the same
// mutation stream into far fewer rebuilds, and its readers never wait for
// one. (On a multi-core host the gap widens further: an inline rebuild
// under the write lock stalls every reader; the snapshot path stalls none.)
const serveMutationEvery = 50

// runServeBench drives parallel classification through apply, injecting one
// rule mutation per serveMutationEvery items served.
func runServeBench(b *testing.B, setup func(*core.Rulebase) func(*catalog.Item) *core.Verdict) {
	rb, toggleID, items := benchServeSetup(b)
	apply := setup(rb)

	var served atomic.Int64
	var toggle atomic.Bool
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			apply(items[i%len(items)])
			i++
			if served.Add(1)%serveMutationEvery == 0 {
				if toggle.CompareAndSwap(false, true) {
					_ = rb.Disable(toggleID, "bench", "mutation load")
				} else {
					toggle.Store(false)
					_ = rb.Enable(toggleID, "bench", "mutation load")
				}
			}
		}
	})
}

// BenchmarkServeLockedUnderMutation is the baseline: classification under the
// rulebase-guarding RWMutex, rebuilds inline on the serving path.
func BenchmarkServeLockedUnderMutation(b *testing.B) {
	runServeBench(b, func(rb *core.Rulebase) func(*catalog.Item) *core.Verdict {
		return newLockedServe(rb).Apply
	})
}

// BenchmarkServeSnapshotUnderMutation is the serving layer's path: one atomic
// load per read, rebuild-and-swap on the engine's own goroutine.
// EXPERIMENTS.md records the measured speedup over the locked baseline
// (acceptance floor: 2×).
func BenchmarkServeSnapshotUnderMutation(b *testing.B) {
	runServeBench(b, func(rb *core.Rulebase) func(*catalog.Item) *core.Verdict {
		eng := serve.NewEngine(rb, serve.EngineOptions{Obs: obs.NewRegistry()})
		eng.Start()
		b.Cleanup(eng.Close)
		return func(it *catalog.Item) *core.Verdict {
			return eng.Current().Apply(it)
		}
	})
}

// BenchmarkServeAcquireUnderMutation measures the old Pipeline.Classify hot
// path on a started engine: Acquire reads the rulebase version under its
// mutex on every call (and rebuilds inline when a mutation landed between
// the async loop's swaps), so readers convoy with the mutation stream.
// Pipeline.Classify/RuleHealth now use Current() when the engine is started;
// EXPERIMENTS.md records the measured gap.
func BenchmarkServeAcquireUnderMutation(b *testing.B) {
	runServeBench(b, func(rb *core.Rulebase) func(*catalog.Item) *core.Verdict {
		eng := serve.NewEngine(rb, serve.EngineOptions{Obs: obs.NewRegistry()})
		eng.Start()
		b.Cleanup(eng.Close)
		return func(it *catalog.Item) *core.Verdict {
			return eng.Acquire().Apply(it)
		}
	})
}

// ---------------------------------------------------------------------------
// Batch-classification benchmarks (per-item index probes vs batch-inverted
// join) — the standard 5k-item/1k-rule batch; acceptance floor: the batch
// matcher at ≥1.5× the per-item indexed throughput (EXPERIMENTS.md records
// the measured ratio).
// ---------------------------------------------------------------------------

// benchBatchWorkers is the worker count both batch-classification paths use,
// so the comparison isolates the matching strategy, not the parallelism.
const benchBatchWorkers = 4

// benchBatchSetup builds the standard load: a ~1k-rule whitelist population
// over a 250-type taxonomy and a 5k-item batch with pre-warmed token caches.
func benchBatchSetup(b *testing.B) ([]*core.Rule, []*catalog.Item) {
	b.Helper()
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 250})
	rb := core.NewRulebase()
	for _, ty := range cat.Types() {
		for _, h := range ty.HeadTerms {
			if r, err := core.NewWhitelist(h.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
		for _, s := range ty.Synonyms {
			if r, err := core.NewWhitelist(s.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
	}
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 5000, Epoch: 0})
	for _, it := range items {
		it.TitleTokens()
	}
	return rb.Active(), items
}

// BenchmarkBatchClassifyPerItemIndexed is the reference path: per-item
// CandidatesFor probes through the rule index, sharded across workers.
func BenchmarkBatchClassifyPerItemIndexed(b *testing.B) {
	rules, items := benchBatchSetup(b)
	ex := core.NewIndexedExecutor(rules)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExecuteBatchItemwise(ex, items, benchBatchWorkers)
	}
	b.ReportMetric(float64(len(rules)), "rules")
	b.ReportMetric(float64(b.N)*float64(len(items))/b.Elapsed().Seconds(), "items/sec")
}

// BenchmarkBatchClassifyBatchInverted is the batch-inverted matcher on the
// same rulebase, items and worker count.
func BenchmarkBatchClassifyBatchInverted(b *testing.B) {
	rules, items := benchBatchSetup(b)
	bm := core.NewBatchMatcher(core.NewIndexedExecutor(rules).Index())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.MatchBatch(items, benchBatchWorkers)
	}
	b.ReportMetric(float64(len(rules)), "rules")
	b.ReportMetric(float64(b.N)*float64(len(items))/b.Elapsed().Seconds(), "items/sec")
}

// ---------------------------------------------------------------------------
// Decision-provenance overhead: the full pipeline over the standard 5k-item
// batch with audit capture disabled, at the default 1-in-8 sampling, and at
// full capture. The acceptance budget is ≤5% overhead at default sampling
// (BENCH_PR6.json records the measured ratio).
// ---------------------------------------------------------------------------

// benchAuditPipeline is a trained pipeline with head-term whitelist rules
// over the 250-type taxonomy, audit configured as given. The training set is
// kept small: the KNN ensemble member's per-item cost scales with it, and a
// heavyweight classifier would only mask the audit overhead being measured.
func benchAuditPipeline(b *testing.B, cfg obs.AuditConfig) (*chimera.Pipeline, []*catalog.Item) {
	b.Helper()
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 250})
	p := chimera.New(chimera.Config{Seed: 7, Audit: obs.NewAuditLog(cfg)})
	p.Train(cat.LabeledData(500))
	for _, ty := range cat.Types() {
		for _, h := range ty.HeadTerms {
			if r, err := core.NewWhitelist(h.Text, ty.Name); err == nil {
				_, _ = p.Rules.Add(r, "bench")
			}
		}
	}
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 5000, Epoch: 0})
	for _, it := range items {
		it.TitleTokens()
	}
	return p, items
}

func benchProcessBatchAudit(b *testing.B, cfg obs.AuditConfig) {
	p, items := benchAuditPipeline(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ProcessBatch(items)
	}
	b.ReportMetric(float64(b.N)*float64(len(items))/b.Elapsed().Seconds(), "items/sec")
}

// BenchmarkBatchClassifyAuditOff is the baseline: provenance capture
// disabled entirely (negative capacity).
func BenchmarkBatchClassifyAuditOff(b *testing.B) {
	benchProcessBatchAudit(b, obs.AuditConfig{Capacity: -1})
}

// BenchmarkBatchClassifyAuditDefault is the shipped configuration: 1-in-8
// sampling with always-capture bias for declines and degraded decisions.
func BenchmarkBatchClassifyAuditDefault(b *testing.B) {
	benchProcessBatchAudit(b, obs.AuditConfig{})
}

// BenchmarkBatchClassifyAuditFull captures every decision — the upper bound
// an operator pays for -audit-sample 1.
func BenchmarkBatchClassifyAuditFull(b *testing.B) {
	benchProcessBatchAudit(b, obs.AuditConfig{SampleEvery: 1})
}

func BenchmarkCatalogGenerate(b *testing.B) {
	cat := catalog.New(catalog.Config{Seed: 7, NumTypes: 120})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.GenerateBatch(catalog.BatchSpec{Size: 100, Epoch: 1})
	}
}

// ---------------------------------------------------------------------------
// Sharded-vs-single serving throughput (scatter-gather over 1/2/4/8 shards)
// — acceptance floor: the 4-shard tier at ≥2× the single-engine items/sec
// under the same mutation load (EXPERIMENTS.md records the measured ratios).
//
// Each shard is one capacity unit: a fixed worker pool (shardedBenchWorkers)
// over its own bounded queue and snapshot lifecycle. The handler sleeps
// shardedBenchStall per item, standing in for the downstream work a real
// classification RPC pays (feature fetch, enrichment, network) — so
// throughput is latency-bound, and the sharded win is latency overlap across
// independent shard pools, not CPU parallelism. That is the honest model for
// this repository's 1-CPU benchmark host; on a multi-core host the same
// structure additionally buys CPU parallelism.
// ---------------------------------------------------------------------------

// shardedBenchStall is the per-item downstream-work stand-in.
const shardedBenchStall = 100 * time.Microsecond

// shardedBenchWorkers is the worker-pool size of one capacity unit — the
// single-engine baseline gets exactly one unit, an N-shard tier gets N.
const shardedBenchWorkers = 2

// shardedBenchBatch is the client batch size; batches scatter across shards
// by routing key, so per-shard parts shrink as the tier widens.
const shardedBenchBatch = 16

// shardedBenchClients is the number of concurrent submitters — enough to
// keep every worker of the widest tier (8 shards × 2 workers) busy.
const shardedBenchClients = 24

// shardedBenchHandler sleeps the downstream stand-in, then classifies
// against the request's snapshot.
func shardedBenchHandler(ctx context.Context, snap *serve.Snapshot, it *catalog.Item) string {
	time.Sleep(shardedBenchStall)
	return snap.Apply(it).Explain()
}

// runShardedBench drives shardedBenchClients concurrent submit-and-wait
// loops through the given submit function, toggling a rule roughly once per
// serveMutationEvery items served (the same maintenance rhythm as the
// runServeBench family), and reports end-to-end items/sec.
func runShardedBench(b *testing.B, setup func(rb *core.Rulebase) (submit func([]*catalog.Item) error, closeFn func())) {
	rb, toggleID, items := benchServeSetup(b)
	submit, closeFn := setup(rb)
	defer closeFn()

	var cursor, served atomic.Int64
	var toggle atomic.Bool
	var failure atomic.Value
	b.SetParallelism(shardedBenchClients) // GOMAXPROCS is 1 on the bench host
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			off := int(cursor.Add(1)) * shardedBenchBatch % (len(items) - shardedBenchBatch + 1)
			if err := submit(items[off : off+shardedBenchBatch]); err != nil {
				failure.Store(err)
				return
			}
			if served.Add(shardedBenchBatch)%(serveMutationEvery*shardedBenchBatch) < shardedBenchBatch {
				if toggle.CompareAndSwap(false, true) {
					_ = rb.Disable(toggleID, "bench", "mutation load")
				} else {
					toggle.Store(false)
					_ = rb.Enable(toggleID, "bench", "mutation load")
				}
			}
		}
	})
	b.StopTimer()
	if err, _ := failure.Load().(error); err != nil {
		b.Fatalf("submit failed: %v", err)
	}
	b.ReportMetric(float64(b.N)*shardedBenchBatch/b.Elapsed().Seconds(), "items/sec")
}

// BenchmarkShardedServeSingleEngine is the baseline: one engine, one server,
// one capacity unit — every batch runs on a single worker pool.
func BenchmarkShardedServeSingleEngine(b *testing.B) {
	runShardedBench(b, func(rb *core.Rulebase) (func([]*catalog.Item) error, func()) {
		reg := obs.NewRegistry()
		eng := serve.NewEngine(rb, serve.EngineOptions{Obs: reg})
		eng.Start()
		srv := serve.NewServer[string](eng, shardedBenchHandler, serve.ServerOptions{
			Workers: shardedBenchWorkers, QueueDepth: 4 * shardedBenchClients, Obs: reg,
		})
		submit := func(batch []*catalog.Item) error {
			tk, err := srv.Submit(batch)
			if err != nil {
				return err
			}
			_, _, err = tk.Wait()
			return err
		}
		return submit, func() { srv.Drain(); eng.Close() }
	})
}

func runShardedServeBench(b *testing.B, shards int) {
	runShardedBench(b, func(rb *core.Rulebase) (func([]*catalog.Item) error, func()) {
		srv := serve.NewShardedServer(rb, shardedBenchHandler, serve.ShardedOptions{
			Shards:     shards,
			Workers:    shardedBenchWorkers,
			QueueDepth: 4 * shardedBenchClients,
			Obs:        obs.NewRegistry(),
		})
		submit := func(batch []*catalog.Item) error {
			tk, err := srv.Submit(batch)
			if err != nil {
				return err
			}
			return tk.Wait().Err()
		}
		return submit, srv.Close
	})
}

func BenchmarkShardedServeShards1(b *testing.B) { runShardedServeBench(b, 1) }
func BenchmarkShardedServeShards2(b *testing.B) { runShardedServeBench(b, 2) }
func BenchmarkShardedServeShards4(b *testing.B) { runShardedServeBench(b, 4) }
func BenchmarkShardedServeShards8(b *testing.B) { runShardedServeBench(b, 8) }

// ---------------------------------------------------------------------------
// Verdict-cache ladder: the snapshot serving path over a Zipf-skewed repeat
// stream at 0% / 50% / 90% nominal hit rates, against the same 90%-repeat
// stream served uncached. Skewed repeat traffic is the serving tier's normal
// diet (a head of popular items resubmitted by feeds and re-crawls), and the
// cache's value proposition is collapsing that head to a hash probe.
// Acceptance floor: ≥5× items/sec at the 90% rung vs cache-off
// (BENCH_PR8.json records the measured ratio and per-rung hit_rate).
// ---------------------------------------------------------------------------

const (
	benchCacheBatch   = 1000  // items per submission batch
	benchCacheBatches = 32    // pre-drawn batches, cycled by the timed loop
	benchCacheHot     = 500   // resident hot pool, Zipf(s=1.1) over ranks
	benchCacheCold    = 20000 // rotating cold pool: always a miss at this cap
	// benchCacheCap sizes the cache at ~2× the hot pool: enough that cold
	// churn evicts other cold entries instead of the Zipf tail of the hot
	// set (the OPERATIONS.md sizing rule). At exactly hot-pool size the tail
	// gets evicted by churn and the measured hit rate sags below nominal.
	benchCacheCap = 1024
)

// benchCacheSetup builds the ~1k-rule rulebase and the pre-drawn batches for
// one ladder rung: hotShare of each batch drawn Zipf-skewed from the hot
// pool, the rest taken round-robin from a cold pool far larger than the
// cache, so the nominal hit rate is the hot share (steady-state, warm cache)
// and every cold item exercises the insert/evict path.
func benchCacheSetup(b *testing.B, hotShare float64) (*core.Rulebase, [][]*catalog.Item) {
	b.Helper()
	cat := catalog.New(catalog.Config{Seed: 11, NumTypes: 250})
	rb := core.NewRulebase()
	for _, ty := range cat.Types() {
		for _, h := range ty.HeadTerms {
			if r, err := core.NewWhitelist(h.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
		for _, s := range ty.Synonyms {
			if r, err := core.NewWhitelist(s.Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "bench")
			}
		}
	}
	hot := cat.GenerateBatch(catalog.BatchSpec{Size: benchCacheHot, Epoch: 0})
	cold := cat.GenerateBatch(catalog.BatchSpec{Size: benchCacheCold, Epoch: 1})
	// Pre-warm token and fingerprint caches on both pools: the ladder
	// measures serving, not lazy item initialization.
	for _, it := range hot {
		it.TitleTokens()
		it.Fingerprint()
	}
	for _, it := range cold {
		it.TitleTokens()
		it.Fingerprint()
	}
	rng := randx.New(11).Split("cache-bench")
	zipf := randx.NewZipf(rng, benchCacheHot, 1.1)
	batches := make([][]*catalog.Item, benchCacheBatches)
	coldIdx := 0
	for i := range batches {
		batch := make([]*catalog.Item, benchCacheBatch)
		for j := range batch {
			if rng.Float64() < hotShare {
				batch[j] = hot[zipf.NextWith(rng)]
			} else {
				batch[j] = cold[coldIdx%len(cold)]
				coldIdx++
			}
		}
		batches[i] = batch
	}
	return rb, batches
}

// benchCacheRun serves the rung's batches through Snapshot.ApplyCached on an
// engine with the given cache capacity (0 = uncached baseline), after one
// warm pass so the steady state — hot pool resident, fingerprints computed —
// is what the clock sees. Reports items/sec and the measured hit_rate over
// the timed window.
func benchCacheRun(b *testing.B, hotShare float64, capacity int) {
	rb, batches := benchCacheSetup(b, hotShare)
	eng := serve.NewEngine(rb, serve.EngineOptions{
		Obs:   obs.NewRegistry(),
		Cache: serve.CacheConfig{Capacity: capacity},
	})
	b.Cleanup(eng.Close)
	snap := eng.Current()
	for _, batch := range batches {
		for _, it := range batch {
			snap.ApplyCached(it)
		}
	}
	start := eng.Cache().Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range batches[i%len(batches)] {
			snap.ApplyCached(it)
		}
	}
	b.StopTimer()
	end := eng.Cache().Stats()
	hits := float64(end.Hits - start.Hits)
	lookups := hits + float64(end.Misses-start.Misses) + float64(end.Coalesced-start.Coalesced)
	if lookups > 0 {
		b.ReportMetric(hits/lookups, "hit_rate")
	}
	b.ReportMetric(float64(b.N)*float64(benchCacheBatch)/b.Elapsed().Seconds(), "items/sec")
}

// BenchmarkVerdictCacheOff is the baseline: the 90%-repeat Zipf stream
// served uncached (ApplyCached on a nil cache is exactly Apply).
func BenchmarkVerdictCacheOff(b *testing.B) { benchCacheRun(b, 0.9, 0) }

// BenchmarkVerdictCacheHit0 is the adversarial rung: pure cold traffic, so
// every lookup pays the miss path (probe, insert, evict) on top of Apply —
// the cache's worst-case overhead.
func BenchmarkVerdictCacheHit0(b *testing.B) { benchCacheRun(b, 0.0, benchCacheCap) }

// BenchmarkVerdictCacheHit50 is the mixed rung.
func BenchmarkVerdictCacheHit50(b *testing.B) { benchCacheRun(b, 0.5, benchCacheCap) }

// BenchmarkVerdictCacheHit90 is the headline rung: Zipf head traffic at a
// 90% nominal hit rate.
func BenchmarkVerdictCacheHit90(b *testing.B) { benchCacheRun(b, 0.9, benchCacheCap) }

// --- Persistence overhead ladder (internal/persist) --------------------------
//
// One op = one rulebase mutation (a confidence update through the versioned
// audit path). The three rungs price durability: no store at all, a
// CRC-framed WAL append per mutation, and the same append with an fsync
// barrier — the bench.sh emitter turns the ns/op ratios into
// persist_wal_overhead_ratio / persist_wal_fsync_overhead_ratio.

// benchPersistRulebase seeds a rulebase with a pool of rules to mutate.
func benchPersistRulebase(b *testing.B) (*core.Rulebase, []string) {
	b.Helper()
	rb := core.NewRulebase()
	ids := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		r, err := core.NewWhitelist("widget "+strconv.Itoa(i), "gadget")
		if err != nil {
			b.Fatal(err)
		}
		id, err := rb.Add(r, "bench")
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	return rb, ids
}

func benchPersistMutations(b *testing.B, rb *core.Rulebase, ids []string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rb.UpdateConfidence(ids[i%len(ids)], 0.5+float64(i%50)/100, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistOff is the baseline: mutations with no store attached (the
// change feed has no subscribers, so nothing is even cloned).
func BenchmarkPersistOff(b *testing.B) {
	rb, ids := benchPersistRulebase(b)
	benchPersistMutations(b, rb, ids)
}

func benchPersistStore(b *testing.B, fsync bool) {
	b.Helper()
	rb, ids := benchPersistRulebase(b)
	// Auto-snapshots off: the rung prices the append path, not compaction.
	st, err := persist.Open(persist.Options{Dir: b.TempDir(), Fsync: fsync, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Attach(rb); err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	benchPersistMutations(b, rb, ids)
	b.StopTimer()
	b.ReportMetric(float64(st.WALSize())/float64(b.N), "wal_bytes/op")
}

// BenchmarkPersistWAL appends every mutation to the write-ahead log without
// fsync (durability up to the OS page cache).
func BenchmarkPersistWAL(b *testing.B) { benchPersistStore(b, false) }

// BenchmarkPersistWALFsync adds the fsync barrier per append — the
// power-fail-durable configuration.
func BenchmarkPersistWALFsync(b *testing.B) { benchPersistStore(b, true) }
