// Command jsoncheck strictly validates that each file argument is exactly
// one well-formed JSON document — no parse errors, no trailing garbage. It
// exits nonzero on the first invalid file.
//
// It exists for the machine-written bench artifacts (BENCH_PR*.json): their
// consumers are jq pipelines and trend dashboards, not humans, so a
// malformed emit (trailing comma, truncated row) must fail CI loudly rather
// than surface later as a silent jq error. jq itself is not assumed on the
// CI image; this tool needs only the Go toolchain the build already uses.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck FILE...")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "jsoncheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("jsoncheck: %s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var v any
	if err := dec.Decode(&v); err != nil {
		return err
	}
	if err := dec.Decode(new(any)); err != io.EOF {
		return fmt.Errorf("trailing content after the JSON document")
	}
	return nil
}
