#!/usr/bin/env sh
# CI-style verification: formatting, vet, race-enabled tests on the
# concurrency-sensitive packages (obs metrics hot paths, core executors),
# then the tier-1 gate (full build + test, see ROADMAP.md).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go test -race (obs, core, serve incl. sim soak + sharded chaos harness, catalog, faultinject, crowd, opshttp, persist incl. crash-consistency property test) =="
go test -race ./internal/obs ./internal/core ./internal/serve ./internal/catalog \
    ./internal/faultinject ./internal/crowd ./internal/opshttp ./internal/persist

echo "== go test -race (chimera resilience + decision provenance + sharded tier) =="
go test -race ./internal/chimera -run 'TestResilientClient|TestClassifyDegraded|TestProvenance|TestShardedServer'

echo "== bench emitter + exit-code selftests + bench artifact validation =="
sh scripts/bench.sh --emitter-selftest
sh scripts/bench.sh --exitcode-selftest
if ls BENCH_PR*.json >/dev/null 2>&1; then
    go run ./scripts/jsoncheck BENCH_PR*.json
fi

echo "== tier-1: go build ./... && go test ./... =="
go build ./...
go test ./...

echo "verify: OK"
