#!/usr/bin/env sh
# Classification-serving benchmark runner: the locked vs snapshot serving
# pair, the per-item vs batch-inverted matching pair, and the decision-
# provenance (audit) overhead trio, emitted as a machine-readable summary in
# BENCH_PR6.json (the bench trajectory artifact).
#
# Usage: scripts/bench.sh [benchtime]   (default 2s, e.g. "5x" or "3s")
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
# The audit trio runs a full pipeline pass per op (seconds each), so a
# duration-based benchtime would give it one noisy iteration; pin a fixed
# iteration count instead.
AUDIT_BENCHTIME="${AUDIT_BENCHTIME:-6x}"
PATTERN='^(BenchmarkServeLockedUnderMutation|BenchmarkServeSnapshotUnderMutation|BenchmarkBatchClassifyPerItemIndexed|BenchmarkBatchClassifyBatchInverted)$'
AUDIT_PATTERN='^BenchmarkBatchClassifyAudit(Off|Default|Full)$'
OUT=BENCH_PR6.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench (benchtime=$BENCHTIME) =="
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . | tee "$RAW"

echo "== go test -bench audit overhead (benchtime=$AUDIT_BENCHTIME) =="
go test -run '^$' -bench "$AUDIT_PATTERN" -benchtime "$AUDIT_BENCHTIME" . | tee -a "$RAW"

awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    row = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    # Trailing columns come in value/unit pairs (ReportMetric output).
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1); gsub(/[^A-Za-z0-9_]/, "_", unit)
        row = row sprintf(", \"%s\": %s", unit, $i)
    }
    row = row "}"
    rows = rows (rows == "" ? "" : ",\n") row
}
END {
    print "{"
    print "  \"benchmarks\": ["
    print rows
    print "  ],"
    batch = 0
    if (ns["BenchmarkBatchClassifyBatchInverted"] > 0)
        batch = ns["BenchmarkBatchClassifyPerItemIndexed"] / ns["BenchmarkBatchClassifyBatchInverted"]
    snap = 0
    if (ns["BenchmarkServeSnapshotUnderMutation"] > 0)
        snap = ns["BenchmarkServeLockedUnderMutation"] / ns["BenchmarkServeSnapshotUnderMutation"]
    audit = 0
    if (ns["BenchmarkBatchClassifyAuditOff"] > 0)
        audit = ns["BenchmarkBatchClassifyAuditDefault"] / ns["BenchmarkBatchClassifyAuditOff"]
    auditfull = 0
    if (ns["BenchmarkBatchClassifyAuditOff"] > 0)
        auditfull = ns["BenchmarkBatchClassifyAuditFull"] / ns["BenchmarkBatchClassifyAuditOff"]
    printf "  \"batch_inverted_speedup_vs_per_item\": %.2f,\n", batch
    printf "  \"snapshot_speedup_vs_locked\": %.2f,\n", snap
    printf "  \"audit_overhead_ratio_default_sampling\": %.4f,\n", audit
    printf "  \"audit_overhead_ratio_full_capture\": %.4f\n", auditfull
    print "}"
}
' "$RAW" > "$OUT"

echo
echo "wrote $OUT:"
cat "$OUT"
