#!/usr/bin/env sh
# Classification-serving benchmark runner: the locked vs snapshot serving
# pair, the per-item vs batch-inverted matching pair, the decision-
# provenance (audit) overhead trio, and the sharded-vs-single scatter-gather
# throughput ladder (1/2/4/8 shards), emitted as a machine-readable summary
# in BENCH_PR7.json (the bench trajectory artifact).
#
# Usage: scripts/bench.sh [benchtime]   (default 2s, e.g. "5x" or "3s")
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
# The audit trio runs a full pipeline pass per op (seconds each), so a
# duration-based benchtime would give it one noisy iteration; pin a fixed
# iteration count instead.
AUDIT_BENCHTIME="${AUDIT_BENCHTIME:-6x}"
# The sharded ladder is latency-bound (per-item downstream stand-in sleep),
# so each rung converges quickly; 1s keeps the five rungs under ~10s total.
SHARDED_BENCHTIME="${SHARDED_BENCHTIME:-1s}"
PATTERN='^(BenchmarkServeLockedUnderMutation|BenchmarkServeSnapshotUnderMutation|BenchmarkBatchClassifyPerItemIndexed|BenchmarkBatchClassifyBatchInverted)$'
AUDIT_PATTERN='^BenchmarkBatchClassifyAudit(Off|Default|Full)$'
SHARDED_PATTERN='^BenchmarkShardedServe(SingleEngine|Shards[1248])$'
OUT=BENCH_PR7.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench (benchtime=$BENCHTIME) =="
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . | tee "$RAW"

echo "== go test -bench audit overhead (benchtime=$AUDIT_BENCHTIME) =="
go test -run '^$' -bench "$AUDIT_PATTERN" -benchtime "$AUDIT_BENCHTIME" . | tee -a "$RAW"

echo "== go test -bench sharded scatter-gather ladder (benchtime=$SHARDED_BENCHTIME) =="
go test -run '^$' -bench "$SHARDED_PATTERN" -benchtime "$SHARDED_BENCHTIME" . | tee -a "$RAW"

awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    row = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    # Trailing columns come in value/unit pairs (ReportMetric output).
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1); gsub(/[^A-Za-z0-9_]/, "_", unit)
        row = row sprintf(", \"%s\": %s", unit, $i)
    }
    row = row "}"
    rows = rows (rows == "" ? "" : ",\n") row
}
END {
    print "{"
    print "  \"benchmarks\": ["
    print rows
    print "  ],"
    batch = 0
    if (ns["BenchmarkBatchClassifyBatchInverted"] > 0)
        batch = ns["BenchmarkBatchClassifyPerItemIndexed"] / ns["BenchmarkBatchClassifyBatchInverted"]
    snap = 0
    if (ns["BenchmarkServeSnapshotUnderMutation"] > 0)
        snap = ns["BenchmarkServeLockedUnderMutation"] / ns["BenchmarkServeSnapshotUnderMutation"]
    audit = 0
    if (ns["BenchmarkBatchClassifyAuditOff"] > 0)
        audit = ns["BenchmarkBatchClassifyAuditDefault"] / ns["BenchmarkBatchClassifyAuditOff"]
    auditfull = 0
    if (ns["BenchmarkBatchClassifyAuditOff"] > 0)
        auditfull = ns["BenchmarkBatchClassifyAuditFull"] / ns["BenchmarkBatchClassifyAuditOff"]
    # The sharded ladder serves a fixed-size batch per op, so the ns/op
    # ratio IS the items/sec ratio.
    single = ns["BenchmarkShardedServeSingleEngine"]
    sh1 = 0; if (ns["BenchmarkShardedServeShards1"] > 0) sh1 = single / ns["BenchmarkShardedServeShards1"]
    sh2 = 0; if (ns["BenchmarkShardedServeShards2"] > 0) sh2 = single / ns["BenchmarkShardedServeShards2"]
    sh4 = 0; if (ns["BenchmarkShardedServeShards4"] > 0) sh4 = single / ns["BenchmarkShardedServeShards4"]
    sh8 = 0; if (ns["BenchmarkShardedServeShards8"] > 0) sh8 = single / ns["BenchmarkShardedServeShards8"]
    printf "  \"batch_inverted_speedup_vs_per_item\": %.2f,\n", batch
    printf "  \"snapshot_speedup_vs_locked\": %.2f,\n", snap
    printf "  \"audit_overhead_ratio_default_sampling\": %.4f,\n", audit
    printf "  \"audit_overhead_ratio_full_capture\": %.4f,\n", auditfull
    printf "  \"sharded_speedup_1x_vs_single\": %.2f,\n", sh1
    printf "  \"sharded_speedup_2x_vs_single\": %.2f,\n", sh2
    printf "  \"sharded_speedup_4x_vs_single\": %.2f,\n", sh4
    printf "  \"sharded_speedup_8x_vs_single\": %.2f\n", sh8
    print "}"
}
' "$RAW" > "$OUT"

echo
echo "wrote $OUT:"
cat "$OUT"
