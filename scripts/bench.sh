#!/usr/bin/env sh
# Classification-serving benchmark runner: the locked vs snapshot serving
# pair, the per-item vs batch-inverted matching pair, the decision-
# provenance (audit) overhead trio, the sharded-vs-single scatter-gather
# throughput ladder (1/2/4/8 shards), the verdict-cache hit-rate ladder
# (0%/50%/90% Zipf repeat traffic vs uncached), and the persistence overhead
# ladder (no store / WAL / WAL+fsync per rulebase mutation), emitted as a
# machine-readable summary in BENCH_PR9.json (the bench trajectory
# artifact). The emitted JSON is validated with scripts/jsoncheck before the
# script reports success.
#
# Usage: scripts/bench.sh [benchtime]     (default 2s, e.g. "5x" or "3s")
#        scripts/bench.sh --emitter-selftest
#        scripts/bench.sh --exitcode-selftest
#
# --emitter-selftest runs a canned go-bench fixture (including rows without
# custom metrics, malformed rows, and metric units that need sanitizing)
# through the JSON emitter and validates the result — the CI guard for the
# emitter itself, independent of how long the real benchmarks take.
#
# --exitcode-selftest re-invokes the script with an injected bench failure
# (BENCH_INJECT_FAIL=1) and requires a nonzero exit — the CI guard that a
# failing `go test -bench` can never again be masked by output plumbing.
set -eu
# POSIX sh has no pipefail; enable it where the shell offers it so any
# remaining pipeline still propagates the left side's failure. The
# load-bearing guard, though, is run_bench below, which avoids pipelines
# entirely.
if (set -o pipefail) 2>/dev/null; then set -o pipefail; fi

cd "$(dirname "$0")/.."

# The awk program that turns `go test -bench` output into the JSON summary.
# Hardening contract (pinned by --emitter-selftest):
#   - only rows that look like a benchmark result are parsed: field 2 must
#     be a positive integer (iterations), field 3 numeric (ns/op), field 4
#     literally "ns/op" — anything else (garbage lines, pass/fail chatter,
#     truncated rows) is skipped, never half-emitted;
#   - trailing columns are value/unit pairs (b.ReportMetric output); a pair
#     whose value is not numeric is dropped, and an odd dangling column is
#     ignored rather than emitted keyless;
#   - units are sanitized to JSON-key-safe names ([A-Za-z0-9_], a leading
#     digit gets an underscore prefix: "90pct" -> "_90pct");
#   - an input with no valid rows emits an empty benchmarks array, not a
#     blank/malformed row.
EMITTER='
/^Benchmark/ && NF >= 4 && $2 ~ /^[0-9]+$/ && $4 == "ns/op" \
    && $3 ~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    row = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 5; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (val !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/)
            continue
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        if (unit ~ /^[0-9]/)
            unit = "_" unit
        if (unit == "")
            continue
        row = row sprintf(", \"%s\": %s", unit, val)
    }
    row = row "}"
    rows = rows (rows == "" ? "" : ",\n") row
}
END {
    print "{"
    print "  \"benchmarks\": ["
    if (rows != "")
        print rows
    print "  ],"
    batch = 0
    if (ns["BenchmarkBatchClassifyBatchInverted"] > 0)
        batch = ns["BenchmarkBatchClassifyPerItemIndexed"] / ns["BenchmarkBatchClassifyBatchInverted"]
    snap = 0
    if (ns["BenchmarkServeSnapshotUnderMutation"] > 0)
        snap = ns["BenchmarkServeLockedUnderMutation"] / ns["BenchmarkServeSnapshotUnderMutation"]
    audit = 0
    if (ns["BenchmarkBatchClassifyAuditOff"] > 0)
        audit = ns["BenchmarkBatchClassifyAuditDefault"] / ns["BenchmarkBatchClassifyAuditOff"]
    auditfull = 0
    if (ns["BenchmarkBatchClassifyAuditOff"] > 0)
        auditfull = ns["BenchmarkBatchClassifyAuditFull"] / ns["BenchmarkBatchClassifyAuditOff"]
    # The sharded ladder and the cache ladder each serve a fixed-size batch
    # per op, so their ns/op ratios ARE items/sec ratios.
    single = ns["BenchmarkShardedServeSingleEngine"]
    sh1 = 0; if (ns["BenchmarkShardedServeShards1"] > 0) sh1 = single / ns["BenchmarkShardedServeShards1"]
    sh2 = 0; if (ns["BenchmarkShardedServeShards2"] > 0) sh2 = single / ns["BenchmarkShardedServeShards2"]
    sh4 = 0; if (ns["BenchmarkShardedServeShards4"] > 0) sh4 = single / ns["BenchmarkShardedServeShards4"]
    sh8 = 0; if (ns["BenchmarkShardedServeShards8"] > 0) sh8 = single / ns["BenchmarkShardedServeShards8"]
    off = ns["BenchmarkVerdictCacheOff"]
    c0 = 0; if (ns["BenchmarkVerdictCacheHit0"] > 0)  c0 = off / ns["BenchmarkVerdictCacheHit0"]
    c50 = 0; if (ns["BenchmarkVerdictCacheHit50"] > 0) c50 = off / ns["BenchmarkVerdictCacheHit50"]
    c90 = 0; if (ns["BenchmarkVerdictCacheHit90"] > 0) c90 = off / ns["BenchmarkVerdictCacheHit90"]
    # Persistence ladder: how much a mutation costs with the WAL attached
    # (and with the fsync barrier) relative to no store at all.
    poff = ns["BenchmarkPersistOff"]
    pw = 0; if (poff > 0 && ns["BenchmarkPersistWAL"] > 0) pw = ns["BenchmarkPersistWAL"] / poff
    pf = 0; if (poff > 0 && ns["BenchmarkPersistWALFsync"] > 0) pf = ns["BenchmarkPersistWALFsync"] / poff
    printf "  \"batch_inverted_speedup_vs_per_item\": %.2f,\n", batch
    printf "  \"snapshot_speedup_vs_locked\": %.2f,\n", snap
    printf "  \"audit_overhead_ratio_default_sampling\": %.4f,\n", audit
    printf "  \"audit_overhead_ratio_full_capture\": %.4f,\n", auditfull
    printf "  \"sharded_speedup_1x_vs_single\": %.2f,\n", sh1
    printf "  \"sharded_speedup_2x_vs_single\": %.2f,\n", sh2
    printf "  \"sharded_speedup_4x_vs_single\": %.2f,\n", sh4
    printf "  \"sharded_speedup_8x_vs_single\": %.2f,\n", sh8
    printf "  \"cache_speedup_hit0_vs_off\": %.2f,\n", c0
    printf "  \"cache_speedup_hit50_vs_off\": %.2f,\n", c50
    printf "  \"cache_speedup_hit90_vs_off\": %.2f,\n", c90
    printf "  \"persist_wal_overhead_ratio\": %.2f,\n", pw
    printf "  \"persist_wal_fsync_overhead_ratio\": %.2f\n", pf
    print "}"
}
'

if [ "${1:-}" = "--emitter-selftest" ]; then
    FIXTURE=$(mktemp); SELFOUT=$(mktemp)
    trap 'rm -f "$FIXTURE" "$SELFOUT"' EXIT
    cat > "$FIXTURE" <<'FIX'
goos: linux
BenchmarkGood-8   	     100	  12345 ns/op	     678.9 items/sec
BenchmarkNoCustom-8	      50	    999 ns/op
BenchmarkOddTail-8 	      10	      5 ns/op	      12.3
BenchmarkDigitUnit-8	      10	      5 ns/op	       3.5 90pct	xyz bogus/unit
BenchmarkBadIter-8 	      xx	      5 ns/op
BenchmarkTruncated-8
not a benchmark line at all
PASS
FIX
    awk "$EMITTER" "$FIXTURE" > "$SELFOUT"
    go run ./scripts/jsoncheck "$SELFOUT"
    # The fixture's good rows must be present, the malformed ones absent.
    for want in BenchmarkGood BenchmarkNoCustom BenchmarkOddTail BenchmarkDigitUnit _90pct; do
        grep -q "$want" "$SELFOUT" || { echo "selftest: missing $want" >&2; exit 1; }
    done
    for absent in BenchmarkBadIter BenchmarkTruncated bogus; do
        if grep -q "$absent" "$SELFOUT"; then
            echo "selftest: emitted malformed row $absent" >&2; exit 1
        fi
    done
    # An empty input still emits valid JSON (empty benchmarks array).
    : > "$FIXTURE"
    awk "$EMITTER" "$FIXTURE" > "$SELFOUT"
    go run ./scripts/jsoncheck "$SELFOUT"
    echo "emitter selftest ok"
    exit 0
fi

if [ "${1:-}" = "--exitcode-selftest" ]; then
    # Re-invoke the script with an injected bench failure and require the
    # failure to surface as a nonzero exit. This is the regression guard for
    # the old `go test -bench | tee` pipelines, whose exit status was tee's:
    # a failing benchmark run reported success.
    if BENCH_INJECT_FAIL=1 sh "$0" 1x >/dev/null 2>&1; then
        echo "exitcode selftest: injected bench failure exited 0" >&2
        exit 1
    fi
    echo "exitcode selftest ok"
    exit 0
fi

BENCHTIME="${1:-2s}"
# The audit trio runs a full pipeline pass per op (seconds each), so a
# duration-based benchtime would give it one noisy iteration; pin a fixed
# iteration count instead.
AUDIT_BENCHTIME="${AUDIT_BENCHTIME:-6x}"
# The sharded ladder is latency-bound (per-item downstream stand-in sleep),
# so each rung converges quickly; 1s keeps the five rungs under ~10s total.
SHARDED_BENCHTIME="${SHARDED_BENCHTIME:-1s}"
# The cache ladder needs enough iterations to cycle its 32 pre-drawn batches
# several times past the warm pass; 2s per rung is plenty.
CACHE_BENCHTIME="${CACHE_BENCHTIME:-2s}"
# The persistence ladder's fsync rung converges fast (each op is an fsync);
# 1s keeps the three rungs cheap while still averaging hundreds of syncs.
PERSIST_BENCHTIME="${PERSIST_BENCHTIME:-1s}"
PATTERN='^(BenchmarkServeLockedUnderMutation|BenchmarkServeSnapshotUnderMutation|BenchmarkBatchClassifyPerItemIndexed|BenchmarkBatchClassifyBatchInverted)$'
AUDIT_PATTERN='^BenchmarkBatchClassifyAudit(Off|Default|Full)$'
SHARDED_PATTERN='^BenchmarkShardedServe(SingleEngine|Shards[1248])$'
CACHE_PATTERN='^BenchmarkVerdictCache(Off|Hit0|Hit50|Hit90)$'
PERSIST_PATTERN='^BenchmarkPersist(Off|WAL|WALFsync)$'
OUT=BENCH_PR9.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# run_bench PATTERN BENCHTIME: run one bench rung, echoing the raw output
# and appending it to $RAW. Deliberately NOT `go test | tee`: in plain POSIX
# sh (no pipefail) a pipeline's status is the LAST command's, so a failing
# benchmark run exited 0 through tee and set -e never fired. Capturing to a
# file and returning go test's own status makes the failure land regardless
# of what the shell supports. BENCH_INJECT_FAIL short-circuits with a
# failure so --exitcode-selftest can prove the propagation end to end.
run_bench() {
    if [ -n "${BENCH_INJECT_FAIL:-}" ]; then
        echo "bench: injected failure (BENCH_INJECT_FAIL)" >&2
        return 1
    fi
    _tmp=$(mktemp)
    _status=0
    go test -run '^$' -bench "$1" -benchtime "$2" . > "$_tmp" 2>&1 || _status=$?
    cat "$_tmp"
    cat "$_tmp" >> "$RAW"
    rm -f "$_tmp"
    return $_status
}

echo "== go test -bench (benchtime=$BENCHTIME) =="
run_bench "$PATTERN" "$BENCHTIME"

echo "== go test -bench audit overhead (benchtime=$AUDIT_BENCHTIME) =="
run_bench "$AUDIT_PATTERN" "$AUDIT_BENCHTIME"

echo "== go test -bench sharded scatter-gather ladder (benchtime=$SHARDED_BENCHTIME) =="
run_bench "$SHARDED_PATTERN" "$SHARDED_BENCHTIME"

echo "== go test -bench verdict-cache hit-rate ladder (benchtime=$CACHE_BENCHTIME) =="
run_bench "$CACHE_PATTERN" "$CACHE_BENCHTIME"

echo "== go test -bench persistence ladder (benchtime=$PERSIST_BENCHTIME) =="
run_bench "$PERSIST_PATTERN" "$PERSIST_BENCHTIME"

awk "$EMITTER" "$RAW" > "$OUT"
go run ./scripts/jsoncheck "$OUT"

echo
echo "wrote $OUT:"
cat "$OUT"
