package chimera

import (
	"context"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// provFixture is fixture with audit capture on full (every decision, no
// sampling) so provenance properties can be asserted exhaustively.
func provFixture(t *testing.T, seed uint64, train bool) (*catalog.Catalog, *Pipeline) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 40})
	p := New(Config{Seed: seed, Audit: obs.NewAuditLog(obs.AuditConfig{Capacity: 1 << 14, SampleEvery: 1})})
	if train {
		p.Train(cat.LabeledData(4000))
	}
	add := func(r *core.Rule, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Rules.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
	add(core.NewWhitelist("rings?", "rings"))
	add(core.NewWhitelist("jeans?", "jeans"))
	add(core.NewWhitelist("(motor | engine) oils?", "motor oil"))
	add(core.NewBlacklist("olive oils?", "motor oil"))
	add(core.NewGate("(satchel | purse | tote)", "handbags"))
	return cat, p
}

// recordsByItem indexes the audit tail by item ID, failing on duplicates
// within the classification paths (a classified item must yield exactly one
// record; crowd/manual records live on their own paths and are excluded).
func recordsByItem(t *testing.T, p *Pipeline, paths ...string) map[string]*obs.DecisionRecord {
	t.Helper()
	want := map[string]bool{}
	for _, pa := range paths {
		want[pa] = true
	}
	out := map[string]*obs.DecisionRecord{}
	for _, r := range p.Audit.Tail(p.Audit.Capacity()) {
		if !want[r.Path] {
			continue
		}
		if prev, dup := out[r.ItemID]; dup {
			t.Fatalf("item %s has two classification records: %+v and %+v", r.ItemID, prev, r)
		}
		out[r.ItemID] = r
	}
	return out
}

// TestProvenanceBatchPaths is the tentpole property on the batch-inverted
// path: every item ProcessBatch classifies yields exactly one decision
// record, with a non-empty path from the batch vocabulary, the batch's
// snapshot version, the batch request ID, and — for items a blacklist rule
// touched — the vetoing rule named.
func TestProvenanceBatchPaths(t *testing.T) {
	cat, p := provFixture(t, 411, true)
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 400, Epoch: 1})
	items = append(items,
		&catalog.Item{ID: "veto-olive", Attrs: map[string]string{"Title": "extra virgin olive oil 500ml"}},
		&catalog.Item{ID: "gate-satchel", Attrs: map[string]string{"Title": "quilted leather satchel mini"}},
	)
	ctx := obs.WithRequestID(context.Background(), "batch-test-1")
	res := p.ProcessBatchCtx(ctx, items)

	if res.SnapshotVersion == 0 {
		t.Fatal("BatchResult.SnapshotVersion not set")
	}
	recs := recordsByItem(t, p, obs.PathBatchGate, obs.PathClassifier)
	if len(recs) != len(items) {
		t.Fatalf("got %d records for %d items", len(recs), len(items))
	}
	for i, d := range res.Decisions {
		r := recs[items[i].ID]
		if r == nil {
			t.Fatalf("item %s: no record", items[i].ID)
		}
		if r.Path == "" {
			t.Errorf("item %s: empty path", items[i].ID)
		}
		if r.SnapshotVersion != res.SnapshotVersion {
			t.Errorf("item %s: record snapshot %d != batch snapshot %d", items[i].ID, r.SnapshotVersion, res.SnapshotVersion)
		}
		if r.RequestID != "batch-test-1" {
			t.Errorf("item %s: request ID %q not propagated", items[i].ID, r.RequestID)
		}
		if d.Declined != (r.Outcome == obs.OutcomeDeclined) {
			t.Errorf("item %s: decision declined=%v but outcome %q", items[i].ID, d.Declined, r.Outcome)
		}
		if d.Reason != r.Reason {
			t.Errorf("item %s: reason %q != record reason %q", items[i].ID, d.Reason, r.Reason)
		}
	}
	// Gate-decided items take the batch-gate path; voted ones the classifier
	// path — and both must occur in this mixed batch.
	if recs["gate-satchel"].Path != obs.PathBatchGate {
		t.Errorf("gate item path = %q", recs["gate-satchel"].Path)
	}
	if got := recs["veto-olive"]; got.Path != obs.PathClassifier {
		t.Errorf("veto item path = %q", got.Path)
	}
	// The vetoed item names the vetoing blacklist rule — resolvable back to
	// a live blacklist targeting the vetoed type.
	veto := recs["veto-olive"]
	if len(veto.Vetoed) == 0 {
		t.Fatalf("vetoed item carries no vetoing rule: %+v", veto)
	}
	named := false
	for _, id := range veto.Vetoed {
		if r := p.Rules.Get(id); r != nil && r.Kind == core.Blacklist && r.TargetType == "motor oil" {
			named = true
		}
	}
	if !named {
		t.Fatalf("vetoing blacklist not resolvable from %v", veto.Vetoed)
	}
	// The breakdown accounts for every item exactly once across both paths.
	b := p.Audit.Breakdown()
	var total uint64
	for _, outs := range []map[string]uint64{b[obs.PathBatchGate], b[obs.PathClassifier]} {
		for _, n := range outs {
			total += n
		}
	}
	if total != uint64(len(items)) {
		t.Fatalf("breakdown counts %d items, want %d", total, len(items))
	}
}

// TestProvenancePerItemPath: the PerItem reference path produces the same
// exactly-one-record property with per-stage latencies (gate, classify).
func TestProvenancePerItemPath(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 412, NumTypes: 40})
	p := New(Config{
		Seed:    412,
		PerItem: true,
		Audit:   obs.NewAuditLog(obs.AuditConfig{Capacity: 1 << 12, SampleEvery: 1}),
	})
	p.Train(cat.LabeledData(2000))
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 100, Epoch: 1})
	res := p.ProcessBatch(items)

	recs := recordsByItem(t, p, obs.PathPerItem)
	if len(recs) != len(items) {
		t.Fatalf("got %d records for %d items", len(recs), len(items))
	}
	for _, it := range items {
		r := recs[it.ID]
		if r.SnapshotVersion != res.SnapshotVersion {
			t.Errorf("item %s: snapshot %d != %d", it.ID, r.SnapshotVersion, res.SnapshotVersion)
		}
		if len(r.Stages) == 0 || r.Stages[0].Stage != "gate" {
			t.Errorf("item %s: per-item record missing gate stage: %+v", it.ID, r.Stages)
		}
		if !strings.HasPrefix(r.RequestID, "batch-") {
			t.Errorf("item %s: missing generated batch request ID: %q", it.ID, r.RequestID)
		}
	}
}

// TestProvenanceServerPath: items classified through the concurrent server
// carry the submit-generated request ID end to end.
func TestProvenanceServerPath(t *testing.T) {
	cat, p := provFixture(t, 413, true)
	defer p.Close()
	srv := p.NewServer(serve.ServerOptions{Workers: 2, QueueDepth: 8})
	defer srv.Drain()

	items := cat.GenerateBatch(catalog.BatchSpec{Size: 50, Epoch: 1})
	ticket, err := srv.Submit(items)
	if err != nil {
		t.Fatal(err)
	}
	out, snap, err := ticket.Wait()
	if err != nil || len(out) != len(items) {
		t.Fatalf("wait: %v (%d results)", err, len(out))
	}
	recs := recordsByItem(t, p, obs.PathPerItem)
	if len(recs) != len(items) {
		t.Fatalf("got %d records for %d items", len(recs), len(items))
	}
	for _, it := range items {
		r := recs[it.ID]
		if !strings.HasPrefix(r.RequestID, "req-") {
			t.Errorf("item %s: request ID %q not generated at submit", it.ID, r.RequestID)
		}
		if r.SnapshotVersion != snap.Version() {
			t.Errorf("item %s: snapshot %d != served snapshot %d", it.ID, r.SnapshotVersion, snap.Version())
		}
	}
}

// TestProvenanceDegradedPath: gate-only decisions are always captured (even
// under heavy sampling) with path "degraded" and the serving snapshot's
// version.
func TestProvenanceDegradedPath(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 414, NumTypes: 40})
	// SampleEvery 1000: only the decline/degraded bias can explain captures.
	p := New(Config{Seed: 414, Audit: obs.NewAuditLog(obs.AuditConfig{Capacity: 1 << 12, SampleEvery: 1000})})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 40, Epoch: 1})
	out, snap := p.ClassifyDegraded(items)
	if len(out) != len(items) {
		t.Fatalf("degraded returned %d decisions", len(out))
	}
	recs := recordsByItem(t, p, obs.PathDegraded)
	if len(recs) != len(items) {
		t.Fatalf("degraded path must capture every item: got %d of %d", len(recs), len(items))
	}
	for _, it := range items {
		r := recs[it.ID]
		if r.SnapshotVersion != snap.Version() {
			t.Errorf("item %s: snapshot %d != %d", it.ID, r.SnapshotVersion, snap.Version())
		}
		if !strings.HasPrefix(r.RequestID, "degraded-") {
			t.Errorf("item %s: request ID %q", it.ID, r.RequestID)
		}
	}
}

// TestProvenanceCrowdAndManual: the evaluation loop leaves crowd records
// (verified/flagged) and onboarding leaves manual-label records, all stamped
// with the batch's snapshot version.
func TestProvenanceCrowdAndManual(t *testing.T) {
	cat, p := provFixture(t, 415, true)
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 300, Epoch: 1})
	res := p.ProcessBatch(items)

	rep, err := p.EvaluateAndImprove(res)
	if err != nil {
		t.Fatal(err)
	}
	crowd := p.Audit.TailFiltered(p.Audit.Capacity(), "", obs.PathCrowd, "")
	if len(crowd) != rep.SampleSize {
		t.Fatalf("crowd records = %d, want sample size %d", len(crowd), rep.SampleSize)
	}
	verified, flagged := 0, 0
	for _, r := range crowd {
		switch r.Outcome {
		case obs.OutcomeVerified:
			verified++
		case obs.OutcomeFlagged:
			flagged++
		default:
			t.Fatalf("crowd record with outcome %q", r.Outcome)
		}
		if r.SnapshotVersion != res.SnapshotVersion {
			t.Errorf("crowd record snapshot %d != %d", r.SnapshotVersion, res.SnapshotVersion)
		}
	}
	if flagged != rep.Flagged || verified != rep.SampleSize-rep.Flagged {
		t.Errorf("crowd outcome split %d/%d, report says %d/%d",
			verified, flagged, rep.SampleSize-rep.Flagged, rep.Flagged)
	}

	orep, err := p.OnboardDeclined(res, 5)
	if err != nil {
		t.Fatal(err)
	}
	manual := p.Audit.TailFiltered(p.Audit.Capacity(), "", obs.PathManual, obs.OutcomeLabeled)
	if len(manual) != orep.Labeled {
		t.Fatalf("manual records = %d, want %d labeled", len(manual), orep.Labeled)
	}
	for _, r := range manual {
		if r.Type == "" {
			t.Errorf("manual record without a label type: %+v", r)
		}
	}
}
