package chimera

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// fixtureWithObs is fixture with a private registry, so metric assertions do
// not cross tests through the shared default registry.
func fixtureWithObs(t *testing.T, seed uint64, reg *obs.Registry) (*catalog.Catalog, *Pipeline) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 40})
	p := New(Config{Seed: seed, Obs: reg})
	p.Train(cat.LabeledData(2000))
	add := func(r *core.Rule, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Rules.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
	add(core.NewWhitelist("rings?", "rings"))
	add(core.NewWhitelist("jeans?", "jeans"))
	add(core.NewGate("(satchel | purse | tote)", "handbags"))
	return cat, p
}

// TestClassifyDegradedPropertySubsetOfManualQueue is the degraded-mode
// property test: for any batch, the gate-only path yields exactly one
// decision per item (no silent drops); every decision is either a genuine
// gate-stage decision (gatekeeper or filtered) or a decline with reason
// "degraded"; and the manual-queue delta equals exactly the number of
// declined decisions. Degraded routing is a subset of manual-queue routing,
// never a black hole.
func TestClassifyDegradedPropertySubsetOfManualQueue(t *testing.T) {
	cat, p := fixture(t, 91)
	defer p.Close()
	p.Snapshots().Acquire() // publish a snapshot current with the rules above
	for _, size := range []int{1, 7, 250, 1000} {
		batch := cat.GenerateBatch(catalog.BatchSpec{Size: size, Epoch: 0})
		before := p.ManualQueue()
		decisions, snap := p.ClassifyDegraded(batch)
		if snap == nil {
			t.Fatalf("size %d: degraded decisions without a snapshot", size)
		}
		if len(decisions) != len(batch) {
			t.Fatalf("size %d: %d decisions for %d items — items dropped", size, len(decisions), len(batch))
		}
		declined := 0
		for i, d := range decisions {
			if d.Item != batch[i] {
				t.Fatalf("size %d: decision %d not aligned with its item", size, i)
			}
			switch {
			case !d.Declined && d.Reason == "gatekeeper":
				// Gate decided; full-confidence decision survives degraded mode.
			case d.Declined && strings.HasPrefix(d.Reason, "filtered:"):
				declined++
			case d.Declined && d.Reason == "degraded":
				declined++
			default:
				t.Fatalf("size %d: decision outside the degraded vocabulary: %+v", size, d)
			}
		}
		if got := p.ManualQueue() - before; got != declined {
			t.Fatalf("size %d: manual queue grew by %d, want %d (declined) — degraded decisions must be a subset of manual-queue routing", size, got, declined)
		}
	}
}

// TestClassifyDegradedStageAccounting: degraded declines land in the
// per-stage decision counter under declined:degraded, and item/decline
// totals move exactly as on the full path.
func TestClassifyDegradedStageAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	cat, p := fixtureWithObs(t, 92, reg)
	defer p.Close()
	p.Snapshots().Acquire()
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 300, Epoch: 0})
	out, _ := p.ClassifyDegraded(batch)
	degraded := 0
	for _, d := range out {
		if d.Declined && d.Reason == "degraded" {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("a mixed batch should leave some items gate-undecided (reason degraded)")
	}
	if got := reg.Counter(MetricDecisions, "stage", "declined:degraded").Value(); got != int64(degraded) {
		t.Fatalf("declined:degraded stage counter = %d, want %d", got, degraded)
	}
	if got := reg.Counter(MetricItems).Value(); got != int64(len(batch)) {
		t.Fatalf("item counter = %d, want %d", got, len(batch))
	}
}

// TestResilientClientDegradesOnSaturation: with the one worker parked on
// injected handler latency and the queue at the watermark, Process answers
// every item via the gate-only path instead of surfacing ErrQueueFull —
// shedding silently is not an outcome.
func TestResilientClientDegradesOnSaturation(t *testing.T) {
	reg := obs.NewRegistry()
	cat, p := fixtureWithObs(t, 93, reg)
	defer p.Close()

	inj := faultinject.New(faultinject.Config{
		Seed: 5, HandlerLatencyP: 1, HandlerLatency: 50 * time.Millisecond,
	})
	rc := p.NewResilientClient(
		serve.ServerOptions{Workers: 1, QueueDepth: 2, Obs: reg},
		ResilienceOptions{
			Retry:             serve.RetryOptions{MaxAttempts: 2, BaseDelay: time.Microsecond, Seed: 5},
			DegradedWatermark: 0.5, // watermark = 1 queued batch
			Faults:            inj,
		})
	defer rc.Server().Drain()

	// Two batches of 4: the worker parks on the first (4 × 50ms of injected
	// latency), the second sits in the queue, so the depth gauge holds at the
	// watermark for the whole test body.
	slow := cat.GenerateBatch(catalog.BatchSpec{Size: 4, Epoch: 0})
	for i := 0; i < 2; i++ {
		if _, err := rc.Server().Submit(slow); err != nil {
			t.Fatal(err)
		}
	}
	if !rc.DegradedMode() {
		t.Fatal("client not in degraded mode with the queue at the watermark")
	}

	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 120, Epoch: 0})
	before := p.ManualQueue()
	out, snap, err := rc.Process(context.Background(), batch)
	if err != nil {
		t.Fatalf("Process must not fail on saturation: %v", err)
	}
	if len(out) != len(batch) {
		t.Fatalf("%d decisions for %d items", len(out), len(batch))
	}
	if snap == nil {
		t.Fatal("degraded decisions must still reference a snapshot")
	}
	declined := 0
	for _, d := range out {
		if d.Declined {
			declined++
		}
	}
	if got := p.ManualQueue() - before; got != declined {
		t.Fatalf("manual queue grew by %d, want %d", got, declined)
	}
	if got := reg.Counter(MetricDegradedBatches).Value(); got != 1 {
		t.Fatalf("degraded-batch counter = %d, want 1", got)
	}
	if got := reg.Counter(MetricDegradedItems).Value(); got != int64(len(batch)) {
		t.Fatalf("degraded-item counter = %d, want %d", got, len(batch))
	}
	// The parked worker is asynchronous: give it a moment to demonstrate the
	// injected latency actually fired.
	deadline := time.Now().Add(2 * time.Second)
	for inj.Total() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler latency was never injected")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResilientClientDegradesWhenEngineDegraded: a failed snapshot rebuild
// flips the engine to degraded; the client notices, routes around the queue
// entirely, and resumes full service once a rebuild succeeds again.
func TestResilientClientDegradesWhenEngineDegraded(t *testing.T) {
	reg := obs.NewRegistry()
	cat, p := fixtureWithObs(t, 94, reg)
	defer p.Close()
	rc := p.NewResilientClient(serve.ServerOptions{Workers: 2, QueueDepth: 8, Obs: reg}, ResilienceOptions{})
	defer rc.Server().Drain()

	inj := faultinject.New(faultinject.Config{Seed: 6, RebuildErrorP: 1})
	p.Snapshots().SetRebuildFault(inj.RebuildFault)
	// Mutate so the async loop attempts (and fails) a rebuild.
	mutate := func(pattern, typ string) {
		t.Helper()
		r, err := core.NewWhitelist(pattern, typ)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Rules.Add(r, "chaos"); err != nil {
			t.Fatal(err)
		}
	}
	mutate("satchels?", "handbags")
	deadline := time.Now().Add(2 * time.Second)
	for !p.Snapshots().Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("engine never became degraded despite a p=1 rebuild fault")
		}
		time.Sleep(time.Millisecond)
	}
	if !rc.DegradedMode() {
		t.Fatal("client does not report degraded mode while the engine is degraded")
	}

	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 50, Epoch: 0})
	out, _, err := rc.Process(context.Background(), batch)
	if err != nil || len(out) != len(batch) {
		t.Fatalf("degraded Process: err=%v decisions=%d", err, len(out))
	}
	if reg.Counter(MetricDegradedBatches).Value() == 0 {
		t.Fatal("degraded-batch counter did not move")
	}

	// Clearing the fault recovers: the next mutation's rebuild succeeds and
	// the client leaves degraded mode.
	p.Snapshots().SetRebuildFault(nil)
	mutate("totes?", "handbags")
	deadline = time.Now().Add(2 * time.Second)
	for p.Snapshots().Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("engine never recovered after the fault was cleared")
		}
		time.Sleep(time.Millisecond)
	}
	if rc.DegradedMode() {
		t.Fatal("client still degraded after recovery with an empty queue")
	}
	out, snap, err := rc.Process(context.Background(), batch)
	if err != nil || snap == nil || len(out) != len(batch) {
		t.Fatalf("recovered Process: err=%v snap=%v decisions=%d", err, snap, len(out))
	}
}

// TestResilientClientPropagatesRealErrors: shutdown and an expired caller
// context are surfaced, not degraded around — the caller must be able to
// tell "the system answered conservatively" from "the system is gone" or
// "I gave up waiting".
func TestResilientClientPropagatesRealErrors(t *testing.T) {
	reg := obs.NewRegistry()
	cat, p := fixtureWithObs(t, 95, reg)
	defer p.Close()
	rc := p.NewResilientClient(serve.ServerOptions{Workers: 1, QueueDepth: 4, Obs: reg}, ResilienceOptions{})
	rc.Server().Drain()

	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 5, Epoch: 0})
	if _, _, err := rc.Process(context.Background(), batch); !errors.Is(err, serve.ErrShutdown) {
		t.Fatalf("got %v, want ErrShutdown", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := rc.Process(ctx, batch); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
