package chimera

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tokenize"
)

// This file implements the right-hand side of Figure 2: crowdsourced sample
// evaluation, the Analysis box where analysts turn flagged pairs into patch
// rules and relabeled training data, and the scale-down / scale-up controls
// of §2.2.

// ImproveReport summarizes one EvaluateAndImprove round.
type ImproveReport struct {
	EstPrecision float64
	SampleSize   int
	Flagged      int
	// NewRuleIDs are the analyst patch blacklist rules added this round.
	NewRuleIDs []string
	// Relabeled is how many flagged pairs were corrected and added to the
	// training data.
	Relabeled int
	// PassedGate reports whether the batch met the precision gate.
	PassedGate bool
}

// EvaluateAndImprove runs the Figure-2 evaluation loop on a processed batch:
// crowd-verify a sample of 〈item, prediction〉 pairs, estimate precision,
// hand the flagged pairs to the analyst (who writes blacklist patch rules
// for recurring error patterns and relabels pairs as training data), and
// retrain. The batch is accepted when the estimate clears the gate.
func (p *Pipeline) EvaluateAndImprove(res *BatchResult) (*ImproveReport, error) {
	classified := res.Classified()
	rep := &ImproveReport{}
	if len(classified) == 0 {
		rep.PassedGate = false
		res.EstPrecision = 0
		return rep, nil
	}

	sample := p.rng.Split(fmt.Sprintf("sample-%d", len(p.history))).
		Sample(len(classified), p.cfg.SampleSize)
	crowdReq := obs.NewRequestID("crowd")
	correct := 0
	var flagged []Decision
	for _, i := range sample {
		d := classified[i]
		ok, err := p.Crowd.VerifyPair(d.Item, d.Type)
		if err != nil {
			return rep, err
		}
		if ok {
			correct++
		} else {
			flagged = append(flagged, d)
		}
		p.auditCrowd(crowdReq, res.SnapshotVersion, d, ok)
	}
	rep.SampleSize = len(sample)
	rep.Flagged = len(flagged)
	rep.EstPrecision = float64(correct) / float64(len(sample))
	rep.PassedGate = rep.EstPrecision >= p.cfg.PrecisionGate
	res.EstPrecision = rep.EstPrecision
	res.Accepted = rep.PassedGate

	p.mu.Lock()
	p.history = append(p.history, rep.EstPrecision)
	p.mu.Unlock()

	p.Obs.Counter(MetricCrowdSampled).Add(int64(rep.SampleSize))
	p.Obs.Counter(MetricFlagged).Add(int64(rep.Flagged))
	p.Obs.Gauge(MetricEstPrecision).Set(rep.EstPrecision)
	if !rep.PassedGate {
		p.Obs.Counter(MetricGateFailures).Inc()
	}

	// Analysis box: relabel flagged pairs and patch recurring patterns.
	var relabeled []*catalog.Item
	types := p.typeUniverse()
	for _, d := range flagged {
		correctType := p.Analyst.Label(d.Item, types)
		if correctType != d.Type {
			// Analyst's label becomes training truth.
			relabeled = append(relabeled, d.Item.Relabeled(correctType))
		}
	}
	rep.Relabeled = len(relabeled)

	rep.NewRuleIDs = p.patchRules(flagged)
	p.Obs.Counter(MetricPatchRules).Add(int64(len(rep.NewRuleIDs)))
	p.Obs.Counter(MetricRelabeled).Add(int64(rep.Relabeled))
	if len(relabeled) > 0 {
		p.Train(relabeled)
	}
	return rep, nil
}

// auditCrowd records one crowd-verification event: the item's prediction was
// either verified or flagged by the crowd sample. Crowd records are never
// OutcomeClassified, so they bypass sampling — the crowd sample is small and
// every one of its judgments is provenance worth keeping.
func (p *Pipeline) auditCrowd(requestID string, snapVersion uint64, d Decision, verified bool) {
	a := p.Audit
	if !a.Enabled() {
		return
	}
	outcome := obs.OutcomeFlagged
	if verified {
		outcome = obs.OutcomeVerified
	}
	if !a.ShouldCapture(true) {
		return
	}
	a.Observe(&obs.DecisionRecord{
		RequestID:       requestID,
		ItemID:          d.Item.ID,
		SnapshotVersion: snapVersion,
		Path:            obs.PathCrowd,
		Outcome:         outcome,
		Type:            d.Type,
		Reason:          d.Reason,
		Confidence:      d.Confidence,
		Fired:           d.Evidence,
	})
}

// typeUniverse lists the types the system currently knows: training labels
// plus rule targets.
func (p *Pipeline) typeUniverse() []string {
	set := map[string]bool{}
	p.mu.Lock()
	for _, it := range p.training {
		set[it.TrueType] = true
	}
	p.mu.Unlock()
	for _, t := range p.Rules.TargetsSorted() {
		set[t] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// patchRules is the analyst's "shallow behavioral modification" (§3.2):
// detect recurring error patterns among flagged pairs and write blacklist
// rules that kill the misprediction, after checking on the training data
// that the patch does not also kill a large share of correct predictions.
func (p *Pipeline) patchRules(flagged []Decision) []string {
	// Group flagged pairs by wrongly predicted type.
	byType := map[string][]Decision{}
	for _, d := range flagged {
		byType[d.Type] = append(byType[d.Type], d)
	}
	wrongTypes := make([]string, 0, len(byType))
	for t := range byType {
		wrongTypes = append(wrongTypes, t)
	}
	sort.Strings(wrongTypes)

	p.mu.Lock()
	training := p.training
	p.mu.Unlock()

	var added []string
	for _, wrongType := range wrongTypes {
		group := byType[wrongType]
		if len(group) < p.cfg.MinPatternSupport {
			continue
		}
		// Most common non-stopword token across the flagged titles.
		counts := map[string]int{}
		for _, d := range group {
			seen := map[string]bool{}
			for _, tok := range tokenize.NormalizeTokens(d.Item.TitleTokens()) {
				if !seen[tok] {
					seen[tok] = true
					counts[tok]++
				}
			}
		}
		tok, n := "", 0
		for cand, c := range counts {
			if c > n || (c == n && cand < tok) {
				tok, n = cand, c
			}
		}
		if n < p.cfg.MinPatternSupport {
			continue
		}
		// Safety check: the patch must not veto a big share of genuinely
		// correct predictions of wrongType in the training data.
		var ofType, withTok int
		for _, it := range training {
			if it.TrueType != wrongType {
				continue
			}
			ofType++
			for _, t := range it.TitleTokens() {
				if t == tok {
					withTok++
					break
				}
			}
		}
		if ofType > 0 && float64(withTok)/float64(ofType) > 0.2 {
			continue // too broad; would hurt recall of the type itself
		}
		rule, err := core.NewBlacklist(tok, wrongType)
		if err != nil {
			continue
		}
		rule.Provenance = "analyst-patch"
		rule.Note = fmt.Sprintf("patch for %d flagged errors", len(group))
		if id, err := p.Rules.Add(rule, p.Analyst.Name); err == nil {
			added = append(added, id)
		}
	}
	return added
}

// RestoreToken undoes a scale-down.
type RestoreToken struct {
	FilterID    string
	DisabledIDs []string
	TypeName    string
}

// ScaleDownType implements the §2.2 drill: temporarily stop classifying a
// type by adding a Filter rule (predictions route to manual) and disabling
// the type's own rules. The returned token restores the previous state.
func (p *Pipeline) ScaleDownType(typeName, actor, note string) (*RestoreToken, error) {
	f, err := core.NewFilter(typeName)
	if err != nil {
		return nil, err
	}
	f.Provenance = "scale-down"
	f.Note = note
	fid, err := p.Rules.Add(f, actor)
	if err != nil {
		return nil, err
	}
	ids := p.Rules.DisableWhere(func(r *core.Rule) bool {
		return r.TargetType == typeName && r.Kind != core.Filter
	}, actor, "scale-down: "+note)
	return &RestoreToken{FilterID: fid, DisabledIDs: ids, TypeName: typeName}, nil
}

// Restore re-enables the scaled-down rules and retires the filter.
func (p *Pipeline) Restore(tok *RestoreToken, actor string) error {
	if tok == nil {
		return fmt.Errorf("chimera: nil restore token")
	}
	if err := p.Rules.Retire(tok.FilterID, actor, "restore "+tok.TypeName); err != nil {
		return err
	}
	p.Rules.EnableAll(tok.DisabledIDs, actor, "restore "+tok.TypeName)
	return nil
}

// DegradedTypes inspects a batch's flagged sample (via the last
// EvaluateAndImprove round's decisions) and returns types whose predictions
// were flagged at least minFlags times — the scale-down candidates. It is a
// pure helper over decisions the caller retained.
func DegradedTypes(flagged []Decision, minFlags int) []string {
	counts := map[string]int{}
	for _, d := range flagged {
		counts[d.Type]++
	}
	var out []string
	for t, n := range counts {
		if n >= minFlags {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Describe renders a one-line summary of the pipeline state for operators.
func (p *Pipeline) Describe() string {
	s := p.Rules.Stats()
	return fmt.Sprintf("rules=%d (active %d) types=%d training=%d manualQ=%d batches=%d",
		s.Total, s.ByStatus["active"], s.TargetTypes, p.TrainingSize(), p.ManualQueue(), len(p.PrecisionHistory()))
}

// FlaggedFrom extracts the flagged decisions of a sample for reuse with
// DegradedTypes: convenience used by drills and experiments.
func FlaggedFrom(res *BatchResult, truth func(Decision) bool) []Decision {
	var out []Decision
	for _, d := range res.Classified() {
		if !truth(d) {
			out = append(out, d)
		}
	}
	return out
}

// WrongAgainstGroundTruth is a truth function for FlaggedFrom based on the
// simulator's ground truth.
func WrongAgainstGroundTruth(d Decision) bool { return d.Type == d.Item.TrueType }
