// Package chimera reproduces the paper's Figure-2 architecture: the
// WalmartLabs product-classification system that combines a Gate Keeper,
// a rule-based classifier (whitelist + blacklist), an attribute/value-based
// classifier, a set of learning-based classifiers, a Voting Master and a
// Filter — followed by the crowd-evaluation / analyst-repair loop that keeps
// precision at or above the business gate (92%) while recall improves over
// time.
package chimera

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/evaluate"
	"repro/internal/faultinject"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/randx"
	"repro/internal/serve"
)

// Metric families recorded by the pipeline (beyond the core_exec_* and
// core_rule_* series its instrumented executors emit).
const (
	MetricBatches      = "chimera_batches_total"
	MetricItems        = "chimera_items_total"
	MetricDeclined     = "chimera_declined_total"
	MetricDecisions    = "chimera_decisions_total" // labeled stage=...
	MetricClassifySecs = "chimera_classify_seconds"
	MetricBatchSecs    = "chimera_batch_seconds"
	MetricQueueDepth   = "chimera_manual_queue_depth"
	MetricCrowdSampled = "chimera_crowd_sampled_total"
	MetricFlagged      = "chimera_flagged_total"
	MetricEstPrecision = "chimera_est_precision"
	MetricGateFailures = "chimera_gate_failures_total"
	MetricPatchRules   = "chimera_patch_rules_total"
	MetricRelabeled    = "chimera_relabeled_total"
)

// Config parameterizes the pipeline. Zero values take the paper's settings.
type Config struct {
	Seed uint64
	// PrecisionGate is the business requirement (paper: 0.92).
	PrecisionGate float64
	// RuleWeight is the vote weight of a rule assertion relative to the
	// full ensemble mass (default 2.0: rules out-vote learners).
	RuleWeight float64
	// VoteThreshold is the minimum combined top score to emit a prediction
	// (default 0.5 — an unassisted ensemble must be reasonably confident).
	VoteThreshold float64
	// SampleSize is the crowd sample drawn per batch evaluation (default 150).
	SampleSize int
	// Workers parallelizes batch classification (default 4).
	Workers int
	// MinPatternSupport is how many same-type flagged errors the analyst
	// needs before writing a patch blacklist rule (default 3).
	MinPatternSupport int
	// ImpactThreshold feeds the §5.3 impactful-rule tracker (default 200).
	ImpactThreshold int
	// PerItem forces ProcessBatch onto the item-at-a-time reference path
	// (per-item index probes) instead of the default batch-inverted matcher.
	// Useful for A/B-ing the two paths and as the devloop fallback; single
	// item Classify always uses the per-item path.
	PerItem bool
	// CacheCapacity bounds the snapshot engine's verdict cache (see
	// serve.VerdictCache): classifier-stage verdicts are memoized by (item
	// fingerprint, snapshot version), so re-submitted items under an
	// unchanged rulebase skip rule evaluation. 0 disables caching (the
	// default — per-rule executor telemetry then counts every serving; with
	// a cache it counts evaluations only).
	CacheCapacity int
	// Obs receives the pipeline's metrics (default obs.Default(), the
	// process-wide registry the CLIs dump with -metrics).
	Obs *obs.Registry
	// Audit receives one decision-provenance record per classified item
	// (sampled; declines and degraded decisions always captured). Default:
	// a fresh obs.NewAuditLog with default capacity and sampling. Pass
	// obs.NewAuditLog(obs.AuditConfig{Capacity: -1}) to disable capture.
	Audit *obs.AuditLog
}

func (c Config) withDefaults() Config {
	if c.PrecisionGate == 0 {
		c.PrecisionGate = 0.92
	}
	if c.RuleWeight == 0 {
		c.RuleWeight = 2.0
	}
	if c.VoteThreshold == 0 {
		c.VoteThreshold = 0.5
	}
	if c.SampleSize == 0 {
		c.SampleSize = 150
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.MinPatternSupport == 0 {
		c.MinPatternSupport = 3
	}
	if c.ImpactThreshold == 0 {
		c.ImpactThreshold = 200
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.Audit == nil {
		c.Audit = obs.NewAuditLog(obs.AuditConfig{})
	}
	return c
}

// Decision is the pipeline's output for one item.
type Decision struct {
	Item *catalog.Item
	// Type is the predicted product type; empty when Declined.
	Type string
	// Declined marks items routed to the manual classification team.
	Declined bool
	// Reason explains a decline ("low-confidence", "filtered:<type>", …)
	// or names the deciding stage for a classification ("gatekeeper",
	// "rules", "ensemble", "combined").
	Reason string
	// Confidence is the combined normalized score in [0,1].
	Confidence float64
	// Evidence lists the rule IDs that supported the prediction.
	Evidence []string
}

// BatchResult aggregates a processed batch.
type BatchResult struct {
	Decisions []Decision
	// EstPrecision is filled by EvaluateAndImprove.
	EstPrecision float64
	// Accepted is set when the batch passed the precision gate.
	Accepted bool
	// Profile is the batch's telemetry profile (filled by ProcessBatch).
	Profile *BatchProfile
	// SnapshotVersion is the rulebase snapshot the whole batch was
	// classified under; crowd and onboarding audit records inherit it.
	SnapshotVersion uint64
}

// BatchProfile is the per-batch operational profile: where the time went
// and where the items went — the numbers an operator watches per batch
// while the obs registry accumulates the long-run series.
type BatchProfile struct {
	// Items and Declined count the batch's inputs and manual-routed items.
	Items    int `json:"items"`
	Declined int `json:"declined"`
	// DeclineRate is Declined/Items.
	DeclineRate float64 `json:"decline_rate"`
	// Duration is the wall-clock classification time for the whole batch;
	// ItemsPerSec is the derived throughput.
	Duration    time.Duration `json:"duration_ns"`
	ItemsPerSec float64       `json:"items_per_sec"`
	// QueueDepth is the manual-classification queue size after this batch.
	QueueDepth int `json:"queue_depth"`
	// Stages counts decisions per deciding stage ("gatekeeper", "rules",
	// "ensemble", "combined") and per decline family ("declined:no-votes",
	// "declined:ambiguous", "declined:low-confidence", "declined:filtered").
	Stages map[string]int `json:"stages"`
}

// stageOf normalizes a decision into its profile/metrics stage label.
func stageOf(d Decision) string {
	if !d.Declined {
		return d.Reason
	}
	reason := d.Reason
	if i := strings.IndexByte(reason, ':'); i >= 0 {
		reason = reason[:i]
	}
	return "declined:" + reason
}

// Classified returns the emitted decisions.
func (b *BatchResult) Classified() []Decision {
	var out []Decision
	for _, d := range b.Decisions {
		if !d.Declined {
			out = append(out, d)
		}
	}
	return out
}

// DeclineRate returns the fraction of declined items.
func (b *BatchResult) DeclineRate() float64 {
	if len(b.Decisions) == 0 {
		return 0
	}
	n := 0
	for _, d := range b.Decisions {
		if d.Declined {
			n++
		}
	}
	return float64(n) / float64(len(b.Decisions))
}

// TruePrecisionRecall computes precision/recall against ground truth —
// available only in simulation; production uses crowd estimates.
func (b *BatchResult) TruePrecisionRecall() (precision, recall float64) {
	emitted, correct := 0, 0
	for _, d := range b.Decisions {
		if d.Declined {
			continue
		}
		emitted++
		if d.Type == d.Item.TrueType {
			correct++
		}
	}
	if emitted > 0 {
		precision = float64(correct) / float64(emitted)
	}
	if len(b.Decisions) > 0 {
		recall = float64(correct) / float64(len(b.Decisions))
	}
	return precision, recall
}

// Pipeline is the running system.
type Pipeline struct {
	cfg      Config
	rng      *randx.Rand
	Rules    *core.Rulebase
	Ensemble *learn.Ensemble
	Crowd    *crowd.Crowd
	Analyst  *crowd.Analyst
	Tracker  *evaluate.ImpactTracker
	// Obs is the pipeline's metric registry; Trace holds one span tree per
	// processed batch (rendered by the CLIs with -profile); Audit is the
	// decision-provenance ring (tail it via /decisions or the CLI).
	Obs   *obs.Registry
	Trace *obs.Tracer
	Audit *obs.AuditLog

	// snaps owns the immutable rule-executor snapshots the pipeline
	// classifies through (see internal/serve): rebuilt only when the
	// rulebase version changes, swapped atomically, never blocking readers
	// on rule maintenance.
	snaps *serve.Engine

	mu       sync.Mutex
	training []*catalog.Item
	history  []float64 // per-batch estimated precision
	manualQ  int       // items routed to manual classification
	batches  int       // processed batches (names the per-batch spans)
}

// New assembles a pipeline with the standard ensemble (Naive Bayes, kNN,
// averaged perceptron) and fresh crowd/analyst simulators.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed).Split("chimera")
	ens, err := learn.NewEnsemble([]learn.Classifier{
		learn.NewNaiveBayes(), learn.NewKNN(5), learn.NewPerceptron(3),
	}, nil)
	if err != nil {
		panic("chimera: ensemble construction cannot fail: " + err.Error())
	}
	p := &Pipeline{
		cfg:      cfg,
		rng:      rng,
		Rules:    core.NewRulebase(),
		Ensemble: ens,
		Crowd:    crowd.New(crowd.Config{Seed: cfg.Seed + 1}),
		Analyst:  crowd.NewAnalyst("ana", cfg.Seed+2, 0),
		Tracker:  evaluate.NewImpactTracker(cfg.ImpactThreshold),
		Obs:      cfg.Obs,
		Trace:    obs.NewTracer(),
		Audit:    cfg.Audit,
	}
	p.Rules.Instrument(p.Obs)
	p.snaps = serve.NewEngine(p.Rules, serve.EngineOptions{
		Obs:   p.Obs,
		Cache: serve.CacheConfig{Capacity: cfg.CacheCapacity},
	})
	p.Obs.Help(MetricDecisions, "decisions per deciding stage / decline family")
	p.Obs.Help(MetricQueueDepth, "items awaiting manual classification")
	return p
}

// Snapshots returns the pipeline's snapshot engine. Passive by default
// (Classify / ProcessBatch acquire version-cached snapshots synchronously);
// NewServer starts its async rebuild loop for lock-free concurrent serving.
func (p *Pipeline) Snapshots() *serve.Engine { return p.snaps }

// NewServer wraps the pipeline in a snapshot-isolated concurrent server: a
// bounded worker pool classifying submitted batches through the full
// Figure-2 stages, each batch against a single snapshot, while rule
// maintenance proceeds concurrently on p.Rules. Rule mutations are safe
// during serving; retraining the ensemble is not (as before).
func (p *Pipeline) NewServer(opts serve.ServerOptions) *serve.Server[Decision] {
	if opts.Obs == nil {
		opts.Obs = p.Obs
	}
	if opts.Audit == nil {
		opts.Audit = p.Audit // serve-layer failures land in the same provenance log
	}
	return serve.NewServer(p.snaps, func(ctx context.Context, snap *serve.Snapshot, it *catalog.Item) Decision {
		return p.classifyWith(ctx, it, snap)
	}, opts)
}

// NewShardedServer wraps the pipeline in the scatter-gather serving tier
// (see serve.ShardedServer): a consistent-hash router over independent
// per-shard engines and servers, all snapshotting p.Rules, each classifying
// through the full Figure-2 stages. faults, when non-nil, injects handler
// latency into every shard's workers and shard-targeted stalls via
// ShardDelay — wire its RebuildFault into individual shard engines
// (ShardedServer.Engine(i).SetRebuildFault) to fault one shard's snapshot
// lifecycle. The caller owns Shutdown/Close on the returned tier; the
// pipeline (and its own passive engine) remain usable afterwards.
//
// Note: each shard's engine instruments its snapshots into that shard's
// private registry, so per-rule executor telemetry is per shard there; the
// labeled serve_shard_* rollup lands in opts.Obs (default p.Obs).
func (p *Pipeline) NewShardedServer(opts serve.ShardedOptions, faults *faultinject.Injector) *serve.ShardedServer[Decision] {
	if opts.Obs == nil {
		opts.Obs = p.Obs
	}
	if opts.Audit == nil {
		opts.Audit = p.Audit
	}
	if opts.Cache.Capacity == 0 && p.cfg.CacheCapacity > 0 {
		// Inherit the pipeline's cache sizing: each shard gets its own
		// private cache of this capacity (see serve.ShardedOptions.Cache).
		opts.Cache = serve.CacheConfig{Capacity: p.cfg.CacheCapacity}
	}
	return serve.NewShardedServer(p.Rules, func(ctx context.Context, snap *serve.Snapshot, it *catalog.Item) Decision {
		if d := faults.HandlerDelay(); d > 0 {
			time.Sleep(d)
		}
		if d := faults.ShardDelay(serve.ShardFromContext(ctx)); d > 0 {
			time.Sleep(d)
		}
		return p.classifyWith(ctx, it, snap)
	}, opts)
}

// Close stops the snapshot engine's async rebuild loop (a no-op when it was
// never started by NewServer). The pipeline remains usable afterwards.
func (p *Pipeline) Close() { p.snaps.Close() }

// Train sets (or extends) the training data and trains the ensemble.
func (p *Pipeline) Train(items []*catalog.Item) {
	p.mu.Lock()
	p.training = append(p.training, items...)
	data := p.training
	p.mu.Unlock()
	p.Ensemble.Train(data)
}

// TrainingSize returns the current training-set size.
func (p *Pipeline) TrainingSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.training)
}

// ManualQueue returns how many items have been routed to manual
// classification so far.
func (p *Pipeline) ManualQueue() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.manualQ
}

// snapshot returns the snapshot for the hot read paths: the lock-free
// Current when the engine's async loop keeps it fresh (stale by at most the
// debounce window — the documented serving contract), the version-checked
// Acquire otherwise. Acquire reads the rulebase version under its mutex, so
// calling it per request would put the rulebase lock back on the hot path
// the serving layer exists to avoid (see the benchmark note in
// EXPERIMENTS.md).
func (p *Pipeline) snapshot() *serve.Snapshot {
	if p.snaps.Started() {
		return p.snaps.Current()
	}
	return p.snaps.Acquire()
}

// RuleHealth returns the telemetry-ranked health report for the classifier
// rule executor (see core.InstrumentedExecutor.Health); minConfidence is
// the low-precision floor, typically the business gate. Nil until a batch
// has been processed. The report feeds core.PlanHealthActions /
// Rulebase.ApplyHealthActions — the §4 loop from telemetry to maintenance.
func (p *Pipeline) RuleHealth(minConfidence float64) []core.RuleHealth {
	return p.snapshot().RuleTelemetry().Health(minConfidence)
}

// Classify runs one item through the Figure-2 stages.
func (p *Pipeline) Classify(it *catalog.Item) Decision {
	return p.ClassifyCtx(context.Background(), it)
}

// ClassifyCtx is Classify with decision provenance: the request ID carried
// by ctx (see obs.WithRequestID) is stamped on the item's audit record.
func (p *Pipeline) ClassifyCtx(ctx context.Context, it *catalog.Item) Decision {
	return p.classifyWith(ctx, it, p.snapshot())
}

// classifyWith runs one item through the Figure-2 stages with per-item rule
// execution — the reference path. ProcessBatch reproduces the same decision
// from batch-computed verdicts (gateDecision + voteDecision on the same
// snapshot), which a pipeline test asserts.
func (p *Pipeline) classifyWith(ctx context.Context, it *catalog.Item, snap *serve.Snapshot) Decision {
	start := time.Now()
	gv := snap.Gate().Apply(it)
	gateD := time.Since(start)
	if d, ok := p.gateDecision(it, snap, gv); ok {
		p.auditDecision(ctx, snap.Version(), d, obs.PathPerItem, gv, nil, "gate", gateD, "", 0)
		return d
	}
	start = time.Now()
	rv := snap.ApplyCached(it)
	d := p.voteDecision(it, snap, rv)
	p.auditDecision(ctx, snap.Version(), d, obs.PathPerItem, gv, rv, "gate", gateD, "classify", time.Since(start))
	return d
}

// auditDecision offers one decision to the provenance log. The sampling
// check runs before the record is built, so the sampled-out hot path costs
// two atomic ops and no allocation. gv/rv are the gate and classifier
// verdicts the decision came from (either may be nil); stage name/duration
// pairs with an empty name are dropped.
func (p *Pipeline) auditDecision(ctx context.Context, snapVersion uint64, d Decision, path string,
	gv, rv *core.Verdict, s1 string, d1 time.Duration, s2 string, d2 time.Duration) {
	a := p.Audit
	if !a.Enabled() {
		return
	}
	outcome := obs.OutcomeClassified
	if d.Declined {
		outcome = obs.OutcomeDeclined
	}
	if !a.ShouldCapture(d.Declined || path == obs.PathDegraded) {
		a.CountSampledOut(path, outcome)
		return
	}
	rec := &obs.DecisionRecord{
		RequestID:       obs.RequestID(ctx),
		ItemID:          d.Item.ID,
		SnapshotVersion: snapVersion,
		Path:            path,
		Outcome:         outcome,
		Type:            d.Type,
		Reason:          d.Reason,
		Confidence:      d.Confidence,
	}
	if gv != nil {
		rec.Fired = append(rec.Fired, gv.FiredRuleIDs()...)
		rec.Vetoed = append(rec.Vetoed, gv.VetoingRuleIDs()...)
	}
	if rv != nil {
		rec.Fired = append(rec.Fired, rv.FiredRuleIDs()...)
		rec.Vetoed = append(rec.Vetoed, rv.VetoingRuleIDs()...)
	}
	// A filtered decline is a veto by the Filter rule: name it.
	if fid := filterRuleID(d.Reason); fid != "" {
		rec.Vetoed = append(rec.Vetoed, fid)
	}
	if s1 != "" {
		rec.Stages = append(rec.Stages, obs.StageLatency{Stage: s1, D: d1})
	}
	if s2 != "" {
		rec.Stages = append(rec.Stages, obs.StageLatency{Stage: s2, D: d2})
	}
	a.Observe(rec)
}

// filterRuleID extracts the Filter rule ID from a "filtered:<type> by <id>"
// decline reason ("" for every other reason).
func filterRuleID(reason string) string {
	if !strings.HasPrefix(reason, "filtered:") {
		return ""
	}
	if i := strings.LastIndex(reason, " by "); i >= 0 {
		return reason[i+len(" by "):]
	}
	return ""
}

// gateDecision settles stage 1 (Gate Keeper) from an already-computed gate
// verdict. ok is false when the gate does not decide the item and the
// classifier stages must run.
func (p *Pipeline) gateDecision(it *catalog.Item, snap *serve.Snapshot, gv *core.Verdict) (Decision, bool) {
	if len(gv.FinalTypes()) == 0 {
		return Decision{}, false
	}
	t := gv.FinalTypes()[0]
	if fid, killed := snap.FilterFor(t); killed {
		return Decision{Item: it, Declined: true, Reason: "filtered:" + t + " by " + fid}, true
	}
	return Decision{Item: it, Type: t, Reason: "gatekeeper", Confidence: 1, Evidence: ruleIDs(gv.Evidence(t))}, true
}

// voteDecision runs stages 2–4 (classifiers, Voting Master, Filter) from an
// already-computed classifier-rule verdict.
func (p *Pipeline) voteDecision(it *catalog.Item, snap *serve.Snapshot, rv *core.Verdict) Decision {
	// Stage 2: classifiers.
	ruleTypes := rv.FinalTypes()
	ensPreds := p.Ensemble.Predict(it)

	// Stage 3: Voting Master.
	votes := map[string]float64{}
	for _, t := range ruleTypes {
		votes[t] += p.cfg.RuleWeight
	}
	for _, pr := range ensPreds {
		// Blacklist vetoes and attribute constraints bind the learners too.
		if len(rv.Vetoed[pr.Type]) > 0 {
			continue
		}
		if rv.Allowed != nil && !rv.Allowed[pr.Type] {
			continue
		}
		votes[pr.Type] += pr.Score
	}
	if len(votes) == 0 {
		return p.decline(it, "no-votes")
	}
	type tv struct {
		t string
		v float64
	}
	ranked := make([]tv, 0, len(votes))
	for t, v := range votes {
		ranked = append(ranked, tv{t, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].t < ranked[j].t
	})
	best := ranked[0]
	if len(ranked) > 1 && ranked[1].v == best.v {
		return p.decline(it, "ambiguous")
	}
	if best.v < p.cfg.VoteThreshold {
		return p.decline(it, "low-confidence")
	}

	// Stage 4: Filter.
	if fid, killed := snap.FilterFor(best.t); killed {
		return Decision{Item: it, Declined: true, Reason: "filtered:" + best.t + " by " + fid}
	}

	conf := best.v / (p.cfg.RuleWeight + 1)
	if conf > 1 {
		conf = 1
	}
	source := "ensemble"
	var evidence []string
	for _, t := range ruleTypes {
		if t == best.t {
			source = "rules"
			evidence = ruleIDs(rv.Asserted[best.t])
			if len(ensPreds) > 0 && ensPreds[0].Type == best.t {
				source = "combined"
			}
		}
	}
	return Decision{Item: it, Type: best.t, Reason: source, Confidence: conf, Evidence: evidence}
}

func (p *Pipeline) decline(it *catalog.Item, reason string) Decision {
	return Decision{Item: it, Declined: true, Reason: reason}
}

func ruleIDs(rules []*core.Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.ID
	}
	sort.Strings(out)
	return out
}

// ProcessBatch classifies a batch in parallel and updates the impact
// tracker and manual-queue accounting. Each batch leaves a span tree in
// p.Trace (prepare → classify → accounting), a BatchProfile on the result,
// and its per-item/per-stage series in p.Obs.
func (p *Pipeline) ProcessBatch(items []*catalog.Item) *BatchResult {
	return p.ProcessBatchCtx(context.Background(), items)
}

// ProcessBatchCtx is ProcessBatch with request-ID propagation: every audit
// record the batch produces carries ctx's request ID (one is generated with
// prefix "batch" when ctx has none).
func (p *Pipeline) ProcessBatchCtx(ctx context.Context, items []*catalog.Item) *BatchResult {
	ctx, _ = obs.EnsureRequestID(ctx, "batch")
	p.mu.Lock()
	batchNo := p.batches
	p.batches++
	p.mu.Unlock()
	span := p.Trace.Start(fmt.Sprintf("batch-%d", batchNo))
	defer span.End()

	prep := span.Child("prepare")
	// One snapshot for the whole batch: every item in it is classified under
	// the same rulebase version, even while maintenance mutates rules.
	snap := p.snaps.Acquire()
	prep.End()
	res := &BatchResult{Decisions: make([]Decision, len(items)), SnapshotVersion: snap.Version()}

	workers := p.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(items) {
		workers = len(items) // no point spawning more goroutines than items
	}
	classify := span.Child("classify")
	latency := p.Obs.Histogram(MetricClassifySecs, obs.LatencyBuckets)
	var gvs, rvs []*core.Verdict
	if !p.cfg.PerItem {
		// Batch-inverted rule execution (core.BatchMatcher): gate the whole
		// batch in one inverted join, then run the classifier stage only on
		// the items the gate left undecided — mirroring the per-item
		// short-circuit, so gate telemetry counts every item and classifier
		// telemetry only the non-gated ones. The per-item loop below then
		// assembles decisions from the precomputed verdicts.
		gvs = snap.GateApplyBatch(items, workers)
		pending := make([]*catalog.Item, 0, len(items))
		pendIdx := make([]int, 0, len(items))
		for i := range items {
			if len(gvs[i].FinalTypes()) == 0 {
				pending = append(pending, items[i])
				pendIdx = append(pendIdx, i)
			}
		}
		rvs = make([]*core.Verdict, len(items))
		if len(pending) > 0 {
			sub := snap.ApplyBatchCached(pending, workers)
			for k, i := range pendIdx {
				rvs[i] = sub[k]
			}
		}
	}
	var wg sync.WaitGroup
	chunk := 0
	if workers > 0 {
		chunk = (len(items) + workers - 1) / workers
	}
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(items) {
			break
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				start := time.Now()
				if p.cfg.PerItem {
					// classifyWith records its own per-item audit entry.
					res.Decisions[i] = p.classifyWith(ctx, items[i], snap)
				} else if d, ok := p.gateDecision(items[i], snap, gvs[i]); ok {
					res.Decisions[i] = d
					p.auditDecision(ctx, snap.Version(), d, obs.PathBatchGate, gvs[i], nil, "assemble", time.Since(start), "", 0)
				} else {
					d := p.voteDecision(items[i], snap, rvs[i])
					res.Decisions[i] = d
					p.auditDecision(ctx, snap.Version(), d, obs.PathClassifier, gvs[i], rvs[i], "assemble", time.Since(start), "", 0)
				}
				latency.Observe(time.Since(start).Seconds())
			}
		}(lo, hi)
	}
	wg.Wait()
	elapsed := classify.End()

	// Impact tracking, manual-queue accounting, and the batch profile.
	acct := span.Child("accounting")
	profile := &BatchProfile{Items: len(items), Duration: elapsed, Stages: map[string]int{}}
	touches := map[string]int{}
	for _, d := range res.Decisions {
		profile.Stages[stageOf(d)]++
		if d.Declined {
			profile.Declined++
			continue
		}
		for _, id := range d.Evidence {
			touches[id]++
		}
	}
	if profile.Items > 0 {
		profile.DeclineRate = float64(profile.Declined) / float64(profile.Items)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		profile.ItemsPerSec = float64(profile.Items) / secs
	}
	p.mu.Lock()
	p.manualQ += profile.Declined
	profile.QueueDepth = p.manualQ
	p.mu.Unlock()
	for id, n := range touches {
		p.Tracker.Observe(id, n)
	}
	res.Profile = profile

	p.Obs.Counter(MetricBatches).Inc()
	p.Obs.Counter(MetricItems).Add(int64(profile.Items))
	p.Obs.Counter(MetricDeclined).Add(int64(profile.Declined))
	for stage, n := range profile.Stages {
		p.Obs.Counter(MetricDecisions, "stage", stage).Add(int64(n))
	}
	p.Obs.Histogram(MetricBatchSecs, obs.LatencyBuckets).Observe(elapsed.Seconds())
	p.Obs.Gauge(MetricQueueDepth).Set(float64(profile.QueueDepth))
	acct.End()
	return res
}

// PrecisionHistory returns the per-batch estimated precisions so far.
func (p *Pipeline) PrecisionHistory() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]float64(nil), p.history...)
}
