// Package chimera reproduces the paper's Figure-2 architecture: the
// WalmartLabs product-classification system that combines a Gate Keeper,
// a rule-based classifier (whitelist + blacklist), an attribute/value-based
// classifier, a set of learning-based classifiers, a Voting Master and a
// Filter — followed by the crowd-evaluation / analyst-repair loop that keeps
// precision at or above the business gate (92%) while recall improves over
// time.
package chimera

import (
	"sort"
	"sync"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/evaluate"
	"repro/internal/learn"
	"repro/internal/randx"
)

// Config parameterizes the pipeline. Zero values take the paper's settings.
type Config struct {
	Seed uint64
	// PrecisionGate is the business requirement (paper: 0.92).
	PrecisionGate float64
	// RuleWeight is the vote weight of a rule assertion relative to the
	// full ensemble mass (default 2.0: rules out-vote learners).
	RuleWeight float64
	// VoteThreshold is the minimum combined top score to emit a prediction
	// (default 0.5 — an unassisted ensemble must be reasonably confident).
	VoteThreshold float64
	// SampleSize is the crowd sample drawn per batch evaluation (default 150).
	SampleSize int
	// Workers parallelizes batch classification (default 4).
	Workers int
	// MinPatternSupport is how many same-type flagged errors the analyst
	// needs before writing a patch blacklist rule (default 3).
	MinPatternSupport int
	// ImpactThreshold feeds the §5.3 impactful-rule tracker (default 200).
	ImpactThreshold int
}

func (c Config) withDefaults() Config {
	if c.PrecisionGate == 0 {
		c.PrecisionGate = 0.92
	}
	if c.RuleWeight == 0 {
		c.RuleWeight = 2.0
	}
	if c.VoteThreshold == 0 {
		c.VoteThreshold = 0.5
	}
	if c.SampleSize == 0 {
		c.SampleSize = 150
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.MinPatternSupport == 0 {
		c.MinPatternSupport = 3
	}
	if c.ImpactThreshold == 0 {
		c.ImpactThreshold = 200
	}
	return c
}

// Decision is the pipeline's output for one item.
type Decision struct {
	Item *catalog.Item
	// Type is the predicted product type; empty when Declined.
	Type string
	// Declined marks items routed to the manual classification team.
	Declined bool
	// Reason explains a decline ("low-confidence", "filtered:<type>", …)
	// or names the deciding stage for a classification ("gatekeeper",
	// "rules", "ensemble", "combined").
	Reason string
	// Confidence is the combined normalized score in [0,1].
	Confidence float64
	// Evidence lists the rule IDs that supported the prediction.
	Evidence []string
}

// BatchResult aggregates a processed batch.
type BatchResult struct {
	Decisions []Decision
	// EstPrecision is filled by EvaluateAndImprove.
	EstPrecision float64
	// Accepted is set when the batch passed the precision gate.
	Accepted bool
}

// Classified returns the emitted decisions.
func (b *BatchResult) Classified() []Decision {
	var out []Decision
	for _, d := range b.Decisions {
		if !d.Declined {
			out = append(out, d)
		}
	}
	return out
}

// DeclineRate returns the fraction of declined items.
func (b *BatchResult) DeclineRate() float64 {
	if len(b.Decisions) == 0 {
		return 0
	}
	n := 0
	for _, d := range b.Decisions {
		if d.Declined {
			n++
		}
	}
	return float64(n) / float64(len(b.Decisions))
}

// TruePrecisionRecall computes precision/recall against ground truth —
// available only in simulation; production uses crowd estimates.
func (b *BatchResult) TruePrecisionRecall() (precision, recall float64) {
	emitted, correct := 0, 0
	for _, d := range b.Decisions {
		if d.Declined {
			continue
		}
		emitted++
		if d.Type == d.Item.TrueType {
			correct++
		}
	}
	if emitted > 0 {
		precision = float64(correct) / float64(emitted)
	}
	if len(b.Decisions) > 0 {
		recall = float64(correct) / float64(len(b.Decisions))
	}
	return precision, recall
}

// Pipeline is the running system.
type Pipeline struct {
	cfg      Config
	rng      *randx.Rand
	Rules    *core.Rulebase
	Ensemble *learn.Ensemble
	Crowd    *crowd.Crowd
	Analyst  *crowd.Analyst
	Tracker  *evaluate.ImpactTracker

	mu       sync.Mutex
	training []*catalog.Item
	gateExec core.Executor
	ruleExec core.Executor
	execVer  uint64
	history  []float64 // per-batch estimated precision
	manualQ  int       // items routed to manual classification
}

// New assembles a pipeline with the standard ensemble (Naive Bayes, kNN,
// averaged perceptron) and fresh crowd/analyst simulators.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed).Split("chimera")
	ens, err := learn.NewEnsemble([]learn.Classifier{
		learn.NewNaiveBayes(), learn.NewKNN(5), learn.NewPerceptron(3),
	}, nil)
	if err != nil {
		panic("chimera: ensemble construction cannot fail: " + err.Error())
	}
	return &Pipeline{
		cfg:      cfg,
		rng:      rng,
		Rules:    core.NewRulebase(),
		Ensemble: ens,
		Crowd:    crowd.New(crowd.Config{Seed: cfg.Seed + 1}),
		Analyst:  crowd.NewAnalyst("ana", cfg.Seed+2, 0),
		Tracker:  evaluate.NewImpactTracker(cfg.ImpactThreshold),
	}
}

// Train sets (or extends) the training data and trains the ensemble.
func (p *Pipeline) Train(items []*catalog.Item) {
	p.mu.Lock()
	p.training = append(p.training, items...)
	data := p.training
	p.mu.Unlock()
	p.Ensemble.Train(data)
}

// TrainingSize returns the current training-set size.
func (p *Pipeline) TrainingSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.training)
}

// ManualQueue returns how many items have been routed to manual
// classification so far.
func (p *Pipeline) ManualQueue() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.manualQ
}

// refreshExecutors rebuilds the rule executors when the rulebase changed.
func (p *Pipeline) refreshExecutors() (gate, rules core.Executor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v := p.Rules.Version(); p.gateExec == nil || v != p.execVer {
		p.gateExec = core.NewIndexedExecutor(p.Rules.Active(core.Gate))
		p.ruleExec = core.NewIndexedExecutor(p.Rules.Active(
			core.Whitelist, core.Blacklist, core.AttrExists, core.AttrValue,
			core.TypeRestrict))
		p.execVer = v
	}
	return p.gateExec, p.ruleExec
}

// activeFilters returns the set of types killed by active Filter rules.
func (p *Pipeline) activeFilters() map[string]string {
	out := map[string]string{}
	for _, r := range p.Rules.Active(core.Filter) {
		out[r.TargetType] = r.ID
	}
	return out
}

// Classify runs one item through the Figure-2 stages.
func (p *Pipeline) Classify(it *catalog.Item) Decision {
	gateExec, ruleExec := p.refreshExecutors()
	filters := p.activeFilters()
	return p.classifyWith(it, gateExec, ruleExec, filters)
}

func (p *Pipeline) classifyWith(it *catalog.Item, gateExec, ruleExec core.Executor, filters map[string]string) Decision {
	// Stage 1: Gate Keeper.
	if gv := gateExec.Apply(it); len(gv.FinalTypes()) > 0 {
		t := gv.FinalTypes()[0]
		if fid, killed := filters[t]; killed {
			return Decision{Item: it, Declined: true, Reason: "filtered:" + t + " by " + fid}
		}
		return Decision{Item: it, Type: t, Reason: "gatekeeper", Confidence: 1, Evidence: ruleIDs(gv.Evidence(t))}
	}

	// Stage 2: classifiers.
	rv := ruleExec.Apply(it)
	ruleTypes := rv.FinalTypes()
	ensPreds := p.Ensemble.Predict(it)

	// Stage 3: Voting Master.
	votes := map[string]float64{}
	for _, t := range ruleTypes {
		votes[t] += p.cfg.RuleWeight
	}
	for _, pr := range ensPreds {
		// Blacklist vetoes and attribute constraints bind the learners too.
		if len(rv.Vetoed[pr.Type]) > 0 {
			continue
		}
		if rv.Allowed != nil && !rv.Allowed[pr.Type] {
			continue
		}
		votes[pr.Type] += pr.Score
	}
	if len(votes) == 0 {
		return p.decline(it, "no-votes")
	}
	type tv struct {
		t string
		v float64
	}
	ranked := make([]tv, 0, len(votes))
	for t, v := range votes {
		ranked = append(ranked, tv{t, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].t < ranked[j].t
	})
	best := ranked[0]
	if len(ranked) > 1 && ranked[1].v == best.v {
		return p.decline(it, "ambiguous")
	}
	if best.v < p.cfg.VoteThreshold {
		return p.decline(it, "low-confidence")
	}

	// Stage 4: Filter.
	if fid, killed := filters[best.t]; killed {
		return Decision{Item: it, Declined: true, Reason: "filtered:" + best.t + " by " + fid}
	}

	conf := best.v / (p.cfg.RuleWeight + 1)
	if conf > 1 {
		conf = 1
	}
	source := "ensemble"
	var evidence []string
	for _, t := range ruleTypes {
		if t == best.t {
			source = "rules"
			evidence = ruleIDs(rv.Asserted[best.t])
			if len(ensPreds) > 0 && ensPreds[0].Type == best.t {
				source = "combined"
			}
		}
	}
	return Decision{Item: it, Type: best.t, Reason: source, Confidence: conf, Evidence: evidence}
}

func (p *Pipeline) decline(it *catalog.Item, reason string) Decision {
	return Decision{Item: it, Declined: true, Reason: reason}
}

func ruleIDs(rules []*core.Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = r.ID
	}
	sort.Strings(out)
	return out
}

// ProcessBatch classifies a batch in parallel and updates the impact
// tracker and manual-queue accounting.
func (p *Pipeline) ProcessBatch(items []*catalog.Item) *BatchResult {
	gateExec, ruleExec := p.refreshExecutors()
	filters := p.activeFilters()
	res := &BatchResult{Decisions: make([]Decision, len(items))}

	workers := p.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(items) {
			break
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				res.Decisions[i] = p.classifyWith(items[i], gateExec, ruleExec, filters)
			}
		}(lo, hi)
	}
	wg.Wait()

	// Impact tracking and manual-queue accounting.
	declined := 0
	touches := map[string]int{}
	for _, d := range res.Decisions {
		if d.Declined {
			declined++
			continue
		}
		for _, id := range d.Evidence {
			touches[id]++
		}
	}
	p.mu.Lock()
	p.manualQ += declined
	p.mu.Unlock()
	for id, n := range touches {
		p.Tracker.Observe(id, n)
	}
	return res
}

// PrecisionHistory returns the per-batch estimated precisions so far.
func (p *Pipeline) PrecisionHistory() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]float64(nil), p.history...)
}
