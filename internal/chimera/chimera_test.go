package chimera

import (
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// fixture builds a catalog, a trained pipeline with a starter rulebase, and
// a test batch.
func fixture(t *testing.T, seed uint64) (*catalog.Catalog, *Pipeline) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 40})
	p := New(Config{Seed: seed})
	p.Train(cat.LabeledData(4000))

	add := func(r *core.Rule, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Rules.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
	add(core.NewWhitelist("rings?", "rings"))
	add(core.NewWhitelist("(wedding | diamond) band", "rings"))
	add(core.NewWhitelist("jeans?", "jeans"))
	add(core.NewWhitelist("(area | oriental | braided | shag | tufted) rugs?", "area rugs"))
	add(core.NewWhitelist("(motor | engine) oils?", "motor oil"))
	add(core.NewBlacklist("olive oils?", "motor oil"))
	add(core.NewAttrExists("isbn", "books"))
	add(core.NewGate("(satchel | purse | tote)", "handbags"))
	return cat, p
}

func TestClassifyGateKeeper(t *testing.T) {
	_, p := fixture(t, 71)
	d := p.Classify(&catalog.Item{ID: "x", Attrs: map[string]string{"Title": "quilted leather satchel mini"}})
	if d.Declined || d.Type != "handbags" || d.Reason != "gatekeeper" {
		t.Fatalf("gate keeper should classify immediately: %+v", d)
	}
	if d.Confidence != 1 {
		t.Fatalf("gate decisions are certain: %v", d.Confidence)
	}
}

func TestClassifyRulesBeatLearners(t *testing.T) {
	_, p := fixture(t, 72)
	// "wedding band" has no 'ring' token; the rule should still classify it.
	d := p.Classify(&catalog.Item{ID: "x", Attrs: map[string]string{"Title": "platinaire wedding band size 7"}})
	if d.Declined || d.Type != "rings" {
		t.Fatalf("trap title should be caught by rule: %+v", d)
	}
	if len(d.Evidence) == 0 {
		t.Fatal("rule-backed decision should carry evidence")
	}
}

func TestClassifyBlacklistVeto(t *testing.T) {
	_, p := fixture(t, 73)
	d := p.Classify(&catalog.Item{ID: "x", Attrs: map[string]string{"Title": "oliveto extra virgin olive oil 500 ml"}})
	if !d.Declined && d.Type == "motor oil" {
		t.Fatalf("blacklist should veto motor oil: %+v", d)
	}
}

func TestClassifyAttrRule(t *testing.T) {
	_, p := fixture(t, 74)
	d := p.Classify(&catalog.Item{ID: "x", Attrs: map[string]string{
		"Title": "The Quiet Meadow large print",
		"isbn":  "9781111111111",
	}})
	if d.Declined || d.Type != "books" {
		t.Fatalf("isbn attr rule should classify books: %+v", d)
	}
}

func TestClassifyDeclinesUnknown(t *testing.T) {
	_, p := fixture(t, 75)
	d := p.Classify(&catalog.Item{ID: "x", Attrs: map[string]string{"Title": "zzkqv wfrbb pltnn"}})
	if !d.Declined {
		t.Fatalf("gibberish should be declined: %+v", d)
	}
}

func TestProcessBatchMeetsGateWithRules(t *testing.T) {
	cat, p := fixture(t, 76)
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 2000, Epoch: 0})
	res := p.ProcessBatch(batch)
	if len(res.Decisions) != len(batch) {
		t.Fatal("missing decisions")
	}
	prec, rec := res.TruePrecisionRecall()
	if prec < 0.85 {
		t.Fatalf("true precision too low: %v", prec)
	}
	if rec < 0.4 {
		t.Fatalf("recall too low: %v", rec)
	}
	if res.DeclineRate() == 0 {
		t.Fatal("some items should be declined (tail types, gibberish)")
	}
	if p.ManualQueue() == 0 {
		t.Fatal("declined items should hit the manual queue")
	}
}

func TestEvaluateAndImproveLoop(t *testing.T) {
	cat, p := fixture(t, 77)
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 1500, Epoch: 0})
	res := p.ProcessBatch(batch)
	rep, err := p.EvaluateAndImprove(res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampleSize == 0 {
		t.Fatal("no sample evaluated")
	}
	if rep.EstPrecision <= 0 || rep.EstPrecision > 1 {
		t.Fatalf("implausible precision estimate %v", rep.EstPrecision)
	}
	if res.EstPrecision != rep.EstPrecision {
		t.Fatal("batch result not annotated")
	}
	if len(p.PrecisionHistory()) != 1 {
		t.Fatal("history not recorded")
	}
	// Crowd-estimated precision should be within a few points of truth.
	truth, _ := res.TruePrecisionRecall()
	if diff := rep.EstPrecision - truth; diff > 0.12 || diff < -0.12 {
		t.Fatalf("estimate %v too far from truth %v", rep.EstPrecision, truth)
	}
}

func TestAnalystPatchImprovesPrecisionOnErrorPattern(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 78, NumTypes: 40})
	p := New(Config{Seed: 78, MinPatternSupport: 3, SampleSize: 400})
	p.Train(cat.LabeledData(3000))
	// A deliberately bad analyst rule: "oil" → motor oil misfires on olive
	// oil titles.
	bad, err := core.NewWhitelist("oils?", "motor oil")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rules.Add(bad, "ana"); err != nil {
		t.Fatal(err)
	}
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 1200, Epoch: 0, OnlyTypes: []string{"motor oil", "olive oil"}})
	res := p.ProcessBatch(batch)
	precBefore, _ := res.TruePrecisionRecall()
	rep, err := p.EvaluateAndImprove(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NewRuleIDs) == 0 {
		t.Fatalf("analyst should have written a patch rule (flagged=%d)", rep.Flagged)
	}
	// The patch should mention a grocery token and target motor oil.
	patch := p.Rules.Get(rep.NewRuleIDs[0])
	if patch.Kind != core.Blacklist || patch.TargetType != "motor oil" {
		t.Fatalf("unexpected patch rule: %s", patch)
	}
	res2 := p.ProcessBatch(batch)
	precAfter, _ := res2.TruePrecisionRecall()
	if precAfter <= precBefore {
		t.Fatalf("patch did not help: %v → %v", precBefore, precAfter)
	}
}

func TestScaleDownAndRestore(t *testing.T) {
	cat, p := fixture(t, 79)
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 600, Epoch: 0, OnlyTypes: []string{"rings"}})

	before := p.ProcessBatch(batch)
	classifiedBefore := len(before.Classified())
	if classifiedBefore == 0 {
		t.Fatal("precondition: rings should classify")
	}

	tok, err := p.ScaleDownType("rings", "ana", "rings degraded")
	if err != nil {
		t.Fatal(err)
	}
	during := p.ProcessBatch(batch)
	for _, d := range during.Classified() {
		if d.Type == "rings" {
			t.Fatalf("scaled-down type still predicted: %+v", d)
		}
	}
	if during.DeclineRate() <= before.DeclineRate() {
		t.Fatal("scale-down should route items to manual")
	}
	// Filter reasons must name the filter rule.
	foundFiltered := false
	for _, d := range during.Decisions {
		if d.Declined && strings.HasPrefix(d.Reason, "filtered:rings") {
			foundFiltered = true
		}
	}
	if !foundFiltered {
		t.Fatal("no filtered decline reasons recorded")
	}

	if err := p.Restore(tok, "dev"); err != nil {
		t.Fatal(err)
	}
	after := p.ProcessBatch(batch)
	if len(after.Classified()) < classifiedBefore*9/10 {
		t.Fatalf("restore incomplete: %d vs %d", len(after.Classified()), classifiedBefore)
	}
}

func TestRestoreNilToken(t *testing.T) {
	_, p := fixture(t, 80)
	if err := p.Restore(nil, "dev"); err == nil {
		t.Fatal("nil token should error")
	}
}

func TestDegradedTypes(t *testing.T) {
	flagged := []Decision{
		{Type: "rings"}, {Type: "rings"}, {Type: "rings"},
		{Type: "jeans"},
	}
	got := DegradedTypes(flagged, 3)
	if len(got) != 1 || got[0] != "rings" {
		t.Fatalf("degraded = %v", got)
	}
}

func TestImpactTrackerFedByBatches(t *testing.T) {
	cat, p := fixture(t, 81)
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 2500, Epoch: 0})
	p.ProcessBatch(batch)
	// Some rule should have accumulated touches.
	total := 0
	for _, r := range p.Rules.Active() {
		total += p.Tracker.Touches(r.ID)
	}
	if total == 0 {
		t.Fatal("impact tracker saw no touches")
	}
}

func TestDescribe(t *testing.T) {
	_, p := fixture(t, 82)
	s := p.Describe()
	if !strings.Contains(s, "rules=8") || !strings.Contains(s, "training=") {
		t.Fatalf("describe output: %s", s)
	}
}

func TestFlaggedFromAndTruth(t *testing.T) {
	it := &catalog.Item{ID: "1", TrueType: "rings", Attrs: map[string]string{"Title": "x"}}
	res := &BatchResult{Decisions: []Decision{
		{Item: it, Type: "rings"},
		{Item: it, Type: "jeans"},
		{Item: it, Declined: true},
	}}
	flagged := FlaggedFrom(res, WrongAgainstGroundTruth)
	if len(flagged) != 1 || flagged[0].Type != "jeans" {
		t.Fatalf("flagged = %v", flagged)
	}
}

func TestPipelineBitwiseDeterminism(t *testing.T) {
	// Regression for the nondeterminism chain fixed across catalog (attr
	// generation order), learn (feature order, kNN/Dot accumulation order):
	// two identically-seeded pipelines must produce byte-identical decision
	// streams, including confidences.
	run := func() []Decision {
		cat := catalog.New(catalog.Config{Seed: 83, NumTypes: 60, ZipfS: 1.3})
		p := New(Config{Seed: 83, SampleSize: 300})
		p.Train(cat.LabeledData(700))
		r, _ := core.NewWhitelist("rings?", "rings")
		_, _ = p.Rules.Add(r, "ana")
		batch := cat.GenerateBatch(catalog.BatchSpec{Size: 800, Epoch: 2})
		return p.ProcessBatch(batch).Decisions
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Declined != b[i].Declined ||
			a[i].Confidence != b[i].Confidence || a[i].Reason != b[i].Reason {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTypeRestrictAndGuardsInPipeline(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 84, NumTypes: 40})
	p := New(Config{Seed: 84})
	p.Train(cat.LabeledData(2000))

	// Dictionary constraint: computer-ish words → computer types only.
	tr, err := core.NewTypeRestrict("(ssd | motherboard | 8gb)", []string{"laptop computers", "computer monitors", "tablets"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rules.Add(tr, "ana"); err != nil {
		t.Fatal(err)
	}
	wl, err := core.NewWhitelist("books?", "books")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rules.Add(wl, "ana"); err != nil {
		t.Fatal(err)
	}

	// A title with both a book-ish word and dictionary evidence: the
	// constraint suppresses the book assertion.
	d := p.Classify(&catalog.Item{ID: "x", Attrs: map[string]string{
		"Title": "programming book bundle with 8gb ssd drive",
	}})
	if !d.Declined && d.Type == "books" {
		t.Fatalf("type-restrict should block the books assertion: %+v", d)
	}

	// Guarded blacklist inside the pipeline.
	bl, err := core.NewBlacklist("luxwatch", "watches")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.WithGuards(core.Guard{Attr: "Price", Op: "<", Value: "20"}); err != nil {
		t.Fatal(err)
	}
	wlw, err := core.NewWhitelist("luxwatch", "watches")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rules.Add(bl, "ana"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rules.Add(wlw, "ana"); err != nil {
		t.Fatal(err)
	}
	cheap := p.Classify(&catalog.Item{ID: "y", Attrs: map[string]string{"Title": "luxwatch classic", "Price": "9.99"}})
	if !cheap.Declined && cheap.Type == "watches" {
		t.Fatalf("guarded blacklist should veto the suspiciously cheap watch: %+v", cheap)
	}
	real := p.Classify(&catalog.Item{ID: "z", Attrs: map[string]string{"Title": "luxwatch classic", "Price": "299.00"}})
	if real.Declined || real.Type != "watches" {
		t.Fatalf("genuine watch should classify: %+v", real)
	}
}

func TestOnboardDeclinedScaleUp(t *testing.T) {
	// The §2.2 scale-up drill: a vendor sends items of types the system has
	// never trained on and has no rules for; onboarding must turn the
	// manual team's labels into rules + training data so a re-run of the
	// same kind of batch classifies most of it.
	cat := catalog.New(catalog.Config{Seed: 86, NumTypes: 60})
	p := New(Config{Seed: 86})
	// Train WITHOUT two tail types, then receive a batch of exactly those.
	var train []*catalog.Item
	onboardTypes := map[string]bool{"camping tents": true, "fishing rods": true}
	for _, it := range cat.LabeledData(3000) {
		if !onboardTypes[it.TrueType] {
			train = append(train, it)
		}
	}
	p.Train(train)

	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 500, Epoch: 0, OnlyTypes: []string{"camping tents", "fishing rods"}})
	res := p.ProcessBatch(batch)
	declineBefore := res.DeclineRate()
	precBefore, recBefore := res.TruePrecisionRecall()
	_ = precBefore

	rep, err := p.OnboardDeclined(res, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Declined == 0 || rep.Labeled != rep.Declined {
		t.Fatalf("manual team should label every declined item: %+v", rep)
	}
	if len(rep.NewTypes) == 0 {
		t.Fatalf("unknown types should be discovered: %+v", rep)
	}
	if len(rep.NewRuleIDs) == 0 {
		t.Fatalf("onboarding should mine rules: %+v", rep)
	}
	for _, id := range rep.NewRuleIDs {
		if p.Rules.Get(id).Provenance != "onboarding" {
			t.Fatal("provenance missing")
		}
	}

	res2 := p.ProcessBatch(batch)
	_, recAfter := res2.TruePrecisionRecall()
	if res2.DeclineRate() >= declineBefore {
		t.Fatalf("onboarding should cut declines: %.3f → %.3f", declineBefore, res2.DeclineRate())
	}
	if recAfter <= recBefore {
		t.Fatalf("onboarding should raise recall: %.3f → %.3f", recBefore, recAfter)
	}
}

func TestOnboardDeclinedNothingDeclined(t *testing.T) {
	_, p := fixture(t, 87)
	res := &BatchResult{Decisions: []Decision{{Type: "rings", Item: &catalog.Item{ID: "1", Attrs: map[string]string{"Title": "x"}}}}}
	rep, err := p.OnboardDeclined(res, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Declined != 0 || len(rep.NewRuleIDs) != 0 {
		t.Fatalf("nothing to onboard: %+v", rep)
	}
}

func TestConcurrentProcessBatches(t *testing.T) {
	cat, p := fixture(t, 85)
	batches := make([][]*catalog.Item, 4)
	for i := range batches {
		batches[i] = cat.GenerateBatch(catalog.BatchSpec{Size: 300, Epoch: 0})
	}
	done := make(chan *BatchResult, len(batches))
	for _, b := range batches {
		go func(items []*catalog.Item) { done <- p.ProcessBatch(items) }(b)
	}
	for range batches {
		res := <-done
		if len(res.Decisions) != 300 {
			t.Fatalf("concurrent batch lost decisions: %d", len(res.Decisions))
		}
	}
	if p.ManualQueue() < 0 {
		t.Fatal("ledger corrupted")
	}
}

func TestRecallImprovesOverRounds(t *testing.T) {
	// The paper's operating curve: precision stays above the gate while
	// recall climbs as analysts add rules and training data.
	// Scarce training data and drifted test vocabulary: the §2.2 starting
	// point ("tolerate lower recall... increase recall over time").
	cat := catalog.New(catalog.Config{Seed: 83, NumTypes: 60, ZipfS: 1.3})
	p := New(Config{Seed: 83, SampleSize: 300})
	p.Train(cat.LabeledData(700))

	// Start with a minimal rulebase.
	r, _ := core.NewWhitelist("rings?", "rings")
	_, _ = p.Rules.Add(r, "ana")

	var recalls []float64
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 1500, Epoch: 2})
	for round := 0; round < 3; round++ {
		res := p.ProcessBatch(batch)
		_, rec := res.TruePrecisionRecall()
		recalls = append(recalls, rec)
		if _, err := p.EvaluateAndImprove(res); err != nil {
			t.Fatal(err)
		}
		// Analysts also add a couple of whitelist rules per round (simulated
		// by rules for declined head types).
		declinedTypes := map[string]int{}
		for _, d := range res.Decisions {
			if d.Declined {
				declinedTypes[d.Item.TrueType]++ // simulation shortcut for "manual team labels them"
			}
		}
		for ty, n := range declinedTypes {
			if n < 20 {
				continue
			}
			spec := cat.TypeByName(ty)
			if spec == nil || len(spec.HeadTerms) == 0 {
				continue
			}
			nr, err := core.NewWhitelist(spec.HeadTerms[0].Text, ty)
			if err == nil {
				_, _ = p.Rules.Add(nr, "ana")
			}
		}
	}
	if recalls[len(recalls)-1] <= recalls[0] {
		t.Fatalf("recall did not improve across rounds: %v", recalls)
	}
}

// telemetryFixture is fixture with a private metric registry, so assertions
// are not polluted by other tests sharing obs.Default().
func telemetryFixture(t *testing.T, seed uint64) (*catalog.Catalog, *Pipeline) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 40})
	p := New(Config{Seed: seed, Obs: obs.NewRegistry()})
	p.Train(cat.LabeledData(4000))
	add := func(r *core.Rule, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Rules.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
	add(core.NewWhitelist("rings?", "rings"))
	add(core.NewWhitelist("jeans?", "jeans"))
	add(core.NewWhitelist("(motor | engine) oils?", "motor oil"))
	add(core.NewBlacklist("olive oils?", "motor oil"))
	add(core.NewGate("(satchel | purse | tote)", "handbags"))
	return cat, p
}

func TestProcessBatchProfileAndMetrics(t *testing.T) {
	cat, p := telemetryFixture(t, 91)
	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 400, Epoch: 0})
	res := p.ProcessBatch(batch)

	prof := res.Profile
	if prof == nil {
		t.Fatal("ProcessBatch must attach a profile")
	}
	if prof.Items != 400 || prof.Duration <= 0 || prof.ItemsPerSec <= 0 {
		t.Fatalf("profile basics wrong: %+v", prof)
	}
	total := 0
	for _, n := range prof.Stages {
		total += n
	}
	if total != prof.Items {
		t.Fatalf("stage counts sum to %d, want %d (%v)", total, prof.Items, prof.Stages)
	}
	if prof.DeclineRate != res.DeclineRate() {
		t.Fatalf("profile decline rate %v != result %v", prof.DeclineRate, res.DeclineRate())
	}
	if prof.QueueDepth != p.ManualQueue() {
		t.Fatalf("queue depth %d != manual queue %d", prof.QueueDepth, p.ManualQueue())
	}

	// Registry series agree with the profile.
	if got := p.Obs.Counter(MetricItems).Value(); got != 400 {
		t.Fatalf("items counter = %d", got)
	}
	if got := p.Obs.Counter(MetricDeclined).Value(); got != int64(prof.Declined) {
		t.Fatalf("declined counter = %d, want %d", got, prof.Declined)
	}
	if got := p.Obs.Histogram(MetricClassifySecs, nil).Count(); got != 400 {
		t.Fatalf("classify latency observations = %d", got)
	}
	if got := p.Obs.Gauge(MetricQueueDepth).Value(); got != float64(prof.QueueDepth) {
		t.Fatalf("queue gauge = %v", got)
	}
	var stageSum int64
	for _, c := range p.Obs.Snapshot().Counters {
		if c.Name == MetricDecisions {
			stageSum += c.Value
		}
	}
	if stageSum != 400 {
		t.Fatalf("decision stage counters sum to %d", stageSum)
	}

	// Executor-level series exist for both stages.
	if p.Obs.Counter(core.MetricExecApplies, "exec", "gate").Value() != 400 {
		t.Fatal("gate executor applies not recorded")
	}
	// The rule stage only sees items the gate keeper passed on.
	ruleApplies := p.Obs.Counter(core.MetricExecApplies, "exec", "rules").Value()
	if ruleApplies <= 0 || ruleApplies > 400 {
		t.Fatalf("rule executor applies = %d", ruleApplies)
	}

	// The batch left a span tree: batch-0 → prepare/classify/accounting.
	roots := p.Trace.Roots()
	if len(roots) != 1 || roots[0].Name() != "batch-0" {
		t.Fatalf("trace roots = %v", roots)
	}
	names := map[string]bool{}
	for _, c := range roots[0].Children() {
		names[c.Name()] = true
	}
	for _, want := range []string{"prepare", "classify", "accounting"} {
		if !names[want] {
			t.Fatalf("missing %q span in %v", want, names)
		}
	}
	if out := p.Trace.Render(); !strings.Contains(out, "classify") {
		t.Fatalf("render missing classify:\n%s", out)
	}
}

func TestEvaluateAndImproveMetrics(t *testing.T) {
	cat, p := telemetryFixture(t, 92)
	res := p.ProcessBatch(cat.GenerateBatch(catalog.BatchSpec{Size: 500, Epoch: 0}))
	rep, err := p.EvaluateAndImprove(res)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Obs.Counter(MetricCrowdSampled).Value(); got != int64(rep.SampleSize) {
		t.Fatalf("crowd sampled counter = %d, want %d", got, rep.SampleSize)
	}
	if got := p.Obs.Counter(MetricFlagged).Value(); got != int64(rep.Flagged) {
		t.Fatalf("flagged counter = %d, want %d", got, rep.Flagged)
	}
	if got := p.Obs.Gauge(MetricEstPrecision).Value(); got != rep.EstPrecision {
		t.Fatalf("precision gauge = %v, want %v", got, rep.EstPrecision)
	}
	// Rulebase mutations (seed adds + any patch rules) were counted.
	if got := p.Obs.Counter(core.MetricRulebaseMutations, "action", "add").Value(); got < 5 {
		t.Fatalf("rulebase add counter = %d, want >= 5 seed rules", got)
	}
}

func TestPipelineRuleHealthFeedsMaintenance(t *testing.T) {
	cat, p := telemetryFixture(t, 93)
	// A rule that can never fire on this catalog.
	dead, err := core.NewWhitelist("unobtainium widgets?", "widgets")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Rules.Add(dead, "ana"); err != nil {
		t.Fatal(err)
	}
	if p.RuleHealth(0) != nil {
		t.Fatal("health must be nil before any batch")
	}
	p.ProcessBatch(cat.GenerateBatch(catalog.BatchSpec{Size: 600, Epoch: 0}))

	health := p.RuleHealth(0.92)
	if len(health) == 0 {
		t.Fatal("health report empty after a batch")
	}
	var deadHealth *core.RuleHealth
	for i := range health {
		if health[i].RuleID == dead.ID {
			deadHealth = &health[i]
		}
	}
	if deadHealth == nil || len(deadHealth.Issues) == 0 || deadHealth.Issues[0] != core.HealthNeverFired {
		t.Fatalf("dead rule not flagged: %+v", deadHealth)
	}

	// Close the loop: plan from telemetry, apply to the rulebase.
	actions := core.PlanHealthActions(health, 600, 100)
	disabled := p.Rules.ApplyHealthActions(actions, "maint")
	found := false
	for _, id := range disabled {
		if id == dead.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead rule not disabled by telemetry loop: %v", disabled)
	}
	if p.Rules.Get(dead.ID).Status != core.Disabled {
		t.Fatal("rulebase status unchanged")
	}
}

// TestBatchPathMatchesPerItemPath: ProcessBatch's default batch-inverted
// rule execution must reproduce the item-at-a-time reference path
// (Config.PerItem) decision-for-decision — type, decline flag, reason,
// confidence and evidence.
func TestBatchPathMatchesPerItemPath(t *testing.T) {
	build := func(perItem bool) (*catalog.Catalog, *Pipeline) {
		cat := catalog.New(catalog.Config{Seed: 93, NumTypes: 40})
		p := New(Config{Seed: 93, PerItem: perItem, Obs: obs.NewRegistry()})
		p.Train(cat.LabeledData(4000))
		add := func(r *core.Rule, err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Rules.Add(r, "ana"); err != nil {
				t.Fatal(err)
			}
		}
		add(core.NewWhitelist("rings?", "rings"))
		add(core.NewWhitelist("jeans?", "jeans"))
		add(core.NewWhitelist("(motor | engine) oils?", "motor oil"))
		add(core.NewBlacklist("olive oils?", "motor oil"))
		add(core.NewAttrExists("isbn", "books"))
		add(core.NewGate("(satchel | purse | tote)", "handbags"))
		add(core.NewFilter("jeans"))
		return cat, p
	}
	cat, batch := build(false)
	_, perItem := build(true)
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 300, Epoch: 2})

	rb := batch.ProcessBatch(items)
	rp := perItem.ProcessBatch(items)
	for i := range items {
		db, dp := rb.Decisions[i], rp.Decisions[i]
		if db.Type != dp.Type || db.Declined != dp.Declined || db.Reason != dp.Reason ||
			db.Confidence != dp.Confidence || strings.Join(db.Evidence, ",") != strings.Join(dp.Evidence, ",") {
			t.Fatalf("paths diverge on item %d (%q):\nbatch:    %+v\nper-item: %+v",
				i, items[i].Title(), db, dp)
		}
	}
}

// TestShardedServerMatchesDirectClassification: the scatter-gather tier,
// wired through Pipeline.NewShardedServer, produces the same decisions as
// the synchronous Classify path — routing and fan-out change where an item
// is classified, never what it is classified as.
func TestShardedServerMatchesDirectClassification(t *testing.T) {
	cat, p := fixture(t, 21)
	srv := p.NewShardedServer(serve.ShardedOptions{Shards: 4, Obs: obs.NewRegistry()}, nil)
	defer srv.Close()

	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 120, Epoch: 1})
	tk, err := srv.Submit(batch)
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Wait()
	if res.Err() != nil {
		t.Fatalf("gather failed: %v", res.Err())
	}
	spread := map[int]bool{}
	for i, it := range batch {
		want := p.Classify(it)
		got := res.Results[i]
		if got.Type != want.Type || got.Declined != want.Declined ||
			got.Confidence != want.Confidence || got.Reason != want.Reason {
			t.Fatalf("item %d: sharded %+v != direct %+v", i, got, want)
		}
		spread[res.ShardOf[i]] = true
	}
	if len(spread) < 2 {
		t.Fatalf("batch landed on %d shard(s) — no scatter exercised", len(spread))
	}
}

// TestShardedServerInjectsShardContext: the pipeline's sharded handler runs
// under a context carrying the shard index (the hook targeted fault
// injection keys off), and a targeted injector stalls only that shard.
func TestShardedServerInjectsShardContext(t *testing.T) {
	cat, p := fixture(t, 22)
	inj := faultinject.New(faultinject.Config{
		Seed: 5, ShardStallP: 1.0, ShardStall: time.Microsecond, ShardTarget: 1,
	})
	srv := p.NewShardedServer(serve.ShardedOptions{Shards: 3, Obs: obs.NewRegistry()}, inj)
	defer srv.Close()

	batch := cat.GenerateBatch(catalog.BatchSpec{Size: 90, Epoch: 1})
	tk, err := srv.Submit(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res := tk.Wait(); res.Err() != nil {
		t.Fatalf("gather failed: %v", res.Err())
	}
	onTarget := 0
	for _, it := range batch {
		if srv.ShardFor(it) == 1 {
			onTarget++
		}
	}
	if onTarget == 0 {
		t.Skip("no items routed to the stalled shard for this seed")
	}
	if got := inj.Counts()["shard_stall"]; got != onTarget {
		t.Fatalf("injector stalled %d handler calls, %d items routed to the target shard", got, onTarget)
	}
}
