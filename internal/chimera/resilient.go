package chimera

import (
	"context"
	"errors"
	"time"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Metric families recorded by the resilience layer.
const (
	// MetricDegradedItems counts items decided on the gate-only degraded
	// path; MetricDegradedBatches counts the batches that took it.
	MetricDegradedItems   = "chimera_degraded_items_total"
	MetricDegradedBatches = "chimera_degraded_batches_total"
)

// ResilienceOptions parameterizes a ResilientClient. Zero values take
// defaults.
type ResilienceOptions struct {
	// Retry configures the backoff retrier over queue-full sheds.
	Retry serve.RetryOptions
	// DegradedWatermark is the queue-load fraction (of the server's queue
	// capacity) at or above which new batches bypass the queue onto the
	// gate-only degraded path (default 0.9; values outside (0,1] clamp).
	DegradedWatermark float64
	// Faults optionally injects per-item handler latency into the server's
	// workers, and is available to the caller to also wire into the
	// engine's rebuild path (Engine.SetRebuildFault) and crowd.Config.
	Faults *faultinject.Injector
}

// ResilientClient is the failure-aware frontend over a Pipeline server: it
// submits batches with caller-deadline propagation and retry-with-backoff,
// and when the serving layer cannot take the work at all — the queue is
// saturated past the load watermark, retries are exhausted, or the snapshot
// engine is degraded after a failed rebuild — it falls back to the gate-only
// degraded decision path instead of shedding silently. Degraded items are
// routed to the manual queue with stage "degraded": recall is sacrificed,
// item accounting never is.
type ResilientClient struct {
	p      *Pipeline
	srv    *serve.Server[Decision]
	retr   *serve.Retrier[Decision]
	faults *faultinject.Injector

	watermark int
	depth     *obs.Gauge

	degItems   *obs.Counter
	degBatches *obs.Counter
}

// NewResilientClient builds a server over the pipeline (with fault-injected
// handler latency when ropts.Faults is set) and wraps it in retry/backoff
// and degraded-mode fallback. The caller owns Shutdown on the client.
func (p *Pipeline) NewResilientClient(sopts serve.ServerOptions, ropts ResilienceOptions) *ResilientClient {
	if sopts.Obs == nil {
		sopts.Obs = p.Obs
	}
	if sopts.Audit == nil {
		sopts.Audit = p.Audit
	}
	inj := ropts.Faults
	srv := serve.NewServer(p.snaps, func(ctx context.Context, snap *serve.Snapshot, it *catalog.Item) Decision {
		if d := inj.HandlerDelay(); d > 0 {
			time.Sleep(d)
		}
		return p.classifyWith(ctx, it, snap)
	}, sopts)

	w := ropts.DegradedWatermark
	if w <= 0 || w > 1 {
		w = 0.9
	}
	watermark := int(w * float64(srv.QueueCapacity()))
	if watermark < 1 {
		watermark = 1
	}
	rc := &ResilientClient{
		p:          p,
		srv:        srv,
		retr:       serve.NewRetrier(srv, ropts.Retry),
		faults:     inj,
		watermark:  watermark,
		depth:      sopts.Obs.Gauge(serve.MetricQueueDepth),
		degItems:   p.Obs.Counter(MetricDegradedItems),
		degBatches: p.Obs.Counter(MetricDegradedBatches),
	}
	p.Obs.Help(MetricDegradedItems, "items decided on the gate-only degraded path")
	p.Obs.Help(MetricDegradedBatches, "batches that fell back to degraded mode")
	return rc
}

// Server exposes the underlying serve.Server (for Shutdown/Drain and tests).
func (rc *ResilientClient) Server() *serve.Server[Decision] { return rc.srv }

// Retrier exposes the backoff retrier (for budget inspection).
func (rc *ResilientClient) Retrier() *serve.Retrier[Decision] { return rc.retr }

// DegradedMode reports whether the next batch would take the degraded path:
// the queue sits at or above the load watermark, or the snapshot engine is
// serving a stale snapshot after a failed rebuild.
func (rc *ResilientClient) DegradedMode() bool {
	return int(rc.depth.Value()) >= rc.watermark || rc.p.snaps.Degraded()
}

// Process classifies one batch end to end under the resilience policy:
//
//  1. degraded mode active → gate-only decisions immediately (no queueing);
//  2. otherwise submit with retry/backoff and wait under the caller's ctx;
//  3. retries exhausted on a saturated queue → gate-only decisions — the
//     overloaded system answers every item, it just answers conservatively;
//  4. shutdown or an expired caller deadline → the error, unmasked.
//
// Every submitted item therefore resolves exactly once: with a full
// decision, a degraded decision, or an explicit error — never silence.
func (rc *ResilientClient) Process(ctx context.Context, items []*catalog.Item) ([]Decision, *serve.Snapshot, error) {
	ctx, _ = obs.EnsureRequestID(ctx, "req")
	if rc.DegradedMode() {
		out, snap := rc.degrade(ctx, items)
		return out, snap, nil
	}
	ticket, err := rc.retr.Submit(ctx, items)
	if err != nil {
		if errors.Is(err, serve.ErrQueueFull) {
			out, snap := rc.degrade(ctx, items)
			return out, snap, nil
		}
		return nil, nil, err
	}
	return ticket.WaitContext(ctx)
}

// degrade runs the gate-only decision path over one batch: items the Gate
// Keeper (or its Filter) decides keep their normal decision; everything else
// is declined to the manual queue with reason "degraded". Manual-queue and
// per-stage accounting run exactly as on the full path, so served + declined
// totals still add up across modes.
func (rc *ResilientClient) degrade(ctx context.Context, items []*catalog.Item) ([]Decision, *serve.Snapshot) {
	out, snap := rc.p.ClassifyDegradedCtx(ctx, items)
	rc.degBatches.Inc()
	rc.degItems.Add(int64(len(items)))
	return out, snap
}

// ClassifyDegraded is the pipeline's gate-only decision path, used by the
// resilience layer under overload and rebuild failure: only stage 1 (Gate
// Keeper + Filter) runs; undecided items are declined with reason
// "degraded" and routed to the manual queue. It reads the lock-free Current
// snapshot — degraded mode must never wait on the rulebase.
func (p *Pipeline) ClassifyDegraded(items []*catalog.Item) ([]Decision, *serve.Snapshot) {
	return p.ClassifyDegradedCtx(context.Background(), items)
}

// ClassifyDegradedCtx is ClassifyDegraded with request-ID propagation. Every
// item yields an always-captured audit record on the degraded path — the
// records an operator tails first during an incident.
func (p *Pipeline) ClassifyDegradedCtx(ctx context.Context, items []*catalog.Item) ([]Decision, *serve.Snapshot) {
	ctx, _ = obs.EnsureRequestID(ctx, "degraded")
	snap := p.snaps.Current()
	out := make([]Decision, len(items))
	declined := 0
	for i, it := range items {
		start := time.Now()
		gv := snap.Gate().Apply(it)
		if d, ok := p.gateDecision(it, snap, gv); ok {
			out[i] = d
		} else {
			out[i] = Decision{Item: it, Declined: true, Reason: "degraded"}
		}
		p.auditDecision(ctx, snap.Version(), out[i], obs.PathDegraded, gv, nil, "gate", time.Since(start), "", 0)
		if out[i].Declined {
			declined++
		}
	}
	p.mu.Lock()
	p.manualQ += declined
	qdepth := p.manualQ
	p.mu.Unlock()
	for _, d := range out {
		p.Obs.Counter(MetricDecisions, "stage", stageOf(d)).Inc()
	}
	p.Obs.Counter(MetricItems).Add(int64(len(items)))
	p.Obs.Counter(MetricDeclined).Add(int64(declined))
	p.Obs.Gauge(MetricQueueDepth).Set(float64(qdepth))
	return out, snap
}
