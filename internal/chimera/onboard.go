package chimera

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/mining"
	"repro/internal/obs"
)

// This file implements the §2.2 "scale up" requirement: items the Voting
// Master declines — a new vendor's unfamiliar types, say — go to the manual
// classification team; their labels come back as training data AND as mined
// rules, so the system starts classifying such items on its own ("we need a
// way to extend Chimera to classify these new items as soon as possible").

// OnboardReport summarizes one onboarding round.
type OnboardReport struct {
	// Declined is how many declined items were sent to the manual team.
	Declined int
	// Labeled is how many came back with labels (all, with a simulated
	// manual team).
	Labeled int
	// NewRuleIDs are the rules mined from the labeled declines.
	NewRuleIDs []string
	// NewTypes lists labels that were previously unknown to the system.
	NewTypes []string
}

// OnboardDeclined routes a batch's declined items through the manual team
// (the simulated analyst), adds the labels as training data, mines
// classification rules from them (§5.2 machinery, zero-false-positive
// against the labeled declines), and deploys up to maxRules of the highest
// confidence×coverage rules. It retrains the ensemble once at the end.
func (p *Pipeline) OnboardDeclined(res *BatchResult, maxRules int) (*OnboardReport, error) {
	rep := &OnboardReport{}
	known := map[string]bool{}
	for _, t := range p.typeUniverse() {
		known[t] = true
	}

	manualReq := obs.NewRequestID("onboard")
	var labeled []*catalog.Item
	for _, d := range res.Decisions {
		if !d.Declined {
			continue
		}
		rep.Declined++
		// The manual team labels the item (simulation: the analyst oracle).
		label := p.Analyst.Label(d.Item, nil)
		labeled = append(labeled, d.Item.Relabeled(label))
		rep.Labeled++
		if !known[label] {
			known[label] = true
			rep.NewTypes = append(rep.NewTypes, label)
		}
		// Provenance: the item's decision is now a manual-team label.
		if p.Audit.Enabled() && p.Audit.ShouldCapture(true) {
			p.Audit.Observe(&obs.DecisionRecord{
				RequestID:       manualReq,
				ItemID:          d.Item.ID,
				SnapshotVersion: res.SnapshotVersion,
				Path:            obs.PathManual,
				Outcome:         obs.OutcomeLabeled,
				Type:            label,
				Reason:          "manual-label after " + d.Reason,
			})
		}
	}
	sort.Strings(rep.NewTypes)
	if len(labeled) == 0 {
		return rep, nil
	}

	// Mine rules from the labeled declines; the §5.2 zero-FP filter runs
	// against this labeled set.
	mined, err := mining.GenerateRules(labeled, mining.Options{
		MinSupport:      0.05,
		MaxRulesPerType: 10,
	})
	if err != nil {
		return rep, err
	}
	cands := append(append([]mining.Candidate(nil), mined.High...), mined.Low...)
	sort.SliceStable(cands, func(i, j int) bool {
		si := cands[i].Confidence * float64(len(cands[i].Coverage))
		sj := cands[j].Confidence * float64(len(cands[j].Coverage))
		if si != sj {
			return si > sj
		}
		return cands[i].Rule.Source < cands[j].Rule.Source
	})
	if maxRules > 0 && len(cands) > maxRules {
		cands = cands[:maxRules]
	}
	for _, c := range cands {
		c.Rule.Provenance = "onboarding"
		if id, err := p.Rules.Add(c.Rule, p.Analyst.Name); err == nil {
			rep.NewRuleIDs = append(rep.NewRuleIDs, id)
		}
	}

	p.Train(labeled)
	return rep, nil
}
