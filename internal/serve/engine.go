package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Metric families recorded by the serving layer.
const (
	// MetricSnapshotSwaps counts snapshot publishes (initial build included).
	MetricSnapshotSwaps = "serve_snapshot_swaps_total"
	// MetricSnapshotBuild is the rebuild-and-swap latency histogram.
	MetricSnapshotBuild = "serve_snapshot_build_seconds"
	// MetricSnapshotVersion is the version of the published snapshot.
	MetricSnapshotVersion = "serve_snapshot_version"
	// MetricQueueDepth is the number of queued (not yet picked up) requests.
	MetricQueueDepth = "serve_queue_depth"
	// MetricShed counts requests declined at Submit because the queue was full.
	MetricShed = "serve_shed_total"
	// MetricBatches / MetricItems count served requests and their items.
	MetricBatches = "serve_batches_total"
	MetricItems   = "serve_items_total"
	// MetricDeclined counts items declined during a shutdown drain.
	MetricDeclined = "serve_declined_total"
	// MetricDeadlineExpired counts requests whose submit-context deadline
	// expired while they were still queued (resolved with the ctx error).
	MetricDeadlineExpired = "serve_deadline_expired_total"
	// MetricRetryAttempts / MetricRetrySuccess / MetricRetryGiveUp are the
	// Retrier's accounting: backoff re-submissions after a shed, the sheds
	// that eventually went through, and the ones the retrier gave up on
	// (attempts or budget exhausted, or the caller's context expired).
	MetricRetryAttempts = "serve_retry_attempts_total"
	MetricRetrySuccess  = "serve_retry_success_total"
	MetricRetryGiveUp   = "serve_retry_giveup_total"
	// MetricBuildErrors counts failed snapshot rebuilds (injected or real);
	// the engine keeps serving the last good snapshot and reports Degraded.
	MetricBuildErrors = "serve_snapshot_build_errors_total"
	// MetricDegraded is 1 while the engine is serving a stale snapshot after
	// a failed rebuild, 0 once a rebuild succeeds again.
	MetricDegraded = "serve_degraded"
)

// DefaultDebounce is the rebuild debounce: after a mutation wakes the async
// loop, the engine waits this long so a burst of maintenance actions (a
// scale-down disabling dozens of rules, a batch of patch rules) costs one
// rebuild, not one per mutation.
const DefaultDebounce = 2 * time.Millisecond

// EngineOptions parameterizes an Engine. Zero values take defaults.
type EngineOptions struct {
	// Debounce is the async rebuild delay after a mutation (DefaultDebounce
	// when 0; negative means rebuild immediately).
	Debounce time.Duration
	// Obs receives the engine's metrics and the snapshots' executor
	// telemetry (obs.Default when nil).
	Obs *obs.Registry
	// Cache configures the engine-owned verdict cache served through
	// Snapshot.ApplyCached / ApplyBatchCached (see VerdictCache). The zero
	// value disables caching.
	Cache CacheConfig
}

// Engine owns the current Snapshot of one rulebase and keeps it fresh.
//
// Readers call Current (lock-free atomic load; may be briefly stale while an
// async rebuild is pending) or Acquire (version-checked; rebuilds
// synchronously when stale — the fallback serving path when the async loop
// is not running, and the replacement for the old per-batch
// refreshExecutors: the rebuild is cached by rulebase version, so an
// unchanged rulebase never rebuilds). Writers mutate the rulebase normally;
// after Start, every mutation wakes the debounced rebuild-and-swap loop.
type Engine struct {
	rb       *core.Rulebase
	reg      *obs.Registry
	debounce time.Duration

	cur     atomic.Pointer[Snapshot]
	buildMu sync.Mutex // single-flight rebuilds

	// cache is the verdict cache shared across this engine's snapshot
	// generations (nil when disabled). Entries self-invalidate on version
	// mismatch, so the cache itself never needs flushing on swap.
	cache *VerdictCache

	// rebuildFault is the optional fault-injection hook consulted before
	// every rebuild (see SetRebuildFault); degraded is set while the engine
	// serves a stale snapshot because the last rebuild failed.
	rebuildFault atomic.Pointer[RebuildFaultHook]
	degraded     atomic.Bool

	swaps     *obs.Counter
	buildSec  *obs.Histogram
	verGauge  *obs.Gauge
	buildErrs *obs.Counter
	degGauge  *obs.Gauge

	started   atomic.Bool
	startOnce sync.Once
	closeOnce sync.Once
	kick      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	unsub     func()
}

// RebuildFaultHook is consulted before each snapshot rebuild: a non-zero
// stall delays the build (simulating a slow rulebase read), a non-nil error
// fails it. faultinject.Injector.RebuildFault matches this signature.
type RebuildFaultHook func() (stall time.Duration, err error)

// NewEngine builds the initial snapshot of rb and returns a passive engine:
// Acquire serves version-cached synchronous rebuilds until Start launches
// the async loop. A passive engine holds no goroutines and needs no Close
// (Close is still safe to call).
func NewEngine(rb *core.Rulebase, opts EngineOptions) *Engine {
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	debounce := opts.Debounce
	if debounce == 0 {
		debounce = DefaultDebounce
	}
	e := &Engine{
		rb:        rb,
		reg:       reg,
		debounce:  debounce,
		swaps:     reg.Counter(MetricSnapshotSwaps),
		buildSec:  reg.Histogram(MetricSnapshotBuild, obs.LatencyBuckets),
		verGauge:  reg.Gauge(MetricSnapshotVersion),
		buildErrs: reg.Counter(MetricBuildErrors),
		degGauge:  reg.Gauge(MetricDegraded),
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	reg.Help(MetricSnapshotSwaps, "snapshot publishes (rebuild-and-swap)")
	reg.Help(MetricSnapshotVersion, "rulebase version of the published snapshot")
	reg.Help(MetricBuildErrors, "failed snapshot rebuilds (stale snapshot kept)")
	reg.Help(MetricDegraded, "1 while serving a stale snapshot after a failed rebuild")
	e.cache = NewVerdictCache(opts.Cache, reg)
	start := time.Now()
	e.publish(e.build(), time.Since(start))
	return e
}

// build constructs a snapshot of the current rulebase with the engine's
// verdict cache attached.
func (e *Engine) build() *Snapshot {
	snap := BuildSnapshot(e.rb, e.reg)
	snap.cache = e.cache
	return snap
}

// Cache returns the engine's verdict cache (nil when caching is disabled).
func (e *Engine) Cache() *VerdictCache { return e.cache }

// Registry returns the engine's metric registry.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Rulebase returns the rulebase the engine snapshots.
func (e *Engine) Rulebase() *core.Rulebase { return e.rb }

// Current returns the published snapshot without touching the rulebase lock.
// It may lag the rulebase by up to the debounce window (plus rebuild time)
// while the async loop catches up; it is never nil and never torn.
func (e *Engine) Current() *Snapshot { return e.cur.Load() }

// Acquire returns a snapshot that is up to date with the rulebase version at
// the time of the call, rebuilding synchronously when stale. Rebuilds are
// single-flight and cached by version: with an unchanged rulebase this is a
// version compare and an atomic load.
func (e *Engine) Acquire() *Snapshot {
	if s := e.cur.Load(); s.Version() == e.rb.Version() {
		return s
	}
	return e.rebuild()
}

// rebuild builds and publishes a fresh snapshot unless another goroutine
// already caught the engine up while we waited for the build lock. A
// rebuild-fault hook may stall the build or fail it outright; on failure the
// engine counts the error, flags itself degraded, and keeps serving the last
// good snapshot — callers always get a valid (possibly stale) snapshot, never
// nil and never a torn one.
func (e *Engine) rebuild() *Snapshot {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	if s := e.cur.Load(); s.Version() == e.rb.Version() {
		return s
	}
	start := time.Now()
	if hook := e.rebuildFault.Load(); hook != nil {
		stall, err := (*hook)()
		if stall > 0 {
			time.Sleep(stall)
		}
		if err != nil {
			e.buildErrs.Inc()
			e.setDegraded(true)
			return e.cur.Load() // stale but valid: the resilience contract
		}
	}
	snap := e.build()
	e.publish(snap, time.Since(start))
	e.setDegraded(false)
	return snap
}

func (e *Engine) setDegraded(v bool) {
	if e.degraded.Swap(v) != v {
		g := 0.0
		if v {
			g = 1
		}
		e.degGauge.Set(g)
	}
}

// Degraded reports whether the last rebuild failed and the engine is serving
// a stale snapshot. A degraded engine recovers on the next successful
// rebuild (the async loop keeps retrying on every mutation kick).
func (e *Engine) Degraded() bool { return e.degraded.Load() }

// SetRebuildFault installs (or clears, with nil) the rebuild fault-injection
// hook. Safe to call concurrently with serving; in production it stays nil.
func (e *Engine) SetRebuildFault(hook RebuildFaultHook) {
	if hook == nil {
		e.rebuildFault.Store(nil)
		return
	}
	e.rebuildFault.Store(&hook)
}

// Started reports whether the async rebuild loop is running — the signal for
// hot read paths to prefer the lock-free Current over the version-checked
// Acquire (which reads the rulebase version under its mutex).
func (e *Engine) Started() bool { return e.started.Load() }

func (e *Engine) publish(snap *Snapshot, buildTime time.Duration) {
	e.cur.Store(snap)
	e.swaps.Inc()
	e.buildSec.Observe(buildTime.Seconds())
	e.verGauge.Set(float64(snap.Version()))
}

// Start subscribes to the rulebase and launches the async rebuild loop:
// after a mutation, the loop debounces briefly (collapsing mutation bursts)
// and then rebuilds and swaps the published snapshot. Idempotent. After
// Start, readers on Current never block on maintenance.
func (e *Engine) Start() {
	e.startOnce.Do(func() {
		e.started.Store(true)
		e.unsub = e.rb.Subscribe(func(uint64) {
			select {
			case e.kick <- struct{}{}:
			default: // a rebuild is already pending; it will pick this up
			}
		})
		e.wg.Add(1)
		go e.loop()
	})
}

func (e *Engine) loop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case <-e.kick:
			if e.debounce > 0 {
				timer := time.NewTimer(e.debounce)
				select {
				case <-e.done:
					timer.Stop()
					return
				case <-timer.C:
				}
			}
			// Mutations that land during the build leave a pending kick, so
			// the loop converges to the latest version.
			e.rebuild()
		}
	}
}

// Close stops the async loop and unsubscribes from the rulebase. Safe to
// call on a never-started engine and safe to call twice. The published
// snapshot stays valid; Acquire keeps working in passive mode.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.started.Store(false) // hot paths fall back to version-checked Acquire
		if e.unsub != nil {
			e.unsub()
		}
		close(e.done)
		e.wg.Wait()
	})
}
