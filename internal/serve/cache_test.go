package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

func testCache(t *testing.T, capacity, shards int) (*VerdictCache, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c := NewVerdictCache(CacheConfig{Capacity: capacity, Shards: shards}, reg)
	if c == nil {
		t.Fatalf("NewVerdictCache(%d, %d) = nil", capacity, shards)
	}
	return c, reg
}

func TestVerdictCacheDisabled(t *testing.T) {
	if c := NewVerdictCache(CacheConfig{}, obs.NewRegistry()); c != nil {
		t.Fatal("zero capacity must disable the cache")
	}
	// A nil cache is a valid always-miss cache.
	var c *VerdictCache
	if _, ok := c.Get(1, 1); ok {
		t.Fatal("nil cache Get must miss")
	}
	c.Put(1, 1, &core.Verdict{})
	ran := false
	v, cached := c.Do(1, 1, func() *core.Verdict { ran = true; return &core.Verdict{} })
	if !ran || cached || v == nil {
		t.Fatalf("nil cache Do must compute: ran=%v cached=%v", ran, cached)
	}
	if c.Stats() != (CacheStats{}) || c.Len() != 0 || c.Capacity() != 0 {
		t.Fatal("nil cache stats must be zero")
	}
}

func TestVerdictCacheLRUEviction(t *testing.T) {
	c, _ := testCache(t, 3, 1) // single shard so the LRU order is global
	vs := make([]*core.Verdict, 5)
	for i := range vs {
		vs[i] = &core.Verdict{}
		c.Put(uint64(i), 1, vs[i])
	}
	// Capacity 3: fingerprints 0 and 1 must have been evicted, 2..4 resident.
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(uint64(i), 1); ok {
			t.Fatalf("fp %d should be evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if v, ok := c.Get(uint64(i), 1); !ok || v != vs[i] {
			t.Fatalf("fp %d should be resident with its verdict", i)
		}
	}
	// Touch 2 (LRU -> MRU), insert a new entry: 3 is now the eviction victim.
	if _, ok := c.Get(2, 1); !ok {
		t.Fatal("fp 2 should be resident")
	}
	c.Put(99, 1, &core.Verdict{})
	if _, ok := c.Get(2, 1); !ok {
		t.Fatal("recently used fp 2 must survive the eviction")
	}
	if _, ok := c.Get(3, 1); ok {
		t.Fatal("LRU fp 3 should have been evicted")
	}
	if st := c.Stats(); st.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", st.Evictions)
	}
}

func TestVerdictCacheStaleVersionDrop(t *testing.T) {
	c, _ := testCache(t, 8, 1)
	v2 := &core.Verdict{}
	c.Put(7, 2, v2)
	// Looking the entry up at any other version — older (rollback) or newer
	// (post-swap) — must drop it, not serve it.
	if _, ok := c.Get(7, 1); ok {
		t.Fatal("version-2 entry served at version 1")
	}
	if st := c.Stats(); st.StaleDrops != 1 || st.Size != 0 {
		t.Fatalf("stats after stale drop = %+v, want 1 drop, size 0", st)
	}
	// The drop is physical: a repeat lookup at the entry's own version misses.
	if _, ok := c.Get(7, 2); ok {
		t.Fatal("stale-dropped entry still resident")
	}

	c.Put(7, 2, v2)
	ran := false
	v, cached := c.Do(7, 3, func() *core.Verdict { ran = true; return &core.Verdict{} })
	if !ran || cached || v == v2 {
		t.Fatal("Do at a newer version must re-evaluate, not serve the stale verdict")
	}
	if st := c.Stats(); st.StaleDrops != 2 {
		t.Fatalf("staleDrops = %d, want 2", st.StaleDrops)
	}
	// One fingerprint never accretes entries across versions.
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (replace, not accrete)", c.Len())
	}
}

// inflightWaiters peeks at the single-flight slot's parked-lookup count (test
// hook; same-package access under the shard lock).
func inflightWaiters(c *VerdictCache, fp uint64) int {
	sh := c.shards[fp&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if call, ok := sh.inflight[fp]; ok {
		return call.waiters
	}
	return 0
}

func TestVerdictCacheSingleFlight(t *testing.T) {
	c, _ := testCache(t, 8, 1)
	const followers = 7
	var computes int
	gate := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	var leaderV *core.Verdict
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderV, _ = c.Do(42, 1, func() *core.Verdict {
			computes++ // only the leader runs this; -race verifies
			close(started)
			<-gate
			return &core.Verdict{}
		})
	}()
	<-started // the leader is parked inside compute: followers must coalesce

	results := make([]*core.Verdict, followers)
	cachedFlags := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], cachedFlags[i] = c.Do(42, 1, func() *core.Verdict {
				t.Error("follower must not compute")
				return &core.Verdict{}
			})
		}(i)
	}
	// Wait until every follower is parked on the in-flight slot, then let the
	// leader's evaluation finish.
	for deadline := time.Now().Add(5 * time.Second); inflightWaiters(c, 42) < followers; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers parked", inflightWaiters(c, 42), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1 (single-flight)", computes)
	}
	for i := 0; i < followers; i++ {
		if !cachedFlags[i] {
			t.Fatalf("follower %d reported an uncached result", i)
		}
		if results[i] != leaderV {
			t.Fatal("coalesced callers must share the leader's verdict")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != followers || st.Hits != 0 {
		t.Fatalf("misses=%d coalesced=%d hits=%d, want 1/%d/0", st.Misses, st.Coalesced, st.Hits, followers)
	}
	// The result was inserted: the next lookup is a plain hit.
	if _, cached := c.Do(42, 1, func() *core.Verdict { t.Fatal("must not recompute"); return nil }); !cached {
		t.Fatal("post-flight lookup should hit")
	}
}

// TestVerdictCacheCounterPartition pins the accounting contract: every Do
// resolves as exactly one of hit, miss, or coalesced.
func TestVerdictCacheCounterPartition(t *testing.T) {
	c, _ := testCache(t, 16, 2)
	const lookups = 500
	for i := 0; i < lookups; i++ {
		fp := uint64(i % 23)
		ver := uint64(1 + i%3) // version churn forces stale drops too
		c.Do(fp, ver, func() *core.Verdict { return &core.Verdict{} })
	}
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != lookups {
		t.Fatalf("hits(%d)+misses(%d)+coalesced(%d) != %d lookups",
			st.Hits, st.Misses, st.Coalesced, lookups)
	}
	if st.Size > c.Capacity() {
		t.Fatalf("size %d exceeds capacity %d", st.Size, c.Capacity())
	}
}

// TestSnapshotApplyCachedEquivalence is the tentpole equivalence property:
// across interleaved rulebase mutations, cached, uncached and batch-inverted
// classification produce byte-equal verdicts (same Explain rendering), and
// repeat traffic under a stable version is served from cache.
func TestSnapshotApplyCachedEquivalence(t *testing.T) {
	const seed = 31
	cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 30})
	rb := buildPropertyRulebase(t, cat, seed)
	reg := obs.NewRegistry()
	eng := NewEngine(rb, EngineOptions{Obs: reg, Cache: CacheConfig{Capacity: 4096}})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 120, Epoch: 1})

	checkRound := func(round int) {
		snap := eng.Acquire()
		// Uncached oracle built fresh from the same rulebase state.
		oracle := core.NewIndexedExecutor(rb.Active(
			core.Whitelist, core.Blacklist, core.AttrExists, core.AttrValue,
			core.TypeRestrict))
		batch := snap.ApplyBatchCached(items, 3)
		for pass := 0; pass < 2; pass++ { // pass 1 serves from cache
			for i, it := range items {
				want := oracle.Apply(it)
				got := snap.ApplyCached(it)
				if !core.VerdictsEqual(got, want) || got.Explain() != want.Explain() {
					t.Fatalf("round %d pass %d: cached verdict diverges on %q", round, pass, it.Title())
				}
				if batch[i].Explain() != want.Explain() {
					t.Fatalf("round %d: batch-cached verdict diverges on %q", round, it.Title())
				}
			}
		}
	}

	checkRound(0)
	active := rb.Active()
	for round := 1; round <= 4; round++ {
		// Interleave mutations: disable a stripe, re-enable the previous one,
		// churn confidences — each bumps the version under the live cache.
		for i, r := range active {
			switch (i + round) % 5 {
			case 0:
				_ = rb.Disable(r.ID, "prop", "cache equivalence")
			case 1:
				_ = rb.Enable(r.ID, "prop", "cache equivalence")
			case 2:
				_ = rb.UpdateConfidence(r.ID, 0.5+float64((i+round)%50)/100, "prop")
			}
		}
		checkRound(round)
	}
	st := eng.Cache().Stats()
	if st.Hits == 0 {
		t.Fatal("repeat passes under a stable version never hit the cache")
	}
	if st.StaleDrops == 0 {
		t.Fatal("version churn never dropped a stale entry")
	}
}

// TestCacheDegradedRollbackSafety pins the degraded-mode rule: an engine
// rolled back to its last good snapshot must never serve verdicts cached
// under the failed newer version — in either direction.
func TestCacheDegradedRollbackSafety(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 5, NumTypes: 20})
	rb := buildPropertyRulebase(t, cat, 5)
	reg := obs.NewRegistry()
	eng := NewEngine(rb, EngineOptions{Obs: reg, Cache: CacheConfig{Capacity: 256}})
	it := cat.GenerateBatch(catalog.BatchSpec{Size: 1, Epoch: 0})[0]

	good := eng.Acquire()
	want := good.Apply(it).Explain()

	// Fail the next rebuild: the engine keeps serving the last good snapshot.
	eng.SetRebuildFault(func() (stall time.Duration, err error) {
		return 0, fmt.Errorf("injected rebuild failure")
	})
	_ = rb.UpdateConfidence(rb.Active()[0].ID, 0.77, "prop") // version bump
	stale := eng.Acquire()
	if !eng.Degraded() || stale.Version() != good.Version() {
		t.Fatalf("engine should be degraded on the good snapshot (degraded=%v v=%d/%d)",
			eng.Degraded(), stale.Version(), good.Version())
	}

	// Simulate verdicts that made it into the cache under the failed newer
	// version (e.g. from a racing Acquire on another shard replica before
	// the fault landed): a poisoned sentinel the rollback must never serve.
	poisoned := &core.Verdict{}
	eng.Cache().Put(it.Fingerprint(), rb.Version(), poisoned)

	got := stale.ApplyCached(it)
	if got == poisoned {
		t.Fatal("rolled-back snapshot served a verdict cached under the failed newer version")
	}
	if got.Explain() != want {
		t.Fatalf("degraded verdict diverges from the last good snapshot's:\n%s\nvs\n%s", got.Explain(), want)
	}
	if st := eng.Cache().Stats(); st.StaleDrops == 0 {
		t.Fatal("the poisoned entry should have been dropped as stale")
	}

	// Recovery: clear the fault, rebuild, and verify the newer version now
	// re-evaluates (the pre-failure entry for the old version is dropped the
	// same way, never served across the bump).
	eng.SetRebuildFault(nil)
	fresh := eng.Acquire()
	if eng.Degraded() || fresh.Version() == good.Version() {
		t.Fatal("engine should have recovered onto the new version")
	}
	if v := fresh.ApplyCached(it); v == poisoned {
		t.Fatal("recovered snapshot served the poisoned verdict")
	}
}

// TestShardedCacheStatsRollup exercises per-shard caches end to end through
// the scatter-gather tier: each shard owns a private cache, and repeat
// submissions of the same items hit on their own shard.
func TestShardedCacheStatsRollup(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 11, NumTypes: 20})
	rb := buildPropertyRulebase(t, cat, 11)
	srv := NewShardedServer(rb, func(ctx context.Context, snap *Snapshot, it *catalog.Item) string {
		return snap.ApplyCached(it).Explain()
	}, ShardedOptions{
		Shards: 3, Workers: 2, QueueDepth: 64,
		Obs:   obs.NewRegistry(),
		Cache: CacheConfig{Capacity: 512},
	})
	defer srv.Close()

	items := cat.GenerateBatch(catalog.BatchSpec{Size: 90, Epoch: 0})
	oracle := BuildSnapshot(rb, obs.NewRegistry())
	for round := 0; round < 3; round++ {
		tk, err := srv.Submit(items)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		res := tk.Wait()
		if res.Err() != nil {
			t.Fatalf("gather: %v", res.Err())
		}
		for i, it := range items {
			if want := oracle.Apply(it).Explain(); res.Results[i] != want {
				t.Fatalf("round %d: cached sharded verdict diverges on %q", round, it.Title())
			}
		}
	}
	st := srv.CacheStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("tier cache stats = %+v, want both misses (round 1) and hits (rounds 2-3)", st)
	}
	if st.Capacity != 3*512 {
		t.Fatalf("tier capacity = %d, want %d", st.Capacity, 3*512)
	}
	// Shards are private: every lookup landed on some shard, and the rollup
	// is the sum of the per-shard registries' counters.
	var hits int64
	for i := 0; i < srv.Shards(); i++ {
		hits += srv.ShardRegistry(i).Counter(MetricCacheHits).Value()
	}
	if hits != st.Hits {
		t.Fatalf("per-shard registry hits %d != rollup %d", hits, st.Hits)
	}
}
