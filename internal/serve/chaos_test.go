package serve

// The chaos harness: the serving layer under injected faults. A fleet of
// clients submits batches — plain, deadline-bound, and retry-wrapped — while
// handler latency is injected into the workers, snapshot rebuilds stall and
// fail at random, a mutator churns the rulebase, and the server is finally
// shut down with a short drain deadline under load. The invariants:
//
//   - every submitted ticket resolves exactly once, with one of
//     {result, ErrQueueFull, ErrShutdown, ErrDeclined, ctx error};
//   - accounting closes: served + shed + declined + expired + rejected
//     submissions == attempted submissions — nothing is silently dropped;
//   - every served batch carries a coherent snapshot (results aligned with
//     items, sorted ActiveIDs, never nil) even when its rebuild was faulty.
//
// Run under -race in verify.sh/CI, this doubles as the race check for the
// whole resilience path (fault hooks, retrier, deadline accounting).

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func TestChaosEveryTicketResolvesExactlyOnce(t *testing.T) {
	rb := core.NewRulebase()
	var ids []string
	for i := 0; i < 12; i++ {
		r, err := core.NewWhitelist(fmt.Sprintf("widget%d", i), fmt.Sprintf("type-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		id, err := rb.Add(r, "chaos")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	reg := obs.NewRegistry()
	eng := NewEngine(rb, EngineOptions{Obs: reg, Debounce: 50 * time.Microsecond})
	defer eng.Close()

	inj := faultinject.New(faultinject.Config{
		Seed:            1234,
		HandlerLatencyP: 0.4, HandlerLatency: 400 * time.Microsecond,
		RebuildStallP: 0.3, RebuildStall: 500 * time.Microsecond,
		RebuildErrorP: 0.2,
	})
	eng.SetRebuildFault(inj.RebuildFault)

	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		if d := inj.HandlerDelay(); d > 0 {
			time.Sleep(d)
		}
		snap.Apply(it)
		return it.ID
		// Queue shallower than the client fleet: with 3 in flight and 2
		// queued, the 6th concurrent submit sheds — overload is reachable.
	}, ServerOptions{Workers: 3, QueueDepth: 2, Obs: reg})

	// Rule churn for the whole run: the rebuild path (and its injected
	// faults) stays hot.
	mutStop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		for i := 0; ; i++ {
			select {
			case <-mutStop:
				return
			default:
			}
			// Alternating waves of disables and enables, so every pass over
			// the id list really mutates (and really kicks the rebuild loop).
			id := ids[i%len(ids)]
			if (i/len(ids))%2 == 0 {
				_ = rb.Disable(id, "chaos", "churn")
			} else {
				_ = rb.Enable(id, "chaos", "churn")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const clients = 6
	const perClient = 80
	var (
		attempted, served, shed, declined, expired, rejected atomic.Int64
		resolvedTwice                                        atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			retr := NewRetrier(srv, RetryOptions{
				MaxAttempts: 2, BaseDelay: 50 * time.Microsecond,
				MaxDelay: time.Millisecond, Seed: uint64(c),
			})
			for i := 0; i < perClient; i++ {
				items := make([]*catalog.Item, 4)
				for k := range items {
					items[k] = oneItem(fmt.Sprintf("c%d-%d-%d", c, i, k))[0]
				}
				attempted.Add(1)

				var tk *Ticket[string]
				var err error
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch i % 3 {
				case 0:
					tk, err = srv.Submit(items)
				case 1:
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i%5)*time.Millisecond)
					tk, err = srv.SubmitCtx(ctx, items)
				case 2:
					tk, err = retr.Submit(ctx, items)
				}

				if err != nil {
					cancel()
					switch {
					case errors.Is(err, ErrQueueFull): // covers ErrRetryBudget
						shed.Add(1)
					case errors.Is(err, ErrShutdown):
						rejected.Add(1)
					case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
						expired.Add(1)
					default:
						t.Errorf("submit returned unexpected error %v", err)
					}
					continue
				}

				out, snap, werr := tk.Wait()
				cancel()
				// A ticket must already be resolved after Wait; Done must be
				// closed and a second Wait must agree (exactly-once).
				select {
				case <-tk.Done():
				default:
					resolvedTwice.Add(1) // Done not closed: resolution torn
				}
				out2, snap2, werr2 := tk.Wait()
				if len(out2) != len(out) || snap2 != snap || werr2 != werr {
					resolvedTwice.Add(1)
				}

				switch {
				case werr == nil:
					served.Add(1)
					if snap == nil || len(out) != len(items) {
						t.Errorf("served batch with torn result: snap=%v out=%d items=%d", snap, len(out), len(items))
					} else {
						act := snap.ActiveIDs()
						if !sort.StringsAreSorted(act) {
							t.Errorf("snapshot ActiveIDs not sorted: %v", act)
						}
					}
				case errors.Is(werr, ErrDeclined):
					declined.Add(1)
				case errors.Is(werr, context.DeadlineExceeded), errors.Is(werr, context.Canceled):
					expired.Add(1)
				default:
					t.Errorf("ticket resolved with unexpected error %v", werr)
				}
			}
		}(c)
	}

	// Shut down with a tiny drain deadline while (likely) still loaded, then
	// let the remaining clients run into ErrShutdown.
	time.Sleep(25 * time.Millisecond)
	sctx, scancel := context.WithTimeout(context.Background(), 200*time.Microsecond)
	_ = srv.Shutdown(sctx)
	scancel()
	wg.Wait()
	close(mutStop)
	mutWG.Wait()

	if n := resolvedTwice.Load(); n != 0 {
		t.Fatalf("%d tickets resolved inconsistently", n)
	}
	total := served.Load() + shed.Load() + declined.Load() + expired.Load() + rejected.Load()
	if total != attempted.Load() {
		t.Fatalf("accounting leak: served %d + shed %d + declined %d + expired %d + rejected %d = %d != attempted %d",
			served.Load(), shed.Load(), declined.Load(), expired.Load(), rejected.Load(), total, attempted.Load())
	}
	if served.Load() == 0 {
		t.Fatal("chaos run served nothing — the harness is not exercising the happy path")
	}
	if inj.Total() == 0 {
		t.Fatal("chaos run injected no faults — the harness is not exercising failure")
	}
	// The metric families agree with the harness's own books.
	if got := reg.Counter(MetricBatches).Value(); got != served.Load() {
		t.Fatalf("served metric %d != observed %d", got, served.Load())
	}
	if v := reg.Gauge(MetricQueueDepth).Value(); v < 0 {
		t.Fatalf("queue depth gauge negative after chaos: %v", v)
	}
	t.Logf("chaos: attempted=%d served=%d shed=%d declined=%d expired=%d rejected=%d faults=%v",
		attempted.Load(), served.Load(), shed.Load(), declined.Load(), expired.Load(), rejected.Load(), inj.Counts())
}
