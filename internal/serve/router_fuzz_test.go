package serve

import (
	"testing"
)

// FuzzShardRouter fuzzes the routing contract over arbitrary keys and shard
// counts: routing is total (always a shard in range), deterministic (same
// key, same shard — including on an independently constructed router), and
// stable under resizing (growing to shards+1 either keeps a key in place or
// moves it to the new shard, never reshuffles it among survivors). The seed
// corpus in testdata/fuzz/FuzzShardRouter pins the interesting edges: empty
// key, non-UTF8 bytes, degenerate shard counts, replica extremes.
func FuzzShardRouter(f *testing.F) {
	f.Add("", uint8(1), uint8(0))
	f.Add("vendor-acme", uint8(4), uint8(64))
	f.Add("\x00\xff\xfe", uint8(7), uint8(1))
	f.Add("the same key", uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, key string, shards, replicas uint8) {
		n := int(shards%32) + 1 // 1..32 shards keeps construction cheap
		rep := int(replicas % 16)
		r := NewShardRouter(n, rep)
		if r.Shards() != n {
			t.Fatalf("router built with %d shards reports %d", n, r.Shards())
		}
		sd := r.ShardFor(key)
		if sd < 0 || sd >= n {
			t.Fatalf("key %q routed outside [0,%d): %d", key, n, sd)
		}
		if again := r.ShardFor(key); again != sd {
			t.Fatalf("key %q not deterministic: %d then %d", key, sd, again)
		}
		if o := NewShardRouter(n, rep).ShardFor(key); o != sd {
			t.Fatalf("independently built router disagrees on %q: %d vs %d", key, sd, o)
		}
		grown := NewShardRouter(n+1, rep)
		if g := grown.ShardFor(key); g != sd && g != n {
			t.Fatalf("grow %d->%d moved key %q from %d to surviving shard %d", n, n+1, key, sd, g)
		}
	})
}
