package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

func testEngine(t testing.TB) (*Engine, *obs.Registry) {
	t.Helper()
	rb := core.NewRulebase()
	r, err := core.NewWhitelist("widget", "gadget")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(r, "test"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng := NewEngine(rb, EngineOptions{Obs: reg, Debounce: 100 * time.Microsecond})
	t.Cleanup(eng.Close)
	return eng, reg
}

func oneItem(id string) []*catalog.Item {
	return []*catalog.Item{{ID: id, Attrs: map[string]string{"Title": "acme widget"}}}
}

// TestServerShedsWhenQueueFull: with a single blocked worker and a depth-2
// queue, the overflow Submit must shed with ErrQueueFull instead of blocking,
// and the shed counter must record it. Released requests all complete.
func TestServerShedsWhenQueueFull(t *testing.T) {
	eng, reg := testEngine(t)
	pickedUp := make(chan struct{})
	release := make(chan struct{})
	first := true
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) int {
		if first {
			first = false
			close(pickedUp)
			<-release
		}
		return len(snap.Apply(it).FinalTypes())
	}, ServerOptions{Workers: 1, QueueDepth: 2, Obs: reg})

	// First request occupies the worker...
	t0, err := srv.Submit(oneItem("blockee"))
	if err != nil {
		t.Fatal(err)
	}
	<-pickedUp
	// ...next two fill the queue...
	t1, err := srv.Submit(oneItem("q1"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Submit(oneItem("q2"))
	if err != nil {
		t.Fatal(err)
	}
	// ...and the fourth must be shed, not blocked.
	if _, err := srv.Submit(oneItem("overflow")); err != ErrQueueFull {
		t.Fatalf("overflow Submit: got %v, want ErrQueueFull", err)
	}
	if n := reg.Counter(MetricShed).Value(); n != 1 {
		t.Fatalf("shed counter = %d, want 1", n)
	}

	close(release)
	srv.Drain()
	for i, tk := range []*Ticket[int]{t0, t1, t2} {
		if _, _, err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if n := reg.Counter(MetricBatches).Value(); n != 3 {
		t.Fatalf("served %d batches, want 3", n)
	}
}

// TestShutdownDeclinesQueuedRequests is the graceful-drain acceptance test:
// shutting down mid-batch either completes or explicitly declines every
// queued request — nothing is dropped, every ticket resolves. With one worker
// blocked on the first request and nine more queued, an expired drain
// deadline must yield exactly 1 completion and 9 declines.
func TestShutdownDeclinesQueuedRequests(t *testing.T) {
	eng, reg := testEngine(t)
	pickedUp := make(chan struct{})
	release := make(chan struct{})
	first := true
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		if first {
			first = false
			close(pickedUp)
			<-release
		}
		return it.ID
	}, ServerOptions{Workers: 1, QueueDepth: 32, Obs: reg})

	tickets := make([]*Ticket[string], 0, 10)
	for i := 0; i < 10; i++ {
		tk, err := srv.Submit(oneItem(fmt.Sprintf("item-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	<-pickedUp

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// The in-flight request is released only after Shutdown has engaged the
	// abort path (not merely after ctx expired — the worker could otherwise
	// race ahead and drain the queue), so the 9 queued requests must all be
	// declined.
	<-ctx.Done()
	<-srv.abort
	close(release)
	if err := <-shutdownErr; err != context.DeadlineExceeded {
		t.Fatalf("Shutdown returned %v, want context.DeadlineExceeded", err)
	}

	completed, declined := 0, 0
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %d unresolved after Shutdown returned", i)
		}
		out, snap, err := tk.Wait()
		switch err {
		case nil:
			completed++
			if snap == nil || len(out) != 1 {
				t.Fatalf("ticket %d completed without results", i)
			}
		case ErrDeclined:
			declined++
		default:
			t.Fatalf("ticket %d: unexpected error %v", i, err)
		}
	}
	if completed != 1 || declined != 9 {
		t.Fatalf("completed=%d declined=%d, want 1/9", completed, declined)
	}
	if n := reg.Counter(MetricDeclined).Value(); n != 9 {
		t.Fatalf("declined counter = %d, want 9", n)
	}
	if _, err := srv.Submit(oneItem("late")); err != ErrShutdown {
		t.Fatalf("Submit after Shutdown: got %v, want ErrShutdown", err)
	}
}

// TestQueueDepthGaugeNeverNegative is the regression test for the Submit
// gauge-ordering bug: the gauge used to be incremented after the channel
// send, so a fast worker's Add(-1) could land first and the gauge dipped
// below zero. With the increment moved before the send, a sampler hammering
// the gauge during a concurrent submit/drain storm must never observe a
// negative value, and the gauge must settle at exactly zero after Drain.
func TestQueueDepthGaugeNeverNegative(t *testing.T) {
	eng, reg := testEngine(t)
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		return it.ID
	}, ServerOptions{Workers: 4, QueueDepth: 8, Obs: reg})

	gauge := reg.Gauge(MetricQueueDepth)
	stop := make(chan struct{})
	negative := make(chan float64, 1)
	var samplers sync.WaitGroup
	for g := 0; g < 2; g++ {
		samplers.Add(1)
		go func() {
			defer samplers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if v := gauge.Value(); v < 0 {
						select {
						case negative <- v:
						default:
						}
						return
					}
				}
			}
		}()
	}

	var subs sync.WaitGroup
	for c := 0; c < 8; c++ {
		subs.Add(1)
		go func(c int) {
			defer subs.Done()
			for i := 0; i < 300; i++ {
				tk, err := srv.Submit(oneItem(fmt.Sprintf("c%d-%d", c, i)))
				if err != nil {
					continue // shed under load: fine, the gauge is the test
				}
				if c%2 == 0 {
					tk.Wait()
				}
			}
		}(c)
	}
	subs.Wait()
	srv.Drain()
	close(stop)
	samplers.Wait()
	select {
	case v := <-negative:
		t.Fatalf("queue depth gauge went negative: %v", v)
	default:
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("queue depth gauge = %v after Drain, want 0", v)
	}
}

// TestSubmitCtxDeadlineWhileQueued: a request whose caller deadline expires
// while it sits behind a blocked worker resolves with the context error (and
// is counted in serve_deadline_expired_total) instead of being served to a
// caller that already left.
func TestSubmitCtxDeadlineWhileQueued(t *testing.T) {
	eng, reg := testEngine(t)
	pickedUp := make(chan struct{})
	release := make(chan struct{})
	first := true
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		if first {
			first = false
			close(pickedUp)
			<-release
		}
		return it.ID
	}, ServerOptions{Workers: 1, QueueDepth: 8, Obs: reg})
	defer srv.Drain()

	blocker, err := srv.Submit(oneItem("blocker"))
	if err != nil {
		t.Fatal(err)
	}
	<-pickedUp

	ctx, cancel := context.WithCancel(context.Background())
	queued, err := srv.SubmitCtx(ctx, oneItem("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	live, err := srv.SubmitCtx(context.Background(), oneItem("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the doomed request's caller gives up while it is queued
	close(release)

	if _, _, err := queued.Wait(); err != context.Canceled {
		t.Fatalf("expired-while-queued ticket: got %v, want context.Canceled", err)
	}
	if out, _, err := live.Wait(); err != nil || out[0] != "survivor" {
		t.Fatalf("unexpired ticket: got %v, %v", out, err)
	}
	if _, _, err := blocker.Wait(); err != nil {
		t.Fatalf("in-flight ticket: %v", err)
	}
	if n := reg.Counter(MetricDeadlineExpired).Value(); n != 1 {
		t.Fatalf("deadline-expired counter = %d, want 1", n)
	}
}

// TestSubmitCtxRejectsExpiredContext: an already-dead context never queues.
func TestSubmitCtxRejectsExpiredContext(t *testing.T) {
	eng, reg := testEngine(t)
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		return it.ID
	}, ServerOptions{Workers: 1, QueueDepth: 2, Obs: reg})
	defer srv.Drain()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.SubmitCtx(ctx, oneItem("late")); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if v := reg.Gauge(MetricQueueDepth).Value(); v != 0 {
		t.Fatalf("rejected submit leaked queue depth: %v", v)
	}
}

// TestWaitContextAbandonsWaitNotRequest: WaitContext returns the caller's
// ctx error when waiting times out, but the ticket itself still resolves and
// can be re-waited — the request is never cancelled mid-flight.
func TestWaitContextAbandonsWaitNotRequest(t *testing.T) {
	eng, reg := testEngine(t)
	release := make(chan struct{})
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		<-release
		return it.ID
	}, ServerOptions{Workers: 1, QueueDepth: 2, Obs: reg})
	defer srv.Drain()

	tk, err := srv.Submit(oneItem("slow"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, _, err := tk.WaitContext(ctx); err != context.DeadlineExceeded {
		t.Fatalf("WaitContext: got %v, want context.DeadlineExceeded", err)
	}
	close(release)
	if out, _, err := tk.WaitContext(context.Background()); err != nil || out[0] != "slow" {
		t.Fatalf("re-attached wait: got %v, %v", out, err)
	}
}

// TestDrainCompletesEverything: Drain (no deadline) lets every queued request
// finish; nothing is declined and a second Shutdown is a no-op.
func TestDrainCompletesEverything(t *testing.T) {
	eng, reg := testEngine(t)
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		return it.ID
	}, ServerOptions{Workers: 2, QueueDepth: 32, Obs: reg})

	tickets := make([]*Ticket[string], 0, 12)
	for i := 0; i < 12; i++ {
		tk, err := srv.Submit(oneItem(fmt.Sprintf("item-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	srv.Drain()
	srv.Drain() // idempotent
	for i, tk := range tickets {
		out, _, err := tk.Wait()
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if out[0] != fmt.Sprintf("item-%d", i) {
			t.Fatalf("ticket %d: got %q", i, out[0])
		}
	}
	if n := reg.Counter(MetricDeclined).Value(); n != 0 {
		t.Fatalf("declined counter = %d, want 0", n)
	}
	if n := reg.Counter(MetricBatches).Value(); n != 12 {
		t.Fatalf("batches counter = %d, want 12", n)
	}
}

// TestSubmitAuditSymmetry pins the audit contract shared by the two entry
// points: Submit and SubmitCtx must produce identical serving-failure
// decision records — same Path / Outcome / Reason, a non-empty RequestID,
// SnapshotVersion 0 — for both sheds at submit and declines during the
// shutdown drain. Submit is a thin delegate of SubmitCtx (the request-ID
// stamp lives in SubmitCtx, after the delegation point), and this regression
// test keeps it that way: an operator grepping the decision log for shed or
// drain records must never be able to tell which entry point the caller used.
func TestSubmitAuditSymmetry(t *testing.T) {
	eng, reg := testEngine(t)
	audit := obs.NewAuditLog(obs.AuditConfig{Capacity: 64, SampleEvery: 1})
	pickedUp := make(chan struct{})
	release := make(chan struct{})
	first := true
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		if first {
			first = false
			close(pickedUp)
			<-release
		}
		return snap.Apply(it).Explain()
	}, ServerOptions{Workers: 1, QueueDepth: 2, Obs: reg, Audit: audit})

	// Occupy the single worker, then park one queued request from each entry
	// point (these become the drain declines below).
	if _, err := srv.Submit(oneItem("blocker")); err != nil {
		t.Fatal(err)
	}
	<-pickedUp
	if _, err := srv.Submit(oneItem("drain-plain")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SubmitCtx(context.Background(), oneItem("drain-ctx")); err != nil {
		t.Fatal(err)
	}

	// The queue is now full: shed one request from each entry point.
	if _, err := srv.Submit(oneItem("shed-plain")); err != ErrQueueFull {
		t.Fatalf("Submit overflow: got %v, want ErrQueueFull", err)
	}
	if _, err := srv.SubmitCtx(context.Background(), oneItem("shed-ctx")); err != ErrQueueFull {
		t.Fatalf("SubmitCtx overflow: got %v, want ErrQueueFull", err)
	}

	// Expire the drain immediately so both queued requests are declined; the
	// blocker is released only after the abort path is engaged (same dance as
	// TestShutdownDeclinesQueuedRequests).
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	<-ctx.Done()
	<-srv.abort
	close(release)
	if err := <-shutdownErr; err != context.DeadlineExceeded {
		t.Fatalf("Shutdown returned %v, want context.DeadlineExceeded", err)
	}

	// One record per item per failure, from either entry point, and the
	// records differ only in identity (RequestID / ItemID / Seq / Time).
	checkPair := func(outcome, reason, plainItem, ctxItem string) {
		t.Helper()
		recs := audit.TailFiltered(64, "", obs.PathServe, outcome)
		byItem := map[string]*obs.DecisionRecord{}
		for _, r := range recs {
			byItem[r.ItemID] = r
		}
		if len(recs) != 2 || byItem[plainItem] == nil || byItem[ctxItem] == nil {
			t.Fatalf("%s records: got %d %v, want exactly {%s, %s}",
				outcome, len(recs), byItem, plainItem, ctxItem)
		}
		for _, r := range []*obs.DecisionRecord{byItem[plainItem], byItem[ctxItem]} {
			if r.RequestID == "" {
				t.Fatalf("%s record for %s has no request ID", outcome, r.ItemID)
			}
			if r.Path != obs.PathServe || r.Outcome != outcome || r.Reason != reason {
				t.Fatalf("%s record for %s: path=%q outcome=%q reason=%q, want %q/%q/%q",
					outcome, r.ItemID, r.Path, r.Outcome, r.Reason, obs.PathServe, outcome, reason)
			}
			if r.SnapshotVersion != 0 {
				t.Fatalf("%s record for %s: snapshot version %d, want 0 (no snapshot consulted)",
					outcome, r.ItemID, r.SnapshotVersion)
			}
		}
		if byItem[plainItem].RequestID == byItem[ctxItem].RequestID {
			t.Fatalf("%s records share request ID %q across distinct submissions",
				outcome, byItem[plainItem].RequestID)
		}
	}
	checkPair(obs.OutcomeShed, "queue full", "shed-plain", "shed-ctx")
	checkPair(obs.OutcomeDrain, "shutdown drain deadline expired", "drain-plain", "drain-ctx")
}
