package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestEngineAsyncSwap: after Start, a mutation must cause the published
// snapshot to catch up to the new rulebase version without any reader
// touching the rulebase lock.
func TestEngineAsyncSwap(t *testing.T) {
	eng, reg := testEngine(t)
	eng.Start()
	if v := eng.Current().Version(); v != eng.Rulebase().Version() {
		t.Fatalf("initial snapshot at version %d, rulebase at %d", v, eng.Rulebase().Version())
	}

	r, err := core.NewWhitelist("sprocket", "gizmo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rulebase().Add(r, "test"); err != nil {
		t.Fatal(err)
	}
	want := eng.Rulebase().Version()

	deadline := time.Now().Add(2 * time.Second)
	for eng.Current().Version() != want {
		if time.Now().After(deadline) {
			t.Fatalf("snapshot stuck at version %d, want %d", eng.Current().Version(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if n := reg.Counter(MetricSnapshotSwaps).Value(); n < 2 {
		t.Fatalf("swap counter = %d, want >= 2", n)
	}
	eng.Close()
	eng.Close() // idempotent
}

// TestAcquireCachesByVersion: with an unchanged rulebase, Acquire returns the
// same snapshot pointer (no rebuild); after a mutation it returns a new one
// at the new version. This is the fix for the old per-batch refreshExecutors
// path, which rebuilt the filter table on every call.
func TestAcquireCachesByVersion(t *testing.T) {
	eng, _ := testEngine(t)
	s1 := eng.Acquire()
	s2 := eng.Acquire()
	if s1 != s2 {
		t.Fatal("Acquire rebuilt a snapshot for an unchanged rulebase")
	}

	r, err := core.NewWhitelist("doohickey", "gizmo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rulebase().Add(r, "test"); err != nil {
		t.Fatal(err)
	}
	s3 := eng.Acquire()
	if s3 == s1 {
		t.Fatal("Acquire returned a stale snapshot after a mutation")
	}
	if s3.Version() != eng.Rulebase().Version() {
		t.Fatalf("Acquire at version %d, rulebase at %d", s3.Version(), eng.Rulebase().Version())
	}
	if s4 := eng.Acquire(); s4 != s3 {
		t.Fatal("Acquire rebuilt again for an unchanged rulebase")
	}
}

// TestEngineStartedFlag: Started flips on Start and back off on Close — the
// signal hot read paths use to choose Current over Acquire.
func TestEngineStartedFlag(t *testing.T) {
	eng, _ := testEngine(t)
	if eng.Started() {
		t.Fatal("passive engine reports started")
	}
	eng.Start()
	if !eng.Started() {
		t.Fatal("started engine reports passive")
	}
	eng.Close()
	if eng.Started() {
		t.Fatal("closed engine still reports started")
	}
}

// TestEngineRebuildFaultKeepsStaleSnapshot: an injected rebuild failure must
// not tear or nil the published snapshot — the engine keeps serving the last
// good one, flags itself degraded and counts the error; clearing the fault
// recovers on the next rebuild.
func TestEngineRebuildFaultKeepsStaleSnapshot(t *testing.T) {
	eng, reg := testEngine(t)
	before := eng.Acquire()

	fail := true
	injected := errors.New("injected rebuild failure")
	eng.SetRebuildFault(func() (time.Duration, error) {
		if fail {
			return 0, injected
		}
		return 0, nil
	})

	r, err := core.NewWhitelist("sprocket", "gizmo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rulebase().Add(r, "test"); err != nil {
		t.Fatal(err)
	}
	got := eng.Acquire()
	if got != before {
		t.Fatal("failed rebuild should return the stale-but-valid snapshot")
	}
	if !eng.Degraded() {
		t.Fatal("engine not degraded after a failed rebuild")
	}
	if n := reg.Counter(MetricBuildErrors).Value(); n != 1 {
		t.Fatalf("build-error counter = %d, want 1", n)
	}
	if v := reg.Gauge(MetricDegraded).Value(); v != 1 {
		t.Fatalf("degraded gauge = %v, want 1", v)
	}

	fail = false
	got = eng.Acquire()
	if got == before || got.Version() != eng.Rulebase().Version() {
		t.Fatalf("engine did not recover: version %d, rulebase %d", got.Version(), eng.Rulebase().Version())
	}
	if eng.Degraded() {
		t.Fatal("engine still degraded after a successful rebuild")
	}
	if v := reg.Gauge(MetricDegraded).Value(); v != 0 {
		t.Fatalf("degraded gauge = %v, want 0", v)
	}
}

// TestSnapshotIsolation: an in-flight batch holding an old snapshot keeps
// classifying under the rules frozen at acquisition, even after those rules
// are disabled in the rulebase — while new acquisitions see the change.
func TestSnapshotIsolation(t *testing.T) {
	rb := core.NewRulebase()
	r, err := core.NewWhitelist("widget", "gadget")
	if err != nil {
		t.Fatal(err)
	}
	id, err := rb.Add(r, "test")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(rb, EngineOptions{Obs: obs.NewRegistry()})
	defer eng.Close()

	it := &catalog.Item{ID: "x", Attrs: map[string]string{"Title": "acme widget"}}
	old := eng.Acquire()
	if got := old.Apply(it).FinalTypes(); len(got) != 1 || got[0] != "gadget" {
		t.Fatalf("before disable: %v", got)
	}

	if err := rb.Disable(id, "test", "isolation test"); err != nil {
		t.Fatal(err)
	}

	// The old snapshot is frozen: the disabled rule still fires there.
	if got := old.Apply(it).FinalTypes(); len(got) != 1 || got[0] != "gadget" {
		t.Fatalf("old snapshot no longer isolated: %v", got)
	}
	// A fresh acquisition sees the disable.
	if got := eng.Acquire().Apply(it).FinalTypes(); len(got) != 0 {
		t.Fatalf("fresh snapshot still fires disabled rule: %v", got)
	}
}
