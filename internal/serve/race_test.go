package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/randx"
)

// raceVocab is the shared token universe for the writers-vs-readers stress
// test: small enough that rules and items collide constantly.
var raceVocab = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliet", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango",
}

// ruleDefs tracks, outside the rulebase, what each added rule means — so the
// test can rebuild any historical rule set from an audit replay.
type ruleDefs struct {
	mu sync.Mutex
	m  map[string]struct{ src, target string }
}

func (d *ruleDefs) record(id, src, target string) {
	d.mu.Lock()
	d.m[id] = struct{ src, target string }{src, target}
	d.mu.Unlock()
}

func (d *ruleDefs) ids() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.m))
	for id := range d.m {
		out = append(out, id)
	}
	return out
}

// servedBatch is one reader-observed result: the items, the final types the
// server returned for them, and the snapshot they were computed under.
type servedBatch struct {
	items []*catalog.Item
	outs  [][]string
	snap  *Snapshot
}

// activeSetAt replays the audit log up to (and including) version v and
// returns the active rule IDs at that exact rulebase state.
func activeSetAt(audit []core.AuditEntry, v uint64) map[string]bool {
	active := map[string]bool{}
	for _, e := range audit {
		if e.Version > v {
			break
		}
		switch e.Action {
		case "add", "enable":
			active[e.RuleID] = true
		case "disable", "retire":
			delete(active, e.RuleID)
		}
	}
	return active
}

// TestConcurrentMutationAndServing is the torn-snapshot stress test: N
// writer goroutines mutate the rulebase (Add / Disable / Enable /
// UpdateConfidence) while M readers classify batches through the Server.
// Afterwards, every observed snapshot is checked against an audit-log
// replay: its ActiveIDs must be exactly the active set at its version (a
// torn snapshot — one mixing two versions — cannot pass), and the verdicts
// of a sample batch must be byte-identical to a fresh executor built from
// that replayed rule set. Run under -race in scripts/verify.sh.
func TestConcurrentMutationAndServing(t *testing.T) {
	const (
		writers       = 4
		readers       = 4
		writerOps     = 120
		readerBatches = 50
		batchSize     = 8
	)

	rb := core.NewRulebase()
	defs := &ruleDefs{m: map[string]struct{ src, target string }{}}
	for i := 0; i < 40; i++ {
		src := raceVocab[i%len(raceVocab)]
		target := fmt.Sprintf("type-%d", i%8)
		r, err := core.NewWhitelist(src, target)
		if err != nil {
			t.Fatal(err)
		}
		id, err := rb.Add(r, "seed")
		if err != nil {
			t.Fatal(err)
		}
		defs.record(id, src, target)
	}

	reg := obs.NewRegistry()
	eng := NewEngine(rb, EngineOptions{Obs: reg, Debounce: 200 * time.Microsecond})
	defer eng.Close()
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) []string {
		return snap.Apply(it).FinalTypes()
	}, ServerOptions{Workers: 4, QueueDepth: 256, Obs: reg})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randx.New(uint64(1000 + w))
			for op := 0; op < writerOps; op++ {
				ids := defs.ids()
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(4) {
				case 0:
					src := raceVocab[rng.Intn(len(raceVocab))]
					target := fmt.Sprintf("type-%d", rng.Intn(8))
					if r, err := core.NewWhitelist(src, target); err == nil {
						if nid, err := rb.Add(r, fmt.Sprintf("w%d", w)); err == nil {
							defs.record(nid, src, target)
						}
					}
				case 1:
					_ = rb.Disable(id, fmt.Sprintf("w%d", w), "stress")
				case 2:
					_ = rb.Enable(id, fmt.Sprintf("w%d", w), "stress")
				case 3:
					_ = rb.UpdateConfidence(id, float64(rng.Intn(100))/100, fmt.Sprintf("w%d", w))
				}
				if op%10 == 9 {
					// Yield so mutations spread across the serving window
					// instead of completing before readers warm up.
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(w)
	}

	results := make([][]servedBatch, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := randx.New(uint64(2000 + rd))
			for b := 0; b < readerBatches; b++ {
				items := make([]*catalog.Item, batchSize)
				for i := range items {
					title := raceVocab[rng.Intn(len(raceVocab))] + " " +
						raceVocab[rng.Intn(len(raceVocab))]
					items[i] = &catalog.Item{
						ID:    fmt.Sprintf("r%d-b%d-i%d", rd, b, i),
						Attrs: map[string]string{"Title": title},
					}
				}
				ticket, err := srv.Submit(items)
				if err != nil {
					// Queue full under stress is legitimate backpressure.
					continue
				}
				outs, snap, err := ticket.Wait()
				if err != nil {
					t.Errorf("reader %d batch %d: %v", rd, b, err)
					return
				}
				results[rd] = append(results[rd], servedBatch{items, outs, snap})
				if b%10 == 9 {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(rd)
	}

	wg.Wait()
	srv.Drain()
	eng.Close()

	audit := rb.Audit()
	checkedVersions := map[uint64]bool{}
	total := 0
	for _, rdBatches := range results {
		for _, sb := range rdBatches {
			total++
			v := sb.snap.Version()
			// 1. Traceability: the snapshot's active set must be exactly the
			// replayed rulebase state at its version — a torn snapshot fails.
			if !checkedVersions[v] {
				checkedVersions[v] = true
				want := activeSetAt(audit, v)
				got := sb.snap.ActiveIDs()
				if len(got) != len(want) {
					t.Fatalf("torn snapshot at version %d: %d active IDs, audit replay says %d",
						v, len(got), len(want))
				}
				for _, id := range got {
					if !want[id] {
						t.Fatalf("torn snapshot at version %d: rule %s active in snapshot but not at that version", v, id)
					}
				}
				// 2. Verdict equivalence: rebuild the replayed rule set and
				// re-classify this batch — results must be identical.
				defs.mu.Lock()
				var fresh []*core.Rule
				for id := range want {
					def, ok := defs.m[id]
					if !ok {
						defs.mu.Unlock()
						t.Fatalf("audit references unknown rule %s", id)
					}
					r, err := core.NewWhitelist(def.src, def.target)
					if err != nil {
						defs.mu.Unlock()
						t.Fatal(err)
					}
					fresh = append(fresh, r)
				}
				defs.mu.Unlock()
				ex := core.NewIndexedExecutor(fresh)
				for i, it := range sb.items {
					want := ex.Apply(it).FinalTypes()
					got := sb.outs[i]
					if len(want) != len(got) {
						t.Fatalf("version %d item %s: served %v, replay says %v", v, it.ID, got, want)
					}
					for j := range want {
						if want[j] != got[j] {
							t.Fatalf("version %d item %s: served %v, replay says %v", v, it.ID, got, want)
						}
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no batches were served")
	}
	if len(checkedVersions) < 2 {
		t.Fatalf("stress test observed only %d distinct snapshot versions; mutations did not interleave with serving", len(checkedVersions))
	}
	t.Logf("served %d batches across %d distinct snapshot versions (final rulebase version %d)",
		total, len(checkedVersions), rb.Version())
}
