package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/randx"
)

// ErrRetryBudget is returned by Retrier.Submit when the retrier's shared
// retry budget is exhausted: the submit was shed and no backoff attempts
// remain. It wraps ErrQueueFull so existing shed handling still matches.
var ErrRetryBudget = &retryBudgetError{}

type retryBudgetError struct{}

func (*retryBudgetError) Error() string { return "serve: retry budget exhausted, request shed" }
func (*retryBudgetError) Unwrap() error { return ErrQueueFull }

// RetryOptions parameterizes a Retrier. Zero values take defaults.
type RetryOptions struct {
	// MaxAttempts bounds the re-submissions after the initial shed
	// (default 4; the initial Submit is not counted).
	MaxAttempts int
	// BaseDelay is the first backoff ceiling; each attempt doubles it up to
	// MaxDelay (defaults 1ms / 50ms). The actual sleep is drawn uniformly
	// from [0, ceiling] — "full jitter", which decorrelates retry storms: a
	// thundering herd that was shed together does not retry together.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Budget caps the total re-submissions across the retrier's lifetime
	// (0 = unlimited). Overload that persists long enough to drain the
	// budget degrades every later shed to an immediate ErrRetryBudget —
	// retries are for transient overload, not a substitute for capacity.
	//
	// The budget is deliberately SHARED across concurrent callers: it is a
	// lifetime circuit breaker for the whole client, not a per-call
	// allowance, so a thundering herd drains it once instead of each caller
	// retrying MaxAttempts times against a saturated queue. Per-call
	// isolation is what MaxAttempts provides (each Submit retries at most
	// MaxAttempts times regardless of other callers); callers needing fully
	// independent budgets use one Retrier per caller — and a reservation
	// whose backoff sleep is cancelled by ctx is refunded, never burned.
	Budget int64
	// Seed makes the jitter deterministic for tests and chaos runs.
	Seed uint64
	// Sleep replaces the inter-attempt sleep (tests; default respects ctx
	// cancellation while sleeping).
	Sleep func(ctx context.Context, d time.Duration) error
}

// Retrier wraps a Server's SubmitCtx with capped exponential backoff and
// full jitter for ErrQueueFull sheds. Every other error (ErrShutdown,
// context expiry) is returned immediately — backing off cannot fix those.
// Attempts, eventual successes and give-ups are recorded in the server's
// registry (serve_retry_*), so a drill can show shed requests succeeding on
// retry rather than asserting it.
type Retrier[R any] struct {
	srv  *Server[R]
	opts RetryOptions

	mu     sync.Mutex
	rng    *randx.Rand
	budget int64 // remaining; -1 = unlimited

	attempts *obs.Counter
	success  *obs.Counter
	giveUp   *obs.Counter
}

// NewRetrier builds a Retrier over srv.
func NewRetrier[R any](srv *Server[R], opts RetryOptions) *Retrier[R] {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 50 * time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = ctxSleep
	}
	budget := opts.Budget
	if budget == 0 {
		budget = -1
	}
	reg := srv.Registry()
	r := &Retrier[R]{
		srv:      srv,
		opts:     opts,
		rng:      randx.New(opts.Seed).Split("retry"),
		budget:   budget,
		attempts: reg.Counter(MetricRetryAttempts),
		success:  reg.Counter(MetricRetrySuccess),
		giveUp:   reg.Counter(MetricRetryGiveUp),
	}
	reg.Help(MetricRetryAttempts, "backoff re-submissions after a queue-full shed")
	reg.Help(MetricRetrySuccess, "shed requests that succeeded on a retry")
	reg.Help(MetricRetryGiveUp, "shed requests abandoned (attempts/budget exhausted or ctx expired)")
	return r
}

// Budget returns the remaining retry budget (-1 = unlimited).
func (r *Retrier[R]) Budget() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.budget
}

// takeBudget reserves one retry from the shared budget.
func (r *Retrier[R]) takeBudget() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget == 0 {
		return false
	}
	if r.budget > 0 {
		r.budget--
	}
	return true
}

// refundBudget returns an unused reservation: the caller took budget for a
// re-submission that never happened (its backoff sleep was cancelled), and
// a budget that counts re-submissions must not charge for it.
func (r *Retrier[R]) refundBudget() {
	r.mu.Lock()
	if r.budget >= 0 {
		r.budget++
	}
	r.mu.Unlock()
}

// jitter draws the full-jitter sleep for the given attempt (0-based).
func (r *Retrier[R]) jitter(attempt int) time.Duration {
	ceiling := r.opts.BaseDelay << uint(attempt)
	if ceiling <= 0 || ceiling > r.opts.MaxDelay {
		ceiling = r.opts.MaxDelay
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(f * float64(ceiling))
}

// Submit submits items through the wrapped server, retrying ErrQueueFull
// sheds with capped exponential backoff + full jitter until the submit is
// accepted, attempts or budget run out (ErrRetryBudget / ErrQueueFull —
// both match errors.Is(err, ErrQueueFull)), or ctx expires (ctx.Err()).
func (r *Retrier[R]) Submit(ctx context.Context, items []*catalog.Item) (*Ticket[R], error) {
	ticket, err := r.srv.SubmitCtx(ctx, items)
	if err == nil || !errors.Is(err, ErrQueueFull) {
		return ticket, err
	}
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if !r.takeBudget() {
			r.giveUp.Inc()
			return nil, ErrRetryBudget
		}
		if err := r.opts.Sleep(ctx, r.jitter(attempt)); err != nil {
			// The reserved re-submission never happened: refund it so a
			// caller-side cancellation does not charge the shared breaker.
			r.refundBudget()
			r.giveUp.Inc()
			return nil, err
		}
		r.attempts.Inc()
		ticket, err = r.srv.SubmitCtx(ctx, items)
		if err == nil {
			r.success.Inc()
			return ticket, nil
		}
		if !errors.Is(err, ErrQueueFull) {
			// The shed request is being abandoned for a different terminal
			// reason (ctx expired between backoff and re-submit, or shutdown):
			// still a give-up, or the counter undercounts abandoned sheds.
			r.giveUp.Inc()
			return nil, err
		}
	}
	r.giveUp.Inc()
	return nil, err
}

// ctxSleep sleeps for d or until ctx is done, returning ctx.Err() in the
// latter case. A zero d still yields the scheduler via the timer path only
// when needed.
func ctxSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
