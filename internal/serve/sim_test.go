package serve

// The deterministic simulation/soak harness for the sharded serving tier.
// Each run drives a seeded workload — interleaved scatter-gather
// classifications, rulebase mutations, shard rebuild faults (stalls and
// outright failures), targeted shard handler stalls, and caller deadline
// expiries — for K virtual seconds (rounds), and asserts the global
// invariants the tier promises:
//
//   - every scatter ticket resolves exactly once, every item with either a
//     verdict or one of the explicit failure errors — never silence;
//   - sharded verdicts are byte-identical (Verdict.Explain) to a
//     single-engine oracle's verdicts at the same rulebase version, even
//     while shards lag behind mutations or serve stale snapshots after
//     injected rebuild failures;
//   - accounting closes per shard: routed == served + shed + expired +
//     declined + rejected, and the harness's own books match the
//     serve_shard_* counters exactly.
//
// The workload is seeded (catalog, mutation schedule, fault schedule,
// deadline draws all derive from one seed), so a failure reproduces; the
// invariants are schedule-free, so the test is sound under -race on any
// box. Three distinct seeds run in CI.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/randx"
)

// errSimRebuild is the sim's injected rebuild failure.
var errSimRebuild = errors.New("sim: injected rebuild failure")

// simTally is the harness's per-shard accounting book.
type simTally struct {
	routed, served, shed, expired, declined, rejected int64
}

func TestSimShardedSoakEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 17, 1009} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			simRun(t, seed)
		})
	}
}

// cacheSimSeed runs its soak with per-shard verdict caches enabled and one
// duplicated submission per round, so the equivalence oracle also covers the
// cached read path (hits, single-flight coalescing and stale drops under
// mutation churn all feed the same byte-equality check).
const cacheSimSeed = 1009

func simRun(t *testing.T, seed uint64) {
	const (
		shards     = 4
		rounds     = 18 // virtual seconds
		clients    = 3
		batchesPer = 2
		batchSize  = 12
		mutations  = 5 // per round
	)
	rng := randx.New(seed).Split("sim")
	cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 25})
	rb := buildPropertyRulebase(t, cat, seed)
	var ruleIDs []string
	for _, r := range rb.All() {
		ruleIDs = append(ruleIDs, r.ID)
	}

	// The single-engine oracle: passive (synchronous Acquire), recording an
	// immutable snapshot of EVERY rulebase version the run passes through.
	// A shard serving any version — current, debounce-stale, or pinned by a
	// failed rebuild — is then comparable against the oracle's snapshot at
	// that same version.
	oracle := NewEngine(rb, EngineOptions{Obs: obs.NewRegistry()})
	oracleSnaps := map[uint64]*Snapshot{}
	record := func() {
		snap := oracle.Acquire()
		oracleSnaps[snap.Version()] = snap
	}
	record()

	// Targeted handler stalls on shard 0 for the whole run (the
	// fault-injectable shard stall of internal/faultinject); rebuild faults
	// rotate per round below.
	inj := faultinject.New(faultinject.Config{
		Seed:        seed + 1,
		ShardStallP: 0.35, ShardStall: 300 * time.Microsecond, ShardTarget: 0,
	})

	cacheOn := seed == cacheSimSeed
	var cacheCfg CacheConfig
	if cacheOn {
		cacheCfg = CacheConfig{Capacity: 128}
	}
	reg := obs.NewRegistry()
	srv := NewShardedServer(rb, func(ctx context.Context, snap *Snapshot, it *catalog.Item) string {
		if d := inj.ShardDelay(ShardFromContext(ctx)); d > 0 {
			time.Sleep(d)
		}
		// ApplyCached == Apply when the seed runs uncached (nil cache).
		return snap.ApplyCached(it).Explain()
	}, ShardedOptions{
		Shards:  shards,
		Workers: 1,
		// Shallow queues so overload (sheds) is reachable when stalls pile
		// work onto one shard — partial failure is part of the soak.
		QueueDepth: 2,
		Debounce:   100 * time.Microsecond,
		Obs:        reg,
		Cache:      cacheCfg,
	})

	var books [shards]simTally
	type submission struct {
		items  []*catalog.Item
		ticket *ShardedTicket[string]
		cancel context.CancelFunc
	}

	for round := 0; round < rounds; round++ {
		// Fault schedule for this virtual second: maybe fault one shard's
		// rebuild path (stall or hard failure), maybe run clean.
		for i := 0; i < shards; i++ {
			srv.Engine(i).SetRebuildFault(nil)
		}
		if rng.Bool(0.5) {
			f := rng.Intn(shards)
			if rng.Bool(0.5) {
				srv.Engine(f).SetRebuildFault(func() (time.Duration, error) {
					return 200 * time.Microsecond, nil
				})
			} else {
				srv.Engine(f).SetRebuildFault(func() (time.Duration, error) {
					return 0, errSimRebuild
				})
			}
		}

		// Pre-generate the round's batches (the catalog generator is not
		// concurrency-safe), with seeded deadline draws: roughly one in four
		// submissions is deadline-bound tightly enough that it may expire
		// while queued.
		subs := make([]*submission, 0, clients*batchesPer)
		for c := 0; c < clients; c++ {
			for b := 0; b < batchesPer; b++ {
				subs = append(subs, &submission{
					items: cat.GenerateBatch(catalog.BatchSpec{Size: batchSize, Epoch: round % 3}),
				})
			}
		}
		if cacheOn && len(subs) >= 2 {
			// Re-submit the same items (same pointers) in a second concurrent
			// submission: repeat traffic for the cache, racing lookups for the
			// single-flight path, and a concurrency check on the items' lazy
			// fingerprints — all still oracle-checked below.
			subs[1].items = subs[0].items
		}
		deadlines := make([]time.Duration, len(subs))
		for i := range deadlines {
			if rng.Bool(0.25) {
				deadlines[i] = time.Duration(1+rng.Intn(1500)) * time.Microsecond
			}
		}

		// Scatter the round's submissions from concurrent clients while the
		// driver mutates the rulebase underneath them.
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for b := 0; b < batchesPer; b++ {
					sub := subs[c*batchesPer+b]
					ctx := context.Background()
					sub.cancel = func() {}
					if d := deadlines[c*batchesPer+b]; d > 0 {
						ctx, sub.cancel = context.WithTimeout(ctx, d)
					}
					tk, err := srv.SubmitCtx(ctx, sub.items)
					if err != nil {
						// Only an already-expired submit ctx may fail here.
						if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
							t.Errorf("seed %d round %d: unexpected submit error %v", seed, round, err)
						}
						sub.cancel()
						continue
					}
					sub.ticket = tk
				}
			}(c)
		}

		// Interleaved maintenance: every mutation is immediately followed by
		// an oracle record, so any version a shard can possibly serve is in
		// oracleSnaps before this round's verdicts are compared.
		for m := 0; m < mutations; m++ {
			id := ruleIDs[rng.Intn(len(ruleIDs))]
			switch rng.Intn(3) {
			case 0:
				_ = rb.Disable(id, "sim", "soak churn")
			case 1:
				_ = rb.Enable(id, "sim", "soak churn")
			default:
				_ = rb.UpdateConfidence(id, 0.5+float64(rng.Intn(50))/100, "sim")
			}
			record()
			time.Sleep(50 * time.Microsecond)
		}
		wg.Wait()

		// Gather, check exactly-once resolution, verify every served item
		// against the oracle at the shard's actual serving version, and keep
		// the books.
		watchdog, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
		for _, sub := range subs {
			if sub.ticket == nil {
				continue
			}
			res, err := sub.ticket.WaitContext(watchdog)
			if err != nil {
				t.Fatalf("seed %d round %d: ticket unresolved after 30s: %v", seed, round, err)
			}
			sub.cancel()
			select {
			case <-sub.ticket.Done():
			default:
				t.Fatalf("seed %d round %d: Done not closed after Wait", seed, round)
			}
			if again := sub.ticket.Wait(); again != res {
				t.Fatalf("seed %d round %d: second Wait returned a different resolution", seed, round)
			}
			if res.Served+res.Failed != len(sub.items) {
				t.Fatalf("seed %d round %d: served %d + failed %d != %d items",
					seed, round, res.Served, res.Failed, len(sub.items))
			}
			for i, it := range sub.items {
				sd := res.ShardOf[i]
				books[sd].routed++
				if e := res.Errs[i]; e != nil {
					switch {
					case errors.Is(e, ErrQueueFull):
						books[sd].shed++
					case errors.Is(e, ErrShutdown):
						books[sd].rejected++
					case errors.Is(e, ErrDeclined):
						books[sd].declined++
					case errors.Is(e, context.DeadlineExceeded), errors.Is(e, context.Canceled):
						books[sd].expired++
					default:
						t.Fatalf("seed %d round %d: unexpected per-item error %v", seed, round, e)
					}
					continue
				}
				books[sd].served++
				snap := res.Snapshots[i]
				if snap == nil {
					t.Fatalf("seed %d round %d: served item without a snapshot", seed, round)
				}
				want, ok := oracleSnaps[snap.Version()]
				if !ok {
					t.Fatalf("seed %d round %d: shard %d served version %d the rulebase never published",
						seed, round, sd, snap.Version())
				}
				if got, exp := res.Results[i], want.Apply(it).Explain(); got != exp {
					t.Fatalf("seed %d round %d: shard %d verdict diverges from oracle at version %d on %q:\n got: %s\nwant: %s",
						seed, round, sd, snap.Version(), it.Title(), got, exp)
				}
			}
		}
		wcancel()
	}

	srv.Close()

	// Accounting closes per shard, and the harness's books match the
	// serve_shard_* counters exactly — nothing was dropped or double-counted
	// anywhere between the router and the metrics.
	sawTraffic := false
	for i := 0; i < shards; i++ {
		label := fmt.Sprintf("%d", i)
		b := books[i]
		if b.routed != b.served+b.shed+b.expired+b.declined+b.rejected {
			t.Fatalf("seed %d: shard %d accounting leak: routed %d != served %d + shed %d + expired %d + declined %d + rejected %d",
				seed, i, b.routed, b.served, b.shed, b.expired, b.declined, b.rejected)
		}
		if b.routed > 0 {
			sawTraffic = true
		}
		check := func(name string, want int64) {
			if got := reg.Counter(name, "shard", label).Value(); got != want {
				t.Fatalf("seed %d: shard %d %s counter %d != harness books %d", seed, i, name, got, want)
			}
		}
		check(MetricShardRouted, b.routed)
		check(MetricShardServed, b.served)
		check(MetricShardShed, b.shed)
		check(MetricShardExpired, b.expired)
		check(MetricShardDeclined, b.declined)
		check(MetricShardRejected, b.rejected)
	}
	if !sawTraffic {
		t.Fatalf("seed %d: sim routed no traffic — the harness exercises nothing", seed)
	}
	var totalServed int64
	for i := range books {
		totalServed += books[i].served
	}
	if totalServed == 0 {
		t.Fatalf("seed %d: sim served nothing — the harness never exercised the happy path", seed)
	}
	if cacheOn {
		st := srv.CacheStats()
		if st.Misses == 0 {
			t.Fatalf("seed %d: cache-enabled soak never exercised the cache", seed)
		}
		t.Logf("sim seed %d: cache=%+v", seed, st)
	}
	t.Logf("sim seed %d: books=%+v oracle versions=%d faults=%v", seed, books, len(oracleSnaps), inj.Counts())
}
