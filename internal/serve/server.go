package serve

import (
	"context"
	"errors"
	"sync"

	"repro/internal/catalog"
	"repro/internal/obs"
)

var (
	// ErrQueueFull is returned by Submit when the request queue is at its
	// depth limit — the explicit shed that keeps latency bounded under
	// overload instead of queueing without bound.
	ErrQueueFull = errors.New("serve: queue full, request shed")
	// ErrShutdown is returned by Submit after Shutdown began.
	ErrShutdown = errors.New("serve: server shut down")
	// ErrDeclined resolves tickets whose request was still queued when the
	// shutdown drain deadline expired: the work was not done, and the caller
	// is told so explicitly — no request is ever silently dropped.
	ErrDeclined = errors.New("serve: declined during shutdown drain")
)

// Handler classifies one item against one immutable snapshot. It is called
// from worker goroutines and must be safe for concurrent use with distinct
// items (snapshots are immutable; per-item state is worker-local). ctx is
// the submitter's context and carries the request ID (obs.RequestID) for
// decision provenance.
type Handler[R any] func(ctx context.Context, snap *Snapshot, it *catalog.Item) R

// ServerOptions parameterizes a Server. Zero values take defaults.
type ServerOptions struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the number of queued requests; Submit sheds beyond
	// it (default 64).
	QueueDepth int
	// Obs receives the server's metrics (default: the engine's registry).
	Obs *obs.Registry
	// Audit, when non-nil, receives a DecisionRecord for every item the
	// server fails before classification: shed at submit, declined during
	// shutdown drain, or expired in the queue. (Classification-time records
	// are the handler's job — the server never sees its verdicts.) These
	// records are biased, so they bypass sampling.
	Audit *obs.AuditLog
}

// request is one submitted batch and its resolution slot.
type request[R any] struct {
	items []*catalog.Item
	ctx   context.Context // caller's context; checked at worker pick-up
	out   []R
	snap  *Snapshot
	err   error
	done  chan struct{}
}

// Ticket is the caller's handle on a submitted request.
type Ticket[R any] struct{ req *request[R] }

// Done is closed when the request resolved (served, declined, or expired).
func (t *Ticket[R]) Done() <-chan struct{} { return t.req.done }

// Wait blocks until the request resolves. On success it returns the per-item
// results and the snapshot the whole batch was classified under (its Version
// ties every verdict to exactly one rulebase state). On a drain decline it
// returns (nil, nil, ErrDeclined); on a submit-context deadline that expired
// while the request was still queued, (nil, nil, ctx.Err()).
func (t *Ticket[R]) Wait() ([]R, *Snapshot, error) {
	<-t.req.done
	return t.req.out, t.req.snap, t.req.err
}

// WaitContext is Wait with a caller deadline on the waiting itself: it
// returns ctx.Err() if ctx expires before the request resolves. The request
// is NOT cancelled — it stays queued and its ticket still resolves exactly
// once; only this wait is abandoned, and Wait/WaitContext may be called
// again to re-attach.
func (t *Ticket[R]) WaitContext(ctx context.Context) ([]R, *Snapshot, error) {
	select {
	case <-t.req.done:
		return t.req.out, t.req.snap, t.req.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

// Server is the concurrent serving frontend: a bounded queue feeding a fixed
// worker pool, where each request is processed entirely against the snapshot
// current at pick-up time. Backpressure is explicit (ErrQueueFull), caller
// deadlines propagate end-to-end (SubmitCtx / Ticket.WaitContext — a request
// whose context expired while queued resolves with the context error instead
// of burning a worker), shutdown is graceful (queued work completes, or is
// explicitly declined when the drain deadline expires), and queue depth /
// sheds / served / expired counts are recorded in obs.
type Server[R any] struct {
	eng   *Engine
	h     Handler[R]
	obs   *obs.Registry
	audit *obs.AuditLog

	mu        sync.RWMutex // guards closed + the queue-close transition
	closed    bool
	queue     chan *request[R]
	abort     chan struct{}
	abortOnce sync.Once
	wg        sync.WaitGroup

	depth    *obs.Gauge
	shed     *obs.Counter
	batches  *obs.Counter
	items    *obs.Counter
	declined *obs.Counter
	expired  *obs.Counter
}

// QueueCapacity returns the configured queue depth limit — the denominator
// for load watermarks over the MetricQueueDepth gauge.
func (s *Server[R]) QueueCapacity() int { return cap(s.queue) }

// Engine returns the snapshot engine the server classifies through.
func (s *Server[R]) Engine() *Engine { return s.eng }

// Registry returns the registry the server's metrics land in.
func (s *Server[R]) Registry() *obs.Registry { return s.obs }

// NewServer starts the worker pool (and the engine's async rebuild loop, so
// workers read fresh snapshots without touching the rulebase lock). The
// caller owns Shutdown/Drain on the server; the engine is left running for
// its owner to Close.
func NewServer[R any](eng *Engine, h Handler[R], opts ServerOptions) *Server[R] {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	queueDepth := opts.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 64
	}
	reg := opts.Obs
	if reg == nil {
		reg = eng.Registry()
	}
	s := &Server[R]{
		eng:      eng,
		h:        h,
		obs:      reg,
		audit:    opts.Audit,
		queue:    make(chan *request[R], queueDepth),
		abort:    make(chan struct{}),
		depth:    reg.Gauge(MetricQueueDepth),
		shed:     reg.Counter(MetricShed),
		batches:  reg.Counter(MetricBatches),
		items:    reg.Counter(MetricItems),
		declined: reg.Counter(MetricDeclined),
		expired:  reg.Counter(MetricDeadlineExpired),
	}
	reg.Help(MetricQueueDepth, "requests queued, not yet picked up by a worker")
	reg.Help(MetricShed, "requests shed at Submit (queue full)")
	reg.Help(MetricDeclined, "items explicitly declined during shutdown drain")
	reg.Help(MetricDeadlineExpired, "requests whose caller deadline expired at submit or while queued")
	eng.Start()
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues a batch for classification. It never blocks: when the
// queue is at its depth limit the request is shed with ErrQueueFull (the
// caller decides whether to retry, spill, or route to manual); after
// Shutdown it returns ErrShutdown.
func (s *Server[R]) Submit(items []*catalog.Item) (*Ticket[R], error) {
	return s.SubmitCtx(context.Background(), items)
}

// SubmitCtx is Submit with end-to-end deadline propagation: the context is
// checked at submit time (an already-expired context is rejected without
// queueing) and again when a worker picks the request up — a request whose
// deadline expired while it sat in the queue resolves its ticket with the
// context error instead of doing dead work. Cancellation does not recall a
// request that a worker already started.
func (s *Server[R]) SubmitCtx(ctx context.Context, items []*catalog.Item) (*Ticket[R], error) {
	// Every request carries an ID end-to-end: the handler reads it back with
	// obs.RequestID and stamps it on each item's decision record. Assigned
	// before the expiry check so even submit-time rejections are auditable.
	ctx, _ = obs.EnsureRequestID(ctx, "req")
	if err := ctx.Err(); err != nil {
		// Same taxonomy bucket as expiring while queued: the caller's deadline
		// ran out, no snapshot was consulted. Counting it here keeps the
		// shed/expired split honest — an expired submit is not a shed.
		s.expired.Inc()
		s.auditFailure(ctx, items, obs.OutcomeExpired, err.Error())
		return nil, err
	}
	req := &request[R]{items: items, ctx: ctx, done: make(chan struct{})}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrShutdown
	}
	// The gauge is incremented before the send: a worker's Add(-1) is always
	// preceded (happens-after, via the channel) by this Add(1), so the gauge
	// can overshoot transiently on a shed but never go negative.
	s.depth.Add(1)
	select {
	case s.queue <- req:
		return &Ticket[R]{req}, nil
	default:
		s.depth.Add(-1)
		s.shed.Inc()
		s.auditFailure(ctx, items, obs.OutcomeShed, "queue full")
		return nil, ErrQueueFull
	}
}

// auditFailure records one always-captured decision record per item for
// requests the server resolves without classification. SnapshotVersion is 0:
// no snapshot was ever consulted.
func (s *Server[R]) auditFailure(ctx context.Context, items []*catalog.Item, outcome, reason string) {
	if !s.audit.Enabled() {
		return
	}
	id := obs.RequestID(ctx)
	for _, it := range items {
		s.audit.Observe(&obs.DecisionRecord{
			RequestID: id,
			ItemID:    it.ID,
			Path:      obs.PathServe,
			Outcome:   outcome,
			Reason:    reason,
		})
	}
}

func (s *Server[R]) worker() {
	defer s.wg.Done()
	for req := range s.queue {
		s.depth.Add(-1)
		select {
		case <-s.abort:
			// Drain deadline expired: decline explicitly, never drop.
			req.err = ErrDeclined
			s.declined.Add(int64(len(req.items)))
			s.auditFailure(req.ctx, req.items, obs.OutcomeDrain, "shutdown drain deadline expired")
			close(req.done)
			continue
		default:
		}
		// The caller's deadline expired while the request was queued: resolve
		// with the context error rather than serving a result nobody waits for.
		if err := req.ctx.Err(); err != nil {
			req.err = err
			s.expired.Inc()
			s.auditFailure(req.ctx, req.items, obs.OutcomeExpired, err.Error())
			close(req.done)
			continue
		}
		// Snapshot isolation: the whole request runs against the snapshot
		// current at pick-up; a concurrent swap does not affect it.
		snap := s.eng.Current()
		out := make([]R, len(req.items))
		for i, it := range req.items {
			out[i] = s.h(req.ctx, snap, it)
		}
		req.out, req.snap = out, snap
		s.batches.Inc()
		s.items.Add(int64(len(req.items)))
		close(req.done)
	}
}

// Shutdown stops accepting new requests and waits for the queue to drain.
// If ctx expires first, the remaining queued requests are explicitly
// declined (their tickets resolve with ErrDeclined) and ctx.Err() is
// returned; requests already being processed always complete. Either way,
// every submitted ticket resolves. Safe to call more than once.
func (s *Server[R]) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	if !already {
		close(s.queue) // Submit can no longer send: closed is set under mu
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.abortOnce.Do(func() { close(s.abort) })
		<-finished
		return ctx.Err()
	}
}

// Drain is Shutdown without a deadline: every queued request completes.
func (s *Server[R]) Drain() { _ = s.Shutdown(context.Background()) }
