package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultRouterReplicas is the number of virtual nodes each shard places on
// the consistent-hash ring. More replicas smooth the key distribution at the
// cost of a larger (still tiny) sorted ring; ring lookup is O(log(shards ×
// replicas)) either way. 256 keeps every shard's share of a realistic key
// population within a few points of fair — 64 was observed to leave one of
// four shards with under 5% of the keys.
const DefaultRouterReplicas = 256

// ShardRouter maps routing keys onto shard indices with a consistent-hash
// ring. The contract, which FuzzShardRouter enforces:
//
//   - total: every key maps to exactly one shard in [0, Shards());
//   - deterministic: the same key always maps to the same shard, across
//     calls and across independently constructed routers of the same size;
//   - stable under resizing: growing from N to N+1 shards moves a key only
//     if it moves to the new shard N — keys never reshuffle among the
//     surviving shards (and symmetrically for shrinking, only the removed
//     shard's keys move).
//
// Stability is what makes shard-local state (queue backlogs, per-shard
// telemetry, warmed snapshots) survive elastic resizing: only the keys that
// must move, move. A router is immutable after construction and safe for
// concurrent use.
type ShardRouter struct {
	shards int
	points []ringPoint // ascending by (hash, shard)
}

// ringPoint is one virtual node: a position on the ring owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// NewShardRouter builds a ring over the given number of shards with the
// given virtual-node count per shard (DefaultRouterReplicas when <= 0).
// shards < 1 is clamped to 1, so routing is always total.
func NewShardRouter(shards, replicas int) *ShardRouter {
	if shards < 1 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = DefaultRouterReplicas
	}
	points := make([]ringPoint, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			points = append(points, ringPoint{hash: hashKey(fmt.Sprintf("shard-%d#%d", s, r)), shard: s})
		}
	}
	// Deterministic order including the (astronomically unlikely) hash-tie
	// case, so independently built routers agree point for point.
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].shard < points[j].shard
	})
	return &ShardRouter{shards: shards, points: points}
}

// hashKey is the ring's hash: FNV-1a 64 through a murmur3-style 64-bit
// finalizer, stable across processes and Go versions (routing must agree
// between a router and its replay in tests). The finalizer matters: raw
// FNV-1a barely diffuses the last bytes, so key families like "vendor-001",
// "vendor-002", … cluster into one narrow ring arc — observed sending an
// entire 40-vendor population to a single shard of four.
func hashKey(key string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Shards returns the number of shards the router spreads keys over.
func (r *ShardRouter) Shards() int { return r.shards }

// ShardFor maps a routing key to its shard: the key's hash walks clockwise
// to the first virtual node at or past it (wrapping at the top of the ring).
func (r *ShardRouter) ShardFor(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
