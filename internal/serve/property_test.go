package serve

import (
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

// buildPropertyRulebase seeds a rulebase with a mixed-kind rule population
// derived from the catalog's type vocabulary, plus some disabled/retired
// rules so snapshots must respect lifecycle status.
func buildPropertyRulebase(t testing.TB, cat *catalog.Catalog, seed uint64) *core.Rulebase {
	rb := core.NewRulebase()
	types := cat.Types()
	for i, ty := range types {
		for j, h := range ty.HeadTerms {
			r, err := core.NewWhitelist(h.Text, ty.Name)
			if err != nil {
				continue
			}
			id, err := rb.Add(r, "prop")
			if err != nil {
				t.Fatalf("add: %v", err)
			}
			// Exercise status filtering: some rules are disabled, some
			// disabled-then-retired; snapshots must exclude both.
			switch (uint64(i*7+j) + seed) % 9 {
			case 3:
				_ = rb.Disable(id, "prop", "property test")
			case 5:
				_ = rb.Disable(id, "prop", "property test")
				_ = rb.Retire(id, "prop", "property test")
			}
		}
		if len(ty.Synonyms) > 0 && i%3 == 0 {
			if r, err := core.NewBlacklist(ty.Synonyms[0].Text, types[(i+1)%len(types)].Name); err == nil {
				_, _ = rb.Add(r, "prop")
			}
		}
		if i%5 == 0 && len(ty.HeadTerms) > 1 {
			if r, err := core.NewGate(ty.HeadTerms[1].Text, ty.Name); err == nil {
				_, _ = rb.Add(r, "prop")
			}
		}
		if i%11 == 0 {
			if r, err := core.NewFilter(ty.Name); err == nil {
				_, _ = rb.Add(r, "prop")
			}
		}
	}
	return rb
}

// TestSnapshotVerdictEquivalenceProperty: for any generated catalog batch
// and rule population, the snapshot's executors produce verdicts
// byte-identical (same final types AND same evidence fingerprint) to fresh
// IndexedExecutors built directly over the same active rules — the serve
// layer may never change what the system says, only how fast it says it.
func TestSnapshotVerdictEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 25})
		rb := buildPropertyRulebase(t, cat, seed)
		snap := BuildSnapshot(rb, obs.NewRegistry())

		freshRules := core.NewIndexedExecutor(rb.Active(
			core.Whitelist, core.Blacklist, core.AttrExists, core.AttrValue,
			core.TypeRestrict))
		freshGate := core.NewIndexedExecutor(rb.Active(core.Gate))

		items := cat.GenerateBatch(catalog.BatchSpec{Size: 80, Epoch: int(seed % 3)})
		// The batch-inverted path must agree with the fresh per-item
		// executors too — the snapshot may never change what the system
		// says, on either path.
		batchRules := snap.ApplyBatch(items, 3)
		batchGate := snap.GateApplyBatch(items, 3)
		for i, it := range items {
			if !core.VerdictsEqual(snap.Rules().Apply(it), freshRules.Apply(it)) {
				t.Logf("seed %d: classifier verdicts diverge on %q", seed, it.Title())
				return false
			}
			if !core.VerdictsEqual(snap.Gate().Apply(it), freshGate.Apply(it)) {
				t.Logf("seed %d: gate verdicts diverge on %q", seed, it.Title())
				return false
			}
			if !core.VerdictsEqual(batchRules[i], freshRules.Apply(it)) {
				t.Logf("seed %d: batch classifier verdict diverges on %q", seed, it.Title())
				return false
			}
			if !core.VerdictsEqual(batchGate[i], freshGate.Apply(it)) {
				t.Logf("seed %d: batch gate verdict diverges on %q", seed, it.Title())
				return false
			}
		}

		// The filter table must be exactly the active Filter rules.
		want := map[string]string{}
		for _, r := range rb.Active(core.Filter) {
			want[r.TargetType] = r.ID
		}
		if len(want) != len(snap.Filters()) {
			return false
		}
		for ty, id := range want {
			if snap.Filters()[ty] != id {
				return false
			}
		}
		return snap.Version() == rb.Version()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotActiveIDsMatchRulebase: the snapshot's traceability fingerprint
// (sorted active IDs) is exactly the rulebase's active set at that version.
func TestSnapshotActiveIDsMatchRulebase(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 11, NumTypes: 20})
	rb := buildPropertyRulebase(t, cat, 11)
	snap := BuildSnapshot(rb, obs.NewRegistry())

	want := map[string]bool{}
	for _, r := range rb.Active() {
		want[r.ID] = true
	}
	got := snap.ActiveIDs()
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d active IDs, rulebase has %d", len(got), len(want))
	}
	for i, id := range got {
		if !want[id] {
			t.Fatalf("snapshot lists %s which is not active", id)
		}
		if i > 0 && got[i-1] >= id {
			t.Fatalf("ActiveIDs not strictly sorted at %d: %q >= %q", i, got[i-1], id)
		}
	}
}
