package serve

import (
	"fmt"
	"testing"
)

func TestShardRouterTotalAndDeterministic(t *testing.T) {
	r := NewShardRouter(5, 0)
	other := NewShardRouter(5, 0) // independently built, must agree
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("vendor-%d", i)
		sd := r.ShardFor(key)
		if sd < 0 || sd >= r.Shards() {
			t.Fatalf("key %q routed outside [0,%d): %d", key, r.Shards(), sd)
		}
		if again := r.ShardFor(key); again != sd {
			t.Fatalf("key %q not deterministic: %d then %d", key, sd, again)
		}
		if o := other.ShardFor(key); o != sd {
			t.Fatalf("independently built router disagrees on %q: %d vs %d", key, sd, o)
		}
	}
}

func TestShardRouterClampsDegenerateConfigs(t *testing.T) {
	for _, r := range []*ShardRouter{
		NewShardRouter(0, 0),
		NewShardRouter(-3, -7),
		NewShardRouter(1, 1),
	} {
		if r.Shards() != 1 {
			t.Fatalf("degenerate config clamped to %d shards, want 1", r.Shards())
		}
		if sd := r.ShardFor("anything"); sd != 0 {
			t.Fatalf("single-shard router sent a key to shard %d", sd)
		}
	}
}

// TestShardRouterBalance: with default replicas, no shard owns a wildly
// disproportionate slice of a realistic key population.
func TestShardRouterBalance(t *testing.T) {
	const shards, keys = 4, 8000
	r := NewShardRouter(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.ShardFor(fmt.Sprintf("vendor-%d", i))]++
	}
	for sd, c := range counts {
		frac := float64(c) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("shard %d owns %.1f%% of keys (counts %v) — ring badly unbalanced",
				sd, 100*frac, counts)
		}
	}
}

// TestShardRouterResizeStability: growing N -> N+1 shards moves keys only to
// the new shard; keys never reshuffle among the surviving shards. This is
// the property that lets an operator add capacity without invalidating every
// shard's warmed snapshot and backlog.
func TestShardRouterResizeStability(t *testing.T) {
	for n := 1; n <= 8; n++ {
		before := NewShardRouter(n, 0)
		after := NewShardRouter(n+1, 0)
		moved := 0
		for i := 0; i < 4000; i++ {
			key := fmt.Sprintf("key-%d", i)
			b, a := before.ShardFor(key), after.ShardFor(key)
			if b == a {
				continue
			}
			moved++
			if a != n {
				t.Fatalf("grow %d->%d: key %q moved %d->%d, not to the new shard %d",
					n, n+1, key, b, a, n)
			}
		}
		if moved == 0 {
			t.Fatalf("grow %d->%d: no key moved to the new shard — it owns nothing", n, n+1)
		}
	}
}

// TestShardRouterSpreadsSimilarKeys (regression): sequential key families
// ("vendor-001", "vendor-002", …) must spread across shards. Raw FNV-1a
// barely diffuses trailing bytes, so before the finalizer mix an entire
// 40-vendor population landed on one shard of four.
func TestShardRouterSpreadsSimilarKeys(t *testing.T) {
	r := NewShardRouter(4, 0)
	hit := map[int]int{}
	for i := 0; i < 40; i++ {
		hit[r.ShardFor(fmt.Sprintf("vendor-%03d", i))]++
	}
	if len(hit) < 3 {
		t.Fatalf("40 sequential vendor keys landed on only %d of 4 shards: %v", len(hit), hit)
	}
}
