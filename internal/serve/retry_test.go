package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
)

// blockedServer is a 1-worker server whose worker signals each pick-up on
// started and then parks until release() — the harness for deterministic
// overload: saturate() puts one request in flight and fills the queue.
type blockedServer struct {
	srv     *Server[string]
	started chan struct{}
	release func()
}

func retryServer(t *testing.T, queueDepth int) *blockedServer {
	t.Helper()
	eng, reg := testEngine(t)
	rel := make(chan struct{})
	b := &blockedServer{started: make(chan struct{}, 64)}
	b.srv = NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) string {
		b.started <- struct{}{}
		<-rel
		return it.ID
	}, ServerOptions{Workers: 1, QueueDepth: queueDepth, Obs: reg})
	var once sync.Once
	b.release = func() { once.Do(func() { close(rel) }) }
	// Cleanup must release first: Drain waits on the parked worker, and a
	// test that t.Fatal-ed before releasing would otherwise hang forever.
	t.Cleanup(func() { b.release(); b.srv.Drain() })
	return b
}

// saturate submits one in-flight request (waiting for its pick-up) and then
// fills the queue to capacity, so the next Submit must shed.
func (b *blockedServer) saturate(t *testing.T) {
	t.Helper()
	if _, err := b.srv.Submit(oneItem("inflight")); err != nil {
		t.Fatal(err)
	}
	<-b.started
	for i := 0; i < b.srv.QueueCapacity(); i++ {
		if _, err := b.srv.Submit(oneItem(fmt.Sprintf("queued-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRetrierSucceedsAfterTransientOverload: a submit shed on a full queue
// must go through on a later backoff attempt once capacity frees up — the
// retry-success metric records it.
func TestRetrierSucceedsAfterTransientOverload(t *testing.T) {
	b := retryServer(t, 1)
	b.saturate(t)

	// Sleep hook: before the 2nd attempt, free the server.
	attempt := 0
	r := NewRetrier(b.srv, RetryOptions{
		MaxAttempts: 5, Seed: 1,
		Sleep: func(ctx context.Context, d time.Duration) error {
			attempt++
			if attempt == 2 {
				b.release()
				// Wait until the queued request is picked up, so a slot is
				// provably free before the next attempt.
				<-b.started
			}
			return nil
		},
	})
	tk, err := r.Submit(context.Background(), oneItem("retried"))
	if err != nil {
		t.Fatalf("retried submit failed: %v", err)
	}
	if out, _, err := tk.Wait(); err != nil || out[0] != "retried" {
		t.Fatalf("retried ticket: %v, %v", out, err)
	}
	reg := b.srv.Registry()
	if n := reg.Counter(MetricRetrySuccess).Value(); n != 1 {
		t.Fatalf("retry-success counter = %d, want 1", n)
	}
	if n := reg.Counter(MetricRetryAttempts).Value(); n < 2 {
		t.Fatalf("retry-attempts counter = %d, want >= 2", n)
	}
}

// TestRetrierGivesUpAfterMaxAttempts: persistent overload ends in
// ErrQueueFull after exactly MaxAttempts re-submissions, tallied as a
// give-up.
func TestRetrierGivesUpAfterMaxAttempts(t *testing.T) {
	b := retryServer(t, 1)
	b.saturate(t)

	slept := 0
	r := NewRetrier(b.srv, RetryOptions{
		MaxAttempts: 3, Seed: 2,
		Sleep: func(ctx context.Context, d time.Duration) error { slept++; return nil },
	})
	_, err := r.Submit(context.Background(), oneItem("doomed"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if slept != 3 {
		t.Fatalf("slept %d times, want 3", slept)
	}
	reg := b.srv.Registry()
	if n := reg.Counter(MetricRetryGiveUp).Value(); n != 1 {
		t.Fatalf("give-up counter = %d, want 1", n)
	}
	if n := reg.Counter(MetricRetryAttempts).Value(); n != 3 {
		t.Fatalf("attempts counter = %d, want 3", n)
	}
}

// TestRetrierBudget: the lifetime budget is shared across submits; once
// drained, a shed degrades to an immediate ErrRetryBudget (which still
// matches ErrQueueFull for shed handling).
func TestRetrierBudget(t *testing.T) {
	b := retryServer(t, 1)
	b.saturate(t)

	r := NewRetrier(b.srv, RetryOptions{
		MaxAttempts: 2, Budget: 3, Seed: 3,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil },
	})
	// First shed burns 2 budget (both attempts fail), second burns the last.
	if _, err := r.Submit(context.Background(), oneItem("a")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("first: %v", err)
	}
	if _, err := r.Submit(context.Background(), oneItem("b")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second: %v", err)
	}
	if got := r.Budget(); got != 0 {
		t.Fatalf("budget = %d, want 0", got)
	}
	_, err := r.Submit(context.Background(), oneItem("c"))
	if !errors.Is(err, ErrQueueFull) || err.Error() != ErrRetryBudget.Error() {
		t.Fatalf("post-budget: got %v, want ErrRetryBudget", err)
	}
}

// TestRetrierRespectsContext: an expiring caller context stops the backoff
// loop with ctx.Err(), not ErrQueueFull.
func TestRetrierRespectsContext(t *testing.T) {
	b := retryServer(t, 1)
	b.saturate(t)

	r := NewRetrier(b.srv, RetryOptions{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, Seed: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, err := r.Submit(ctx, oneItem("impatient")); err != context.DeadlineExceeded {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestRetrierJitterIsCappedAndDeterministic: backoff draws stay within
// [0, min(Base<<attempt, MaxDelay)] and two same-seeded retriers draw the
// same sleeps.
func TestRetrierJitterIsCappedAndDeterministic(t *testing.T) {
	mk := func() *Retrier[string] {
		b := retryServer(t, 1)
		b.release()
		return NewRetrier(b.srv, RetryOptions{
			BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 9})
	}
	a, b := mk(), mk()
	for attempt := 0; attempt < 12; attempt++ {
		da, db := a.jitter(attempt), b.jitter(attempt)
		if da != db {
			t.Fatalf("attempt %d: jitter diverged (%v vs %v)", attempt, da, db)
		}
		ceiling := time.Millisecond << uint(attempt)
		if ceiling > 8*time.Millisecond || ceiling <= 0 {
			ceiling = 8 * time.Millisecond
		}
		if da < 0 || da > ceiling {
			t.Fatalf("attempt %d: jitter %v outside [0, %v]", attempt, da, ceiling)
		}
	}
}

// TestRetrierRefundsBudgetOnCancelledSleep (regression): a budget
// reservation whose backoff sleep is cut short by ctx cancellation funds no
// re-submission and must be refunded — before the fix, impatient callers
// drained the shared breaker without ever retrying, so later callers were
// shed with ErrRetryBudget while the budget's worth of retries had never
// been spent against the queue.
func TestRetrierRefundsBudgetOnCancelledSleep(t *testing.T) {
	b := retryServer(t, 1)
	b.saturate(t)

	r := NewRetrier(b.srv, RetryOptions{
		MaxAttempts: 2, Budget: 5, Seed: 11,
		// Every backoff sleep is "interrupted": the reservation never turns
		// into a re-submission.
		Sleep: func(ctx context.Context, d time.Duration) error { return context.Canceled },
	})
	for i := 0; i < 20; i++ {
		if _, err := r.Submit(context.Background(), oneItem("impatient")); !errors.Is(err, context.Canceled) {
			t.Fatalf("submit %d: got %v, want context.Canceled", i, err)
		}
	}
	if got := r.Budget(); got != 5 {
		t.Fatalf("cancelled sleeps burned the budget: %d of 5 left, want all 5 refunded", got)
	}
	if got := b.srv.Registry().Counter(MetricRetryAttempts).Value(); got != 0 {
		t.Fatalf("%d re-submissions recorded, want 0 — nothing should have charged the budget", got)
	}
}

// TestRetrierSharedBudgetAccounting: the budget is one shared pool — under
// concurrent permanently-shed submits, total recorded re-submission attempts
// equal exactly the configured budget, never attempts × callers.
func TestRetrierSharedBudgetAccounting(t *testing.T) {
	b := retryServer(t, 1)
	b.saturate(t)

	const budget = 7
	r := NewRetrier(b.srv, RetryOptions{
		MaxAttempts: 3, Budget: budget, Seed: 13,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil },
	})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := r.Submit(context.Background(), oneItem("herd"))
				if !errors.Is(err, ErrQueueFull) {
					t.Errorf("got %v, want an ErrQueueFull-class shed", err)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Budget(); got != 0 {
		t.Fatalf("budget = %d after the herd, want 0", got)
	}
	if got := b.srv.Registry().Counter(MetricRetryAttempts).Value(); got != budget {
		t.Fatalf("herd spent %d re-submissions, want exactly the shared budget %d", got, budget)
	}
}
