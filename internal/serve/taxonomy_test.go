package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
)

// These tests pin the failure taxonomy of the serving path: every way a
// request can fail must surface a distinct (error, counter, audit outcome)
// triple. A shed is not an expiry, an expiry is not a decline — operators
// alert on these counters separately, so a misclassified error skews the
// taxonomy and hides the real failure mode.

// taxonomyServer builds a server with a sample-every-1 audit log and a
// single worker that blocks on the first item until release is closed —
// the standard way to hold the queue full deterministically.
func taxonomyServer(t *testing.T, queueDepth int) (*Server[int], *obs.Registry, *obs.AuditLog, chan struct{}) {
	t.Helper()
	eng, reg := testEngine(t)
	audit := obs.NewAuditLog(obs.AuditConfig{Capacity: 64, SampleEvery: 1})
	pickedUp := make(chan struct{})
	release := make(chan struct{})
	first := true
	srv := NewServer(eng, func(_ context.Context, snap *Snapshot, it *catalog.Item) int {
		if first {
			first = false
			close(pickedUp)
			<-release
		}
		return len(snap.Apply(it).FinalTypes())
	}, ServerOptions{Workers: 1, QueueDepth: queueDepth, Obs: reg, Audit: audit})
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		srv.Drain()
	})
	// Occupy the worker so queued requests stay queued.
	if _, err := srv.Submit(oneItem("blocker")); err != nil {
		t.Fatal(err)
	}
	<-pickedUp
	return srv, reg, audit, release
}

// lastAudit returns the newest decision record, failing if there is none.
func lastAudit(t *testing.T, audit *obs.AuditLog) *obs.DecisionRecord {
	t.Helper()
	recs := audit.Tail(1)
	if len(recs) != 1 {
		t.Fatalf("expected an audit record, got %d", len(recs))
	}
	return recs[0]
}

// TestTaxonomySubmitTimeExpiry: a context that is already dead at SubmitCtx
// is an expiry, not a silent rejection — it must count against
// MetricDeadlineExpired and leave an OutcomeExpired audit record carrying a
// request ID, exactly like a deadline that expires while queued.
func TestTaxonomySubmitTimeExpiry(t *testing.T) {
	srv, reg, audit, _ := taxonomyServer(t, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := srv.SubmitCtx(ctx, oneItem("dead-on-arrival"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx with dead ctx: got %v, want context.Canceled", err)
	}
	if n := reg.Counter(MetricDeadlineExpired).Value(); n != 1 {
		t.Fatalf("deadline-expired counter = %d, want 1", n)
	}
	if n := reg.Counter(MetricShed).Value(); n != 0 {
		t.Fatalf("shed counter = %d, want 0 (an expired submit is not a shed)", n)
	}
	rec := lastAudit(t, audit)
	if rec.Path != obs.PathServe || rec.Outcome != obs.OutcomeExpired {
		t.Fatalf("audit (path, outcome) = (%q, %q), want (%q, %q)",
			rec.Path, rec.Outcome, obs.PathServe, obs.OutcomeExpired)
	}
	if rec.ItemID != "dead-on-arrival" || rec.RequestID == "" {
		t.Fatalf("audit record item=%q requestID=%q: want the submitted item and a non-empty request ID", rec.ItemID, rec.RequestID)
	}
	if rec.SnapshotVersion != 0 {
		t.Fatalf("audit SnapshotVersion = %d, want 0 (no snapshot consulted)", rec.SnapshotVersion)
	}
}

// TestTaxonomyQueuedExpiry: a deadline that runs out while the request sits
// in the queue resolves the ticket with the context error, counts as
// expired, and audits OutcomeExpired.
func TestTaxonomyQueuedExpiry(t *testing.T) {
	srv, reg, audit, release := taxonomyServer(t, 8)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	tk, err := srv.SubmitCtx(ctx, oneItem("stale"))
	if err != nil {
		t.Fatal(err)
	}
	<-ctx.Done()
	close(release)
	if _, _, err := tk.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-expiry ticket: got %v, want context.DeadlineExceeded", err)
	}
	if n := reg.Counter(MetricDeadlineExpired).Value(); n != 1 {
		t.Fatalf("deadline-expired counter = %d, want 1", n)
	}
	rec := lastAudit(t, audit)
	if rec.Outcome != obs.OutcomeExpired {
		t.Fatalf("audit outcome = %q, want %q", rec.Outcome, obs.OutcomeExpired)
	}
}

// TestTaxonomyShed: a queue-full rejection is a shed — ErrQueueFull,
// MetricShed, OutcomeShed — and must not bleed into the expired bucket.
func TestTaxonomyShed(t *testing.T) {
	srv, reg, audit, _ := taxonomyServer(t, 1)

	if _, err := srv.Submit(oneItem("queued")); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Submit(oneItem("overflow"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit: got %v, want ErrQueueFull", err)
	}
	if n := reg.Counter(MetricShed).Value(); n != 1 {
		t.Fatalf("shed counter = %d, want 1", n)
	}
	if n := reg.Counter(MetricDeadlineExpired).Value(); n != 0 {
		t.Fatalf("deadline-expired counter = %d, want 0 (a shed is not an expiry)", n)
	}
	rec := lastAudit(t, audit)
	if rec.Outcome != obs.OutcomeShed || rec.ItemID != "overflow" {
		t.Fatalf("audit (outcome, item) = (%q, %q), want (%q, overflow)", rec.Outcome, rec.ItemID, obs.OutcomeShed)
	}
}

// TestTaxonomyDrainDecline: a request still queued when the shutdown drain
// deadline fires is explicitly declined — ErrDeclined, MetricDeclined,
// OutcomeDrain — never dropped and never misfiled as an expiry.
func TestTaxonomyDrainDecline(t *testing.T) {
	srv, reg, audit, release := taxonomyServer(t, 8)

	tk, err := srv.Submit(oneItem("stranded"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	<-ctx.Done()
	<-srv.abort
	close(release)
	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: got %v, want context.DeadlineExceeded", err)
	}
	if _, _, err := tk.Wait(); !errors.Is(err, ErrDeclined) {
		t.Fatalf("stranded ticket: got %v, want ErrDeclined", err)
	}
	if n := reg.Counter(MetricDeclined).Value(); n != 1 {
		t.Fatalf("declined counter = %d, want 1", n)
	}
	if n := reg.Counter(MetricDeadlineExpired).Value(); n != 0 {
		t.Fatalf("deadline-expired counter = %d, want 0 (a drain decline is not an expiry)", n)
	}
	rec := lastAudit(t, audit)
	if rec.Outcome != obs.OutcomeDrain || rec.ItemID != "stranded" {
		t.Fatalf("audit (outcome, item) = (%q, %q), want (%q, stranded)", rec.Outcome, rec.ItemID, obs.OutcomeDrain)
	}
}

// TestTaxonomyShutdownReject: a submit after shutdown is a plain rejection —
// ErrShutdown, no failure counter, no audit record (nothing was accepted).
func TestTaxonomyShutdownReject(t *testing.T) {
	eng, reg := testEngine(t)
	audit := obs.NewAuditLog(obs.AuditConfig{Capacity: 16, SampleEvery: 1})
	srv := NewServer(eng, func(_ context.Context, _ *Snapshot, _ *catalog.Item) int { return 0 },
		ServerOptions{Workers: 1, Obs: reg, Audit: audit})
	srv.Drain()
	if _, err := srv.Submit(oneItem("too-late")); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown Submit: got %v, want ErrShutdown", err)
	}
	for _, m := range []string{MetricShed, MetricDeclined, MetricDeadlineExpired} {
		if n := reg.Counter(m).Value(); n != 0 {
			t.Fatalf("%s = %d after shutdown reject, want 0", m, n)
		}
	}
	if recs := audit.Tail(1); len(recs) != 0 {
		t.Fatalf("shutdown reject left %d audit records, want 0", len(recs))
	}
}

// TestTaxonomyRetrierCtxExpiredInBackoff: a caller cancellation during the
// backoff sleep abandons the shed request — ctx error out, give-up counted,
// and the reserved budget refunded (the re-submission never happened).
func TestTaxonomyRetrierCtxExpiredInBackoff(t *testing.T) {
	srv, reg, _, _ := taxonomyServer(t, 1)
	if _, err := srv.Submit(oneItem("queued")); err != nil {
		t.Fatal(err)
	}
	r := NewRetrier(srv, RetryOptions{
		MaxAttempts: 3,
		Budget:      5,
		Sleep:       func(ctx context.Context, _ time.Duration) error { return context.Canceled },
	})
	_, err := r.Submit(context.Background(), oneItem("impatient"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("retrier Submit: got %v, want context.Canceled", err)
	}
	if n := reg.Counter(MetricRetryGiveUp).Value(); n != 1 {
		t.Fatalf("give-up counter = %d, want 1", n)
	}
	if b := r.Budget(); b != 5 {
		t.Fatalf("budget = %d after cancelled sleep, want 5 (reservation refunded)", b)
	}
}

// TestTaxonomyRetrierCtxExpiredAtResubmit pins the fixed path: the context
// expires between the backoff sleep and the re-submission, so SubmitCtx
// rejects with the context error. That is a give-up — the shed request is
// abandoned — and the rejection itself lands in the expired bucket.
func TestTaxonomyRetrierCtxExpiredAtResubmit(t *testing.T) {
	srv, reg, audit, _ := taxonomyServer(t, 1)
	if _, err := srv.Submit(oneItem("queued")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetrier(srv, RetryOptions{
		MaxAttempts: 3,
		// The sleep itself succeeds, but the caller gives up during it.
		Sleep: func(context.Context, time.Duration) error { cancel(); return nil },
	})
	_, err := r.Submit(ctx, oneItem("impatient"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("retrier Submit: got %v, want context.Canceled", err)
	}
	if n := reg.Counter(MetricRetryGiveUp).Value(); n != 1 {
		t.Fatalf("give-up counter = %d, want 1 (abandoned shed must be counted)", n)
	}
	if n := reg.Counter(MetricRetryAttempts).Value(); n != 1 {
		t.Fatalf("attempts counter = %d, want 1", n)
	}
	if n := reg.Counter(MetricDeadlineExpired).Value(); n != 1 {
		t.Fatalf("deadline-expired counter = %d, want 1 (the re-submit was rejected as expired)", n)
	}
	rec := lastAudit(t, audit)
	if rec.Outcome != obs.OutcomeExpired {
		t.Fatalf("audit outcome = %q, want %q", rec.Outcome, obs.OutcomeExpired)
	}
}

// TestTaxonomyRetryBudgetExhausted: draining the shared budget degrades a
// shed to ErrRetryBudget (still errors.Is ErrQueueFull) and counts one
// give-up.
func TestTaxonomyRetryBudgetExhausted(t *testing.T) {
	srv, reg, _, _ := taxonomyServer(t, 1)
	if _, err := srv.Submit(oneItem("queued")); err != nil {
		t.Fatal(err)
	}
	r := NewRetrier(srv, RetryOptions{
		MaxAttempts: 4,
		Budget:      1,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	_, err := r.Submit(context.Background(), oneItem("doomed"))
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("retrier Submit: got %v, want ErrRetryBudget", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("ErrRetryBudget must still match ErrQueueFull for shed handling")
	}
	if n := reg.Counter(MetricRetryGiveUp).Value(); n != 1 {
		t.Fatalf("give-up counter = %d, want 1", n)
	}
}
