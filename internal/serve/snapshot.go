// Package serve is the snapshot-isolated concurrent serving layer over the
// rule system. The paper's Chimera deployment (§3.3) classifies a continuous
// item stream while analysts and the maintenance loop concurrently add,
// tweak, disable and retire rules; serving must not stall on rule
// maintenance, and a batch in flight must see exactly one rulebase state.
//
// The package provides three pieces:
//
//   - Snapshot: the active rule set of a core.Rulebase frozen at one version
//     into immutable pre-built executors (indexed + instrumented) plus the
//     filter table. Built from a single atomic read (Rulebase.ActiveView),
//     so a snapshot can never mix two versions.
//   - Engine: publishes the current Snapshot through an atomic.Pointer, so
//     readers never take the rulebase lock. Mutations (via
//     Rulebase.Subscribe) wake a debounced async rebuild-and-swap loop;
//     Acquire is the synchronous version-cached fallback for callers that
//     need an up-to-date snapshot without Start.
//   - Server: a bounded worker pool with queue-depth backpressure (explicit
//     shed on overflow) and graceful drain on shutdown. Each request is
//     classified entirely against the snapshot current when a worker picks
//     it up — snapshot isolation: in-flight batches finish on their old
//     snapshot while a rebuild swaps the pointer underneath.
package serve

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

// Snapshot is one immutable, fully built view of a rulebase version. All
// fields are read-only after construction; a snapshot is safe for concurrent
// use by any number of readers and never observes later mutations (disabled
// rules keep firing in old snapshots — that is the isolation contract, not a
// bug: the batch that started under version v finishes under version v).
type Snapshot struct {
	version   uint64
	activeIDs []string // sorted IDs of the active rules, for audit traceability
	gate      core.Executor
	rules     core.Executor
	gateInst  *core.InstrumentedExecutor // same executor as gate
	ruleInst  *core.InstrumentedExecutor // same executor as rules
	filters   map[string]string          // target type -> filter rule ID

	// cache is the engine-owned verdict cache, attached after construction
	// (the engine outlives snapshot generations; entries self-invalidate on
	// version mismatch). Nil means uncached; read-only once attached.
	cache *VerdictCache
}

// BuildSnapshot freezes rb's active rule set into executors. The version and
// rule list come from one Rulebase.ActiveView critical section. Executors
// are instrumented into reg (obs.Default when nil) under the same series
// labels the Chimera pipeline has always used ("exec"/"gate",
// "exec"/"rules"), so per-rule telemetry accumulates across snapshot
// generations.
func BuildSnapshot(rb *core.Rulebase, reg *obs.Registry) *Snapshot {
	version, active := rb.ActiveView()
	var gateRules, classRules []*core.Rule
	filters := map[string]string{}
	ids := make([]string, 0, len(active))
	for _, r := range active {
		ids = append(ids, r.ID)
		switch r.Kind {
		case core.Gate:
			gateRules = append(gateRules, r)
		case core.Filter:
			filters[r.TargetType] = r.ID
		default:
			// Whitelist, Blacklist, AttrExists, AttrValue, TypeRestrict —
			// the classifier stage.
			classRules = append(classRules, r)
		}
	}
	sort.Strings(ids)
	ruleInst := core.NewInstrumentedExecutor(
		core.NewIndexedExecutor(classRules), reg, "exec", "rules")
	gateInst := core.NewInstrumentedExecutor(
		core.NewIndexedExecutor(gateRules), reg, "exec", "gate")
	return &Snapshot{
		version:   version,
		activeIDs: ids,
		gate:      gateInst,
		rules:     ruleInst,
		gateInst:  gateInst,
		ruleInst:  ruleInst,
		filters:   filters,
	}
}

// Version returns the rulebase logical clock this snapshot was built at.
func (s *Snapshot) Version() uint64 { return s.version }

// ActiveIDs returns the sorted IDs of the rules active in this snapshot.
// This is the traceability hook: together with the rulebase audit log it
// proves every verdict came from exactly one rulebase state (the race tests
// replay the audit log against it). The returned slice is the caller's own
// copy — mutating it cannot corrupt the shared immutable snapshot.
func (s *Snapshot) ActiveIDs() []string {
	return append([]string(nil), s.activeIDs...)
}

// Gate returns the Gate-Keeper executor (Gate rules only).
func (s *Snapshot) Gate() core.Executor { return s.gate }

// Rules returns the classifier executor (whitelist, blacklist, attribute and
// type-restrict rules).
func (s *Snapshot) Rules() core.Executor { return s.rules }

// RuleTelemetry exposes the classifier executor's telemetry decorator (for
// health reports over this snapshot's lifetime).
func (s *Snapshot) RuleTelemetry() *core.InstrumentedExecutor { return s.ruleInst }

// Filters returns the active Filter table (target type → filter rule ID) as
// the caller's own copy — a mutation cannot corrupt the shared immutable
// snapshot. Hot paths that only look up one type should use FilterFor, which
// allocates nothing.
func (s *Snapshot) Filters() map[string]string {
	out := make(map[string]string, len(s.filters))
	for k, v := range s.filters {
		out[k] = v
	}
	return out
}

// FilterFor returns the filter rule ID suppressing the given target type, if
// any — the allocation-free per-item lookup the classify path uses.
func (s *Snapshot) FilterFor(targetType string) (ruleID string, filtered bool) {
	ruleID, filtered = s.filters[targetType]
	return ruleID, filtered
}

// NumFilters returns the number of active Filter rules.
func (s *Snapshot) NumFilters() int { return len(s.filters) }

// Apply evaluates the classifier rules against one item — a convenience for
// callers that serve verdicts directly rather than full pipeline decisions.
func (s *Snapshot) Apply(it *catalog.Item) *core.Verdict { return s.rules.Apply(it) }

// Cache returns the verdict cache attached to this snapshot's engine, or nil
// when serving uncached.
func (s *Snapshot) Cache() *VerdictCache { return s.cache }

// ApplyCached evaluates the classifier rules against one item through the
// engine's verdict cache: a hit returns the verdict memoized for (the item's
// fingerprint, this snapshot's version) — byte-equal to a fresh Apply, since
// verdicts are immutable and the key pins both the classification input and
// the exact rulebase version — and concurrent misses on one fingerprint
// coalesce into a single evaluation. Identical to Apply when no cache is
// configured.
//
// Note the telemetry trade: a cache hit skips the instrumented executor, so
// per-rule fired/selectivity telemetry counts evaluations, not servings.
func (s *Snapshot) ApplyCached(it *catalog.Item) *core.Verdict {
	if s.cache == nil {
		return s.rules.Apply(it)
	}
	v, _ := s.cache.Do(it.Fingerprint(), s.version, func() *core.Verdict {
		return s.rules.Apply(it)
	})
	return v
}

// ApplyBatch evaluates the classifier rules against a whole batch through
// the snapshot's batch-inverted matcher (see core.BatchMatcher), returning
// verdicts positionally aligned with items and equivalent to per-item Apply.
// This is the default high-throughput classification path; single-item Apply
// remains the reference path.
func (s *Snapshot) ApplyBatch(items []*catalog.Item, workers int) []*core.Verdict {
	return s.ruleInst.ApplyBatch(items, workers)
}

// ApplyBatchCached is ApplyBatch through the verdict cache: cached verdicts
// are filled in directly and only the misses go through the batch-inverted
// matcher (as one sub-batch), whose verdicts are then inserted for the next
// round. Positionally aligned with items and verdict-equivalent to
// ApplyBatch; identical to it when no cache is configured. The batch path
// does its own miss collection instead of per-item single-flight — the batch
// is the coalescing unit.
func (s *Snapshot) ApplyBatchCached(items []*catalog.Item, workers int) []*core.Verdict {
	if s.cache == nil {
		return s.ruleInst.ApplyBatch(items, workers)
	}
	out := make([]*core.Verdict, len(items))
	var missIdx []int
	var miss []*catalog.Item
	for i, it := range items {
		if v, ok := s.cache.Get(it.Fingerprint(), s.version); ok {
			out[i] = v
		} else {
			missIdx = append(missIdx, i)
			miss = append(miss, it)
		}
	}
	if len(miss) > 0 {
		vs := s.ruleInst.ApplyBatch(miss, workers)
		for k, i := range missIdx {
			out[i] = vs[k]
			s.cache.Put(miss[k].Fingerprint(), s.version, vs[k])
		}
	}
	return out
}

// GateApplyBatch evaluates the Gate-Keeper rules against a whole batch,
// batch-inverted, aligned with items.
func (s *Snapshot) GateApplyBatch(items []*catalog.Item, workers int) []*core.Verdict {
	return s.gateInst.ApplyBatch(items, workers)
}
