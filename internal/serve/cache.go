package serve

import (
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Metric families recorded by the verdict cache.
const (
	// MetricCacheHits / MetricCacheMisses count lookups that returned a
	// cached verdict vs lookups that had to evaluate. Together with
	// MetricCacheCoalesced they partition all cached-path lookups.
	MetricCacheHits   = "serve_cache_hits_total"
	MetricCacheMisses = "serve_cache_misses_total"
	// MetricCacheCoalesced counts lookups that neither hit nor evaluated:
	// they joined an identical in-flight evaluation (single-flight) and
	// shared its result.
	MetricCacheCoalesced = "serve_cache_coalesced_total"
	// MetricCacheEvictions counts entries dropped by LRU capacity pressure.
	MetricCacheEvictions = "serve_cache_evictions_total"
	// MetricCacheStaleDrops counts entries dropped because a lookup found
	// them cached under a different snapshot version — the implicit
	// invalidation path after a rebuild-and-swap (or a rollback: a degraded
	// engine serving the last good snapshot drops entries cached under the
	// failed newer version the same way).
	MetricCacheStaleDrops = "serve_cache_stale_drops_total"
	// MetricCacheSize is the current number of cached verdicts.
	MetricCacheSize = "serve_cache_size"
)

// CacheConfig parameterizes a VerdictCache. The zero value disables caching.
type CacheConfig struct {
	// Capacity bounds the total number of cached verdicts across all cache
	// shards. 0 (or negative) disables caching entirely.
	Capacity int
	// Shards is the number of independently locked cache segments (rounded
	// up to a power of two; default DefaultCacheShards). More shards cut
	// lock contention on the hit path at a small fixed memory cost.
	Shards int
}

// DefaultCacheShards is the default lock-shard count for a VerdictCache.
const DefaultCacheShards = 8

// cacheEntry is one cached verdict: valid only at exactly the snapshot
// version it was computed under. Entries form a per-shard LRU list.
type cacheEntry struct {
	fp         uint64
	version    uint64
	verdict    *core.Verdict
	prev, next *cacheEntry
}

// inflightCall is a single-flight slot: the first goroutine to miss on a
// (fingerprint, version) pair evaluates; concurrent lookups for the same
// pair park on done and share the result.
type inflightCall struct {
	version uint64
	done    chan struct{}
	verdict *core.Verdict
	waiters int // parked lookups (under the shard lock); coalesced on completion
}

// cacheShard is one independently locked segment: an intrusive LRU list over
// a fingerprint-keyed map plus the segment's in-flight table. At most one
// entry per fingerprint is kept — a version bump replaces, never accretes —
// so memory is bounded by capacity regardless of rulebase churn.
type cacheShard struct {
	mu         sync.Mutex
	entries    map[uint64]*cacheEntry
	head, tail *cacheEntry // LRU order: head is most recent
	cap        int
	inflight   map[uint64]*inflightCall
}

// VerdictCache memoizes classifier verdicts keyed by (item fingerprint,
// snapshot version). It is the serving layer's answer to the paper's skewed
// re-submission traffic: under a stable rulebase version the Zipf head of the
// catalog is classified once and served from memory thereafter.
//
// Correctness rests on three invariants:
//
//   - verdicts are immutable after evaluation (the executor contract), so a
//     cached *core.Verdict can be shared by any number of readers and its
//     Explain() output is byte-equal to a fresh evaluation's;
//   - an entry is returned only when its snapshot version matches the
//     caller's exactly. A mismatch drops the entry on the spot (counted in
//     serve_cache_stale_drops_total), which makes invalidation implicit in
//     the version bump — and makes rollback safe: a degraded engine serving
//     the last good snapshot can never be answered from entries cached under
//     the failed newer version, in either direction;
//   - concurrent misses on the same (fingerprint, version) coalesce: one
//     evaluates, the rest wait and share (single-flight), so a thundering
//     herd on a hot item costs one evaluation.
//
// The cache is sharded by fingerprint low bits; shards never share locks.
// A nil *VerdictCache is valid and means "uncached" (every Do evaluates).
type VerdictCache struct {
	shards []*cacheShard
	mask   uint64

	hits       *obs.Counter
	misses     *obs.Counter
	coalesced  *obs.Counter
	evictions  *obs.Counter
	staleDrops *obs.Counter
	size       *obs.Gauge
}

// NewVerdictCache builds a cache from cfg, registering its metrics in reg
// (obs.Default when nil). Returns nil — a valid, always-miss cache — when
// cfg.Capacity <= 0, so callers can wire the config through unconditionally.
func NewVerdictCache(cfg CacheConfig, reg *obs.Registry) *VerdictCache {
	if cfg.Capacity <= 0 {
		return nil
	}
	if reg == nil {
		reg = obs.Default()
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultCacheShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	if pow > cfg.Capacity {
		// Never let sharding zero out per-shard capacity.
		pow = 1
		for pow*2 <= cfg.Capacity {
			pow *= 2
		}
	}
	c := &VerdictCache{
		shards:     make([]*cacheShard, pow),
		mask:       uint64(pow - 1),
		hits:       reg.Counter(MetricCacheHits),
		misses:     reg.Counter(MetricCacheMisses),
		coalesced:  reg.Counter(MetricCacheCoalesced),
		evictions:  reg.Counter(MetricCacheEvictions),
		staleDrops: reg.Counter(MetricCacheStaleDrops),
		size:       reg.Gauge(MetricCacheSize),
	}
	reg.Help(MetricCacheHits, "verdict cache hits (exact snapshot-version match)")
	reg.Help(MetricCacheMisses, "verdict cache misses (evaluated and inserted)")
	reg.Help(MetricCacheCoalesced, "lookups that joined an in-flight evaluation (single-flight)")
	reg.Help(MetricCacheEvictions, "cached verdicts evicted by LRU capacity pressure")
	reg.Help(MetricCacheStaleDrops, "cached verdicts dropped on snapshot-version mismatch")
	reg.Help(MetricCacheSize, "cached verdicts currently resident")
	per := cfg.Capacity / pow
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			entries:  make(map[uint64]*cacheEntry),
			cap:      per,
			inflight: make(map[uint64]*inflightCall),
		}
	}
	return c
}

// Capacity returns the total entry budget across shards (0 for nil).
func (c *VerdictCache) Capacity() int {
	if c == nil {
		return 0
	}
	return len(c.shards) * c.shards[0].cap
}

// Len returns the number of currently cached verdicts (0 for nil).
func (c *VerdictCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time counter snapshot (see VerdictCache.Stats).
type CacheStats struct {
	Hits, Misses, Coalesced int64
	Evictions, StaleDrops   int64
	Size, Capacity          int
}

// Stats snapshots the cache counters. Safe on a nil cache (all zero).
func (c *VerdictCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:       c.hits.Value(),
		Misses:     c.misses.Value(),
		Coalesced:  c.coalesced.Value(),
		Evictions:  c.evictions.Value(),
		StaleDrops: c.staleDrops.Value(),
		Size:       c.Len(),
		Capacity:   c.Capacity(),
	}
}

// HitRate returns hits/(hits+misses+coalesced), or 0 before any lookups.
// Coalesced lookups count toward the denominator but not as hits: they did
// not evaluate, but they did wait on an evaluation.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Get returns the verdict cached for (fp, version), if any. A resident entry
// under a different version is dropped (stale) and reported as a miss. Used
// by the batch path, which collects misses and evaluates them together; the
// single-item path should use Do.
func (c *VerdictCache) Get(fp, version uint64) (*core.Verdict, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shards[fp&c.mask]
	sh.mu.Lock()
	if e, ok := sh.entries[fp]; ok {
		if e.version == version {
			sh.moveToFront(e)
			sh.mu.Unlock()
			c.hits.Inc()
			return e.verdict, true
		}
		sh.unlink(e)
		delete(sh.entries, fp)
		sh.mu.Unlock()
		c.staleDrops.Inc()
		c.size.Add(-1)
		c.misses.Inc()
		return nil, false
	}
	sh.mu.Unlock()
	c.misses.Inc()
	return nil, false
}

// Put inserts (or replaces) the verdict for (fp, version), evicting the
// least-recently-used entry when the shard is full. No-op on nil.
func (c *VerdictCache) Put(fp, version uint64, v *core.Verdict) {
	if c == nil {
		return
	}
	sh := c.shards[fp&c.mask]
	sh.mu.Lock()
	evicted, grew := sh.insert(fp, version, v)
	sh.mu.Unlock()
	if evicted {
		c.evictions.Inc()
		c.size.Add(-1)
	}
	if grew {
		c.size.Add(1)
	}
}

// Do returns the verdict for (fp, version), evaluating via compute on a
// miss. cached reports whether the result came from the cache or from an
// in-flight evaluation started by another goroutine (single-flight); when
// false, this call ran compute itself and inserted the result.
//
// On a nil cache, Do simply runs compute.
func (c *VerdictCache) Do(fp, version uint64, compute func() *core.Verdict) (v *core.Verdict, cached bool) {
	if c == nil {
		return compute(), false
	}
	sh := c.shards[fp&c.mask]
	sh.mu.Lock()
	if e, ok := sh.entries[fp]; ok {
		if e.version == version {
			sh.moveToFront(e)
			sh.mu.Unlock()
			c.hits.Inc()
			return e.verdict, true
		}
		// Cached under another snapshot version: a later version after a
		// swap, or a newer failed version after a rollback. Either way the
		// entry must never be served at this version — drop it now.
		sh.unlink(e)
		delete(sh.entries, fp)
		c.staleDrops.Inc()
		c.size.Add(-1)
	}
	if call, ok := sh.inflight[fp]; ok && call.version == version {
		call.waiters++
		sh.mu.Unlock()
		<-call.done
		c.coalesced.Inc()
		return call.verdict, true
	}
	// An in-flight call for the same fingerprint at a *different* version
	// (a rebuild raced the lookup) is left alone: this goroutine evaluates
	// unshared rather than serve a cross-version result.
	call := &inflightCall{version: version, done: make(chan struct{})}
	register := sh.inflight[fp] == nil
	if register {
		sh.inflight[fp] = call
	}
	sh.mu.Unlock()
	c.misses.Inc()

	defer func() {
		// Publish before unparking waiters even if compute panicked (the
		// verdict is then nil and the panic propagates to this caller only
		// after waiters are released).
		sh.mu.Lock()
		if register && sh.inflight[fp] == call {
			delete(sh.inflight, fp)
		}
		var evicted, grew bool
		if call.verdict != nil {
			evicted, grew = sh.insert(fp, version, call.verdict)
		}
		sh.mu.Unlock()
		if evicted {
			c.evictions.Inc()
			c.size.Add(-1)
		}
		if grew {
			c.size.Add(1)
		}
		close(call.done)
	}()
	call.verdict = compute()
	return call.verdict, false
}

// insert adds or replaces the entry for fp under sh.mu. It reports whether
// an LRU eviction occurred and whether the entry count grew.
func (sh *cacheShard) insert(fp, version uint64, v *core.Verdict) (evicted, grew bool) {
	if e, ok := sh.entries[fp]; ok {
		e.version, e.verdict = version, v
		sh.moveToFront(e)
		return false, false
	}
	if len(sh.entries) >= sh.cap {
		lru := sh.tail
		sh.unlink(lru)
		delete(sh.entries, lru.fp)
		evicted = true
	}
	e := &cacheEntry{fp: fp, version: version, verdict: v}
	sh.entries[fp] = e
	sh.pushFront(e)
	return evicted, true
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
