package serve

// The sharded chaos harness (run under -race in verify.sh/CI): one shard is
// made pathological — every handler invocation stalled via the fault
// injector's targeted shard stalls AND every snapshot rebuild failing — while
// concurrent clients keep scattering batches and a mutator churns the
// rulebase. The isolation contract under assault:
//
//   - the stalled shard degrades and sheds, but every ticket touching it
//     still resolves (with served items or explicit per-item errors);
//   - the healthy shards' key ranges never feel it: zero sheds, zero
//     failures, not degraded — one bad shard costs its own keys, nothing
//     else.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func TestShardedChaosStallIsolatesOneShard(t *testing.T) {
	const (
		shards  = 4
		target  = 2
		clients = 3
		rounds  = 15
	)
	rb := core.NewRulebase()
	var ids []string
	for i := 0; i < 10; i++ {
		r, err := core.NewWhitelist(fmt.Sprintf("widget%d", i), fmt.Sprintf("type-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		id, err := rb.Add(r, "chaos")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	inj := faultinject.New(faultinject.Config{
		Seed:        77,
		ShardStallP: 1.0, ShardStall: 2 * time.Millisecond, ShardTarget: target,
	})
	reg := obs.NewRegistry()
	srv := NewShardedServer(rb, func(ctx context.Context, snap *Snapshot, it *catalog.Item) string {
		if d := inj.ShardDelay(ShardFromContext(ctx)); d > 0 {
			time.Sleep(d)
		}
		return snap.Apply(it).Explain()
	}, ShardedOptions{
		Shards: shards, RouteKey: routeByID, Workers: 1, QueueDepth: 1,
		Debounce: 100 * time.Microsecond, Obs: reg,
	})
	defer srv.Close()
	// Every rebuild on the target shard fails: it must pin its stale
	// snapshot and flag degraded; nobody else may.
	srv.Engine(target).SetRebuildFault(func() (time.Duration, error) {
		return 0, errSimRebuild
	})

	// A mutator churns the rulebase so rebuilds (and the target's rebuild
	// failures) actually happen during the run.
	stop := make(chan struct{})
	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[i%len(ids)]
			if i%2 == 0 {
				_ = rb.Disable(id, "chaos", "churn")
			} else {
				_ = rb.Enable(id, "chaos", "churn")
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Healthy-shard clients submit synchronously (submit → wait → next), so
	// with a dedicated worker per shard their queues can never overflow: any
	// shed on a healthy shard is an isolation leak, not scheduling noise.
	// The stalled shard's client bursts, forcing sheds there.
	var wg sync.WaitGroup
	healthyFailures := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			healthy := []int{0, 1, 3}[c%3]
			items := itemsForShard(t, srv, healthy, 4)
			for round := 0; round < rounds; round++ {
				tk, err := srv.Submit(items)
				if err != nil {
					healthyFailures[c] = err
					return
				}
				if res := tk.Wait(); res.Err() != nil {
					healthyFailures[c] = res.Err()
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	var stalledSubmitted, stalledServed, stalledFailed int
	go func() {
		defer wg.Done()
		items := itemsForShard(t, srv, target, 3)
		var tickets []*ShardedTicket[string]
		for round := 0; round < rounds; round++ {
			tk, err := srv.Submit(items)
			if err != nil {
				t.Errorf("stalled-shard submit %d: %v", round, err)
				continue
			}
			stalledSubmitted += len(items)
			tickets = append(tickets, tk)
		}
		for _, tk := range tickets {
			res := tk.Wait()
			stalledServed += res.Served
			stalledFailed += res.Failed
			for i, e := range res.Errs {
				if e == nil {
					continue
				}
				if res.ShardOf[i] != target {
					t.Errorf("failure %v attributed to shard %d, only %d is stalled", e, res.ShardOf[i], target)
				}
				if !errors.Is(e, ErrQueueFull) {
					t.Errorf("stalled shard failed an item with %v, want ErrQueueFull", e)
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	mwg.Wait()

	for c, err := range healthyFailures {
		if err != nil {
			t.Fatalf("healthy-shard client %d failed: %v — stall leaked across shards", c, err)
		}
	}
	if stalledServed+stalledFailed != stalledSubmitted {
		t.Fatalf("stalled shard accounting leak: %d served + %d failed != %d submitted",
			stalledServed, stalledFailed, stalledSubmitted)
	}
	if stalledFailed == 0 {
		t.Fatal("stalled shard never shed — the chaos exercised nothing")
	}

	// Degradation is confined to the target: its failing rebuilds flag it
	// (poll briefly — the rebuild loop is async), everyone else stays clean.
	deadline := time.Now().Add(2 * time.Second)
	for !srv.Engine(target).Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("target shard never degraded despite failing every rebuild")
		}
		_ = rb.Disable(ids[0], "chaos", "nudge")
		_ = rb.Enable(ids[0], "chaos", "nudge")
		time.Sleep(time.Millisecond)
	}
	if !srv.Degraded() {
		t.Fatal("tier-level Degraded() missed the degraded shard")
	}
	for _, sd := range []int{0, 1, 3} {
		if srv.Engine(sd).Degraded() {
			t.Fatalf("healthy shard %d degraded — rebuild fault leaked across shards", sd)
		}
		if got := reg.Counter(MetricShardShed, "shard", strconv.Itoa(sd)).Value(); got != 0 {
			t.Fatalf("healthy shard %d shed %d items — overload leaked across shards", sd, got)
		}
	}
	if got := reg.Counter(MetricShardShed, "shard", strconv.Itoa(target)).Value(); got == 0 {
		t.Fatal("stalled shard's shed counter is zero despite failures")
	}
	if cnt := inj.Counts()["shard_stall"]; cnt == 0 {
		t.Fatal("injector never fired a shard stall")
	}
}
