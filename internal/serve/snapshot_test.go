package serve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// buildFilterSnapshot makes a snapshot with one whitelist and one filter
// rule, so both ActiveIDs and the filter table are non-empty.
func buildFilterSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	rb := core.NewRulebase()
	w, err := core.NewWhitelist("widget", "gadget")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(w, "test"); err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFilter("gadget")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(f, "test"); err != nil {
		t.Fatal(err)
	}
	return BuildSnapshot(rb, obs.NewRegistry())
}

// TestActiveIDsReturnsCopy is the regression test for the shared-slice leak:
// a caller sorting, truncating or overwriting the returned IDs must not
// corrupt what a second reader of the same immutable snapshot sees.
func TestActiveIDsReturnsCopy(t *testing.T) {
	snap := buildFilterSnapshot(t)
	first := snap.ActiveIDs()
	if len(first) != 2 {
		t.Fatalf("want 2 active IDs, got %v", first)
	}
	first[0] = "mutated-by-caller"
	first = first[:1]

	second := snap.ActiveIDs()
	if len(second) != 2 {
		t.Fatalf("second reader sees truncated IDs: %v", second)
	}
	for _, id := range second {
		if id == "mutated-by-caller" {
			t.Fatalf("second reader sees caller mutation: %v", second)
		}
	}
}

// TestFiltersReturnsCopy: mutating the returned filter table must not affect
// a second reader, and FilterFor must keep answering from the intact
// internal table.
func TestFiltersReturnsCopy(t *testing.T) {
	snap := buildFilterSnapshot(t)
	first := snap.Filters()
	if len(first) != 1 {
		t.Fatalf("want 1 filter, got %v", first)
	}
	delete(first, "gadget")
	first["sprocket"] = "bogus"

	second := snap.Filters()
	if _, ok := second["gadget"]; !ok {
		t.Fatalf("second reader lost the gadget filter: %v", second)
	}
	if _, ok := second["sprocket"]; ok {
		t.Fatalf("second reader sees caller insertion: %v", second)
	}
	if _, filtered := snap.FilterFor("gadget"); !filtered {
		t.Fatal("FilterFor lost the gadget filter after caller mutation")
	}
	if _, filtered := snap.FilterFor("sprocket"); filtered {
		t.Fatal("FilterFor sees caller insertion")
	}
	if snap.NumFilters() != 1 {
		t.Fatalf("NumFilters = %d, want 1", snap.NumFilters())
	}
}
