package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

// explainHandler is the canonical sharded test handler: the verdict's
// explanation string, so equivalence checks are byte-level.
func explainHandler(_ context.Context, snap *Snapshot, it *catalog.Item) string {
	return snap.Apply(it).Explain()
}

// routeByID routes on the item ID — lets tests aim items at chosen shards.
func routeByID(it *catalog.Item) string { return it.ID }

// itemsForShard fabricates n items that all route to the given shard under
// routeByID on srv's router.
func itemsForShard[R any](t *testing.T, srv *ShardedServer[R], shard, n int) []*catalog.Item {
	t.Helper()
	var out []*catalog.Item
	for i := 0; len(out) < n; i++ {
		id := fmt.Sprintf("aim-%d-%d", shard, i)
		if srv.Router().ShardFor(id) == shard {
			out = append(out, &catalog.Item{ID: id, Attrs: map[string]string{"Title": "acme widget"}})
		}
		if i > 100000 {
			t.Fatalf("could not fabricate %d items for shard %d", n, shard)
		}
	}
	return out
}

// TestShardedEquivalenceProperty (satellite): for any seeded catalog batch
// and rule population, the sharded scatter-gather verdicts are byte-identical
// to a single Engine's snapshot AND to the core batch-inverted matcher over
// the same active rules. Sharding partitions load, never semantics.
func TestShardedEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cat := catalog.New(catalog.Config{Seed: seed, NumTypes: 25})
		rb := buildPropertyRulebase(t, cat, seed)
		items := cat.GenerateBatch(catalog.BatchSpec{Size: 60, Epoch: int(seed % 3)})

		single := BuildSnapshot(rb, obs.NewRegistry())
		bm := core.NewBatchMatcher(core.NewRuleIndex(rb.Active(
			core.Whitelist, core.Blacklist, core.AttrExists, core.AttrValue,
			core.TypeRestrict)))
		batch := bm.MatchBatch(items, 2)

		srv := NewShardedServer(rb, explainHandler, ShardedOptions{
			Shards: 1 + int(seed%5), Obs: obs.NewRegistry(),
		})
		defer srv.Close()
		tk, err := srv.Submit(items)
		if err != nil {
			t.Fatalf("seed %d: submit: %v", seed, err)
		}
		res := tk.Wait()
		if res.Err() != nil || res.Served != len(items) {
			t.Fatalf("seed %d: gather failed: %v (served %d/%d)", seed, res.Err(), res.Served, len(items))
		}
		for i, it := range items {
			want := single.Apply(it).Explain()
			if res.Results[i] != want {
				t.Logf("seed %d item %d: sharded %q != engine %q", seed, i, res.Results[i], want)
				return false
			}
			if got := batch[i].Explain(); got != want {
				t.Logf("seed %d item %d: batch matcher %q != engine %q", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedMergePreservesOrderAndRouting: the gather is positionally
// aligned with the submitted batch and ShardOf agrees with the router.
func TestShardedMergePreservesOrderAndRouting(t *testing.T) {
	rb := core.NewRulebase()
	r, err := core.NewWhitelist("widget", "gadget")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(r, "test"); err != nil {
		t.Fatal(err)
	}
	srv := NewShardedServer(rb, func(_ context.Context, _ *Snapshot, it *catalog.Item) string {
		return "saw:" + it.ID
	}, ShardedOptions{Shards: 4, RouteKey: routeByID, Obs: obs.NewRegistry()})
	defer srv.Close()

	var items []*catalog.Item
	for i := 0; i < 40; i++ {
		items = append(items, &catalog.Item{ID: strconv.Itoa(i), Attrs: map[string]string{"Title": "widget"}})
	}
	tk, err := srv.Submit(items)
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Wait()
	if res.Err() != nil {
		t.Fatalf("gather error: %v", res.Err())
	}
	fanout := map[int]bool{}
	for i, it := range items {
		if want := "saw:" + it.ID; res.Results[i] != want {
			t.Fatalf("position %d holds %q, want %q — merge lost input order", i, res.Results[i], want)
		}
		if want := srv.ShardFor(it); res.ShardOf[i] != want {
			t.Fatalf("item %s reported shard %d, router says %d", it.ID, res.ShardOf[i], want)
		}
		fanout[res.ShardOf[i]] = true
	}
	if len(fanout) < 2 {
		t.Fatalf("40 distinct keys landed on %d shard(s) — test exercises no scatter", len(fanout))
	}
	if got := srv.Registry().Counter(MetricScatterBatches).Value(); got != 1 {
		t.Fatalf("scatter batch counter = %d, want 1", got)
	}
	if got := srv.Registry().Counter(MetricScatterItems).Value(); got != 40 {
		t.Fatalf("scatter item counter = %d, want 40", got)
	}
}

// TestShardedPartialFailureIsolatesShard: a stalled, overflowing shard fails
// only its own items — the rest of the batch serves, the gather reports
// ErrPartial, and the shed lands on the stalled shard's counter alone.
func TestShardedPartialFailureIsolatesShard(t *testing.T) {
	rb := core.NewRulebase()
	r, err := core.NewWhitelist("widget", "gadget")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(r, "test"); err != nil {
		t.Fatal(err)
	}
	const target = 1
	gate := make(chan struct{})
	pickedUp := make(chan struct{}, 64)
	srv := NewShardedServer(rb, func(ctx context.Context, _ *Snapshot, it *catalog.Item) string {
		if ShardFromContext(ctx) == target {
			pickedUp <- struct{}{}
			<-gate
		}
		return it.ID
	}, ShardedOptions{Shards: 3, RouteKey: routeByID, Workers: 1, QueueDepth: 1, Obs: obs.NewRegistry()})
	defer srv.Close()

	// Occupy the target shard: one in the worker, one in the queue.
	busy, err := srv.Submit(itemsForShard(t, srv, target, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-pickedUp
	queued, err := srv.Submit(itemsForShard(t, srv, target, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Parts are submitted to shards asynchronously: wait until the second
	// request actually occupies the queue slot, or the mixed batch below
	// could take it instead (and then block on the gate we only open after
	// its Wait — a deadlock, not a shed).
	depth := srv.ShardRegistry(target).Gauge(MetricQueueDepth)
	for wait := time.Now().Add(5 * time.Second); depth.Value() != 1; {
		if time.Now().After(wait) {
			t.Fatal("queued request never reached the target shard's queue")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A mixed batch: the target shard's slice must shed, the others serve.
	items := append(itemsForShard(t, srv, 0, 3), itemsForShard(t, srv, target, 2)...)
	items = append(items, itemsForShard(t, srv, 2, 3)...)
	tk, err := srv.Submit(items)
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Wait()
	if !errors.Is(res.Err(), ErrPartial) {
		t.Fatalf("gather error = %v, want ErrPartial", res.Err())
	}
	if res.Served != 6 || res.Failed != 2 {
		t.Fatalf("served %d failed %d, want 6/2", res.Served, res.Failed)
	}
	for i := range items {
		onTarget := res.ShardOf[i] == target
		if e := res.Errs[i]; onTarget {
			if !errors.Is(e, ErrQueueFull) {
				t.Fatalf("stalled shard item %d got %v, want ErrQueueFull", i, e)
			}
		} else if e != nil {
			t.Fatalf("healthy shard %d item failed: %v", res.ShardOf[i], e)
		}
	}
	if got := srv.Registry().Counter(MetricShardShed, "shard", strconv.Itoa(target)).Value(); got != 2 {
		t.Fatalf("target shard shed counter = %d, want 2", got)
	}
	for _, sd := range []int{0, 2} {
		if got := srv.Registry().Counter(MetricShardShed, "shard", strconv.Itoa(sd)).Value(); got != 0 {
			t.Fatalf("healthy shard %d shed counter = %d, want 0", sd, got)
		}
	}
	if got := srv.Registry().Counter(MetricScatterPartial).Value(); got != 1 {
		t.Fatalf("scatter partial counter = %d, want 1", got)
	}
	close(gate)
	busy.Wait()
	queued.Wait()
}

// TestShardedSubmitAfterShutdown: the tier rejects new scatters with
// ErrShutdown once Shutdown began, and Shutdown is idempotent.
func TestShardedSubmitAfterShutdown(t *testing.T) {
	rb := core.NewRulebase()
	r, _ := core.NewWhitelist("widget", "gadget")
	_, _ = rb.Add(r, "test")
	srv := NewShardedServer(rb, explainHandler, ShardedOptions{Shards: 2, Obs: obs.NewRegistry()})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := srv.Submit(oneItem("late")); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after shutdown = %v, want ErrShutdown", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestGatherResultErrSemantics: nil when clean, the uniform error when every
// item failed the same way, ErrPartial on any mix.
func TestGatherResultErrSemantics(t *testing.T) {
	clean := &GatherResult[string]{Errs: []error{nil, nil}}
	if err := clean.Err(); err != nil {
		t.Fatalf("clean gather Err = %v", err)
	}
	uniform := &GatherResult[string]{Errs: []error{ErrQueueFull, ErrQueueFull}, Failed: 2}
	if err := uniform.Err(); !errors.Is(err, ErrQueueFull) || errors.Is(err, ErrPartial) {
		t.Fatalf("uniform gather Err = %v, want ErrQueueFull", err)
	}
	mixed := &GatherResult[string]{Errs: []error{nil, ErrQueueFull}, Served: 1, Failed: 1}
	if err := mixed.Err(); !errors.Is(err, ErrPartial) {
		t.Fatalf("mixed gather Err = %v, want ErrPartial", err)
	}
	twoKinds := &GatherResult[string]{Errs: []error{ErrShutdown, ErrQueueFull}, Failed: 2}
	if err := twoKinds.Err(); !errors.Is(err, ErrPartial) {
		t.Fatalf("two-error gather Err = %v, want ErrPartial", err)
	}
}

func TestShardFromContext(t *testing.T) {
	if got := ShardFromContext(context.Background()); got != -1 {
		t.Fatalf("unsharded context reports shard %d, want -1", got)
	}
	if got := ShardFromContext(WithShard(context.Background(), 3)); got != 3 {
		t.Fatalf("WithShard roundtrip = %d, want 3", got)
	}
}

// TestShardStatusesRefreshGauges: ShardStatuses reports live per-shard state
// and pushes it into the labeled primary-registry gauges.
func TestShardStatusesRefreshGauges(t *testing.T) {
	rb := core.NewRulebase()
	r, _ := core.NewWhitelist("widget", "gadget")
	_, _ = rb.Add(r, "test")
	reg := obs.NewRegistry()
	srv := NewShardedServer(rb, explainHandler, ShardedOptions{
		Shards: 3, QueueDepth: 7, Obs: reg,
	})
	defer srv.Close()

	tk, err := srv.Submit(oneItem("one"))
	if err != nil {
		t.Fatal(err)
	}
	tk.Wait()

	sts := srv.ShardStatuses()
	if len(sts) != 3 {
		t.Fatalf("got %d statuses, want 3", len(sts))
	}
	var routed int64
	for i, st := range sts {
		if st.Shard != i {
			t.Fatalf("status %d reports shard %d", i, st.Shard)
		}
		if st.QueueCapacity != 7 {
			t.Fatalf("shard %d capacity %d, want 7", i, st.QueueCapacity)
		}
		if st.Degraded {
			t.Fatalf("healthy shard %d reports degraded", i)
		}
		if st.SnapshotVersion != rb.Version() {
			t.Fatalf("shard %d serves version %d, rulebase at %d", i, st.SnapshotVersion, rb.Version())
		}
		label := strconv.Itoa(i)
		if got := reg.Gauge(MetricShardQueueCap, "shard", label).Value(); got != 7 {
			t.Fatalf("shard %d capacity gauge %v, want 7", i, got)
		}
		if got := reg.Gauge(MetricShardVersion, "shard", label).Value(); got != float64(st.SnapshotVersion) {
			t.Fatalf("shard %d version gauge %v, want %d", i, got, st.SnapshotVersion)
		}
		routed += st.Routed
	}
	if routed != 1 {
		t.Fatalf("statuses account %d routed items, want 1", routed)
	}
}

// TestShardedRetrierRecoversTransientShed: with Retry configured, a shard's
// transient overflow is absorbed by that shard's retrier instead of surfacing
// as a shed — and the retry telemetry lands in that shard's registry.
func TestShardedRetrierRecoversTransientShed(t *testing.T) {
	rb := core.NewRulebase()
	r, _ := core.NewWhitelist("widget", "gadget")
	_, _ = rb.Add(r, "test")
	const target = 0
	gate := make(chan struct{})
	pickedUp := make(chan struct{}, 4)
	srv := NewShardedServer(rb, func(ctx context.Context, _ *Snapshot, it *catalog.Item) string {
		if ShardFromContext(ctx) == target {
			select {
			case pickedUp <- struct{}{}:
				<-gate
			default: // after release: serve straight through
			}
		}
		return it.ID
	}, ShardedOptions{
		Shards: 2, RouteKey: routeByID, Workers: 1, QueueDepth: 1, Obs: obs.NewRegistry(),
		Retry: &RetryOptions{MaxAttempts: 50, BaseDelay: 200 * time.Microsecond, MaxDelay: time.Millisecond, Seed: 9},
	})
	defer srv.Close()

	busy, err := srv.Submit(itemsForShard(t, srv, target, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-pickedUp
	queued, err := srv.Submit(itemsForShard(t, srv, target, 1))
	if err != nil {
		t.Fatal(err)
	}
	// This one overflows the stalled shard; its retrier must carry it until
	// the gate opens rather than failing the gather.
	overflow, err := srv.Submit(itemsForShard(t, srv, target, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Parts reach the shard asynchronously: hold the gate until the loser of
	// the queue-slot race has demonstrably shed and re-attempted (a fixed
	// sleep would race the runPart goroutines' scheduling).
	attempts := srv.ShardRegistry(target).Counter(MetricRetryAttempts)
	for wait := time.Now().Add(5 * time.Second); attempts.Value() == 0; {
		if time.Now().After(wait) {
			t.Fatal("no retry attempt observed while the target shard was wedged")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	for _, tk := range []*ShardedTicket[string]{busy, queued, overflow} {
		if res := tk.Wait(); res.Err() != nil {
			t.Fatalf("gather failed despite retrier: %v", res.Err())
		}
	}
	if got := srv.ShardRegistry(target).Counter(MetricRetryAttempts).Value(); got == 0 {
		t.Fatal("retrier never attempted — the test exercised nothing")
	}
	if got := srv.ShardRegistry(target).Counter(MetricRetrySuccess).Value(); got == 0 {
		t.Fatal("retrier never succeeded, yet the gather served")
	}
}
