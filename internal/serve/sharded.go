package serve

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

// Metric families recorded by the sharded serving tier. The serve_shard_*
// families carry a "shard" label, so one scrape shows every shard side by
// side; the serve_scatter_* families describe whole scatter-gather batches.
const (
	// MetricShardRouted counts items routed to each shard (label shard=N).
	MetricShardRouted = "serve_shard_routed_total"
	// MetricShardServed counts items a shard classified successfully.
	MetricShardServed = "serve_shard_served_total"
	// MetricShardShed counts items shed by a shard's full queue (retry
	// budget exhaustion included — anything errors.Is ErrQueueFull).
	MetricShardShed = "serve_shard_shed_total"
	// MetricShardExpired counts items whose caller deadline expired while
	// their sub-batch was queued on a shard.
	MetricShardExpired = "serve_shard_expired_total"
	// MetricShardDeclined counts items declined by a shard's shutdown drain.
	MetricShardDeclined = "serve_shard_declined_total"
	// MetricShardRejected counts items rejected because the shard (or the
	// whole tier) was already shut down at submit.
	MetricShardRejected = "serve_shard_rejected_total"
	// MetricShardQueueDepth / MetricShardQueueCap mirror each shard's live
	// queue state (refreshed by ShardStatuses — wire it into the health
	// provider so scrapes see fresh gauges).
	MetricShardQueueDepth = "serve_shard_queue_depth"
	MetricShardQueueCap   = "serve_shard_queue_capacity"
	// MetricShardVersion is the rulebase version each shard currently serves.
	MetricShardVersion = "serve_shard_snapshot_version"
	// MetricShardDegraded is 1 while a shard serves a stale snapshot after a
	// failed rebuild, 0 otherwise.
	MetricShardDegraded = "serve_shard_degraded"
	// MetricScatterBatches / MetricScatterItems count scatter-gather
	// submissions and their items; MetricScatterPartial counts the batches
	// that resolved with at least one failed item (partial results).
	MetricScatterBatches = "serve_scatter_batches_total"
	MetricScatterItems   = "serve_scatter_items_total"
	MetricScatterPartial = "serve_scatter_partial_total"
	// MetricScatterFanout is the per-batch histogram of shards touched.
	MetricScatterFanout = "serve_scatter_fanout"
)

// scatterFanoutBuckets covers realistic shard fan-outs (1..16+).
var scatterFanoutBuckets = []float64{1, 2, 4, 8, 16}

// RouteKeyFunc extracts the shard routing key from an item. The default is
// catalog.Item.RouteKey (the submitting vendor — the paper's tenancy axis),
// so one vendor's pathological batch congests one shard, not the tier.
type RouteKeyFunc func(*catalog.Item) string

// shardCtxKey carries the shard index a handler invocation runs on.
type shardCtxKey struct{}

// WithShard returns a context annotated with the shard index. The sharded
// server applies it before every handler call; fault injectors and tests use
// ShardFromContext to target one shard's handlers.
func WithShard(ctx context.Context, shard int) context.Context {
	return context.WithValue(ctx, shardCtxKey{}, shard)
}

// ShardFromContext returns the shard index a handler is running on, or -1
// when the context did not come through a ShardedServer.
func ShardFromContext(ctx context.Context) int {
	if v, ok := ctx.Value(shardCtxKey{}).(int); ok {
		return v
	}
	return -1
}

// ShardedOptions parameterizes a ShardedServer. Zero values take defaults.
type ShardedOptions struct {
	// Shards is the number of independent engine+server units (default 4).
	Shards int
	// Replicas is the consistent-hash virtual-node count per shard
	// (DefaultRouterReplicas when 0).
	Replicas int
	// RouteKey extracts the routing key (default catalog.Item.RouteKey).
	RouteKey RouteKeyFunc
	// Workers / QueueDepth configure each shard's server (per shard, not
	// totals; defaults follow ServerOptions: 4 workers, depth 64).
	Workers    int
	QueueDepth int
	// Debounce is each shard engine's rebuild debounce (DefaultDebounce
	// when 0; negative = immediate).
	Debounce time.Duration
	// Obs is the primary registry for the serve_shard_* / serve_scatter_*
	// families (obs.Default when nil). Each shard's engine and server write
	// their unlabeled serve_* internals into a private per-shard registry —
	// see ShardedServer.ShardRegistry — so shards never fight over one
	// gauge.
	Obs *obs.Registry
	// Audit, when non-nil, is shared by every shard server (the provenance
	// ring is concurrent-safe), so shed/drain/expired records from all
	// shards land in one tail.
	Audit *obs.AuditLog
	// Retry, when non-nil, wraps each shard's submissions in a per-shard
	// Retrier: capped backoff with full jitter on that shard's sheds, with a
	// retry budget per shard — one hot shard exhausting its budget does not
	// spend the other shards'. Seeds are decorrelated per shard.
	Retry *RetryOptions
	// Cache configures each shard engine's verdict cache (Capacity is per
	// shard). Caches are fully private to their shard — no cross-shard
	// locking — which the router makes effective: a routing key always lands
	// on the same shard, so repeat traffic re-finds its own cache. The
	// serve_cache_* counters land in each shard's private registry
	// (ShardRegistry); CacheStats rolls them up.
	Cache CacheConfig
}

// shard is one independent serving unit: engine, server, optional retrier,
// a private registry for their unlabeled internals, and the labeled
// per-shard counters in the primary registry.
type shard[R any] struct {
	idx  int
	reg  *obs.Registry
	eng  *Engine
	srv  *Server[R]
	retr *Retrier[R]

	routed   *obs.Counter
	served   *obs.Counter
	shed     *obs.Counter
	expired  *obs.Counter
	declined *obs.Counter
	rejected *obs.Counter
}

// ShardedServer is the scatter-gather serving tier: a consistent-hash router
// over N independent per-shard Engines and Servers, each with its own
// bounded queue, snapshot lifecycle, retry budget and degraded state. One
// shard's rebuild stall or overload sheds only that shard's key range; the
// rest of the tier keeps serving. Batch submissions are split by routing
// key, fanned out to the owning shards, and merged back preserving input
// order — per-item errors mark exactly the items whose shard failed them.
type ShardedServer[R any] struct {
	router *ShardRouter
	route  RouteKeyFunc
	obs    *obs.Registry
	shards []*shard[R]

	closed atomic.Bool

	scatterBatches *obs.Counter
	scatterItems   *obs.Counter
	scatterPartial *obs.Counter
	scatterFanout  *obs.Histogram
}

// NewShardedServer builds the tier over one shared rulebase: every shard
// snapshots the same rules (classification is identical on every shard —
// sharding partitions load, not semantics) but owns its snapshot lifecycle,
// so a stalled or failing rebuild degrades one shard only. Each shard's
// worker pool and async rebuild loop start immediately; the caller owns
// Shutdown/Close.
func NewShardedServer[R any](rb *core.Rulebase, h Handler[R], opts ShardedOptions) *ShardedServer[R] {
	nShards := opts.Shards
	if nShards <= 0 {
		nShards = 4
	}
	route := opts.RouteKey
	if route == nil {
		route = (*catalog.Item).RouteKey
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	s := &ShardedServer[R]{
		router:         NewShardRouter(nShards, opts.Replicas),
		route:          route,
		obs:            reg,
		shards:         make([]*shard[R], nShards),
		scatterBatches: reg.Counter(MetricScatterBatches),
		scatterItems:   reg.Counter(MetricScatterItems),
		scatterPartial: reg.Counter(MetricScatterPartial),
		scatterFanout:  reg.Histogram(MetricScatterFanout, scatterFanoutBuckets),
	}
	reg.Help(MetricShardRouted, "items routed to each shard")
	reg.Help(MetricShardServed, "items each shard classified successfully")
	reg.Help(MetricShardShed, "items shed by each shard's full queue")
	reg.Help(MetricShardExpired, "items whose deadline expired queued on each shard")
	reg.Help(MetricShardDeclined, "items declined by each shard's shutdown drain")
	reg.Help(MetricShardRejected, "items rejected after shard shutdown")
	reg.Help(MetricShardDegraded, "1 while a shard serves a stale snapshot after a failed rebuild")
	reg.Help(MetricScatterBatches, "scatter-gather batch submissions")
	reg.Help(MetricScatterPartial, "scatter batches that resolved with at least one failed item")
	for i := 0; i < nShards; i++ {
		label := strconv.Itoa(i)
		sreg := obs.NewRegistry()
		eng := NewEngine(rb, EngineOptions{Obs: sreg, Debounce: opts.Debounce, Cache: opts.Cache})
		idx := i
		wrapped := func(ctx context.Context, snap *Snapshot, it *catalog.Item) R {
			return h(WithShard(ctx, idx), snap, it)
		}
		srv := NewServer(eng, wrapped, ServerOptions{
			Workers:    opts.Workers,
			QueueDepth: opts.QueueDepth,
			Obs:        sreg,
			Audit:      opts.Audit,
		})
		sh := &shard[R]{
			idx:      i,
			reg:      sreg,
			eng:      eng,
			srv:      srv,
			routed:   reg.Counter(MetricShardRouted, "shard", label),
			served:   reg.Counter(MetricShardServed, "shard", label),
			shed:     reg.Counter(MetricShardShed, "shard", label),
			expired:  reg.Counter(MetricShardExpired, "shard", label),
			declined: reg.Counter(MetricShardDeclined, "shard", label),
			rejected: reg.Counter(MetricShardRejected, "shard", label),
		}
		if opts.Retry != nil {
			ropts := *opts.Retry
			// Decorrelate the per-shard jitter streams so shards that shed
			// together do not retry in lockstep.
			ropts.Seed = ropts.Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
			sh.retr = NewRetrier(srv, ropts)
		}
		s.shards[i] = sh
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedServer[R]) Shards() int { return len(s.shards) }

// Router returns the consistent-hash router (immutable, safe to share).
func (s *ShardedServer[R]) Router() *ShardRouter { return s.router }

// Registry returns the primary registry holding the labeled serve_shard_*
// and serve_scatter_* families.
func (s *ShardedServer[R]) Registry() *obs.Registry { return s.obs }

// Engine returns shard i's snapshot engine (fault hooks, degraded state).
func (s *ShardedServer[R]) Engine(i int) *Engine { return s.shards[i].eng }

// Server returns shard i's server (direct per-shard submission, tests).
func (s *ShardedServer[R]) Server(i int) *Server[R] { return s.shards[i].srv }

// ShardRegistry returns shard i's private registry — the unlabeled serve_*
// internals (queue depth, snapshot swaps, retry counters) of that shard.
func (s *ShardedServer[R]) ShardRegistry(i int) *obs.Registry { return s.shards[i].reg }

// CacheStats rolls up the per-shard verdict-cache counters into one tier
// total (all zero when caching is disabled). Per-shard numbers are available
// from Engine(i).Cache().Stats().
func (s *ShardedServer[R]) CacheStats() CacheStats {
	var total CacheStats
	for _, sh := range s.shards {
		st := sh.eng.Cache().Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Coalesced += st.Coalesced
		total.Evictions += st.Evictions
		total.StaleDrops += st.StaleDrops
		total.Size += st.Size
		total.Capacity += st.Capacity
	}
	return total
}

// ShardFor returns the shard that owns the item's routing key.
func (s *ShardedServer[R]) ShardFor(it *catalog.Item) int {
	return s.router.ShardFor(s.route(it))
}

// Degraded reports whether any shard is serving a stale snapshot after a
// failed rebuild. Per-shard detail comes from ShardStatuses.
func (s *ShardedServer[R]) Degraded() bool {
	for _, sh := range s.shards {
		if sh.eng.Degraded() {
			return true
		}
	}
	return false
}

// ShardStatus is one shard's live state, as reported by ShardStatuses.
type ShardStatus struct {
	Shard           int    `json:"shard"`
	QueueDepth      int    `json:"queue_depth"`
	QueueCapacity   int    `json:"queue_capacity"`
	Degraded        bool   `json:"degraded"`
	SnapshotVersion uint64 `json:"snapshot_version"`
	Routed          int64  `json:"routed"`
	Served          int64  `json:"served"`
	Shed            int64  `json:"shed"`
}

// ShardStatuses reports every shard's live state and refreshes the labeled
// per-shard gauges in the primary registry (queue depth/capacity, snapshot
// version, degraded), so wiring it into the ops health provider keeps both
// /readyz and /metrics fresh from one call.
func (s *ShardedServer[R]) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(s.shards))
	for i, sh := range s.shards {
		degraded := sh.eng.Degraded()
		st := ShardStatus{
			Shard:           i,
			QueueDepth:      int(sh.reg.Gauge(MetricQueueDepth).Value()),
			QueueCapacity:   sh.srv.QueueCapacity(),
			Degraded:        degraded,
			SnapshotVersion: sh.eng.Current().Version(),
			Routed:          sh.routed.Value(),
			Served:          sh.served.Value(),
			Shed:            sh.shed.Value(),
		}
		label := strconv.Itoa(i)
		s.obs.Gauge(MetricShardQueueDepth, "shard", label).Set(float64(st.QueueDepth))
		s.obs.Gauge(MetricShardQueueCap, "shard", label).Set(float64(st.QueueCapacity))
		s.obs.Gauge(MetricShardVersion, "shard", label).Set(float64(st.SnapshotVersion))
		deg := 0.0
		if degraded {
			deg = 1
		}
		s.obs.Gauge(MetricShardDegraded, "shard", label).Set(deg)
		out[i] = st
	}
	return out
}

// scatterPart is one shard's slice of a scatter batch and its resolution.
type scatterPart[R any] struct {
	shard int
	idx   []int // original positions of items, in submission order
	items []*catalog.Item
	out   []R
	snap  *Snapshot
	err   error
}

// GatherResult is a merged scatter-gather resolution, positionally aligned
// with the submitted items. Errs[i] is nil exactly when Results[i] is a
// valid classification; a failed shard marks only its own items. Partial
// results are the point of the sharded tier: an overloaded or draining
// shard degrades its key range, never the whole batch.
type GatherResult[R any] struct {
	// Results holds the per-item classifications (zero value where
	// Errs[i] != nil).
	Results []R
	// Errs holds the per-item failure, one of {nil, ErrQueueFull (or a
	// wrapper), ErrShutdown, ErrDeclined, a context error}.
	Errs []error
	// Snapshots names the snapshot each item was classified under (nil for
	// failed items). Items of one shard share one snapshot; shards may
	// legitimately differ in version mid-rebuild.
	Snapshots []*Snapshot
	// ShardOf records the shard each item routed to.
	ShardOf []int
	// Served and Failed count the split.
	Served, Failed int
}

// Err returns nil when every item served, the uniform error when every item
// failed with the same error, and ErrPartial otherwise.
func (g *GatherResult[R]) Err() error {
	if g.Failed == 0 {
		return nil
	}
	var uniform error
	for _, e := range g.Errs {
		if e == nil {
			return ErrPartial
		}
		if uniform == nil {
			uniform = e
		} else if !errors.Is(uniform, e) && !errors.Is(e, uniform) {
			return ErrPartial
		}
	}
	return uniform
}

// ErrPartial marks a scatter batch that resolved with a mix of served and
// failed items (see GatherResult.Errs for the per-item detail).
var ErrPartial = errors.New("serve: scatter batch partially failed")

// ShardedTicket is the caller's handle on a scatter-gather submission. Every
// part resolves exactly once (each rides a shard Server ticket, which has
// that contract), so the gather resolves exactly once too.
type ShardedTicket[R any] struct {
	s     *ShardedServer[R]
	n     int
	parts []*scatterPart[R]
	fin   chan struct{}
	once  sync.Once
	res   *GatherResult[R]
}

// Done is closed when every part resolved.
func (t *ShardedTicket[R]) Done() <-chan struct{} { return t.fin }

// Wait blocks until every part resolves and returns the merged result. It
// never returns an overall error: per-item failures are in the result
// (GatherResult.Err summarizes them). Safe to call repeatedly.
func (t *ShardedTicket[R]) Wait() *GatherResult[R] {
	<-t.fin
	t.once.Do(t.assemble)
	return t.res
}

// WaitContext is Wait with a deadline on the waiting itself: ctx expiring
// abandons this wait (the parts stay queued and still resolve; call Wait
// again to re-attach), returning ctx.Err().
func (t *ShardedTicket[R]) WaitContext(ctx context.Context) (*GatherResult[R], error) {
	select {
	case <-t.fin:
		t.once.Do(t.assemble)
		return t.res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// assemble merges the resolved parts back into submission order and records
// the per-shard outcome counters exactly once.
func (t *ShardedTicket[R]) assemble() {
	g := &GatherResult[R]{
		Results:   make([]R, t.n),
		Errs:      make([]error, t.n),
		Snapshots: make([]*Snapshot, t.n),
		ShardOf:   make([]int, t.n),
	}
	for _, p := range t.parts {
		sh := t.s.shards[p.shard]
		n := int64(len(p.items))
		if p.err != nil {
			switch {
			case errors.Is(p.err, ErrQueueFull):
				sh.shed.Add(n)
			case errors.Is(p.err, ErrShutdown):
				sh.rejected.Add(n)
			case errors.Is(p.err, ErrDeclined):
				sh.declined.Add(n)
			default: // context expiry (at submit, queued, or while retrying)
				sh.expired.Add(n)
			}
		} else {
			sh.served.Add(n)
		}
		for k, pos := range p.idx {
			g.ShardOf[pos] = p.shard
			if p.err != nil {
				g.Errs[pos] = p.err
				g.Failed++
				continue
			}
			g.Results[pos] = p.out[k]
			g.Snapshots[pos] = p.snap
			g.Served++
		}
	}
	if g.Failed > 0 {
		t.s.scatterPartial.Inc()
	}
	t.res = g
}

// Submit is SubmitCtx with a background context.
func (s *ShardedServer[R]) Submit(items []*catalog.Item) (*ShardedTicket[R], error) {
	return s.SubmitCtx(context.Background(), items)
}

// SubmitCtx scatter-gathers one batch: items are split by routing key,
// each part is submitted to its owning shard concurrently (through the
// shard's retrier when configured), and the ticket merges the verdicts back
// in input order. Submission never blocks on a full shard queue — that
// shard's items resolve with ErrQueueFull in the gather while other shards
// proceed. Errors returned here are global only: an already-expired ctx, or
// ErrShutdown after Shutdown began.
func (s *ShardedServer[R]) SubmitCtx(ctx context.Context, items []*catalog.Item) (*ShardedTicket[R], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.closed.Load() {
		return nil, ErrShutdown
	}
	ctx, _ = obs.EnsureRequestID(ctx, "scatter")
	// Partition preserving submission order within each part.
	byShard := make(map[int]*scatterPart[R], len(s.shards))
	var parts []*scatterPart[R]
	for i, it := range items {
		sd := s.router.ShardFor(s.route(it))
		p := byShard[sd]
		if p == nil {
			p = &scatterPart[R]{shard: sd}
			byShard[sd] = p
			parts = append(parts, p)
		}
		p.idx = append(p.idx, i)
		p.items = append(p.items, it)
	}
	t := &ShardedTicket[R]{s: s, n: len(items), parts: parts, fin: make(chan struct{})}
	s.scatterBatches.Inc()
	s.scatterItems.Add(int64(len(items)))
	s.scatterFanout.Observe(float64(len(parts)))
	var wg sync.WaitGroup
	for _, p := range parts {
		s.shards[p.shard].routed.Add(int64(len(p.items)))
		wg.Add(1)
		go s.runPart(ctx, p, &wg)
	}
	go func() {
		wg.Wait()
		close(t.fin)
	}()
	return t, nil
}

// runPart drives one shard's slice of a scatter batch to resolution.
func (s *ShardedServer[R]) runPart(ctx context.Context, p *scatterPart[R], wg *sync.WaitGroup) {
	defer wg.Done()
	sh := s.shards[p.shard]
	var tk *Ticket[R]
	var err error
	if sh.retr != nil {
		tk, err = sh.retr.Submit(ctx, p.items)
	} else {
		tk, err = sh.srv.SubmitCtx(ctx, p.items)
	}
	if err != nil {
		p.err = err
		return
	}
	out, snap, werr := tk.Wait()
	if werr != nil {
		p.err = werr
		return
	}
	p.out, p.snap = out, snap
}

// Shutdown stops accepting scatter submissions, shuts every shard server
// down concurrently under ctx (each drains or declines per the Server
// contract — every in-flight ticket still resolves), then closes the shard
// engines. It returns the first shard's error, if any (ctx expiry during a
// drain). Safe to call more than once.
func (s *ShardedServer[R]) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard[R]) {
			defer wg.Done()
			errs[i] = sh.srv.Shutdown(ctx)
		}(i, sh)
	}
	wg.Wait()
	for _, sh := range s.shards {
		sh.eng.Close()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close is Shutdown without a deadline: every queued request completes.
func (s *ShardedServer[R]) Close() { _ = s.Shutdown(context.Background()) }
