package social

import (
	"testing"

	"repro/internal/kb"
)

func testKB(t *testing.T) *kb.KB {
	t.Helper()
	return kb.Build(kb.SyntheticSource(7, 0))
}

func testEvents() []Event {
	return []Event{
		{
			Name:     "championship-final",
			Keywords: []string{"final", "goal", "match", "stadium", "score"},
			Entities: []string{"river city rovers", "harbor city hawks"},
		},
		{
			Name:     "award-night",
			Keywords: []string{"award", "red", "carpet", "winner", "stage"},
			Entities: []string{"taylor swift", "moonrise festival"},
		},
	}
}

func TestMentionsBasic(t *testing.T) {
	tg := NewTagger(testKB(t))
	ms := tg.Mentions("watching barack obama speak tonight")
	if len(ms) != 1 || ms[0].Entity != "barack obama" {
		t.Fatalf("mentions = %+v", ms)
	}
}

func TestOverlapDropsShorterMention(t *testing.T) {
	tg := NewTagger(testKB(t))
	// "barack obama" contains the alias "obama"; only the longer survives.
	ms := tg.Mentions("big news barack obama arrives")
	if len(ms) != 1 || ms[0].Alias != "barack obama" {
		t.Fatalf("overlap rule failed: %+v", ms)
	}
}

func TestAliasResolution(t *testing.T) {
	tg := NewTagger(testKB(t))
	ms := tg.Mentions("sf is lovely today")
	if len(ms) != 1 || ms[0].Entity != "san francisco" {
		t.Fatalf("alias mention failed: %+v", ms)
	}
}

func TestSentenceBoundaryRule(t *testing.T) {
	tg := NewTagger(testKB(t))
	// "san" ends one sentence, "francisco" begins the next: the span
	// straddles a boundary and must not be tagged.
	ms := tg.Mentions("we flew to san. francisco was the next stop")
	for _, m := range ms {
		if m.Entity == "san francisco" {
			t.Fatalf("mention straddles a sentence boundary: %+v", m)
		}
	}
	// Control: without the boundary the mention is found.
	ms = tg.Mentions("we flew to san francisco yesterday")
	if len(ms) != 1 || ms[0].Entity != "san francisco" {
		t.Fatalf("control mention missing: %+v", ms)
	}
}

func TestProfanityAndSlangRules(t *testing.T) {
	base := testKB(t)
	tg := NewTagger(base)
	// Pathological KB: an alias that collides with slang.
	tg.aliases["lol"] = []string{"league of laughs"}
	ms := tg.Mentions("lol what a day")
	for _, m := range ms {
		if m.Alias == "lol" {
			t.Fatalf("slang alias tagged: %+v", m)
		}
	}
	tg.aliases["darn"] = []string{"darn brand"}
	ms = tg.Mentions("darn that was close")
	for _, m := range ms {
		if m.Alias == "darn" {
			t.Fatalf("profanity alias tagged: %+v", m)
		}
	}
}

func TestEditorialRules(t *testing.T) {
	tg := NewTagger(testKB(t))
	tg.EditorialBlacklist["the open"] = true
	if ms := tg.Mentions("tickets for the open on sale"); len(ms) != 0 {
		t.Fatalf("editorial blacklist ignored: %+v", ms)
	}
	tg.EditorialWhitelist["rovers fc"] = "river city rovers"
	ms := tg.Mentions("rovers fc wins again")
	found := false
	for _, m := range ms {
		if m.Entity == "river city rovers" && m.Alias == "rovers fc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("editorial whitelist ignored: %+v", ms)
	}
}

func TestDisambiguationByContext(t *testing.T) {
	tg := NewTagger(testKB(t))
	// Team context: "firebirds" is in the team's signature.
	ms := tg.Mentions("phoenix fans cheer as the firebirds score")
	foundTeam := false
	for _, m := range ms {
		if m.Alias == "phoenix" {
			if m.Entity != "phoenix firebirds" {
				t.Fatalf("team context resolved to %q", m.Entity)
			}
			foundTeam = true
		}
	}
	if !foundTeam {
		t.Fatalf("ambiguous alias not tagged despite team context: %v", ms)
	}
	// City context: "arizona" is in the city's signature (via the
	// "phoenix arizona" alias).
	ms = tg.Mentions("sunny weekend in phoenix and all of arizona")
	foundCity := false
	for _, m := range ms {
		if m.Alias == "phoenix" && m.Entity == "phoenix" {
			foundCity = true
		}
	}
	if !foundCity {
		t.Fatalf("city context not resolved: %v", ms)
	}
	// No context at all: the conservative policy drops the mention.
	ms = tg.Mentions("thinking about phoenix today")
	for _, m := range ms {
		if m.Alias == "phoenix" {
			t.Fatalf("context-free ambiguous alias should be dropped: %+v", m)
		}
	}
}

func TestDisambiguationLongSpanBeatsAmbiguity(t *testing.T) {
	tg := NewTagger(testKB(t))
	// The full name is unambiguous and longest-match wins outright.
	ms := tg.Mentions("phoenix firebirds announce new coach")
	if len(ms) != 1 || ms[0].Entity != "phoenix firebirds" || ms[0].Alias != "phoenix firebirds" {
		t.Fatalf("full-name mention wrong: %+v", ms)
	}
}

func TestMonitorTagsEventTweets(t *testing.T) {
	base := testKB(t)
	m := NewMonitor(NewTagger(base), testEvents())
	tw := Tweet{Text: "goal at the stadium rovers take the final"}
	if got := m.Tag(tw); got != "championship-final" {
		t.Fatalf("tag = %q", got)
	}
	if got := m.Tag(Tweet{Text: "thinking about lunch"}); got != "" {
		t.Fatalf("background tweet displayed as %q", got)
	}
}

func TestMonitorWindowQuality(t *testing.T) {
	base := testKB(t)
	events := testEvents()
	m := NewMonitor(NewTagger(base), events)
	s := NewStream(11, base, events)
	window := s.Window(WindowOptions{Size: 1200})
	metrics := m.EvaluateWindow(window)
	for name, wm := range metrics {
		if wm.Displayed == 0 {
			t.Fatalf("event %q displayed nothing", name)
		}
		if wm.Precision < 0.85 {
			t.Fatalf("event %q precision %.3f too low", name, wm.Precision)
		}
		if wm.Recall < 0.4 {
			t.Fatalf("event %q recall %.3f too low", name, wm.Recall)
		}
	}
}

func TestScaleDownDrill(t *testing.T) {
	// The §6 drill: a decoy episode floods one event with unrelated tweets;
	// analysts scale the event down (raise its threshold); precision
	// recovers at a recall cost.
	base := testKB(t)
	events := testEvents()
	m := NewMonitor(NewTagger(base), events)
	s := NewStream(13, base, events)

	bad := s.Window(WindowOptions{Size: 1500, ConfusingEvent: "championship-final", PConfusing: 0.35})
	before := m.EvaluateWindow(bad)["championship-final"]
	if before.Precision > 0.85 {
		t.Skipf("decoy episode not strong enough: precision %.3f", before.Precision)
	}

	m.ScaleDown("championship-final", 2) // demand entity evidence, not just keywords
	after := m.EvaluateWindow(bad)["championship-final"]
	if after.Precision <= before.Precision {
		t.Fatalf("scale-down did not improve precision: %.3f → %.3f", before.Precision, after.Precision)
	}
	if after.Precision < 0.8 {
		t.Fatalf("scaled-down precision still low: %.3f", after.Precision)
	}
	if after.Recall > before.Recall {
		t.Fatalf("conservativeness should cost recall: %.3f → %.3f", before.Recall, after.Recall)
	}

	// Restore resets behaviour.
	m.Restore("championship-final")
	restored := m.EvaluateWindow(bad)["championship-final"]
	if restored.Displayed != before.Displayed {
		t.Fatalf("restore incomplete: %d vs %d displayed", restored.Displayed, before.Displayed)
	}
}

func TestDisable(t *testing.T) {
	base := testKB(t)
	m := NewMonitor(NewTagger(base), testEvents())
	m.Disable("championship-final")
	tw := Tweet{Text: "goal at the stadium rovers take the final match"}
	if got := m.Tag(tw); got == "championship-final" {
		t.Fatal("disabled event still displayed")
	}
	m.Restore("championship-final")
	if got := m.Tag(tw); got != "championship-final" {
		t.Fatalf("restore failed: %q", got)
	}
}

func TestStreamDeterminism(t *testing.T) {
	base := testKB(t)
	events := testEvents()
	a := NewStream(5, base, events).Window(WindowOptions{Size: 50})
	b := NewStream(5, base, events).Window(WindowOptions{Size: 50})
	for i := range a {
		if a[i].Text != b[i].Text || a[i].TrueEvent != b[i].TrueEvent {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestStreamGroundTruthMentions(t *testing.T) {
	base := testKB(t)
	events := testEvents()
	s := NewStream(17, base, events)
	window := s.Window(WindowOptions{Size: 500})
	withMentions := 0
	for _, tw := range window {
		if len(tw.TrueMentions) > 0 {
			withMentions++
			for _, m := range tw.TrueMentions {
				if base.Entity(m) == nil {
					t.Fatalf("ground-truth mention %q not in KB", m)
				}
			}
		}
	}
	if withMentions == 0 {
		t.Fatal("no tweets carry ground-truth mentions")
	}
}
