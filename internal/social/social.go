// Package social implements the §6 social-media substrate: the
// Kosmix-style entity tagging pipeline of [3] (mention detection against a
// KB with rule stages for overlap removal, profanity/slang blacklisting,
// sentence-boundary checks and editorial control) and a Tweetbeat-style
// event monitor [37] that displays event tweets in real time and uses rules
// to scale itself down when an event misbehaves.
package social

import (
	"sort"
	"strings"

	"repro/internal/kb"
	"repro/internal/randx"
	"repro/internal/tokenize"
)

// Tweet is one item of the synthetic stream, with simulation ground truth.
type Tweet struct {
	ID   int
	Text string
	// TrueEvent is the event the tweet is genuinely about ("" = background).
	TrueEvent string
	// TrueMentions are the canonical entity names genuinely referenced.
	TrueMentions []string
}

// Mention is a tagged entity occurrence.
type Mention struct {
	Alias  string
	Entity string
	// Start/End are token offsets (sentence markers count as tokens).
	Start, End int
}

// sentinel token injected at sentence boundaries.
const boundary = "<s>"

// tagTokens tokenizes tweet text, preserving sentence boundaries as
// sentinel tokens so the straddling rule can fire.
func tagTokens(text string) []string {
	var out []string
	for i, sentence := range strings.Split(text, ".") {
		toks := tokenize.Tokenize(sentence)
		if len(toks) == 0 {
			continue
		}
		if i > 0 && len(out) > 0 {
			out = append(out, boundary)
		}
		out = append(out, toks...)
	}
	return out
}

// Tagger is the rule-stage mention pipeline.
type Tagger struct {
	// aliases maps lower-case alias → candidate canonical entities (from
	// the KB; ambiguous aliases carry several candidates).
	aliases map[string][]string
	// signatures maps entity → context tokens (category, canonical name,
	// sibling aliases) used to disambiguate ambiguous aliases.
	signatures map[string]map[string]bool
	// Profanity and slang blacklists drop candidate mentions outright.
	Profanity map[string]bool
	Slang     map[string]bool
	// EditorialBlacklist suppresses specific alias→entity tags; the
	// editorial whitelist forces a tag even without KB support.
	EditorialBlacklist map[string]bool
	EditorialWhitelist map[string]string

	maxAliasTokens int
}

// DefaultProfanity is a small stand-in blacklist.
var DefaultProfanity = map[string]bool{"darn": true, "heck": true, "frick": true}

// DefaultSlang is a small stand-in slang list.
var DefaultSlang = map[string]bool{"lol": true, "smh": true, "imo": true, "tbh": true}

// NewTagger builds a tagger over a KB's alias index, precomputing per-entity
// context signatures for alias disambiguation.
func NewTagger(base *kb.KB) *Tagger {
	t := &Tagger{
		aliases:            base.AliasIndex(),
		signatures:         map[string]map[string]bool{},
		Profanity:          DefaultProfanity,
		Slang:              DefaultSlang,
		EditorialBlacklist: map[string]bool{},
		EditorialWhitelist: map[string]string{},
	}
	for alias, cands := range t.aliases {
		n := len(strings.Fields(alias))
		if n > t.maxAliasTokens {
			t.maxAliasTokens = n
		}
		for _, entity := range cands {
			sig := t.signatures[entity]
			if sig == nil {
				sig = map[string]bool{}
				t.signatures[entity] = sig
			}
			e := base.Entity(entity)
			if e != nil {
				for _, tok := range tokenize.Tokenize(e.Category) {
					sig[tok] = true
				}
				for _, a := range e.Aliases {
					for _, tok := range tokenize.Tokenize(a) {
						sig[tok] = true
					}
				}
			}
			for _, tok := range tokenize.Tokenize(entity) {
				sig[tok] = true
			}
		}
	}
	return t
}

// Mentions runs the tagging pipeline on a tweet's text: candidate spans are
// matched against the alias index (and editorial whitelist), then the rule
// stages apply — sentence-boundary drop, profanity/slang drop, editorial
// blacklist, and overlap resolution keeping the longest mention ("if both
// 'Barack Obama' and 'Obama' are detected, drop 'Obama'").
func (t *Tagger) Mentions(text string) []Mention {
	tokens := tagTokens(text)
	var cands []Mention
	for start := 0; start < len(tokens); start++ {
		for l := t.maxAliasTokens; l >= 1; l-- {
			end := start + l
			if end > len(tokens) {
				continue
			}
			span := tokens[start:end]
			if crosses(span) {
				continue // sentence-boundary rule
			}
			alias := strings.Join(span, " ")
			candidates := t.aliases[alias]
			if forced, ok := t.EditorialWhitelist[alias]; ok {
				candidates = []string{forced}
			}
			if len(candidates) == 0 {
				continue
			}
			if t.Profanity[alias] || t.Slang[alias] {
				continue // profanity/slang rule
			}
			if t.EditorialBlacklist[alias] {
				continue // editorial control
			}
			entity, ok := t.disambiguate(alias, candidates, tokens, start, end)
			if !ok {
				continue // ambiguous without contextual evidence: drop
			}
			cands = append(cands, Mention{Alias: alias, Entity: entity, Start: start, End: end})
		}
	}
	// Overlap rule: longest span wins; ties to the earlier span.
	sort.SliceStable(cands, func(i, j int) bool {
		li, lj := cands[i].End-cands[i].Start, cands[j].End-cands[j].Start
		if li != lj {
			return li > lj
		}
		return cands[i].Start < cands[j].Start
	})
	var out []Mention
	for _, c := range cands {
		overlap := false
		for _, kept := range out {
			if c.Start < kept.End && kept.Start < c.End {
				overlap = true
				break
			}
		}
		if !overlap {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// disambiguate picks the entity an ambiguous alias refers to by scoring
// each candidate's context signature against the rest of the tweet. Unique
// aliases resolve immediately; ties (including no contextual evidence at
// all) are dropped — the conservative editorial policy: better an untagged
// mention than a wrong link on a live page.
func (t *Tagger) disambiguate(alias string, candidates []string, tokens []string, start, end int) (string, bool) {
	if len(candidates) == 1 {
		return candidates[0], true
	}
	aliasToks := map[string]bool{}
	for _, tok := range strings.Fields(alias) {
		aliasToks[tok] = true
	}
	best, bestScore, tie := "", -1, false
	for _, cand := range candidates {
		sig := t.signatures[cand]
		score := 0
		for i, tok := range tokens {
			if i >= start && i < end {
				continue // the mention span itself is not evidence
			}
			if tok == boundary || aliasToks[tok] {
				continue
			}
			if sig[tok] {
				score++
			}
		}
		switch {
		case score > bestScore:
			best, bestScore, tie = cand, score, false
		case score == bestScore:
			tie = true
		}
	}
	if tie || bestScore <= 0 {
		return "", false
	}
	return best, true
}

func crosses(span []string) bool {
	for _, tok := range span {
		if tok == boundary {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Events and the Tweetbeat monitor
// ---------------------------------------------------------------------------

// Event is a monitored real-world event.
type Event struct {
	Name     string
	Keywords []string
	// Entities are canonical KB entity names central to the event.
	Entities []string
}

// Monitor classifies tweets into events in real time, with per-event
// conservativeness rules for scale-down.
type Monitor struct {
	Tagger *Tagger
	events map[string]*eventState
}

type eventState struct {
	event Event
	// threshold is the minimum evidence score to display a tweet.
	threshold float64
	disabled  bool
}

// baseThreshold is the default evidence score needed to display a tweet.
const baseThreshold = 2

// NewMonitor wires events to a tagger.
func NewMonitor(tagger *Tagger, events []Event) *Monitor {
	m := &Monitor{Tagger: tagger, events: map[string]*eventState{}}
	for _, e := range events {
		m.events[e.Name] = &eventState{event: e, threshold: baseThreshold}
	}
	return m
}

// score computes keyword/entity evidence of a tweet for an event: 1 per
// distinct matched keyword, 2 per mentioned event entity.
func (m *Monitor) score(e Event, tokens []string, mentions []Mention) float64 {
	tokSet := map[string]bool{}
	for _, t := range tokens {
		tokSet[t] = true
	}
	var s float64
	for _, kw := range e.Keywords {
		if tokSet[kw] {
			s++
		}
	}
	for _, mn := range mentions {
		for _, ent := range e.Entities {
			if mn.Entity == ent {
				s += 2
			}
		}
	}
	return s
}

// Tag assigns a tweet to the best-scoring active event whose score clears
// its threshold; "" means the tweet is not displayed.
func (m *Monitor) Tag(tw Tweet) string {
	tokens := tagTokens(tw.Text)
	mentions := m.Tagger.Mentions(tw.Text)
	best, bestScore := "", 0.0
	names := make([]string, 0, len(m.events))
	for n := range m.events {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st := m.events[n]
		if st.disabled {
			continue
		}
		s := m.score(st.event, tokens, mentions)
		if s >= st.threshold && s > bestScore {
			best, bestScore = n, s
		}
	}
	return best
}

// ScaleDown makes an event more conservative by raising its threshold —
// the §6 rule analysts apply when an event shows unrelated tweets.
func (m *Monitor) ScaleDown(event string, extra float64) {
	if st, ok := m.events[event]; ok {
		st.threshold += extra
	}
}

// Disable stops displaying the event entirely; Restore resets the event to
// its default state.
func (m *Monitor) Disable(event string) {
	if st, ok := m.events[event]; ok {
		st.disabled = true
	}
}

// Restore re-enables an event at the base threshold.
func (m *Monitor) Restore(event string) {
	if st, ok := m.events[event]; ok {
		st.disabled = false
		st.threshold = baseThreshold
	}
}

// WindowMetrics is per-event display quality over a tweet window.
type WindowMetrics struct {
	Displayed int
	Correct   int
	Missed    int
	Precision float64
	Recall    float64
}

// EvaluateWindow measures per-event precision/recall over a window using
// the stream's ground truth.
func (m *Monitor) EvaluateWindow(tweets []Tweet) map[string]WindowMetrics {
	out := map[string]WindowMetrics{}
	for name := range m.events {
		out[name] = WindowMetrics{}
	}
	for _, tw := range tweets {
		got := m.Tag(tw)
		if got != "" {
			wm := out[got]
			wm.Displayed++
			if got == tw.TrueEvent {
				wm.Correct++
			}
			out[got] = wm
		}
		if tw.TrueEvent != "" && got != tw.TrueEvent {
			wm := out[tw.TrueEvent]
			wm.Missed++
			out[tw.TrueEvent] = wm
		}
	}
	for name, wm := range out {
		if wm.Displayed > 0 {
			wm.Precision = float64(wm.Correct) / float64(wm.Displayed)
		}
		if wm.Correct+wm.Missed > 0 {
			wm.Recall = float64(wm.Correct) / float64(wm.Correct+wm.Missed)
		}
		out[name] = wm
	}
	return out
}

// ---------------------------------------------------------------------------
// Stream generation
// ---------------------------------------------------------------------------

// Stream generates synthetic tweets about events against a KB.
type Stream struct {
	rng    *randx.Rand
	base   *kb.KB
	events []Event
	nextID int
	filler []string
}

// NewStream builds a generator.
func NewStream(seed uint64, base *kb.KB, events []Event) *Stream {
	return &Stream{
		rng:    randx.New(seed).Split("social-stream"),
		base:   base,
		events: events,
		filler: []string{
			"just", "watching", "the", "game", "tonight", "wow", "cannot",
			"believe", "this", "so", "good", "update", "breaking", "live",
			"thread", "thoughts", "really", "big", "news", "today",
		},
	}
}

// WindowOptions shapes one generated window.
type WindowOptions struct {
	Size int
	// PEvent is the probability a tweet belongs to some event (default 0.5).
	PEvent float64
	// ConfusingEvent, when set, injects tweets that reuse this event's
	// keywords while genuinely being background chatter — the episode that
	// degrades the event's display precision.
	ConfusingEvent string
	// PConfusing is the probability of such a decoy tweet (default 0.25
	// when ConfusingEvent is set).
	PConfusing float64
}

// Window generates one batch of tweets.
func (s *Stream) Window(opts WindowOptions) []Tweet {
	if opts.PEvent == 0 {
		opts.PEvent = 0.5
	}
	if opts.ConfusingEvent != "" && opts.PConfusing == 0 {
		opts.PConfusing = 0.25
	}
	var out []Tweet
	for i := 0; i < opts.Size; i++ {
		s.nextID++
		tw := Tweet{ID: s.nextID}
		switch {
		case opts.ConfusingEvent != "" && s.rng.Bool(opts.PConfusing):
			tw.Text = s.decoyText(opts.ConfusingEvent)
		case s.rng.Bool(opts.PEvent):
			ev := s.events[s.rng.Intn(len(s.events))]
			tw.TrueEvent = ev.Name
			tw.Text, tw.TrueMentions = s.eventText(ev)
		default:
			tw.Text = s.backgroundText()
		}
		out = append(out, tw)
	}
	return out
}

func (s *Stream) eventText(ev Event) (string, []string) {
	var parts []string
	var mentions []string
	nKw := 2 + s.rng.Intn(2)
	for i := 0; i < nKw && i < len(ev.Keywords); i++ {
		parts = append(parts, ev.Keywords[s.rng.Intn(len(ev.Keywords))])
	}
	if len(ev.Entities) > 0 && s.rng.Bool(0.8) {
		ent := ev.Entities[s.rng.Intn(len(ev.Entities))]
		mentions = append(mentions, ent)
		// Refer by alias or full name.
		name := ent
		if e := s.base.Entity(ent); e != nil && len(e.Aliases) > 0 && s.rng.Bool(0.5) {
			name = e.Aliases[s.rng.Intn(len(e.Aliases))]
		}
		parts = append(parts, name)
	}
	for i := 0; i < 3; i++ {
		parts = append(parts, s.filler[s.rng.Intn(len(s.filler))])
	}
	if s.rng.Bool(0.2) {
		parts = append(parts, pick(s.rng, DefaultSlang))
	}
	if s.rng.Bool(0.1) {
		parts = append(parts, pick(s.rng, DefaultProfanity))
	}
	s.rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	// Insert a sentence boundary sometimes.
	text := strings.Join(parts, " ")
	if s.rng.Bool(0.4) && len(parts) > 3 {
		cut := 1 + s.rng.Intn(len(parts)-2)
		text = strings.Join(parts[:cut], " ") + ". " + strings.Join(parts[cut:], " ")
	}
	return text, mentions
}

func (s *Stream) decoyText(eventName string) string {
	var ev *Event
	for i := range s.events {
		if s.events[i].Name == eventName {
			ev = &s.events[i]
		}
	}
	if ev == nil {
		return s.backgroundText()
	}
	// Decoys reuse several keywords but none of the event's entities — the
	// "many unrelated tweets" failure episode.
	var parts []string
	for i := 0; i < 3 && i < len(ev.Keywords); i++ {
		parts = append(parts, ev.Keywords[s.rng.Intn(len(ev.Keywords))])
	}
	for i := 0; i < 4; i++ {
		parts = append(parts, s.filler[s.rng.Intn(len(s.filler))])
	}
	return strings.Join(parts, " ")
}

func (s *Stream) backgroundText() string {
	var parts []string
	n := 5 + s.rng.Intn(5)
	for i := 0; i < n; i++ {
		parts = append(parts, s.filler[s.rng.Intn(len(s.filler))])
	}
	return strings.Join(parts, " ")
}

func pick(r *randx.Rand, set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[r.Intn(len(keys))]
}
