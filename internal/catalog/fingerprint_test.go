package catalog

import (
	"fmt"
	"sync"
	"testing"
)

func fpItem(id, title string, extra map[string]string) *Item {
	attrs := map[string]string{"Title": title}
	for k, v := range extra {
		attrs[k] = v
	}
	return &Item{ID: id, Attrs: attrs, TrueType: "Phones", Vendor: "vendor-001"}
}

func TestFingerprintDeterministic(t *testing.T) {
	a := fpItem("ITM1", "apple iphone 5s", map[string]string{"Brand Name": "apple", "Price": "199.00"})
	b := fpItem("ITM1", "apple iphone 5s", map[string]string{"Price": "199.00", "Brand Name": "apple"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal items disagree: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
}

func TestFingerprintExcludesGroundTruth(t *testing.T) {
	a := fpItem("ITM1", "apple iphone 5s", nil)
	rl := a.Relabeled("Laptop Bags")
	if rl.Fingerprint() != a.Fingerprint() {
		t.Fatal("Relabeled clone with unchanged attrs must share the fingerprint (TrueType is not a classifier input)")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpItem("ITM1", "apple iphone 5s", map[string]string{"Brand Name": "apple"})
	variants := []*Item{
		fpItem("ITM2", "apple iphone 5s", map[string]string{"Brand Name": "apple"}),
		fpItem("ITM1", "apple iphone 6s", map[string]string{"Brand Name": "apple"}),
		fpItem("ITM1", "apple iphone 5s", map[string]string{"Brand Name": "samsung"}),
		fpItem("ITM1", "apple iphone 5s", map[string]string{"Brand Name": "apple", "Color": "black"}),
		fpItem("ITM1", "apple iphone 5s", nil),
	}
	for i, v := range variants {
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

// TestFingerprintStructuralBoundaries pins the delimiter scheme: shifting
// bytes between adjacent fields must not produce the same digest.
func TestFingerprintStructuralBoundaries(t *testing.T) {
	a := &Item{ID: "X", Attrs: map[string]string{"ab": "c"}}
	b := &Item{ID: "X", Attrs: map[string]string{"a": "bc"}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("attr key/value boundary collision")
	}
	c := &Item{ID: "Xa", Attrs: map[string]string{"b": "c"}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("ID/attr boundary collision")
	}
}

// TestFingerprintConcurrent hammers the lazy cache from many goroutines; the
// -race build verifies the sync.Once pattern, and every caller must see the
// same value.
func TestFingerprintConcurrent(t *testing.T) {
	it := fpItem("ITM9", "stainless steel water bottles 2 pack", map[string]string{"Color": "blue"})
	want := fpItem("ITM9", "stainless steel water bottles 2 pack", map[string]string{"Color": "blue"}).Fingerprint()
	var wg sync.WaitGroup
	got := make([]uint64, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = it.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("goroutine %d saw %x, want %x", i, g, want)
		}
	}
}

// FuzzItemFingerprint fuzzes the cache-key contract: equal content → equal
// fingerprints (including Relabeled clones, which change only ground truth),
// and a clone whose attribute map was swapped for edited content → a
// different fingerprint.
func FuzzItemFingerprint(f *testing.F) {
	f.Add("ITM00000001", "apple iphone 5s 16gb unlocked", "Brand Name", "apple", "samsung")
	f.Add("ITM00000002", "designer suitcase", "Color", "black", "ivory")
	f.Add("", "", "", "", "x")
	f.Add("ITM00000003", "2 pack value bundle", "Title", "shadowed", "title wins")
	f.Fuzz(func(t *testing.T, id, title, key, val, val2 string) {
		mk := func(v string) *Item {
			return &Item{ID: id, Attrs: map[string]string{"Title": title, key: v}, TrueType: "Phones"}
		}
		a, b := mk(val), mk(val)
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("equal items disagree: %x vs %x", a.Fingerprint(), b.Fingerprint())
		}
		rl := a.Relabeled("Other")
		if rl.Fingerprint() != a.Fingerprint() {
			t.Fatal("Relabeled clone with unchanged attrs must share the fingerprint")
		}
		if val2 != val {
			edited := a.Relabeled("Other")
			edited.Attrs = map[string]string{"Title": title, key: val2}
			if edited.Fingerprint() == a.Fingerprint() {
				t.Fatalf("clone with changed attrs shares fingerprint %x (key=%q %q→%q)",
					a.Fingerprint(), key, val, val2)
			}
		}
	})
}

func BenchmarkItemFingerprint(b *testing.B) {
	items := make([]*Item, 256)
	for i := range items {
		items[i] = fpItem(fmt.Sprintf("ITM%08d", i), "apple iphone 5s 16gb unlocked gsm", map[string]string{
			"Brand Name": "apple", "Price": "199.00", "Color": "black",
		})
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it := items[i%len(items)]
			it.fpOnce = sync.Once{}
			_ = it.Fingerprint()
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = items[i%len(items)].Fingerprint()
		}
	})
}
