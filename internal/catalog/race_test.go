package catalog

import (
	"reflect"
	"sync"
	"testing"
)

// TestTitleTokensConcurrent is the -race regression test for the lazy
// TitleTokens cache: the same items are tokenized from many goroutines at
// once — the exact access pattern of TokenDF / NewDataIndex running
// concurrently with batch classification. Before the sync.Once fix this was
// a data race on it.titleTokens.
func TestTitleTokensConcurrent(t *testing.T) {
	c := New(Config{Seed: 31, NumTypes: 30})
	items := c.GenerateBatch(BatchSpec{Size: 64, Epoch: 0})
	// Mix in an empty-title item: nil used to double as the "not computed"
	// sentinel, so every goroutine re-tokenized it.
	items = append(items, &Item{ID: "empty", Attrs: map[string]string{}})

	const goroutines = 8
	got := make([][][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			toks := make([][]string, len(items))
			for i, it := range items {
				toks[i] = it.TitleTokens()
			}
			got[g] = toks
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range items {
			if !reflect.DeepEqual(got[0][i], got[g][i]) {
				t.Fatalf("goroutine %d saw different tokens for item %d: %v vs %v",
					g, i, got[g][i], got[0][i])
			}
		}
	}
}

// TestTitleTokensEmptyTitleComputedOnce: an empty title must be tokenized
// exactly once. The old code used nil as the "not computed" sentinel, so an
// empty title (whose token slice is nil) re-tokenized on every call — this
// test mutates the title after the first call and would observe the
// recompute.
func TestTitleTokensEmptyTitleComputedOnce(t *testing.T) {
	it := &Item{ID: "e", Attrs: map[string]string{}}
	if toks := it.TitleTokens(); len(toks) != 0 {
		t.Fatalf("empty title tokenized to %v", toks)
	}
	// If TitleTokens re-tokenized, it would now pick up the new title.
	it.Attrs["Title"] = "gold ring"
	if toks := it.TitleTokens(); len(toks) != 0 {
		t.Fatalf("empty title was re-tokenized on the second call: %v", toks)
	}
}

// TestTitleTokensNilAttrs: a zero-value item (no attribute map at all) must
// tokenize to nothing without panicking, once.
func TestTitleTokensNilAttrs(t *testing.T) {
	it := &Item{ID: "z"}
	if toks := it.TitleTokens(); len(toks) != 0 {
		t.Fatalf("nil-attrs item tokenized to %v", toks)
	}
}
