package catalog

import "sort"

// FNV-1a 64-bit parameters (hash/fnv is avoided here to keep the hot path
// allocation-free: the stdlib hasher is an interface behind a pointer).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

// fmix64 is the murmur3 finalizer: FNV-1a alone mixes low bits poorly for
// near-identical inputs (sequential item IDs), and the serving cache shards
// on the fingerprint's low bits.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return h
}

// Fingerprint returns the item's canonical content hash: a stable 64-bit
// digest of everything the classifier stages can observe — the item ID, the
// attribute map in sorted key order, and the tokenized title. It is the
// serving cache key (paired with a snapshot version), so the contract is:
//
//   - deterministic: the same logical content always hashes to the same
//     value, across processes and map iteration orders (keys are sorted);
//   - classification-complete: two items with equal fingerprints present
//     identical inputs to every rule, so a cached verdict for one is a
//     correct verdict for the other;
//   - ground-truth-blind: TrueType is deliberately excluded — production
//     components must not read it (see the Item doc), and a Relabeled clone
//     with unchanged attributes classifies identically, so it shares the
//     fingerprint. A clone whose Attrs map was swapped for edited content
//     hashes differently (the clone's fingerprint cache starts empty).
//
// Field and element boundaries are delimited with tag bytes so ambiguous
// concatenations ("ab"+"c" vs "a"+"bc", attr key vs value) cannot collide
// structurally. Computed once per item (sync.Once, same pattern as
// TitleTokens) and safe for concurrent use.
func (it *Item) Fingerprint() uint64 {
	it.fpOnce.Do(func() {
		h := uint64(fnvOffset64)
		h = fnvString(h, it.ID)
		h = fnvByte(h, 0xF0)
		keys := make([]string, 0, len(it.Attrs))
		for k := range it.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h = fnvString(h, k)
			h = fnvByte(h, 0xF1)
			h = fnvString(h, it.Attrs[k])
			h = fnvByte(h, 0xF2)
		}
		for _, tok := range it.TitleTokens() {
			h = fnvString(h, tok)
			h = fnvByte(h, 0xF3)
		}
		it.fp = fmix64(h)
	})
	return it.fp
}
