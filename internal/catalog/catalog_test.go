package catalog

import (
	"encoding/json"
	"strings"
	"testing"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	return New(Config{Seed: 42, NumTypes: 80, NumVendors: 20})
}

func TestTaxonomySize(t *testing.T) {
	c := testCatalog(t)
	if len(c.Types()) != 80 {
		t.Fatalf("want 80 types, got %d", len(c.Types()))
	}
	names := map[string]bool{}
	for _, ty := range c.Types() {
		if names[ty.Name] {
			t.Fatalf("duplicate type name %q", ty.Name)
		}
		names[ty.Name] = true
	}
	if !names["rings"] || !names["motor oil"] || !names["handbags"] {
		t.Fatal("curated seed types missing from taxonomy")
	}
}

func TestTaxonomyTruncation(t *testing.T) {
	c := New(Config{Seed: 1, NumTypes: 10})
	if len(c.Types()) != 10 {
		t.Fatalf("want truncated taxonomy of 10, got %d", len(c.Types()))
	}
}

func TestSyntheticTail(t *testing.T) {
	c := New(Config{Seed: 1, NumTypes: 200})
	synth := 0
	for _, ty := range c.Types() {
		if ty.Synthetic {
			synth++
			if len(ty.HeadTerms) == 0 || len(ty.Brands) == 0 {
				t.Fatalf("synthetic type %q lacks vocabulary", ty.Name)
			}
		}
	}
	if synth < 100 {
		t.Fatalf("expected >100 synthetic tail types, got %d", synth)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{Seed: 7, NumTypes: 60}).GenerateBatch(BatchSpec{Size: 50, Epoch: 0})
	b := New(Config{Seed: 7, NumTypes: 60}).GenerateBatch(BatchSpec{Size: 50, Epoch: 0})
	if len(a) != len(b) {
		t.Fatal("batch sizes differ")
	}
	for i := range a {
		if a[i].Title() != b[i].Title() || a[i].TrueType != b[i].TrueType {
			t.Fatalf("item %d differs across identically-seeded catalogs", i)
		}
	}
}

func TestAttributeDeterminism(t *testing.T) {
	// Regression: type-specific attributes were generated in map-iteration
	// order, consuming the RNG nondeterministically; every attribute value
	// must now be identical across identically-seeded catalogs.
	gen := func() []*Item {
		c := New(Config{Seed: 83, NumTypes: 60, ZipfS: 1.3})
		return c.GenerateBatch(BatchSpec{Size: 400, Epoch: 0, OnlyTypes: []string{"books", "laptop computers", "smart phones"}})
	}
	a, b := gen(), gen()
	for i := range a {
		if len(a[i].Attrs) != len(b[i].Attrs) {
			t.Fatalf("item %d attr count differs: %v vs %v", i, a[i].Attrs, b[i].Attrs)
		}
		for k, v := range a[i].Attrs {
			if b[i].Attrs[k] != v {
				t.Fatalf("item %d attr %q differs: %q vs %q", i, k, v, b[i].Attrs[k])
			}
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a := New(Config{Seed: 7, NumTypes: 60}).GenerateBatch(BatchSpec{Size: 30, Epoch: 0})
	b := New(Config{Seed: 8, NumTypes: 60}).GenerateBatch(BatchSpec{Size: 30, Epoch: 0})
	same := 0
	for i := range a {
		if a[i].Title() == b[i].Title() {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical batches")
	}
}

func TestBatchBasics(t *testing.T) {
	c := testCatalog(t)
	items := c.GenerateBatch(BatchSpec{Size: 500, Epoch: 0})
	if len(items) != 500 {
		t.Fatalf("want 500 items, got %d", len(items))
	}
	ids := map[string]bool{}
	for _, it := range items {
		if it.Attrs["Title"] == "" {
			t.Fatal("item missing Title")
		}
		if it.ID == "" || ids[it.ID] {
			t.Fatalf("bad or duplicate id %q", it.ID)
		}
		ids[it.ID] = true
		if it.TrueType == "" || c.TypeByName(it.TrueType) == nil {
			t.Fatalf("item has unknown true type %q", it.TrueType)
		}
		if it.Vendor == "" {
			t.Fatal("item missing vendor")
		}
	}
}

func TestZipfHeadTailShape(t *testing.T) {
	c := testCatalog(t)
	items := c.GenerateBatch(BatchSpec{Size: 8000, Epoch: 0})
	counts := map[string]int{}
	for _, it := range items {
		counts[it.TrueType]++
	}
	headName := c.Types()[0].Name
	// The rank-0 type should be much more frequent than a deep-tail type.
	tailName := c.Types()[len(c.Types())-1].Name
	if counts[headName] < 10*counts[tailName]+10 {
		t.Fatalf("no head/tail skew: head %q=%d tail %q=%d",
			headName, counts[headName], tailName, counts[tailName])
	}
	// Many types should sit well below the uniform share (the "tail rules"
	// territory: rules that touch only a few items).
	uniformShare := len(items) / len(c.Types())
	rare := 0
	for _, ty := range c.Types() {
		if counts[ty.Name] < uniformShare/3 {
			rare++
		}
	}
	if rare < 10 {
		t.Fatalf("expected a long tail of rare types (<%d items), got %d rare", uniformShare/3, rare)
	}
}

func TestConceptDriftEmergingVocabulary(t *testing.T) {
	c := New(Config{Seed: 3, NumTypes: 55})
	countTerm := func(epoch int, term string) int {
		items := c.GenerateBatch(BatchSpec{Size: 4000, Epoch: epoch, OnlyTypes: []string{"computer cables"}})
		n := 0
		for _, it := range items {
			if strings.Contains(it.Title(), term) {
				n++
			}
		}
		return n
	}
	if n := countTerm(0, "thunderbolt"); n != 0 {
		t.Fatalf("epoch-0 batch already uses the epoch-2 term: %d", n)
	}
	if n := countTerm(3, "thunderbolt"); n == 0 {
		t.Fatal("epoch-3 batch never uses the emerged term")
	}
}

func TestVendorNewVocabulary(t *testing.T) {
	c := New(Config{Seed: 5, NumTypes: 55, NumVendors: 30})
	// Find a NewVocabulary vendor.
	var nv string
	for _, v := range c.Vendors() {
		if v.NewVocabulary {
			nv = v.Name
			break
		}
	}
	if nv == "" {
		t.Skip("no new-vocabulary vendor in this population")
	}
	count := func(vendor string) (headish, total int) {
		items := c.GenerateBatch(BatchSpec{Size: 2500, Epoch: 2, Vendor: vendor, OnlyTypes: []string{"handbags"}})
		for _, it := range items {
			total++
			if strings.Contains(it.Title(), "handbag") {
				headish++
			}
		}
		return headish, total
	}
	nvHead, nvTotal := count(nv)
	stdHead, stdTotal := count("") // mixed vendors
	nvRate := float64(nvHead) / float64(nvTotal)
	stdRate := float64(stdHead) / float64(stdTotal)
	if nvRate >= stdRate {
		t.Fatalf("new-vocabulary vendor should avoid head terms: %v vs %v", nvRate, stdRate)
	}
}

func TestUnknownVendorGetsNewVocabulary(t *testing.T) {
	c := testCatalog(t)
	items := c.GenerateBatch(BatchSpec{Size: 10, Epoch: 0, Vendor: "brand-new-vendor"})
	for _, it := range items {
		if it.Vendor != "brand-new-vendor" {
			t.Fatalf("vendor attribution lost: %q", it.Vendor)
		}
	}
}

func TestSegmentBias(t *testing.T) {
	c := testCatalog(t)
	plain := c.GenerateBatch(BatchSpec{Size: 4000, Epoch: 0})
	biased := c.GenerateBatch(BatchSpec{Size: 4000, Epoch: 0, SegmentBias: "apparel", BiasFactor: 8})
	frac := func(items []*Item) float64 {
		n := 0
		for _, it := range items {
			if c.TypeByName(it.TrueType).Segment == "apparel" {
				n++
			}
		}
		return float64(n) / float64(len(items))
	}
	if frac(biased) <= frac(plain)*1.5 {
		t.Fatalf("segment bias ineffective: plain=%v biased=%v", frac(plain), frac(biased))
	}
}

func TestOnlyTypes(t *testing.T) {
	c := testCatalog(t)
	items := c.GenerateBatch(BatchSpec{Size: 100, Epoch: 0, OnlyTypes: []string{"rings", "jeans"}})
	for _, it := range items {
		if it.TrueType != "rings" && it.TrueType != "jeans" {
			t.Fatalf("OnlyTypes violated: %q", it.TrueType)
		}
	}
}

func TestBookAttributes(t *testing.T) {
	c := testCatalog(t)
	items := c.GenerateBatch(BatchSpec{Size: 300, Epoch: 0, OnlyTypes: []string{"books"}})
	withISBN := 0
	for _, it := range items {
		if isbn, ok := it.Attrs["isbn"]; ok {
			withISBN++
			if !strings.HasPrefix(isbn, "978") || len(isbn) != 13 {
				t.Fatalf("malformed isbn %q", isbn)
			}
		}
	}
	if withISBN < 200 {
		t.Fatalf("books should usually carry isbn; got %d/300", withISBN)
	}
}

func TestFigure1JSONShape(t *testing.T) {
	c := testCatalog(t)
	it := c.GenerateBatch(BatchSpec{Size: 1, Epoch: 0})[0]
	data, err := json.Marshal(it)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["Item ID"] == "" || m["Title"] == "" {
		t.Fatalf("Figure-1 required attributes missing: %v", m)
	}
	if _, ok := m["TrueType"]; ok {
		t.Fatal("ground truth must not leak into the serialized item")
	}
}

func TestTitleTokensCached(t *testing.T) {
	c := testCatalog(t)
	it := c.GenerateBatch(BatchSpec{Size: 1, Epoch: 0})[0]
	a := it.TitleTokens()
	b := it.TitleTokens()
	if &a[0] != &b[0] {
		t.Fatal("TitleTokens should cache")
	}
}

func TestLabeledDataAndSplit(t *testing.T) {
	c := testCatalog(t)
	labeled := c.LabeledData(5000)
	covered, uncovered := SplitTraining(labeled, 10)
	if len(covered) == 0 {
		t.Fatal("no covered types at all")
	}
	if len(uncovered) == 0 {
		t.Fatal("expected some uncovered tail types (the 30% gap of §3.3)")
	}
	for ty, n := range covered {
		if n < 10 {
			t.Fatalf("covered type %q has %d < 10 items", ty, n)
		}
	}
}

func TestTrapPhrases(t *testing.T) {
	c := testCatalog(t)
	items := c.GenerateBatch(BatchSpec{Size: 3000, Epoch: 0, OnlyTypes: []string{"rings"}})
	traps := 0
	for _, it := range items {
		if strings.Contains(it.Title(), "wedding band") && !strings.Contains(it.Title(), "ring") {
			traps++
		}
	}
	if traps == 0 {
		t.Fatal("expected some 'wedding band' trap titles without the token ring")
	}
}

func TestVendorFocus(t *testing.T) {
	c := testCatalog(t)
	v := c.Vendors()[0]
	if len(v.FocusSegments) == 0 {
		t.Fatal("vendor without focus segments")
	}
	items := c.GenerateBatch(BatchSpec{Size: 2000, Epoch: 0, Vendor: v.Name})
	inFocus := 0
	focus := map[string]bool{}
	for _, s := range v.FocusSegments {
		focus[s] = true
	}
	for _, it := range items {
		if focus[c.TypeByName(it.TrueType).Segment] {
			inFocus++
		}
	}
	if float64(inFocus)/float64(len(items)) < 0.3 {
		t.Fatalf("vendor focus too weak: %d/%d in focus", inFocus, len(items))
	}
}

// TestRouteKey: the shard routing key is the vendor (the tenancy axis — one
// vendor's pathological batch congests one shard), falling back to the item
// ID for vendor-less items so routing stays total.
func TestRouteKey(t *testing.T) {
	withVendor := &Item{ID: "it-1", Vendor: "acme"}
	if got := withVendor.RouteKey(); got != "acme" {
		t.Fatalf("RouteKey = %q, want vendor", got)
	}
	orphan := &Item{ID: "it-2"}
	if got := orphan.RouteKey(); got != "it-2" {
		t.Fatalf("vendor-less RouteKey = %q, want the ID", got)
	}
	c := New(Config{Seed: 1})
	for _, it := range c.GenerateBatch(BatchSpec{Size: 50}) {
		if it.RouteKey() == "" {
			t.Fatalf("generated item %s has an empty route key", it.ID)
		}
	}
}
