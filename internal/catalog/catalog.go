// Package catalog generates the synthetic product feed that stands in for
// the paper's Walmart marketplace data (see DESIGN.md's substitution table).
//
// The generator reproduces, at laptop scale, the distributional phenomena
// §2.2 identifies: Zipfian head/tail product types, batches of wildly
// varying size from thousands of vendors, vendor-specific vocabulary, and
// concept drift (new subtype terms emerging over time, shifting segment
// mix). Every item carries its ground-truth type for evaluation; production
// components never read it — only evaluators and the simulated crowd do.
package catalog

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/randx"
	"repro/internal/tokenize"
)

// Item is one product record: attribute-value pairs as in the paper's
// Figure 1. "Item ID" and "Title" are always present; most items carry a
// "Description"; some carry more attributes.
type Item struct {
	ID    string
	Attrs map[string]string
	// TrueType is the ground-truth product type. Classifiers must not read
	// it; evaluation and crowd simulation do.
	TrueType string
	// Vendor identifies the submitting marketplace vendor.
	Vendor string
	// Epoch is the batch epoch the item was generated in.
	Epoch int

	tokOnce     sync.Once
	titleTokens []string // computed by tokOnce; nil is a valid cached value

	fpOnce sync.Once
	fp     uint64 // computed by fpOnce; see Fingerprint
}

// Title returns the item's title attribute.
func (it *Item) Title() string { return it.Attrs["Title"] }

// TitleTokens returns the tokenized title, computed exactly once. The
// sync.Once makes the lazy cache safe when the same item is visible to
// several goroutines (batch classification, TokenDF, data indexing) and
// doubles as the "computed" flag, so an empty title — whose token slice is
// nil — is not re-tokenized on every call.
func (it *Item) TitleTokens() []string {
	it.tokOnce.Do(func() {
		it.titleTokens = tokenize.Tokenize(it.Attrs["Title"])
	})
	return it.titleTokens
}

// RouteKey returns the item's shard routing key: the submitting vendor —
// the paper's tenancy axis (§2.2's batches arrive vendor by vendor, and a
// vendor's vocabulary quirks are exactly what makes its traffic hot or
// pathological together) — falling back to the item ID so routing stays
// total for vendor-less items. Production components may read it (unlike
// TrueType): it is derived from submission metadata, not ground truth.
func (it *Item) RouteKey() string {
	if it.Vendor != "" {
		return it.Vendor
	}
	return it.ID
}

// Relabeled returns a copy of the item with TrueType replaced — the
// analyst/manual-team relabeling operation. Item must not be copied by value
// (it embeds the token-cache sync.Once), so this is the supported way to
// derive a corrected record; the copy shares the attribute map (treated as
// read-only everywhere) and re-tokenizes — and re-fingerprints — lazily on
// first use, so a clone whose Attrs map is later swapped for an edited copy
// hashes the new content.
func (it *Item) Relabeled(trueType string) *Item {
	return &Item{
		ID:       it.ID,
		Attrs:    it.Attrs,
		TrueType: trueType,
		Vendor:   it.Vendor,
		Epoch:    it.Epoch,
	}
}

// MarshalJSON renders the item in the paper's Figure-1 JSON shape: a flat
// object of attribute-value pairs including "Item ID".
func (it *Item) MarshalJSON() ([]byte, error) {
	m := make(map[string]string, len(it.Attrs)+1)
	for k, v := range it.Attrs {
		m[k] = v
	}
	m["Item ID"] = it.ID
	return json.Marshal(m)
}

// Config parameterizes catalog generation.
type Config struct {
	Seed uint64
	// NumTypes is the total taxonomy size; the curated seed (~50) is
	// extended with synthetic tail types up to this count. Values below the
	// seed size truncate the seed. Default 120.
	NumTypes int
	// NumVendors is the size of the vendor population. Default 40.
	NumVendors int
	// ZipfS is the exponent of the type-popularity distribution. Default 1.05.
	ZipfS float64
	// PNoise is the probability of injecting an off-vocabulary noise token
	// into a title. Default 0.10.
	PNoise float64
}

func (c Config) withDefaults() Config {
	if c.NumTypes == 0 {
		c.NumTypes = 120
	}
	if c.NumVendors == 0 {
		c.NumVendors = 40
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.05
	}
	if c.PNoise == 0 {
		c.PNoise = 0.10
	}
	return c
}

// Vendor models a marketplace vendor: a segment focus and a vocabulary
// style. NewVocabulary vendors describe products with late-epoch and quirky
// terms — the "new vendor who describes clothes using a new vocabulary"
// drill of §2.2.
type Vendor struct {
	Name          string
	FocusSegments []string
	// NewVocabulary biases the vendor toward synonyms with later
	// EmergeEpochs and away from head terms.
	NewVocabulary bool
}

// Catalog is a deterministic product-item generator over a fixed taxonomy.
type Catalog struct {
	cfg     Config
	types   []*TypeSpec
	vendors []Vendor
	zipf    *randx.Zipf
	rng     *randx.Rand
	nextID  int
}

// New builds a catalog from cfg. The taxonomy order (and therefore Zipf
// popularity ranks) is a deterministic shuffle of the seed followed by
// synthetic tail types, so head types mix curated and synthetic entries.
func New(cfg Config) *Catalog {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed).Split("catalog")

	types := make([]*TypeSpec, 0, cfg.NumTypes)
	for i := range seedTypes {
		if len(types) >= cfg.NumTypes {
			break
		}
		sp := seedTypes[i] // copy
		types = append(types, &sp)
	}
	synRng := rng.Split("synthetic-types")
	used := map[string]bool{}
	for _, t := range types {
		used[t.Name] = true
	}
	for i := 0; len(types) < cfg.NumTypes; i++ {
		noun := syntheticNouns[i%len(syntheticNouns)]
		mat := syntheticMaterials[(i/len(syntheticNouns))%len(syntheticMaterials)]
		name := mat + " " + noun + "s"
		if used[name] {
			continue
		}
		used[name] = true
		types = append(types, synthesizeType(synRng, name, mat, noun, i))
	}

	// Popularity rank: deterministic shuffle so the Zipf head is a mix of
	// curated and synthetic types.
	order := rng.Split("rank").Perm(len(types))
	ranked := make([]*TypeSpec, len(types))
	for i, j := range order {
		ranked[i] = types[j]
	}

	c := &Catalog{
		cfg:   cfg,
		types: ranked,
		zipf:  randx.NewZipf(rng.Split("zipf"), len(ranked), cfg.ZipfS),
		rng:   rng,
	}
	c.vendors = c.makeVendors(cfg.NumVendors)
	return c
}

func synthesizeType(r *randx.Rand, name, mat, noun string, i int) *TypeSpec {
	seg := syntheticSegments[i%len(syntheticSegments)]
	brands := []string{
		syntheticBrandPool[i%len(syntheticBrandPool)],
		syntheticBrandPool[(i+5)%len(syntheticBrandPool)],
	}
	spec := &TypeSpec{
		Name: name, Segment: seg, Synthetic: true,
		HeadTerms: []Term{{Text: noun}, {Text: noun + "s"}},
		Synonyms: []Term{
			{Text: mat + " " + noun},
			{Text: "designer " + noun, EmergeEpoch: 1 + i%3},
		},
		Modifiers: []string{mat, "handmade", "large", "small", "set of 2", "gift"},
		Brands:    brands,
	}
	return spec
}

func (c *Catalog) makeVendors(n int) []Vendor {
	r := c.rng.Split("vendors")
	segs := map[string]bool{}
	for _, t := range c.types {
		segs[t.Segment] = true
	}
	segNames := make([]string, 0, len(segs))
	for s := range segs {
		segNames = append(segNames, s)
	}
	sort.Strings(segNames)
	vendors := make([]Vendor, n)
	for i := range vendors {
		v := Vendor{Name: fmt.Sprintf("vendor-%03d", i)}
		nFocus := 1 + r.Intn(3)
		for f := 0; f < nFocus; f++ {
			v.FocusSegments = append(v.FocusSegments, segNames[r.Intn(len(segNames))])
		}
		v.NewVocabulary = r.Bool(0.15)
		vendors[i] = v
	}
	return vendors
}

// Types returns the taxonomy in popularity-rank order.
func (c *Catalog) Types() []*TypeSpec { return c.types }

// TypeNames returns all type names in rank order.
func (c *Catalog) TypeNames() []string {
	names := make([]string, len(c.types))
	for i, t := range c.types {
		names[i] = t.Name
	}
	return names
}

// TypeByName returns the spec for name, or nil.
func (c *Catalog) TypeByName(name string) *TypeSpec {
	for _, t := range c.types {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Vendors exposes the vendor population.
func (c *Catalog) Vendors() []Vendor { return c.vendors }

// BatchSpec describes one incoming batch (§2.2: "in the morning a small
// vendor may send in a few tens of items, but hours later a large vendor may
// send in a few millions").
type BatchSpec struct {
	// Size is the number of items.
	Size int
	// Epoch is the logical time of the batch; it gates emerging vocabulary
	// and shifts the segment mix.
	Epoch int
	// Vendor, if non-empty, attributes all items to that vendor and biases
	// types toward the vendor's focus segments. Empty draws vendors
	// per-item.
	Vendor string
	// SegmentBias, if non-empty, multiplies the popularity of types in this
	// segment by BiasFactor — seasonal distribution shift ("today Homes and
	// Garden, tomorrow it shrinks").
	SegmentBias string
	BiasFactor  float64
	// OnlyTypes restricts generation to the named types (corner-case /
	// new-vendor onboarding drills).
	OnlyTypes []string
}

// GenerateBatch produces one batch of items. Generation is deterministic in
// (catalog seed, batch spec, call order).
func (c *Catalog) GenerateBatch(spec BatchSpec) []*Item {
	label := fmt.Sprintf("batch-e%d-v%s-s%s-n%d-id%d", spec.Epoch, spec.Vendor, spec.SegmentBias, spec.Size, c.nextID)
	r := c.rng.Split(label)

	var vendor *Vendor
	if spec.Vendor != "" {
		for i := range c.vendors {
			if c.vendors[i].Name == spec.Vendor {
				vendor = &c.vendors[i]
				break
			}
		}
		if vendor == nil {
			// Unknown vendor name: a brand-new marketplace vendor with new
			// vocabulary, per the scale-up drill.
			vendor = &Vendor{Name: spec.Vendor, NewVocabulary: true}
		}
	}

	var allowed []*TypeSpec
	if len(spec.OnlyTypes) > 0 {
		for _, name := range spec.OnlyTypes {
			if t := c.TypeByName(name); t != nil {
				allowed = append(allowed, t)
			}
		}
	}

	items := make([]*Item, 0, spec.Size)
	for i := 0; i < spec.Size; i++ {
		t := c.drawType(r, spec, vendor, allowed)
		v := vendor
		if v == nil {
			v = &c.vendors[r.Intn(len(c.vendors))]
		}
		items = append(items, c.generateItem(r, t, v, spec.Epoch))
	}
	return items
}

// drawType picks a product type honouring batch bias, vendor focus and the
// Zipf popularity ranks.
func (c *Catalog) drawType(r *randx.Rand, spec BatchSpec, vendor *Vendor, allowed []*TypeSpec) *TypeSpec {
	if len(allowed) > 0 {
		return allowed[r.Intn(len(allowed))]
	}
	for attempt := 0; attempt < 8; attempt++ {
		t := c.types[c.zipf.NextWith(r)]
		if spec.SegmentBias != "" && spec.BiasFactor > 1 && t.Segment != spec.SegmentBias {
			// Rejection-sample toward the biased segment.
			if !r.Bool(1 / spec.BiasFactor) {
				continue
			}
		}
		if vendor != nil && len(vendor.FocusSegments) > 0 {
			inFocus := false
			for _, s := range vendor.FocusSegments {
				if s == t.Segment {
					inFocus = true
					break
				}
			}
			if !inFocus && !r.Bool(0.3) {
				continue
			}
		}
		return t
	}
	return c.types[c.zipf.NextWith(r)]
}

// generateItem synthesizes one product item of type t.
func (c *Catalog) generateItem(r *randx.Rand, t *TypeSpec, v *Vendor, epoch int) *Item {
	c.nextID++
	it := &Item{
		ID:       fmt.Sprintf("ITM%08d", c.nextID),
		Attrs:    map[string]string{},
		TrueType: t.Name,
		Vendor:   v.Name,
		Epoch:    epoch,
	}

	title, titleBrand := c.generateTitle(r, t, v, epoch)
	it.Attrs["Title"] = title

	// Description: ~85% of items (paper: "most product items").
	if r.Bool(0.85) {
		it.Attrs["Description"] = c.generateDescription(r, t, title)
	}
	// Brand attribute: consistent with the title's brand when one appears
	// (the IE substrate's distant-supervision ground truth), occasionally
	// present without a title mention.
	switch {
	case titleBrand != "" && r.Bool(0.8):
		it.Attrs["Brand Name"] = titleBrand
	case titleBrand == "" && len(t.Brands) > 0 && r.Bool(0.2):
		it.Attrs["Brand Name"] = r.PickString(t.Brands)
	}
	// Type-specific attributes, in sorted name order: map iteration order
	// would consume the RNG nondeterministically and break reproducibility.
	attrNames := make([]string, 0, len(t.Attrs))
	for name := range t.Attrs {
		attrNames = append(attrNames, name)
	}
	sort.Strings(attrNames)
	for _, name := range attrNames {
		if !r.Bool(0.9) {
			continue
		}
		it.Attrs[name] = genAttrValue(r, t.Attrs[name])
	}
	// Occasional generic attributes.
	if r.Bool(0.3) {
		it.Attrs["Color"] = r.PickString([]string{"black", "white", "blue", "red", "gray", "green", "ivory", "brown"})
	}
	// Price: always present, log-normal-ish around a per-segment base.
	base := segmentBasePrice[t.Segment]
	if base == 0 {
		base = 25
	}
	price := base * (0.4 + r.Float64()*2.2)
	it.Attrs["Price"] = fmt.Sprintf("%.2f", price)
	return it
}

// segmentBasePrice anchors the synthetic price model; electronics are
// expensive, grocery is cheap — which is what makes §4's "title contains
// Apple but price < $100 → not a phone" guard rules meaningful.
var segmentBasePrice = map[string]float64{
	"electronics": 320, "jewelry": 120, "home": 90, "automotive": 45,
	"apparel": 30, "tools": 70, "media": 18, "grocery": 8, "sports": 55,
	"baby": 35, "office": 12, "pet": 25, "garden": 60, "health": 10,
}

// generateTitle builds a title of the shape
// [brand] [modifiers…] <head|synonym|trap> [suffix] with the drift, vendor
// and headless behaviours described in the lexicon. It also reports the
// brand embedded in the title, if any.
func (c *Catalog) generateTitle(r *randx.Rand, t *TypeSpec, v *Vendor, epoch int) (title, brand string) {
	var parts []string

	if len(t.Brands) > 0 && r.Bool(0.55) {
		brand = r.PickString(t.Brands)
		parts = append(parts, brand)
	}
	nMods := 1 + r.Intn(3)
	for i := 0; i < nMods; i++ {
		switch {
		case v.NewVocabulary && r.Bool(0.6):
			parts = append(parts, vendorQuirkModifiers[r.Intn(len(vendorQuirkModifiers))])
		case len(t.Modifiers) > 0 && r.Bool(0.8):
			parts = append(parts, r.PickString(t.Modifiers))
		default:
			parts = append(parts, sharedModifiers[r.Intn(len(sharedModifiers))])
		}
	}

	pHeadless := t.PHeadless
	if pHeadless == 0 {
		pHeadless = 0.12
	}
	switch {
	case len(t.Traps) > 0 && r.Bool(0.08):
		parts = append(parts, r.PickString(t.Traps))
	case r.Bool(pHeadless):
		// Headless: no type indicator at all; only brand/modifier signal.
	default:
		head := c.pickHead(r, t, v, epoch)
		parts = append(parts, head)
	}

	if r.Bool(0.25) {
		parts = append(parts, r.PickString([]string{"2 pack value bundle", "gift edition", "2014 model", "clearance", "free shipping"}))
	}
	if r.Bool(c.cfg.PNoise) {
		parts = append(parts, noiseToken(r))
	}
	return strings.Join(parts, " "), brand
}

// pickHead chooses the type-indicating noun, honouring emergence epochs and
// vendor vocabulary quirks.
func (c *Catalog) pickHead(r *randx.Rand, t *TypeSpec, v *Vendor, epoch int) string {
	var avail []Term
	for _, s := range t.Synonyms {
		if s.EmergeEpoch <= epoch {
			avail = append(avail, s)
		}
	}
	useSyn := r.Bool(0.45)
	if v.NewVocabulary {
		useSyn = r.Bool(0.85) // new-vocabulary vendors rarely use head terms
		// Prefer the latest-emerging synonyms.
		var late []Term
		for _, s := range avail {
			if s.EmergeEpoch > 0 || s.VendorQuirks {
				late = append(late, s)
			}
		}
		if len(late) > 0 {
			avail = late
		}
	}
	if useSyn && len(avail) > 0 {
		return avail[r.Intn(len(avail))].Text
	}
	return t.HeadTerms[r.Intn(len(t.HeadTerms))].Text
}

func (c *Catalog) generateDescription(r *randx.Rand, t *TypeSpec, title string) string {
	templates := []string{
		"Shop %s online. %s quality from the %s department.",
		"%s - backed by our satisfaction guarantee. A great pick in %s.",
		"Introducing %s, the smart choice for %s shoppers.",
	}
	tpl := templates[r.Intn(len(templates))]
	switch strings.Count(tpl, "%s") {
	case 3:
		return fmt.Sprintf(tpl, title, "Top", t.Segment)
	default:
		return fmt.Sprintf(tpl, title, t.Segment)
	}
}

func genAttrValue(r *randx.Rand, kind string) string {
	switch kind {
	case "isbn":
		return fmt.Sprintf("978%010d", r.Intn(1_000_000_000))
	case "pages":
		return fmt.Sprintf("%d", 80+r.Intn(900))
	case "screen":
		return fmt.Sprintf("%.1f in", 5+r.Float64()*25)
	case "cpu":
		return r.PickString([]string{"quad core 2.4ghz", "octa core 3.1ghz", "dual core 1.8ghz"})
	case "carrier":
		return r.PickString([]string{"unlocked", "gsm", "cdma"})
	case "rating":
		return r.PickString([]string{"G", "PG", "PG-13", "R", "E", "T", "M"})
	case "runtime":
		return fmt.Sprintf("%d min", 60+r.Intn(120))
	case "platform":
		return r.PickString([]string{"console x", "console y", "pc"})
	default:
		return "n/a"
	}
}

func noiseToken(r *randx.Rand) string {
	consonants := "bcdfgklmnprstvz"
	vowels := "aeiou"
	n := 4 + r.Intn(4)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			b.WriteByte(consonants[r.Intn(len(consonants))])
		} else {
			b.WriteByte(vowels[r.Intn(len(vowels))])
		}
	}
	return b.String()
}

// LabeledData draws n items spread across the taxonomy for use as training /
// validation data, mimicking the §3.1 bootstrap ("manual labeling and manual
// rules"). Coverage follows the same Zipf popularity as live batches, so
// tail types receive little or no training data — exactly the 30%-of-types
// gap §3.3 reports. Epoch 0 vocabulary only.
func (c *Catalog) LabeledData(n int) []*Item {
	return c.GenerateBatch(BatchSpec{Size: n, Epoch: 0})
}

// SplitTraining returns the subset of types that have at least minPerType
// items in the given labeled set — the types learning can handle — and the
// remainder ("no or very little training data", handled primarily by rules).
func SplitTraining(items []*Item, minPerType int) (covered, uncovered map[string]int) {
	counts := map[string]int{}
	for _, it := range items {
		counts[it.TrueType]++
	}
	covered, uncovered = map[string]int{}, map[string]int{}
	for ty, n := range counts {
		if n >= minPerType {
			covered[ty] = n
		} else {
			uncovered[ty] = n
		}
	}
	return covered, uncovered
}
