package catalog

// This file is the hand-curated seed lexicon: ~50 product types whose
// vocabulary reproduces the situations the paper describes — the "wedding
// band is a ring" trap, the satchel/purse/tote handbag synonym sprawl (§3.2),
// the USB/monitor/motherboard computer-cable subtype zoo, the isbn attribute
// of books, brand names constrained to a few types (the "Apple" knowledge-base
// reasoning), and the motor-oil / area-rug / athletic-glove / shorts /
// abrasive-wheel examples of Table 1. A synthetic tail generated in
// catalog.go extends the taxonomy to any requested size.

// Term is a vocabulary entry with an optional drift schedule: the term is
// only used in titles once the batch epoch reaches EmergeEpoch, modelling
// concept drift ("new types of computer cables keep appearing", §2.2).
type Term struct {
	Text         string
	EmergeEpoch  int
	VendorQuirks bool // preferentially used by "new vocabulary" vendors
}

// TypeSpec describes one product type's generative vocabulary.
type TypeSpec struct {
	Name      string
	Segment   string
	Synthetic bool
	// HeadTerms are strong type indicators used as the final noun of most
	// titles ("ring", "rings").
	HeadTerms []Term
	// Synonyms are alternative head nouns, often subtype names (satchel,
	// purse, tote). Some emerge only at later epochs.
	Synonyms []Term
	// Modifiers are type-flavoured adjectives and materials.
	Modifiers []string
	// Brands that sell this type. Brands may be shared across types.
	Brands []string
	// Attrs are type-specific attribute generators: name → kind (see
	// attrKind in catalog.go).
	Attrs map[string]string
	// Traps are phrases that belong to this type even though their tokens
	// suggest otherwise (e.g. "wedding band" → rings). They replace the head
	// noun entirely.
	Traps []string
	// PHeadless is the probability a title omits every head term and
	// synonym, leaving only brand/modifier signal — the cases "learning
	// cannot yet handle" until trained (§3.2). Defaults to 0.12 if zero.
	PHeadless float64
}

// vendorQuirkModifiers replace ordinary modifiers in titles from
// "new vocabulary" vendors — marketing-speak the classifiers have never
// seen, which is what makes a new vendor's batch degrade accuracy (§2.2).
var vendorQuirkModifiers = []string{
	"megachoice", "ultraflex", "primo", "zenith line", "grade aa",
	"xtra value", "promax", "elite series", "budgetwise", "topnotch",
	"superlux", "brandnew drop",
}

// sharedModifiers flavour titles of every type.
var sharedModifiers = []string{
	"premium", "classic", "deluxe", "value", "pro", "essential", "heavy duty",
	"compact", "portable", "vintage", "modern", "eco", "ultra", "signature",
	"everyday", "new", "improved", "genuine", "assorted", "multi pack",
}

// seedTypes is the curated head of the taxonomy.
var seedTypes = []TypeSpec{
	// --- Jewelry ---------------------------------------------------------
	{
		Name: "rings", Segment: "jewelry",
		HeadTerms: []Term{{Text: "ring"}, {Text: "rings"}},
		Synonyms: []Term{
			{Text: "band"}, {Text: "trio set"},
			{Text: "stackable set", EmergeEpoch: 2},
		},
		Modifiers: []string{"diamond", "platinaire", "10kt white gold", "sterling silver", "accent", "semi eternity", "carat", "solitaire", "wedding", "engagement"},
		Brands:    []string{"forever fine", "aurelia", "gemcraft"},
		Traps:     []string{"wedding band", "diamond trio set"},
	},
	{
		Name: "necklaces", Segment: "jewelry",
		HeadTerms: []Term{{Text: "necklace"}, {Text: "necklaces"}},
		Synonyms:  []Term{{Text: "pendant"}, {Text: "chain"}, {Text: "choker", EmergeEpoch: 1}},
		Modifiers: []string{"sterling silver", "gold plated", "beaded", "charm", "locket", "cubic zirconia"},
		Brands:    []string{"aurelia", "gemcraft", "lunette"},
	},
	{
		Name: "earrings", Segment: "jewelry",
		HeadTerms: []Term{{Text: "earrings"}, {Text: "earring"}},
		Synonyms:  []Term{{Text: "studs"}, {Text: "hoops"}, {Text: "ear climbers", EmergeEpoch: 3}},
		Modifiers: []string{"gold hoop", "pearl", "dangle", "crystal", "sterling silver"},
		Brands:    []string{"aurelia", "lunette"},
	},
	{
		Name: "watches", Segment: "jewelry",
		HeadTerms: []Term{{Text: "watch"}, {Text: "watches"}},
		Synonyms:  []Term{{Text: "chronograph"}, {Text: "timepiece"}, {Text: "smartwatch", EmergeEpoch: 2}},
		Modifiers: []string{"stainless steel", "leather strap", "quartz", "water resistant", "analog"},
		Brands:    []string{"chronex", "apex", "meridian"},
	},
	// --- Home ------------------------------------------------------------
	{
		Name: "area rugs", Segment: "home",
		HeadTerms: []Term{{Text: "area rug"}, {Text: "area rugs"}, {Text: "rug"}, {Text: "rugs"}},
		Synonyms: []Term{
			{Text: "oriental rug"}, {Text: "braided rug"}, {Text: "runner"},
			{Text: "shag rug", EmergeEpoch: 1}, {Text: "tufted rug"},
		},
		Modifiers: []string{"shaw", "oriental", "novelty", "braided", "royal", "casual", "ivory", "tufted", "contemporary", "floral", "5x8", "8x10", "wool", "drive"},
		Brands:    []string{"hearthside", "royal weave", "casa nova"},
	},
	{
		Name: "dining chairs", Segment: "home",
		HeadTerms: []Term{{Text: "dining chair"}, {Text: "dining chairs"}, {Text: "chair"}},
		Synonyms:  []Term{{Text: "side chair"}, {Text: "parsons chair"}, {Text: "counter stool", EmergeEpoch: 2}},
		Modifiers: []string{"upholstered", "solid wood", "set of 2", "espresso", "farmhouse", "mid century"},
		Brands:    []string{"casa nova", "oakline", "hearthside"},
	},
	{
		Name: "table lamps", Segment: "home",
		HeadTerms: []Term{{Text: "table lamp"}, {Text: "table lamps"}, {Text: "lamp"}},
		Synonyms:  []Term{{Text: "desk lamp"}, {Text: "accent lamp"}, {Text: "bedside lamp"}},
		Modifiers: []string{"brushed nickel", "ceramic", "3 way", "led", "linen shade"},
		Brands:    []string{"lumina", "hearthside"},
	},
	{
		Name: "curtains", Segment: "home",
		HeadTerms: []Term{{Text: "curtain"}, {Text: "curtains"}},
		Synonyms:  []Term{{Text: "drapes"}, {Text: "window panel"}, {Text: "valance"}},
		Modifiers: []string{"blackout", "sheer", "grommet", "84 inch", "thermal"},
		Brands:    []string{"casa nova", "windowline"},
	},
	{
		Name: "holiday decorations", Segment: "home",
		HeadTerms: []Term{{Text: "holiday decoration"}, {Text: "holiday decorations"}, {Text: "ornament"}},
		Synonyms:  []Term{{Text: "christmas tree"}, {Text: "garland"}, {Text: "wreath"}, {Text: "tree topper"}},
		Modifiers: []string{"pre lit", "artificial", "6 ft", "glitter", "festive"},
		Brands:    []string{"northstar", "hearthside"},
		// The §4 "tail rule" example: the retailer sells only a few
		// Christmas-tree products; keep this type rare via tail placement.
	},
	{
		Name: "cookware sets", Segment: "home",
		HeadTerms: []Term{{Text: "cookware set"}, {Text: "cookware sets"}},
		Synonyms:  []Term{{Text: "pots and pans"}, {Text: "skillet set"}, {Text: "dutch oven", EmergeEpoch: 1}},
		Modifiers: []string{"nonstick", "10 piece", "stainless steel", "induction ready", "ceramic"},
		Brands:    []string{"kitchenpro", "chefmate"},
	},
	// --- Electronics -----------------------------------------------------
	{
		Name: "laptop computers", Segment: "electronics",
		HeadTerms: []Term{{Text: "laptop"}, {Text: "laptops"}, {Text: "notebook computer"}},
		Synonyms:  []Term{{Text: "ultrabook"}, {Text: "chromebook", EmergeEpoch: 1}, {Text: "2 in 1", EmergeEpoch: 2}},
		Modifiers: []string{"15.6 inch", "8gb ram", "256gb ssd", "quad core", "touchscreen", "backlit keyboard"},
		Brands:    []string{"apex", "nimbus", "vertex"},
		Attrs:     map[string]string{"Screen Size": "screen", "Processor": "cpu"},
		PHeadless: 0.2,
	},
	{
		Name: "smart phones", Segment: "electronics",
		HeadTerms: []Term{{Text: "smartphone"}, {Text: "smart phone"}, {Text: "phone"}},
		Synonyms:  []Term{{Text: "handset"}, {Text: "phablet", EmergeEpoch: 1}, {Text: "foldable", EmergeEpoch: 3}},
		Modifiers: []string{"unlocked", "64gb", "dual sim", "5g", "octa core"},
		Brands:    []string{"apex", "nimbus", "orbit"},
		Attrs:     map[string]string{"Screen Size": "screen", "Carrier": "carrier"},
		PHeadless: 0.2,
	},
	{
		Name: "tablets", Segment: "electronics",
		HeadTerms: []Term{{Text: "tablet"}, {Text: "tablets"}},
		Synonyms:  []Term{{Text: "e reader"}, {Text: "slate", EmergeEpoch: 2}},
		Modifiers: []string{"10 inch", "wifi", "32gb", "kids edition"},
		Brands:    []string{"apex", "orbit"},
		Attrs:     map[string]string{"Screen Size": "screen"},
	},
	{
		Name: "computer cables", Segment: "electronics",
		HeadTerms: []Term{{Text: "cable"}, {Text: "cables"}, {Text: "cord"}},
		Synonyms: []Term{
			{Text: "usb cable"}, {Text: "networking cord"}, {Text: "motherboard cable"},
			{Text: "mouse cable"}, {Text: "monitor cable"}, {Text: "hdmi cable"},
			{Text: "usb c cable", EmergeEpoch: 1}, {Text: "thunderbolt cable", EmergeEpoch: 2},
			{Text: "fiber patch cord", EmergeEpoch: 3},
		},
		Modifiers: []string{"6 ft", "braided", "high speed", "shielded", "gold plated"},
		Brands:    []string{"linkcore", "vertex"},
		PHeadless: 0.15,
	},
	{
		Name: "laptop bags & cases", Segment: "electronics",
		HeadTerms: []Term{{Text: "laptop bag"}, {Text: "laptop case"}, {Text: "laptop sleeve"}},
		Synonyms:  []Term{{Text: "messenger bag"}, {Text: "notebook sleeve"}, {Text: "tech backpack", EmergeEpoch: 1}},
		Modifiers: []string{"15.6 inch", "padded", "water resistant", "slim"},
		Brands:    []string{"urban gear", "vertex"},
	},
	{
		Name: "headphones", Segment: "electronics",
		HeadTerms: []Term{{Text: "headphones"}, {Text: "headphone"}, {Text: "headset"}},
		Synonyms:  []Term{{Text: "earbuds"}, {Text: "true wireless earbuds", EmergeEpoch: 2}},
		Modifiers: []string{"noise cancelling", "over ear", "bluetooth", "wired", "studio"},
		Brands:    []string{"sonique", "apex", "orbit"},
	},
	{
		Name: "computer monitors", Segment: "electronics",
		HeadTerms: []Term{{Text: "monitor"}, {Text: "monitors"}},
		Synonyms:  []Term{{Text: "display"}, {Text: "ultrawide", EmergeEpoch: 2}},
		Modifiers: []string{"27 inch", "4k", "ips", "144hz", "curved"},
		Brands:    []string{"vertex", "nimbus"},
		Attrs:     map[string]string{"Screen Size": "screen"},
	},
	{
		Name: "keyboards", Segment: "electronics",
		HeadTerms: []Term{{Text: "keyboard"}, {Text: "keyboards"}},
		Synonyms:  []Term{{Text: "mechanical keyboard"}, {Text: "keypad"}},
		Modifiers: []string{"wireless", "rgb", "ergonomic", "compact"},
		Brands:    []string{"linkcore", "vertex"},
	},
	{
		Name: "bluetooth speakers", Segment: "electronics",
		HeadTerms: []Term{{Text: "speaker"}, {Text: "speakers"}},
		Synonyms:  []Term{{Text: "soundbar"}, {Text: "boombox"}, {Text: "smart speaker", EmergeEpoch: 1}},
		Modifiers: []string{"portable", "waterproof", "bluetooth", "20w"},
		Brands:    []string{"sonique", "orbit"},
	},
	// --- Automotive ------------------------------------------------------
	{
		Name: "motor oil", Segment: "automotive",
		HeadTerms: []Term{{Text: "motor oil"}, {Text: "engine oil"}, {Text: "motor oils"}, {Text: "engine oils"}},
		Synonyms: []Term{
			{Text: "automotive oil"}, {Text: "auto oil"}, {Text: "car oil"},
			{Text: "truck oil"}, {Text: "suv oil"}, {Text: "van oil"},
			{Text: "vehicle oil"}, {Text: "motorcycle oil"}, {Text: "pickup oil"},
			{Text: "scooter oil", EmergeEpoch: 1}, {Text: "atv oil"},
			{Text: "boat oil"}, {Text: "engine lubricant"}, {Text: "motor lubricant"},
		},
		Modifiers: []string{"synthetic", "5w 30", "10w 40", "high mileage", "5 qt", "full synthetic"},
		Brands:    []string{"luboil", "torquex", "roadmaster"},
	},
	{
		Name: "wiper blades", Segment: "automotive",
		HeadTerms: []Term{{Text: "wiper blade"}, {Text: "wiper blades"}},
		Synonyms:  []Term{{Text: "windshield wiper"}, {Text: "beam blade", EmergeEpoch: 1}},
		Modifiers: []string{"22 inch", "all season", "rear", "pair"},
		Brands:    []string{"roadmaster", "clearview"},
	},
	{
		Name: "car batteries", Segment: "automotive",
		HeadTerms: []Term{{Text: "car battery"}, {Text: "car batteries"}, {Text: "auto battery"}},
		Synonyms:  []Term{{Text: "agm battery", EmergeEpoch: 1}, {Text: "marine battery"}},
		Modifiers: []string{"12v", "600 cca", "maintenance free", "group 24"},
		Brands:    []string{"torquex", "voltedge"},
	},
	{
		Name: "car floor mats", Segment: "automotive",
		HeadTerms: []Term{{Text: "floor mat"}, {Text: "floor mats"}},
		Synonyms:  []Term{{Text: "floor liner"}, {Text: "cargo liner"}},
		Modifiers: []string{"all weather", "rubber", "custom fit", "4 piece"},
		Brands:    []string{"roadmaster", "armorfit"},
	},
	// --- Apparel ---------------------------------------------------------
	{
		Name: "jeans", Segment: "apparel",
		HeadTerms: []Term{{Text: "jeans"}, {Text: "jean"}},
		Synonyms:  []Term{{Text: "denim pants"}, {Text: "skinny jeans"}, {Text: "carpenter jeans"}, {Text: "jeggings", EmergeEpoch: 2}},
		Modifiers: []string{"denim", "relaxed fit", "slim fit", "indigo", "bootcut", "38x30", "stretch", "distressed"},
		Brands:    []string{"dickies", "bluepeak", "ranchhand"},
	},
	{
		Name: "shorts", Segment: "apparel",
		HeadTerms: []Term{{Text: "shorts"}, {Text: "short"}},
		Synonyms:  []Term{{Text: "cargo shorts"}, {Text: "board shorts"}, {Text: "bermuda shorts"}},
		Modifiers: []string{"boys", "denim", "knit", "cotton blend", "elastic", "loose fit", "classic mesh", "cargo", "carpenter", "2 pack"},
		Brands:    []string{"bluepeak", "playfield"},
	},
	{
		Name: "dresses", Segment: "apparel",
		HeadTerms: []Term{{Text: "dress"}, {Text: "dresses"}},
		Synonyms:  []Term{{Text: "sundress"}, {Text: "maxi dress"}, {Text: "shift dress"}, {Text: "wrap dress", EmergeEpoch: 1}},
		Modifiers: []string{"floral", "sleeveless", "midi", "casual", "pleated"},
		Brands:    []string{"lunette", "meadowlane"},
	},
	{
		Name: "t-shirts", Segment: "apparel",
		HeadTerms: []Term{{Text: "t shirt"}, {Text: "t shirts"}, {Text: "tee"}},
		Synonyms:  []Term{{Text: "graphic tee"}, {Text: "crew neck"}, {Text: "v neck"}},
		Modifiers: []string{"cotton", "short sleeve", "mens", "womens", "3 pack"},
		Brands:    []string{"bluepeak", "playfield", "meadowlane"},
	},
	{
		Name: "handbags", Segment: "apparel",
		HeadTerms: []Term{{Text: "handbag"}, {Text: "handbags"}},
		Synonyms: []Term{
			{Text: "satchel"}, {Text: "purse"}, {Text: "tote"},
			{Text: "crossbody bag"}, {Text: "shoulder bag"},
			{Text: "hobo bag", EmergeEpoch: 1}, {Text: "clutch"},
			{Text: "bucket bag", EmergeEpoch: 2},
		},
		Modifiers: []string{"faux leather", "quilted", "vegan leather", "woven", "mini"},
		Brands:    []string{"lunette", "urban gear", "meadowlane"},
		PHeadless: 0.25, // the paper's "hard to collect a representative sample" type
	},
	{
		Name: "athletic gloves", Segment: "apparel",
		HeadTerms: []Term{{Text: "athletic glove"}, {Text: "athletic gloves"}},
		Synonyms: []Term{
			{Text: "impact gloves"}, {Text: "football gloves"}, {Text: "training gloves"},
			{Text: "boxing gloves"}, {Text: "golf glove"}, {Text: "workout gloves"},
			{Text: "batting gloves", EmergeEpoch: 1},
		},
		Modifiers: []string{"grip", "padded", "youth", "large", "pair"},
		Brands:    []string{"playfield", "ironclad"},
	},
	{
		Name: "sneakers", Segment: "apparel",
		HeadTerms: []Term{{Text: "sneaker"}, {Text: "sneakers"}},
		Synonyms:  []Term{{Text: "running shoes"}, {Text: "trainers"}, {Text: "slip ons"}},
		Modifiers: []string{"memory foam", "lightweight", "size 10", "breathable"},
		Brands:    []string{"playfield", "strideright"},
	},
	{
		Name: "work pants", Segment: "apparel",
		HeadTerms: []Term{{Text: "work pants"}, {Text: "work pant"}},
		Synonyms:  []Term{{Text: "utility pants"}, {Text: "cargo pants"}, {Text: "duck canvas pants"}},
		Modifiers: []string{"double knee", "flex", "relaxed fit", "34x32", "ripstop"},
		Brands:    []string{"dickies", "ranchhand", "ironclad"},
	},
	// --- Tools -----------------------------------------------------------
	{
		Name: "abrasive wheels & discs", Segment: "tools",
		HeadTerms: []Term{{Text: "abrasive wheel"}, {Text: "abrasive wheels"}, {Text: "abrasive disc"}, {Text: "abrasive discs"}},
		Synonyms: []Term{
			{Text: "flap disc"}, {Text: "grinding wheel"}, {Text: "fiber disc"},
			{Text: "sanding disc"}, {Text: "zirconia fiber disc"},
			{Text: "cutter wheel"}, {Text: "knot wheel"}, {Text: "twisted knot wheel"},
			{Text: "sander disc"}, {Text: "abrasive grinding wheel"},
			{Text: "cutoff wheel", EmergeEpoch: 1},
		},
		Modifiers: []string{"4 1 2 inch", "120 grit", "60 grit", "type 27", "10 pack"},
		Brands:    []string{"ironclad", "grindex"},
	},
	{
		Name: "cordless drills", Segment: "tools",
		HeadTerms: []Term{{Text: "cordless drill"}, {Text: "cordless drills"}, {Text: "drill"}},
		Synonyms:  []Term{{Text: "drill driver"}, {Text: "impact driver"}, {Text: "hammer drill"}},
		Modifiers: []string{"20v", "brushless", "with battery", "kit"},
		Brands:    []string{"ironclad", "grindex", "voltedge"},
	},
	{
		Name: "screwdriver sets", Segment: "tools",
		HeadTerms: []Term{{Text: "screwdriver set"}, {Text: "screwdriver sets"}, {Text: "screwdriver"}},
		Synonyms:  []Term{{Text: "bit set"}, {Text: "precision drivers"}},
		Modifiers: []string{"magnetic", "42 piece", "phillips", "torx"},
		Brands:    []string{"ironclad", "grindex"},
	},
	{
		Name: "tool boxes", Segment: "tools",
		HeadTerms: []Term{{Text: "tool box"}, {Text: "tool boxes"}, {Text: "toolbox"}},
		Synonyms:  []Term{{Text: "tool chest"}, {Text: "organizer case"}, {Text: "rolling tool bag", EmergeEpoch: 1}},
		Modifiers: []string{"22 inch", "steel", "stackable", "with tray"},
		Brands:    []string{"ironclad", "armorfit"},
	},
	// --- Media -----------------------------------------------------------
	{
		Name: "books", Segment: "media",
		HeadTerms: []Term{{Text: "paperback"}, {Text: "hardcover"}, {Text: "book"}},
		Synonyms:  []Term{{Text: "novel"}, {Text: "cookbook"}, {Text: "boxed set"}, {Text: "audiobook", EmergeEpoch: 2}},
		Modifiers: []string{"bestselling", "illustrated", "first edition", "large print"},
		Brands:    []string{"inkwell press", "meridian"},
		Attrs:     map[string]string{"isbn": "isbn", "Number of Pages": "pages"},
		PHeadless: 0.35, // titles are book titles; the isbn attribute is the signal
	},
	{
		Name: "dvds", Segment: "media",
		HeadTerms: []Term{{Text: "dvd"}, {Text: "dvds"}},
		Synonyms:  []Term{{Text: "blu ray"}, {Text: "box set"}, {Text: "4k ultra hd", EmergeEpoch: 1}},
		Modifiers: []string{"widescreen", "special edition", "season 1"},
		Brands:    []string{"screenhouse"},
		Attrs:     map[string]string{"Rating": "rating", "Runtime": "runtime"},
	},
	{
		Name: "video games", Segment: "media",
		HeadTerms: []Term{{Text: "video game"}, {Text: "video games"}},
		Synonyms:  []Term{{Text: "game cartridge"}, {Text: "collectors edition"}, {Text: "digital code", EmergeEpoch: 2}},
		Modifiers: []string{"rated e", "multiplayer", "open world"},
		Brands:    []string{"pixelforge", "screenhouse"},
		Attrs:     map[string]string{"Platform": "platform", "Rating": "rating"},
		PHeadless: 0.3,
	},
	// --- Grocery ---------------------------------------------------------
	{
		Name: "ground coffee", Segment: "grocery",
		HeadTerms: []Term{{Text: "ground coffee"}, {Text: "coffee"}},
		Synonyms:  []Term{{Text: "coffee beans"}, {Text: "espresso roast"}, {Text: "cold brew packs", EmergeEpoch: 1}},
		Modifiers: []string{"medium roast", "dark roast", "12 oz", "arabica", "decaf"},
		Brands:    []string{"morningpeak", "roastery co"},
	},
	{
		Name: "olive oil", Segment: "grocery",
		HeadTerms: []Term{{Text: "olive oil"}, {Text: "olive oils"}},
		Synonyms:  []Term{{Text: "extra virgin olive oil"}, {Text: "evoo", EmergeEpoch: 1}},
		Modifiers: []string{"extra virgin", "cold pressed", "500 ml", "imported"},
		Brands:    []string{"oliveto", "pantry gold"},
		// Deliberate confusion with motor oil: both are "* oil".
	},
	{
		Name: "breakfast cereal", Segment: "grocery",
		HeadTerms: []Term{{Text: "cereal"}, {Text: "cereals"}},
		Synonyms:  []Term{{Text: "granola"}, {Text: "muesli"}, {Text: "overnight oats", EmergeEpoch: 2}},
		Modifiers: []string{"whole grain", "honey", "family size", "gluten free"},
		Brands:    []string{"morningpeak", "pantry gold"},
	},
	{
		Name: "snack bars", Segment: "grocery",
		HeadTerms: []Term{{Text: "snack bar"}, {Text: "snack bars"}},
		Synonyms:  []Term{{Text: "granola bars"}, {Text: "protein bars"}, {Text: "energy bites", EmergeEpoch: 1}},
		Modifiers: []string{"chocolate chip", "peanut butter", "12 count", "chewy"},
		Brands:    []string{"pantry gold", "trailfuel"},
	},
	// --- Sports ----------------------------------------------------------
	{
		Name: "basketballs", Segment: "sports",
		HeadTerms: []Term{{Text: "basketball"}, {Text: "basketballs"}},
		Synonyms:  []Term{{Text: "indoor ball"}, {Text: "outdoor ball"}},
		Modifiers: []string{"official size", "composite leather", "size 7"},
		Brands:    []string{"playfield", "courtking"},
	},
	{
		Name: "yoga mats", Segment: "sports",
		HeadTerms: []Term{{Text: "yoga mat"}, {Text: "yoga mats"}},
		Synonyms:  []Term{{Text: "exercise mat"}, {Text: "fitness mat"}, {Text: "travel mat", EmergeEpoch: 1}},
		Modifiers: []string{"non slip", "6mm", "extra thick", "with strap"},
		Brands:    []string{"zenflow", "playfield"},
	},
	{
		Name: "camping tents", Segment: "sports",
		HeadTerms: []Term{{Text: "tent"}, {Text: "tents"}},
		Synonyms:  []Term{{Text: "dome tent"}, {Text: "backpacking tent"}, {Text: "instant cabin", EmergeEpoch: 1}},
		Modifiers: []string{"4 person", "waterproof", "easy setup", "3 season"},
		Brands:    []string{"trailfuel", "summitline"},
	},
	{
		Name: "fishing rods", Segment: "sports",
		HeadTerms: []Term{{Text: "fishing rod"}, {Text: "fishing rods"}},
		Synonyms:  []Term{{Text: "spinning combo"}, {Text: "casting rod"}, {Text: "telescopic rod", EmergeEpoch: 2}},
		Modifiers: []string{"6 ft 6", "medium action", "graphite", "with reel"},
		Brands:    []string{"summitline", "lakecaster"},
	},
	// --- Baby ------------------------------------------------------------
	{
		Name: "diapers", Segment: "baby",
		HeadTerms: []Term{{Text: "diapers"}, {Text: "diaper"}},
		Synonyms:  []Term{{Text: "training pants"}, {Text: "overnight pants"}, {Text: "cloth nappies", EmergeEpoch: 2}},
		Modifiers: []string{"size 4", "hypoallergenic", "144 count", "sensitive"},
		Brands:    []string{"littlesteps", "cuddlecare"},
	},
	{
		Name: "strollers", Segment: "baby",
		HeadTerms: []Term{{Text: "stroller"}, {Text: "strollers"}},
		Synonyms:  []Term{{Text: "travel system"}, {Text: "jogging stroller"}, {Text: "umbrella stroller"}},
		Modifiers: []string{"lightweight", "reclining", "with car seat", "all terrain"},
		Brands:    []string{"littlesteps", "strideright"},
	},
	{
		Name: "baby bottles", Segment: "baby",
		HeadTerms: []Term{{Text: "baby bottle"}, {Text: "baby bottles"}},
		Synonyms:  []Term{{Text: "feeding bottle"}, {Text: "sippy cup"}, {Text: "anti colic bottle", EmergeEpoch: 1}},
		Modifiers: []string{"9 oz", "bpa free", "3 pack", "slow flow"},
		Brands:    []string{"cuddlecare", "littlesteps"},
	},
	// --- Office ----------------------------------------------------------
	{
		Name: "ballpoint pens", Segment: "office",
		HeadTerms: []Term{{Text: "ballpoint pen"}, {Text: "ballpoint pens"}, {Text: "pens"}},
		Synonyms:  []Term{{Text: "gel pens"}, {Text: "rollerball"}, {Text: "fountain pen"}},
		Modifiers: []string{"black ink", "medium point", "12 count", "retractable"},
		Brands:    []string{"inkwell press", "deskmate"},
	},
	{
		Name: "notebooks", Segment: "office",
		HeadTerms: []Term{{Text: "notebook"}, {Text: "notebooks"}},
		Synonyms:  []Term{{Text: "composition book"}, {Text: "legal pads"}, {Text: "bullet journal", EmergeEpoch: 1}},
		Modifiers: []string{"college ruled", "spiral", "100 sheets", "5 pack"},
		Brands:    []string{"deskmate", "inkwell press"},
		// Confusable with "laptop computers" via the bare token "notebook".
	},
	{
		Name: "printer paper", Segment: "office",
		HeadTerms: []Term{{Text: "printer paper"}, {Text: "copy paper"}},
		Synonyms:  []Term{{Text: "multipurpose paper"}, {Text: "cardstock"}},
		Modifiers: []string{"8.5 x 11", "500 sheets", "bright white", "ream"},
		Brands:    []string{"deskmate", "paperworks"},
	},
	// --- Pet -------------------------------------------------------------
	{
		Name: "dog food", Segment: "pet",
		HeadTerms: []Term{{Text: "dog food"}, {Text: "dog foods"}},
		Synonyms:  []Term{{Text: "kibble"}, {Text: "puppy chow"}, {Text: "grain free formula", EmergeEpoch: 1}},
		Modifiers: []string{"chicken and rice", "30 lb", "adult", "small breed"},
		Brands:    []string{"pawsome", "tailwagger"},
	},
	{
		Name: "cat litter", Segment: "pet",
		HeadTerms: []Term{{Text: "cat litter"}, {Text: "kitty litter"}},
		Synonyms:  []Term{{Text: "clumping litter"}, {Text: "crystal litter", EmergeEpoch: 1}},
		Modifiers: []string{"unscented", "25 lb", "multi cat", "low dust"},
		Brands:    []string{"pawsome", "freshden"},
	},
	// --- Garden ----------------------------------------------------------
	{
		Name: "garden hoses", Segment: "garden",
		HeadTerms: []Term{{Text: "garden hose"}, {Text: "garden hoses"}},
		Synonyms:  []Term{{Text: "expandable hose"}, {Text: "soaker hose"}},
		Modifiers: []string{"50 ft", "kink free", "heavy duty", "with nozzle"},
		Brands:    []string{"greensprout", "armorfit"},
	},
	{
		Name: "lawn mowers", Segment: "garden",
		HeadTerms: []Term{{Text: "lawn mower"}, {Text: "lawn mowers"}},
		Synonyms:  []Term{{Text: "push mower"}, {Text: "riding mower"}, {Text: "robot mower", EmergeEpoch: 3}},
		Modifiers: []string{"21 inch", "self propelled", "gas powered", "electric start"},
		Brands:    []string{"greensprout", "torquex"},
	},
	// --- Health ----------------------------------------------------------
	{
		Name: "shampoo", Segment: "health",
		HeadTerms: []Term{{Text: "shampoo"}, {Text: "shampoos"}},
		Synonyms:  []Term{{Text: "2 in 1 wash"}, {Text: "dry shampoo", EmergeEpoch: 1}},
		Modifiers: []string{"moisturizing", "anti dandruff", "sulfate free", "24 oz"},
		Brands:    []string{"purecare", "silkroot"},
	},
	{
		Name: "toothpaste", Segment: "health",
		HeadTerms: []Term{{Text: "toothpaste"}, {Text: "tooth paste"}},
		Synonyms:  []Term{{Text: "whitening gel"}, {Text: "charcoal paste", EmergeEpoch: 2}},
		Modifiers: []string{"fluoride", "mint", "4 oz", "2 pack"},
		Brands:    []string{"purecare", "brightsmile"},
	},
	{
		Name: "vitamins", Segment: "health",
		HeadTerms: []Term{{Text: "vitamins"}, {Text: "vitamin"}},
		Synonyms:  []Term{{Text: "multivitamin"}, {Text: "gummies"}, {Text: "supplement"}},
		Modifiers: []string{"daily", "immune support", "90 count", "extra strength"},
		Brands:    []string{"purecare", "vitalworks"},
		// "medicine"-adjacent: the business-requirement experiments route
		// this type to manual review (§3.2 "absolute certainty").
	},
}

// syntheticNouns and syntheticMaterials build the long tail of types beyond
// the curated seed: "<material> <noun>s" (e.g. "ceramic vases").
var syntheticNouns = []string{
	"vase", "basket", "candle", "pillow", "blanket", "mirror", "clock",
	"frame", "shelf", "bin", "tray", "bowl", "mug", "kettle", "toaster",
	"blender", "fan", "heater", "humidifier", "scale", "tripod", "easel",
	"stapler", "binder", "marker", "crayon", "puzzle", "kite", "whistle",
	"lantern", "hammock", "cooler", "thermos", "backpack", "wallet", "belt",
	"scarf", "beanie", "sandal", "slipper", "apron", "towel", "rake",
	"shovel", "trowel", "planter", "sprinkler", "feeder", "leash", "collar",
	"harness", "perch", "aquarium", "terrarium", "helmet", "knee pad",
	"racket", "paddle", "dumbbell", "kettlebell", "jump rope", "dartboard",
}

var syntheticMaterials = []string{
	"ceramic", "bamboo", "woven", "stainless", "copper", "walnut", "acrylic",
	"canvas", "wool", "marble", "rattan", "cast iron", "silicone", "oak",
	"velvet", "linen", "granite", "carbon", "mesh", "quilted",
}

var syntheticSegments = []string{
	"home", "garden", "sports", "office", "pet", "apparel", "tools", "health",
}

var syntheticBrandPool = []string{
	"northbay", "eastwick", "truecraft", "homestead", "brightline", "cozynest",
	"sturdyco", "fieldstone", "clearbrook", "maplecrest", "silverfox", "owlworks",
}
