// Package synonym implements the §5.1 WalmartLabs tool that helps analysts
// expand a rule's disjunction with "synonyms" in minutes instead of hours.
//
// Given a pattern with a \syn slot — e.g. (motor | engine | \syn) oils? —
// and a development corpus of product titles, the tool:
//
//  1. matches the generalized patterns over the corpus, extracting every
//     candidate phrase of up to MaxSynLen tokens that fills the slot,
//     together with its prefix/suffix context windows;
//  2. ranks candidates by TF-IDF cosine similarity between their mean
//     context vectors and the golden synonyms' mean context vectors
//     (score = wp·prefix_sim + ws·suffix_sim);
//  3. shows the analyst the top k with sample titles; incorporates the
//     accept/reject feedback via the Rocchio update, re-ranks, and repeats
//     until the candidates are exhausted or the analyst stops.
package synonym

import (
	"errors"
	"sort"
	"strings"

	"repro/internal/pattern"
	"repro/internal/textvec"
)

// Options parameterizes the tool. Zero values take the paper's production
// settings.
type Options struct {
	MaxSynLen    int     // candidate length bound in tokens (paper: 3)
	ContextWidth int     // context window in tokens (paper: 5)
	TopK         int     // candidates shown per iteration (paper: 10)
	Wp, Ws       float64 // prefix/suffix balance (paper: 0.5 / 0.5)
	// Rocchio weights (α keeps the old mean, β pulls toward accepted
	// candidates, γ pushes away from rejected ones).
	Alpha, Beta, Gamma float64
	// MaxSamples is how many sample titles are kept per candidate.
	MaxSamples int
	// DisableFeedback freezes the golden context means: labels still remove
	// candidates from the pool, but the ranking never adapts. This is the
	// ablation of the §5.1 Rocchio re-ranking step.
	DisableFeedback bool
}

func (o Options) withDefaults() Options {
	if o.MaxSynLen == 0 {
		o.MaxSynLen = 3
	}
	if o.ContextWidth == 0 {
		o.ContextWidth = 5
	}
	if o.TopK == 0 {
		o.TopK = 10
	}
	if o.Wp == 0 && o.Ws == 0 {
		o.Wp, o.Ws = 0.5, 0.5
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Beta == 0 {
		o.Beta = 0.75
	}
	if o.Gamma == 0 {
		o.Gamma = 0.25
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 3
	}
	return o
}

// Candidate is one ranked synonym candidate.
type Candidate struct {
	Phrase []string
	Score  float64
	// Matches counts occurrences in the corpus.
	Matches int
	// SampleTitles are up to MaxSamples corpus indices where the candidate
	// appears, for the analyst to inspect.
	SampleTitles []int
}

// Key returns the canonical phrase form.
func (c Candidate) Key() string { return strings.Join(c.Phrase, " ") }

type candState struct {
	phrase  []string
	prefix  textvec.Vector // mean normalized prefix vector
	suffix  textvec.Vector
	matches int
	samples []int
	labeled bool
}

// Tool is one synonym-expansion session over a fixed corpus.
type Tool struct {
	opts          Options
	pat           *pattern.Pattern
	meanP         textvec.Vector // golden mean prefix vector (M̄_p), Rocchio-updated
	meanS         textvec.Vector
	cands         map[string]*candState
	accepted      [][]string
	rejected      [][]string
	goldenMatches int
}

// ErrNoSynSlot is returned for patterns without a \syn slot.
var ErrNoSynSlot = errors.New("synonym: pattern has no \\syn slot")

// ErrNoMatches is returned when the generalized pattern matches nothing in
// the corpus (the tool's 1-in-25 failure case in the paper's evaluation).
var ErrNoMatches = errors.New("synonym: pattern matches nothing in the corpus")

// NewTool prepares a session: extracts matches, builds context corpora and
// computes the initial ranking state.
func NewTool(p *pattern.Pattern, titles [][]string, opts Options) (*Tool, error) {
	if !p.HasSyn() {
		return nil, ErrNoSynSlot
	}
	opts = opts.withDefaults()

	golden := map[string]bool{}
	for _, g := range p.SynGolden() {
		golden[strings.Join(g, " ")] = true
	}

	// Pass 1: collect matches and their contexts.
	type rawMatch struct {
		key      string
		phrase   []string
		prefix   []string
		suffix   []string
		titleIdx int
	}
	var matches []rawMatch
	synOpts := pattern.SynOptions{MaxSynLen: opts.MaxSynLen, ContextWidth: opts.ContextWidth}
	for ti, title := range titles {
		for _, m := range p.FindSyn(title, synOpts) {
			matches = append(matches, rawMatch{
				key: m.Key(), phrase: m.Candidate,
				prefix: m.Prefix, suffix: m.Suffix, titleIdx: ti,
			})
		}
	}
	if len(matches) == 0 {
		return nil, ErrNoMatches
	}

	// Context corpora for IDF (one per side, per §5.1's df_t over matches).
	prefixCorpus, suffixCorpus := textvec.NewCorpus(), textvec.NewCorpus()
	for _, m := range matches {
		prefixCorpus.Add(m.prefix)
		suffixCorpus.Add(m.suffix)
	}

	t := &Tool{opts: opts, pat: p, cands: map[string]*candState{}}
	var goldenP, goldenS []textvec.Vector
	perCandP := map[string][]textvec.Vector{}
	perCandS := map[string][]textvec.Vector{}
	for _, m := range matches {
		pv := prefixCorpus.TFIDF(m.prefix).Normalized()
		sv := suffixCorpus.TFIDF(m.suffix).Normalized()
		if golden[m.key] {
			goldenP = append(goldenP, pv)
			goldenS = append(goldenS, sv)
			t.goldenMatches++
			continue
		}
		if endsWithGolden(m.phrase, p.SynGolden()) {
			// "synthetic motor" filling the slot of (motor|…) oils? is an
			// artifact of the longer generalized regex: the golden itself
			// already matches at this position, with "synthetic" as mere
			// context. Dropping these mirrors the paper's removal of golden
			// synonyms from the candidate set.
			continue
		}
		perCandP[m.key] = append(perCandP[m.key], pv)
		perCandS[m.key] = append(perCandS[m.key], sv)
		cs := t.cands[m.key]
		if cs == nil {
			cs = &candState{phrase: m.phrase}
			t.cands[m.key] = cs
		}
		cs.matches++
		if len(cs.samples) < opts.MaxSamples {
			cs.samples = append(cs.samples, m.titleIdx)
		}
	}
	for key, cs := range t.cands {
		cs.prefix = textvec.Mean(perCandP[key])
		cs.suffix = textvec.Mean(perCandS[key])
	}
	t.meanP = textvec.Mean(goldenP)
	t.meanS = textvec.Mean(goldenS)
	return t, nil
}

// endsWithGolden reports whether phrase has a strict suffix (or is longer
// than and ends with) one of the golden token sequences.
func endsWithGolden(phrase []string, goldens [][]string) bool {
	for _, g := range goldens {
		if len(g) == 0 || len(phrase) <= len(g) {
			continue
		}
		match := true
		off := len(phrase) - len(g)
		for i, tok := range g {
			if phrase[off+i] != tok {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// GoldenMatches returns how many corpus matches used a golden synonym.
func (t *Tool) GoldenMatches() int { return t.goldenMatches }

// Remaining returns the number of unlabeled candidates.
func (t *Tool) Remaining() int {
	n := 0
	for _, cs := range t.cands {
		if !cs.labeled {
			n++
		}
	}
	return n
}

// score computes the §5.1 similarity score of a candidate against the
// current golden context means.
func (t *Tool) score(cs *candState) float64 {
	return t.opts.Wp*cs.prefix.Cosine(t.meanP) + t.opts.Ws*cs.suffix.Cosine(t.meanS)
}

// Top returns the k highest-scoring unlabeled candidates (ties broken by
// match count, then phrase).
func (t *Tool) Top(k int) []Candidate {
	var out []Candidate
	for _, cs := range t.cands {
		if cs.labeled {
			continue
		}
		out = append(out, Candidate{
			Phrase: cs.phrase, Score: t.score(cs),
			Matches: cs.matches, SampleTitles: cs.samples,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Matches != out[j].Matches {
			return out[i].Matches > out[j].Matches
		}
		return out[i].Key() < out[j].Key()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Feedback incorporates the analyst's labels for shown candidates: accepted
// phrases join the expansion set, both label sets leave the pool, and the
// golden context means move via the Rocchio update.
func (t *Tool) Feedback(accepted, rejected []string) {
	var corrP, corrS, incP, incS []textvec.Vector
	for _, key := range accepted {
		if cs, ok := t.cands[key]; ok && !cs.labeled {
			cs.labeled = true
			t.accepted = append(t.accepted, cs.phrase)
			corrP = append(corrP, cs.prefix)
			corrS = append(corrS, cs.suffix)
		}
	}
	for _, key := range rejected {
		if cs, ok := t.cands[key]; ok && !cs.labeled {
			cs.labeled = true
			t.rejected = append(t.rejected, cs.phrase)
			incP = append(incP, cs.prefix)
			incS = append(incS, cs.suffix)
		}
	}
	if t.opts.DisableFeedback {
		return
	}
	t.meanP = textvec.Rocchio(t.meanP, corrP, incP, t.opts.Alpha, t.opts.Beta, t.opts.Gamma)
	t.meanS = textvec.Rocchio(t.meanS, corrS, incS, t.opts.Alpha, t.opts.Beta, t.opts.Gamma)
}

// Accepted returns the accepted phrases in acceptance order.
func (t *Tool) Accepted() [][]string { return t.accepted }

// ExpandedPattern returns the input pattern with the slot replaced by the
// goldens plus all accepted synonyms — the tool's final output.
func (t *Tool) ExpandedPattern() *pattern.Pattern {
	return t.pat.WithSynExpanded(t.accepted)
}

// SessionStats summarizes a completed tool session — the quantities §5.1
// reports (iterations of working with the analyst, synonyms found, analyst
// effort in shown candidates).
type SessionStats struct {
	Iterations      int
	CandidatesShown int
	Accepted        int
	// ExhaustedPool reports whether the session ended because every
	// candidate was labeled (vs. the analyst stopping).
	ExhaustedPool bool
}

// Oracle answers "is this phrase a correct synonym?" — in production the
// analyst, in experiments a ground-truth-backed simulated analyst.
type Oracle func(phrase []string) bool

// RunSession drives the interactive loop automatically: show TopK, label via
// the oracle, feed back, repeat. It stops after maxIter iterations (0 =
// unlimited), when the pool is exhausted, or after stopAfterBarren
// consecutive iterations with no accepted candidate (0 = never stop early —
// though note the paper's analysts stop "when they think they have found
// enough synonyms").
func RunSession(t *Tool, oracle Oracle, maxIter, stopAfterBarren int) SessionStats {
	var stats SessionStats
	barren := 0
	for {
		if maxIter > 0 && stats.Iterations >= maxIter {
			return stats
		}
		top := t.Top(t.opts.TopK)
		if len(top) == 0 {
			stats.ExhaustedPool = true
			return stats
		}
		stats.Iterations++
		stats.CandidatesShown += len(top)
		var accepted, rejected []string
		for _, c := range top {
			if oracle(c.Phrase) {
				accepted = append(accepted, c.Key())
			} else {
				rejected = append(rejected, c.Key())
			}
		}
		stats.Accepted += len(accepted)
		t.Feedback(accepted, rejected)
		if len(accepted) == 0 {
			barren++
			if stopAfterBarren > 0 && barren >= stopAfterBarren {
				return stats
			}
		} else {
			barren = 0
		}
	}
}
