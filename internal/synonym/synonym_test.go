package synonym

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/tokenize"
)

// motorOilCorpus builds a corpus where oil phrases of several vehicle kinds
// appear in motor-oil-like contexts, and distractor "* oil" phrases (olive,
// coconut) appear in grocery contexts.
func motorOilCorpus() [][]string {
	titles := []string{
		"luboil synthetic motor oil 5 qt jug",
		"torquex high mileage engine oil 5w 30",
		"roadmaster truck oil 10w 40 full synthetic",
		"luboil car oil high mileage 5 qt",
		"torquex motorcycle oil synthetic blend 1 qt",
		"roadmaster boat oil marine formula 1 gal",
		"luboil atv oil all terrain 1 qt",
		"premium suv oil full synthetic 5 qt",
		"torquex van oil fleet formula",
		"oliveto extra virgin olive oil cold pressed 500 ml",
		"pantry gold olive oil imported from italy",
		"silkroot coconut oil for cooking 16 oz",
		"purecare coconut oil moisturizing hair treatment",
		"luboil motor oil value 2 pack",
		"torquex engine oil filter and oil bundle",
	}
	out := make([][]string, len(titles))
	for i, s := range titles {
		out[i] = tokenize.Tokenize(s)
	}
	return out
}

func newMotorOilTool(t *testing.T) *Tool {
	t.Helper()
	p := pattern.MustParse(`(motor | engine | \syn) oils?`)
	tool, err := NewTool(p, motorOilCorpus(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tool
}

func TestNewToolValidation(t *testing.T) {
	if _, err := NewTool(pattern.MustParse("rings?"), motorOilCorpus(), Options{}); !errors.Is(err, ErrNoSynSlot) {
		t.Fatalf("want ErrNoSynSlot, got %v", err)
	}
	p := pattern.MustParse(`(quantum | \syn) flux capacitors?`)
	if _, err := NewTool(p, motorOilCorpus(), Options{}); !errors.Is(err, ErrNoMatches) {
		t.Fatalf("want ErrNoMatches, got %v", err)
	}
}

func TestGoldenMatchesCounted(t *testing.T) {
	tool := newMotorOilTool(t)
	// motor oil ×3 (titles 1, 14, plus "motor oil value"), engine oil ×3.
	if tool.GoldenMatches() < 4 {
		t.Fatalf("golden matches = %d, want several", tool.GoldenMatches())
	}
}

func TestVehicleSynonymsRankAboveGrocery(t *testing.T) {
	tool := newMotorOilTool(t)
	top := tool.Top(6)
	if len(top) == 0 {
		t.Fatal("no candidates")
	}
	rank := map[string]int{}
	for i, c := range top {
		rank[c.Key()] = i + 1
	}
	vehicles := map[string]bool{
		"truck": true, "car": true, "motorcycle": true, "boat": true,
		"atv": true, "suv": true, "van": true,
	}
	inTop := 0
	for v := range vehicles {
		if _, ok := rank[v]; ok {
			inTop++
		}
	}
	if inTop < 4 {
		t.Fatalf("only %d vehicle synonyms in top 6: %v", inTop, rank)
	}
	if _, ok := rank["olive"]; ok {
		t.Fatalf("grocery 'olive' must not reach the top 6: %v", rank)
	}
	if _, ok := rank["coconut"]; ok {
		t.Fatalf("grocery 'coconut' must not reach the top 6: %v", rank)
	}
}

func TestCandidateSamplesAndMatches(t *testing.T) {
	tool := newMotorOilTool(t)
	for _, c := range tool.Top(20) {
		if c.Matches <= 0 {
			t.Fatalf("candidate %q with no matches", c.Key())
		}
		if len(c.SampleTitles) == 0 {
			t.Fatalf("candidate %q with no sample titles", c.Key())
		}
		if len(c.SampleTitles) > 3 {
			t.Fatalf("sample titles should be capped at 3: %v", c.SampleTitles)
		}
	}
}

func TestFeedbackRemovesLabeled(t *testing.T) {
	tool := newMotorOilTool(t)
	before := tool.Remaining()
	top := tool.Top(3)
	tool.Feedback([]string{top[0].Key()}, []string{top[1].Key(), top[2].Key()})
	if got := tool.Remaining(); got != before-3 {
		t.Fatalf("remaining %d, want %d", got, before-3)
	}
	for _, c := range tool.Top(100) {
		for _, shown := range top {
			if c.Key() == shown.Key() {
				t.Fatalf("labeled candidate %q reappeared", c.Key())
			}
		}
	}
	if len(tool.Accepted()) != 1 {
		t.Fatalf("accepted = %v", tool.Accepted())
	}
}

func TestFeedbackIgnoresUnknownAndDoubleLabels(t *testing.T) {
	tool := newMotorOilTool(t)
	top := tool.Top(1)
	tool.Feedback([]string{top[0].Key(), "no such phrase"}, nil)
	tool.Feedback([]string{top[0].Key()}, nil) // double label: no-op
	if len(tool.Accepted()) != 1 {
		t.Fatalf("accepted = %v", tool.Accepted())
	}
}

func TestRocchioImprovesRanking(t *testing.T) {
	// After rejecting the grocery candidates, remaining grocery-context
	// candidates should sink relative to vehicle ones.
	tool := newMotorOilTool(t)
	// Find scores of "coconut" before and after rejecting "olive".
	scoreOf := func(key string) (float64, bool) {
		for _, c := range tool.Top(100) {
			if c.Key() == key {
				return c.Score, true
			}
		}
		return 0, false
	}
	cocoBefore, ok := scoreOf("coconut")
	if !ok {
		t.Skip("no coconut candidate extracted")
	}
	tool.Feedback(nil, []string{"olive"})
	cocoAfter, ok := scoreOf("coconut")
	if !ok {
		t.Fatal("coconut vanished without being labeled")
	}
	if cocoAfter > cocoBefore+1e-9 {
		t.Fatalf("rejecting olive should not raise coconut: %v → %v", cocoBefore, cocoAfter)
	}
}

func TestExpandedPattern(t *testing.T) {
	tool := newMotorOilTool(t)
	tool.Feedback([]string{"truck", "car"}, nil)
	exp := tool.ExpandedPattern()
	if exp.HasSyn() {
		t.Fatal("expanded pattern still has a slot")
	}
	for _, title := range []string{"truck oil", "car oils", "motor oil", "engine oil"} {
		if !exp.Match(tokenize.Tokenize(title)) {
			t.Errorf("expanded pattern should match %q", title)
		}
	}
	if exp.Match(tokenize.Tokenize("olive oil")) {
		t.Error("unaccepted synonym must not match")
	}
}

func TestRunSessionWithOracle(t *testing.T) {
	tool := newMotorOilTool(t)
	vehicles := map[string]bool{
		"truck": true, "car": true, "motorcycle": true, "boat": true,
		"atv": true, "suv": true, "van": true,
	}
	oracle := func(phrase []string) bool { return vehicles[strings.Join(phrase, " ")] }
	stats := RunSession(tool, oracle, 0, 0)
	if !stats.ExhaustedPool {
		t.Fatal("unbounded session should exhaust the pool")
	}
	if stats.Accepted != len(tool.Accepted()) {
		t.Fatal("stats/accepted mismatch")
	}
	accepted := map[string]bool{}
	for _, ph := range tool.Accepted() {
		accepted[strings.Join(ph, " ")] = true
	}
	for v := range vehicles {
		if !accepted[v] {
			t.Errorf("session missed vehicle synonym %q", v)
		}
	}
	if accepted["olive"] || accepted["coconut"] {
		t.Error("session accepted a grocery synonym")
	}
}

func TestRunSessionMaxIter(t *testing.T) {
	tool := newMotorOilTool(t)
	stats := RunSession(tool, func([]string) bool { return false }, 2, 0)
	if stats.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", stats.Iterations)
	}
}

func TestRunSessionBarrenStop(t *testing.T) {
	tool := newMotorOilTool(t)
	stats := RunSession(tool, func([]string) bool { return false }, 0, 1)
	if stats.Iterations != 1 || stats.Accepted != 0 {
		t.Fatalf("barren stop failed: %+v", stats)
	}
}

func TestDisableFeedbackFreezesRanking(t *testing.T) {
	mk := func(disable bool) *Tool {
		p := pattern.MustParse(`(motor | engine | \syn) oils?`)
		tool, err := NewTool(p, motorOilCorpus(), Options{DisableFeedback: disable})
		if err != nil {
			t.Fatal(err)
		}
		return tool
	}
	scoreOf := func(tool *Tool, key string) (float64, bool) {
		for _, c := range tool.Top(100) {
			if c.Key() == key {
				return c.Score, true
			}
		}
		return 0, false
	}
	frozen := mk(true)
	before, ok := scoreOf(frozen, "coconut")
	if !ok {
		t.Skip("no coconut candidate")
	}
	frozen.Feedback(nil, []string{"olive"})
	after, _ := scoreOf(frozen, "coconut")
	if after != before {
		t.Fatalf("frozen tool re-ranked: %v → %v", before, after)
	}
	// Labels still leave the pool even when frozen.
	for _, c := range frozen.Top(100) {
		if c.Key() == "olive" {
			t.Fatal("labeled candidate still in the pool")
		}
	}

	// With feedback on, accepting a candidate moves the golden means, so
	// sibling candidates re-rank (the direction depends on the corpus; the
	// invariant is that the ranking adapts at all).
	live := mk(false)
	b2, ok := scoreOf(live, "motorcycle")
	if !ok {
		t.Skip("no motorcycle candidate")
	}
	live.Feedback([]string{"truck"}, nil)
	a2, _ := scoreOf(live, "motorcycle")
	if a2 == b2 {
		t.Fatalf("live tool should re-rank after acceptance: %v → %v", b2, a2)
	}
	// The frozen tool must not show that boost.
	frozen2 := mk(true)
	fb, _ := scoreOf(frozen2, "motorcycle")
	frozen2.Feedback([]string{"truck"}, nil)
	fa, _ := scoreOf(frozen2, "motorcycle")
	if fa != fb {
		t.Fatalf("frozen tool re-ranked after acceptance: %v → %v", fb, fa)
	}
}

func TestRealisticCatalogSession(t *testing.T) {
	// End-to-end over generated area-rug titles (the Table 1 scenario).
	cat := catalog.New(catalog.Config{Seed: 51, NumTypes: 40})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 3000, Epoch: 1})
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = it.TitleTokens()
	}
	p := pattern.MustParse(`(area | \syn) rugs?`)
	tool, err := NewTool(p, titles, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := cat.TypeByName("area rugs")
	valid := map[string]bool{}
	for _, m := range spec.Modifiers {
		valid[m] = true
	}
	for _, s := range spec.Synonyms {
		head := tokenize.Tokenize(s.Text)
		if len(head) > 1 { // "oriental rug" → candidate "oriental"
			valid[strings.Join(head[:len(head)-1], " ")] = true
		}
	}
	oracle := func(phrase []string) bool { return valid[strings.Join(phrase, " ")] }
	stats := RunSession(tool, oracle, 10, 3)
	if stats.Accepted == 0 {
		t.Fatalf("no synonyms found on realistic corpus: %+v", stats)
	}
}
