package textvec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus()
	c.Add([]string{"motor", "oil"})
	c.Add([]string{"engine", "oil"})
	c.Add([]string{"olive", "oil"})
	if c.Docs() != 3 {
		t.Fatalf("docs = %d", c.Docs())
	}
	if !almostEq(c.IDF("oil"), math.Log(1)) {
		t.Fatalf("idf(oil) = %v, want 0", c.IDF("oil"))
	}
	if !almostEq(c.IDF("motor"), math.Log(3)) {
		t.Fatalf("idf(motor) = %v", c.IDF("motor"))
	}
	if !almostEq(c.IDF("unknown"), math.Log(4)) {
		t.Fatalf("idf(unknown) = %v, want log(4)", c.IDF("unknown"))
	}
}

func TestIDFCountsDocumentOnce(t *testing.T) {
	c := NewCorpus()
	c.Add([]string{"oil", "oil", "oil"})
	c.Add([]string{"ring"})
	if !almostEq(c.IDF("oil"), math.Log(2)) {
		t.Fatalf("duplicate tokens inflated df: idf=%v", c.IDF("oil"))
	}
}

func TestTFIDFWeights(t *testing.T) {
	c := NewCorpus()
	c.Add([]string{"motor", "oil"})
	c.Add([]string{"ring"})
	v := c.TFIDF([]string{"motor", "motor", "ring"})
	if !almostEq(v["motor"], 2*math.Log(2)) {
		t.Fatalf("w(motor) = %v", v["motor"])
	}
	if !almostEq(v["ring"], math.Log(2)) {
		t.Fatalf("w(ring) = %v", v["ring"])
	}
}

func TestNormalized(t *testing.T) {
	v := Vector{"a": 3, "b": 4}
	n := v.Normalized()
	if !almostEq(n.Norm(), 1) {
		t.Fatalf("norm = %v", n.Norm())
	}
	if !almostEq(n["a"], 0.6) || !almostEq(n["b"], 0.8) {
		t.Fatalf("bad components: %v", n)
	}
	zero := Vector{}.Normalized()
	if len(zero) != 0 {
		t.Fatal("zero vector should normalize to empty")
	}
}

func TestCosine(t *testing.T) {
	a := Vector{"x": 1, "y": 0}
	b := Vector{"x": 1, "y": 0}
	if !almostEq(a.Cosine(b), 1) {
		t.Fatal("identical vectors should have cosine 1")
	}
	c := Vector{"z": 5}
	if !almostEq(a.Cosine(c), 0) {
		t.Fatal("orthogonal vectors should have cosine 0")
	}
	if !almostEq(a.Cosine(Vector{}), 0) {
		t.Fatal("zero vector cosine should be 0")
	}
}

func TestCosineSymmetryProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := Vector{}, Vector{}
		for i, x := range xs {
			a[string(rune('a'+i%26))] = float64(x)
		}
		for i, y := range ys {
			b[string(rune('a'+i%26))] = float64(y)
		}
		s1, s2 := a.Cosine(b), b.Cosine(a)
		return math.Abs(s1-s2) < 1e-9 && s1 >= -1e-9 && s1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{{"a": 2}, {"a": 4, "b": 2}})
	if !almostEq(m["a"], 3) || !almostEq(m["b"], 1) {
		t.Fatalf("bad mean: %v", m)
	}
	if len(Mean(nil)) != 0 {
		t.Fatal("mean of nothing should be empty")
	}
}

func TestRocchioMovesTowardCorrect(t *testing.T) {
	m := Vector{"shared": 1}
	correct := []Vector{{"good": 2, "shared": 1}}
	incorrect := []Vector{{"bad": 2, "shared": 0.5}}
	out := Rocchio(m, correct, incorrect, 1, 0.75, 0.25)
	if out["good"] <= 0 {
		t.Fatal("correct-context term should gain weight")
	}
	if _, ok := out["bad"]; ok {
		t.Fatal("incorrect-only term should be clamped out")
	}
	if out["shared"] >= 2 || out["shared"] <= 1 {
		t.Fatalf("shared term should move moderately: %v", out["shared"])
	}
}

func TestRocchioClampNegative(t *testing.T) {
	out := Rocchio(Vector{}, nil, []Vector{{"noise": 5}}, 1, 0.75, 0.25)
	if len(out) != 0 {
		t.Fatalf("pure-negative update should clamp to empty, got %v", out)
	}
}

func TestRocchioEmptyFeedbackScalesOnly(t *testing.T) {
	m := Vector{"a": 2}
	out := Rocchio(m, nil, nil, 0.5, 0.75, 0.25)
	if !almostEq(out["a"], 1) {
		t.Fatalf("alpha scaling broken: %v", out)
	}
	if !almostEq(m["a"], 2) {
		t.Fatal("Rocchio mutated its input mean")
	}
}

func TestTopTerms(t *testing.T) {
	v := Vector{"low": 1, "hi": 10, "mid": 5, "tie": 5}
	got := v.TopTerms(3)
	if got[0] != "hi" {
		t.Fatalf("top term = %q", got[0])
	}
	// "mid" and "tie" tie at 5; alphabetical order breaks the tie.
	if got[1] != "mid" || got[2] != "tie" {
		t.Fatalf("tie-break order wrong: %v", got)
	}
	if len(v.TopTerms(99)) != 4 {
		t.Fatal("overlong n should clamp")
	}
}

func TestJaccard(t *testing.T) {
	if !almostEq(Jaccard([]string{"a", "b"}, []string{"b", "c"}), 1.0/3) {
		t.Fatal("jaccard(ab,bc) should be 1/3")
	}
	if Jaccard(nil, nil) != 0 {
		t.Fatal("empty-empty jaccard should be 0")
	}
	if !almostEq(Jaccard([]string{"x", "x"}, []string{"x"}), 1) {
		t.Fatal("duplicates should not affect jaccard")
	}
}

func TestDotIteratesSmallerSide(t *testing.T) {
	big := Vector{}
	for i := 0; i < 100; i++ {
		big[string(rune('a'+i%26))+string(rune('0'+i/26))] = 1
	}
	small := Vector{"a0": 2}
	if !almostEq(big.Dot(small), 2) || !almostEq(small.Dot(big), 2) {
		t.Fatal("dot should be symmetric")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{"a": 1}
	c := v.Clone()
	c["a"] = 99
	if v["a"] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddInPlaceAndScale(t *testing.T) {
	v := Vector{"a": 1}
	v.AddInPlace(Vector{"a": 1, "b": 3}, 2)
	if !almostEq(v["a"], 3) || !almostEq(v["b"], 6) {
		t.Fatalf("AddInPlace wrong: %v", v)
	}
	s := v.Scale(0.5)
	if !almostEq(s["b"], 3) || !almostEq(v["b"], 6) {
		t.Fatal("Scale should not mutate the receiver")
	}
}
