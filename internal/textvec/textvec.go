// Package textvec implements sparse TF-IDF vectors, cosine similarity, mean
// vectors and Rocchio relevance feedback — the vector-space machinery behind
// the §5.1 synonym-finder tool and the kNN classifier.
package textvec

import (
	"math"
	"sort"
)

// Vector is a sparse term-weight vector.
type Vector map[string]float64

// Corpus accumulates document frequencies so TF-IDF weights can be computed.
// It corresponds to the |M| matches / df_t bookkeeping of §5.1.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// Add registers one document's tokens (duplicates within a document count
// once toward document frequency, per the standard df definition).
func (c *Corpus) Add(tokens []string) {
	c.docs++
	seen := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			c.df[t]++
		}
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns log(|M| / df_t) as in §5.1. Unknown terms get the maximal IDF
// log(|M|+1) so that novel context words are treated as highly specific.
func (c *Corpus) IDF(term string) float64 {
	if c.docs == 0 {
		return 0
	}
	df := c.df[term]
	if df == 0 {
		return math.Log(float64(c.docs) + 1)
	}
	return math.Log(float64(c.docs) / float64(df))
}

// TFIDF builds the weighted vector for tokens: w_t = tf_t * idf_t.
func (c *Corpus) TFIDF(tokens []string) Vector {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	v := make(Vector, len(tf))
	for t, f := range tf {
		v[t] = float64(f) * c.IDF(t)
	}
	return v
}

// Norm returns the L2 norm of v, summing in sorted term order for
// bit-for-bit reproducibility.
func (v Vector) Norm() float64 {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	var s float64
	for _, t := range terms {
		s += v[t] * v[t]
	}
	return math.Sqrt(s)
}

// Normalized returns a unit-length copy of v (the P̂_m of §5.1).
// The zero vector normalizes to an empty vector.
func (v Vector) Normalized() Vector {
	n := v.Norm()
	out := make(Vector, len(v))
	if n == 0 {
		return out
	}
	for t, w := range v {
		out[t] = w / n
	}
	return out
}

// Dot returns the inner product of v and u. Terms are summed in sorted
// order so the result is bit-for-bit reproducible across runs (float
// addition is not associative, and map iteration order varies).
func (v Vector) Dot(u Vector) float64 {
	// Iterate the smaller map.
	if len(u) < len(v) {
		v, u = u, v
	}
	terms := make([]string, 0, len(v))
	for t := range v {
		if _, ok := u[t]; ok {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	var s float64
	for _, t := range terms {
		s += v[t] * u[t]
	}
	return s
}

// Cosine returns the cosine similarity of v and u, 0 if either is zero.
func (v Vector) Cosine(u Vector) float64 {
	nv, nu := v.Norm(), u.Norm()
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for t, w := range v {
		out[t] = w
	}
	return out
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector {
	out := make(Vector, len(v))
	for t, w := range v {
		out[t] = w * k
	}
	return out
}

// AddInPlace adds k*u into v.
func (v Vector) AddInPlace(u Vector, k float64) {
	for t, w := range u {
		v[t] += w * k
	}
}

// TopTerms returns the n highest-weight terms of v in descending weight
// order (ties broken alphabetically for determinism). Useful for debugging
// and for the synonym tool's explanations.
func (v Vector) TopTerms(n int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(v))
	for t, w := range v {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].t
	}
	return out
}

// Mean returns the arithmetic mean of vs (the M̄ vectors of §5.1).
// An empty input yields an empty vector.
func Mean(vs []Vector) Vector {
	out := Vector{}
	if len(vs) == 0 {
		return out
	}
	for _, v := range vs {
		out.AddInPlace(v, 1)
	}
	k := 1 / float64(len(vs))
	for t := range out {
		out[t] *= k
	}
	return out
}

// Rocchio updates a mean context vector per the §5.1 feedback formula:
//
//	M' = alpha*M + beta/|Cr| * sum(correct) - gamma/|Cnr| * sum(incorrect)
//
// correct and incorrect are the per-candidate mean vectors labeled by the
// analyst this iteration. Negative weights are clamped to zero, the usual
// Rocchio convention, so a term's influence can be cancelled but not
// inverted.
func Rocchio(m Vector, correct, incorrect []Vector, alpha, beta, gamma float64) Vector {
	out := m.Scale(alpha)
	if len(correct) > 0 {
		k := beta / float64(len(correct))
		for _, v := range correct {
			out.AddInPlace(v, k)
		}
	}
	if len(incorrect) > 0 {
		k := gamma / float64(len(incorrect))
		for _, v := range incorrect {
			out.AddInPlace(v, -k)
		}
	}
	for t, w := range out {
		if w <= 0 {
			delete(out, t)
		}
	}
	return out
}

// Jaccard returns |A∩B| / |A∪B| over two token multisets treated as sets.
// Empty-empty is defined as 0 (two items with no tokens share no evidence).
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	sa := make(map[string]bool, len(a))
	for _, t := range a {
		sa[t] = true
	}
	sb := make(map[string]bool, len(b))
	for _, t := range b {
		sb[t] = true
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
