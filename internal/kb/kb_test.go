package kb

import (
	"encoding/json"
	"testing"
)

func buildEpoch(t *testing.T, epoch int) *KB {
	t.Helper()
	return Build(SyntheticSource(7, epoch))
}

func TestBuildBasics(t *testing.T) {
	kb := buildEpoch(t, 0)
	cats, ents, aliases := kb.Stats()
	if cats == 0 || ents == 0 || aliases == 0 {
		t.Fatalf("empty KB: %d/%d/%d", cats, ents, aliases)
	}
	if got := kb.Parents("politicians"); len(got) != 1 || got[0] != "people" {
		t.Fatalf("politicians parents = %v", got)
	}
	if kb.Entity("barack obama") == nil {
		t.Fatal("entity missing")
	}
	if kb.ResolveAlias("Obama") != "barack obama" {
		t.Fatalf("alias resolution failed: %q", kb.ResolveAlias("Obama"))
	}
	if kb.HasCycle() {
		t.Fatal("fresh taxonomy should be acyclic")
	}
}

func TestEpochChurn(t *testing.T) {
	kb0 := buildEpoch(t, 0)
	kb2 := buildEpoch(t, 2)
	_, e0, _ := kb0.Stats()
	_, e2, _ := kb2.Stats()
	if e2 <= e0 {
		t.Fatal("later epochs should grow the entity table")
	}
	// Spurious edge appears at epoch ≥ 1.
	if got := kb2.Parents("politicians"); len(got) != 2 {
		t.Fatalf("epoch-2 source should add the spurious edge: %v", got)
	}
	// Upstream rename at epoch 2.
	if kb2.Entity("acme corporation") != nil || kb2.Entity("acme global") == nil {
		t.Fatal("upstream rename not reflected")
	}
}

func TestCurationRemoveAddEdge(t *testing.T) {
	kb := buildEpoch(t, 1)
	log := &CurationLog{}
	log.Append(CurationRule{Op: "remove-edge", Child: "politicians", Parent: "entertainment", Author: "ana"})
	rep := log.Replay(kb)
	if rep.Applied != 1 || len(rep.Errors) != 0 {
		t.Fatalf("replay report: %+v", rep)
	}
	if got := kb.Parents("politicians"); len(got) != 1 || got[0] != "people" {
		t.Fatalf("edge not removed: %v", got)
	}
	// Replaying on a rebuilt epoch-0 KB (edge absent) is a no-op, not error.
	kb0 := buildEpoch(t, 0)
	rep = log.Replay(kb0)
	if rep.Applied != 0 || rep.NoOps != 1 {
		t.Fatalf("no-op replay report: %+v", rep)
	}
}

func TestCurationSurvivesRebuild(t *testing.T) {
	// The §6 flow: curate once, rebuild from a fresh (changed) source, and
	// replay the log — the fixes reapply without manual work.
	log := &CurationLog{}
	log.Append(CurationRule{Op: "remove-edge", Child: "politicians", Parent: "entertainment"})
	log.Append(CurationRule{Op: "blacklist-entity", Entity: "initech"})
	log.Append(CurationRule{Op: "add-alias", Entity: "lionel messi", Alias: "la pulga"})

	for epoch := 1; epoch <= 3; epoch++ {
		kb := buildEpoch(t, epoch)
		rep := log.Replay(kb)
		if len(rep.Errors) != 0 {
			t.Fatalf("epoch %d: replay errors %v", epoch, rep.Errors)
		}
		if got := kb.Parents("politicians"); len(got) != 1 {
			t.Fatalf("epoch %d: spurious edge survived: %v", epoch, got)
		}
		if kb.Entity("initech") != nil {
			t.Fatalf("epoch %d: blacklisted entity back", epoch)
		}
		if kb.ResolveAlias("la pulga") != "lionel messi" {
			t.Fatalf("epoch %d: alias lost", epoch)
		}
		if kb.HasCycle() {
			t.Fatalf("epoch %d: curation introduced a cycle", epoch)
		}
	}
}

func TestCurationRename(t *testing.T) {
	kb := buildEpoch(t, 0)
	log := &CurationLog{}
	log.Append(CurationRule{Op: "rename-entity", From: "globex", To: "globex worldwide"})
	rep := log.Replay(kb)
	if rep.Applied != 1 {
		t.Fatalf("rename not applied: %+v", rep)
	}
	if kb.Entity("globex") != nil || kb.Entity("globex worldwide") == nil {
		t.Fatal("rename broken")
	}
	if kb.ResolveAlias("globex") != "globex worldwide" {
		t.Fatal("old name should remain an alias")
	}
	if kb.ResolveAlias("globex inc") != "globex worldwide" {
		t.Fatal("existing aliases should follow the rename")
	}
}

func TestCurationUnknownOp(t *testing.T) {
	kb := buildEpoch(t, 0)
	log := &CurationLog{}
	log.Append(CurationRule{Op: "explode"})
	rep := log.Replay(kb)
	if len(rep.Errors) != 1 {
		t.Fatalf("unknown op should error: %+v", rep)
	}
}

func TestCurationAddEdgeValidation(t *testing.T) {
	kb := buildEpoch(t, 0)
	if _, err := (CurationRule{Op: "add-edge"}).Apply(kb); err == nil {
		t.Fatal("add-edge without endpoints should error")
	}
	changed, err := (CurationRule{Op: "add-edge", Child: "tennis", Parent: "entertainment"}).Apply(kb)
	if err != nil || !changed {
		t.Fatalf("add-edge failed: %v %v", changed, err)
	}
	// Idempotent.
	changed, _ = (CurationRule{Op: "add-edge", Child: "tennis", Parent: "entertainment"}).Apply(kb)
	if changed {
		t.Fatal("duplicate edge should be a no-op")
	}
}

func TestCycleDetection(t *testing.T) {
	kb := buildEpoch(t, 0)
	_, _ = (CurationRule{Op: "add-edge", Child: "people", Parent: "politicians"}).Apply(kb)
	if !kb.HasCycle() {
		t.Fatal("people→politicians→people should be a cycle")
	}
}

func TestCurationLogJSONRoundTrip(t *testing.T) {
	log := &CurationLog{}
	log.Append(CurationRule{Op: "remove-edge", Child: "a", Parent: "b", Author: "ana"})
	log.Append(CurationRule{Op: "add-alias", Entity: "x", Alias: "y"})
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	var back CurationLog
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rules) != 2 || back.Rules[0].Author != "ana" {
		t.Fatalf("round trip lost rules: %+v", back.Rules)
	}
}

func TestAliasIndexCopy(t *testing.T) {
	kb := buildEpoch(t, 0)
	idx := kb.AliasIndex()
	idx["obama"] = []string{"someone else"}
	if kb.ResolveAlias("obama") != "barack obama" {
		t.Fatal("AliasIndex should return a copy")
	}
	idx2 := kb.AliasIndex()
	if len(idx2["phoenix"]) > 0 {
		idx2["phoenix"][0] = "mutated"
		if kb.ResolveAll("phoenix")[0] == "mutated" {
			t.Fatal("AliasIndex slices must be copies")
		}
	}
}
