package kb

import (
	"fmt"

	"repro/internal/randx"
)

// SyntheticSource generates the Wikipedia-snapshot stand-in: a category
// tree (domains → topics), entities with aliases, and — at later epochs —
// churn: new entities appear, some categories gain spurious edges (the kind
// analysts remove), and some entities get renamed upstream. The churn is
// what makes curation-rule replay meaningful.
func SyntheticSource(seed uint64, epoch int) *Source {
	r := randx.New(seed).Split(fmt.Sprintf("kb-source-%d", epoch))
	src := &Source{}

	domains := []string{"people", "places", "organizations", "sports", "technology", "entertainment"}
	topics := map[string][]string{
		"people":        {"politicians", "athletes", "musicians", "actors"},
		"places":        {"cities", "countries", "landmarks"},
		"organizations": {"companies", "teams", "agencies"},
		"sports":        {"football", "basketball", "tennis"},
		"technology":    {"gadgets", "software", "startups"},
		"entertainment": {"films", "television", "awards"},
	}
	for _, d := range domains {
		src.Pages = append(src.Pages, Page{Name: d, Kind: "category"})
		for _, t := range topics[d] {
			src.Pages = append(src.Pages, Page{Name: t, Kind: "category", Parents: []string{d}})
		}
	}
	// Spurious edge churn: from epoch 1 on, the raw source claims
	// "politicians" under "entertainment" (the classic miscategorization
	// analysts fix with a remove-edge + add-edge pair).
	if epoch >= 1 {
		src.Pages = append(src.Pages, Page{Name: "politicians", Kind: "category", Parents: []string{"entertainment"}})
	}

	type seedEntity struct {
		name    string
		topic   string
		aliases []string
		// renamedAt, if >0, renames the page upstream at that epoch.
		renamedAt int
		renamedTo string
	}
	seeds := []seedEntity{
		{name: "barack obama", topic: "politicians", aliases: []string{"obama", "president obama"}},
		{name: "angela merkel", topic: "politicians", aliases: []string{"merkel", "chancellor merkel"}},
		{name: "serena williams", topic: "athletes", aliases: []string{"serena"}},
		{name: "lionel messi", topic: "athletes", aliases: []string{"messi", "leo messi"}},
		{name: "taylor swift", topic: "musicians", aliases: []string{"swift", "t swift"}},
		{name: "melbourne", topic: "cities", aliases: []string{"melb"}},
		// A deliberately ambiguous alias: "phoenix" names both the city and
		// the team; the tagging pipeline must disambiguate by context.
		{name: "phoenix", topic: "cities", aliases: []string{"phx", "phoenix arizona"}},
		{name: "phoenix firebirds", topic: "teams", aliases: []string{"firebirds", "phoenix"}},
		{name: "san francisco", topic: "cities", aliases: []string{"sf", "san fran"}},
		{name: "acme corporation", topic: "companies", aliases: []string{"acme", "acme corp"},
			renamedAt: 2, renamedTo: "acme global"},
		{name: "globex", topic: "companies", aliases: []string{"globex inc"}},
		{name: "initech", topic: "startups", aliases: []string{}},
		{name: "river city rovers", topic: "teams", aliases: []string{"rovers", "the rovers"}},
		{name: "harbor city hawks", topic: "teams", aliases: []string{"hawks"}},
		{name: "world cup", topic: "football", aliases: []string{"the cup"}},
		{name: "grand slam open", topic: "tennis", aliases: []string{"the open"}},
		{name: "moonrise festival", topic: "awards", aliases: []string{"moonrise"}},
	}
	for _, se := range seeds {
		name := se.name
		if se.renamedAt > 0 && epoch >= se.renamedAt {
			name = se.renamedTo
		}
		src.Pages = append(src.Pages, Page{Name: name, Kind: "entity", Parents: []string{se.topic}, Aliases: se.aliases})
	}
	// Epoch growth: n new long-tail entities per epoch.
	for e := 1; e <= epoch; e++ {
		for i := 0; i < 5; i++ {
			topic := topics[domains[r.Intn(len(domains))]]
			name := fmt.Sprintf("entity-e%d-%d", e, i)
			src.Pages = append(src.Pages, Page{
				Name: name, Kind: "entity",
				Parents: []string{topic[r.Intn(len(topic))]},
				Aliases: []string{fmt.Sprintf("e%d%d", e, i)},
			})
		}
	}
	return src
}
