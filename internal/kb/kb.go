// Package kb implements the §6 knowledge-base construction substrate, after
// the Kosmix KB report [27]: a construction pipeline that ingests source
// snapshots into a taxonomy plus an entity table, and a curation layer in
// which analyst edits are not applied destructively but captured as rules
// that are re-applied after every rebuild ("the next day after the
// construction pipeline has been refreshed, these curation rules are being
// applied again"; analysts wrote several thousands of such rules over 3-4
// years).
package kb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Page is one page of a source snapshot (the Wikipedia stand-in).
type Page struct {
	Name string `json:"name"`
	// Kind is "category" or "entity".
	Kind string `json:"kind"`
	// Parents are category names (for categories: super-categories; for
	// entities: their categories).
	Parents []string `json:"parents,omitempty"`
	Aliases []string `json:"aliases,omitempty"`
}

// Source is a full snapshot.
type Source struct {
	Pages []Page `json:"pages"`
}

// Entity is a KB entity.
type Entity struct {
	Name     string
	Aliases  []string
	Category string
}

// KB is the built knowledge base.
type KB struct {
	// parents maps child category → sorted parent categories.
	parents map[string][]string
	// entities maps canonical name → entity.
	entities map[string]*Entity
	// aliasIndex maps lower-case alias → sorted canonical entity names.
	// Aliases can be ambiguous ("phoenix" the city vs the team); taggers
	// disambiguate by context.
	aliasIndex map[string][]string
}

// Build runs the construction pipeline over a snapshot. Later duplicate
// pages merge into earlier ones (aliases and parents union).
func Build(src *Source) *KB {
	kb := &KB{
		parents:    map[string][]string{},
		entities:   map[string]*Entity{},
		aliasIndex: map[string][]string{},
	}
	for _, pg := range src.Pages {
		switch pg.Kind {
		case "category":
			for _, par := range pg.Parents {
				kb.addEdge(pg.Name, par)
			}
			if _, ok := kb.parents[pg.Name]; !ok {
				kb.parents[pg.Name] = nil
			}
		case "entity":
			cat := ""
			if len(pg.Parents) > 0 {
				cat = pg.Parents[0]
			}
			kb.upsertEntity(pg.Name, cat, pg.Aliases)
		}
	}
	return kb
}

func (kb *KB) addEdge(child, parent string) {
	for _, p := range kb.parents[child] {
		if p == parent {
			return
		}
	}
	kb.parents[child] = append(kb.parents[child], parent)
	sort.Strings(kb.parents[child])
}

func (kb *KB) removeEdge(child, parent string) bool {
	ps := kb.parents[child]
	for i, p := range ps {
		if p == parent {
			kb.parents[child] = append(ps[:i], ps[i+1:]...)
			return true
		}
	}
	return false
}

func (kb *KB) upsertEntity(name, category string, aliases []string) *Entity {
	e := kb.entities[name]
	if e == nil {
		e = &Entity{Name: name, Category: category}
		kb.entities[name] = e
		kb.indexAlias(strings.ToLower(name), name)
	}
	if e.Category == "" {
		e.Category = category
	}
	for _, a := range aliases {
		kb.addAlias(e, a)
	}
	return e
}

// indexAlias registers alias → entity, keeping the candidate list sorted
// and duplicate-free.
func (kb *KB) indexAlias(key, entity string) {
	for _, existing := range kb.aliasIndex[key] {
		if existing == entity {
			return
		}
	}
	kb.aliasIndex[key] = append(kb.aliasIndex[key], entity)
	sort.Strings(kb.aliasIndex[key])
}

// unindexAlias removes entity from an alias's candidate list.
func (kb *KB) unindexAlias(key, entity string) {
	cands := kb.aliasIndex[key]
	for i, c := range cands {
		if c == entity {
			cands = append(cands[:i], cands[i+1:]...)
			break
		}
	}
	if len(cands) == 0 {
		delete(kb.aliasIndex, key)
	} else {
		kb.aliasIndex[key] = cands
	}
}

func (kb *KB) addAlias(e *Entity, alias string) {
	key := strings.ToLower(alias)
	before := len(kb.aliasIndex[key])
	kb.indexAlias(key, e.Name)
	if len(kb.aliasIndex[key]) == before {
		return // already present for this entity
	}
	for _, a := range e.Aliases {
		if a == alias {
			return
		}
	}
	e.Aliases = append(e.Aliases, alias)
	sort.Strings(e.Aliases)
}

// Parents returns the parent categories of child.
func (kb *KB) Parents(child string) []string {
	return append([]string(nil), kb.parents[child]...)
}

// HasCategory reports whether the taxonomy knows the category.
func (kb *KB) HasCategory(name string) bool {
	_, ok := kb.parents[name]
	return ok
}

// Entity returns the entity with the canonical name, or nil.
func (kb *KB) Entity(name string) *Entity { return kb.entities[name] }

// ResolveAlias returns the canonical entity name for an alias ("" if
// unknown). Ambiguous aliases resolve to the alphabetically first candidate;
// use ResolveAll when disambiguation matters. Case-insensitive.
func (kb *KB) ResolveAlias(alias string) string {
	cands := kb.aliasIndex[strings.ToLower(alias)]
	if len(cands) == 0 {
		return ""
	}
	return cands[0]
}

// ResolveAll returns every candidate entity for an alias (sorted), nil if
// unknown.
func (kb *KB) ResolveAll(alias string) []string {
	return append([]string(nil), kb.aliasIndex[strings.ToLower(alias)]...)
}

// AliasIndex exposes a copy of the alias → candidate-entities map (for
// taggers).
func (kb *KB) AliasIndex() map[string][]string {
	out := make(map[string][]string, len(kb.aliasIndex))
	for k, v := range kb.aliasIndex {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// Stats summarizes the KB.
func (kb *KB) Stats() (categories, entities, aliases int) {
	return len(kb.parents), len(kb.entities), len(kb.aliasIndex)
}

// HasCycle reports whether the taxonomy contains a directed cycle — the
// invariant curation must preserve.
func (kb *KB) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, p := range kb.parents[n] {
			switch color[p] {
			case gray:
				return true
			case white:
				if visit(p) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	names := make([]string, 0, len(kb.parents))
	for n := range kb.parents {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Curation rules
// ---------------------------------------------------------------------------

// CurationRule is one captured analyst edit. Op is one of remove-edge,
// add-edge, rename-entity, blacklist-entity, add-alias.
type CurationRule struct {
	Op     string `json:"op"`
	Child  string `json:"child,omitempty"`
	Parent string `json:"parent,omitempty"`
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Entity string `json:"entity,omitempty"`
	Alias  string `json:"alias,omitempty"`
	Author string `json:"author,omitempty"`
}

// Apply executes the rule against the KB, returning whether it changed
// anything (a no-op is normal: e.g. the source stopped containing the bad
// edge) or an error for malformed rules.
func (r CurationRule) Apply(kb *KB) (bool, error) {
	switch r.Op {
	case "remove-edge":
		return kb.removeEdge(r.Child, r.Parent), nil
	case "add-edge":
		if r.Child == "" || r.Parent == "" {
			return false, fmt.Errorf("kb: add-edge needs child and parent")
		}
		before := len(kb.parents[r.Child])
		kb.addEdge(r.Child, r.Parent)
		return len(kb.parents[r.Child]) != before, nil
	case "rename-entity":
		e := kb.entities[r.From]
		if e == nil {
			return false, nil
		}
		delete(kb.entities, r.From)
		e.Name = r.To
		kb.entities[r.To] = e
		// The old name remains resolvable as an alias of the new name.
		kb.unindexAlias(strings.ToLower(r.From), r.From)
		kb.indexAlias(strings.ToLower(r.From), r.To)
		kb.indexAlias(strings.ToLower(r.To), r.To)
		for _, a := range e.Aliases {
			kb.unindexAlias(strings.ToLower(a), r.From)
			kb.indexAlias(strings.ToLower(a), r.To)
		}
		return true, nil
	case "blacklist-entity":
		e := kb.entities[r.Entity]
		if e == nil {
			return false, nil
		}
		delete(kb.entities, r.Entity)
		kb.unindexAlias(strings.ToLower(r.Entity), r.Entity)
		for _, a := range e.Aliases {
			kb.unindexAlias(strings.ToLower(a), r.Entity)
		}
		return true, nil
	case "add-alias":
		e := kb.entities[r.Entity]
		if e == nil {
			return false, nil
		}
		before := len(e.Aliases)
		kb.addAlias(e, r.Alias)
		return len(e.Aliases) != before, nil
	default:
		return false, fmt.Errorf("kb: unknown curation op %q", r.Op)
	}
}

// CurationLog is the ordered list of captured edits.
type CurationLog struct {
	Rules []CurationRule `json:"rules"`
}

// Append records a new curation rule.
func (l *CurationLog) Append(r CurationRule) { l.Rules = append(l.Rules, r) }

// ReplayReport summarizes one replay.
type ReplayReport struct {
	Applied int
	NoOps   int
	Errors  []error
}

// Replay re-applies every rule in order — the after-rebuild step. Rules
// whose precondition vanished are counted as no-ops, not errors.
func (l *CurationLog) Replay(kb *KB) ReplayReport {
	var rep ReplayReport
	for _, r := range l.Rules {
		changed, err := r.Apply(kb)
		switch {
		case err != nil:
			rep.Errors = append(rep.Errors, err)
		case changed:
			rep.Applied++
		default:
			rep.NoOps++
		}
	}
	return rep
}

// MarshalJSON/UnmarshalJSON round-trip the log for persistence.
func (l *CurationLog) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Rules)
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *CurationLog) UnmarshalJSON(data []byte) error {
	return json.Unmarshal(data, &l.Rules)
}
