package learn

import (
	"testing"

	"repro/internal/catalog"
)

// trainTest builds a train/test split over a moderate catalog.
func trainTest(t *testing.T, nTrain, nTest int) (train, test []*catalog.Item) {
	t.Helper()
	c := catalog.New(catalog.Config{Seed: 21, NumTypes: 30})
	train = c.GenerateBatch(catalog.BatchSpec{Size: nTrain, Epoch: 0})
	test = c.GenerateBatch(catalog.BatchSpec{Size: nTest, Epoch: 0})
	return train, test
}

func TestFeaturesIncludeSignals(t *testing.T) {
	it := &catalog.Item{
		ID: "x",
		Attrs: map[string]string{
			"Title":      "Apex Quad Core Laptop 15.6 inch",
			"isbn":       "9781234567890",
			"Brand Name": "Apex",
		},
	}
	feats := Features(it)
	want := map[string]bool{"laptop": false, "attr:isbn": false, "brand:apex": false, "quad_core": false}
	for _, f := range feats {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("feature %q missing from %v", f, feats)
		}
	}
	for _, f := range feats {
		if f == "attr:title" || f == "attr:description" {
			t.Errorf("Title/Description must not leak as presence features")
		}
	}
}

func classifiers() []Classifier {
	return []Classifier{NewNaiveBayes(), NewKNN(5), NewPerceptron(3)}
}

func TestEachClassifierLearns(t *testing.T) {
	train, test := trainTest(t, 3000, 600)
	for _, c := range classifiers() {
		c.Train(train)
		acc := Accuracy(c, test)
		if acc < 0.6 {
			t.Errorf("%s accuracy %.3f < 0.6", c.Name(), acc)
		}
	}
}

func TestUntrainedPredictsNil(t *testing.T) {
	_, test := trainTest(t, 1, 1)
	for _, c := range classifiers() {
		if ps := c.Predict(test[0]); ps != nil {
			t.Errorf("untrained %s should return nil, got %v", c.Name(), ps)
		}
	}
}

func TestPredictionsSortedAndNormalized(t *testing.T) {
	train, test := trainTest(t, 1500, 50)
	for _, c := range classifiers() {
		c.Train(train)
		for _, it := range test {
			ps := c.Predict(it)
			var sum float64
			for i, p := range ps {
				if p.Score < 0 || p.Score > 1.0001 {
					t.Fatalf("%s score out of range: %v", c.Name(), p.Score)
				}
				if i > 0 && ps[i-1].Score < p.Score {
					t.Fatalf("%s predictions not sorted", c.Name())
				}
				sum += p.Score
			}
			if sum > 1.0001 {
				t.Fatalf("%s scores sum to %v > 1", c.Name(), sum)
			}
		}
	}
}

func TestKNNIndexConsistency(t *testing.T) {
	train, test := trainTest(t, 800, 100)
	k := NewKNN(5)
	k.Train(train)
	// Every prediction must come from classes present in training.
	trainTypes := map[string]bool{}
	for _, it := range train {
		trainTypes[it.TrueType] = true
	}
	for _, it := range test {
		for _, p := range k.Predict(it) {
			if !trainTypes[p.Type] {
				t.Fatalf("kNN predicted unseen class %q", p.Type)
			}
		}
	}
}

func TestKNNNoSharedFeatures(t *testing.T) {
	train, _ := trainTest(t, 200, 0)
	k := NewKNN(5)
	k.Train(train)
	alien := &catalog.Item{ID: "a", Attrs: map[string]string{"Title": "zzzzqqq xxyyzz"}}
	if ps := k.Predict(alien); ps != nil {
		t.Fatalf("item sharing no features should yield nil, got %v", ps)
	}
}

func TestPerceptronImprovesWithEpochs(t *testing.T) {
	train, test := trainTest(t, 2500, 500)
	one := NewPerceptron(1)
	one.Train(train)
	five := NewPerceptron(6)
	five.Train(train)
	a1, a5 := Accuracy(one, test), Accuracy(five, test)
	if a5+0.03 < a1 {
		t.Fatalf("more epochs should not be much worse: 1→%.3f 6→%.3f", a1, a5)
	}
}

func TestEnsembleBeatsOrMatchesMedianMember(t *testing.T) {
	train, test := trainTest(t, 3000, 600)
	members := classifiers()
	ens, err := NewEnsemble(members, nil)
	if err != nil {
		t.Fatal(err)
	}
	ens.Train(train)
	accs := make([]float64, len(members))
	for i, m := range members {
		accs[i] = Accuracy(m, test)
	}
	// median of 3
	med := accs[0] + accs[1] + accs[2] -
		max3(accs[0], accs[1], accs[2]) - min3(accs[0], accs[1], accs[2])
	ea := Accuracy(ens, test)
	if ea+0.02 < med {
		t.Fatalf("ensemble %.3f clearly below median member %.3f (members %v)", ea, med, accs)
	}
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(nil, nil); err == nil {
		t.Fatal("empty ensemble should be rejected")
	}
	if _, err := NewEnsemble(classifiers(), []float64{1}); err == nil {
		t.Fatal("weight/member mismatch should be rejected")
	}
}

func TestPrecisionRecallThresholdTradeoff(t *testing.T) {
	train, test := trainTest(t, 3000, 800)
	nb := NewNaiveBayes()
	nb.Train(train)
	pLow, rLow := PrecisionRecallAt(nb, test, 0.0)
	pHigh, rHigh := PrecisionRecallAt(nb, test, 0.9)
	if rHigh > rLow {
		t.Fatalf("higher threshold cannot increase recall: %v vs %v", rHigh, rLow)
	}
	if pHigh+0.02 < pLow {
		t.Fatalf("higher threshold should not clearly hurt precision: %.3f vs %.3f", pHigh, pLow)
	}
	if rLow == 0 {
		t.Fatal("zero threshold should emit predictions")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	nb := NewNaiveBayes()
	if Accuracy(nb, nil) != 0 {
		t.Fatal("accuracy over nothing should be 0")
	}
}

func TestHeadlessItemsAreHarder(t *testing.T) {
	// Sanity: classifiers lean on head nouns; the trap/headless titles the
	// lexicon injects should be where errors concentrate. We just check
	// overall error rate is nonzero (the corner cases exist).
	train, test := trainTest(t, 3000, 1000)
	nb := NewNaiveBayes()
	nb.Train(train)
	if Accuracy(nb, test) > 0.995 {
		t.Fatal("catalog should not be trivially separable — corner cases expected")
	}
}

func TestDeterministicTraining(t *testing.T) {
	train, test := trainTest(t, 1000, 100)
	p1 := NewPerceptron(3)
	p1.Train(train)
	p2 := NewPerceptron(3)
	p2.Train(train)
	for _, it := range test {
		a, b := p1.Predict(it), p2.Predict(it)
		if len(a) != len(b) || (len(a) > 0 && (a[0].Type != b[0].Type)) {
			t.Fatal("perceptron training is not deterministic")
		}
	}
}
