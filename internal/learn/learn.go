// Package learn implements the learning-based classifiers of the paper's
// §3.1 default solution — the families Chimera's ensemble uses: multinomial
// Naive Bayes, k-nearest-neighbour over TF-IDF cosine (with an inverted
// index), and an averaged multiclass perceptron standing in for the linear
// SVM. A weighted-vote ensemble combines them.
//
// Everything trains on catalog items and predicts ranked (type, score)
// lists; scores are calibrated to [0,1] so the Voting Master can threshold
// them uniformly.
package learn

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/tokenize"
)

// Prediction is one ranked class guess.
type Prediction struct {
	Type  string
	Score float64 // in [0,1], higher is more confident
}

// Classifier is the common train/predict contract. Train replaces any
// previous model. Predict returns predictions sorted by descending score;
// implementations return nil when they cannot make a prediction at all.
type Classifier interface {
	Name() string
	Train(items []*catalog.Item)
	Predict(it *catalog.Item) []Prediction
}

// Features extracts the feature multiset for an item: normalized title
// unigrams, title bigrams, attribute-presence features (attr:isbn — the
// "if a product has an attribute called isbn it is a book" signal), and
// brand-value features.
func Features(it *catalog.Item) []string {
	tokens := tokenize.NormalizeTokens(it.TitleTokens())
	feats := make([]string, 0, len(tokens)*2+4)
	feats = append(feats, tokens...)
	for i := 0; i+1 < len(tokens); i++ {
		feats = append(feats, tokens[i]+"_"+tokens[i+1])
	}
	// Attribute names are appended in sorted order: feature-vector order
	// feeds floating-point sums in the learners, and map iteration order
	// would make those sums (and near-tie predictions) vary across runs.
	attrs := make([]string, 0, len(it.Attrs))
	for attr := range it.Attrs {
		switch attr {
		case "Title", "Description":
			continue
		}
		attrs = append(attrs, attr)
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		feats = append(feats, "attr:"+strings.ToLower(attr))
	}
	if b, ok := it.Attrs["Brand Name"]; ok {
		feats = append(feats, "brand:"+strings.ToLower(b))
	}
	return feats
}

func sortPredictions(ps []Prediction) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Score != ps[j].Score {
			return ps[i].Score > ps[j].Score
		}
		return ps[i].Type < ps[j].Type
	})
}

// topK truncates a prediction list.
func topK(ps []Prediction, k int) []Prediction {
	if len(ps) > k {
		ps = ps[:k]
	}
	return ps
}

// ---------------------------------------------------------------------------
// Naive Bayes
// ---------------------------------------------------------------------------

// NaiveBayes is a multinomial Naive Bayes classifier with Laplace smoothing.
type NaiveBayes struct {
	classes     []string
	prior       map[string]float64 // log prior
	condCount   map[string]map[string]int
	classTokens map[string]int
	vocab       map[string]bool
}

// NewNaiveBayes returns an untrained classifier.
func NewNaiveBayes() *NaiveBayes { return &NaiveBayes{} }

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "naive-bayes" }

// Train implements Classifier.
func (nb *NaiveBayes) Train(items []*catalog.Item) {
	nb.prior = map[string]float64{}
	nb.condCount = map[string]map[string]int{}
	nb.classTokens = map[string]int{}
	nb.vocab = map[string]bool{}
	classN := map[string]int{}
	for _, it := range items {
		classN[it.TrueType]++
		counts := nb.condCount[it.TrueType]
		if counts == nil {
			counts = map[string]int{}
			nb.condCount[it.TrueType] = counts
		}
		for _, f := range Features(it) {
			counts[f]++
			nb.classTokens[it.TrueType]++
			nb.vocab[f] = true
		}
	}
	nb.classes = nb.classes[:0]
	for cl := range classN {
		nb.classes = append(nb.classes, cl)
	}
	sort.Strings(nb.classes)
	total := float64(len(items))
	for cl, n := range classN {
		nb.prior[cl] = math.Log(float64(n) / total)
	}
}

// Predict implements Classifier. Scores are softmax-normalized posteriors.
func (nb *NaiveBayes) Predict(it *catalog.Item) []Prediction {
	if len(nb.classes) == 0 {
		return nil
	}
	feats := Features(it)
	v := float64(len(nb.vocab) + 1)
	logs := make([]float64, len(nb.classes))
	for i, cl := range nb.classes {
		lp := nb.prior[cl]
		counts := nb.condCount[cl]
		denom := float64(nb.classTokens[cl]) + v
		for _, f := range feats {
			if !nb.vocab[f] {
				continue // unseen features carry no between-class signal
			}
			lp += math.Log((float64(counts[f]) + 1) / denom)
		}
		logs[i] = lp
	}
	// Softmax with max subtraction for stability.
	maxLog := math.Inf(-1)
	for _, l := range logs {
		if l > maxLog {
			maxLog = l
		}
	}
	var z float64
	for _, l := range logs {
		z += math.Exp(l - maxLog)
	}
	preds := make([]Prediction, len(nb.classes))
	for i, cl := range nb.classes {
		preds[i] = Prediction{Type: cl, Score: math.Exp(logs[i]-maxLog) / z}
	}
	sortPredictions(preds)
	return topK(preds, 5)
}

// ---------------------------------------------------------------------------
// kNN with inverted index
// ---------------------------------------------------------------------------

// KNN is a k-nearest-neighbour classifier over TF-IDF cosine similarity.
// Training builds an inverted index from feature to training examples, so a
// prediction only scores examples sharing at least one feature.
type KNN struct {
	K int // default 5

	labels []string
	norms  []float64
	vecs   []map[string]float64
	index  map[string][]int32
	df     map[string]int
	nDocs  int
}

// NewKNN returns an untrained kNN classifier with k neighbours.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (k *KNN) Name() string { return "knn" }

// Train implements Classifier.
func (k *KNN) Train(items []*catalog.Item) {
	k.labels = make([]string, 0, len(items))
	k.vecs = make([]map[string]float64, 0, len(items))
	k.norms = make([]float64, 0, len(items))
	k.index = map[string][]int32{}
	k.df = map[string]int{}
	k.nDocs = len(items)

	rawFeats := make([][]string, len(items))
	for i, it := range items {
		rawFeats[i] = Features(it)
		seen := map[string]bool{}
		for _, f := range rawFeats[i] {
			if !seen[f] {
				seen[f] = true
				k.df[f]++
			}
		}
	}
	for i, it := range items {
		vec := k.vectorize(rawFeats[i])
		// Sorted feature order keeps the norm sums (and hence similarity
		// ties) reproducible across runs.
		fs := make([]string, 0, len(vec))
		for f := range vec {
			fs = append(fs, f)
		}
		sort.Strings(fs)
		var norm float64
		for _, f := range fs {
			norm += vec[f] * vec[f]
			k.index[f] = append(k.index[f], int32(i))
		}
		k.labels = append(k.labels, it.TrueType)
		k.vecs = append(k.vecs, vec)
		k.norms = append(k.norms, math.Sqrt(norm))
	}
}

func (k *KNN) vectorize(feats []string) map[string]float64 {
	tf := map[string]int{}
	for _, f := range feats {
		tf[f]++
	}
	vec := make(map[string]float64, len(tf))
	for f, n := range tf {
		df := k.df[f]
		if df == 0 {
			continue
		}
		vec[f] = float64(n) * math.Log(float64(k.nDocs+1)/float64(df))
	}
	return vec
}

// Predict implements Classifier. Scores are the per-class share of summed
// neighbour similarity.
func (k *KNN) Predict(it *catalog.Item) []Prediction {
	if k.nDocs == 0 {
		return nil
	}
	q := k.vectorize(Features(it))
	// Features are visited in sorted order everywhere below so the
	// floating-point sums — and therefore near-tie rankings — are identical
	// across runs and instances (map iteration order is not).
	feats := make([]string, 0, len(q))
	for f := range q {
		feats = append(feats, f)
	}
	sort.Strings(feats)
	var qNorm float64
	for _, f := range feats {
		qNorm += q[f] * q[f]
	}
	qNorm = math.Sqrt(qNorm)
	if qNorm == 0 {
		return nil
	}
	dots := map[int32]float64{}
	for _, f := range feats {
		w := q[f]
		for _, doc := range k.index[f] {
			dots[doc] += w * k.vecs[doc][f]
		}
	}
	if len(dots) == 0 {
		return nil
	}
	type scored struct {
		doc int32
		sim float64
	}
	cands := make([]scored, 0, len(dots))
	for doc, dot := range dots {
		cands = append(cands, scored{doc, dot / (qNorm * k.norms[doc])})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return cands[i].doc < cands[j].doc
	})
	if len(cands) > k.K {
		cands = cands[:k.K]
	}
	votes := map[string]float64{}
	var total float64
	for _, c := range cands {
		votes[k.labels[c.doc]] += c.sim
		total += c.sim
	}
	if total <= 0 {
		return nil
	}
	preds := make([]Prediction, 0, len(votes))
	for cl, v := range votes {
		preds = append(preds, Prediction{Type: cl, Score: v / total})
	}
	sortPredictions(preds)
	return preds
}

// ---------------------------------------------------------------------------
// Averaged perceptron
// ---------------------------------------------------------------------------

// Perceptron is a multiclass averaged perceptron — the stdlib-only stand-in
// for Chimera's linear SVM.
type Perceptron struct {
	Epochs int // default 5

	classes []string
	weights map[string]map[string]float64 // class → feature → averaged weight
}

// NewPerceptron returns an untrained perceptron.
func NewPerceptron(epochs int) *Perceptron {
	if epochs <= 0 {
		epochs = 5
	}
	return &Perceptron{Epochs: epochs}
}

// Name implements Classifier.
func (p *Perceptron) Name() string { return "perceptron" }

// Train implements Classifier. Uses the standard averaging trick
// (accumulate weight * remaining updates) for stability.
func (p *Perceptron) Train(items []*catalog.Item) {
	classSet := map[string]bool{}
	for _, it := range items {
		classSet[it.TrueType] = true
	}
	p.classes = p.classes[:0]
	for cl := range classSet {
		p.classes = append(p.classes, cl)
	}
	sort.Strings(p.classes)

	w := map[string]map[string]float64{}
	acc := map[string]map[string]float64{}
	for _, cl := range p.classes {
		w[cl] = map[string]float64{}
		acc[cl] = map[string]float64{}
	}
	feats := make([][]string, len(items))
	for i, it := range items {
		feats[i] = Features(it)
	}
	steps := p.Epochs * len(items)
	step := 0
	for epoch := 0; epoch < p.Epochs; epoch++ {
		for i, it := range items {
			step++
			pred := p.argmax(w, feats[i])
			if pred != it.TrueType {
				remain := float64(steps - step + 1)
				for _, f := range feats[i] {
					w[it.TrueType][f]++
					acc[it.TrueType][f] += remain
					w[pred][f]--
					acc[pred][f] -= remain
				}
			}
		}
	}
	p.weights = map[string]map[string]float64{}
	for cl, m := range acc {
		p.weights[cl] = map[string]float64{}
		for f, v := range m {
			if v != 0 {
				p.weights[cl][f] = v / float64(steps)
			}
		}
	}
}

func (p *Perceptron) argmax(w map[string]map[string]float64, feats []string) string {
	best, bestScore := "", math.Inf(-1)
	for _, cl := range p.classes {
		var s float64
		cw := w[cl]
		for _, f := range feats {
			s += cw[f]
		}
		if s > bestScore {
			best, bestScore = cl, s
		}
	}
	return best
}

// Predict implements Classifier. Margins are softmax-normalized.
func (p *Perceptron) Predict(it *catalog.Item) []Prediction {
	if len(p.classes) == 0 {
		return nil
	}
	feats := Features(it)
	scores := make([]float64, len(p.classes))
	for i, cl := range p.classes {
		cw := p.weights[cl]
		for _, f := range feats {
			scores[i] += cw[f]
		}
	}
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	var z float64
	for _, s := range scores {
		z += math.Exp((s - maxS) / 4) // temperature softens raw margins
	}
	preds := make([]Prediction, len(p.classes))
	for i, cl := range p.classes {
		preds[i] = Prediction{Type: cl, Score: math.Exp((scores[i]-maxS)/4) / z}
	}
	sortPredictions(preds)
	return topK(preds, 5)
}

// ---------------------------------------------------------------------------
// Ensemble
// ---------------------------------------------------------------------------

// Ensemble combines member classifiers with weighted score voting (§3.1:
// "train a set of learning-based classifiers, often combining them into an
// ensemble").
type Ensemble struct {
	members []Classifier
	weights []float64
}

// NewEnsemble builds an ensemble; weights default to 1 each when nil.
func NewEnsemble(members []Classifier, weights []float64) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("learn: ensemble needs at least one member")
	}
	if weights == nil {
		weights = make([]float64, len(members))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(members) {
		return nil, fmt.Errorf("learn: %d weights for %d members", len(weights), len(members))
	}
	return &Ensemble{members: members, weights: weights}, nil
}

// Name implements Classifier.
func (e *Ensemble) Name() string { return "ensemble" }

// Train trains every member on the same data.
func (e *Ensemble) Train(items []*catalog.Item) {
	for _, m := range e.members {
		m.Train(items)
	}
}

// Predict sums weighted member scores and renormalizes.
func (e *Ensemble) Predict(it *catalog.Item) []Prediction {
	votes := map[string]float64{}
	var total float64
	for i, m := range e.members {
		for _, p := range m.Predict(it) {
			votes[p.Type] += e.weights[i] * p.Score
			total += e.weights[i] * p.Score
		}
	}
	if total <= 0 {
		return nil
	}
	preds := make([]Prediction, 0, len(votes))
	for cl, v := range votes {
		preds = append(preds, Prediction{Type: cl, Score: v / total})
	}
	sortPredictions(preds)
	return preds
}

// Members exposes the ensemble's classifiers (for per-member diagnostics).
func (e *Ensemble) Members() []Classifier { return e.members }

// ---------------------------------------------------------------------------
// Evaluation helpers
// ---------------------------------------------------------------------------

// Accuracy returns top-1 accuracy of c on items (which carry ground truth).
func Accuracy(c Classifier, items []*catalog.Item) float64 {
	if len(items) == 0 {
		return 0
	}
	correct := 0
	for _, it := range items {
		ps := c.Predict(it)
		if len(ps) > 0 && ps[0].Type == it.TrueType {
			correct++
		}
	}
	return float64(correct) / float64(len(items))
}

// PrecisionRecallAt measures precision and recall when predictions below
// the confidence threshold are declined: precision over emitted predictions,
// recall as emitted-and-correct over all items (the paper's operating mode:
// "maintain precision ≥92%, tolerate lower recall").
func PrecisionRecallAt(c Classifier, items []*catalog.Item, threshold float64) (precision, recall float64) {
	emitted, correct := 0, 0
	for _, it := range items {
		ps := c.Predict(it)
		if len(ps) == 0 || ps[0].Score < threshold {
			continue
		}
		emitted++
		if ps[0].Type == it.TrueType {
			correct++
		}
	}
	if emitted > 0 {
		precision = float64(correct) / float64(emitted)
	}
	if len(items) > 0 {
		recall = float64(correct) / float64(len(items))
	}
	return precision, recall
}

// WeightsForDiag exposes a class's averaged weights for determinism
// diagnostics in tests.
func (p *Perceptron) WeightsForDiag(class string) map[string]float64 { return p.weights[class] }
