package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDeterminism: two injectors with the same seed and config make the same
// decisions in the same order — the property that makes chaos runs
// reproducible.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, HandlerLatencyP: 0.3, RebuildStallP: 0.2, RebuildErrorP: 0.1,
		CrowdTimeoutP: 0.25, CrowdNoShowP: 0.25}
	run := func() []bool {
		j := New(cfg)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, j.HandlerDelay() > 0)
			_, err := j.RebuildFault()
			out = append(out, err != nil)
			out = append(out, j.CrowdTimeout(), j.CrowdNoShow())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identically seeded injectors", i)
		}
	}
}

// TestZeroConfigInjectsNothing: the zero Config and a nil injector are both
// completely inert.
func TestZeroConfigInjectsNothing(t *testing.T) {
	for name, j := range map[string]*Injector{"zero": New(Config{}), "nil": nil} {
		for i := 0; i < 100; i++ {
			if j.HandlerDelay() != 0 {
				t.Fatalf("%s injector injected handler latency", name)
			}
			if stall, err := j.RebuildFault(); stall != 0 || err != nil {
				t.Fatalf("%s injector injected a rebuild fault", name)
			}
			if j.CrowdTimeout() || j.CrowdNoShow() {
				t.Fatalf("%s injector injected a crowd fault", name)
			}
		}
		if j.Total() != 0 {
			t.Fatalf("%s injector counted faults it cannot have injected", name)
		}
	}
}

// TestCountsAndDefaults: probability-1 faults always fire, are tallied per
// family, and duration defaults kick in when only the probability is set.
func TestCountsAndDefaults(t *testing.T) {
	j := New(Config{Seed: 1, HandlerLatencyP: 1, RebuildStallP: 1, RebuildErrorP: 1})
	if d := j.HandlerDelay(); d != 2*time.Millisecond {
		t.Fatalf("default handler latency = %v, want 2ms", d)
	}
	stall, err := j.RebuildFault()
	if stall != 5*time.Millisecond {
		t.Fatalf("default rebuild stall = %v, want 5ms", stall)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrRebuild) {
		t.Fatalf("rebuild error %v must match ErrInjected and ErrRebuild", err)
	}
	counts := j.Counts()
	if counts["handler_latency"] != 1 || counts["rebuild_stall"] != 1 || counts["rebuild_error"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if j.Total() != 3 {
		t.Fatalf("total = %d, want 3", j.Total())
	}
}

// TestConcurrentUse: the injector is drawn from many goroutines at once (as
// server workers, the rebuild loop and crowd calls do); run under -race this
// is the data-race check, and the tally must equal the observed hits.
func TestConcurrentUse(t *testing.T) {
	j := New(Config{Seed: 3, HandlerLatencyP: 0.5, HandlerLatency: time.Nanosecond})
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	hits := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if j.HandlerDelay() > 0 {
					hits[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if got := j.Counts()["handler_latency"]; got != total {
		t.Fatalf("tally %d != observed hits %d", got, total)
	}
	if total == 0 || total == goroutines*per {
		t.Fatalf("p=0.5 produced degenerate hit count %d/%d", total, goroutines*per)
	}
}

// TestShardDelayTargeting: shard stalls fire only on the configured target
// shard (shard 0 by default), on every shard under AllShards, and never from
// a nil injector — the knob that lets chaos tests prove one bad shard
// degrades only its own key range.
func TestShardDelayTargeting(t *testing.T) {
	j := New(Config{Seed: 5, ShardStallP: 1.0, ShardStall: time.Millisecond, ShardTarget: 2})
	for shard := 0; shard < 4; shard++ {
		d := j.ShardDelay(shard)
		if shard == 2 && d != time.Millisecond {
			t.Fatalf("target shard got delay %v, want 1ms", d)
		}
		if shard != 2 && d != 0 {
			t.Fatalf("non-target shard %d got delay %v, want 0", shard, d)
		}
	}
	if got := j.Counts()["shard_stall"]; got != 1 {
		t.Fatalf("counted %d shard stalls, want 1 (only the target's)", got)
	}

	all := New(Config{Seed: 5, ShardStallP: 1.0, ShardTarget: AllShards})
	for shard := 0; shard < 4; shard++ {
		if d := all.ShardDelay(shard); d != 2*time.Millisecond {
			t.Fatalf("AllShards shard %d got %v, want the 2ms default", shard, d)
		}
	}

	var nilInj *Injector
	if d := nilInj.ShardDelay(0); d != 0 {
		t.Fatalf("nil injector returned %v", d)
	}
	if d := New(Config{Seed: 5}).ShardDelay(0); d != 0 {
		t.Fatalf("zero-probability injector returned %v", d)
	}
}

// TestShardDelayDeterminism: same seed, same stall stream on the target.
func TestShardDelayDeterminism(t *testing.T) {
	draw := func() []bool {
		j := New(Config{Seed: 42, ShardStallP: 0.5, ShardStall: time.Millisecond})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, j.ShardDelay(0) > 0)
		}
		return out
	}
	a, b := draw(), draw()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged between same-seeded injectors", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("%d/%d stalls fired at p=0.5 — stream looks degenerate", fired, len(a))
	}
}
