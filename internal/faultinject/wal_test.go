package faultinject

import "testing"

// TestWALTornWriteBounds: results stay in [0, n], firing is counted, and the
// same seed replays the same decisions.
func TestWALTornWriteBounds(t *testing.T) {
	run := func() ([]int, int) {
		j := New(Config{Seed: 7, WALTornWriteP: 0.5})
		out := make([]int, 0, 200)
		for i := 0; i < 200; i++ {
			n := 1 + i%64
			kept := j.WALTornWrite(n)
			if kept < 0 || kept > n {
				t.Fatalf("WALTornWrite(%d) = %d, out of [0,%d]", n, kept, n)
			}
			out = append(out, kept)
		}
		return out, j.Counts()["wal_torn_write"]
	}
	a, ca := run()
	b, cb := run()
	if ca == 0 {
		t.Fatal("p=0.5 over 200 draws never tore a write")
	}
	if ca != cb {
		t.Fatalf("counts not deterministic: %d vs %d", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d not deterministic: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestWALShortReadDisabledAndNil: zero probability and nil injectors are
// pass-through.
func TestWALShortReadDisabledAndNil(t *testing.T) {
	j := New(Config{Seed: 1})
	for i := 0; i < 50; i++ {
		if got := j.WALShortRead(123); got != 123 {
			t.Fatalf("disabled injector cut a read to %d", got)
		}
	}
	var nilJ *Injector
	if got := nilJ.WALTornWrite(99); got != 99 {
		t.Fatalf("nil injector tore a write to %d", got)
	}
	if got := nilJ.WALShortRead(99); got != 99 {
		t.Fatalf("nil injector cut a read to %d", got)
	}
}

// TestWALShortReadFires: with p=1 every read is cut to a strict prefix.
func TestWALShortReadFires(t *testing.T) {
	j := New(Config{Seed: 3, WALShortReadP: 1})
	for i := 0; i < 50; i++ {
		if got := j.WALShortRead(64); got >= 64 || got < 0 {
			t.Fatalf("p=1 short read returned %d, want strict prefix of 64", got)
		}
	}
	if j.Counts()["wal_short_read"] != 50 {
		t.Fatalf("wal_short_read count = %d, want 50", j.Counts()["wal_short_read"])
	}
}
