// Package faultinject is the deterministic fault-injection layer for the
// serving stack. Production rule platforms (the paper's §3.3 Chimera
// deployment; RuleGenie-style SIEM engines) are long-running services whose
// failure behaviour — slow handlers, stalled snapshot rebuilds, crowd workers
// that time out or never answer — must be provable, not anecdotal. An
// Injector is a seeded source of such faults: every decision comes from a
// splitmix-derived stream, so a chaos run with the same seed injects the
// same faults in the same order per call-site, and a failure found in CI
// reproduces locally.
//
// The injector is safe for concurrent use (server workers, the engine
// rebuild loop and crowd calls all draw from it at once) and counts every
// fault it injects, so harnesses can assert both "faults actually fired"
// and "invariants held anyway".
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/randx"
)

// ErrInjected is the root of every injected error, so tests can
// errors.Is-match a fault regardless of which site raised it.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrRebuild is the injected snapshot-rebuild failure; it wraps ErrInjected.
var ErrRebuild = fmt.Errorf("%w: rebuild failure", ErrInjected)

// Config parameterizes an Injector. All probabilities are in [0,1]; a zero
// probability disables that fault family, so the zero Config injects nothing.
type Config struct {
	// Seed derives the deterministic fault stream.
	Seed uint64

	// HandlerLatencyP is the probability that one handler invocation is
	// slowed by HandlerLatency (default 2ms when the probability is set and
	// the duration is zero).
	HandlerLatencyP float64
	HandlerLatency  time.Duration

	// RebuildStallP stalls a snapshot rebuild by RebuildStall (default 5ms);
	// RebuildErrorP fails the rebuild outright with ErrRebuild.
	RebuildStallP float64
	RebuildStall  time.Duration
	RebuildErrorP float64

	// ShardStallP stalls one sharded-serving handler invocation by
	// ShardStall (default 2ms when the probability is set and the duration
	// is zero). ShardTarget pins the stalls to one shard index;
	// AllShards (-1) stalls every shard. The zero value targets shard 0 —
	// targeted stalls are the point of the knob (prove that one bad shard
	// degrades only its own key range).
	ShardStallP float64
	ShardStall  time.Duration
	ShardTarget int

	// CrowdTimeoutP is the probability that a crowd worker's answer times
	// out: the assignment is charged but no answer is recorded. CrowdNoShowP
	// is the probability a worker never picks the task up at all: no answer
	// and no charge.
	CrowdTimeoutP float64
	CrowdNoShowP  float64

	// WALTornWriteP is the probability that one write-ahead-log append is
	// torn: only a uniformly-drawn prefix of the frame reaches the disk, as
	// if the process died mid-write. WALShortReadP is the probability that
	// one replay read is cut short to a uniformly-drawn prefix of the file —
	// the read-side analogue (partial page, truncated copy). Both model the
	// crash-consistency surface internal/persist must recover from.
	WALTornWriteP float64
	WALShortReadP float64
}

func (c Config) withDefaults() Config {
	if c.HandlerLatencyP > 0 && c.HandlerLatency == 0 {
		c.HandlerLatency = 2 * time.Millisecond
	}
	if c.RebuildStallP > 0 && c.RebuildStall == 0 {
		c.RebuildStall = 5 * time.Millisecond
	}
	if c.ShardStallP > 0 && c.ShardStall == 0 {
		c.ShardStall = 2 * time.Millisecond
	}
	return c
}

// AllShards as Config.ShardTarget applies shard stalls to every shard.
const AllShards = -1

// Injector is a concurrent, seeded fault source. The zero value is not
// usable; construct with New. A nil *Injector is valid everywhere and
// injects nothing, so call sites need no guards.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *randx.Rand
	counts map[string]int
}

// New builds an injector from cfg. New(Config{}) injects nothing but still
// counts (all zeros) — handy as an always-on wiring point.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:    cfg,
		rng:    randx.New(cfg.Seed).Split("faultinject"),
		counts: map[string]int{},
	}
}

// roll draws one Bernoulli decision under the injector lock and counts the
// fault under name when it fires.
func (j *Injector) roll(p float64, name string) bool {
	if j == nil || p <= 0 {
		return false
	}
	j.mu.Lock()
	hit := j.rng.Bool(p)
	if hit {
		j.counts[name]++
	}
	j.mu.Unlock()
	return hit
}

// HandlerDelay returns the latency to inject into the current handler
// invocation (0 = none). The caller sleeps; the injector only decides.
func (j *Injector) HandlerDelay() time.Duration {
	if j.roll(j.cfgOf().HandlerLatencyP, "handler_latency") {
		return j.cfg.HandlerLatency
	}
	return 0
}

// RebuildFault decides the fate of one snapshot rebuild: a stall duration
// (0 = none) and/or an outright failure (ErrRebuild). Matches the
// serve.Engine rebuild hook signature.
func (j *Injector) RebuildFault() (stall time.Duration, err error) {
	cfg := j.cfgOf()
	if j.roll(cfg.RebuildStallP, "rebuild_stall") {
		stall = cfg.RebuildStall
	}
	if j.roll(cfg.RebuildErrorP, "rebuild_error") {
		err = ErrRebuild
	}
	return stall, err
}

// ShardDelay returns the latency to inject into a handler invocation on the
// given shard (0 = none): stalls fire only on the targeted shard (or on all
// shards when ShardTarget is AllShards). Pair it with serve.ShardFromContext
// in the handler. Counted as "shard_stall".
func (j *Injector) ShardDelay(shard int) time.Duration {
	cfg := j.cfgOf()
	if cfg.ShardStallP <= 0 || (cfg.ShardTarget != AllShards && shard != cfg.ShardTarget) {
		return 0
	}
	if j.roll(cfg.ShardStallP, "shard_stall") {
		return cfg.ShardStall
	}
	return 0
}

// WALTornWrite decides whether a WAL append of n bytes is torn, returning
// how many bytes actually reach the disk: n means the write is intact, any
// smaller value is the surviving prefix (possibly 0). Counted as
// "wal_torn_write".
func (j *Injector) WALTornWrite(n int) int {
	return j.prefix(n, j.cfgOf().WALTornWriteP, "wal_torn_write")
}

// WALShortRead decides whether a replay read of n bytes is cut short,
// returning how many bytes the reader sees (n = intact). Counted as
// "wal_short_read".
func (j *Injector) WALShortRead(n int) int {
	return j.prefix(n, j.cfgOf().WALShortReadP, "wal_short_read")
}

// prefix draws one Bernoulli decision and, on a hit, a uniform prefix length
// in [0, n); both draws come from the same seeded stream under one lock
// acquisition so runs replay deterministically.
func (j *Injector) prefix(n int, p float64, name string) int {
	if j == nil || p <= 0 || n <= 0 {
		return n
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.rng.Bool(p) {
		return n
	}
	j.counts[name]++
	return j.rng.Intn(n)
}

// CrowdTimeout reports whether one crowd assignment times out (charged, no
// answer recorded).
func (j *Injector) CrowdTimeout() bool { return j.roll(j.cfgOf().CrowdTimeoutP, "crowd_timeout") }

// CrowdNoShow reports whether one crowd assignment is never picked up (no
// charge, no answer).
func (j *Injector) CrowdNoShow() bool { return j.roll(j.cfgOf().CrowdNoShowP, "crowd_noshow") }

// cfgOf tolerates nil receivers so every public method is nil-safe.
func (j *Injector) cfgOf() Config {
	if j == nil {
		return Config{}
	}
	return j.cfg
}

// Counts returns a copy of the per-fault injection tallies ("handler_latency",
// "rebuild_stall", "rebuild_error", "shard_stall", "crowd_timeout",
// "crowd_noshow", "wal_torn_write", "wal_short_read").
func (j *Injector) Counts() map[string]int {
	if j == nil {
		return map[string]int{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int, len(j.counts))
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults across all families.
func (j *Injector) Total() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, v := range j.counts {
		n += v
	}
	return n
}
