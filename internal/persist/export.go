package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// WriteDecisionsNDJSON writes decision records to w as NDJSON (one JSON
// object per line, oldest first — the same wire shape the ops /decisions
// endpoints speak) and returns the number of records written.
func WriteDecisionsNDJSON(w io.Writer, recs []*obs.DecisionRecord) (int, error) {
	enc := json.NewEncoder(w)
	for i, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return i, fmt.Errorf("persist: encoding decision record: %w", err)
		}
	}
	return len(recs), nil
}

// ExportDecisions writes the newest n retained decision records (n <= 0 =
// the full ring) to path atomically (temp file + rename), so an export
// interrupted mid-write never leaves a half-file where an incident
// responder expects evidence. Returns the number of records exported.
func ExportDecisions(path string, log *obs.AuditLog, n int) (int, error) {
	if !log.Enabled() {
		return 0, fmt.Errorf("persist: decision audit log is not enabled")
	}
	if n <= 0 || n > log.Capacity() {
		n = log.Capacity()
	}
	recs := log.Tail(n)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: creating export temp: %w", err)
	}
	wrote, err := WriteDecisionsNDJSON(f, recs)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return wrote, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return wrote, fmt.Errorf("persist: closing export temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return wrote, fmt.Errorf("persist: publishing export: %w", err)
	}
	return wrote, nil
}
