package persist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func mustRule(r *core.Rule, err error) *core.Rule {
	if err != nil {
		panic(err)
	}
	return r
}

func testItems() []*catalog.Item {
	titles := []string{
		"apple phone 15 pro", "denim jeans relaxed fit", "gaming laptop rtx",
		"phone case leather", "espresso machine steel", "running shoes mesh",
		"vintage vinyl record", "noise cancelling headphones", "4k monitor 27in",
		"mechanical keyboard", "standing desk oak", "usb c cable 2m",
	}
	items := make([]*catalog.Item, 0, len(titles))
	for i, title := range titles {
		attrs := map[string]string{"Title": title}
		if i%3 == 0 {
			attrs["brand"] = "apple"
		}
		if i%4 == 0 {
			attrs["isbn"] = fmt.Sprintf("978-%d", i)
		}
		items = append(items, &catalog.Item{ID: fmt.Sprintf("it%02d", i), Attrs: attrs})
	}
	return items
}

// explains renders byte-comparable verdicts for every test item through a
// serve.Snapshot built from rb — the restart drill's equality oracle.
func explains(rb *core.Rulebase) []string {
	snap := serve.BuildSnapshot(rb, nil)
	items := testItems()
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, snap.Apply(it).Explain())
	}
	return out
}

// mutate applies a scripted mixed-kind mutation sequence.
func mutate(t *testing.T, rb *core.Rulebase) {
	t.Helper()
	adds := []*core.Rule{
		mustRule(core.NewWhitelist("phones?", "phone")),
		mustRule(core.NewBlacklist("phone case", "phone")),
		mustRule(core.NewGate("espresso", "espresso machine")),
		mustRule(core.NewAttrExists("isbn", "book")),
		mustRule(core.NewAttrValue("brand", "apple", []string{"phone", "laptop"})),
		mustRule(core.NewFilter("vinyl")),
		mustRule(core.NewTypeRestrict("(laptop | monitor)", []string{"laptop", "monitor"})),
	}
	guarded := mustRule(core.NewWhitelist("jeans?", "jeans"))
	guarded.Guards = []core.Guard{{Attr: "price", Op: "<", Value: "100"}}
	adds = append(adds, guarded)
	ids := make([]string, 0, len(adds))
	for _, r := range adds {
		id, err := rb.Add(r, "ana")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := rb.Disable(ids[1], "ana", "precision dip on cases"); err != nil {
		t.Fatal(err)
	}
	if err := rb.UpdateConfidence(ids[0], 0.87, "eval-pipeline"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Enable(ids[1], "ana", "recovered"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Retire(ids[5], "bob", "business rule withdrawn"); err != nil {
		t.Fatal(err)
	}
	if err := rb.UpdateConfidence(ids[4], 0.42, "eval-pipeline"); err != nil {
		t.Fatal(err)
	}
}

// assertEquivalent asserts the full restart-drill equality: version, audit
// log, serialized state, and byte-equal verdicts through serve.Snapshot.
func assertEquivalent(t *testing.T, live, restored *core.Rulebase) {
	t.Helper()
	if restored.Version() != live.Version() {
		t.Fatalf("restored version = %d, live = %d", restored.Version(), live.Version())
	}
	if !reflect.DeepEqual(restored.Audit(), live.Audit()) {
		t.Fatal("restored audit log differs from live audit log")
	}
	lj, err := json.Marshal(live)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(restored)
	if err != nil {
		t.Fatal(err)
	}
	if string(lj) != string(rj) {
		t.Fatalf("restored state differs:\nlive:     %s\nrestored: %s", lj, rj)
	}
	lv, rv := explains(live), explains(restored)
	for i := range lv {
		if lv[i] != rv[i] {
			t.Fatalf("verdict %d not byte-equal after restore:\nlive:\n%s\nrestored:\n%s", i, lv[i], rv[i])
		}
	}
}

// TestRestoreEquivalence is the core property test: mutate a live rulebase
// with a store attached (with a mid-stream compaction), kill the store
// without a final snapshot, restore into a fresh rulebase, and require
// identical version, audit log, serialized state, and byte-equal verdicts.
func TestRestoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, err := Open(Options{Dir: dir, Fsync: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	mutate(t, live)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st.WALSize() != 0 {
		t.Fatalf("WAL not reset by snapshot: %d bytes", st.WALSize())
	}
	mutate(t, live)                    // more history on top of the compacted snapshot
	if err := st.Close(); err != nil { // kill: no final snapshot
		t.Fatal(err)
	}

	st2, err := Open(Options{Dir: dir, Fsync: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored := core.NewRulebase()
	stats, err := st2.Restore(restored)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed == 0 {
		t.Fatal("nothing replayed from the WAL — the kill path did not exercise replay")
	}
	if stats.Version != live.Version() {
		t.Fatalf("restore stats version = %d, live = %d", stats.Version, live.Version())
	}
	assertEquivalent(t, live, restored)

	if reg.Counter(MetricWALAppends).Value() == 0 ||
		reg.Counter(MetricSnapshots).Value() == 0 ||
		reg.Counter(MetricReplayed).Value() == 0 ||
		reg.Counter(MetricRestores).Value() != 1 {
		t.Fatalf("persist metrics not recorded: appends=%d snapshots=%d replayed=%d restores=%d",
			reg.Counter(MetricWALAppends).Value(), reg.Counter(MetricSnapshots).Value(),
			reg.Counter(MetricReplayed).Value(), reg.Counter(MetricRestores).Value())
	}
}

// TestRestartContinuesAppending: a restored store keeps logging and a second
// restart sees both generations of history.
func TestRestartContinuesAppending(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	mutate(t, live)
	st.Close()

	// Generation 2: restore, attach, mutate more.
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	gen2 := core.NewRulebase()
	if _, err := st2.Restore(gen2); err != nil {
		t.Fatal(err)
	}
	mutateMore := func(rb *core.Rulebase) {
		if _, err := rb.Add(mustRule(core.NewWhitelist("keyboards?", "keyboard")), "gen2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := st2.Attach(gen2); err != nil {
		t.Fatal(err)
	}
	mutateMore(gen2)
	st2.Close()
	mutateMore(live) // mirror on the in-memory reference

	st3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	gen3 := core.NewRulebase()
	if _, err := st3.Restore(gen3); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, live, gen3)
}

// TestAttachPopulatedTakesBaseline: adopting an already-populated rulebase
// (seeded before the store existed) writes a full baseline snapshot, so a
// crash immediately after Attach still restores the full state.
func TestAttachPopulatedTakesBaseline(t *testing.T) {
	dir := t.TempDir()
	live := core.NewRulebase()
	mutate(t, live) // populated before any store exists

	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	st.Close() // crash right after adoption

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored := core.NewRulebase()
	stats, err := st2.Restore(restored)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotVersion != live.Version() {
		t.Fatalf("baseline snapshot version = %d, want %d", stats.SnapshotVersion, live.Version())
	}
	assertEquivalent(t, live, restored)
}

// TestLoadRebaselines: wholesale replacement via UnmarshalJSON re-baselines
// the durable state instead of appending (the version can even rewind).
func TestLoadRebaselines(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	mutate(t, live)

	// Serialize a much smaller independent rulebase and load it wholesale.
	other := core.NewRulebase()
	if _, err := other.Add(mustRule(core.NewWhitelist("records?", "vinyl")), "import"); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, live); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored := core.NewRulebase()
	if _, err := st2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, live, restored)
}

// TestAutoSnapshot: SnapshotEvery compacts automatically and restore still
// reproduces the exact state.
func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, err := Open(Options{Dir: dir, SnapshotEvery: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	mutate(t, live) // 13 mutations -> at least 3 auto-compactions
	st.Close()
	if got := reg.Counter(MetricSnapshots).Value(); got < 2 {
		t.Fatalf("auto-compaction ran %d times, want >= 2", got)
	}

	st2, err := Open(Options{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored := core.NewRulebase()
	if _, err := st2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, live, restored)
}

// TestConcurrentMutators: the reorder buffer serializes out-of-order change
// deliveries from racing mutators; the restored state matches the final live
// state exactly. Run with -race in verify.sh/ci.
func TestConcurrentMutators(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 8)
	for i := range ids {
		id, err := live.Add(mustRule(core.NewWhitelist(fmt.Sprintf("tok%d", i), "t")), "seed")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					_ = live.UpdateConfidence(ids[(g*7+i)%len(ids)], float64(i)/50, "racer")
				case 1:
					_ = live.Disable(ids[(g*5+i)%len(ids)], "racer", "off")
				default:
					_ = live.Enable(ids[(g*3+i)%len(ids)], "racer", "on")
				}
			}
		}(g)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Broken(); err != nil {
		t.Fatalf("store broke under concurrent mutators: %v", err)
	}

	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored := core.NewRulebase()
	if _, err := st2.Restore(restored); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, live, restored)
}

// TestRestoreRequiresFreshStore: API misuse is rejected loudly.
func TestRestoreRequiresFreshStore(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rb := core.NewRulebase()
	if err := st.Attach(rb); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restore(core.NewRulebase()); err == nil {
		t.Fatal("Restore after Attach should fail")
	}
	if err := st.Attach(core.NewRulebase()); err == nil {
		t.Fatal("second Attach should fail")
	}
}

// TestExportDecisionsNDJSON: the file sink writes one valid JSON object per
// line, atomically, and honors the newest-n limit.
func TestExportDecisionsNDJSON(t *testing.T) {
	log := obs.NewAuditLog(obs.AuditConfig{Capacity: 64, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		log.Observe(&obs.DecisionRecord{
			RequestID: fmt.Sprintf("req-%02d", i),
			ItemID:    fmt.Sprintf("it-%02d", i),
			Path:      obs.PathPerItem,
			Outcome:   obs.OutcomeClassified,
		})
	}
	path := filepath.Join(t.TempDir(), "decisions.ndjson")
	n, err := ExportDecisions(path, log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("exported %d records, want 10", n)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	var first obs.DecisionRecord
	for sc.Scan() {
		var rec obs.DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if lines == 0 {
			first = rec
		}
		lines++
	}
	if lines != 10 {
		t.Fatalf("export has %d lines, want 10", lines)
	}
	if first.RequestID != "req-00" {
		t.Fatalf("export should be oldest-first, first = %q", first.RequestID)
	}

	// newest-n limit
	n, err = ExportDecisions(path, log, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("limited export wrote %d records, want 3", n)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("export temp file left behind")
	}

	// disabled log errors instead of silently writing nothing
	var nilLog *obs.AuditLog
	if _, err := ExportDecisions(path, nilLog, 0); err == nil {
		t.Fatal("export from a disabled audit log should fail")
	}
}

// TestRecordRoundTrip: encode/decode round-trips every action shape.
func TestRecordRoundTrip(t *testing.T) {
	rb := core.NewRulebase()
	var stream []core.Change
	cancel, _ := rb.SubscribeChanges(func(ch core.Change) { stream = append(stream, ch) })
	defer cancel()
	mutate(t, rb)

	var buf []byte
	for _, ch := range stream {
		frame, err := EncodeRecord(recordOf(ch))
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, frame...)
	}
	recs, durable, torn := DecodeRecords(buf)
	if torn || durable != len(buf) {
		t.Fatalf("clean stream decoded as torn (durable=%d of %d)", durable, len(buf))
	}
	if len(recs) != len(stream) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(stream))
	}
	replayed := core.NewRulebase()
	for _, rec := range recs {
		if err := replayed.ApplyChange(rec.change()); err != nil {
			t.Fatal(err)
		}
	}
	assertEquivalent(t, rb, replayed)
	for _, rec := range recs {
		if strings.Contains(rec.Action, " ") {
			t.Fatalf("suspicious action %q", rec.Action)
		}
	}
}
