package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// File names inside the persist directory.
const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"
)

// persist_* metric names.
const (
	// MetricWALAppends counts WAL records appended.
	MetricWALAppends = "persist_wal_appends_total"
	// MetricWALBytes counts WAL bytes appended (frame headers included).
	MetricWALBytes = "persist_wal_append_bytes_total"
	// MetricFsyncSeconds is the latency histogram of WAL fsyncs.
	MetricFsyncSeconds = "persist_fsync_seconds"
	// MetricSnapshots counts compacted snapshots written.
	MetricSnapshots = "persist_snapshots_total"
	// MetricSnapshotBytes is the size of the last snapshot written.
	MetricSnapshotBytes = "persist_snapshot_bytes"
	// MetricSnapshotSeconds is the latency histogram of snapshot writes
	// (marshal + write + fsync + rename).
	MetricSnapshotSeconds = "persist_snapshot_seconds"
	// MetricReplayed counts WAL records replayed by Restore.
	MetricReplayed = "persist_wal_replayed_total"
	// MetricRestores counts successful Restore calls.
	MetricRestores = "persist_restores_total"
	// MetricTornTails counts torn/corrupt WAL tails discarded at Open.
	MetricTornTails = "persist_wal_torn_tails_total"
)

// ErrTornWrite marks a store dead after an (injected) torn append: the
// process is presumed crashed mid-write, so no further appends are accepted.
var ErrTornWrite = errors.New("persist: torn WAL write, store is dead")

// ErrShortRead marks a store whose WAL scan was cut short by an (injected)
// partial read: restore still serves the valid prefix, but the store refuses
// to append (it cannot know where the real durable tail is).
var ErrShortRead = errors.New("persist: short WAL read, store is read-only")

// Options parameterizes Open.
type Options struct {
	// Dir is the persist directory (created if missing).
	Dir string
	// Fsync syncs the WAL after every append and the snapshot before rename.
	// Off, durability is limited to what the OS page cache survives — fine
	// for drills and tests, not for production.
	Fsync bool
	// SnapshotEvery compacts automatically after this many WAL appends
	// (default 1024; negative disables auto-compaction).
	SnapshotEvery int
	// Obs receives persist_* metrics (nil = uninstrumented).
	Obs *obs.Registry
	// Faults injects torn writes and short reads (nil = none).
	Faults *faultinject.Injector
}

// RestoreStats reports what a Restore did.
type RestoreStats struct {
	// SnapshotVersion is the rulebase version the snapshot file held (0 =
	// no snapshot).
	SnapshotVersion uint64
	// Replayed is the number of WAL records applied on top.
	Replayed int
	// Version is the restored rulebase version.
	Version uint64
}

// Store is a durable home for one rulebase: a snapshot file plus a
// write-ahead log of every mutation since. Typical lifecycle:
//
//	st, _ := persist.Open(persist.Options{Dir: dir, Fsync: true})
//	stats, _ := st.Restore(rb) // replay snapshot + WAL into rb
//	_ = st.Attach(rb)          // log every subsequent mutation
//	...
//	_ = st.Snapshot()          // optional compaction before exit
//	_ = st.Close()
//
// Close deliberately does NOT snapshot: durability never depends on a clean
// shutdown (that is the entire point of the WAL), and tests exploit this to
// simulate kills.
type Store struct {
	dir       string
	fsync     bool
	snapEvery int
	reg       *obs.Registry
	faults    *faultinject.Injector

	mu          sync.Mutex
	wal         *os.File
	walLen      int64                  // durable WAL length in bytes
	records     []Record               // decoded at Open, consumed by Restore
	snapVersion uint64                 // version held by the durable snapshot
	lastVersion uint64                 // last version durable anywhere (snapshot or WAL)
	sinceSnap   int                    // appends since the last snapshot
	pending     map[uint64]core.Change // reorder buffer for out-of-order deliveries
	rb          *core.Rulebase
	unsub       func()
	restored    bool
	broken      error // ErrTornWrite / ErrShortRead / first append IO error
	closed      bool
}

// Open opens (or initializes) a persist directory: reads the snapshot
// version, scans the WAL, and truncates any torn tail so subsequent appends
// start at the durable boundary.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 1024
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating dir: %w", err)
	}
	s := &Store{
		dir:       opts.Dir,
		fsync:     opts.Fsync,
		snapEvery: opts.SnapshotEvery,
		reg:       opts.Obs,
		faults:    opts.Faults,
		pending:   map[uint64]core.Change{},
	}
	s.registerHelp()

	// Snapshot version, if a snapshot exists.
	if data, err := os.ReadFile(s.snapPath()); err == nil {
		var meta struct {
			Version uint64 `json:"version"`
		}
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, fmt.Errorf("persist: corrupt snapshot %s: %w", s.snapPath(), err)
		}
		s.snapVersion = meta.Version
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	s.lastVersion = s.snapVersion

	// Scan the WAL: keep the longest valid prefix, drop the torn tail.
	wal, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening WAL: %w", err)
	}
	data, err := io.ReadAll(wal)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("persist: scanning WAL: %w", err)
	}
	short := false
	if cut := s.faults.WALShortRead(len(data)); cut < len(data) {
		data = data[:cut]
		short = true
	}
	recs, durable, torn := DecodeRecords(data)
	s.records = recs
	s.walLen = int64(durable)
	for _, rec := range recs {
		if rec.Version > s.lastVersion {
			s.lastVersion = rec.Version
		}
	}
	switch {
	case short:
		// The cut was in the read, not the file: leave the file alone and
		// refuse to append — we cannot trust our view of the durable tail.
		s.broken = ErrShortRead
	case torn:
		if err := wal.Truncate(int64(durable)); err != nil {
			wal.Close()
			return nil, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
		}
		s.count(MetricTornTails, 1)
	}
	if _, err := wal.Seek(int64(durable), io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("persist: seeking WAL: %w", err)
	}
	s.wal = wal
	return s, nil
}

// Restore rebuilds rb from the durable state: unmarshal the snapshot (when
// one exists), then replay every WAL record beyond it, in order. Records at
// or below the snapshot version are skipped — a crash between snapshot
// rename and WAL reset legitimately leaves such records behind. Must be
// called before Attach and on a rulebase this store will own.
func (s *Store) Restore(rb *core.Rulebase) (RestoreStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st RestoreStats
	if s.closed {
		return st, errors.New("persist: store is closed")
	}
	if s.rb != nil {
		return st, errors.New("persist: Restore must precede Attach")
	}
	if data, err := os.ReadFile(s.snapPath()); err == nil {
		if err := json.Unmarshal(data, rb); err != nil {
			return st, fmt.Errorf("persist: loading snapshot: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return st, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	st.SnapshotVersion = rb.Version()
	for _, rec := range s.records {
		if rec.Version <= st.SnapshotVersion {
			continue
		}
		if err := rb.ApplyChange(rec.change()); err != nil {
			return st, fmt.Errorf("persist: replaying WAL: %w", err)
		}
		st.Replayed++
	}
	st.Version = rb.Version()
	s.restored = true
	s.count(MetricReplayed, int64(st.Replayed))
	s.count(MetricRestores, 1)
	return st, nil
}

// Attach subscribes to rb's mutation feed so every subsequent mutation is
// appended to the WAL. If rb's version differs from the durable state (an
// already-populated rulebase adopted for the first time, or mutations made
// between Restore and Attach), a full baseline snapshot is taken first.
func (s *Store) Attach(rb *core.Rulebase) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("persist: store is closed")
	}
	if s.broken != nil {
		err := s.broken
		s.mu.Unlock()
		return err
	}
	if s.rb != nil {
		s.mu.Unlock()
		return errors.New("persist: already attached")
	}
	s.rb = rb
	s.mu.Unlock()

	// Registration returns the rulebase version atomically; every mutation
	// beyond it is guaranteed to be delivered to onChange.
	cancel, ver := rb.SubscribeChanges(s.onChange)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.unsub = cancel
	if ver != s.lastVersion {
		return s.snapshotLocked()
	}
	return nil
}

// onChange receives one live mutation. Deliveries can arrive out of version
// order (they run outside the rulebase lock on the mutating goroutines), so
// records park in a reorder buffer and are appended contiguously.
func (s *Store) onChange(ch core.Change) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil || s.closed {
		return
	}
	if ch.Entry.Action == core.ActionLoad {
		// Wholesale replacement (UnmarshalJSON): the WAL stream is no longer
		// an increment over the durable state — re-baseline with a full
		// snapshot (which also resets the WAL).
		_ = s.snapshotLocked()
		return
	}
	if ch.Entry.Version <= s.lastVersion {
		return // duplicate from a mutation that raced registration
	}
	s.pending[ch.Entry.Version] = ch
	s.drainPendingLocked()
	if s.snapEvery > 0 && s.sinceSnap >= s.snapEvery {
		_ = s.snapshotLocked()
	}
}

// drainPendingLocked appends parked changes contiguously from lastVersion+1.
func (s *Store) drainPendingLocked() {
	for {
		ch, ok := s.pending[s.lastVersion+1]
		if !ok {
			return
		}
		delete(s.pending, ch.Entry.Version)
		if err := s.appendLocked(ch); err != nil {
			return // store marked broken; remaining pending entries are moot
		}
	}
}

// appendLocked frames one change and writes it to the WAL, honoring the
// torn-write injector: a torn append writes only a prefix and kills the
// store, exactly as a crash mid-write would.
func (s *Store) appendLocked(ch core.Change) error {
	frame, err := EncodeRecord(recordOf(ch))
	if err != nil {
		s.broken = err
		return err
	}
	if keep := s.faults.WALTornWrite(len(frame)); keep < len(frame) {
		_, _ = s.wal.Write(frame[:keep])
		s.broken = ErrTornWrite
		return s.broken
	}
	if _, err := s.wal.Write(frame); err != nil {
		s.broken = fmt.Errorf("persist: WAL append: %w", err)
		return s.broken
	}
	if s.fsync {
		start := time.Now()
		if err := s.wal.Sync(); err != nil {
			s.broken = fmt.Errorf("persist: WAL fsync: %w", err)
			return s.broken
		}
		s.observe(MetricFsyncSeconds, time.Since(start).Seconds())
	}
	s.walLen += int64(len(frame))
	s.lastVersion = ch.Entry.Version
	s.sinceSnap++
	s.count(MetricWALAppends, 1)
	s.count(MetricWALBytes, int64(len(frame)))
	return nil
}

// Snapshot writes a compacted snapshot of the attached rulebase and resets
// the WAL. Safe to call at any time after Attach.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if s.broken != nil {
		return s.broken
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	if s.rb == nil {
		return errors.New("persist: no rulebase attached to snapshot")
	}
	start := time.Now()
	data, err := json.Marshal(s.rb)
	if err != nil {
		return fmt.Errorf("persist: marshaling snapshot: %w", err)
	}
	// The marshal is the authoritative cut: concurrent mutations notified
	// after it will re-arrive through onChange and be deduplicated against
	// the version actually captured.
	var meta struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return fmt.Errorf("persist: reading back snapshot version: %w", err)
	}
	tmp := s.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if s.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: syncing snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot temp: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if s.fsync {
		s.syncDir()
	}
	// The snapshot now owns everything the WAL held; reset it. A crash
	// before the truncate leaves records at or below the snapshot version in
	// the WAL — Restore skips those, so the window is safe.
	if err := s.wal.Truncate(0); err != nil {
		s.broken = fmt.Errorf("persist: resetting WAL: %w", err)
		return s.broken
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		s.broken = fmt.Errorf("persist: rewinding WAL: %w", err)
		return s.broken
	}
	s.walLen = 0
	s.sinceSnap = 0
	s.snapVersion = meta.Version
	if meta.Version > s.lastVersion {
		s.lastVersion = meta.Version
	}
	// Drop parked duplicates the snapshot absorbed, then append survivors.
	for v := range s.pending {
		if v <= s.lastVersion {
			delete(s.pending, v)
		}
	}
	s.drainPendingLocked()
	s.count(MetricSnapshots, 1)
	s.gauge(MetricSnapshotBytes, float64(len(data)))
	s.observe(MetricSnapshotSeconds, time.Since(start).Seconds())
	return nil
}

// Close detaches from the rulebase and closes the WAL without snapshotting
// (see the type comment — durability must never require a clean shutdown).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.unsub != nil {
		s.unsub()
		s.unsub = nil
	}
	if s.wal == nil {
		return nil
	}
	if s.fsync && s.broken == nil {
		_ = s.wal.Sync()
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// LastVersion returns the last rulebase version made durable (snapshot or
// WAL record).
func (s *Store) LastVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastVersion
}

// WALSize returns the durable WAL length in bytes.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walLen
}

// Dir returns the persist directory.
func (s *Store) Dir() string { return s.dir }

// Broken returns the error that killed the store (nil while healthy).
func (s *Store) Broken() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

func (s *Store) snapPath() string { return filepath.Join(s.dir, snapshotFile) }
func (s *Store) walPath() string  { return filepath.Join(s.dir, walFile) }

// syncDir fsyncs the directory so the snapshot rename is durable; best
// effort (some filesystems refuse directory syncs).
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

func (s *Store) count(name string, n int64) {
	if s.reg != nil {
		s.reg.Counter(name).Add(n)
	}
}

func (s *Store) gauge(name string, v float64) {
	if s.reg != nil {
		s.reg.Gauge(name).Set(v)
	}
}

func (s *Store) observe(name string, v float64) {
	if s.reg != nil {
		s.reg.Histogram(name, obs.LatencyBuckets).Observe(v)
	}
}

func (s *Store) registerHelp() {
	if s.reg == nil {
		return
	}
	s.reg.Help(MetricWALAppends, "WAL records appended")
	s.reg.Help(MetricWALBytes, "WAL bytes appended (frame headers included)")
	s.reg.Help(MetricFsyncSeconds, "WAL fsync latency")
	s.reg.Help(MetricSnapshots, "compacted rulebase snapshots written")
	s.reg.Help(MetricSnapshotBytes, "size of the last rulebase snapshot")
	s.reg.Help(MetricSnapshotSeconds, "snapshot write latency (marshal+write+fsync+rename)")
	s.reg.Help(MetricReplayed, "WAL records replayed during restore")
	s.reg.Help(MetricRestores, "successful restores")
	s.reg.Help(MetricTornTails, "torn/corrupt WAL tails discarded at open")
}
