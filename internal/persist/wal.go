// Package persist is the durability layer for the rulebase: a write-ahead
// log of mutations (fed by core.Rulebase.SubscribeChanges — the same
// mutation feed the serving engine rebuilds from), periodic compacted
// snapshots of the full rule state, and crash-safe restore. The §4
// maintenance agenda — rule provenance, analyst actions, long-lived rule
// lifecycles — assumes the rulebase and its audit history survive restarts;
// this package is what makes that true.
//
// Recovery semantics are strict valid-prefix: a restore replays the snapshot
// plus every fully-durable WAL record and stops at the first torn, short, or
// corrupt frame. The restored rulebase is therefore always a state the live
// rulebase actually passed through — never torn, never beyond the last
// durable record (property-tested at every byte boundary in crash_test.go).
package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
)

// Record is one durable rulebase mutation: the audit entry fields plus the
// payload core.Rulebase.ApplyChange needs to reproduce the state transition.
// The lifecycle status after disable/enable/retire is derived from Action on
// replay, so it is deliberately not stored.
type Record struct {
	Version uint64 `json:"v"`
	Action  string `json:"action"`
	RuleID  string `json:"rule_id,omitempty"`
	Actor   string `json:"actor,omitempty"`
	Note    string `json:"note,omitempty"`
	// Rule is the added rule's content frozen at mutation time ("add" only).
	Rule *core.Rule `json:"rule,omitempty"`
	// Confidence is the new precision estimate ("update" only).
	Confidence float64 `json:"confidence,omitempty"`
	// NextID is the auto-ID counter after the mutation ("add" only).
	NextID int `json:"next_id,omitempty"`
}

// recordOf converts a live mutation into its durable form.
func recordOf(ch core.Change) Record {
	return Record{
		Version:    ch.Entry.Version,
		Action:     ch.Entry.Action,
		RuleID:     ch.Entry.RuleID,
		Actor:      ch.Entry.Actor,
		Note:       ch.Entry.Note,
		Rule:       ch.Rule,
		Confidence: ch.Confidence,
		NextID:     ch.NextID,
	}
}

// change converts a replayed record back into an applyable mutation.
func (rec Record) change() core.Change {
	return core.Change{
		Entry: core.AuditEntry{
			Version: rec.Version,
			Action:  rec.Action,
			RuleID:  rec.RuleID,
			Actor:   rec.Actor,
			Note:    rec.Note,
		},
		Rule:       rec.Rule,
		Confidence: rec.Confidence,
		NextID:     rec.NextID,
	}
}

// Frame layout: [4-byte little-endian payload length][4-byte IEEE CRC32 of
// the payload][JSON payload]. The length bound rejects implausible frames
// early so a corrupt length byte cannot make the decoder swallow the rest of
// the file as one giant record.
const (
	frameHeaderSize = 8
	maxRecordSize   = 1 << 24
)

// EncodeRecord renders one framed WAL entry.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding WAL record %d: %w", rec.Version, err)
	}
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("persist: WAL record %d is %d bytes, over the %d limit", rec.Version, len(payload), maxRecordSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// DecodeRecords parses data as a sequence of framed records and returns the
// records of the longest valid prefix, the byte length of that prefix
// (`durable`), and whether trailing bytes were discarded as torn. It never
// fails: a short header, an implausible length, a frame extending past the
// end of data, a CRC mismatch, or an undecodable payload all simply end the
// valid prefix — exactly the state a crash mid-append leaves behind.
func DecodeRecords(data []byte) (recs []Record, durable int, torn bool) {
	off := 0
	for len(data)-off >= frameHeaderSize {
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if length == 0 || length > maxRecordSize || off+frameHeaderSize+length > len(data) {
			break
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+length]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += frameHeaderSize + length
	}
	return recs, off, off < len(data)
}
