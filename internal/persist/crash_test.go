package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// buildHistory runs a scripted mutation sequence on a store-attached
// rulebase, recording after every step the serialized state fingerprint and
// (via a parallel change subscription) the exact WAL frame each mutation
// produced. Returns the live rulebase, the per-version fingerprints
// (including version 0), and the cumulative frame-end offsets.
func buildHistory(t *testing.T, st *Store, rb *core.Rulebase) (fingerprints map[uint64]string, frameEnds []int, versions []uint64) {
	t.Helper()
	fingerprints = map[uint64]string{}
	snap := func() string {
		data, err := json.Marshal(rb)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	fingerprints[0] = snap()

	off := 0
	cancel, _ := rb.SubscribeChanges(func(ch core.Change) {
		frame, err := EncodeRecord(recordOf(ch))
		if err != nil {
			t.Fatal(err)
		}
		off += len(frame)
		frameEnds = append(frameEnds, off)
	})
	defer cancel()

	steps := []func() error{
		func() error { _, err := rb.Add(mustRule(core.NewWhitelist("phones?", "phone")), "ana"); return err },
		func() error { _, err := rb.Add(mustRule(core.NewBlacklist("phone case", "phone")), "ana"); return err },
		func() error { _, err := rb.Add(mustRule(core.NewAttrExists("isbn", "book")), "bob"); return err },
		func() error {
			_, err := rb.Add(mustRule(core.NewAttrValue("brand", "apple", []string{"phone", "laptop"})), "bob")
			return err
		},
		func() error {
			g := mustRule(core.NewWhitelist("jeans?", "jeans"))
			g.Guards = []core.Guard{{Attr: "price", Op: "<", Value: "100"}}
			_, err := rb.Add(g, "ana")
			return err
		},
		func() error { _, err := rb.Add(mustRule(core.NewFilter("vinyl")), "ops"); return err },
		func() error {
			_, err := rb.Add(mustRule(core.NewTypeRestrict("(laptop | monitor)", []string{"laptop", "monitor"})), "ana")
			return err
		},
		func() error { return rb.Disable("R000002", "ana", "precision dip") },
		func() error { return rb.UpdateConfidence("R000001", 0.87, "eval") },
		func() error { return rb.Enable("R000002", "ana", "recovered") },
		func() error { return rb.Retire("R000006", "bob", "withdrawn") },
		func() error { return rb.UpdateConfidence("R000004", 0.42, "eval") },
		func() error {
			_, err := rb.Add(mustRule(core.NewGate("espresso", "espresso machine")), "ana")
			return err
		},
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		v := rb.Version()
		fingerprints[v] = snap()
		versions = append(versions, v)
	}
	return fingerprints, frameEnds, versions
}

// TestWALCrashConsistencyEveryByte is the crash-consistency property test:
// truncate the WAL at EVERY byte boundary, replay, and require the restored
// rulebase to be exactly the live state as of the last fully-durable record —
// never a torn intermediate, never beyond the durable prefix.
func TestWALCrashConsistencyEveryByte(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SnapshotEvery: -1}) // WAL holds all history
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	fingerprints, frameEnds, versions := buildHistory(t, st, live)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != frameEnds[len(frameEnds)-1] {
		t.Fatalf("WAL is %d bytes, subscription-computed frames end at %d", len(wal), frameEnds[len(frameEnds)-1])
	}

	// expectedVersion(cut): version of the last record whose frame fits
	// entirely inside the prefix (computed from the independently-recorded
	// frame boundaries, not from the decoder under test).
	expectedVersion := func(cut int) uint64 {
		var v uint64
		for i, end := range frameEnds {
			if end <= cut {
				v = versions[i]
			}
		}
		return v
	}

	scratch := t.TempDir()
	for cut := 0; cut <= len(wal); cut++ {
		if err := os.WriteFile(filepath.Join(scratch, walFile), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rst, err := Open(Options{Dir: scratch})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		restored := core.NewRulebase()
		if _, err := rst.Restore(restored); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		rst.Close()

		want := expectedVersion(cut)
		if got := restored.Version(); got != want {
			t.Fatalf("cut %d: restored version %d, want %d (never torn, never beyond durable)", cut, got, want)
		}
		data, err := json.Marshal(restored)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != fingerprints[want] {
			t.Fatalf("cut %d: restored state is not the live state at version %d:\nrestored: %s\nlive:     %s",
				cut, want, data, fingerprints[want])
		}
	}

	// At the exact frame boundaries, additionally require byte-equal verdicts
	// through serve.Snapshot (the full restart-drill oracle).
	oracle := map[uint64][]string{}
	for cutIdx, end := range frameEnds {
		if err := os.WriteFile(filepath.Join(scratch, walFile), wal[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		rst, err := Open(Options{Dir: scratch})
		if err != nil {
			t.Fatal(err)
		}
		restored := core.NewRulebase()
		if _, err := rst.Restore(restored); err != nil {
			t.Fatal(err)
		}
		rst.Close()
		oracle[versions[cutIdx]] = explains(restored)
	}
	// The final boundary must match the live rulebase's verdicts exactly.
	lastVerdicts := explains(live)
	finalV := versions[len(versions)-1]
	for i := range lastVerdicts {
		if oracle[finalV][i] != lastVerdicts[i] {
			t.Fatalf("verdict %d at final boundary not byte-equal to live", i)
		}
	}
}

// TestTornWriteInjection: a torn append (faultinject) kills the store; a
// reopen recovers the valid prefix and counts the discarded tail.
func TestTornWriteInjection(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Config{Seed: 11, WALTornWriteP: 0.25})
	st, err := Open(Options{Dir: dir, SnapshotEvery: -1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	fingerprints, _, _ := buildHistory(t, st, live)
	st.Close()

	if inj.Counts()["wal_torn_write"] == 0 {
		t.Fatal("torn-write injector never fired at p=0.25 over 13 appends")
	}
	if !errors.Is(st.Broken(), ErrTornWrite) {
		t.Fatalf("store.Broken() = %v, want ErrTornWrite", st.Broken())
	}

	rst, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	restored := core.NewRulebase()
	if _, err := rst.Restore(restored); err != nil {
		t.Fatal(err)
	}
	want, ok := fingerprints[restored.Version()]
	if !ok {
		t.Fatalf("restored version %d is not a state the live rulebase passed through", restored.Version())
	}
	data, err := json.Marshal(restored)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != want {
		t.Fatalf("restored state at version %d differs from the live prefix state", restored.Version())
	}
	if restored.Version() >= live.Version() {
		t.Fatalf("torn store restored version %d, live reached %d — nothing was lost?", restored.Version(), live.Version())
	}
}

// TestShortReadInjection: a short read yields a valid prefix restore, leaves
// the file untouched, and makes the store refuse writes; a clean reopen sees
// the full history.
func TestShortReadInjection(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	fingerprints, _, _ := buildHistory(t, st, live)
	st.Close()
	fullSize, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(faultinject.Config{Seed: 5, WALShortReadP: 1})
	short, err := Open(Options{Dir: dir, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	restored := core.NewRulebase()
	if _, err := short.Restore(restored); err != nil {
		t.Fatal(err)
	}
	want, ok := fingerprints[restored.Version()]
	if !ok {
		t.Fatalf("short-read restore landed on version %d, not a live prefix state", restored.Version())
	}
	data, _ := json.Marshal(restored)
	if string(data) != want {
		t.Fatalf("short-read restore at version %d is not the prefix state", restored.Version())
	}
	if err := short.Attach(restored); !errors.Is(err, ErrShortRead) {
		t.Fatalf("Attach after short read = %v, want ErrShortRead", err)
	}
	short.Close()

	after, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != fullSize.Size() {
		t.Fatalf("short read truncated the file: %d -> %d bytes", fullSize.Size(), after.Size())
	}

	clean, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	full := core.NewRulebase()
	if _, err := clean.Restore(full); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, live, full)
}

// TestBitrotMidRecord: flipping a byte inside an interior record ends the
// valid prefix there — the decoder must not resynchronize past corruption.
func TestBitrotMidRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	live := core.NewRulebase()
	if err := st.Attach(live); err != nil {
		t.Fatal(err)
	}
	fingerprints, frameEnds, versions := buildHistory(t, st, live)
	st.Close()

	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte inside the 4th record.
	pos := frameEnds[2] + frameHeaderSize + 3
	wal[pos] ^= 0xFF
	scratch := t.TempDir()
	if err := os.WriteFile(filepath.Join(scratch, walFile), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	rst, err := Open(Options{Dir: scratch})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	restored := core.NewRulebase()
	if _, err := rst.Restore(restored); err != nil {
		t.Fatal(err)
	}
	if restored.Version() != versions[2] {
		t.Fatalf("bitrot in record 4: restored version %d, want %d (stop at corruption)", restored.Version(), versions[2])
	}
	data, _ := json.Marshal(restored)
	if string(data) != fingerprints[versions[2]] {
		t.Fatal("bitrot restore is not the exact pre-corruption prefix state")
	}
}
