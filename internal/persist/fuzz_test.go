package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"

	"repro/internal/core"
)

// fuzzSeedFrames builds a small valid WAL for seeding the fuzzer.
func fuzzSeedFrames(tb testing.TB) []byte {
	tb.Helper()
	rb := core.NewRulebase()
	var buf []byte
	cancel, _ := rb.SubscribeChanges(func(ch core.Change) {
		frame, err := EncodeRecord(recordOf(ch))
		if err != nil {
			tb.Fatal(err)
		}
		buf = append(buf, frame...)
	})
	defer cancel()
	r, err := core.NewWhitelist("phones?", "phone")
	if err != nil {
		tb.Fatal(err)
	}
	id, err := rb.Add(r, "fuzz")
	if err != nil {
		tb.Fatal(err)
	}
	if err := rb.UpdateConfidence(id, 0.5, "fuzz"); err != nil {
		tb.Fatal(err)
	}
	if err := rb.Disable(id, "fuzz", "off"); err != nil {
		tb.Fatal(err)
	}
	return buf
}

// FuzzWALDecode fuzzes the WAL frame decoder: it must never panic, must
// report a durable prefix that is actually a prefix, and decoding that
// prefix again must be stable (same records, no torn flag) — the property
// crash recovery rests on. Every decoded record must also survive an
// encode/decode round trip unchanged.
func FuzzWALDecode(f *testing.F) {
	valid := fuzzSeedFrames(f)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(valid[:frameHeaderSize-2])      // short header
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // zero-length frame
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge, uint32(maxRecordSize+1))
	f.Add(huge) // implausible length
	crcBad := append([]byte(nil), valid...)
	crcBad[5] ^= 0xFF
	f.Add(crcBad) // corrupted CRC
	notJSON := []byte{4, 0, 0, 0, 0, 0, 0, 0, 'a', 'b', 'c', 'd'}
	binary.LittleEndian.PutUint32(notJSON[4:8], crc32.ChecksumIEEE(notJSON[8:]))
	f.Add(notJSON) // valid frame, invalid payload

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, durable, torn := DecodeRecords(data)
		if durable < 0 || durable > len(data) {
			t.Fatalf("durable = %d, outside [0,%d]", durable, len(data))
		}
		if torn != (durable < len(data)) {
			t.Fatalf("torn = %v but durable %d of %d", torn, durable, len(data))
		}
		recs2, durable2, torn2 := DecodeRecords(data[:durable])
		if torn2 || durable2 != durable || len(recs2) != len(recs) {
			t.Fatalf("durable prefix not stable: torn=%v durable=%d/%d recs=%d/%d",
				torn2, durable2, durable, len(recs2), len(recs))
		}
		for i, rec := range recs {
			frame, err := EncodeRecord(rec)
			if err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
			again, n, tornOne := DecodeRecords(frame)
			if tornOne || n != len(frame) || len(again) != 1 {
				t.Fatalf("record %d re-encoded frame does not decode cleanly", i)
			}
			a, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(again[0])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d round trip changed:\nbefore: %s\nafter:  %s", i, a, b)
			}
		}
	})
}
