// Package evaluate implements the §4 rule-quality evaluation methods and
// their economics:
//
//  1. a single global validation set — cheap per rule but blind to "tail"
//     rules whose coverage misses the set;
//  2. per-rule crowd sampling with the overlap-sharing optimization of
//     Corleone [18] — samples drawn in the intersection of two rules'
//     coverage count toward both, cutting crowd cost;
//  3. module-level sampling — one estimate for a whole rule-based module,
//     cheapest but coarse.
//
// It also provides the §5.3 impactful-rule tracker: evaluate only the rules
// that touch many items, and alert when an un-evaluated rule becomes
// impactful.
package evaluate

import (
	"sort"
	"sync"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/randx"
)

// RulePrecision is one rule's estimated precision.
type RulePrecision struct {
	RuleID string
	// Touched is the rule's coverage within the evaluation data.
	Touched int
	// Sampled is how many covered items were actually verified.
	Sampled int
	// Correct is how many verified items confirmed the rule's target.
	Correct int
	// Precision is Correct/Sampled; meaningless unless Evaluable.
	Precision float64
	// WilsonLo/WilsonHi bound the precision at ~95% confidence.
	WilsonLo, WilsonHi float64
	// Evaluable reports whether the estimate rests on at least MinSample
	// verified items. "Tail" rules under method 1 come back Evaluable=false.
	Evaluable bool
}

// MinSample is the minimum verified-item count for an estimate to be
// considered usable.
const MinSample = 3

func makePrecision(id string, touched, sampled, correct int) RulePrecision {
	rp := RulePrecision{RuleID: id, Touched: touched, Sampled: sampled, Correct: correct}
	if sampled > 0 {
		rp.Precision = float64(correct) / float64(sampled)
	}
	rp.WilsonLo, rp.WilsonHi = randx.WilsonInterval(correct, sampled)
	rp.Evaluable = sampled >= MinSample
	return rp
}

// WithValidationSet is method 1: estimate each rule's precision from the
// items of a labeled validation set that the rule touches. No crowd cost —
// the set was paid for up front — but rules whose coverage misses the set
// are unevaluable.
func WithValidationSet(rules []*core.Rule, validation []*catalog.Item) map[string]RulePrecision {
	di := core.NewDataIndex(validation)
	out := make(map[string]RulePrecision, len(rules))
	for _, r := range rules {
		if r.Kind == core.Filter {
			continue
		}
		matches := di.Matches(r)
		correct := 0
		for _, i := range matches {
			if ruleCorrectOn(r, validation[i]) {
				correct++
			}
		}
		out[r.ID] = makePrecision(r.ID, len(matches), len(matches), correct)
	}
	return out
}

// ruleCorrectOn defines ground-truth correctness of a rule firing on an
// item: whitelist-family rules are correct when the item really is the
// target type; blacklist rules are correct when it is NOT; attr-value rules
// are correct when the true type is in the allowed set.
func ruleCorrectOn(r *core.Rule, it *catalog.Item) bool {
	switch r.Kind {
	case core.Blacklist:
		return it.TrueType != r.TargetType
	case core.AttrValue, core.TypeRestrict:
		for _, t := range r.AllowedTypes {
			if it.TrueType == t {
				return true
			}
		}
		return false
	default:
		return it.TrueType == r.TargetType
	}
}

// PerRuleResult is the outcome of method 2.
type PerRuleResult struct {
	Precisions map[string]RulePrecision
	// CrowdQuestions is the number of items sent to the crowd (each costing
	// Redundancy worker-answers).
	CrowdQuestions int
	// Reused counts verification verdicts served from the shared pool
	// instead of fresh crowd questions.
	Reused int
}

// PerRule is method 2: per-rule samples verified by the crowd, with optional
// overlap sharing. With sharing, a crowd verdict for item i counts toward
// every rule whose coverage includes i, so overlapping rules (§4: "sample in
// A ∩ B first") split the bill.
func PerRule(rules []*core.Rule, corpus []*catalog.Item, cr *crowd.Crowd, rng *randx.Rand, samplePerRule int, share bool) (*PerRuleResult, error) {
	di := core.NewDataIndex(corpus)
	res := &PerRuleResult{Precisions: map[string]RulePrecision{}}

	// verified caches crowd answers per (item, claimed type): the same item
	// can be asked about different target types.
	type claimKey struct {
		item   int32
		target string
	}
	verified := map[claimKey]bool{}

	// Order rules by descending coverage so heavily-overlapped head rules
	// populate the shared pool first.
	type ruleCov struct {
		rule *core.Rule
		cov  []int32
	}
	rcs := make([]ruleCov, 0, len(rules))
	for _, r := range rules {
		if r.Kind == core.Filter {
			continue
		}
		rcs = append(rcs, ruleCov{r, di.Matches(r)})
	}
	sort.SliceStable(rcs, func(i, j int) bool { return len(rcs[i].cov) > len(rcs[j].cov) })

	for _, rc := range rcs {
		target := rc.rule.TargetType
		sampled, correct := 0, 0
		var unseen []int32
		if share {
			// Reuse pool answers inside this rule's coverage first.
			for _, i := range rc.cov {
				if sampled >= samplePerRule {
					break
				}
				if ans, ok := verified[claimKey{i, target}]; ok {
					sampled++
					res.Reused++
					if ruleAnswerCorrect(rc.rule, ans) {
						correct++
					}
					continue
				}
				unseen = append(unseen, i)
			}
		} else {
			unseen = rc.cov
		}
		// Fresh crowd questions for the remainder.
		need := samplePerRule - sampled
		if need > 0 && len(unseen) > 0 {
			for _, pick := range rng.Sample(len(unseen), need) {
				i := unseen[pick]
				truth := corpus[i].TrueType == target
				ans, err := cr.VerifyClaim(truth)
				if err != nil {
					return res, err
				}
				res.CrowdQuestions++
				verified[claimKey{i, target}] = ans
				sampled++
				if ruleAnswerCorrect(rc.rule, ans) {
					correct++
				}
			}
		}
		res.Precisions[rc.rule.ID] = makePrecision(rc.rule.ID, len(rc.cov), sampled, correct)
	}
	return res, nil
}

// ruleAnswerCorrect converts a crowd answer to "was the rule right on this
// item": the crowd answers "is target a correct type for the item"; a
// whitelist rule is right when yes, a blacklist rule when no.
func ruleAnswerCorrect(r *core.Rule, crowdSaysTargetCorrect bool) bool {
	if r.Kind == core.Blacklist {
		return !crowdSaysTargetCorrect
	}
	return crowdSaysTargetCorrect
}

// ModuleResult is the outcome of method 3.
type ModuleResult struct {
	// Precision is the estimated precision of the module's final output on
	// the touched items.
	Precision float64
	Sampled   int
	Touched   int
	// CrowdQuestions spent.
	CrowdQuestions int
}

// Module is method 3: give up per-rule estimates and sample the items
// touched by the whole module, evaluating its combined verdicts.
func Module(rules []*core.Rule, corpus []*catalog.Item, cr *crowd.Crowd, rng *randx.Rand, sampleSize int) (*ModuleResult, error) {
	ex := core.NewIndexedExecutor(rules)
	var touchedItems []int
	var finals []string
	for i, it := range corpus {
		v := ex.Apply(it)
		ft := v.FinalTypes()
		if len(ft) == 1 {
			touchedItems = append(touchedItems, i)
			finals = append(finals, ft[0])
		}
	}
	res := &ModuleResult{Touched: len(touchedItems)}
	if len(touchedItems) == 0 {
		return res, nil
	}
	correct := 0
	for _, pick := range rng.Sample(len(touchedItems), sampleSize) {
		it := corpus[touchedItems[pick]]
		ok, err := cr.VerifyPair(it, finals[pick])
		if err != nil {
			return res, err
		}
		res.CrowdQuestions++
		res.Sampled++
		if ok {
			correct++
		}
	}
	res.Precision = float64(correct) / float64(res.Sampled)
	return res, nil
}

// HeadTailSplit partitions rules by their coverage on the evaluation data:
// rules touching at least headMin items are "head" rules, the rest "tail"
// (§4: tail rules are the ones validation sets and overlap sampling miss).
func HeadTailSplit(rules []*core.Rule, corpus []*catalog.Item, headMin int) (head, tail []*core.Rule) {
	di := core.NewDataIndex(corpus)
	for _, r := range rules {
		if r.Kind == core.Filter {
			continue
		}
		if di.Coverage(r) >= headMin {
			head = append(head, r)
		} else {
			tail = append(tail, r)
		}
	}
	return head, tail
}

// ValidateRule is the §4 crowd-assisted rule-creation helper: before a
// freshly written (or mined, or tool-expanded) rule is deployed, a crowd
// sample of the items it touches estimates its precision; the rule is
// accepted when the Wilson lower bound clears minPrecision. It returns the
// estimate and the verdict. Rules touching nothing are rejected with a
// zero-sample estimate — an untestable rule should not ship.
func ValidateRule(r *core.Rule, corpus []*catalog.Item, cr *crowd.Crowd, rng *randx.Rand, sample int, minPrecision float64) (RulePrecision, bool, error) {
	di := core.NewDataIndex(corpus)
	cov := di.Matches(r)
	if len(cov) == 0 {
		return makePrecision(r.ID, 0, 0, 0), false, nil
	}
	sampled, correct := 0, 0
	for _, pick := range rng.Sample(len(cov), sample) {
		it := corpus[cov[pick]]
		ans, err := cr.VerifyClaim(it.TrueType == r.TargetType)
		if err != nil {
			return makePrecision(r.ID, len(cov), sampled, correct), false, err
		}
		sampled++
		if ruleAnswerCorrect(r, ans) {
			correct++
		}
	}
	rp := makePrecision(r.ID, len(cov), sampled, correct)
	return rp, rp.Evaluable && rp.WilsonLo >= minPrecision, nil
}

// ImpactTracker implements the §5.3 strategy: spend the crowd budget on
// impactful rules only, track all rules, and alert when an un-evaluated
// rule's observed coverage crosses the impact threshold. It is safe for
// concurrent use (batches report touches from worker goroutines).
type ImpactTracker struct {
	mu        sync.Mutex
	threshold int
	touches   map[string]int
	evaluated map[string]bool
	alerted   map[string]bool
}

// NewImpactTracker creates a tracker alerting at the given touch threshold.
func NewImpactTracker(threshold int) *ImpactTracker {
	return &ImpactTracker{
		threshold: threshold,
		touches:   map[string]int{},
		evaluated: map[string]bool{},
		alerted:   map[string]bool{},
	}
}

// Observe records that a rule touched n items in the latest batch.
func (t *ImpactTracker) Observe(ruleID string, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touches[ruleID] += n
}

// MarkEvaluated records that a rule has a fresh precision estimate.
func (t *ImpactTracker) MarkEvaluated(ruleID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evaluated[ruleID] = true
	delete(t.alerted, ruleID)
}

// Touches returns the cumulative touch count for a rule.
func (t *ImpactTracker) Touches(ruleID string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.touches[ruleID]
}

// Alerts returns rules that crossed the impact threshold without an
// evaluation, sorted by descending touches. Each rule alerts once until
// re-marked.
func (t *ImpactTracker) Alerts() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for id, n := range t.touches {
		if n >= t.threshold && !t.evaluated[id] && !t.alerted[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if t.touches[out[i]] != t.touches[out[j]] {
			return t.touches[out[i]] > t.touches[out[j]]
		}
		return out[i] < out[j]
	})
	for _, id := range out {
		t.alerted[id] = true
	}
	return out
}
