package evaluate

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/randx"
)

func fixtures(t *testing.T, n int) (*catalog.Catalog, []*catalog.Item, []*core.Rule) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: 61, NumTypes: 50})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: n, Epoch: 1})
	mk := func(id string, r *core.Rule, err error) *core.Rule {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		r.ID = id
		return r
	}
	wl := func(id, src, target string) *core.Rule {
		r, err := core.NewWhitelist(src, target)
		return mk(id, r, err)
	}
	rules := []*core.Rule{
		wl("w-rings", "rings?", "rings"),
		wl("w-jeans", "jeans?", "jeans"),
		wl("w-denim-jeans", "denim.*jeans?", "jeans"),
		// A deliberately imprecise rule: "oil" also matches olive and
		// coconut oil titles.
		wl("w-oil", "oils?", "motor oil"),
		// A tail rule: christmas tree titles are rare.
		wl("w-xmas", "christmas tree", "holiday decorations"),
	}
	bl, err := core.NewBlacklist("olive oils?", "motor oil")
	rules = append(rules, mk("b-olive", bl, err))
	ae, err := core.NewAttrExists("isbn", "books")
	rules = append(rules, mk("a-isbn", ae, err))
	return cat, items, rules
}

func TestWithValidationSet(t *testing.T) {
	_, items, rules := fixtures(t, 4000)
	res := WithValidationSet(rules, items)
	rings := res["w-rings"]
	if !rings.Evaluable {
		t.Fatalf("head rule should be evaluable: %+v", rings)
	}
	if rings.Precision < 0.9 {
		t.Fatalf("rings? precision %v, want high", rings.Precision)
	}
	if rings.WilsonLo > rings.Precision+1e-9 || rings.WilsonHi < rings.Precision-1e-9 {
		t.Fatalf("Wilson interval does not bracket the estimate: %+v", rings)
	}
	isbn := res["a-isbn"]
	if isbn.Evaluable && isbn.Precision < 0.95 {
		t.Fatalf("isbn rule should be near-perfect: %+v", isbn)
	}
}

func TestValidationSetMissesTailRules(t *testing.T) {
	// A small validation set leaves the tail rule unevaluable — the §4
	// failure mode of method 1.
	cat, _, rules := fixtures(t, 0)
	small := cat.GenerateBatch(catalog.BatchSpec{Size: 150, Epoch: 1})
	res := WithValidationSet(rules, small)
	if res["w-xmas"].Evaluable {
		t.Skip("tail rule unexpectedly covered by the small sample")
	}
	if res["w-xmas"].Touched >= MinSample {
		t.Fatalf("tail rule touched %d items of a 150-item set", res["w-xmas"].Touched)
	}
}

func TestBlacklistCorrectness(t *testing.T) {
	_, items, rules := fixtures(t, 4000)
	res := WithValidationSet(rules, items)
	bl := res["b-olive"]
	if bl.Sampled > 0 && bl.Precision < 0.95 {
		t.Fatalf("blacklist precision should be high (olive oil is not motor oil): %+v", bl)
	}
}

func TestPerRuleSharingReducesCost(t *testing.T) {
	_, items, rules := fixtures(t, 3000)
	run := func(share bool) *PerRuleResult {
		cr := crowd.New(crowd.Config{Seed: 7})
		res, err := PerRule(rules, items, cr, randx.New(8), 20, share)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noShare := run(false)
	withShare := run(true)
	if withShare.Reused == 0 {
		t.Fatal("overlapping jeans rules should reuse verdicts")
	}
	if withShare.CrowdQuestions >= noShare.CrowdQuestions {
		t.Fatalf("sharing should cut crowd questions: %d vs %d",
			withShare.CrowdQuestions, noShare.CrowdQuestions)
	}
	// Estimates should broadly agree for head rules.
	a, b := noShare.Precisions["w-rings"], withShare.Precisions["w-rings"]
	if a.Evaluable != b.Evaluable {
		t.Fatal("sharing changed evaluability of a head rule")
	}
}

func TestPerRuleDetectsImpreciseRule(t *testing.T) {
	_, items, rules := fixtures(t, 3000)
	cr := crowd.New(crowd.Config{Seed: 9})
	res, err := PerRule(rules, items, cr, randx.New(10), 30, true)
	if err != nil {
		t.Fatal(err)
	}
	oil := res.Precisions["w-oil"]
	rings := res.Precisions["w-rings"]
	if oil.Evaluable && rings.Evaluable && oil.Precision >= rings.Precision {
		t.Fatalf("the imprecise 'oils?' rule should score below 'rings?': %v vs %v",
			oil.Precision, rings.Precision)
	}
}

func TestPerRuleBudgetExhaustion(t *testing.T) {
	_, items, rules := fixtures(t, 3000)
	cr := crowd.New(crowd.Config{Seed: 11, Budget: 30, Redundancy: 3})
	_, err := PerRule(rules, items, cr, randx.New(12), 50, false)
	if err == nil {
		t.Fatal("tiny budget should exhaust (the §4 'prohibitive costs' point)")
	}
}

func TestModuleEvaluation(t *testing.T) {
	_, items, rules := fixtures(t, 3000)
	cr := crowd.New(crowd.Config{Seed: 13})
	res, err := Module(rules, items, cr, randx.New(14), 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Touched == 0 || res.Sampled == 0 {
		t.Fatalf("module evaluation touched nothing: %+v", res)
	}
	if res.Precision < 0.5 || res.Precision > 1 {
		t.Fatalf("module precision implausible: %v", res.Precision)
	}
	if res.CrowdQuestions != res.Sampled {
		t.Fatalf("cost accounting wrong: %d questions for %d samples", res.CrowdQuestions, res.Sampled)
	}
}

func TestModuleCheaperThanPerRule(t *testing.T) {
	_, items, rules := fixtures(t, 3000)
	crA := crowd.New(crowd.Config{Seed: 15})
	perRule, err := PerRule(rules, items, crA, randx.New(16), 30, true)
	if err != nil {
		t.Fatal(err)
	}
	crB := crowd.New(crowd.Config{Seed: 17})
	module, err := Module(rules, items, crB, randx.New(18), 50)
	if err != nil {
		t.Fatal(err)
	}
	if module.CrowdQuestions >= perRule.CrowdQuestions {
		t.Fatalf("module sampling should be cheapest: %d vs %d",
			module.CrowdQuestions, perRule.CrowdQuestions)
	}
}

func TestHeadTailSplit(t *testing.T) {
	_, items, rules := fixtures(t, 4000)
	// Choose a threshold that separates the rings rule (frequent type) from
	// the christmas-tree rule (rare type) on this corpus.
	di := core.NewDataIndex(items)
	var ringsCov, xmasCov int
	for _, r := range rules {
		switch r.ID {
		case "w-rings":
			ringsCov = di.Coverage(r)
		case "w-xmas":
			xmasCov = di.Coverage(r)
		}
	}
	if xmasCov >= ringsCov {
		t.Skipf("corpus does not separate head/tail: rings=%d xmas=%d", ringsCov, xmasCov)
	}
	headMin := (ringsCov + xmasCov + 1) / 2
	head, tail := HeadTailSplit(rules, items, headMin)
	if len(head) == 0 || len(tail) == 0 {
		t.Fatalf("expected both head and tail rules: %d/%d", len(head), len(tail))
	}
	for _, r := range tail {
		if r.ID == "w-rings" {
			t.Fatal("rings? is a head rule")
		}
	}
	foundXmas := false
	for _, r := range tail {
		if r.ID == "w-xmas" {
			foundXmas = true
		}
	}
	if !foundXmas {
		t.Fatal("christmas-tree rule should be tail")
	}
}

func TestValidateRuleAcceptsGoodRule(t *testing.T) {
	_, items, rules := fixtures(t, 3000)
	cr := crowd.New(crowd.Config{Seed: 19})
	var rings *core.Rule
	for _, r := range rules {
		if r.ID == "w-rings" {
			rings = r
		}
	}
	rp, ok, err := ValidateRule(rings, items, cr, randx.New(20), 40, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("precise rule should be accepted: %+v", rp)
	}
}

func TestValidateRuleRejectsImprecise(t *testing.T) {
	_, items, _ := fixtures(t, 3000)
	bad, err := core.NewWhitelist("oils?", "motor oil")
	if err != nil {
		t.Fatal(err)
	}
	bad.ID = "bad-oil"
	cr := crowd.New(crowd.Config{Seed: 21})
	rp, ok, err := ValidateRule(bad, items, cr, randx.New(22), 40, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("imprecise rule should be rejected: %+v", rp)
	}
	if rp.Sampled == 0 {
		t.Fatal("rule should have been sampled")
	}
}

func TestValidateRuleRejectsUntouchable(t *testing.T) {
	_, items, _ := fixtures(t, 500)
	ghost, err := core.NewWhitelist("flux capacitors?", "time machines")
	if err != nil {
		t.Fatal(err)
	}
	ghost.ID = "ghost"
	cr := crowd.New(crowd.Config{Seed: 23})
	rp, ok, err := ValidateRule(ghost, items, cr, randx.New(24), 40, 0.5)
	if err != nil || ok {
		t.Fatalf("untestable rule must be rejected: %+v ok=%v err=%v", rp, ok, err)
	}
	if cr.Spent() != 0 {
		t.Fatal("no crowd budget should be spent on a zero-coverage rule")
	}
}

func TestImpactTracker(t *testing.T) {
	tr := NewImpactTracker(100)
	tr.Observe("r1", 50)
	if alerts := tr.Alerts(); len(alerts) != 0 {
		t.Fatalf("below threshold should not alert: %v", alerts)
	}
	tr.Observe("r1", 60)
	tr.Observe("r2", 500)
	tr.MarkEvaluated("r2")
	alerts := tr.Alerts()
	if len(alerts) != 1 || alerts[0] != "r1" {
		t.Fatalf("want [r1], got %v", alerts)
	}
	// Alert fires once until re-evaluation.
	if again := tr.Alerts(); len(again) != 0 {
		t.Fatalf("alert should not repeat: %v", again)
	}
	tr.MarkEvaluated("r1")
	tr.Observe("r1", 200)
	if again := tr.Alerts(); len(again) != 0 {
		t.Fatal("evaluated rules should not alert")
	}
	if tr.Touches("r1") != 310 {
		t.Fatalf("touch accounting wrong: %d", tr.Touches("r1"))
	}
}

func TestAlertsSortedByImpact(t *testing.T) {
	tr := NewImpactTracker(10)
	tr.Observe("small", 20)
	tr.Observe("big", 500)
	alerts := tr.Alerts()
	if len(alerts) != 2 || alerts[0] != "big" {
		t.Fatalf("alerts should be impact-ordered: %v", alerts)
	}
}
