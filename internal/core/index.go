package core

import (
	"sort"
	"strings"

	"repro/internal/catalog"
)

// RuleIndex answers "which rules could match this item?" without scanning
// the whole rulebase — the §5.3 solution: "index these rules, so that given
// a particular data item we can quickly locate those rules that are likely
// to match".
//
// Pattern rules post under their most selective witness tokens
// (pattern.IndexKeys): a title can only match if it contains one of them.
// Attribute rules post under their attribute name. Rules with no witness
// (pure wildcards) fall back to an unconditional scan list, preserving
// exactness: CandidatesFor over-approximates but never misses a matching
// rule.
type RuleIndex struct {
	byToken map[string][]*Rule
	byAttr  map[string][]*Rule
	always  []*Rule
	rules   []*Rule // indexed rules in input order (Filter rules excluded)
	nRules  int
}

// NewRuleIndex builds an index over the given rules. Filter rules are not
// item-matched and are excluded.
func NewRuleIndex(rules []*Rule) *RuleIndex { return NewRuleIndexWithDF(rules, nil) }

// NewRuleIndexWithDF builds a rule index using corpus token document
// frequencies to pick each rule's posting keys: among a pattern's witness
// sets, the one whose tokens are rarest in the corpus is chosen, so common
// modifier tokens ("premium") stop flooding the posting lists. df is
// typically gathered from a recent batch sample; nil falls back to the
// smallest witness set by alternative count.
func NewRuleIndexWithDF(rules []*Rule, df map[string]int) *RuleIndex {
	idx := &RuleIndex{
		byToken: map[string][]*Rule{},
		byAttr:  map[string][]*Rule{},
	}
	for _, r := range rules {
		switch {
		case r.IsPatternKind():
			keys := chooseKeys(r, df)
			if len(keys) == 0 {
				idx.always = append(idx.always, r)
				break
			}
			for _, k := range keys {
				idx.byToken[k] = append(idx.byToken[k], r)
			}
		case r.Kind == AttrExists || r.Kind == AttrValue:
			idx.byAttr[strings.ToLower(r.Attr)] = append(idx.byAttr[strings.ToLower(r.Attr)], r)
		default:
			continue // Filter rules act on predictions, not items
		}
		idx.rules = append(idx.rules, r)
		idx.nRules++
	}
	return idx
}

// Rules returns the indexed rules in input order (Filter rules excluded).
// The returned slice is shared; callers must not mutate it.
func (idx *RuleIndex) Rules() []*Rule { return idx.rules }

// chooseKeys picks a pattern rule's posting keys: without df, the smallest
// witness set; with df, the witness set with the lowest total corpus
// frequency (ties to the smaller set).
func chooseKeys(r *Rule, df map[string]int) []string {
	if df == nil {
		return r.Pattern().IndexKeys()
	}
	var best []string
	bestCost := -1
	for _, ws := range r.Pattern().RequiredAlternatives() {
		cost := 0
		for _, tok := range ws {
			cost += df[tok] + 1
		}
		if bestCost < 0 || cost < bestCost || (cost == bestCost && len(ws) < len(best)) {
			best, bestCost = ws, cost
		}
	}
	return best
}

// TokenDF tallies per-token document frequencies over a corpus sample, the
// statistics NewRuleIndexWithDF consumes.
func TokenDF(items []*catalog.Item) map[string]int {
	df := map[string]int{}
	for _, it := range items {
		seen := map[string]bool{}
		for _, tok := range it.TitleTokens() {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	return df
}

// Len returns the number of indexed rules.
func (idx *RuleIndex) Len() int { return idx.nRules }

// CandidatesFor returns the rules that could match the item, deduplicated,
// in no particular order. The result is a superset of the actually matching
// rules. Deduplication is by rule identity, so rules that were never added
// to a rulebase (and share the empty ID) are still all considered.
func (idx *RuleIndex) CandidatesFor(it *catalog.Item) []*Rule {
	seen := map[*Rule]bool{}
	out := make([]*Rule, 0, 8)
	add := func(rs []*Rule) {
		for _, r := range rs {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	for _, tok := range it.TitleTokens() {
		if rs, ok := idx.byToken[tok]; ok {
			add(rs)
		}
	}
	for attr := range it.Attrs {
		if rs, ok := idx.byAttr[strings.ToLower(attr)]; ok {
			add(rs)
		}
	}
	add(idx.always)
	return out
}

// DataIndex answers the dual question — "which items could this rule
// match?" — over a fixed development corpus D. It is the §4 rule-development
// accelerator: an analyst iterating on a rule re-runs it against D on every
// edit, and the index reduces each run from |D| matches to the posting-list
// union.
type DataIndex struct {
	items   []*catalog.Item
	byToken map[string][]int32
	byAttr  map[string][]int32
}

// NewDataIndex indexes the corpus by title token and attribute name.
func NewDataIndex(items []*catalog.Item) *DataIndex {
	di := &DataIndex{
		items:   items,
		byToken: map[string][]int32{},
		byAttr:  map[string][]int32{},
	}
	for i, it := range items {
		seen := map[string]bool{}
		for _, tok := range it.TitleTokens() {
			if !seen[tok] {
				seen[tok] = true
				di.byToken[tok] = append(di.byToken[tok], int32(i))
			}
		}
		for attr := range it.Attrs {
			di.byAttr[strings.ToLower(attr)] = append(di.byAttr[strings.ToLower(attr)], int32(i))
		}
	}
	return di
}

// Items returns a copy of the indexed corpus slice. The index's own ordering
// is load-bearing (posting lists are positions into it), so callers must not
// be able to reorder or truncate the internal slice through the accessor.
func (di *DataIndex) Items() []*catalog.Item {
	return append([]*catalog.Item(nil), di.items...)
}

// Size returns the number of indexed items without copying.
func (di *DataIndex) Size() int { return len(di.items) }

// CandidateItems returns indices of items that could match the rule (a
// superset of actual matches). Pattern rules with no witness and unknown
// kinds fall back to the whole corpus.
func (di *DataIndex) CandidateItems(r *Rule) []int32 {
	switch {
	case r.IsPatternKind():
		keys := r.Pattern().IndexKeys()
		if len(keys) == 0 {
			return di.all()
		}
		return di.unionTokens(keys)
	case r.Kind == AttrExists || r.Kind == AttrValue:
		return append([]int32(nil), di.byAttr[strings.ToLower(r.Attr)]...)
	default:
		return di.all()
	}
}

// Matches runs the rule over the corpus using the index and returns the
// indices of actually matching items.
func (di *DataIndex) Matches(r *Rule) []int32 {
	var out []int32
	for _, i := range di.CandidateItems(r) {
		if r.Matches(di.items[i]) {
			out = append(out, i)
		}
	}
	return out
}

// Coverage returns |Cov(r, D)|: the number of items the rule touches — the
// quantity the §5.2 selection algorithms maximize.
func (di *DataIndex) Coverage(r *Rule) int { return len(di.Matches(r)) }

func (di *DataIndex) all() []int32 {
	out := make([]int32, len(di.items))
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// unionTokens merges posting lists for the given tokens, deduplicated and
// ascending. Lists are already sorted by construction.
func (di *DataIndex) unionTokens(tokens []string) []int32 {
	if len(tokens) == 1 {
		return append([]int32(nil), di.byToken[tokens[0]]...)
	}
	seen := map[int32]bool{}
	var out []int32
	for _, tok := range tokens {
		for _, i := range di.byToken[tok] {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	// Restore ascending order for determinism.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
