package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
)

// This file is the execution-side half of the §4 maintenance telemetry:
// an executor decorator that records which rules fire, how selective the
// rule index is, and how long each Apply takes — the substrate for
// "detecting problematic rules" and retiring dead ones. The decorator is
// verdict-transparent: it produces verdicts identical to the executor it
// wraps (a tested property), so it can stay on in production.

// Metric families recorded by InstrumentedExecutor. All counters; latency
// is a histogram over obs.LatencyBuckets, sampled (see LatencySampleEvery).
const (
	MetricExecApplies    = "core_exec_applies_total"
	MetricExecCandidates = "core_exec_candidates_total"
	MetricExecMatched    = "core_exec_matched_total"
	MetricExecLatency    = "core_exec_apply_seconds"
	MetricRuleFired      = "core_rule_fired_total"
	MetricRuleEffective  = "core_rule_effective_total"
)

// LatencySampleEvery is the Apply-latency sampling stride: one in every N
// applies is timed and recorded into MetricExecLatency. Sampling keeps the
// decorator's overhead under the 5% budget (two clock reads plus a histogram
// observation cost more than the rest of the telemetry combined) while still
// populating the latency distribution within a few thousand applies.
const LatencySampleEvery = 16

// ruleTelemetry is the per-rule counter pair: fired counts every match,
// effective counts matches whose asserted type survived the final verdict.
type ruleTelemetry struct {
	fired     *obs.Counter
	effective *obs.Counter
}

// matchedRule is one matched rule plus its telemetry handle, buffered during
// the match loop so effectiveness can be settled after vetoes are known.
type matchedRule struct {
	r   *Rule
	tel ruleTelemetry
	ok  bool // false for rules without an ID (no per-rule series)
}

// InstrumentedExecutor decorates an Executor with per-rule hit counts,
// candidate-vs-matched index selectivity, and per-Apply latency, all
// recorded into an obs.Registry. When the wrapped executor is an
// IndexedExecutor the decorator drives the index itself so it can observe
// CandidatesFor directly; any other Executor is instrumented generically
// (latency and per-rule hits only, reconstructed from the verdict).
type InstrumentedExecutor struct {
	inner Executor
	idx   *RuleIndex // non-nil fast path: replicate IndexedExecutor.Apply

	byRule map[*Rule]ruleTelemetry // read-only after construction
	rules  []*Rule

	applies    *obs.Counter
	candidates *obs.Counter
	matched    *obs.Counter
	latency    *obs.Histogram
	seq        atomic.Int64 // Apply sequence number, drives latency sampling

	reg    *obs.Registry // retained for the lazy batch matcher
	labels []string
	bmOnce sync.Once
	bm     *BatchMatcher
}

// NewInstrumentedExecutor wraps inner, recording into reg (obs.Default()
// when nil). The optional labels (alternating name,value pairs) distinguish
// the executor-level series when several executors share a registry, e.g.
// "exec","gate" vs "exec","rules"; per-rule series are labeled by rule ID
// alone, so telemetry keeps accumulating when the executor is rebuilt after
// a rulebase change. Rules with an empty ID are aggregated into the
// executor-level counters only, so prefer rules that went through a
// Rulebase.
func NewInstrumentedExecutor(inner Executor, reg *obs.Registry, labels ...string) *InstrumentedExecutor {
	if reg == nil {
		reg = obs.Default()
	}
	e := &InstrumentedExecutor{
		inner:      inner,
		byRule:     map[*Rule]ruleTelemetry{},
		applies:    reg.Counter(MetricExecApplies, labels...),
		candidates: reg.Counter(MetricExecCandidates, labels...),
		matched:    reg.Counter(MetricExecMatched, labels...),
		latency:    reg.Histogram(MetricExecLatency, obs.LatencyBuckets, labels...),
		reg:        reg,
		labels:     labels,
	}
	reg.Help(MetricRuleFired, "times each rule matched an item")
	reg.Help(MetricRuleEffective, "times each rule's assertion survived the final verdict")
	switch ex := inner.(type) {
	case *IndexedExecutor:
		e.idx = ex.Index()
		e.rules = e.idx.Rules()
	case *SequentialExecutor:
		e.rules = ex.rules
	}
	for _, r := range e.rules {
		if r.ID == "" {
			continue
		}
		e.byRule[r] = ruleTelemetry{
			fired:     reg.Counter(MetricRuleFired, "rule", r.ID),
			effective: reg.Counter(MetricRuleEffective, "rule", r.ID),
		}
	}
	return e
}

// Apply implements Executor. The verdict is identical to what the wrapped
// executor would produce: the indexed fast path replicates
// IndexedExecutor.Apply (same candidate iteration, same absorb order), and
// the generic path returns the inner verdict untouched.
func (e *InstrumentedExecutor) Apply(it *catalog.Item) *Verdict {
	sampled := e.seq.Add(1)%LatencySampleEvery == 0
	var start time.Time
	if sampled {
		start = time.Now()
	}
	var v *Verdict
	if e.idx != nil {
		cands := e.idx.CandidatesFor(it)
		v = newVerdict()
		// Matched rules and their telemetry, buffered so the effectiveness
		// pass below needs no second byRule lookup and no iteration over the
		// verdict's maps (both measurably expensive at executor throughput).
		// The array stays on the stack unless an item matches >24 rules.
		var scratch [24]matchedRule
		mt := scratch[:0]
		for _, r := range cands {
			if r.Matches(it) {
				v.absorb(r)
				tel, ok := e.byRule[r]
				if ok {
					tel.fired.Inc()
				}
				mt = append(mt, matchedRule{r: r, tel: tel, ok: ok})
			}
		}
		e.candidates.Add(int64(len(cands)))
		e.matched.Add(int64(len(mt)))
		// Effectiveness: asserting rules whose target type survived vetoes
		// and constraints (Verdict.FinalTypes semantics, allocation free).
		for _, m := range mt {
			if !m.ok {
				continue
			}
			switch m.r.Kind {
			case Whitelist, Gate, AttrExists:
				t := m.r.TargetType
				if len(v.Vetoed[t]) == 0 && (v.Allowed == nil || v.Allowed[t]) {
					m.tel.effective.Inc()
				}
			}
		}
	} else {
		v = e.inner.Apply(it)
		for _, rs := range v.Asserted {
			e.countFired(rs)
		}
		for _, rs := range v.Vetoed {
			e.countFired(rs)
		}
		e.countFired(v.Constraints)
		for t, rs := range v.Asserted {
			if len(v.Vetoed[t]) > 0 {
				continue
			}
			if v.Allowed != nil && !v.Allowed[t] {
				continue
			}
			for _, r := range rs {
				if tel, ok := e.byRule[r]; ok {
					tel.effective.Inc()
				}
			}
		}
	}
	e.applies.Inc()
	if sampled {
		e.latency.Observe(time.Since(start).Seconds())
	}
	return v
}

// ApplyBatch implements BatchApplier. When the wrapped executor is indexed
// it evaluates through a lazily-built instrumented BatchMatcher, which
// records the batch_* metric families and keeps feeding the same exec-level
// and per-rule counter series Apply uses (the registry hands out one counter
// per name+labels, so both paths accumulate into one view). Per-Apply
// latency sampling does not apply on the batch path; batch cost is visible
// to callers' own span/histogram instrumentation instead. Non-indexed
// executors fall back to the item-at-a-time reference path through Apply,
// preserving full telemetry.
func (e *InstrumentedExecutor) ApplyBatch(items []*catalog.Item, workers int) []*Verdict {
	if e.idx == nil {
		return ExecuteBatchItemwise(e, items, workers)
	}
	e.bmOnce.Do(func() { e.bm = NewInstrumentedBatchMatcher(e.idx, e.reg, e.labels...) })
	return e.bm.MatchBatch(items, workers)
}

func (e *InstrumentedExecutor) countFired(rs []*Rule) {
	for _, r := range rs {
		if tel, ok := e.byRule[r]; ok {
			tel.fired.Inc()
		}
	}
}

// Applies returns how many items this executor has processed.
func (e *InstrumentedExecutor) Applies() int64 { return e.applies.Value() }

// Selectivity returns the average candidate-set size and the
// matched/candidate ratio observed so far (0,0 before any Apply or when the
// wrapped executor is not indexed).
func (e *InstrumentedExecutor) Selectivity() (avgCandidates, matchRatio float64) {
	n := e.applies.Value()
	c := e.candidates.Value()
	if n == 0 || c == 0 {
		return 0, 0
	}
	return float64(c) / float64(n), float64(e.matched.Value()) / float64(c)
}

// Rule-health issue tags, ordered by severity for ranking.
const (
	HealthNeverFired   = "never-fired"
	HealthAlwaysVetoed = "always-vetoed"
	HealthLowPrecision = "low-precision"
)

// RuleHealth is one rule's telemetry-derived health record — the §4
// "detecting problematic rules" report: rules that never fire (dead weight,
// retirement candidates), rules whose assertions are always overridden by
// vetoes or constraints (wasted evaluation, likely stale), and rules whose
// crowd-estimated precision fell below the floor.
type RuleHealth struct {
	RuleID     string   `json:"rule_id"`
	Kind       string   `json:"kind"`
	TargetType string   `json:"target_type,omitempty"`
	Fired      int64    `json:"fired"`
	Effective  int64    `json:"effective"`
	Confidence float64  `json:"confidence"`
	Issues     []string `json:"issues,omitempty"`
}

// Unhealthy reports whether the record carries any issue.
func (h RuleHealth) Unhealthy() bool { return len(h.Issues) > 0 }

// Health builds the per-rule health report from the telemetry accumulated
// so far, unhealthiest first (more issues, then fewer firings, then ID).
// minConfidence is the precision floor below which a rule is tagged
// low-precision (the paper's business gate, e.g. 0.92; pass 0 to disable).
// Only assertion kinds (whitelist, gate, attr-exists) can be always-vetoed.
// The report is empty until the executor has applied at least one item.
func (e *InstrumentedExecutor) Health(minConfidence float64) []RuleHealth {
	if e.applies.Value() == 0 {
		return nil
	}
	out := make([]RuleHealth, 0, len(e.rules))
	for _, r := range e.rules {
		tel, ok := e.byRule[r]
		if !ok {
			continue
		}
		h := RuleHealth{
			RuleID:     r.ID,
			Kind:       r.Kind.String(),
			TargetType: r.TargetType,
			Fired:      tel.fired.Value(),
			Effective:  tel.effective.Value(),
			Confidence: r.Confidence,
		}
		asserting := r.Kind == Whitelist || r.Kind == Gate || r.Kind == AttrExists
		switch {
		case h.Fired == 0:
			h.Issues = append(h.Issues, HealthNeverFired)
		case asserting && h.Effective == 0:
			h.Issues = append(h.Issues, HealthAlwaysVetoed)
		}
		if minConfidence > 0 && r.Confidence < minConfidence {
			h.Issues = append(h.Issues, HealthLowPrecision)
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Issues) != len(out[j].Issues) {
			return len(out[i].Issues) > len(out[j].Issues)
		}
		if out[i].Fired != out[j].Fired {
			return out[i].Fired < out[j].Fired
		}
		return out[i].RuleID < out[j].RuleID
	})
	return out
}
