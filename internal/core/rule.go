// Package core is the paper's primary contribution rendered as a library:
// rule management for semantics-intensive Big Data systems. It provides the
// rule model (whitelist/blacklist pattern rules, attribute rules, gate and
// filter rules — §3.3), a versioned rulebase with the scale-down/scale-up
// controls §2.2 demands, rule and data indexes for execution at tens of
// thousands of rules (§4, §5.3), sequential/indexed/parallel executors with
// whitelist-before-blacklist semantics, the order-independence property
// checker (§4 "rule system properties"), and the maintenance analyses
// (subsumption, overlap, duplicates, staleness, consolidation — §4 "rule
// maintenance").
package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/pattern"
)

// Kind enumerates the rule families of the Chimera architecture (§3.3).
type Kind int

const (
	// Whitelist rules assert: title matches pattern → item is TargetType.
	Whitelist Kind = iota
	// Blacklist rules assert: title matches pattern → item is NOT TargetType.
	Blacklist
	// AttrExists rules assert: item has attribute Attr → item is TargetType
	// ("if a product has an isbn attribute then it is a book").
	AttrExists
	// AttrValue rules constrain: attribute Attr equals Value → item's type
	// is one of AllowedTypes ("Brand Name = Apple → laptop, phone, …").
	AttrValue
	// Gate rules let the Gate Keeper classify an item immediately,
	// bypassing the classifiers (§3.3 Figure 2). Semantics of the match are
	// the same as Whitelist; the pipeline treats them specially.
	Gate
	// Filter rules kill final predictions of TargetType, routing the items
	// to manual classification (the §3.2 "business requirements" rules).
	Filter
	// TypeRestrict rules constrain rather than assert: title matches
	// pattern → item's type is one of AllowedTypes. This is the §4
	// rule-language extension "if the title contains any word from a given
	// dictionary then the product is either a PC or a laptop".
	TypeRestrict
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Whitelist:
		return "whitelist"
	case Blacklist:
		return "blacklist"
	case AttrExists:
		return "attr-exists"
	case AttrValue:
		return "attr-value"
	case Gate:
		return "gate"
	case Filter:
		return "filter"
	case TypeRestrict:
		return "type-restrict"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Status is a rule's lifecycle state.
type Status int

const (
	// Active rules participate in execution.
	Active Status = iota
	// Disabled rules are temporarily off — the paper's "scale down"
	// mechanism. They can be re-enabled without losing provenance.
	Disabled
	// Retired rules are permanently removed from execution but kept for
	// audit (subsumed, stale, or imprecise rules end up here).
	Retired
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Disabled:
		return "disabled"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Rule is one managed rule. Pattern-based kinds (Whitelist, Blacklist, Gate)
// carry a compiled pattern; attribute kinds carry Attr/Value; Filter carries
// only TargetType.
type Rule struct {
	ID   string
	Kind Kind
	// Pattern source text (pattern kinds only).
	Source string
	// TargetType is the asserted (or denied / filtered) product type.
	TargetType string
	// Attr / Value for attribute rules.
	Attr  string
	Value string
	// AllowedTypes for AttrValue rules.
	AllowedTypes []string

	// Guards are additional attribute-side conditions (§4's rule-language
	// extension: pattern AND price < 100, …). All must hold for the rule to
	// fire.
	Guards []Guard

	// Management metadata.
	Author     string
	Provenance string // "analyst", "mined", "synonym-tool", "curation", …
	Confidence float64
	Status     Status
	CreatedAt  uint64 // logical clock from the rulebase
	UpdatedAt  uint64
	Note       string

	compiled *pattern.Pattern
}

// NewWhitelist compiles a whitelist rule src → target.
func NewWhitelist(src, target string) (*Rule, error) {
	return newPatternRule(Whitelist, src, target)
}

// NewBlacklist compiles a blacklist rule src → NOT target.
func NewBlacklist(src, target string) (*Rule, error) {
	return newPatternRule(Blacklist, src, target)
}

// NewGate compiles a gate rule src → target (immediate classification).
func NewGate(src, target string) (*Rule, error) {
	return newPatternRule(Gate, src, target)
}

func newPatternRule(kind Kind, src, target string) (*Rule, error) {
	if strings.TrimSpace(target) == "" {
		return nil, fmt.Errorf("core: %s rule needs a target type", kind)
	}
	p, err := pattern.Parse(src)
	if err != nil {
		return nil, err
	}
	if p.HasSyn() {
		return nil, fmt.Errorf("core: pattern %q still contains a \\syn slot; expand it before deploying", src)
	}
	return &Rule{Kind: kind, Source: src, TargetType: target, Confidence: 1, compiled: p}, nil
}

// NewAttrExists builds an attribute-existence rule: has attr → target.
func NewAttrExists(attr, target string) (*Rule, error) {
	if attr == "" || target == "" {
		return nil, fmt.Errorf("core: attr-exists rule needs attr and target")
	}
	return &Rule{Kind: AttrExists, Attr: attr, TargetType: target, Confidence: 1}, nil
}

// NewAttrValue builds an attribute-value rule: attr == value → one of allowed.
func NewAttrValue(attr, value string, allowed []string) (*Rule, error) {
	if attr == "" || value == "" || len(allowed) == 0 {
		return nil, fmt.Errorf("core: attr-value rule needs attr, value and allowed types")
	}
	return &Rule{Kind: AttrValue, Attr: attr, Value: value, AllowedTypes: append([]string(nil), allowed...), Confidence: 1}, nil
}

// NewFilter builds a filter rule killing predictions of target.
func NewFilter(target string) (*Rule, error) {
	if target == "" {
		return nil, fmt.Errorf("core: filter rule needs a target type")
	}
	return &Rule{Kind: Filter, TargetType: target, Confidence: 1}, nil
}

// NewTypeRestrict builds a constraint rule: title matches src → the item's
// type is one of allowed. Dictionary-style sources ((desktop | tower | pc |
// workstation)) express the paper's "any word from a given dictionary"
// example.
func NewTypeRestrict(src string, allowed []string) (*Rule, error) {
	if len(allowed) == 0 {
		return nil, fmt.Errorf("core: type-restrict rule needs allowed types")
	}
	p, err := pattern.Parse(src)
	if err != nil {
		return nil, err
	}
	if p.HasSyn() {
		return nil, fmt.Errorf("core: pattern %q still contains a \\syn slot; expand it before deploying", src)
	}
	return &Rule{
		Kind: TypeRestrict, Source: src,
		AllowedTypes: append([]string(nil), allowed...),
		Confidence:   1, compiled: p,
	}, nil
}

// Pattern returns the compiled pattern for pattern kinds (nil otherwise).
func (r *Rule) Pattern() *pattern.Pattern { return r.compiled }

// IsPatternKind reports whether the rule matches on the title pattern.
func (r *Rule) IsPatternKind() bool {
	return r.Kind == Whitelist || r.Kind == Blacklist || r.Kind == Gate || r.Kind == TypeRestrict
}

// Matches reports whether the rule's condition holds for the item.
// For Filter rules it reports whether the rule applies to a *prediction* of
// r.TargetType, so item-level Matches is always false.
func (r *Rule) Matches(it *catalog.Item) bool {
	var base bool
	switch r.Kind {
	case Whitelist, Blacklist, Gate, TypeRestrict:
		base = r.compiled.Match(it.TitleTokens())
	case AttrExists:
		_, base = it.Attrs[r.Attr]
	case AttrValue:
		v, ok := it.Attrs[r.Attr]
		base = ok && strings.EqualFold(v, r.Value)
	default:
		return false
	}
	if !base {
		return false
	}
	for _, g := range r.Guards {
		if !g.Holds(it) {
			return false
		}
	}
	return true
}

// String renders a compact human-readable form.
func (r *Rule) String() string {
	s := r.baseString()
	for _, g := range r.Guards {
		s += " [if " + g.String() + "]"
	}
	return s
}

func (r *Rule) baseString() string {
	switch r.Kind {
	case Whitelist, Gate:
		return fmt.Sprintf("[%s %s] %s → %s", r.ID, r.Kind, r.Source, r.TargetType)
	case Blacklist:
		return fmt.Sprintf("[%s %s] %s → NOT %s", r.ID, r.Kind, r.Source, r.TargetType)
	case AttrExists:
		return fmt.Sprintf("[%s %s] has(%s) → %s", r.ID, r.Kind, r.Attr, r.TargetType)
	case AttrValue:
		return fmt.Sprintf("[%s %s] %s=%s → one of %v", r.ID, r.Kind, r.Attr, r.Value, r.AllowedTypes)
	case Filter:
		return fmt.Sprintf("[%s %s] kill predictions of %s", r.ID, r.Kind, r.TargetType)
	case TypeRestrict:
		return fmt.Sprintf("[%s %s] %s → one of %v", r.ID, r.Kind, r.Source, r.AllowedTypes)
	default:
		return fmt.Sprintf("[%s unknown]", r.ID)
	}
}

// ruleJSON is the serialized form of a rule.
type ruleJSON struct {
	ID           string   `json:"id"`
	Kind         string   `json:"kind"`
	Source       string   `json:"source,omitempty"`
	TargetType   string   `json:"target_type,omitempty"`
	Attr         string   `json:"attr,omitempty"`
	Value        string   `json:"value,omitempty"`
	AllowedTypes []string `json:"allowed_types,omitempty"`
	Guards       []Guard  `json:"guards,omitempty"`
	Author       string   `json:"author,omitempty"`
	Provenance   string   `json:"provenance,omitempty"`
	Confidence   float64  `json:"confidence"`
	Status       string   `json:"status"`
	CreatedAt    uint64   `json:"created_at"`
	UpdatedAt    uint64   `json:"updated_at"`
	Note         string   `json:"note,omitempty"`
}

var kindNames = map[string]Kind{
	"whitelist": Whitelist, "blacklist": Blacklist, "attr-exists": AttrExists,
	"attr-value": AttrValue, "gate": Gate, "filter": Filter,
	"type-restrict": TypeRestrict,
}

var statusNames = map[string]Status{
	"active": Active, "disabled": Disabled, "retired": Retired,
}

// MarshalJSON implements json.Marshaler.
func (r *Rule) MarshalJSON() ([]byte, error) {
	return json.Marshal(ruleJSON{
		ID: r.ID, Kind: r.Kind.String(), Source: r.Source,
		TargetType: r.TargetType, Attr: r.Attr, Value: r.Value,
		AllowedTypes: r.AllowedTypes, Guards: r.Guards, Author: r.Author,
		Provenance: r.Provenance, Confidence: r.Confidence,
		Status: r.Status.String(), CreatedAt: r.CreatedAt,
		UpdatedAt: r.UpdatedAt, Note: r.Note,
	})
}

// UnmarshalJSON implements json.Unmarshaler, recompiling patterns.
func (r *Rule) UnmarshalJSON(data []byte) error {
	var j ruleJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	kind, ok := kindNames[j.Kind]
	if !ok {
		return fmt.Errorf("core: unknown rule kind %q", j.Kind)
	}
	status, ok := statusNames[j.Status]
	if !ok {
		return fmt.Errorf("core: unknown rule status %q", j.Status)
	}
	for _, g := range j.Guards {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	*r = Rule{
		ID: j.ID, Kind: kind, Source: j.Source, TargetType: j.TargetType,
		Attr: j.Attr, Value: j.Value, AllowedTypes: j.AllowedTypes,
		Guards: j.Guards, Author: j.Author, Provenance: j.Provenance,
		Confidence: j.Confidence, Status: status, CreatedAt: j.CreatedAt,
		UpdatedAt: j.UpdatedAt, Note: j.Note,
	}
	if r.IsPatternKind() {
		p, err := pattern.Parse(r.Source)
		if err != nil {
			return fmt.Errorf("core: recompiling rule %s: %w", r.ID, err)
		}
		r.compiled = p
	}
	return nil
}
