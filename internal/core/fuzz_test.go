package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/randx"
)

// FuzzVerdictExplain throws random rule populations and arbitrary titles at
// the executor and checks the explanation contract (§3.2: "liability
// concerns may require certain predictions to be explainable"):
//
//   - Explain never panics and always justifies exactly the final types;
//   - an empty verdict says so explicitly;
//   - FinalTypes is sorted (stable output for audit diffs);
//   - the indexed executor agrees with the sequential baseline verdict
//     byte-for-byte (same types, same evidence) on the fuzzed title.
func FuzzVerdictExplain(f *testing.F) {
	f.Add(uint64(1), "acme diamond rings")
	f.Add(uint64(7), "engine oil for pick up trucks")
	f.Add(uint64(42), "toy ring")
	f.Add(uint64(99), "")
	f.Add(uint64(3), "sander wheel wheel wheel")
	f.Fuzz(func(t *testing.T, seed uint64, title string) {
		r := randx.New(seed)
		vocab := []string{
			"ring", "rings?", "diamond", "toy", "oil", "oils?", "engine",
			"motor", "sander", "wheel", "jeans?", "denim", "truck",
		}
		types := []string{"rings", "oils", "tools", "jeans"}

		// A deterministic random mixed-kind rule population.
		n := 4 + r.Intn(12)
		rules := make([]*Rule, 0, n)
		for i := 0; i < n; i++ {
			src := vocab[r.Intn(len(vocab))]
			target := types[r.Intn(len(types))]
			var (
				rule *Rule
				err  error
			)
			switch r.Intn(6) {
			case 0, 1, 2:
				rule, err = NewWhitelist(src, target)
			case 3:
				rule, err = NewBlacklist(src, target)
			case 4:
				rule, err = NewAttrExists("Brand", target)
			default:
				rule, err = NewTypeRestrict(src, []string{target, types[r.Intn(len(types))]})
			}
			if err != nil {
				continue
			}
			rules = append(rules, rule)
		}

		attrs := map[string]string{}
		if r.Intn(2) == 0 {
			attrs["Brand"] = "acme"
		}
		it := item(title, attrs)

		v := NewSequentialExecutor(rules).Apply(it)
		finals := v.FinalTypes()
		if !sort.StringsAreSorted(finals) {
			t.Fatalf("FinalTypes not sorted: %v", finals)
		}

		explain := v.Explain()
		// Explanations are audit artifacts: rendering the same verdict twice
		// must produce byte-identical output (the vetoed-by sections used to
		// come out in random map order).
		if again := v.Explain(); again != explain {
			t.Fatalf("Explain not deterministic across two calls:\n%q\nvs\n%q", explain, again)
		}
		if len(finals) == 0 {
			if !strings.Contains(explain, "no type survives the rule verdict\n") {
				t.Fatalf("empty verdict not explained: %q", explain)
			}
		}
		for _, ty := range finals {
			if !strings.Contains(explain, "type "+ty+" because:\n") {
				t.Fatalf("final type %s not justified in explanation:\n%s", ty, explain)
			}
			if len(v.Evidence(ty)) == 0 {
				t.Fatalf("final type %s has no evidence", ty)
			}
		}

		// Executor equivalence on the fuzzed input: indexing may never change
		// the verdict, only the cost of reaching it.
		idx := NewIndexedExecutor(rules)
		if iv := idx.Apply(it); !VerdictsEqual(v, iv) {
			t.Fatalf("indexed executor diverges on %q:\nseq: %s\nidx: %s",
				title, v.Explain(), iv.Explain())
		}
		// Same for the batch-inverted matcher on a single-item batch.
		if bv := idx.ApplyBatch([]*catalog.Item{it}, 1)[0]; !VerdictsEqual(v, bv) {
			t.Fatalf("batch matcher diverges on %q:\nseq: %s\nbatch: %s",
				title, v.Explain(), bv.Explain())
		}
	})
}
