package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
)

// Guard is an attribute-side condition attached to a rule — the §4
// rule-language extension the paper asks for: "it does not allow analysts to
// state that 'if the title contains Apple but the price is less than $100
// then the product is not a phone'". A rule with guards fires only when its
// pattern/attribute condition AND every guard hold.
type Guard struct {
	// Attr is the attribute inspected (missing attribute → guard fails).
	Attr string `json:"attr"`
	// Op is one of "<", "<=", ">", ">=", "=", "!=", "contains".
	Op string `json:"op"`
	// Value is the comparison operand. Numeric ops parse the leading number
	// of the attribute value ("5.00", "15.6 in").
	Value string `json:"value"`
}

// validGuardOps enumerates the supported operators.
var validGuardOps = map[string]bool{
	"<": true, "<=": true, ">": true, ">=": true, "=": true, "!=": true,
	"contains": true,
}

// Validate checks the guard's shape.
func (g Guard) Validate() error {
	if g.Attr == "" {
		return fmt.Errorf("core: guard needs an attribute")
	}
	if !validGuardOps[g.Op] {
		return fmt.Errorf("core: unknown guard op %q", g.Op)
	}
	if g.Value == "" {
		return fmt.Errorf("core: guard needs a value")
	}
	switch g.Op {
	case "<", "<=", ">", ">=":
		if _, err := strconv.ParseFloat(g.Value, 64); err != nil {
			return fmt.Errorf("core: numeric guard %s %s needs a numeric value: %w", g.Attr, g.Op, err)
		}
	}
	return nil
}

// Holds evaluates the guard against an item.
func (g Guard) Holds(it *catalog.Item) bool {
	raw, ok := it.Attrs[g.Attr]
	if !ok {
		return false
	}
	switch g.Op {
	case "=":
		return strings.EqualFold(raw, g.Value)
	case "!=":
		return !strings.EqualFold(raw, g.Value)
	case "contains":
		return strings.Contains(strings.ToLower(raw), strings.ToLower(g.Value))
	default:
		have, ok := leadingNumber(raw)
		if !ok {
			return false
		}
		want, err := strconv.ParseFloat(g.Value, 64)
		if err != nil {
			return false
		}
		switch g.Op {
		case "<":
			return have < want
		case "<=":
			return have <= want
		case ">":
			return have > want
		case ">=":
			return have >= want
		}
		return false
	}
}

// String renders the guard.
func (g Guard) String() string { return fmt.Sprintf("%s %s %s", g.Attr, g.Op, g.Value) }

// leadingNumber parses the first whitespace-separated field of s as a float.
func leadingNumber(s string) (float64, bool) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, false
	}
	f, err := strconv.ParseFloat(fields[0], 64)
	return f, err == nil
}

// WithGuards attaches validated guards to the rule and returns it, enabling
// fluent construction:
//
//	r, _ := core.NewBlacklist("apple", "smart phones")
//	r, err = r.WithGuards(core.Guard{Attr: "Price", Op: "<", Value: "100"})
func (r *Rule) WithGuards(guards ...Guard) (*Rule, error) {
	for _, g := range guards {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	r.Guards = append(r.Guards, guards...)
	return r, nil
}
