package core

import (
	"testing"

	"repro/internal/catalog"
)

func devCorpus(t *testing.T) []*catalog.Item {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: 121, NumTypes: 40})
	return cat.GenerateBatch(catalog.BatchSpec{Size: 2500, Epoch: 0})
}

func TestDevSessionTry(t *testing.T) {
	s := NewDevSession(devCorpus(t))
	if s.Size() != 2500 {
		t.Fatalf("size = %d", s.Size())
	}
	rep, err := s.Try("jeans?", "jeans")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage == 0 {
		t.Fatal("jeans rule should touch the corpus")
	}
	if len(rep.SampleTitles) == 0 || len(rep.SampleTitles) > 5 {
		t.Fatalf("sample titles: %v", rep.SampleTitles)
	}
	if !rep.Evaluable || rep.Precision < 0.9 {
		t.Fatalf("labeled session should score the rule: %+v", rep)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestDevSessionConfusions(t *testing.T) {
	s := NewDevSession(devCorpus(t))
	// The deliberately sloppy rule from §3: bare "oil" matches olive oil.
	rep, err := s.Try("oils?", "motor oil")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Precision >= 1 {
		t.Skip("corpus draw contained no confusing oils")
	}
	if len(rep.Confusions) == 0 {
		t.Fatal("imprecise rule should report confusions")
	}
	// Confusions are sorted descending.
	for i := 1; i < len(rep.Confusions); i++ {
		if rep.Confusions[i].Count > rep.Confusions[i-1].Count {
			t.Fatal("confusions not sorted")
		}
	}
}

func TestDevSessionBadPattern(t *testing.T) {
	s := NewDevSession(devCorpus(t))
	if _, err := s.Try("(((", "x"); err == nil {
		t.Fatal("bad pattern should error")
	}
}

func TestDevSessionUnlabeled(t *testing.T) {
	items := []*catalog.Item{
		{ID: "1", Attrs: map[string]string{"Title": "blue denim jeans"}},
		{ID: "2", Attrs: map[string]string{"Title": "red scarf"}},
	}
	s := NewDevSession(items)
	rep, err := s.Try("jeans?", "jeans")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluable {
		t.Fatal("unlabeled session cannot score precision")
	}
	if rep.Coverage != 1 {
		t.Fatalf("coverage = %d", rep.Coverage)
	}
}

func TestProposeRetargetPantsSplit(t *testing.T) {
	// Simulate the §4 split: "pants" becomes "work pants" and "jeans". The
	// relabeled corpus carries the successor labels.
	cat := catalog.New(catalog.Config{Seed: 122, NumTypes: 40})
	corpus := cat.GenerateBatch(catalog.BatchSpec{Size: 3000, Epoch: 0, OnlyTypes: []string{"work pants", "jeans"}})
	di := NewDataIndex(corpus)

	rb := NewRulebase()
	old := mustRule(NewWhitelist("(pants? | jeans?)", "pants"))
	fine := mustRule(NewWhitelist("rings?", "rings"))
	addRules(t, rb, old, fine)

	props := ProposeRetarget(rb.Active(), di, map[string]bool{"pants": true}, 0.2)
	if len(props) != 1 {
		t.Fatalf("want one proposal, got %v", props)
	}
	p := props[0]
	if p.OldRuleID != old.ID || p.Coverage == 0 {
		t.Fatalf("bad proposal: %+v", p)
	}
	targets := map[string]bool{}
	for _, nr := range p.NewRules {
		if nr.Provenance != "retarget" || nr.Note != "split from "+old.ID {
			t.Fatalf("provenance missing: %+v", nr)
		}
		if nr.Source != old.Source {
			t.Fatalf("pattern changed: %q", nr.Source)
		}
		targets[nr.TargetType] = true
	}
	if !targets["work pants"] || !targets["jeans"] {
		t.Fatalf("both successors should receive rules: %v (dist %v)", targets, p.Distribution)
	}
}

func TestProposeRetargetMinShare(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 123, NumTypes: 40})
	corpus := cat.GenerateBatch(catalog.BatchSpec{Size: 2000, Epoch: 0, OnlyTypes: []string{"jeans"}})
	di := NewDataIndex(corpus)
	rb := NewRulebase()
	old := mustRule(NewWhitelist("jeans?", "pants"))
	addRules(t, rb, old)
	// With everything landing in "jeans", a 0.99 share threshold still
	// yields the jeans replacement and nothing else.
	props := ProposeRetarget(rb.Active(), di, map[string]bool{"pants": true}, 0.99)
	if len(props) != 1 || len(props[0].NewRules) != 1 || props[0].NewRules[0].TargetType != "jeans" {
		t.Fatalf("props = %+v", props)
	}
}

func TestProposeRetargetSkipsLiveTypes(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 124, NumTypes: 40})
	corpus := cat.GenerateBatch(catalog.BatchSpec{Size: 500, Epoch: 0})
	di := NewDataIndex(corpus)
	rb := NewRulebase()
	addRules(t, rb, mustRule(NewWhitelist("rings?", "rings")))
	if props := ProposeRetarget(rb.Active(), di, map[string]bool{"pants": true}, 0.2); len(props) != 0 {
		t.Fatalf("live rules must not be retargeted: %v", props)
	}
}
