package core

import (
	"encoding/json"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/randx"
)

// verdictBytes serializes a verdict canonically: Go's JSON encoder sorts map
// keys and preserves slice order, so two verdicts marshal to the same bytes
// iff they assert the same rules in the same absorb order.
func verdictBytes(t *testing.T, v *Verdict) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Asserted    map[string][]*Rule
		Vetoed      map[string][]*Rule
		Allowed     map[string]bool
		Constraints []*Rule
	}{v.Asserted, v.Vetoed, v.Allowed, v.Constraints})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestInstrumentedVerdictsByteIdentical is the transparency property: over
// a real corpus and random titles alike, the instrumented executor's
// verdicts serialize byte-identically to the plain IndexedExecutor's.
func TestInstrumentedVerdictsByteIdentical(t *testing.T) {
	items, rules := corpusAndRules(t, 1500)
	plain := NewIndexedExecutor(rules)
	inst := NewInstrumentedExecutor(NewIndexedExecutor(rules), obs.NewRegistry())
	for _, it := range items {
		a, b := plain.Apply(it), inst.Apply(it)
		if ab, bb := verdictBytes(t, a), verdictBytes(t, b); ab != bb {
			t.Fatalf("verdicts differ on %q:\nplain %s\ninst  %s", it.Title(), ab, bb)
		}
	}

	vocab := []string{"ring", "rings", "diamond", "motor", "oil", "olive",
		"laptop", "bag", "jeans", "denim", "satchel", "q", "z"}
	f := func(seed uint64, n uint8) bool {
		r := randx.New(seed)
		tokens := make([]string, int(n)%10)
		for i := range tokens {
			tokens[i] = vocab[r.Intn(len(vocab))]
		}
		it := &catalog.Item{ID: "q", Attrs: map[string]string{"Title": join(tokens)}}
		return verdictBytes(t, plain.Apply(it)) == verdictBytes(t, inst.Apply(it))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentedGenericWrapAgrees(t *testing.T) {
	items, rules := corpusAndRules(t, 500)
	plain := NewSequentialExecutor(rules)
	inst := NewInstrumentedExecutor(NewSequentialExecutor(rules), obs.NewRegistry())
	for _, it := range items {
		if !VerdictsEqual(plain.Apply(it), inst.Apply(it)) {
			t.Fatalf("sequential wrap diverged on %q", it.Title())
		}
	}
}

func TestInstrumentedTelemetry(t *testing.T) {
	items, rules := corpusAndRules(t, 800)
	reg := obs.NewRegistry()
	inst := NewInstrumentedExecutor(NewIndexedExecutor(rules), reg)
	for _, it := range items {
		inst.Apply(it)
	}
	if inst.Applies() != int64(len(items)) {
		t.Fatalf("applies = %d, want %d", inst.Applies(), len(items))
	}
	avgCands, ratio := inst.Selectivity()
	if avgCands <= 0 || avgCands >= float64(len(rules)) {
		t.Fatalf("avg candidates = %v (rules: %d)", avgCands, len(rules))
	}
	if ratio <= 0 || ratio > 1 {
		t.Fatalf("match ratio = %v", ratio)
	}
	// Per-rule fired counters must sum to the matched total.
	var firedSum int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == MetricRuleFired {
			firedSum += c.Value
		}
	}
	if matched := reg.Counter(MetricExecMatched).Value(); firedSum != matched {
		t.Fatalf("per-rule fired sum %d != matched %d", firedSum, matched)
	}
	// Latency is sampled: exactly one observation per LatencySampleEvery
	// applies (the sequence counter starts at 1, so floor division).
	wantLat := int64(len(items)) / LatencySampleEvery
	if got := reg.Histogram(MetricExecLatency, nil).Count(); got != wantLat {
		t.Fatalf("latency observations = %d, want %d (1 in %d applies)", got, wantLat, LatencySampleEvery)
	}
}

// TestInstrumentedConcurrent drives the instrumented executor from many
// goroutines; -race verifies the telemetry hot path is lock-free-safe.
func TestInstrumentedConcurrent(t *testing.T) {
	items, rules := corpusAndRules(t, 400)
	inst := NewInstrumentedExecutor(NewIndexedExecutor(rules), obs.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, it := range items {
				inst.Apply(it)
			}
		}()
	}
	wg.Wait()
	if inst.Applies() != int64(8*len(items)) {
		t.Fatalf("applies = %d", inst.Applies())
	}
}

func TestRuleHealthReport(t *testing.T) {
	// Build a tiny rulebase with one healthy rule, one never-firing rule,
	// one always-vetoed rule, and one low-precision rule.
	rb := NewRulebase()
	add := func(r *Rule, err error) *Rule {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	healthy := add(NewWhitelist("rings?", "rings"))
	dead := add(NewWhitelist("unobtainium widgets?", "widgets"))
	vetoed := add(NewWhitelist("olive oils?", "motor oil"))
	add(NewBlacklist("olive oils?", "motor oil"))
	lowPrec := add(NewWhitelist("jeans?", "jeans"))
	lowPrec.Confidence = 0.5

	inst := NewInstrumentedExecutor(NewIndexedExecutor(rb.Active()), obs.NewRegistry())
	if inst.Health(0.92) != nil {
		t.Fatal("cold executor must report no health data")
	}
	titles := []string{"diamond ring size 7", "extra virgin olive oil", "slim fit jeans", "olive oil 1l"}
	for i, title := range titles {
		inst.Apply(item(title, nil))
		_ = i
	}

	health := inst.Health(0.92)
	byID := map[string]RuleHealth{}
	for _, h := range health {
		byID[h.RuleID] = h
	}
	if h := byID[healthy.ID]; h.Unhealthy() || h.Fired == 0 || h.Effective == 0 {
		t.Fatalf("healthy rule misreported: %+v", h)
	}
	if h := byID[dead.ID]; len(h.Issues) != 1 || h.Issues[0] != HealthNeverFired {
		t.Fatalf("dead rule misreported: %+v", h)
	}
	if h := byID[vetoed.ID]; len(h.Issues) != 1 || h.Issues[0] != HealthAlwaysVetoed || h.Fired == 0 {
		t.Fatalf("vetoed rule misreported: %+v", h)
	}
	if h := byID[lowPrec.ID]; len(h.Issues) != 1 || h.Issues[0] != HealthLowPrecision {
		t.Fatalf("low-precision rule misreported: %+v", h)
	}
	// Ranking: every unhealthy rule precedes every healthy one.
	seenHealthy := false
	for _, h := range health {
		if !h.Unhealthy() {
			seenHealthy = true
		} else if seenHealthy {
			t.Fatalf("unhealthy rule ranked after a healthy one: %+v", health)
		}
	}

	// The report feeds the maintenance loop: plan + apply actions.
	actions := PlanHealthActions(health, inst.Applies(), 100)
	if actions != nil {
		t.Fatal("below minApplies the planner must stay quiet")
	}
	actions = PlanHealthActions(health, inst.Applies(), 1)
	wantAction := map[string]string{dead.ID: "disable", vetoed.ID: "disable", lowPrec.ID: "review"}
	got := map[string]string{}
	for _, a := range actions {
		got[a.RuleID] = a.Action
		if a.Reason == "" {
			t.Fatalf("action without reason: %+v", a)
		}
	}
	for id, action := range wantAction {
		if got[id] != action {
			t.Fatalf("rule %s: action %q, want %q (all: %v)", id, got[id], action, actions)
		}
	}
	disabled := rb.ApplyHealthActions(actions, "maint")
	if len(disabled) != 2 {
		t.Fatalf("disabled = %v, want the 2 disable actions", disabled)
	}
	if rb.Get(dead.ID).Status != Disabled || rb.Get(vetoed.ID).Status != Disabled {
		t.Fatal("disable actions must take effect")
	}
	if rb.Get(lowPrec.ID).Status != Active {
		t.Fatal("review actions must not touch the rule")
	}
}

func TestRulebaseMutationCounters(t *testing.T) {
	reg := obs.NewRegistry()
	rb := NewRulebase()
	rb.Instrument(reg)
	r := mustRule(NewWhitelist("rings?", "rings"))
	id, err := rb.Add(r, "ana")
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Disable(id, "ana", ""); err != nil {
		t.Fatal(err)
	}
	if err := rb.Enable(id, "ana", ""); err != nil {
		t.Fatal(err)
	}
	if err := rb.UpdateConfidence(id, 0.8, "ana"); err != nil {
		t.Fatal(err)
	}
	for action, want := range map[string]int64{"add": 1, "disable": 1, "enable": 1, "update": 1} {
		if got := reg.Counter(MetricRulebaseMutations, "action", action).Value(); got != want {
			t.Fatalf("%s mutations = %d, want %d", action, got, want)
		}
	}
}
