package core

import (
	"sort"
	"time"

	"repro/internal/catalog"
)

// DevSession is the §4 rule-development accelerator: an analyst iterating on
// a rule ("debugging or refining it") re-runs every variation against a
// development data set D; indexing D once makes each iteration cheap. When
// the development set is labeled, each attempt also reports its training
// precision and the confusion profile — the immediate feedback loop that
// turns hours of manual title-combing into seconds.
type DevSession struct {
	di      *DataIndex
	labeled bool
}

// NewDevSession indexes the development corpus. The session is labeled when
// any item carries ground truth.
func NewDevSession(items []*catalog.Item) *DevSession {
	s := &DevSession{di: NewDataIndex(items)}
	for _, it := range items {
		if it.TrueType != "" {
			s.labeled = true
			break
		}
	}
	return s
}

// Size returns the development-corpus size.
func (s *DevSession) Size() int { return s.di.Size() }

// DevReport is the feedback for one rule attempt.
type DevReport struct {
	Rule *Rule
	// Coverage is how many development items the rule touches.
	Coverage int
	// SampleTitles shows up to 5 touched titles.
	SampleTitles []string
	// Precision is the fraction of touched items whose label matches the
	// target (labeled sessions only — see Evaluable).
	Precision float64
	Evaluable bool
	// Confusions counts touched items per wrong label, largest first
	// (as label, count pairs for deterministic order).
	Confusions []LabelCount
	// Elapsed is the wall time of this attempt (compile + indexed run).
	Elapsed time.Duration
}

// LabelCount is one confusion entry.
type LabelCount struct {
	Label string
	Count int
}

// Try compiles src as a whitelist rule for target and runs it against the
// indexed development set.
func (s *DevSession) Try(src, target string) (*DevReport, error) {
	start := time.Now()
	r, err := NewWhitelist(src, target)
	if err != nil {
		return nil, err
	}
	matches := s.di.Matches(r)
	rep := &DevReport{Rule: r, Coverage: len(matches)}

	items := s.di.items // same package: skip the defensive copy Items() makes
	confusions := map[string]int{}
	correct := 0
	for i, m := range matches {
		if i < 5 {
			rep.SampleTitles = append(rep.SampleTitles, items[m].Title())
		}
		if !s.labeled {
			continue
		}
		if items[m].TrueType == target {
			correct++
		} else {
			confusions[items[m].TrueType]++
		}
	}
	if s.labeled && len(matches) > 0 {
		rep.Precision = float64(correct) / float64(len(matches))
		rep.Evaluable = true
	}
	for label, n := range confusions {
		rep.Confusions = append(rep.Confusions, LabelCount{label, n})
	}
	sort.Slice(rep.Confusions, func(i, j int) bool {
		if rep.Confusions[i].Count != rep.Confusions[j].Count {
			return rep.Confusions[i].Count > rep.Confusions[j].Count
		}
		return rep.Confusions[i].Label < rep.Confusions[j].Label
	})
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ---------------------------------------------------------------------------
// Taxonomy-split retargeting (§4 maintenance: "when the product type 'pants'
// is divided into 'work pants' and 'jeans', the rules written for 'pants'
// become inapplicable. They need to be removed and new rules written.")
// ---------------------------------------------------------------------------

// RetargetProposal suggests replacing a dead-target rule with copies aimed
// at the split's successor types, based on where the rule's coverage lands
// in a relabeled corpus.
type RetargetProposal struct {
	OldRuleID string
	// NewRules are ready-to-review replacement rules (same pattern, new
	// target), one per successor type that dominates part of the coverage.
	NewRules []*Rule
	// Distribution is the coverage share per successor label.
	Distribution []LabelCount
	// Coverage is the rule's total coverage in the relabeled corpus.
	Coverage int
}

// ProposeRetarget examines active rules whose TargetType is in deadTypes
// and, using a corpus relabeled under the new taxonomy (items carry the
// successor labels), proposes replacement rules for every successor type
// receiving at least minShare of the rule's coverage. Proposed rules carry
// Provenance "retarget" and the old rule ID in their Note; the analyst
// reviews, then retires the old rule and adds the replacements.
func ProposeRetarget(rules []*Rule, relabeled *DataIndex, deadTypes map[string]bool, minShare float64) []RetargetProposal {
	if minShare <= 0 {
		minShare = 0.2
	}
	var out []RetargetProposal
	items := relabeled.items // same package: skip the defensive copy Items() makes
	for _, r := range rules {
		if r.Status != Active || !deadTypes[r.TargetType] || !r.IsPatternKind() || r.Kind == TypeRestrict {
			continue
		}
		matches := relabeled.Matches(r)
		if len(matches) == 0 {
			continue
		}
		counts := map[string]int{}
		for _, m := range matches {
			counts[items[m].TrueType]++
		}
		prop := RetargetProposal{OldRuleID: r.ID, Coverage: len(matches)}
		labels := make([]string, 0, len(counts))
		for l := range counts {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool {
			if counts[labels[i]] != counts[labels[j]] {
				return counts[labels[i]] > counts[labels[j]]
			}
			return labels[i] < labels[j]
		})
		for _, l := range labels {
			prop.Distribution = append(prop.Distribution, LabelCount{l, counts[l]})
			if float64(counts[l])/float64(len(matches)) < minShare {
				continue
			}
			nr, err := NewWhitelist(r.Source, l)
			if err != nil {
				continue
			}
			nr.Provenance = "retarget"
			nr.Note = "split from " + r.ID
			nr.Guards = append([]Guard(nil), r.Guards...)
			prop.NewRules = append(prop.NewRules, nr)
		}
		if len(prop.NewRules) > 0 {
			out = append(out, prop)
		}
	}
	return out
}
