package core

import (
	"sort"
	"sync"

	"repro/internal/catalog"
)

// Verdict is the outcome of executing a rule set on one item. Semantics are
// the staged model §4 motivates: whitelist-family rules assert candidate
// types, blacklist rules veto types, and attribute-value / type-restrict
// rules constrain the admissible type set. Because each stage accumulates into sets, the verdict
// is independent of execution order within a stage — the property E5
// verifies empirically.
type Verdict struct {
	// Asserted maps each asserted type to the rules that asserted it
	// (Whitelist, Gate and AttrExists rules).
	Asserted map[string][]*Rule
	// Vetoed maps each vetoed type to the blacklist rules that vetoed it.
	Vetoed map[string][]*Rule
	// Allowed is the intersection of AttrValue constraints; nil means
	// unconstrained. An empty non-nil set means contradictory constraints.
	Allowed map[string]bool
	// Constraints lists the AttrValue rules that fired.
	Constraints []*Rule
}

// newVerdict returns an empty verdict.
func newVerdict() *Verdict {
	return &Verdict{Asserted: map[string][]*Rule{}, Vetoed: map[string][]*Rule{}}
}

// absorb applies one matching rule to the verdict.
func (v *Verdict) absorb(r *Rule) {
	switch r.Kind {
	case Whitelist, Gate, AttrExists:
		v.Asserted[r.TargetType] = append(v.Asserted[r.TargetType], r)
	case Blacklist:
		v.Vetoed[r.TargetType] = append(v.Vetoed[r.TargetType], r)
	case AttrValue, TypeRestrict:
		v.Constraints = append(v.Constraints, r)
		allowed := map[string]bool{}
		for _, t := range r.AllowedTypes {
			allowed[t] = true
		}
		if v.Allowed == nil {
			v.Allowed = allowed
		} else {
			for t := range v.Allowed {
				if !allowed[t] {
					delete(v.Allowed, t)
				}
			}
		}
	}
}

// FinalTypes returns the surviving asserted types, sorted: asserted, not
// vetoed, and inside the Allowed constraint when one exists.
func (v *Verdict) FinalTypes() []string {
	var out []string
	for t := range v.Asserted {
		if len(v.Vetoed[t]) > 0 {
			continue
		}
		if v.Allowed != nil && !v.Allowed[t] {
			continue
		}
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Evidence returns a copy of the rules that asserted t (nil when t did not
// survive). Verdicts are shared — the serving tier's verdict cache hands the
// same Verdict to every coalesced caller — so the internal evidence slice
// must not leak where an append could clobber a neighbor's view.
func (v *Verdict) Evidence(t string) []*Rule {
	for _, ft := range v.FinalTypes() {
		if ft == t {
			return append([]*Rule(nil), v.Asserted[t]...)
		}
	}
	return nil
}

// FiredRuleIDs returns the sorted, de-duplicated IDs of every rule that
// matched the item in an asserting or constraining role (Asserted across all
// types, plus Constraints). Together with VetoingRuleIDs it is the rule-level
// provenance a decision audit record carries.
func (v *Verdict) FiredRuleIDs() []string {
	seen := map[string]bool{}
	for _, rules := range v.Asserted {
		for _, r := range rules {
			seen[r.ID] = true
		}
	}
	for _, r := range v.Constraints {
		seen[r.ID] = true
	}
	return sortedKeys(seen)
}

// VetoingRuleIDs returns the sorted, de-duplicated IDs of every blacklist
// rule that vetoed a type for the item — the rules a declined item's audit
// record names as the reason.
func (v *Verdict) VetoingRuleIDs() []string {
	seen := map[string]bool{}
	for _, rules := range v.Vetoed {
		for _, r := range rules {
			seen[r.ID] = true
		}
	}
	return sortedKeys(seen)
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Explain renders a human-readable justification for the verdict — the §3.2
// "liability concerns may require certain predictions to be explainable"
// capability that motivates rules in the first place.
func (v *Verdict) Explain() string {
	var b []byte
	app := func(s string) { b = append(b, s...) }
	finals := v.FinalTypes()
	if len(finals) == 0 {
		app("no type survives the rule verdict\n")
	}
	for _, t := range finals {
		app("type " + t + " because:\n")
		for _, r := range v.Asserted[t] {
			app("  + " + r.String() + "\n")
		}
	}
	// Sort vetoed types before rendering: ranging over the map directly made
	// the "vetoed by" sections appear in nondeterministic order across runs,
	// which broke byte-comparison of explanations (audit logs, golden tests).
	vetoed := make([]string, 0, len(v.Vetoed))
	for t := range v.Vetoed {
		if len(v.Asserted[t]) > 0 {
			vetoed = append(vetoed, t)
		}
	}
	sort.Strings(vetoed)
	for _, t := range vetoed {
		app("type " + t + " vetoed by:\n")
		for _, r := range v.Vetoed[t] {
			app("  - " + r.String() + "\n")
		}
	}
	return string(b)
}

// Executor evaluates a rule set against single items.
type Executor interface {
	Apply(it *catalog.Item) *Verdict
}

// SequentialExecutor scans every rule for every item — the §4 baseline whose
// cost motivates indexing.
type SequentialExecutor struct {
	rules []*Rule
}

// NewSequentialExecutor wraps rules (Filter rules are ignored by Apply).
func NewSequentialExecutor(rules []*Rule) *SequentialExecutor {
	return &SequentialExecutor{rules: rules}
}

// Apply implements Executor.
func (e *SequentialExecutor) Apply(it *catalog.Item) *Verdict {
	v := newVerdict()
	for _, r := range e.rules {
		if r.Kind == Filter {
			continue
		}
		if r.Matches(it) {
			v.absorb(r)
		}
	}
	return v
}

// IndexedExecutor evaluates only the rules the index proposes. It produces
// verdicts identical to SequentialExecutor over the same rules (tested as a
// property), typically evaluating orders of magnitude fewer rules.
type IndexedExecutor struct {
	idx    *RuleIndex
	bmOnce sync.Once
	bm     *BatchMatcher // lazily built by ApplyBatch
}

// NewIndexedExecutor builds the rule index and wraps it.
func NewIndexedExecutor(rules []*Rule) *IndexedExecutor {
	return &IndexedExecutor{idx: NewRuleIndex(rules)}
}

// NewIndexedExecutorWithDF builds a frequency-aware rule index (see
// NewRuleIndexWithDF) and wraps it.
func NewIndexedExecutorWithDF(rules []*Rule, df map[string]int) *IndexedExecutor {
	return &IndexedExecutor{idx: NewRuleIndexWithDF(rules, df)}
}

// Apply implements Executor.
func (e *IndexedExecutor) Apply(it *catalog.Item) *Verdict {
	v := newVerdict()
	for _, r := range e.idx.CandidatesFor(it) {
		if r.Matches(it) {
			v.absorb(r)
		}
	}
	return v
}

// Index exposes the underlying rule index (for instrumentation and stats).
func (e *IndexedExecutor) Index() *RuleIndex { return e.idx }

// ApplyBatch implements BatchApplier via a lazily-built BatchMatcher over the
// executor's index. Verdicts are equivalent to per-item Apply (a tested
// property).
func (e *IndexedExecutor) ApplyBatch(items []*catalog.Item, workers int) []*Verdict {
	e.bmOnce.Do(func() { e.bm = NewBatchMatcher(e.idx) })
	return e.bm.MatchBatch(items, workers)
}

// BatchApplier is the set-oriented counterpart of Executor: evaluate a whole
// batch at once, returning verdicts positionally aligned with items.
// Implementations may amortize candidate generation across the batch (see
// BatchMatcher) but must produce verdicts equivalent to applying the same
// rules item-at-a-time.
type BatchApplier interface {
	ApplyBatch(items []*catalog.Item, workers int) []*Verdict
}

// ExecuteBatch applies exec to every item using workers goroutines — the
// shared-nothing "cluster" substitute for the paper's Hadoop execution.
// Results are positionally aligned with items. Executors that implement
// BatchApplier (IndexedExecutor, InstrumentedExecutor over an index) take the
// batch-inverted path; everything else falls back to item-at-a-time, which
// remains the reference implementation (see ExecuteBatchItemwise).
func ExecuteBatch(exec Executor, items []*catalog.Item, workers int) []*Verdict {
	if ba, ok := exec.(BatchApplier); ok {
		return ba.ApplyBatch(items, workers)
	}
	return ExecuteBatchItemwise(exec, items, workers)
}

// ExecuteBatchItemwise applies exec to every item individually, sharded
// across workers goroutines. workers <= 1 runs inline. This is the reference
// path the batch-inverted matcher is property-tested against, and the one
// used for executors with no batch implementation.
func ExecuteBatchItemwise(exec Executor, items []*catalog.Item, workers int) []*Verdict {
	out := make([]*Verdict, len(items))
	if workers > len(items) {
		workers = len(items) // no point spawning more goroutines than items
	}
	if workers <= 1 {
		for i, it := range items {
			out[i] = exec.Apply(it)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(items) {
			break
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = exec.Apply(items[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
