package core

import (
	"testing"

	"repro/internal/catalog"
)

func TestTokenDF(t *testing.T) {
	items := []*catalog.Item{
		item("premium motor oil", nil),
		item("premium olive oil", nil),
		item("premium ring", nil),
	}
	df := TokenDF(items)
	if df["premium"] != 3 || df["oil"] != 2 || df["ring"] != 1 {
		t.Fatalf("df wrong: %v", df)
	}
	// Duplicate tokens in one title count once.
	df = TokenDF([]*catalog.Item{item("oil oil oil", nil)})
	if df["oil"] != 1 {
		t.Fatalf("duplicates inflated df: %v", df)
	}
}

func TestDFIndexPicksRareWitness(t *testing.T) {
	// Pattern with two witness sets: {premium} (1 alternative, very common)
	// and {zirconia, vortex} (2 alternatives, rare). Size-based selection
	// picks {premium}; frequency-aware selection must pick the rare pair.
	r := mustRule(NewWhitelist("premium (zirconia | vortex)", "widgets"))
	r.ID = "r1"
	var corpus []*catalog.Item
	for i := 0; i < 50; i++ {
		corpus = append(corpus, item("premium everyday thing", nil))
	}
	corpus = append(corpus, item("premium zirconia widget", nil))
	df := TokenDF(corpus)

	bySize := NewRuleIndex([]*Rule{r})
	byDF := NewRuleIndexWithDF([]*Rule{r}, df)

	common := item("premium everyday thing", nil)
	if got := bySize.CandidatesFor(common); len(got) != 1 {
		t.Fatalf("size-based index should propose the rule for common titles: %v", got)
	}
	if got := byDF.CandidatesFor(common); len(got) != 0 {
		t.Fatalf("df-aware index should skip titles without the rare witness: %v", got)
	}
	// Exactness: actual matches are still proposed.
	matching := item("premium zirconia widget", nil)
	if got := byDF.CandidatesFor(matching); len(got) != 1 {
		t.Fatalf("df-aware index lost a real candidate: %v", got)
	}
}

func TestDFExecutorEquivalence(t *testing.T) {
	items, rules := corpusAndRules(t, 1200)
	df := TokenDF(items)
	seq := NewSequentialExecutor(rules)
	dfx := NewIndexedExecutorWithDF(rules, df)
	for _, it := range items {
		if !VerdictsEqual(seq.Apply(it), dfx.Apply(it)) {
			t.Fatalf("df executor disagrees on %q", it.Title())
		}
	}
}

func TestDFIndexSelectivityNotWorse(t *testing.T) {
	items, rules := corpusAndRules(t, 800)
	df := TokenDF(items)
	plain := NewRuleIndex(rules)
	aware := NewRuleIndexWithDF(rules, df)
	var nPlain, nAware int
	for _, it := range items {
		nPlain += len(plain.CandidatesFor(it))
		nAware += len(aware.CandidatesFor(it))
	}
	if nAware > nPlain {
		t.Fatalf("frequency-aware keys should not propose more candidates: %d vs %d", nAware, nPlain)
	}
}

func TestNewGateAndAddAll(t *testing.T) {
	g, err := NewGate("(satchel | purse)", "handbags")
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != Gate || !g.Matches(item("quilted purse mini", nil)) {
		t.Fatalf("gate rule broken: %s", g)
	}
	if _, err := NewGate("(((", "handbags"); err == nil {
		t.Fatal("bad gate pattern should fail")
	}
	if _, err := NewFilter(""); err == nil {
		t.Fatal("empty filter target should fail")
	}

	rb := NewRulebase()
	rules := []*Rule{g, mustRule(NewFilter("vitamins"))}
	if err := rb.AddAll(rules, "ana"); err != nil {
		t.Fatal(err)
	}
	if rb.Len() != 2 {
		t.Fatalf("AddAll added %d", rb.Len())
	}
	// AddAll stops at the first error (duplicate ID).
	dup := mustRule(NewFilter("vitamins"))
	dup.ID = g.ID
	if err := rb.AddAll([]*Rule{dup}, "ana"); err == nil {
		t.Fatal("AddAll should propagate errors")
	}
}

func TestDataIndexCandidatesForWildcardRule(t *testing.T) {
	items := []*catalog.Item{item("a b", nil), item("c d", nil)}
	di := NewDataIndex(items)
	r := mustRule(NewWhitelist(`(\w+) (\w+)`, "anything"))
	if got := di.CandidateItems(r); len(got) != 2 {
		t.Fatalf("wildcard rule should scan everything: %v", got)
	}
	if got := di.Matches(r); len(got) != 2 {
		t.Fatalf("wildcard rule should match both: %v", got)
	}
}

func TestExplainCoversVetoes(t *testing.T) {
	wl := mustRule(NewWhitelist("jeans?", "jeans"))
	bl := mustRule(NewBlacklist("toy", "jeans"))
	ex := NewSequentialExecutor([]*Rule{wl, bl})
	v := ex.Apply(item("toy jeans for dolls", nil))
	s := v.Explain()
	if !contains(s, "vetoed by") {
		t.Fatalf("explanation should show the veto: %q", s)
	}
	if v.Evidence("jeans") != nil {
		t.Fatal("vetoed type must not expose evidence")
	}
}
