package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pattern"
)

// This file implements the §4 "rule maintenance" agenda: detect subsumed
// rules ("denim.*jeans? is subsumed by jeans? and hence should be removed"),
// duplicates, significantly overlapping rules, rules gone stale after
// taxonomy or data changes, and consolidation with its debuggability
// trade-off.

// SubsumedPair records that Specific is provably redundant given General:
// same kind, same target, and every title Specific matches is matched by
// General.
type SubsumedPair struct {
	GeneralID  string
	SpecificID string
	TargetType string
}

// FindSubsumed returns all provable subsumption pairs among the active
// pattern rules, grouped per (kind, target). The static check is sound, so
// retiring every Specific is always safe.
func FindSubsumed(rules []*Rule) []SubsumedPair {
	groups := groupPatternRules(rules)
	var out []SubsumedPair
	for _, g := range groups {
		for _, general := range g {
			if len(general.Guards) > 0 {
				// A guarded rule's language is narrowed by conditions the
				// pattern analysis cannot see; claiming it subsumes anything
				// would be unsound.
				continue
			}
			for _, specific := range g {
				if general.ID == specific.ID {
					continue
				}
				if pattern.Subsumes(general.Pattern(), specific.Pattern()) {
					// Mutual subsumption (equivalent patterns) is reported
					// once, keeping the older rule as the general one.
					if pattern.Subsumes(specific.Pattern(), general.Pattern()) &&
						general.CreatedAt > specific.CreatedAt {
						continue
					}
					out = append(out, SubsumedPair{
						GeneralID: general.ID, SpecificID: specific.ID,
						TargetType: general.TargetType,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GeneralID != out[j].GeneralID {
			return out[i].GeneralID < out[j].GeneralID
		}
		return out[i].SpecificID < out[j].SpecificID
	})
	return out
}

// DuplicatePair records two rules with identical semantics fields.
type DuplicatePair struct {
	KeepID string
	DropID string
	Why    string
}

// FindDuplicates detects rules that are exact semantic duplicates (same
// kind, target and canonicalized source / attribute condition) — the "two
// analysts independently add the same rule at different times" case. The
// older rule is kept.
func FindDuplicates(rules []*Rule) []DuplicatePair {
	seen := map[string]*Rule{}
	var out []DuplicatePair
	for _, r := range rules {
		if r.Status != Active {
			continue
		}
		var key string
		guardKey := ""
		for _, g := range r.Guards {
			guardKey += "|" + g.String()
		}
		switch {
		case r.Kind == TypeRestrict:
			allowed := append([]string(nil), r.AllowedTypes...)
			sort.Strings(allowed)
			key = fmt.Sprintf("%d|%s|%v%s", r.Kind, r.Pattern().String(), allowed, guardKey)
		case r.IsPatternKind():
			key = fmt.Sprintf("%d|%s|%s%s", r.Kind, r.TargetType, r.Pattern().String(), guardKey)
		case r.Kind == AttrExists:
			key = fmt.Sprintf("%d|%s|%s%s", r.Kind, r.TargetType, strings.ToLower(r.Attr), guardKey)
		case r.Kind == AttrValue:
			allowed := append([]string(nil), r.AllowedTypes...)
			sort.Strings(allowed)
			key = fmt.Sprintf("%d|%s|%s|%v%s", r.Kind, strings.ToLower(r.Attr), strings.ToLower(r.Value), allowed, guardKey)
		case r.Kind == Filter:
			key = fmt.Sprintf("%d|%s%s", r.Kind, r.TargetType, guardKey)
		}
		if prev, ok := seen[key]; ok {
			keep, drop := prev, r
			if drop.CreatedAt < keep.CreatedAt {
				keep, drop = drop, keep
			}
			out = append(out, DuplicatePair{KeepID: keep.ID, DropID: drop.ID, Why: "identical semantics"})
			seen[key] = keep
		} else {
			seen[key] = r
		}
	}
	return out
}

// OverlapPair records two same-target rules whose coverage on the corpus
// overlaps significantly (Jaccard ≥ threshold) without either being provably
// subsumed — candidates for analyst review or consolidation.
type OverlapPair struct {
	AID, BID    string
	TargetType  string
	Jaccard     float64
	SharedItems int
}

// FindOverlaps measures pairwise coverage overlap of same-(kind,target)
// pattern rules on the corpus behind di. Pairs with Jaccard below threshold
// are dropped.
func FindOverlaps(rules []*Rule, di *DataIndex, threshold float64) []OverlapPair {
	groups := groupPatternRules(rules)
	var out []OverlapPair
	for _, g := range groups {
		covs := make([]map[int32]bool, len(g))
		for i, r := range g {
			covs[i] = map[int32]bool{}
			for _, idx := range di.Matches(r) {
				covs[i][idx] = true
			}
		}
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if len(covs[i]) == 0 || len(covs[j]) == 0 {
					continue
				}
				inter := 0
				for it := range covs[i] {
					if covs[j][it] {
						inter++
					}
				}
				union := len(covs[i]) + len(covs[j]) - inter
				jac := float64(inter) / float64(union)
				if jac >= threshold {
					out = append(out, OverlapPair{
						AID: g[i].ID, BID: g[j].ID,
						TargetType: g[i].TargetType,
						Jaccard:    jac, SharedItems: inter,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Jaccard != out[j].Jaccard {
			return out[i].Jaccard > out[j].Jaccard
		}
		return out[i].AID < out[j].AID
	})
	return out
}

// StaleRule reports a rule that no longer touches the corpus (its vocabulary
// or taxonomy moved on) or whose target type left the taxonomy.
type StaleRule struct {
	RuleID string
	Reason string
}

// FindStale returns active rules that touch no item in the (recent) corpus
// or whose target type is not in validTypes. validTypes nil skips the
// taxonomy check — pass the current type set after a taxonomy change to
// catch the §4 "pants split into work pants and jeans" situation.
func FindStale(rules []*Rule, di *DataIndex, validTypes map[string]bool) []StaleRule {
	var out []StaleRule
	for _, r := range rules {
		if r.Status != Active {
			continue
		}
		if validTypes != nil && r.TargetType != "" && !validTypes[r.TargetType] {
			out = append(out, StaleRule{RuleID: r.ID, Reason: fmt.Sprintf("target type %q no longer in taxonomy", r.TargetType)})
			continue
		}
		if r.Kind == Filter {
			continue // filters fire on predictions, not corpus items
		}
		if len(di.Matches(r)) == 0 {
			out = append(out, StaleRule{RuleID: r.ID, Reason: "touches no item in the recent corpus"})
		}
	}
	return out
}

// Consolidation merges several single-slot whitelist rules into one
// disjunction rule while retaining the provenance needed to split back —
// the §4 trade-off: consolidation shrinks the rulebase but makes per-rule
// debugging ("which part of rule C misclassifies?") harder.
type Consolidation struct {
	MergedRule *Rule
	SourceIDs  []string
}

// ConsolidateWhitelists merges whitelist rules with the same target whose
// patterns are a single literal element (optionally followed by shared
// tail literals) into one rule with a merged alternative set. Only exact
// structural matches are merged; everything else is left alone. The merged
// rule's Note records the source IDs so SplitConsolidated can undo it.
func ConsolidateWhitelists(rules []*Rule) []Consolidation {
	type groupKey struct {
		target string
		tail   string
	}
	groups := map[groupKey][]*Rule{}
	for _, r := range rules {
		if r.Status != Active || r.Kind != Whitelist || len(r.Guards) > 0 {
			continue
		}
		elems := r.Pattern().Elems()
		if len(elems) == 0 || elems[0].Kind != pattern.KindLit || elems[0].Optional {
			continue
		}
		// Tail = canonical rendering of everything after the first element.
		tailPat := &strings.Builder{}
		ok := true
		for _, e := range elems[1:] {
			switch e.Kind {
			case pattern.KindLit:
				if e.Optional || len(e.Alts) != 1 {
					ok = false
				} else {
					tailPat.WriteString(" " + strings.Join(e.Alts[0], " "))
				}
			case pattern.KindGap:
				tailPat.WriteString(" .*")
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		k := groupKey{target: r.TargetType, tail: tailPat.String()}
		groups[k] = append(groups[k], r)
	}

	var out []Consolidation
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].target != keys[j].target {
			return keys[i].target < keys[j].target
		}
		return keys[i].tail < keys[j].tail
	})
	for _, k := range keys {
		g := groups[k]
		if len(g) < 2 {
			continue
		}
		altSet := map[string]bool{}
		var alts []string
		var ids []string
		for _, r := range g {
			ids = append(ids, r.ID)
			for _, a := range r.Pattern().Elems()[0].Alts {
				s := strings.Join(a, " ")
				if !altSet[s] {
					altSet[s] = true
					alts = append(alts, s)
				}
			}
		}
		sort.Strings(alts)
		src := "(" + strings.Join(alts, " | ") + ")" + k.tail
		merged, err := NewWhitelist(src, k.target)
		if err != nil {
			continue // defensive: never consolidate into an unparseable rule
		}
		merged.Provenance = "consolidation"
		merged.Note = "merged from " + strings.Join(ids, ",")
		out = append(out, Consolidation{MergedRule: merged, SourceIDs: ids})
	}
	return out
}

// SplitConsolidated recovers the source rule IDs of a consolidated rule, or
// nil if the rule is not a consolidation product. The rulebase retains the
// retired originals, so re-enabling them undoes the merge.
func SplitConsolidated(r *Rule) []string {
	const prefix = "merged from "
	if r.Provenance != "consolidation" || !strings.HasPrefix(r.Note, prefix) {
		return nil
	}
	return strings.Split(strings.TrimPrefix(r.Note, prefix), ",")
}

// HealthAction is one maintenance recommendation derived from runtime
// telemetry rather than static analysis — the piece of §4's agenda the
// static checks above cannot cover: a rule can be syntactically healthy yet
// dead in production.
type HealthAction struct {
	RuleID string
	// Action is "disable" (reversible scale-down) or "review" (needs an
	// analyst decision before touching the rule).
	Action string
	Reason string
}

// PlanHealthActions turns a telemetry-ranked RuleHealth report (see
// InstrumentedExecutor.Health) into concrete maintenance actions:
//
//   - never-fired rules observed over at least minFired total applies are
//     disable candidates (dead weight; re-enable is cheap if the corpus
//     shifts back);
//   - always-vetoed rules are disable candidates (every match was overridden
//     by a blacklist or constraint, so they only burn evaluation time);
//   - low-precision rules are flagged for analyst review — disabling them
//     automatically could silently drop recall the business depends on.
//
// minFired guards against acting on a cold executor: a rule that "never
// fired" across ten items is no signal at all.
func PlanHealthActions(health []RuleHealth, totalApplies, minApplies int64) []HealthAction {
	if totalApplies < minApplies {
		return nil
	}
	var out []HealthAction
	for _, h := range health {
		for _, issue := range h.Issues {
			switch issue {
			case HealthNeverFired:
				out = append(out, HealthAction{h.RuleID, "disable",
					fmt.Sprintf("matched nothing in %d applies", totalApplies)})
			case HealthAlwaysVetoed:
				out = append(out, HealthAction{h.RuleID, "disable",
					fmt.Sprintf("all %d matches were vetoed or constrained away", h.Fired)})
			case HealthLowPrecision:
				out = append(out, HealthAction{h.RuleID, "review",
					fmt.Sprintf("precision estimate %.3f below floor", h.Confidence)})
			}
		}
	}
	return out
}

// ApplyHealthActions executes the "disable" actions against the rulebase
// (audit-logged with the telemetry reason) and returns the affected rule
// IDs. "review" actions are left to the analyst and skipped.
func (rb *Rulebase) ApplyHealthActions(actions []HealthAction, actor string) []string {
	var out []string
	for _, a := range actions {
		if a.Action != "disable" {
			continue
		}
		if err := rb.Disable(a.RuleID, actor, "telemetry: "+a.Reason); err == nil {
			out = append(out, a.RuleID)
		}
	}
	return out
}

// groupPatternRules groups active pattern rules by (kind, target).
// TypeRestrict rules are excluded: they are constraints, so pattern
// generality inverts their semantics and the subsumption/overlap analyses
// built for assertion rules do not transfer.
func groupPatternRules(rules []*Rule) map[string][]*Rule {
	groups := map[string][]*Rule{}
	for _, r := range rules {
		if r.Status != Active || !r.IsPatternKind() || r.Kind == TypeRestrict {
			continue
		}
		key := fmt.Sprintf("%d|%s", r.Kind, r.TargetType)
		groups[key] = append(groups[key], r)
	}
	return groups
}
