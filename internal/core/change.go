package core

import "fmt"

// Change is one completed rulebase mutation as a self-contained, applyable
// record: the audit entry plus exactly the payload a replayer needs to
// reproduce the state transition (the added rule's content, the new
// confidence, the auto-ID counter). It is the unit the write-ahead log in
// internal/persist appends, and ApplyChange is its inverse.
type Change struct {
	// Entry is the audit entry the mutation appended (version, action, rule
	// ID, actor, note).
	Entry AuditEntry
	// Rule is a deep copy of the rule as of the mutation ("add" only): the
	// content frozen at mutation time, safe to retain and serialize after
	// later mutations touch the live rule.
	Rule *Rule
	// Status is the resulting lifecycle state ("disable"/"enable"/"retire").
	Status Status
	// Confidence is the new precision estimate ("update" only).
	Confidence float64
	// NextID is the auto-ID counter after the mutation ("add" only), so a
	// replayed rulebase assigns the same IDs to future auto-ID adds.
	NextID int
}

// ActionLoad is the pseudo-action delivered to change subscribers when the
// rulebase is wholesale replaced via UnmarshalJSON. It is not an incremental
// mutation — the version may even move backwards — so a durability layer must
// respond by re-snapshotting the full state rather than appending.
const ActionLoad = "load"

// SubscribeChanges registers fn to receive every subsequent mutation as an
// applyable Change record, and returns the rulebase version as of
// registration — the two are read atomically, so every mutation with
// Entry.Version > version is guaranteed to be delivered. Deliveries run
// outside the rulebase lock on the mutating goroutine and may therefore
// arrive out of version order under concurrent mutators; a durability layer
// must reorder by Entry.Version (and drop the occasional duplicate of a
// version ≤ the registration version from a mutation that raced
// registration). fn must be fast and non-blocking. The returned cancel
// removes the subscription.
func (rb *Rulebase) SubscribeChanges(fn func(Change)) (cancel func(), version uint64) {
	// Holding the read half of rb.mu blocks mutators for the duration of the
	// registration, making the (subscriber set, version) pair consistent.
	rb.mu.RLock()
	ver := rb.version
	rb.subMu.Lock()
	if rb.chSubs == nil {
		rb.chSubs = map[int]func(Change){}
	}
	id := rb.nextSub
	rb.nextSub++
	rb.chSubs[id] = fn
	rb.subMu.Unlock()
	rb.mu.RUnlock()
	return func() {
		rb.subMu.Lock()
		delete(rb.chSubs, id)
		rb.subMu.Unlock()
	}, ver
}

// hasChangeSubs reports whether any change subscriber is registered, so
// mutators can skip building the (allocating) Change payload when nobody
// listens. Callers may hold rb.mu — the lock order is always mu before subMu.
func (rb *Rulebase) hasChangeSubs() bool {
	rb.subMu.RLock()
	n := len(rb.chSubs)
	rb.subMu.RUnlock()
	return n > 0
}

// notifyChange delivers a mutation's Change record; callers must NOT hold
// rb.mu.
func (rb *Rulebase) notifyChange(ch Change) {
	rb.subMu.RLock()
	if len(rb.chSubs) == 0 {
		rb.subMu.RUnlock()
		return
	}
	fns := make([]func(Change), 0, len(rb.chSubs))
	for _, fn := range rb.chSubs {
		fns = append(fns, fn)
	}
	rb.subMu.RUnlock()
	for _, fn := range fns {
		fn(ch)
	}
}

// statusForAction maps a lifecycle audit action to the state it produces.
var statusForAction = map[string]Status{
	"disable": Disabled,
	"enable":  Active,
	"retire":  Retired,
}

// ApplyChange replays one recorded mutation onto the rulebase, reproducing
// the exact state transition the original mutation made: same version, same
// audit entry (verbatim, including actor and note), same rule content and
// clock stamps. Records must be applied in order — Entry.Version must be
// exactly Version()+1 — which is how a WAL replayer detects gaps.
//
// Replay notifies version subscribers (so a serving engine tracking the
// rulebase rebuilds) but NOT change subscribers: an attached durability layer
// must not re-log what it is replaying. Mutation metrics are also not
// counted — replay reconstructs history, it does not make new history.
func (rb *Rulebase) ApplyChange(ch Change) error {
	rb.mu.Lock()
	if ch.Entry.Version != rb.version+1 {
		have := rb.version
		rb.mu.Unlock()
		return fmt.Errorf("core: change version %d does not follow rulebase version %d", ch.Entry.Version, have)
	}
	switch ch.Entry.Action {
	case "add":
		if ch.Rule == nil {
			rb.mu.Unlock()
			return fmt.Errorf("core: add change %d has no rule payload", ch.Entry.Version)
		}
		r := ch.Rule.Clone()
		if r.ID == "" || r.ID != ch.Entry.RuleID {
			rb.mu.Unlock()
			return fmt.Errorf("core: add change %d rule id %q does not match entry %q", ch.Entry.Version, r.ID, ch.Entry.RuleID)
		}
		if _, exists := rb.rules[r.ID]; exists {
			rb.mu.Unlock()
			return fmt.Errorf("core: add change %d duplicates rule %q", ch.Entry.Version, r.ID)
		}
		rb.rules[r.ID] = r
		rb.order = append(rb.order, r.ID)
		// Advance (never rewind) the auto-ID counter; max semantics keep a
		// concurrent live add from being undone.
		for {
			cur := rb.nextID.Load()
			if int64(ch.NextID) <= cur || rb.nextID.CompareAndSwap(cur, int64(ch.NextID)) {
				break
			}
		}
	case "disable", "enable", "retire":
		r, ok := rb.rules[ch.Entry.RuleID]
		if !ok {
			rb.mu.Unlock()
			return fmt.Errorf("core: %s change %d targets unknown rule %q", ch.Entry.Action, ch.Entry.Version, ch.Entry.RuleID)
		}
		r.Status = statusForAction[ch.Entry.Action]
		r.UpdatedAt = ch.Entry.Version
	case "update":
		r, ok := rb.rules[ch.Entry.RuleID]
		if !ok {
			rb.mu.Unlock()
			return fmt.Errorf("core: update change %d targets unknown rule %q", ch.Entry.Version, ch.Entry.RuleID)
		}
		r.Confidence = ch.Confidence
		r.UpdatedAt = ch.Entry.Version
	default:
		rb.mu.Unlock()
		return fmt.Errorf("core: change %d has unknown action %q", ch.Entry.Version, ch.Entry.Action)
	}
	rb.version = ch.Entry.Version
	rb.audit = append(rb.audit, ch.Entry)
	rb.mu.Unlock()
	rb.notify(ch.Entry.Version)
	return nil
}

// Clone returns a deep copy of the rule: slices are copied, the compiled
// pattern is shared (patterns are immutable once parsed).
func (r *Rule) Clone() *Rule {
	if r == nil {
		return nil
	}
	c := *r
	if r.AllowedTypes != nil {
		c.AllowedTypes = append([]string(nil), r.AllowedTypes...)
	}
	if r.Guards != nil {
		c.Guards = append([]Guard(nil), r.Guards...)
	}
	return &c
}
