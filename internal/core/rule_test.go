package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/catalog"
)

func item(title string, attrs map[string]string) *catalog.Item {
	a := map[string]string{"Title": title}
	for k, v := range attrs {
		a[k] = v
	}
	return &catalog.Item{ID: "t1", Attrs: a}
}

func TestNewWhitelistMatches(t *testing.T) {
	r, err := NewWhitelist("rings?", "rings")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Matches(item("Diamond Accent Ring", nil)) {
		t.Error("whitelist should match ring title")
	}
	if r.Matches(item("Gold Necklace", nil)) {
		t.Error("whitelist should not match necklace")
	}
	if !strings.Contains(r.String(), "rings?") {
		t.Errorf("String() should show the source: %s", r)
	}
}

func TestNewBlacklistString(t *testing.T) {
	r, err := NewBlacklist("toy rings?", "rings")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "NOT rings") {
		t.Errorf("blacklist String() should show negation: %s", r)
	}
}

func TestPatternRuleValidation(t *testing.T) {
	if _, err := NewWhitelist("", "rings"); err == nil {
		t.Error("empty pattern should fail")
	}
	if _, err := NewWhitelist("rings?", ""); err == nil {
		t.Error("empty target should fail")
	}
	if _, err := NewWhitelist(`(motor | \syn) oils?`, "motor oil"); err == nil {
		t.Error("unexpanded \\syn pattern must not deploy as a rule")
	}
}

func TestAttrExistsRule(t *testing.T) {
	r, err := NewAttrExists("isbn", "books")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Matches(item("Some Great Novel", map[string]string{"isbn": "9781111111111"})) {
		t.Error("attr-exists should fire on isbn")
	}
	if r.Matches(item("Some Great Novel", nil)) {
		t.Error("attr-exists must not fire without the attribute")
	}
	if _, err := NewAttrExists("", "books"); err == nil {
		t.Error("empty attr should fail")
	}
}

func TestAttrValueRule(t *testing.T) {
	r, err := NewAttrValue("Brand Name", "apex", []string{"laptop computers", "smart phones"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Matches(item("something", map[string]string{"Brand Name": "Apex"})) {
		t.Error("attr-value match should be case-insensitive")
	}
	if r.Matches(item("something", map[string]string{"Brand Name": "nimbus"})) {
		t.Error("attr-value must not fire on other values")
	}
	if _, err := NewAttrValue("Brand Name", "apex", nil); err == nil {
		t.Error("attr-value without allowed types should fail")
	}
}

func TestFilterRuleNeverItemMatches(t *testing.T) {
	r, err := NewFilter("vitamins")
	if err != nil {
		t.Fatal(err)
	}
	if r.Matches(item("daily vitamins 90 count", nil)) {
		t.Error("filter rules act on predictions, not items")
	}
}

func TestRuleJSONRoundTrip(t *testing.T) {
	rules := []*Rule{
		mustRule(NewWhitelist("(motor | engine) oils?", "motor oil")),
		mustRule(NewBlacklist("olive oils?", "motor oil")),
		mustRule(NewAttrExists("isbn", "books")),
		mustRule(NewAttrValue("Brand Name", "apex", []string{"laptop computers"})),
		mustRule(NewFilter("vitamins")),
	}
	rules[0].Author = "ana"
	rules[0].Provenance = "analyst"
	rules[0].Confidence = 0.93
	rules[0].Status = Disabled

	for _, r := range rules {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Rule
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", r, err)
		}
		if back.Kind != r.Kind || back.TargetType != r.TargetType ||
			back.Author != r.Author || back.Status != r.Status ||
			back.Confidence != r.Confidence {
			t.Fatalf("round trip changed rule: %+v vs %+v", back, r)
		}
		if r.IsPatternKind() {
			it := item("castrol motor oil 5qt", nil)
			if back.Matches(it) != r.Matches(it) {
				t.Fatal("round trip changed pattern semantics")
			}
		}
	}
}

func TestRuleJSONRejectsBadKind(t *testing.T) {
	var r Rule
	if err := json.Unmarshal([]byte(`{"kind":"bogus","status":"active"}`), &r); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if err := json.Unmarshal([]byte(`{"kind":"whitelist","status":"bogus"}`), &r); err == nil {
		t.Fatal("unknown status should fail")
	}
	if err := json.Unmarshal([]byte(`{"kind":"whitelist","status":"active","source":"((("}`), &r); err == nil {
		t.Fatal("unparseable source should fail")
	}
}

func TestKindAndStatusStrings(t *testing.T) {
	if Whitelist.String() != "whitelist" || Filter.String() != "filter" {
		t.Error("kind strings wrong")
	}
	if Active.String() != "active" || Retired.String() != "retired" {
		t.Error("status strings wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") || !strings.Contains(Status(99).String(), "99") {
		t.Error("unknown values should render numerically")
	}
}

func mustRule(r *Rule, err error) *Rule {
	if err != nil {
		panic(err)
	}
	return r
}
