package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/randx"
)

func addRules(t *testing.T, rb *Rulebase, rules ...*Rule) {
	t.Helper()
	for _, r := range rules {
		if _, err := rb.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFindSubsumedPaperExample(t *testing.T) {
	rb := NewRulebase()
	general := mustRule(NewWhitelist("jeans?", "jeans"))
	specific := mustRule(NewWhitelist("denim.*jeans?", "jeans"))
	other := mustRule(NewWhitelist("jeans?", "work pants")) // different target: untouched
	addRules(t, rb, general, specific, other)

	pairs := FindSubsumed(rb.Active())
	if len(pairs) != 1 {
		t.Fatalf("want exactly one pair, got %v", pairs)
	}
	if pairs[0].GeneralID != general.ID || pairs[0].SpecificID != specific.ID {
		t.Fatalf("wrong direction: %+v", pairs[0])
	}
}

func TestFindSubsumedEquivalentKeepsOlder(t *testing.T) {
	rb := NewRulebase()
	first := mustRule(NewWhitelist("(jean | jeans)", "jeans"))
	second := mustRule(NewWhitelist("jeans?", "jeans"))
	addRules(t, rb, first, second)
	pairs := FindSubsumed(rb.Active())
	if len(pairs) != 1 {
		t.Fatalf("equivalent rules should report one pair, got %v", pairs)
	}
	if pairs[0].GeneralID != first.ID || pairs[0].SpecificID != second.ID {
		t.Fatalf("older rule should be kept as general: %+v", pairs[0])
	}
}

func TestFindSubsumedIgnoresBlacklistVsWhitelist(t *testing.T) {
	rb := NewRulebase()
	addRules(t, rb,
		mustRule(NewWhitelist("jeans?", "jeans")),
		mustRule(NewBlacklist("denim.*jeans?", "jeans")))
	if pairs := FindSubsumed(rb.Active()); len(pairs) != 0 {
		t.Fatalf("cross-kind subsumption must not be reported: %v", pairs)
	}
}

func TestFindDuplicates(t *testing.T) {
	rb := NewRulebase()
	a := mustRule(NewWhitelist("jeans?", "jeans"))
	b := mustRule(NewWhitelist("jeans?", "jeans"))
	c := mustRule(NewAttrExists("isbn", "books"))
	d := mustRule(NewAttrExists("ISBN", "books")) // attr case-insensitive
	addRules(t, rb, a, b, c, d)
	dups := FindDuplicates(rb.Active())
	if len(dups) != 2 {
		t.Fatalf("want 2 duplicate pairs, got %v", dups)
	}
	for _, dp := range dups {
		keep, drop := rb.Get(dp.KeepID), rb.Get(dp.DropID)
		if keep.CreatedAt >= drop.CreatedAt {
			t.Fatalf("older rule must be kept: %+v", dp)
		}
	}
}

func TestFindOverlapsPaperPair(t *testing.T) {
	// The §4 example pair of significantly overlapping rules.
	cat := catalog.New(catalog.Config{Seed: 33, NumTypes: 50})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 1, OnlyTypes: []string{"abrasive wheels & discs", "rings", "jeans"}})
	di := NewDataIndex(items)

	rb := NewRulebase()
	a := mustRule(NewWhitelist("(abrasive|sand(er|ing))[ -](wheels?|discs?)", "abrasive wheels & discs"))
	b := mustRule(NewWhitelist("abrasive.*(wheels?|discs?)", "abrasive wheels & discs"))
	unrelated := mustRule(NewWhitelist("rings?", "rings"))
	addRules(t, rb, a, b, unrelated)

	overlaps := FindOverlaps(rb.Active(), di, 0.1)
	found := false
	for _, o := range overlaps {
		if (o.AID == a.ID && o.BID == b.ID) || (o.AID == b.ID && o.BID == a.ID) {
			found = true
			if o.SharedItems == 0 || o.Jaccard <= 0 {
				t.Fatalf("degenerate overlap: %+v", o)
			}
		}
		if o.AID == unrelated.ID || o.BID == unrelated.ID {
			t.Fatalf("unrelated rule reported: %+v", o)
		}
	}
	if !found {
		t.Fatalf("expected the abrasive pair to overlap; got %v", overlaps)
	}
}

func TestFindOverlapsThreshold(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 34, NumTypes: 50})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 1000, Epoch: 0, OnlyTypes: []string{"jeans"}})
	di := NewDataIndex(items)
	rb := NewRulebase()
	a := mustRule(NewWhitelist("jeans?", "jeans"))
	b := mustRule(NewWhitelist("denim.*jeans?", "jeans"))
	addRules(t, rb, a, b)
	all := FindOverlaps(rb.Active(), di, 0.0)
	if len(all) == 0 {
		t.Fatal("jeans rules should overlap at threshold 0")
	}
	none := FindOverlaps(rb.Active(), di, 1.01)
	if len(none) != 0 {
		t.Fatalf("impossible threshold should yield nothing: %v", none)
	}
}

func TestFindStale(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 35, NumTypes: 50})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 1500, Epoch: 0, OnlyTypes: []string{"jeans", "rings"}})
	di := NewDataIndex(items)

	rb := NewRulebase()
	live := mustRule(NewWhitelist("jeans?", "jeans"))
	dead := mustRule(NewWhitelist("telegraph machines?", "telegraphs"))
	pants := mustRule(NewWhitelist("pants?", "pants"))
	addRules(t, rb, live, dead, pants)

	// Taxonomy after the §4 split: "pants" no longer exists.
	valid := map[string]bool{"jeans": true, "rings": true, "telegraphs": true, "work pants": true}
	stale := FindStale(rb.Active(), di, valid)
	reasons := map[string]string{}
	for _, s := range stale {
		reasons[s.RuleID] = s.Reason
	}
	if _, ok := reasons[live.ID]; ok {
		t.Fatal("live rule flagged stale")
	}
	if r, ok := reasons[dead.ID]; !ok || !strings.Contains(r, "no item") {
		t.Fatalf("dead-vocabulary rule not flagged: %v", reasons)
	}
	if r, ok := reasons[pants.ID]; !ok || !strings.Contains(r, "taxonomy") {
		t.Fatalf("taxonomy-split rule not flagged: %v", reasons)
	}
}

func TestConsolidateWhitelists(t *testing.T) {
	rb := NewRulebase()
	a := mustRule(NewWhitelist("(denim)", "jeans"))
	b := mustRule(NewWhitelist("(carpenter)", "jeans"))
	cOther := mustRule(NewWhitelist("(denim) jeans?", "jeans")) // different tail: own group
	addRules(t, rb, a, b, cOther)

	cons := ConsolidateWhitelists(rb.Active())
	if len(cons) != 1 {
		t.Fatalf("want one consolidation, got %d", len(cons))
	}
	merged := cons[0].MergedRule
	if merged.TargetType != "jeans" {
		t.Fatalf("bad target: %s", merged.TargetType)
	}
	if len(cons[0].SourceIDs) != 2 {
		t.Fatalf("sources = %v", cons[0].SourceIDs)
	}
	// Merged rule must match whatever either source matched.
	for _, title := range []string{"denim jacket", "carpenter tools"} {
		if !merged.Matches(item(title, nil)) {
			t.Fatalf("merged rule misses %q", title)
		}
	}
	// Split recovers sources.
	back := SplitConsolidated(merged)
	if len(back) != 2 || back[0] != cons[0].SourceIDs[0] {
		t.Fatalf("split lost provenance: %v", back)
	}
	if SplitConsolidated(a) != nil {
		t.Fatal("non-consolidated rule should not split")
	}
}

func TestConsolidateSharedTail(t *testing.T) {
	rb := NewRulebase()
	a := mustRule(NewWhitelist("(usb) cable", "computer cables"))
	b := mustRule(NewWhitelist("(hdmi) cable", "computer cables"))
	c := mustRule(NewWhitelist("(monitor) cord", "computer cables")) // different tail
	addRules(t, rb, a, b, c)
	cons := ConsolidateWhitelists(rb.Active())
	if len(cons) != 1 {
		t.Fatalf("want one consolidation (cable tail), got %d", len(cons))
	}
	m := cons[0].MergedRule
	if !m.Matches(item("braided usb cable", nil)) || !m.Matches(item("hdmi cable 6ft", nil)) {
		t.Fatal("merged rule lost coverage")
	}
	if m.Matches(item("monitor cord", nil)) {
		t.Fatal("merged rule absorbed a different tail")
	}
}

func TestCheckOrderIndependenceHolds(t *testing.T) {
	items, rules := corpusAndRules(t, 150)
	rep := CheckOrderIndependence(rules, items, randx.New(5), 30)
	if !rep.Holds {
		t.Fatalf("staged semantics must be order independent: %s", rep.Witness)
	}
	if rep.PermutationsTried < 2 {
		t.Fatal("checker did not try permutations")
	}
}

func TestCheckOrderIndependenceExhaustiveSmall(t *testing.T) {
	_, rules := corpusAndRules(t, 0)
	small := rules[:4]
	cat := catalog.New(catalog.Config{Seed: 36, NumTypes: 40})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 50, Epoch: 0})
	rep := CheckOrderIndependence(small, items, randx.New(6), 0)
	if !rep.Holds {
		t.Fatalf("violation: %s", rep.Witness)
	}
	if rep.PermutationsTried != 24+1 {
		t.Fatalf("exhaustive check should try 4!=24 permutations plus baseline, got %d", rep.PermutationsTried)
	}
}

func TestFindConflicts(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 37, NumTypes: 50})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 2000, Epoch: 0, OnlyTypes: []string{"jeans", "rings"}})
	di := NewDataIndex(items)

	rb := NewRulebase()
	w := mustRule(NewWhitelist("jeans?", "jeans"))
	bl := mustRule(NewBlacklist("denim.*jeans?", "jeans"))
	harmless := mustRule(NewBlacklist("toy rings?", "jeans"))
	addRules(t, rb, w, bl, harmless)

	conflicts := FindConflicts(rb.Active(), di)
	if len(conflicts) == 0 {
		t.Fatal("denim jeans titles should conflict")
	}
	c0 := conflicts[0]
	if c0.WhitelistID != w.ID || c0.BlacklistID != bl.ID || c0.Items == 0 || c0.Example == "" {
		t.Fatalf("bad conflict: %+v", c0)
	}
	for _, c := range conflicts {
		if c.BlacklistID == harmless.ID {
			t.Fatal("non-overlapping blacklist reported")
		}
	}
}
