package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGuardPaperExample(t *testing.T) {
	// §4: "if the title contains 'Apple' but the price is less than $100
	// then the product is not a phone".
	r, err := NewBlacklist("apple", "smart phones")
	if err != nil {
		t.Fatal(err)
	}
	r, err = r.WithGuards(Guard{Attr: "Price", Op: "<", Value: "100"})
	if err != nil {
		t.Fatal(err)
	}
	cheap := item("apple branded case", map[string]string{"Price": "12.99"})
	if !r.Matches(cheap) {
		t.Fatal("cheap apple item should trigger the guarded blacklist")
	}
	expensive := item("apple smartphone unlocked", map[string]string{"Price": "699.00"})
	if r.Matches(expensive) {
		t.Fatal("expensive apple item must not trigger the guard")
	}
	noPrice := item("apple gadget", nil)
	if r.Matches(noPrice) {
		t.Fatal("missing attribute should fail the guard")
	}
}

func TestGuardOps(t *testing.T) {
	it := item("x", map[string]string{"Price": "50.00", "Color": "navy blue", "Screen Size": "15.6 in"})
	cases := []struct {
		g    Guard
		want bool
	}{
		{Guard{"Price", "<", "100"}, true},
		{Guard{"Price", "<=", "50"}, true},
		{Guard{"Price", ">", "49"}, true},
		{Guard{"Price", ">=", "51"}, false},
		{Guard{"Color", "=", "NAVY BLUE"}, true},
		{Guard{"Color", "!=", "red"}, true},
		{Guard{"Color", "contains", "navy"}, true},
		{Guard{"Color", "contains", "green"}, false},
		{Guard{"Screen Size", ">", "15"}, true}, // leading number of "15.6 in"
		{Guard{"Missing", "=", "x"}, false},
		{Guard{"Color", "<", "5"}, false}, // non-numeric value under numeric op
	}
	for _, c := range cases {
		if got := c.g.Holds(it); got != c.want {
			t.Errorf("guard %s: got %v, want %v", c.g, got, c.want)
		}
	}
}

func TestGuardValidation(t *testing.T) {
	bad := []Guard{
		{"", "<", "5"},
		{"Price", "~", "5"},
		{"Price", "<", ""},
		{"Price", "<", "cheap"},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("guard %v should be invalid", g)
		}
	}
	if err := (Guard{"Color", "contains", "blue"}).Validate(); err != nil {
		t.Errorf("contains guard should validate: %v", err)
	}
	r := mustRule(NewWhitelist("x", "t"))
	if _, err := r.WithGuards(Guard{"Price", "~", "5"}); err == nil {
		t.Error("WithGuards should reject invalid guards")
	}
}

func TestGuardedRuleString(t *testing.T) {
	r := mustRule(NewBlacklist("apple", "smart phones"))
	r, _ = r.WithGuards(Guard{"Price", "<", "100"})
	if !strings.Contains(r.String(), "[if Price < 100]") {
		t.Fatalf("guard missing from String(): %s", r)
	}
}

func TestGuardedRuleJSONRoundTrip(t *testing.T) {
	r := mustRule(NewWhitelist("laptops?", "laptop computers"))
	r, _ = r.WithGuards(Guard{"Price", ">=", "200"})
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Rule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Guards) != 1 || back.Guards[0].Op != ">=" {
		t.Fatalf("guards lost: %+v", back.Guards)
	}
	cheap := item("apex laptop", map[string]string{"Price": "99"})
	costly := item("apex laptop", map[string]string{"Price": "500"})
	if back.Matches(cheap) || !back.Matches(costly) {
		t.Fatal("round-tripped guard semantics broken")
	}
}

func TestGuardedRuleJSONRejectsBadGuard(t *testing.T) {
	var r Rule
	blob := `{"kind":"whitelist","status":"active","source":"x","target_type":"t","guards":[{"attr":"Price","op":"~","value":"5"}]}`
	if err := json.Unmarshal([]byte(blob), &r); err == nil {
		t.Fatal("invalid guard should fail deserialization")
	}
}

func TestGuardedRulesInVerdict(t *testing.T) {
	wl := mustRule(NewWhitelist("phones?", "smart phones"))
	guarded := mustRule(NewBlacklist("phones?", "smart phones"))
	guarded, _ = guarded.WithGuards(Guard{"Price", "<", "50"})
	ex := NewSequentialExecutor([]*Rule{wl, guarded})

	toy := item("toy phone", map[string]string{"Price": "9.99"})
	if got := ex.Apply(toy).FinalTypes(); len(got) != 0 {
		t.Fatalf("cheap phone should be vetoed: %v", got)
	}
	real := item("flagship phone", map[string]string{"Price": "899"})
	if got := ex.Apply(real).FinalTypes(); len(got) != 1 || got[0] != "smart phones" {
		t.Fatalf("real phone should classify: %v", got)
	}
}

func TestGuardedGeneralNeverSubsumes(t *testing.T) {
	rb := NewRulebase()
	guarded := mustRule(NewWhitelist("jeans?", "jeans"))
	guarded, _ = guarded.WithGuards(Guard{"Price", "<", "40"})
	specific := mustRule(NewWhitelist("denim.*jeans?", "jeans"))
	addRules(t, rb, guarded, specific)
	for _, p := range FindSubsumed(rb.Active()) {
		if p.GeneralID == guarded.ID {
			t.Fatalf("guarded rule must not act as a subsuming general: %+v", p)
		}
	}
}

func TestGuardedRulesNotDuplicates(t *testing.T) {
	rb := NewRulebase()
	plain := mustRule(NewWhitelist("jeans?", "jeans"))
	guarded := mustRule(NewWhitelist("jeans?", "jeans"))
	guarded, _ = guarded.WithGuards(Guard{"Price", "<", "40"})
	addRules(t, rb, plain, guarded)
	if dups := FindDuplicates(rb.Active()); len(dups) != 0 {
		t.Fatalf("guarded variant is not a duplicate: %v", dups)
	}
}

func TestGuardedRulesNotConsolidated(t *testing.T) {
	rb := NewRulebase()
	a := mustRule(NewWhitelist("(denim)", "jeans"))
	b := mustRule(NewWhitelist("(carpenter)", "jeans"))
	b, _ = b.WithGuards(Guard{"Price", "<", "40"})
	addRules(t, rb, a, b)
	if cons := ConsolidateWhitelists(rb.Active()); len(cons) != 0 {
		t.Fatalf("guarded rules must not merge: %v", cons)
	}
}
