package core

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/catalog"
	"repro/internal/randx"
)

// This file implements the §4 "rule system properties and design" agenda:
// identify desirable properties ("the output of the system remains the same
// regardless of the order in which the rules are being executed"), check
// them on concrete rulebases, and detect the conflicts that would break
// them.

// verdictFingerprint reduces a verdict to a canonical comparable form.
func verdictFingerprint(v *Verdict) string {
	finals := v.FinalTypes()
	// Include the evidence sets so "same answer for different reasons" is
	// still flagged: analysts debug via evidence (§3.2 traceability).
	var parts []string
	for _, t := range finals {
		ids := make([]string, 0, len(v.Asserted[t]))
		for _, r := range v.Asserted[t] {
			ids = append(ids, r.ID)
		}
		sort.Strings(ids)
		parts = append(parts, fmt.Sprintf("%s<-%v", t, ids))
	}
	return fmt.Sprintf("%v", parts)
}

// OrderIndependenceReport is the outcome of CheckOrderIndependence.
type OrderIndependenceReport struct {
	Holds bool
	// Witness describes the first violation found: the item and the two
	// orders that disagreed. Empty when Holds.
	Witness string
	// PermutationsTried counts the rule orders evaluated.
	PermutationsTried int
}

// CheckOrderIndependence verifies that executing the rules in different
// orders yields identical verdicts on every item. For n ≤ exhaustiveLimit
// rules it tries all n! permutations; beyond that it samples trials random
// permutations with r. Under the staged set semantics of Verdict this holds
// by construction; the checker exists so a *modified* rule system design
// (e.g. first-match-wins) can be validated or refuted empirically, which is
// exactly the §4 proposal ("we can then prove that certain systems possess
// certain properties").
func CheckOrderIndependence(rules []*Rule, items []*catalog.Item, r *randx.Rand, trials int) OrderIndependenceReport {
	const exhaustiveLimit = 5
	rep := OrderIndependenceReport{Holds: true}

	baseline := make([]string, len(items))
	seq := NewSequentialExecutor(rules)
	for i, it := range items {
		baseline[i] = verdictFingerprint(seq.Apply(it))
	}
	rep.PermutationsTried = 1

	check := func(perm []int) bool {
		shuffled := make([]*Rule, len(rules))
		for i, j := range perm {
			shuffled[i] = rules[j]
		}
		ex := NewSequentialExecutor(shuffled)
		for i, it := range items {
			if fp := verdictFingerprint(ex.Apply(it)); fp != baseline[i] {
				rep.Holds = false
				rep.Witness = fmt.Sprintf("item %s: order %v gives %s, baseline %s",
					it.ID, perm, fp, baseline[i])
				return false
			}
		}
		rep.PermutationsTried++
		return true
	}

	if len(rules) <= exhaustiveLimit {
		perm := make([]int, len(rules))
		for i := range perm {
			perm[i] = i
		}
		permute(perm, 0, func(p []int) bool { return check(p) })
		return rep
	}
	for t := 0; t < trials; t++ {
		if !check(r.Perm(len(rules))) {
			return rep
		}
	}
	return rep
}

// permute enumerates permutations of s, calling f on each; f returning false
// stops the enumeration.
func permute(s []int, k int, f func([]int) bool) bool {
	if k == len(s) {
		return f(s)
	}
	for i := k; i < len(s); i++ {
		s[k], s[i] = s[i], s[k]
		if !permute(s, k+1, f) {
			s[k], s[i] = s[i], s[k]
			return false
		}
		s[k], s[i] = s[i], s[k]
	}
	return true
}

// Conflict is a whitelist/blacklist pair on the same target whose coverage
// intersects on the given corpus: every item in the intersection is asserted
// and vetoed simultaneously, so the blacklist silently wins. Surfacing these
// is part of "the system remains robust and predictable" (§4).
type Conflict struct {
	WhitelistID string
	BlacklistID string
	TargetType  string
	// Items is the number of corpus items where both fire.
	Items int
	// Example is one affected item ID.
	Example string
}

// FindConflicts reports whitelist/blacklist pairs with overlapping coverage
// on the corpus, using the data index to avoid the full cross product.
func FindConflicts(rules []*Rule, di *DataIndex) []Conflict {
	type cov struct {
		rule  *Rule
		items map[int32]bool
	}
	whites := map[string][]cov{}
	blacks := map[string][]cov{}
	for _, r := range rules {
		if r.Kind != Whitelist && r.Kind != Blacklist {
			continue
		}
		set := map[int32]bool{}
		for _, i := range di.Matches(r) {
			set[i] = true
		}
		if len(set) == 0 {
			continue
		}
		c := cov{rule: r, items: set}
		if r.Kind == Whitelist {
			whites[r.TargetType] = append(whites[r.TargetType], c)
		} else {
			blacks[r.TargetType] = append(blacks[r.TargetType], c)
		}
	}
	var out []Conflict
	targets := make([]string, 0, len(whites))
	for t := range whites {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		for _, w := range whites[t] {
			for _, b := range blacks[t] {
				n := 0
				example := ""
				for i := range w.items {
					if b.items[i] {
						n++
						if example == "" || di.items[i].ID < example {
							example = di.items[i].ID
						}
					}
				}
				if n > 0 {
					out = append(out, Conflict{
						WhitelistID: w.rule.ID, BlacklistID: b.rule.ID,
						TargetType: t, Items: n, Example: example,
					})
				}
			}
		}
	}
	return out
}

// VerdictsEqual reports whether two verdicts agree on final types and
// evidence. Exposed for tests of alternative executors.
func VerdictsEqual(a, b *Verdict) bool {
	if !reflect.DeepEqual(a.FinalTypes(), b.FinalTypes()) {
		return false
	}
	return verdictFingerprint(a) == verdictFingerprint(b)
}
