package core

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/obs"
)

// This file implements batch-inverted matching, the §5.3 set-oriented
// evaluation step: instead of probing the rule index once per item
// (IndexedExecutor.Apply → CandidatesFor), a whole batch is inverted into a
// token→items posting structure in one pass and joined against the rule
// index's token→rules postings, yielding (rule, candidate-items) work units.
// Units are then evaluated rule-major across workers and merged into
// positionally-aligned verdicts. The join amortizes three per-item costs:
// the candidate dedup map, the candidate output slice, and one posting-map
// probe per token occurrence (interning reduces repeats to a single cheap
// map hit). Verdicts are equivalent to the item-at-a-time executors — the
// property TestBatchMatcherEquivalenceProperty verifies.

// Metric families recorded by an instrumented BatchMatcher, alongside the
// shared core_exec_* / core_rule_* series it keeps feeding (same registry
// instances as InstrumentedExecutor, so Health() and Selectivity() keep
// working regardless of which path classified a batch).
const (
	MetricBatchBatches      = "core_batch_batches_total"
	MetricBatchItems        = "core_batch_items_total"
	MetricBatchUnits        = "core_batch_units_total"
	MetricBatchCandidates   = "core_batch_candidates_total"
	MetricBatchPruned       = "core_batch_candidates_pruned_total"
	MetricBatchInternHits   = "core_batch_intern_hits_total"
	MetricBatchInternMisses = "core_batch_intern_misses_total"
)

// batchTelemetry carries the counters an instrumented BatchMatcher records
// into. The exec-level and per-rule counters are the same registry instances
// InstrumentedExecutor uses (obs.Registry returns one counter per
// name+labels), so batch and item-at-a-time telemetry accumulate into a
// single view.
type batchTelemetry struct {
	batches    *obs.Counter
	items      *obs.Counter
	units      *obs.Counter
	candidates *obs.Counter
	pruned     *obs.Counter
	hits       *obs.Counter
	misses     *obs.Counter

	applies        *obs.Counter
	execCandidates *obs.Counter
	matched        *obs.Counter
	byRule         map[*Rule]ruleTelemetry
}

// BatchMatcher evaluates a fixed RuleIndex against item batches using the
// batch-inverted join. It is immutable after construction and safe for
// concurrent MatchBatch calls (each call builds only batch-local state).
type BatchMatcher struct {
	idx  *RuleIndex
	slot map[*Rule]int   // rule → dense slot, idx.rules input order
	tel  *batchTelemetry // nil when not instrumented
}

// NewBatchMatcher builds an uninstrumented matcher over idx.
func NewBatchMatcher(idx *RuleIndex) *BatchMatcher {
	bm := &BatchMatcher{idx: idx, slot: make(map[*Rule]int, len(idx.rules))}
	for s, r := range idx.rules {
		bm.slot[r] = s
	}
	return bm
}

// NewInstrumentedBatchMatcher builds a matcher that records batch_* metrics
// plus the shared core_exec_* / core_rule_* series into reg (obs.Default()
// when nil). labels distinguish the executor-level series, mirroring
// NewInstrumentedExecutor; per-rule series are labeled by rule ID alone.
func NewInstrumentedBatchMatcher(idx *RuleIndex, reg *obs.Registry, labels ...string) *BatchMatcher {
	if reg == nil {
		reg = obs.Default()
	}
	bm := NewBatchMatcher(idx)
	tel := &batchTelemetry{
		batches:        reg.Counter(MetricBatchBatches, labels...),
		items:          reg.Counter(MetricBatchItems, labels...),
		units:          reg.Counter(MetricBatchUnits, labels...),
		candidates:     reg.Counter(MetricBatchCandidates, labels...),
		pruned:         reg.Counter(MetricBatchPruned, labels...),
		hits:           reg.Counter(MetricBatchInternHits, labels...),
		misses:         reg.Counter(MetricBatchInternMisses, labels...),
		applies:        reg.Counter(MetricExecApplies, labels...),
		execCandidates: reg.Counter(MetricExecCandidates, labels...),
		matched:        reg.Counter(MetricExecMatched, labels...),
		byRule:         map[*Rule]ruleTelemetry{},
	}
	reg.Help(MetricBatchBatches, "batches evaluated through the batch-inverted matcher")
	reg.Help(MetricBatchUnits, "(rule, candidate-items) work units produced by the batch join")
	reg.Help(MetricBatchPruned, "duplicate candidates removed by per-unit dedup")
	for _, r := range idx.rules {
		if r.ID == "" {
			continue
		}
		tel.byRule[r] = ruleTelemetry{
			fired:     reg.Counter(MetricRuleFired, "rule", r.ID),
			effective: reg.Counter(MetricRuleEffective, "rule", r.ID),
		}
	}
	bm.tel = tel
	return bm
}

// posting is one interned batch token (or attribute name): the rules it
// activates and the items that contain it.
type posting struct {
	rules []*Rule
	items []int32
	last  int32 // last item appended — dedups repeats within one item
}

// batchUnit is one (rule, candidate-items) unit of work from the join.
type batchUnit struct {
	rule    *Rule
	cand    []int32 // sorted unique candidate item indices
	matched []int32 // prefix of cand after evaluation (in-place compaction)
}

// MatchBatch evaluates the batch and returns verdicts positionally aligned
// with items, equivalent to applying the index's rules to each item
// individually. workers <= 1 evaluates and merges inline.
func (bm *BatchMatcher) MatchBatch(items []*catalog.Item, workers int) []*Verdict {
	out := make([]*Verdict, len(items))
	if len(items) == 0 {
		if bm.tel != nil {
			bm.tel.batches.Inc()
		}
		return out
	}

	// Phase 1 — invert the batch. One pass over the items interns every
	// distinct token and attribute name: the first occurrence probes the rule
	// index once and either opens a posting or records a dead id (-1, the
	// token activates no rule); every repeat costs a single intern-map hit.
	idx := bm.idx
	var posts []posting
	var hits, misses int64
	if len(idx.byToken) > 0 {
		tokID := make(map[string]int32, 256)
		for i, it := range items {
			for _, tok := range it.TitleTokens() {
				id, ok := tokID[tok]
				if !ok {
					misses++
					rs := idx.byToken[tok]
					if rs == nil {
						tokID[tok] = -1
						continue
					}
					id = int32(len(posts))
					tokID[tok] = id
					posts = append(posts, posting{rules: rs, last: -1})
				} else {
					hits++
					if id < 0 {
						continue
					}
				}
				p := &posts[id]
				if p.last == int32(i) {
					continue // same token twice in one title
				}
				p.last = int32(i)
				p.items = append(p.items, int32(i))
			}
		}
	}
	if len(idx.byAttr) > 0 {
		// Attribute names are interned by their raw spelling, so ToLower runs
		// once per distinct spelling in the batch instead of once per item.
		attrID := make(map[string]int32, 16)
		for i, it := range items {
			for attr := range it.Attrs {
				id, ok := attrID[attr]
				if !ok {
					misses++
					rs := idx.byAttr[strings.ToLower(attr)]
					if rs == nil {
						attrID[attr] = -1
						continue
					}
					id = int32(len(posts))
					attrID[attr] = id
					posts = append(posts, posting{rules: rs, last: -1})
				} else {
					hits++
					if id < 0 {
						continue
					}
				}
				p := &posts[id]
				if p.last == int32(i) {
					continue
				}
				p.last = int32(i)
				p.items = append(p.items, int32(i))
			}
		}
	}

	// Phase 2 — join postings against the rule index: concatenate each
	// posting's item list onto every rule it activates, then sort+dedup each
	// rule's candidates into a work unit. Units are emitted in rule input
	// order, so evaluation and merge are deterministic. Always-scan rules
	// (pure wildcards, no witness token) get the full batch, matching
	// CandidatesFor's unconditional scan list.
	cand := make([][]int32, len(idx.rules))
	for pi := range posts {
		p := &posts[pi]
		for _, r := range p.rules {
			s := bm.slot[r]
			cand[s] = append(cand[s], p.items...)
		}
	}
	for _, r := range idx.always {
		all := make([]int32, len(items))
		for i := range all {
			all[i] = int32(i)
		}
		cand[bm.slot[r]] = all
	}
	units := make([]batchUnit, 0, len(idx.rules))
	var rawTotal, candTotal int64
	for s, r := range idx.rules {
		c := cand[s]
		if len(c) == 0 {
			continue
		}
		rawTotal += int64(len(c))
		c = sortedUnique(c)
		candTotal += int64(len(c))
		units = append(units, batchUnit{rule: r, cand: c})
	}

	// Phase 3 — evaluate units rule-major. Work units vary wildly in size
	// (a head-token rule may carry half the batch, a rare-token rule two
	// items), so workers pull units off a shared atomic cursor instead of
	// static sharding. Each unit compacts its candidate slice in place down
	// to the matching prefix; slices are unit-private, and item reads
	// (TitleTokens cache, Attrs, compiled patterns) are all
	// concurrency-safe.
	ew := workers
	if ew > len(units) {
		ew = len(units)
	}
	if ew <= 1 {
		for ui := range units {
			units[ui].eval(items)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < ew; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ui := int(cursor.Add(1)) - 1
					if ui >= len(units) {
						return
					}
					units[ui].eval(items)
				}
			}()
		}
		wg.Wait()
	}

	// Phase 4 — merge matched units into per-item verdicts, sharded by item
	// range so each verdict is owned by exactly one goroutine. Within a
	// shard, units absorb in rule input order — the same order
	// SequentialExecutor uses. Each unit's matched list is sorted, so the
	// shard's slice of it is found by binary search.
	mw := workers
	if mw > len(items) {
		mw = len(items)
	}
	if mw <= 1 {
		mergeUnits(out, units, items, 0, len(items))
	} else {
		var wg sync.WaitGroup
		chunk := (len(items) + mw - 1) / mw
		for w := 0; w < mw; w++ {
			lo := w * chunk
			if lo >= len(items) {
				break
			}
			hi := lo + chunk
			if hi > len(items) {
				hi = len(items)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mergeUnits(out, units, items, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	if bm.tel != nil {
		bm.recordTelemetry(items, units, out, rawTotal, candTotal, hits, misses)
	}
	return out
}

// eval runs the unit's rule over its candidates, compacting cand in place to
// the matching prefix.
func (u *batchUnit) eval(items []*catalog.Item) {
	n := 0
	for _, i := range u.cand {
		if u.rule.Matches(items[i]) {
			u.cand[n] = i
			n++
		}
	}
	u.matched = u.cand[:n]
}

// mergeUnits scatters every unit's matches in [lo,hi) into out, allocating
// the verdicts for that shard.
func mergeUnits(out []*Verdict, units []batchUnit, items []*catalog.Item, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = newVerdict()
	}
	for ui := range units {
		u := &units[ui]
		m := u.matched
		a := sort.Search(len(m), func(k int) bool { return m[k] >= int32(lo) })
		for ; a < len(m) && m[a] < int32(hi); a++ {
			out[m[a]].absorb(u.rule)
		}
	}
}

// recordTelemetry settles the batch's counters after the verdicts are final:
// batch_* families, the shared exec-level applies/candidates/matched, and
// per-rule fired/effective (effectiveness uses the finished verdicts, same
// semantics as InstrumentedExecutor's post-veto pass).
func (bm *BatchMatcher) recordTelemetry(items []*catalog.Item, units []batchUnit, out []*Verdict, rawTotal, candTotal, hits, misses int64) {
	tel := bm.tel
	tel.batches.Inc()
	tel.items.Add(int64(len(items)))
	tel.units.Add(int64(len(units)))
	tel.candidates.Add(candTotal)
	tel.pruned.Add(rawTotal - candTotal)
	tel.hits.Add(hits)
	tel.misses.Add(misses)
	tel.applies.Add(int64(len(items)))
	tel.execCandidates.Add(candTotal)
	var matchedTotal int64
	for ui := range units {
		u := &units[ui]
		matchedTotal += int64(len(u.matched))
		rt, ok := tel.byRule[u.rule]
		if !ok {
			continue
		}
		rt.fired.Add(int64(len(u.matched)))
		switch u.rule.Kind {
		case Whitelist, Gate, AttrExists:
			t := u.rule.TargetType
			eff := int64(0)
			for _, i := range u.matched {
				v := out[i]
				if len(v.Vetoed[t]) == 0 && (v.Allowed == nil || v.Allowed[t]) {
					eff++
				}
			}
			rt.effective.Add(eff)
		}
	}
	tel.matched.Add(matchedTotal)
}

// sortedUnique sorts s ascending and removes duplicates in place. The
// already-sorted unique case (single-key rules produce it naturally) is
// detected in one scan and returned untouched.
func sortedUnique(s []int32) []int32 {
	sorted := true
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[n] = s[i]
			n++
		}
	}
	return s[:n]
}
