package core

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/catalog"
)

// collectChanges subscribes and returns the slice pointer + cancel.
func collectChanges(rb *Rulebase) (*[]Change, func(), uint64) {
	var mu sync.Mutex
	out := &[]Change{}
	cancel, ver := rb.SubscribeChanges(func(ch Change) {
		mu.Lock()
		*out = append(*out, ch)
		mu.Unlock()
	})
	return out, cancel, ver
}

func scriptedMutations(t *testing.T, rb *Rulebase) {
	t.Helper()
	if _, err := rb.Add(mustRule(NewWhitelist("phones?", "phone")), "ana"); err != nil {
		t.Fatal(err)
	}
	guarded := mustRule(NewWhitelist("jeans?", "jeans"))
	guarded.Guards = []Guard{{Attr: "price", Op: "<", Value: "100"}}
	if _, err := rb.Add(guarded, "ana"); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(mustRule(NewAttrValue("brand", "apple", []string{"phone", "laptop"})), "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(mustRule(NewBlacklist("phone case", "phone")), "bob"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Disable("R000001", "ana", "precision dip"); err != nil {
		t.Fatal(err)
	}
	if err := rb.UpdateConfidence("R000002", 0.42, "eval"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Enable("R000001", "ana", "recovered"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Retire("R000004", "ana", "subsumed"); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeChangesDelivery: every mutation arrives as a Change whose
// Entry equals the audit entry, and replaying the stream onto a fresh
// rulebase reproduces the serialized state byte for byte.
func TestSubscribeChangesDelivery(t *testing.T) {
	rb := NewRulebase()
	got, cancel, ver := collectChanges(rb)
	defer cancel()
	if ver != 0 {
		t.Fatalf("registration version = %d, want 0", ver)
	}

	scriptedMutations(t, rb)

	audit := rb.Audit()
	if len(*got) != len(audit) {
		t.Fatalf("got %d changes, want %d", len(*got), len(audit))
	}
	for i, ch := range *got {
		if ch.Entry != audit[i] {
			t.Fatalf("change %d entry = %+v, want audit %+v", i, ch.Entry, audit[i])
		}
		if ch.Entry.Action == "add" && ch.Rule == nil {
			t.Fatalf("add change %d has no rule payload", i)
		}
	}

	// Replay onto a fresh rulebase: identical version, audit, serialized form.
	rb2 := NewRulebase()
	for _, ch := range *got {
		if err := rb2.ApplyChange(ch); err != nil {
			t.Fatalf("ApplyChange(%d): %v", ch.Entry.Version, err)
		}
	}
	if rb2.Version() != rb.Version() {
		t.Fatalf("replayed version = %d, want %d", rb2.Version(), rb.Version())
	}
	if !reflect.DeepEqual(rb2.Audit(), rb.Audit()) {
		t.Fatal("replayed audit log differs from live audit log")
	}
	live, err := json.Marshal(rb)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := json.Marshal(rb2)
	if err != nil {
		t.Fatal(err)
	}
	if string(live) != string(replayed) {
		t.Fatalf("replayed state differs:\nlive:     %s\nreplayed: %s", live, replayed)
	}
}

// TestSubscribeChangesRegistrationVersion: only mutations after the returned
// registration version are delivered, with no gap.
func TestSubscribeChangesRegistrationVersion(t *testing.T) {
	rb := NewRulebase()
	if _, err := rb.Add(mustRule(NewWhitelist("early", "t")), "a"); err != nil {
		t.Fatal(err)
	}
	got, cancel, ver := collectChanges(rb)
	defer cancel()
	if ver != 1 {
		t.Fatalf("registration version = %d, want 1", ver)
	}
	if _, err := rb.Add(mustRule(NewWhitelist("late", "t")), "a"); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].Entry.Version != 2 {
		t.Fatalf("delivered = %+v, want exactly version 2", *got)
	}
	cancel()
	if _, err := rb.Add(mustRule(NewWhitelist("after", "t")), "a"); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatal("change delivered after cancel")
	}
}

// TestChangeRuleFrozenAtMutation: the Rule payload of an "add" change is a
// deep copy — later live mutations must not reach into it.
func TestChangeRuleFrozenAtMutation(t *testing.T) {
	rb := NewRulebase()
	got, cancel, _ := collectChanges(rb)
	defer cancel()
	id, err := rb.Add(mustRule(NewWhitelist("phones?", "phone")), "ana")
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Disable(id, "ana", "off"); err != nil {
		t.Fatal(err)
	}
	add := (*got)[0]
	if add.Rule.Status != Active {
		t.Fatalf("add change rule status = %v, want Active (frozen at mutation time)", add.Rule.Status)
	}
	live := rb.Get(id)
	if live.Status != Disabled {
		t.Fatalf("live rule status = %v, want Disabled", live.Status)
	}
}

// TestApplyChangeValidation: gaps, unknown actions, missing payloads, and
// duplicate adds are rejected without mutating state.
func TestApplyChangeValidation(t *testing.T) {
	rb := NewRulebase()
	r := mustRule(NewWhitelist("x", "t"))
	r.ID = "R000001"
	r.CreatedAt, r.UpdatedAt = 1, 1

	if err := rb.ApplyChange(Change{Entry: AuditEntry{Version: 5, Action: "add", RuleID: "R000001"}, Rule: r}); err == nil {
		t.Fatal("version gap accepted")
	}
	if err := rb.ApplyChange(Change{Entry: AuditEntry{Version: 1, Action: "add", RuleID: "R000001"}}); err == nil {
		t.Fatal("add without rule payload accepted")
	}
	if err := rb.ApplyChange(Change{Entry: AuditEntry{Version: 1, Action: "frobnicate", RuleID: "R000001"}}); err == nil {
		t.Fatal("unknown action accepted")
	}
	if err := rb.ApplyChange(Change{Entry: AuditEntry{Version: 1, Action: "disable", RuleID: "nope"}}); err == nil {
		t.Fatal("disable of unknown rule accepted")
	}
	if rb.Version() != 0 || len(rb.Audit()) != 0 {
		t.Fatalf("failed replays mutated state: version=%d audit=%d", rb.Version(), len(rb.Audit()))
	}
	if err := rb.ApplyChange(Change{Entry: AuditEntry{Version: 1, Action: "add", RuleID: "R000001"}, Rule: r, NextID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rb.ApplyChange(Change{Entry: AuditEntry{Version: 2, Action: "add", RuleID: "R000001"}, Rule: r, NextID: 1}); err == nil {
		t.Fatal("duplicate add accepted")
	}
}

// TestApplyChangeDoesNotEcho: replay must not be re-delivered to change
// subscribers (a durability layer would otherwise re-log its own replay),
// but version subscribers do hear it (serving engines must rebuild).
func TestApplyChangeDoesNotEcho(t *testing.T) {
	src := NewRulebase()
	stream, cancel, _ := collectChanges(src)
	scriptedMutations(t, src)
	cancel()

	dst := NewRulebase()
	echoes, cancelEcho, _ := collectChanges(dst)
	defer cancelEcho()
	var versions []uint64
	cancelVer := dst.Subscribe(func(v uint64) { versions = append(versions, v) })
	defer cancelVer()

	for _, ch := range *stream {
		if err := dst.ApplyChange(ch); err != nil {
			t.Fatal(err)
		}
	}
	if len(*echoes) != 0 {
		t.Fatalf("replay echoed %d changes to change subscribers", len(*echoes))
	}
	if len(versions) != len(*stream) {
		t.Fatalf("version subscribers heard %d notifications, want %d", len(versions), len(*stream))
	}
}

// TestApplyChangeNextID: a replayed rulebase assigns the same auto-IDs to
// future adds as the live one would.
func TestApplyChangeNextID(t *testing.T) {
	src := NewRulebase()
	stream, cancel, _ := collectChanges(src)
	if _, err := src.Add(mustRule(NewWhitelist("a", "t")), "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Add(mustRule(NewWhitelist("b", "t")), "x"); err != nil {
		t.Fatal(err)
	}
	cancel()

	dst := NewRulebase()
	for _, ch := range *stream {
		if err := dst.ApplyChange(ch); err != nil {
			t.Fatal(err)
		}
	}
	idLive, err := src.Add(mustRule(NewWhitelist("c", "t")), "x")
	if err != nil {
		t.Fatal(err)
	}
	idReplayed, err := dst.Add(mustRule(NewWhitelist("c", "t")), "x")
	if err != nil {
		t.Fatal(err)
	}
	if idLive != idReplayed {
		t.Fatalf("post-replay auto-ID %q != live auto-ID %q", idReplayed, idLive)
	}
}

// TestAddAutoIDCollision: an auto-assigned ID colliding with an explicitly
// chosen one errors instead of silently overwriting (the pre-fix code path
// replaced the rule in the map while leaving a duplicate in the order list).
func TestAddAutoIDCollision(t *testing.T) {
	rb := NewRulebase()
	explicit := mustRule(NewWhitelist("x", "t"))
	explicit.ID = "R000001"
	if _, err := rb.Add(explicit, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(mustRule(NewWhitelist("y", "t")), "a"); err == nil {
		t.Fatal("auto-ID collision with explicit rule did not error")
	}
	// The burned draw leaves a hole; the next auto add succeeds with R000002.
	id, err := rb.Add(mustRule(NewWhitelist("z", "t")), "a")
	if err != nil {
		t.Fatal(err)
	}
	if id != "R000002" {
		t.Fatalf("next auto ID = %q, want R000002", id)
	}
	if rb.Len() != 2 {
		t.Fatalf("rulebase has %d rules, want 2", rb.Len())
	}
}

// TestRuleClone: deep copy of slices, shared compiled pattern.
func TestRuleClone(t *testing.T) {
	r := mustRule(NewAttrValue("brand", "apple", []string{"phone"}))
	r.Guards = []Guard{{Attr: "price", Op: "<", Value: "10"}}
	c := r.Clone()
	c.AllowedTypes[0] = "mutated"
	c.Guards[0].Attr = "mutated"
	if r.AllowedTypes[0] != "phone" || r.Guards[0].Attr != "price" {
		t.Fatal("Clone shares slice storage with the original")
	}
	p := mustRule(NewWhitelist("phones?", "phone"))
	pc := p.Clone()
	if pc.Pattern() != p.Pattern() {
		t.Fatal("Clone should share the immutable compiled pattern")
	}
	if (*Rule)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

// TestDataIndexItemsCopy: the accessor must not leak the internal slice the
// posting lists index into.
func TestDataIndexItemsCopy(t *testing.T) {
	first := item("alpha phone", nil)
	second := item("beta jeans", nil)
	first.ID, second.ID = "1", "2"
	di := NewDataIndex([]*catalog.Item{first, second})
	got := di.Items()
	got[0], got[1] = got[1], got[0] // caller reorders its copy
	again := di.Items()
	if again[0].ID != "1" || again[1].ID != "2" {
		t.Fatal("DataIndex.Items leaked its internal slice: caller reorder visible")
	}
	if di.Size() != 2 {
		t.Fatalf("Size = %d, want 2", di.Size())
	}
}

// TestVerdictEvidenceCopy: appending to the returned evidence must not
// clobber the verdict's internal slice (verdicts are shared via the cache).
func TestVerdictEvidenceCopy(t *testing.T) {
	ex := NewSequentialExecutor([]*Rule{mustRule(NewWhitelist("phones?", "phone"))})
	v := ex.Apply(item("shiny phone", nil))
	ev := v.Evidence("phone")
	if len(ev) != 1 {
		t.Fatalf("evidence = %d rules, want 1", len(ev))
	}
	ev[0] = nil
	if v.Evidence("phone")[0] == nil {
		t.Fatal("Verdict.Evidence leaked its internal slice")
	}
}

// BenchmarkRulebaseUpdateConfidence guards the mutation critical section:
// the audit-note formatting must stay outside the lock.
func BenchmarkRulebaseUpdateConfidence(b *testing.B) {
	rb := NewRulebase()
	id, err := rb.Add(mustRule(NewWhitelist("phones?", "phone")), "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rb.UpdateConfidence(id, float64(i%1000)/1000, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRulebaseMutateContended measures the mutation path with serving
// readers hammering ActiveView — the scenario the lock-scope fix targets:
// work moved outside rb.mu shortens every reader's wait.
func BenchmarkRulebaseMutateContended(b *testing.B) {
	rb := NewRulebase()
	ids := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		id, err := rb.Add(mustRule(NewWhitelist(fmt.Sprintf("tok%d", i), "t")), "bench")
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rb.ActiveView()
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rb.UpdateConfidence(ids[i%len(ids)], 0.5, "bench"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
