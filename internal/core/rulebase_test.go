package core

import (
	"encoding/json"
	"sync"
	"testing"
)

func newTestRulebase(t *testing.T) *Rulebase {
	t.Helper()
	rb := NewRulebase()
	add := func(r *Rule, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Add(r, "ana"); err != nil {
			t.Fatal(err)
		}
	}
	add(NewWhitelist("rings?", "rings"))
	add(NewWhitelist("diamond.*trio sets?", "rings"))
	add(NewBlacklist("toy rings?", "rings"))
	add(NewAttrExists("isbn", "books"))
	add(NewAttrValue("Brand Name", "apex", []string{"laptop computers", "smart phones"}))
	add(NewFilter("vitamins"))
	return rb
}

func TestAddAssignsIDsAndClock(t *testing.T) {
	rb := newTestRulebase(t)
	if rb.Len() != 6 {
		t.Fatalf("len = %d", rb.Len())
	}
	if rb.Version() != 6 {
		t.Fatalf("version = %d", rb.Version())
	}
	r := rb.Active()[0]
	if r.ID == "" || r.CreatedAt == 0 || r.Author != "ana" {
		t.Fatalf("metadata not stamped: %+v", r)
	}
}

func TestAddDuplicateIDRejected(t *testing.T) {
	rb := newTestRulebase(t)
	dup := mustRule(NewWhitelist("rings?", "rings"))
	dup.ID = rb.Active()[0].ID
	if _, err := rb.Add(dup, "ana"); err == nil {
		t.Fatal("duplicate id should be rejected")
	}
	if _, err := rb.Add(nil, "ana"); err == nil {
		t.Fatal("nil rule should be rejected")
	}
}

func TestDisableEnableRetire(t *testing.T) {
	rb := newTestRulebase(t)
	id := rb.Active()[0].ID
	if err := rb.Disable(id, "ana", "misfiring"); err != nil {
		t.Fatal(err)
	}
	if rb.Get(id).Status != Disabled {
		t.Fatal("rule should be disabled")
	}
	if len(rb.Active()) != 5 {
		t.Fatalf("active = %d, want 5", len(rb.Active()))
	}
	if err := rb.Enable(id, "dev", "fixed"); err != nil {
		t.Fatal(err)
	}
	if rb.Get(id).Status != Active {
		t.Fatal("rule should be active again")
	}
	if err := rb.Retire(id, "dev", "superseded"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Enable(id, "dev", "oops"); err == nil {
		t.Fatal("retired rules must not be re-enabled")
	}
	if err := rb.Disable("nope", "ana", ""); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestScaleDownScaleUp(t *testing.T) {
	rb := newTestRulebase(t)
	// Scale down everything touching "rings" — the §2.2 drill.
	ids := rb.DisableWhere(func(r *Rule) bool { return r.TargetType == "rings" }, "ana", "rings degraded")
	if len(ids) != 3 {
		t.Fatalf("want 3 rings rules disabled, got %d", len(ids))
	}
	for _, r := range rb.Active() {
		if r.TargetType == "rings" {
			t.Fatal("active rings rule survived scale-down")
		}
	}
	rb.EnableAll(ids, "dev", "restored")
	if got := len(rb.Active()); got != 6 {
		t.Fatalf("restore failed: %d active", got)
	}
}

func TestAuditTrail(t *testing.T) {
	rb := newTestRulebase(t)
	id := rb.Active()[0].ID
	_ = rb.Disable(id, "ana", "drill")
	audit := rb.Audit()
	if len(audit) != 7 {
		t.Fatalf("audit entries = %d, want 7", len(audit))
	}
	last := audit[len(audit)-1]
	if last.Action != "disable" || last.RuleID != id || last.Actor != "ana" {
		t.Fatalf("bad audit entry: %+v", last)
	}
	// Versions strictly increase.
	for i := 1; i < len(audit); i++ {
		if audit[i].Version <= audit[i-1].Version {
			t.Fatal("audit versions not increasing")
		}
	}
}

func TestUpdateConfidence(t *testing.T) {
	rb := newTestRulebase(t)
	id := rb.Active()[0].ID
	if err := rb.UpdateConfidence(id, 0.87, "eval"); err != nil {
		t.Fatal(err)
	}
	if rb.Get(id).Confidence != 0.87 {
		t.Fatal("confidence not updated")
	}
	if err := rb.UpdateConfidence("nope", 0.5, "eval"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestActiveKindFilter(t *testing.T) {
	rb := newTestRulebase(t)
	wl := rb.Active(Whitelist)
	if len(wl) != 2 {
		t.Fatalf("whitelists = %d", len(wl))
	}
	both := rb.Active(Whitelist, Blacklist)
	if len(both) != 3 {
		t.Fatalf("whitelist+blacklist = %d", len(both))
	}
}

func TestByTargetAndTargets(t *testing.T) {
	rb := newTestRulebase(t)
	by := rb.ByTarget()
	if len(by["rings"]) != 3 {
		t.Fatalf("rings rules = %d", len(by["rings"]))
	}
	targets := rb.TargetsSorted()
	want := []string{"books", "rings", "vitamins"}
	if len(targets) != 3 || targets[0] != want[0] || targets[2] != want[2] {
		t.Fatalf("targets = %v", targets)
	}
}

func TestStats(t *testing.T) {
	rb := newTestRulebase(t)
	s := rb.Stats()
	if s.Total != 6 || s.ByKind["whitelist"] != 2 || s.TargetTypes != 3 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.ByStatus["active"] != 6 {
		t.Fatalf("status counts wrong: %+v", s.ByStatus)
	}
}

func TestRulebaseJSONRoundTrip(t *testing.T) {
	rb := newTestRulebase(t)
	_ = rb.Disable(rb.Active()[0].ID, "ana", "x")
	data, err := json.Marshal(rb)
	if err != nil {
		t.Fatal(err)
	}
	var back Rulebase
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != rb.Len() || back.Version() != rb.Version() {
		t.Fatal("round trip changed counts")
	}
	if len(back.Audit()) != len(rb.Audit()) {
		t.Fatal("audit lost in round trip")
	}
	// IDs continue from the serialized counter — no collisions.
	id, err := back.Add(mustRule(NewWhitelist("jeans?", "jeans")), "ana")
	if err != nil {
		t.Fatal(err)
	}
	if back.Get(id) == nil {
		t.Fatal("new rule not retrievable")
	}
	for _, r := range back.All() {
		if r.ID == id && r.CreatedAt <= rb.Version() {
			t.Fatal("clock did not resume after round trip")
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	rb := newTestRulebase(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch i % 4 {
				case 0:
					_, _ = rb.Add(mustRule(NewFilter("vitamins")), "w")
				case 1:
					rb.Active()
				case 2:
					rb.Stats()
				case 3:
					rb.Audit()
				}
			}
		}(w)
	}
	wg.Wait()
	if rb.Len() != 6+8*25 {
		t.Fatalf("concurrent adds lost: %d", rb.Len())
	}
}

func TestInsertionOrderStable(t *testing.T) {
	rb := newTestRulebase(t)
	all := rb.All()
	for i := 1; i < len(all); i++ {
		if all[i].CreatedAt <= all[i-1].CreatedAt {
			t.Fatal("All() not in insertion order")
		}
	}
}
