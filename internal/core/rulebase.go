package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// AuditEntry records one management action on the rulebase. The audit log is
// what lets a first-responder analyst answer "what changed before accuracy
// degraded?" (§2.2's ongoing-system requirement).
type AuditEntry struct {
	Version uint64 `json:"version"`
	Action  string `json:"action"` // add / update / disable / enable / retire
	RuleID  string `json:"rule_id"`
	Actor   string `json:"actor"`
	Note    string `json:"note,omitempty"`
}

// Rulebase is a thread-safe, versioned repository of rules: the system of
// record that §4 argues industrial systems lack ("tens of thousands of rules
// managed today in an ad-hoc fashion"). Every mutation bumps a logical clock
// and appends to the audit log.
type Rulebase struct {
	mu      sync.RWMutex
	rules   map[string]*Rule
	order   []string // insertion order for deterministic iteration
	version uint64
	audit   []AuditEntry
	obs     *obs.Registry // nil = uninstrumented

	// nextID is the auto-ID counter. Atomic (not guarded by mu) so Add can
	// assign the ID — and render the allocating audit note from it — before
	// entering the critical section.
	nextID atomic.Int64

	// Mutation subscribers (see Subscribe and SubscribeChanges). Guarded
	// separately from mu so notifications run outside the rulebase lock and
	// subscribers may call back into the rulebase (e.g. to take an
	// ActiveView). Lock order: mu before subMu, never the reverse.
	subMu   sync.RWMutex
	subs    map[int]func(version uint64)
	chSubs  map[int]func(Change)
	nextSub int
}

// MetricRulebaseMutations counts rulebase mutations by action label
// (add / disable / enable / retire / update).
const MetricRulebaseMutations = "core_rulebase_mutations_total"

// Instrument attaches an observability registry; every subsequent mutation
// increments MetricRulebaseMutations{action=...}. Pass nil to detach.
func (rb *Rulebase) Instrument(reg *obs.Registry) {
	rb.mu.Lock()
	rb.obs = reg
	rb.mu.Unlock()
}

// countMutation records one mutation; callers hold rb.mu.
func (rb *Rulebase) countMutation(action string) {
	if rb.obs != nil {
		rb.obs.Counter(MetricRulebaseMutations, "action", action).Inc()
	}
}

// NewRulebase returns an empty rulebase.
func NewRulebase() *Rulebase {
	return &Rulebase{rules: map[string]*Rule{}}
}

// Version returns the current logical clock value.
func (rb *Rulebase) Version() uint64 {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	return rb.version
}

// ActiveView returns the logical clock and the active rules (all kinds, in
// insertion order) in one consistent read: both come from a single critical
// section, so the pair describes exactly one rulebase state. This is the
// primitive the snapshot-isolated serving layer (internal/serve) builds on —
// reading Version() and Active() separately can interleave with a concurrent
// mutation and yield a torn (version, rules) pair.
func (rb *Rulebase) ActiveView() (version uint64, active []*Rule) {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	active = make([]*Rule, 0, len(rb.order))
	for _, id := range rb.order {
		if r := rb.rules[id]; r.Status == Active {
			active = append(active, r)
		}
	}
	return rb.version, active
}

// Subscribe registers fn to run after every completed mutation, with the
// version that mutation produced. Notifications are delivered outside the
// rulebase lock (subscribers may safely read the rulebase) and on the
// mutating goroutine, so fn must be fast and non-blocking — typically a
// non-blocking send that wakes an async rebuild loop. The returned cancel
// removes the subscription.
func (rb *Rulebase) Subscribe(fn func(version uint64)) (cancel func()) {
	rb.subMu.Lock()
	if rb.subs == nil {
		rb.subs = map[int]func(uint64){}
	}
	id := rb.nextSub
	rb.nextSub++
	rb.subs[id] = fn
	rb.subMu.Unlock()
	return func() {
		rb.subMu.Lock()
		delete(rb.subs, id)
		rb.subMu.Unlock()
	}
}

// notify delivers a mutation notification; callers must NOT hold rb.mu.
func (rb *Rulebase) notify(version uint64) {
	rb.subMu.RLock()
	if len(rb.subs) == 0 {
		rb.subMu.RUnlock()
		return
	}
	fns := make([]func(uint64), 0, len(rb.subs))
	for _, fn := range rb.subs {
		fns = append(fns, fn)
	}
	rb.subMu.RUnlock()
	for _, fn := range fns {
		fn(version)
	}
}

// Len returns the total number of rules (all statuses).
func (rb *Rulebase) Len() int {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	return len(rb.rules)
}

// Add inserts a rule, assigning its ID and clock stamps. The actor is
// recorded in the audit log and as the rule author when the rule has none.
func (rb *Rulebase) Add(r *Rule, actor string) (string, error) {
	id, ch, err := rb.addLocked(r, actor)
	if err != nil {
		return "", err
	}
	rb.notify(ch.Entry.Version)
	rb.notifyChange(ch)
	return id, nil
}

func (rb *Rulebase) addLocked(r *Rule, actor string) (string, Change, error) {
	if r == nil {
		return "", Change{}, fmt.Errorf("core: nil rule")
	}
	// Assign the auto-ID and render the audit note before taking rb.mu: both
	// allocate (fmt formatting over the whole rule), and the serving path
	// contends on this lock for every ActiveView. Auto-IDs are drawn from an
	// atomic counter, so a draw burned on a later validation error simply
	// leaves a hole in the sequence.
	if r.ID == "" {
		r.ID = fmt.Sprintf("R%06d", rb.nextID.Add(1))
	}
	note := r.String()
	rb.mu.Lock()
	if _, exists := rb.rules[r.ID]; exists {
		rb.mu.Unlock()
		return "", Change{}, fmt.Errorf("core: rule id %q already present", r.ID)
	}
	rb.version++
	r.CreatedAt = rb.version
	r.UpdatedAt = rb.version
	if r.Author == "" {
		r.Author = actor
	}
	rb.rules[r.ID] = r
	rb.order = append(rb.order, r.ID)
	entry := AuditEntry{rb.version, "add", r.ID, actor, note}
	rb.audit = append(rb.audit, entry)
	rb.countMutation("add")
	ch := Change{Entry: entry}
	if rb.hasChangeSubs() {
		// Freeze the rule content at mutation time: once rb.mu is released
		// the inserted rule is shared and may be mutated again before the
		// change record is consumed.
		ch.Rule = r.Clone()
		ch.NextID = int(rb.nextID.Load())
	}
	rb.mu.Unlock()
	return r.ID, ch, nil
}

// AddAll inserts a batch of rules, stopping at the first error.
func (rb *Rulebase) AddAll(rules []*Rule, actor string) error {
	for _, r := range rules {
		if _, err := rb.Add(r, actor); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the rule with the given id, or nil.
func (rb *Rulebase) Get(id string) *Rule {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	return rb.rules[id]
}

// setStatus transitions a rule's lifecycle state.
func (rb *Rulebase) setStatus(id string, st Status, action, actor, note string) error {
	changed, ch, err := rb.setStatusLocked(id, st, action, actor, note)
	if err != nil {
		return err
	}
	if changed {
		rb.notify(ch.Entry.Version)
		rb.notifyChange(ch)
	}
	return nil
}

func (rb *Rulebase) setStatusLocked(id string, st Status, action, actor, note string) (bool, Change, error) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	r, ok := rb.rules[id]
	if !ok {
		return false, Change{}, fmt.Errorf("core: no rule %q", id)
	}
	if r.Status == Retired && st != Retired {
		return false, Change{}, fmt.Errorf("core: rule %q is retired and cannot be %s", id, action)
	}
	if r.Status == st {
		return false, Change{}, nil
	}
	rb.version++
	r.Status = st
	r.UpdatedAt = rb.version
	entry := AuditEntry{rb.version, action, id, actor, note}
	rb.audit = append(rb.audit, entry)
	rb.countMutation(action)
	return true, Change{Entry: entry, Status: st}, nil
}

// Disable turns a rule off — the per-rule "scale down" of §3.2 ("if that
// rule misclassifies widely, we can simply disable it, with minimal impacts
// on the rest of the system").
func (rb *Rulebase) Disable(id, actor, note string) error {
	return rb.setStatus(id, Disabled, "disable", actor, note)
}

// Enable re-activates a disabled rule ("restore the system to the previous
// state quickly").
func (rb *Rulebase) Enable(id, actor, note string) error {
	return rb.setStatus(id, Active, "enable", actor, note)
}

// Retire permanently removes a rule from execution, keeping it for audit.
func (rb *Rulebase) Retire(id, actor, note string) error {
	return rb.setStatus(id, Retired, "retire", actor, note)
}

// DisableWhere disables every active rule for which pred returns true and
// returns the affected IDs — the bulk "scale down the bad parts" operation
// (e.g. all rules targeting clothes types when clothes classification goes
// bad). The returned IDs can be passed to EnableAll to restore.
func (rb *Rulebase) DisableWhere(pred func(*Rule) bool, actor, note string) []string {
	rb.mu.Lock()
	ids := make([]string, 0)
	for _, id := range rb.order {
		r := rb.rules[id]
		if r.Status == Active && pred(r) {
			ids = append(ids, id)
		}
	}
	rb.mu.Unlock()
	for _, id := range ids {
		_ = rb.Disable(id, actor, note)
	}
	return ids
}

// EnableAll re-enables the given rule IDs, ignoring retired rules.
func (rb *Rulebase) EnableAll(ids []string, actor, note string) {
	for _, id := range ids {
		_ = rb.Enable(id, actor, note)
	}
}

// UpdateConfidence records a fresh precision estimate for a rule.
func (rb *Rulebase) UpdateConfidence(id string, conf float64, actor string) error {
	ch, err := rb.updateConfidenceLocked(id, conf, actor)
	if err != nil {
		return err
	}
	rb.notify(ch.Entry.Version)
	rb.notifyChange(ch)
	return nil
}

func (rb *Rulebase) updateConfidenceLocked(id string, conf float64, actor string) (Change, error) {
	// The audit note allocates; render it before entering the critical
	// section (this is the hottest mutation — every precision re-estimate).
	note := fmt.Sprintf("confidence=%.3f", conf)
	rb.mu.Lock()
	defer rb.mu.Unlock()
	r, ok := rb.rules[id]
	if !ok {
		return Change{}, fmt.Errorf("core: no rule %q", id)
	}
	rb.version++
	r.Confidence = conf
	r.UpdatedAt = rb.version
	entry := AuditEntry{rb.version, "update", id, actor, note}
	rb.audit = append(rb.audit, entry)
	rb.countMutation("update")
	return Change{Entry: entry, Confidence: conf}, nil
}

// Active returns active rules, optionally filtered by kinds (empty = all
// kinds), in insertion order.
func (rb *Rulebase) Active(kinds ...Kind) []*Rule {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []*Rule
	for _, id := range rb.order {
		r := rb.rules[id]
		if r.Status != Active {
			continue
		}
		if len(want) > 0 && !want[r.Kind] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// All returns every rule regardless of status, in insertion order.
func (rb *Rulebase) All() []*Rule {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	out := make([]*Rule, 0, len(rb.order))
	for _, id := range rb.order {
		out = append(out, rb.rules[id])
	}
	return out
}

// ByTarget returns active rules grouped by target type.
func (rb *Rulebase) ByTarget() map[string][]*Rule {
	out := map[string][]*Rule{}
	for _, r := range rb.Active() {
		if r.TargetType != "" {
			out[r.TargetType] = append(out[r.TargetType], r)
		}
	}
	return out
}

// CountByStatus tallies rules per lifecycle status.
func (rb *Rulebase) CountByStatus() map[Status]int {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	out := map[Status]int{}
	for _, r := range rb.rules {
		out[r.Status]++
	}
	return out
}

// Audit returns a copy of the audit log.
func (rb *Rulebase) Audit() []AuditEntry {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	return append([]AuditEntry(nil), rb.audit...)
}

// Stats summarizes the rulebase the way §3.3 reports Chimera's: rule counts
// by kind and status, and the number of distinct target types.
type Stats struct {
	Total       int
	ByKind      map[string]int
	ByStatus    map[string]int
	TargetTypes int
}

// Stats computes summary statistics.
func (rb *Rulebase) Stats() Stats {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	s := Stats{ByKind: map[string]int{}, ByStatus: map[string]int{}}
	targets := map[string]bool{}
	for _, r := range rb.rules {
		s.Total++
		s.ByKind[r.Kind.String()]++
		s.ByStatus[r.Status.String()]++
		if r.TargetType != "" {
			targets[r.TargetType] = true
		}
	}
	s.TargetTypes = len(targets)
	return s
}

// rulebaseJSON is the serialized form.
type rulebaseJSON struct {
	Version uint64       `json:"version"`
	NextID  int          `json:"next_id"`
	Rules   []*Rule      `json:"rules"`
	Audit   []AuditEntry `json:"audit"`
}

// MarshalJSON implements json.Marshaler.
func (rb *Rulebase) MarshalJSON() ([]byte, error) {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	rules := make([]*Rule, 0, len(rb.order))
	for _, id := range rb.order {
		rules = append(rules, rb.rules[id])
	}
	return json.Marshal(rulebaseJSON{
		Version: rb.version, NextID: int(rb.nextID.Load()), Rules: rules, Audit: rb.audit,
	})
}

// UnmarshalJSON implements json.Unmarshaler. A successful load counts as one
// mutation for subscribers: they are notified with the loaded version, and
// change subscribers receive an ActionLoad pseudo-change (a wholesale
// replacement is not an incremental mutation — a durability layer responds by
// re-snapshotting, not appending).
func (rb *Rulebase) UnmarshalJSON(data []byte) error {
	var j rulebaseJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if err := rb.loadLocked(&j); err != nil {
		return err
	}
	rb.notify(j.Version)
	rb.notifyChange(Change{Entry: AuditEntry{Version: j.Version, Action: ActionLoad}})
	return nil
}

func (rb *Rulebase) loadLocked(j *rulebaseJSON) error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.rules = make(map[string]*Rule, len(j.Rules))
	rb.order = rb.order[:0]
	for _, r := range j.Rules {
		if _, dup := rb.rules[r.ID]; dup {
			return fmt.Errorf("core: duplicate rule id %q in serialized rulebase", r.ID)
		}
		rb.rules[r.ID] = r
		rb.order = append(rb.order, r.ID)
	}
	rb.version = j.Version
	rb.nextID.Store(int64(j.NextID))
	rb.audit = j.Audit
	return nil
}

// TargetsSorted returns the sorted list of distinct active target types.
func (rb *Rulebase) TargetsSorted() []string {
	set := map[string]bool{}
	for _, r := range rb.Active() {
		if r.TargetType != "" {
			set[r.TargetType] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
