package core

import (
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/randx"
)

// corpusAndRules builds a catalog corpus plus a realistic mixed rulebase.
func corpusAndRules(t *testing.T, nItems int) ([]*catalog.Item, []*Rule) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: 31, NumTypes: 50})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: nItems, Epoch: 1})
	specs := []struct {
		kind   Kind
		src    string
		target string
	}{
		{Whitelist, "rings?", "rings"},
		{Whitelist, "diamond.*trio sets?", "rings"},
		{Whitelist, "(motor | engine) oils?", "motor oil"},
		{Whitelist, "jeans?", "jeans"},
		{Whitelist, "denim.*jeans?", "jeans"},
		{Whitelist, "(satchel | purse | tote) ", "handbags"},
		{Whitelist, "laptop (bag | case | sleeve)s?", "laptop bags & cases"},
		{Blacklist, "olive oils?", "motor oil"},
		{Blacklist, "laptop (bag | case | sleeve)s?", "laptop computers"},
		{Whitelist, "laptops?", "laptop computers"},
	}
	var rules []*Rule
	for i, s := range specs {
		var r *Rule
		var err error
		switch s.kind {
		case Whitelist:
			r, err = NewWhitelist(s.src, s.target)
		case Blacklist:
			r, err = NewBlacklist(s.src, s.target)
		}
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		r.ID = s.src + "->" + s.target
		rules = append(rules, r)
	}
	isbn := mustRule(NewAttrExists("isbn", "books"))
	isbn.ID = "isbn->books"
	rules = append(rules, isbn)
	brand := mustRule(NewAttrValue("Brand Name", "apex", []string{"laptop computers", "smart phones", "tablets", "watches", "headphones"}))
	brand.ID = "brand-apex"
	rules = append(rules, brand)
	return items, rules
}

func TestSequentialVerdictSemantics(t *testing.T) {
	_, rules := corpusAndRules(t, 0)
	ex := NewSequentialExecutor(rules)

	v := ex.Apply(item("Platinaire Diamond Accent Ring", nil))
	if got := v.FinalTypes(); len(got) != 1 || got[0] != "rings" {
		t.Fatalf("final types = %v", got)
	}
	if len(v.Evidence("rings")) == 0 {
		t.Fatal("evidence missing")
	}

	// Blacklist veto: olive oil is matched by nothing whitelisting, plus
	// vetoed anyway.
	v = ex.Apply(item("extra virgin olive oil 500ml", nil))
	for _, ft := range v.FinalTypes() {
		if ft == "motor oil" {
			t.Fatal("olive oil escaped the blacklist")
		}
	}

	// Whitelist + blacklist interplay: laptop bag asserts bags and vetoes
	// laptop computers.
	v = ex.Apply(item("padded laptop bag 15.6 inch", nil))
	finals := v.FinalTypes()
	if len(finals) != 1 || finals[0] != "laptop bags & cases" {
		t.Fatalf("laptop bag finals = %v", finals)
	}
}

func TestAttrValueConstrains(t *testing.T) {
	_, rules := corpusAndRules(t, 0)
	ex := NewSequentialExecutor(rules)
	// "apex ring" matches rings whitelist but brand constraint excludes it.
	v := ex.Apply(item("apex diamond ring", map[string]string{"Brand Name": "apex"}))
	if got := v.FinalTypes(); len(got) != 0 {
		t.Fatalf("brand constraint should suppress rings: %v", got)
	}
	// Constraint alone asserts nothing.
	v = ex.Apply(item("mystery gadget", map[string]string{"Brand Name": "apex"}))
	if got := v.FinalTypes(); len(got) != 0 {
		t.Fatalf("constraint alone asserted: %v", got)
	}
	// Whitelist inside the allowed set survives.
	v = ex.Apply(item("apex laptop 8gb", map[string]string{"Brand Name": "apex"}))
	if got := v.FinalTypes(); len(got) != 1 || got[0] != "laptop computers" {
		t.Fatalf("allowed whitelist suppressed: %v", got)
	}
}

func TestAttrExistsInVerdict(t *testing.T) {
	_, rules := corpusAndRules(t, 0)
	ex := NewSequentialExecutor(rules)
	v := ex.Apply(item("The Long Afternoon", map[string]string{"isbn": "9781234567890"}))
	if got := v.FinalTypes(); len(got) != 1 || got[0] != "books" {
		t.Fatalf("isbn rule did not classify book: %v", got)
	}
}

func TestExplainMentionsRules(t *testing.T) {
	_, rules := corpusAndRules(t, 0)
	ex := NewSequentialExecutor(rules)
	v := ex.Apply(item("Diamond Ring", nil))
	s := v.Explain()
	if s == "" || !contains(s, "rings") {
		t.Fatalf("explanation unusable: %q", s)
	}
	empty := ex.Apply(item("mystery object", nil)).Explain()
	if !contains(empty, "no type survives") {
		t.Fatalf("empty verdict explanation: %q", empty)
	}
}

// TestExplainAssertedOnly: a clean single-assertion verdict lists the type
// with its supporting rules and nothing else.
func TestExplainAssertedOnly(t *testing.T) {
	w := mustRule(NewWhitelist("rings?", "rings"))
	w.ID = "W1"
	v := NewSequentialExecutor([]*Rule{w}).Apply(item("diamond ring", nil))
	s := v.Explain()
	if !contains(s, "type rings because:") || !contains(s, "+ [W1") {
		t.Fatalf("asserted-only explanation wrong: %q", s)
	}
	if contains(s, "vetoed by") || contains(s, "no type survives") {
		t.Fatalf("asserted-only explanation has spurious sections: %q", s)
	}
}

// TestExplainVetoedWithAssertion: when a whitelist assertion is overridden
// by a blacklist, the explanation names both sides — the analyst sees why
// the type was asserted AND why it did not survive.
func TestExplainVetoedWithAssertion(t *testing.T) {
	w := mustRule(NewWhitelist("oils?", "motor oil"))
	w.ID = "W1"
	b := mustRule(NewBlacklist("olive oils?", "motor oil"))
	b.ID = "B1"
	v := NewSequentialExecutor([]*Rule{w, b}).Apply(item("extra virgin olive oil", nil))
	s := v.Explain()
	if !contains(s, "no type survives") {
		t.Fatalf("vetoed verdict should say nothing survives: %q", s)
	}
	if !contains(s, "type motor oil vetoed by:") || !contains(s, "- [B1") {
		t.Fatalf("veto section missing: %q", s)
	}
	// Veto sections only appear for types that were actually asserted:
	// a lone veto with no assertion stays silent.
	v2 := NewSequentialExecutor([]*Rule{b}).Apply(item("extra virgin olive oil", nil))
	if s2 := v2.Explain(); contains(s2, "vetoed by") {
		t.Fatalf("unasserted veto should not be explained: %q", s2)
	}
}

// TestExplainContradictoryAllowed: contradictory AttrValue constraints empty
// the Allowed set, so even an asserted type yields "no type survives".
func TestExplainContradictoryAllowed(t *testing.T) {
	a := mustRule(NewAttrValue("Brand Name", "apex", []string{"laptop computers"}))
	b := mustRule(NewAttrValue("Carrier", "unlocked", []string{"smart phones"}))
	w := mustRule(NewWhitelist("laptops?", "laptop computers"))
	w.ID = "W1"
	v := NewSequentialExecutor([]*Rule{a, b, w}).Apply(
		item("apex laptop", map[string]string{"Brand Name": "apex", "Carrier": "unlocked"}))
	if v.Allowed == nil || len(v.Allowed) != 0 {
		t.Fatalf("constraints should contradict: %v", v.Allowed)
	}
	s := v.Explain()
	if !contains(s, "no type survives") {
		t.Fatalf("contradictory constraints should leave no survivor: %q", s)
	}
	if contains(s, "type laptop computers because:") {
		t.Fatalf("suppressed type must not be explained as surviving: %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestIndexedMatchesSequential(t *testing.T) {
	items, rules := corpusAndRules(t, 2000)
	seq := NewSequentialExecutor(rules)
	idx := NewIndexedExecutor(rules)
	for _, it := range items {
		if !VerdictsEqual(seq.Apply(it), idx.Apply(it)) {
			t.Fatalf("executors disagree on %q", it.Title())
		}
	}
}

func TestIndexedMatchesSequentialProperty(t *testing.T) {
	// Random titles out of arbitrary vocabulary must also agree.
	_, rules := corpusAndRules(t, 0)
	seq := NewSequentialExecutor(rules)
	idx := NewIndexedExecutor(rules)
	vocab := []string{"ring", "rings", "diamond", "trio", "set", "motor", "oil", "olive",
		"laptop", "bag", "jeans", "denim", "satchel", "x", "y", "z"}
	f := func(seed uint64, n uint8) bool {
		r := randx.New(seed)
		tokens := make([]string, int(n)%12)
		for i := range tokens {
			tokens[i] = vocab[r.Intn(len(vocab))]
		}
		it := &catalog.Item{ID: "q", Attrs: map[string]string{"Title": ""}}
		// Bypass tokenization: construct via title join.
		it.Attrs["Title"] = join(tokens)
		return VerdictsEqual(seq.Apply(it), idx.Apply(it))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func join(tokens []string) string {
	out := ""
	for i, t := range tokens {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}

func TestRuleIndexSelectivity(t *testing.T) {
	items, rules := corpusAndRules(t, 500)
	idx := NewRuleIndex(rules)
	if idx.Len() != len(rules) {
		t.Fatalf("indexed %d of %d rules", idx.Len(), len(rules))
	}
	totalCands := 0
	for _, it := range items {
		totalCands += len(idx.CandidatesFor(it))
	}
	avg := float64(totalCands) / float64(len(items))
	if avg >= float64(len(rules)) {
		t.Fatalf("index has no selectivity: avg %.1f of %d", avg, len(rules))
	}
}

func TestDataIndexMatchesBruteForce(t *testing.T) {
	items, rules := corpusAndRules(t, 800)
	di := NewDataIndex(items)
	for _, r := range rules {
		if r.Kind == Filter {
			continue
		}
		want := map[int32]bool{}
		for i, it := range items {
			if r.Matches(it) {
				want[int32(i)] = true
			}
		}
		got := di.Matches(r)
		if len(got) != len(want) {
			t.Fatalf("rule %s: index found %d, brute force %d", r.ID, len(got), len(want))
		}
		for _, i := range got {
			if !want[i] {
				t.Fatalf("rule %s: spurious match %d", r.ID, i)
			}
		}
		if di.Coverage(r) != len(want) {
			t.Fatalf("coverage mismatch for %s", r.ID)
		}
	}
}

func TestExecuteBatchParallelAgreesWithSerial(t *testing.T) {
	items, rules := corpusAndRules(t, 1500)
	ex := NewIndexedExecutor(rules)
	serial := ExecuteBatch(ex, items, 1)
	parallel := ExecuteBatch(ex, items, 8)
	if len(serial) != len(parallel) {
		t.Fatal("result length mismatch")
	}
	for i := range serial {
		if !VerdictsEqual(serial[i], parallel[i]) {
			t.Fatalf("parallel execution diverged at %d", i)
		}
	}
}

func TestExecuteBatchMoreWorkersThanItems(t *testing.T) {
	items, rules := corpusAndRules(t, 3)
	ex := NewSequentialExecutor(rules)
	out := ExecuteBatch(ex, items, 16)
	for i, v := range out {
		if v == nil {
			t.Fatalf("missing verdict %d", i)
		}
	}
}

func TestVerdictContradictoryConstraints(t *testing.T) {
	a := mustRule(NewAttrValue("Brand Name", "apex", []string{"laptop computers"}))
	b := mustRule(NewAttrValue("Carrier", "unlocked", []string{"smart phones"}))
	w := mustRule(NewWhitelist("laptops?", "laptop computers"))
	ex := NewSequentialExecutor([]*Rule{a, b, w})
	v := ex.Apply(item("apex laptop", map[string]string{"Brand Name": "apex", "Carrier": "unlocked"}))
	if len(v.Allowed) != 0 {
		t.Fatalf("contradictory constraints should empty the allowed set: %v", v.Allowed)
	}
	if len(v.FinalTypes()) != 0 {
		t.Fatal("nothing should survive contradictory constraints")
	}
}

func TestVerdictRuleIDProvenance(t *testing.T) {
	w1 := mustRule(NewWhitelist("laptops?", "laptop computers"))
	w1.ID = "w-laptop"
	w2 := mustRule(NewWhitelist("laptop (bag | case)s?", "laptop bags & cases"))
	w2.ID = "w-laptop-bag"
	bl := mustRule(NewBlacklist("laptop (bag | case)s?", "laptop computers"))
	bl.ID = "b-laptop-bag"
	av := mustRule(NewAttrValue("Brand Name", "apex", []string{"laptop computers", "laptop bags & cases"}))
	av.ID = "c-brand"
	ex := NewSequentialExecutor([]*Rule{w1, w2, bl, av})

	v := ex.Apply(item("apex laptop bag", map[string]string{"Brand Name": "apex"}))
	// All asserting + constraining matches appear in FiredRuleIDs, sorted.
	if got := v.FiredRuleIDs(); len(got) != 3 ||
		got[0] != "c-brand" || got[1] != "w-laptop" || got[2] != "w-laptop-bag" {
		t.Fatalf("FiredRuleIDs = %v", got)
	}
	// The vetoing blacklist rule is named, not just the vetoed type.
	if got := v.VetoingRuleIDs(); len(got) != 1 || got[0] != "b-laptop-bag" {
		t.Fatalf("VetoingRuleIDs = %v", got)
	}

	// No matches: both lists are empty (nil), not panics.
	empty := ex.Apply(item("garden hose", nil))
	if got := empty.FiredRuleIDs(); len(got) != 0 {
		t.Fatalf("FiredRuleIDs on no-match = %v", got)
	}
	if got := empty.VetoingRuleIDs(); len(got) != 0 {
		t.Fatalf("VetoingRuleIDs on no-match = %v", got)
	}

	// Duplicate IDs collapse.
	dup := mustRule(NewWhitelist("hoses?", "garden"))
	dup.ID = "w-dup"
	dup2 := mustRule(NewWhitelist("garden hoses?", "garden"))
	dup2.ID = "w-dup"
	v2 := NewSequentialExecutor([]*Rule{dup, dup2}).Apply(item("garden hose", nil))
	if got := v2.FiredRuleIDs(); len(got) != 1 || got[0] != "w-dup" {
		t.Fatalf("duplicate IDs not collapsed: %v", got)
	}
}
