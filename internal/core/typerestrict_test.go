package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTypeRestrictPaperExample(t *testing.T) {
	// §4: "if the title contains any word from a given dictionary then the
	// product is either a PC or a laptop".
	dict, err := NewTypeRestrict("(desktop | workstation | ssd | motherboard | ram)",
		[]string{"desktop computers", "laptop computers"})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := NewWhitelist("towers?", "cooling towers")
	if err != nil {
		t.Fatal(err)
	}
	wl2, err := NewWhitelist("(desktop | tower)", "desktop computers")
	if err != nil {
		t.Fatal(err)
	}
	ex := NewSequentialExecutor([]*Rule{dict, wl, wl2})

	// The constraint kills the cooling-tower assertion and keeps the
	// desktop assertion.
	v := ex.Apply(item("gaming tower ssd 1tb", nil))
	got := v.FinalTypes()
	if len(got) != 1 || got[0] != "desktop computers" {
		t.Fatalf("constraint should keep only computer types: %v", got)
	}
	// Without dictionary words, the cooling-tower rule is unconstrained.
	v = ex.Apply(item("evaporative cooling tower kit", nil))
	found := false
	for _, ft := range v.FinalTypes() {
		if ft == "cooling towers" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unconstrained item lost its assertion: %v", v.FinalTypes())
	}
}

func TestTypeRestrictValidation(t *testing.T) {
	if _, err := NewTypeRestrict("x", nil); err == nil {
		t.Fatal("empty allowed set should fail")
	}
	if _, err := NewTypeRestrict("(((", []string{"a"}); err == nil {
		t.Fatal("bad pattern should fail")
	}
	if _, err := NewTypeRestrict(`(a | \syn)`, []string{"a"}); err == nil {
		t.Fatal("syn slot should fail")
	}
}

func TestTypeRestrictConstrainsOnly(t *testing.T) {
	dict := mustRule(NewTypeRestrict("gizmo", []string{"gadgets"}))
	ex := NewSequentialExecutor([]*Rule{dict})
	v := ex.Apply(item("amazing gizmo deluxe", nil))
	if len(v.FinalTypes()) != 0 {
		t.Fatalf("constraints must not assert types: %v", v.FinalTypes())
	}
	if v.Allowed == nil || !v.Allowed["gadgets"] {
		t.Fatalf("allowed set missing: %v", v.Allowed)
	}
}

func TestTypeRestrictStringAndJSON(t *testing.T) {
	r := mustRule(NewTypeRestrict("(pc | desktop)", []string{"desktop computers", "laptop computers"}))
	if !strings.Contains(r.String(), "type-restrict") || !strings.Contains(r.String(), "one of") {
		t.Fatalf("String(): %s", r)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Rule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != TypeRestrict || len(back.AllowedTypes) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	if !back.Matches(item("budget pc bundle", nil)) {
		t.Fatal("round-tripped pattern lost semantics")
	}
}

func TestTypeRestrictIndexed(t *testing.T) {
	dict := mustRule(NewTypeRestrict("(desktop | tower)", []string{"desktop computers"}))
	wl := mustRule(NewWhitelist("towers?", "cooling towers"))
	seq := NewSequentialExecutor([]*Rule{dict, wl})
	idx := NewIndexedExecutor([]*Rule{dict, wl})
	for _, title := range []string{"gaming tower", "cooling tower kit", "office desk"} {
		it := item(title, nil)
		if !VerdictsEqual(seq.Apply(it), idx.Apply(it)) {
			t.Fatalf("executors disagree on %q", title)
		}
	}
}

func TestTypeRestrictDuplicatesKeyedByAllowedSet(t *testing.T) {
	rb := NewRulebase()
	a := mustRule(NewTypeRestrict("(pc | desktop)", []string{"desktop computers"}))
	b := mustRule(NewTypeRestrict("(pc | desktop)", []string{"laptop computers"}))
	c := mustRule(NewTypeRestrict("(pc | desktop)", []string{"desktop computers"}))
	addRules(t, rb, a, b, c)
	dups := FindDuplicates(rb.Active())
	if len(dups) != 1 {
		t.Fatalf("only the identical-allowed pair is a duplicate: %v", dups)
	}
}

func TestTypeRestrictExcludedFromSubsumption(t *testing.T) {
	rb := NewRulebase()
	general := mustRule(NewTypeRestrict("pc", []string{"desktop computers"}))
	specific := mustRule(NewTypeRestrict("gaming.*pc", []string{"desktop computers"}))
	addRules(t, rb, general, specific)
	if pairs := FindSubsumed(rb.Active()); len(pairs) != 0 {
		t.Fatalf("constraint rules must not be subsumption-analyzed: %v", pairs)
	}
}
