package core

import "testing"

// TestSubscribeNotifications: every completed mutation notifies subscribers
// with the version it produced; no-op or failed mutations stay silent;
// cancel stops delivery.
func TestSubscribeNotifications(t *testing.T) {
	rb := NewRulebase()
	var got []uint64
	cancel := rb.Subscribe(func(v uint64) { got = append(got, v) })

	id, err := rb.Add(mustRule(NewWhitelist("rings?", "rings")), "ana")
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Disable(id, "ana", "test"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Enable(id, "ana", "test"); err != nil {
		t.Fatal(err)
	}
	if err := rb.UpdateConfidence(id, 0.5, "ana"); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("notifications = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("notifications = %v, want %v", got, want)
		}
	}

	// A failed mutation (enabling an already-active rule is a no-op status
	// change; unknown IDs error) must not notify.
	before := len(got)
	_ = rb.Enable("no-such-rule", "ana", "test")
	if len(got) != before {
		t.Fatalf("failed mutation notified: %v", got)
	}

	// Subscribers may re-enter the rulebase: the notification runs outside
	// the rulebase lock.
	cancel2 := rb.Subscribe(func(v uint64) {
		if rv := rb.Version(); rv < v {
			t.Errorf("re-entrant Version() = %d behind notified %d", rv, v)
		}
		_ = rb.Active()
	})
	if _, err := rb.Add(mustRule(NewWhitelist("jeans?", "jeans")), "ana"); err != nil {
		t.Fatal(err)
	}
	cancel2()

	cancel()
	after := len(got)
	if _, err := rb.Add(mustRule(NewWhitelist("oils?", "oils")), "ana"); err != nil {
		t.Fatal(err)
	}
	if len(got) != after {
		t.Fatalf("cancelled subscriber still notified: %v", got)
	}
}

// TestActiveViewConsistency: ActiveView returns the version and the active
// rules from one critical section, equal to Version()+Active() when quiesced,
// and the returned slice is detached from later mutations.
func TestActiveViewConsistency(t *testing.T) {
	rb := NewRulebase()
	ids := make([]string, 0, 3)
	for _, src := range []string{"rings?", "jeans?", "oils?"} {
		id, err := rb.Add(mustRule(NewWhitelist(src, "t-"+src)), "ana")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := rb.Disable(ids[1], "ana", "test"); err != nil {
		t.Fatal(err)
	}

	ver, active := rb.ActiveView()
	if ver != rb.Version() {
		t.Fatalf("ActiveView version %d, Version() %d", ver, rb.Version())
	}
	plain := rb.Active()
	if len(active) != len(plain) {
		t.Fatalf("ActiveView has %d rules, Active() has %d", len(active), len(plain))
	}
	for i := range plain {
		if active[i].ID != plain[i].ID {
			t.Fatalf("ActiveView order diverges at %d: %s vs %s", i, active[i].ID, plain[i].ID)
		}
	}

	// Later mutations don't reach into the returned slice.
	if err := rb.Disable(ids[0], "ana", "test"); err != nil {
		t.Fatal(err)
	}
	if len(active) != len(plain) {
		t.Fatal("ActiveView slice mutated by a later Disable")
	}
}
