package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/randx"
)

// randomBatchRules builds a mixed-kind rule population over a small shared
// vocabulary, deliberately including the index's edge cases: pure-wildcard
// patterns (no witness token → always-scan list), attribute rules with mixed
// attr-name casing, type restricts, and blacklists that veto what the
// whitelists assert. IDs are assigned manually so verdict fingerprints (which
// key evidence by rule ID) can distinguish rules without a Rulebase.
func randomBatchRules(t *testing.T, r *randx.Rand) []*Rule {
	t.Helper()
	vocab := []string{
		"ring", "rings?", "diamond", "toy", "oil", "oils?", "engine",
		"motor", "sander", "wheel", "jeans?", "denim", "truck", "gold",
	}
	types := []string{"rings", "oils", "tools", "jeans", "toys"}
	attrs := []string{"Brand", "brand", "Material", "Count"}

	n := 5 + r.Intn(20)
	rules := make([]*Rule, 0, n)
	for i := 0; i < n; i++ {
		src := vocab[r.Intn(len(vocab))]
		target := types[r.Intn(len(types))]
		var (
			rule *Rule
			err  error
		)
		switch r.Intn(8) {
		case 0, 1:
			rule, err = NewWhitelist(src, target)
		case 2:
			rule, err = NewWhitelist(src+".*"+vocab[r.Intn(len(vocab))], target)
		case 3:
			rule, err = NewBlacklist(src, target)
		case 4:
			rule, err = NewAttrExists(attrs[r.Intn(len(attrs))], target)
		case 5:
			rule, err = NewAttrValue(attrs[r.Intn(len(attrs))], "acme",
				[]string{target, types[r.Intn(len(types))]})
		case 6:
			rule, err = NewTypeRestrict(src, []string{target, types[r.Intn(len(types))]})
		default:
			// Pure wildcard: IndexKeys is empty, so the rule lands on the
			// index's unconditional always-scan list.
			rule, err = NewWhitelist(`\w+`, target)
		}
		if err != nil {
			t.Fatalf("rule %d: %v", i, err)
		}
		rule.ID = fmt.Sprintf("R%03d", i)
		rules = append(rules, rule)
	}
	return rules
}

// randomBatchItems draws a batch with the item edge cases the matcher must
// handle: empty titles, titles of repeated tokens, attribute-only items, and
// nil-attr zero values.
func randomBatchItems(r *randx.Rand, size int) []*catalog.Item {
	titles := []string{
		"gold diamond ring", "toy ring", "engine oil for trucks",
		"denim jeans", "sander wheel wheel wheel", "", "motor oil",
		"unrelated words entirely", "gold gold gold",
	}
	items := make([]*catalog.Item, size)
	for i := range items {
		attrs := map[string]string{}
		if r.Intn(3) > 0 {
			attrs["Title"] = titles[r.Intn(len(titles))]
		}
		switch r.Intn(4) {
		case 0:
			attrs["Brand"] = "acme"
		case 1:
			attrs["brand"] = "other"
		case 2:
			attrs["Material"] = "acme"
		}
		items[i] = &catalog.Item{ID: fmt.Sprintf("i%d", i), Attrs: attrs}
	}
	return items
}

// TestBatchMatcherEquivalenceProperty is the tentpole's correctness
// property: BatchMatcher ≡ IndexedExecutor ≡ SequentialExecutor. For random
// rulebases × random batches, all three paths must produce identical final
// types and evidence fingerprints, positionally aligned — including empty
// batches, sub-batches sharing item pointers, and both serial and parallel
// worker counts.
func TestBatchMatcherEquivalenceProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		rules := randomBatchRules(t, r)
		items := randomBatchItems(r, r.Intn(60))

		seq := NewSequentialExecutor(rules)
		idx := NewIndexedExecutor(rules)
		bm := NewBatchMatcher(idx.Index())

		want := ExecuteBatchItemwise(seq, items, 1)
		itemwise := ExecuteBatchItemwise(idx, items, 3)
		for _, workers := range []int{1, 3} {
			got := bm.MatchBatch(items, workers)
			if len(got) != len(items) {
				t.Logf("seed %d: %d verdicts for %d items", seed, len(got), len(items))
				return false
			}
			for i := range items {
				if !VerdictsEqual(want[i], got[i]) {
					t.Logf("seed %d workers %d: batch diverges from sequential on item %d:\nseq: %s\nbatch: %s",
						seed, workers, i, want[i].Explain(), got[i].Explain())
					return false
				}
				if !VerdictsEqual(itemwise[i], got[i]) {
					t.Logf("seed %d workers %d: batch diverges from itemwise-indexed on item %d",
						seed, workers, i)
					return false
				}
			}
		}

		// Items shared by pointer across overlapping sub-batches: the matcher
		// keeps only batch-local state, so re-matching any sub-slice must
		// reproduce the full-batch verdicts at the shifted positions.
		if len(items) > 4 {
			lo, hi := len(items)/4, 3*len(items)/4
			sub := bm.MatchBatch(items[lo:hi], 2)
			for i := range sub {
				if !VerdictsEqual(want[lo+i], sub[i]) {
					t.Logf("seed %d: sub-batch diverges at item %d", seed, lo+i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchMatcherEmptyBatch: zero items produce zero verdicts on every path.
func TestBatchMatcherEmptyBatch(t *testing.T) {
	rules := randomBatchRules(t, randx.New(1))
	bm := NewBatchMatcher(NewIndexedExecutor(rules).Index())
	for _, workers := range []int{1, 4} {
		if got := bm.MatchBatch(nil, workers); len(got) != 0 {
			t.Fatalf("empty batch produced %d verdicts", len(got))
		}
	}
}

// TestBatchMatcherConcurrentBatches: one matcher is safe for concurrent
// MatchBatch calls over overlapping item sets (the serving layer shares a
// snapshot's matcher across in-flight batches).
func TestBatchMatcherConcurrentBatches(t *testing.T) {
	r := randx.New(7)
	rules := randomBatchRules(t, r)
	items := randomBatchItems(r, 50)
	idx := NewIndexedExecutor(rules)
	bm := NewBatchMatcher(idx.Index())
	want := ExecuteBatchItemwise(NewSequentialExecutor(rules), items, 1)

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			lo := g % 3
			sub := items[lo:]
			got := bm.MatchBatch(sub, 3)
			for i := range sub {
				if !VerdictsEqual(want[lo+i], got[i]) {
					done <- fmt.Errorf("goroutine %d: verdict %d diverges", g, i)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestInstrumentedBatchTelemetry checks the batch_* counter families and
// that the batch path keeps feeding the shared exec-level and per-rule
// series InstrumentedExecutor owns — one telemetry view across both paths.
func TestInstrumentedBatchTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	w1, err := NewWhitelist("gold", "rings")
	if err != nil {
		t.Fatal(err)
	}
	w1.ID = "W1"
	b1, err := NewBlacklist("toy", "rings")
	if err != nil {
		t.Fatal(err)
	}
	b1.ID = "B1"
	exec := NewInstrumentedExecutor(NewIndexedExecutor([]*Rule{w1, b1}), reg, "exec", "rules")

	items := []*catalog.Item{
		{ID: "a", Attrs: map[string]string{"Title": "gold ring"}},
		{ID: "b", Attrs: map[string]string{"Title": "toy gold ring"}},
		{ID: "c", Attrs: map[string]string{"Title": "plain band"}},
		{ID: "d", Attrs: map[string]string{"Title": "gold gold band"}},
	}
	got := exec.ApplyBatch(items, 2)
	if len(got[0].FinalTypes()) != 1 || got[0].FinalTypes()[0] != "rings" {
		t.Fatalf("item a: %v", got[0].FinalTypes())
	}
	if len(got[1].FinalTypes()) != 0 {
		t.Fatalf("item b should be vetoed, got %v", got[1].FinalTypes())
	}

	if v := reg.Counter(MetricBatchBatches, "exec", "rules").Value(); v != 1 {
		t.Fatalf("batches = %d", v)
	}
	if v := reg.Counter(MetricBatchItems, "exec", "rules").Value(); v != 4 {
		t.Fatalf("batch items = %d", v)
	}
	// Units: W1 has candidates (a,b,d), B1 has (b) → 2 units.
	if v := reg.Counter(MetricBatchUnits, "exec", "rules").Value(); v != 2 {
		t.Fatalf("units = %d", v)
	}
	// 5 distinct tokens across the titles (gold, ring, toy, plain, band) →
	// 5 intern misses; the 5 repeat occurrences are hits.
	if v := reg.Counter(MetricBatchInternMisses, "exec", "rules").Value(); v != 5 {
		t.Fatalf("intern misses = %d", v)
	}
	if v := reg.Counter(MetricBatchInternHits, "exec", "rules").Value(); v != 5 {
		t.Fatalf("intern hits = %d", v)
	}
	// Candidate dedup: item d contributes "gold" twice but intra-item dedup
	// drops the repeat before the join, so nothing is pruned here...
	if v := reg.Counter(MetricBatchCandidates, "exec", "rules").Value(); v != 4 {
		t.Fatalf("candidates = %d", v)
	}
	// ...and the shared exec-level series accumulate from the batch path.
	if v := reg.Counter(MetricExecApplies, "exec", "rules").Value(); v != 4 {
		t.Fatalf("applies = %d", v)
	}
	if v := reg.Counter(MetricExecMatched, "exec", "rules").Value(); v != 4 {
		t.Fatalf("matched = %d", v)
	}
	if v := reg.Counter(MetricRuleFired, "rule", "W1").Value(); v != 3 {
		t.Fatalf("W1 fired = %d", v)
	}
	// W1's assertion on item b is vetoed by B1 → effective on a and d only.
	if v := reg.Counter(MetricRuleEffective, "rule", "W1").Value(); v != 2 {
		t.Fatalf("W1 effective = %d", v)
	}

	// Health() must see batch-path telemetry (applies > 0 gates the report).
	health := exec.Health(0)
	if len(health) != 2 {
		t.Fatalf("health records = %d", len(health))
	}
	for _, h := range health {
		if h.Fired == 0 {
			t.Fatalf("rule %s shows no firings despite batch telemetry", h.RuleID)
		}
	}
}

// TestExecuteBatchDelegation: ExecuteBatch routes BatchApplier executors
// through the batch-inverted path and everything else through the itemwise
// reference path, with identical verdicts either way.
func TestExecuteBatchDelegation(t *testing.T) {
	r := randx.New(3)
	rules := randomBatchRules(t, r)
	items := randomBatchItems(r, 40)

	seq := NewSequentialExecutor(rules)
	idx := NewIndexedExecutor(rules)
	want := ExecuteBatch(seq, items, 2) // SequentialExecutor: itemwise path
	got := ExecuteBatch(idx, items, 2)  // IndexedExecutor: BatchApplier path
	for i := range items {
		if !VerdictsEqual(want[i], got[i]) {
			t.Fatalf("delegated batch path diverges on item %d", i)
		}
	}
}
