package core

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

// TestRulebaseStateMachineProperty drives the rulebase with random action
// sequences and checks the structural invariants that must hold after any
// history: the audit log length equals the version, active ∪ disabled ∪
// retired partitions the rules, retired rules never return, and IDs stay
// unique.
func TestRulebaseStateMachineProperty(t *testing.T) {
	f := func(seed uint64, nActions uint8) bool {
		r := randx.New(seed)
		rb := NewRulebase()
		var ids []string
		mutations := uint64(0)
		retired := map[string]bool{}
		sources := []string{"rings?", "jeans?", "denim.*jeans?", "(motor | engine) oils?"}
		for i := 0; i < int(nActions); i++ {
			switch r.Intn(4) {
			case 0: // add
				rule, err := NewWhitelist(sources[r.Intn(len(sources))], "t")
				if err != nil {
					return false
				}
				id, err := rb.Add(rule, "w")
				if err != nil {
					return false
				}
				ids = append(ids, id)
				mutations++
			case 1: // disable
				if len(ids) == 0 {
					continue
				}
				id := ids[r.Intn(len(ids))]
				wasActive := rb.Get(id).Status == Active
				if err := rb.Disable(id, "w", ""); err == nil && wasActive {
					mutations++
				}
			case 2: // enable
				if len(ids) == 0 {
					continue
				}
				id := ids[r.Intn(len(ids))]
				wasDisabled := rb.Get(id).Status == Disabled
				if err := rb.Enable(id, "w", ""); err == nil && wasDisabled {
					mutations++
				}
			case 3: // retire
				if len(ids) == 0 {
					continue
				}
				id := ids[r.Intn(len(ids))]
				if rb.Get(id).Status != Retired {
					if err := rb.Retire(id, "w", ""); err == nil {
						retired[id] = true
						mutations++
					}
				}
			}
		}
		// Invariants.
		if rb.Version() != mutations {
			return false
		}
		if uint64(len(rb.Audit())) != mutations {
			return false
		}
		byStatus := rb.CountByStatus()
		if byStatus[Active]+byStatus[Disabled]+byStatus[Retired] != rb.Len() {
			return false
		}
		seen := map[string]bool{}
		for _, rule := range rb.All() {
			if seen[rule.ID] {
				return false
			}
			seen[rule.ID] = true
		}
		for id := range retired {
			if rb.Get(id).Status != Retired {
				return false // retirement must be permanent
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestVerdictMonotonicityProperty: adding a whitelist rule never removes an
// existing final type unless that rule is a blacklist/constraint; adding a
// blacklist can only shrink the final set.
func TestVerdictMonotonicityProperty(t *testing.T) {
	base := []*Rule{
		mustRule(NewWhitelist("rings?", "rings")),
		mustRule(NewWhitelist("jeans?", "jeans")),
	}
	extraWL := mustRule(NewWhitelist("diamond", "rings"))
	extraBL := mustRule(NewBlacklist("toy", "rings"))

	vocab := []string{"ring", "rings", "jeans", "diamond", "toy", "x", "y"}
	f := func(seed uint64, n uint8) bool {
		r := randx.New(seed)
		tokens := make([]string, int(n)%8)
		for i := range tokens {
			tokens[i] = vocab[r.Intn(len(vocab))]
		}
		it := item(join(tokens), nil)

		before := NewSequentialExecutor(base).Apply(it).FinalTypes()
		withWL := NewSequentialExecutor(append(append([]*Rule{}, base...), extraWL)).Apply(it).FinalTypes()
		withBL := NewSequentialExecutor(append(append([]*Rule{}, base...), extraBL)).Apply(it).FinalTypes()

		// Whitelist extension: superset of final types.
		beforeSet := map[string]bool{}
		for _, ty := range before {
			beforeSet[ty] = true
		}
		wlSet := map[string]bool{}
		for _, ty := range withWL {
			wlSet[ty] = true
		}
		for ty := range beforeSet {
			if !wlSet[ty] {
				return false
			}
		}
		// Blacklist extension: subset of final types.
		blSet := map[string]bool{}
		for _, ty := range withBL {
			blSet[ty] = true
		}
		for ty := range blSet {
			if !beforeSet[ty] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexedExecutorEquivalenceWithGuardsAndRestrict extends the executor
// equivalence property to the newer rule kinds.
func TestIndexedExecutorEquivalenceWithGuardsAndRestrict(t *testing.T) {
	guarded := mustRule(NewBlacklist("apple", "smart phones"))
	guarded, _ = guarded.WithGuards(Guard{"Price", "<", "100"})
	rules := []*Rule{
		mustRule(NewWhitelist("(phone | smartphone)s?", "smart phones")),
		guarded,
		mustRule(NewTypeRestrict("(ssd | ram)", []string{"laptop computers", "desktop computers"})),
		mustRule(NewWhitelist("laptops?", "laptop computers")),
	}
	seq := NewSequentialExecutor(rules)
	idx := NewIndexedExecutor(rules)
	vocab := []string{"apple", "phone", "smartphone", "laptop", "ssd", "ram", "case", "x"}
	prices := []string{"9.99", "499.00", ""}
	r := randx.New(99)
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(6)
		tokens := make([]string, n)
		for i := range tokens {
			tokens[i] = vocab[r.Intn(len(vocab))]
		}
		attrs := map[string]string{}
		if p := prices[r.Intn(len(prices))]; p != "" {
			attrs["Price"] = p
		}
		it := item(join(tokens), attrs)
		if !VerdictsEqual(seq.Apply(it), idx.Apply(it)) {
			t.Fatalf("executors disagree on %q attrs %v", it.Title(), attrs)
		}
	}
}
