// Package obs is the zero-dependency observability layer the §4 maintenance
// agenda presupposes: detecting problematic rules, retiring dead ones, and
// monitoring crowd-time precision all require knowing which rules fire, how
// often, and where batch time goes. The package provides counters, gauges
// and fixed-bucket latency histograms with atomic hot paths, a span-based
// tracer for pipeline stages, and JSON / Prometheus-text exposition — built
// on the standard library only, so instrumented packages stay dependency
// free.
//
// Metrics are owned by a Registry. Handles are get-or-create by (name,
// labels) and are safe to cache and update from any goroutine:
//
//	reg := obs.NewRegistry()
//	applies := reg.Counter("exec_applies_total")
//	lat := reg.Histogram("exec_apply_seconds", obs.LatencyBuckets)
//	applies.Inc()
//	lat.Observe(time.Since(start).Seconds())
//
// Registry.Snapshot() freezes every metric into a serializable value that
// round-trips through JSON and renders valid Prometheus text exposition.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// LatencyBuckets is the default histogram layout for operation latencies in
// seconds: log-spaced from 1µs to 10s, wide enough for a pattern match and a
// full batch alike.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Label is one name=value metric dimension.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a floating-point metric that can go up and down.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with atomic observation. Bounds
// are upper bucket edges in ascending order; an implicit +Inf bucket catches
// the overflow.
type Histogram struct {
	name    string
	labels  []Label
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile from the bucket counts, attributing each
// observation to its bucket's upper bound. The estimate is conservative
// (never below the true quantile's bucket) and every input has a defined,
// finite-when-possible answer — dashboards dividing or alerting on quantiles
// never see a surprise +Inf or a panic:
//
//   - an empty histogram returns 0 for every q;
//   - q is clamped to [0, 1]; NaN is treated as 0 — so q=0 (and anything
//     below) returns the first non-empty bucket's bound, and q=1 (and
//     anything above) returns the last non-empty bucket's bound;
//   - a quantile landing in the +Inf overflow bucket reports the largest
//     finite bucket bound instead of +Inf (the same conservative cap
//     Prometheus's histogram_quantile applies) — the layout's resolution is
//     exhausted, not the data infinite;
//   - a histogram whose every observation overflowed (or with no finite
//     buckets at all) falls back to its mean, the only finite summary left.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break // overflow bucket: cap at the largest finite bound below
		}
	}
	if len(h.bounds) > 0 && h.count.Load() > h.counts[len(h.counts)-1].Load() {
		return h.bounds[len(h.bounds)-1]
	}
	return h.Mean()
}

// Registry owns a namespace of metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
		help:   map[string]string{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used by components that are not
// given an explicit one (CLIs dump it after a run).
func Default() *Registry { return defaultRegistry }

// validMetricName reports whether name matches the Prometheus data model for
// metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches the Prometheus data model for
// label names: [a-zA-Z_][a-zA-Z0-9_]* (colons are reserved for metric names).
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sanitizeName coerces s into a valid metric/label name by replacing every
// illegal character with '_' (and prefixing '_' when the first character is
// a digit). Used outside tests so a bad name degrades the series, not the
// process; inside tests the registry panics instead so the bad name is fixed
// at the source (see checkName).
func sanitizeName(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i := range b {
		c := b[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(allowColon && c == ':') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		b[0] = '_'
	}
	return string(b)
}

// checkMetricName validates name against the Prometheus data model. Invalid
// names panic under `go test` (catch the typo where it is written) and are
// sanitized in production (an ugly series beats a crashed server).
func checkMetricName(name string) string {
	if validMetricName(name) {
		return name
	}
	if testing.Testing() {
		panic(fmt.Sprintf("obs: invalid metric name %q (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name))
	}
	return sanitizeName(name, true)
}

// checkLabelName is checkMetricName for label names.
func checkLabelName(name string) string {
	if validLabelName(name) {
		return name
	}
	if testing.Testing() {
		panic(fmt.Sprintf("obs: invalid label name %q (want [a-zA-Z_][a-zA-Z0-9_]*)", name))
	}
	return sanitizeName(name, false)
}

// makeLabels validates and sorts variadic k,v pairs.
func makeLabels(kv []string) []Label {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %v", kv))
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: checkLabelName(kv[i]), Value: kv[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// metricKey canonicalizes (name, sorted labels) into a map key.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for (name, labels...), creating it on first
// use. Labels are alternating name,value pairs. Names and label names are
// validated against the Prometheus data model: invalid ones panic under `go
// test` and are sanitized to '_' runs in production.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	name = checkMetricName(name)
	ls := makeLabels(labels)
	key := metricKey(name, ls)
	r.mu.RLock()
	c, ok := r.counts[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counts[key]; ok {
		return c
	}
	c = &Counter{name: name, labels: ls}
	r.counts[key] = c
	return c
}

// Gauge returns the gauge for (name, labels...), creating it on first use.
// Names are validated like Counter's.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	name = checkMetricName(name)
	ls := makeLabels(labels)
	key := metricKey(name, ls)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{name: name, labels: ls}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram for (name, labels...), creating it with
// the given bucket bounds on first use. Later calls with different bounds
// return the existing histogram unchanged. Bounds must be ascending; nil
// falls back to LatencyBuckets. Names are validated like Counter's.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	name = checkMetricName(name)
	ls := makeLabels(labels)
	key := metricKey(name, ls)
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[key]; ok {
		return h
	}
	h = &Histogram{
		name:   name,
		labels: ls,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[key] = h
	return h
}

// Help attaches a description to a metric family name, emitted as a # HELP
// line in Prometheus exposition. The name is validated (and sanitized in
// production) exactly like Counter's, so the HELP line always joins the
// series it describes.
func (r *Registry) Help(name, text string) {
	name = checkMetricName(name)
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}
