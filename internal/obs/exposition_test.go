package obs

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file round-trips PrometheusText through a minimal exposition parser:
// if a scraper this simple can recover every sample (name, labels, value)
// plus HELP/TYPE metadata and cumulative bucket invariants, a real one can.

type expoSample struct {
	name   string
	labels map[string]string
	value  float64
}

type expoFamily struct {
	kind    string // counter | gauge | histogram
	help    string
	hasHelp bool
	samples []expoSample
}

// parseExposition is a deliberately minimal Prometheus text-format (0.0.4)
// parser. It enforces the structural rules a scraper relies on: TYPE before
// samples, HELP (when present) immediately before TYPE, one TYPE per family.
func parseExposition(t *testing.T, text string) map[string]*expoFamily {
	t.Helper()
	fams := map[string]*expoFamily{}
	var pendingHelp string
	var pendingName string
	havePending := false
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed HELP %q", ln, line)
			}
			pendingName, pendingHelp, havePending = name, help, true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE %q", ln, line)
			}
			name, kind := fields[0], fields[1]
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln, name)
			}
			f := &expoFamily{kind: kind}
			if havePending {
				if pendingName != name {
					t.Fatalf("line %d: HELP for %q not followed by its TYPE (got %q)", ln, pendingName, name)
				}
				f.help, f.hasHelp = pendingHelp, true
				havePending = false
			}
			fams[name] = f
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln, line)
		default:
			s := parseSampleLine(t, ln, line)
			fam := fams[familyOf(s.name)]
			if fam == nil {
				t.Fatalf("line %d: sample %q before its TYPE line", ln, s.name)
			}
			fam.samples = append(fam.samples, s)
		}
	}
	return fams
}

// familyOf strips histogram series suffixes so samples attach to their family.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseSampleLine(t *testing.T, ln int, line string) expoSample {
	t.Helper()
	s := expoSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set %q", ln, line)
		}
		for _, pair := range splitLabelPairs(line[i+1 : end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			s.labels[k] = unescapeLabel(v[1 : len(v)-1])
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: no value on %q", ln, line)
		}
	}
	v, err := parseExpoValue(strings.TrimSpace(rest))
	if err != nil {
		t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
	}
	s.value = v
	return s
}

// splitLabelPairs splits k="v" pairs on commas outside quotes.
func splitLabelPairs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	var b strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			b.WriteRune(r)
			escaped = false
		case r == '\\':
			b.WriteRune(r)
			escaped = true
		case r == '"':
			b.WriteRune(r)
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	out = append(out, b.String())
	return out
}

func unescapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\n`, "\n")
	v = strings.ReplaceAll(v, `\"`, `"`)
	v = strings.ReplaceAll(v, `\\`, `\`)
	return v
}

func parseExpoValue(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func (f *expoFamily) find(name string, want map[string]string) *expoSample {
	for i := range f.samples {
		s := &f.samples[i]
		if s.name != name || len(s.labels) != len(want) {
			continue
		}
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	return nil
}

// TestPrometheusTextRoundTrip registers counters, gauges and histograms —
// including labeled series, escaped label values and HELP text — renders the
// exposition, and re-parses it with the minimal parser above.
func TestPrometheusTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(42)
	reg.Counter("requests_total", "path", "batch-gate").Add(7)
	reg.Counter("requests_total", "path", `we"ird,\value`).Add(1)
	reg.Help("requests_total", "Requests by path.\nSecond line \\ backslash.")
	reg.Gauge("queue_depth").Set(17.5)
	reg.Gauge("temperature").Set(-3.25)

	h := reg.Histogram("latency_seconds", []float64{0.1, 0.5, 2.5})
	// Edge cases: exactly on a bound (counts in that bucket), between
	// bounds, and past the last bound (+Inf only).
	for _, v := range []float64{0.1, 0.05, 0.3, 0.5, 2.0, 99} {
		h.Observe(v)
	}
	reg.Histogram("empty_seconds", []float64{1}) // zero observations

	fams := parseExposition(t, reg.PrometheusText())

	ctr := fams["requests_total"]
	if ctr == nil || ctr.kind != "counter" {
		t.Fatalf("requests_total family = %+v", ctr)
	}
	if !ctr.hasHelp || ctr.help != `Requests by path.\nSecond line \\ backslash.` {
		t.Errorf("HELP round-trip = %q (hasHelp=%v)", ctr.help, ctr.hasHelp)
	}
	if s := ctr.find("requests_total", nil); s == nil || s.value != 42 {
		t.Errorf("unlabeled counter = %+v", s)
	}
	if s := ctr.find("requests_total", map[string]string{"path": "batch-gate"}); s == nil || s.value != 7 {
		t.Errorf("labeled counter = %+v", s)
	}
	if s := ctr.find("requests_total", map[string]string{"path": `we"ird,\value`}); s == nil || s.value != 1 {
		t.Errorf("escaped label value did not round-trip: %+v", ctr.samples)
	}

	if s := fams["queue_depth"]; s == nil || s.kind != "gauge" || s.find("queue_depth", nil).value != 17.5 {
		t.Errorf("gauge queue_depth = %+v", s)
	}
	if s := fams["temperature"]; s == nil || s.find("temperature", nil).value != -3.25 {
		t.Errorf("negative gauge = %+v", s)
	}

	checkHistogram(t, fams["latency_seconds"], "latency_seconds",
		[]float64{0.1, 0.5, 2.5}, []float64{2, 4, 5}, 6, 0.1+0.05+0.3+0.5+2.0+99)
	checkHistogram(t, fams["empty_seconds"], "empty_seconds",
		[]float64{1}, []float64{0}, 0, 0)
}

// checkHistogram verifies the scraped series against the histogram contract:
// le= buckets are cumulative and ascending, the +Inf bucket equals _count,
// and _sum matches.
func checkHistogram(t *testing.T, fam *expoFamily, name string, bounds, wantCum []float64, wantCount int64, wantSum float64) {
	t.Helper()
	if fam == nil || fam.kind != "histogram" {
		t.Fatalf("%s: family = %+v", name, fam)
	}
	var les []float64
	for _, s := range fam.samples {
		if s.name == name+"_bucket" {
			le, err := parseExpoValue(s.labels["le"])
			if err != nil {
				t.Fatalf("%s: bad le %q", name, s.labels["le"])
			}
			les = append(les, le)
		}
	}
	if !sort.Float64sAreSorted(les) {
		t.Errorf("%s: le values not ascending: %v", name, les)
	}
	if len(les) != len(bounds)+1 || !math.IsInf(les[len(les)-1], 1) {
		t.Fatalf("%s: buckets %v, want %v then +Inf", name, les, bounds)
	}
	var prev float64 = -1
	for i, bound := range bounds {
		s := fam.find(name+"_bucket", map[string]string{"le": formatFloat(bound)})
		if s == nil {
			t.Fatalf("%s: no bucket le=%v", name, bound)
		}
		if s.value != wantCum[i] {
			t.Errorf("%s: bucket le=%v = %v, want %v", name, bound, s.value, wantCum[i])
		}
		if s.value < prev {
			t.Errorf("%s: buckets not cumulative at le=%v", name, bound)
		}
		prev = s.value
	}
	inf := fam.find(name+"_bucket", map[string]string{"le": "+Inf"})
	count := fam.find(name+"_count", nil)
	sum := fam.find(name+"_sum", nil)
	if inf == nil || count == nil || sum == nil {
		t.Fatalf("%s: missing +Inf/_count/_sum series", name)
	}
	if inf.value != float64(wantCount) || count.value != float64(wantCount) {
		t.Errorf("%s: +Inf=%v _count=%v, want %d (must agree)", name, inf.value, count.value, wantCount)
	}
	if inf.value < prev {
		t.Errorf("%s: +Inf bucket below last finite bucket", name)
	}
	if math.Abs(sum.value-wantSum) > 1e-9 {
		t.Errorf("%s: _sum = %v, want %v", name, sum.value, wantSum)
	}
}

// TestPrometheusTextJSONStability: the JSON round-trip promise — a snapshot
// re-rendered after JSON encode/decode is byte-identical (guards against the
// exposition depending on unexported state).
func TestPrometheusTextJSONStability(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "k", "v").Add(3)
	reg.Gauge("b").Set(1.5)
	reg.Histogram("c_seconds", []float64{1, 2}).Observe(1.5)
	reg.Help("a_total", "alpha")
	snap := reg.Snapshot()
	text := snap.PrometheusText()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.PrometheusText(); got != text {
		t.Errorf("JSON round-trip changed exposition:\n--- direct\n%s\n--- round-tripped\n%s", text, got)
	}
}
