package obs

import (
	"sort"
	"strconv"
	"strings"
)

// This file freezes a Registry into serializable form. The Snapshot type is
// plain data: it round-trips through encoding/json unchanged and can render
// itself as Prometheus text exposition (version 0.0.4), so a snapshot taken
// in-process, shipped as JSON and re-rendered at the collector is identical
// to one rendered locally.

// CounterPoint is one frozen counter.
type CounterPoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugePoint is one frozen gauge.
type GaugePoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramPoint is one frozen histogram. Counts has len(Bounds)+1 entries;
// the last is the +Inf overflow bucket.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a frozen registry, sorted deterministically.
type Snapshot struct {
	Counters   []CounterPoint    `json:"counters,omitempty"`
	Gauges     []GaugePoint      `json:"gauges,omitempty"`
	Histograms []HistogramPoint  `json:"histograms,omitempty"`
	Help       map[string]string `json:"help,omitempty"`
}

// Snapshot freezes every metric in the registry.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{}
	for _, c := range r.counts {
		s.Counters = append(s.Counters, CounterPoint{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	for _, h := range r.hists {
		counts := make([]int64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, HistogramPoint{
			Name: h.name, Labels: h.labels,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: counts, Count: h.Count(), Sum: h.Sum(),
		})
	}
	if len(r.help) > 0 {
		s.Help = make(map[string]string, len(r.help))
		for k, v := range r.help {
			s.Help[k] = v
		}
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return pointLess(s.Counters[i].Name, s.Counters[i].Labels, s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return pointLess(s.Gauges[i].Name, s.Gauges[i].Labels, s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return pointLess(s.Histograms[i].Name, s.Histograms[i].Labels, s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

func pointLess(an string, al []Label, bn string, bl []Label) bool {
	if an != bn {
		return an < bn
	}
	return metricKey(an, al) < metricKey(bn, bl)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes HELP text per the Prometheus text format: backslashes
// and newlines only (quotes are legal in HELP, unlike in label values).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...}, with extra appended last (for le=).
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusText renders the snapshot in the Prometheus text exposition
// format: one # TYPE line per metric family (plus # HELP when registered),
// then the sample lines. Histograms expand to _bucket/_sum/_count series
// with cumulative le= buckets ending at +Inf.
func (s *Snapshot) PrometheusText() string {
	var b strings.Builder
	typed := map[string]bool{}
	header := func(name, kind string) {
		if typed[name] {
			return
		}
		typed[name] = true
		if help, ok := s.Help[name]; ok {
			b.WriteString("# HELP " + name + " " + escapeHelp(help) + "\n")
		}
		b.WriteString("# TYPE " + name + " " + kind + "\n")
	}
	for _, c := range s.Counters {
		header(c.Name, "counter")
		b.WriteString(c.Name + labelString(c.Labels) + " " + strconv.FormatInt(c.Value, 10) + "\n")
	}
	for _, g := range s.Gauges {
		header(g.Name, "gauge")
		b.WriteString(g.Name + labelString(g.Labels) + " " + formatFloat(g.Value) + "\n")
	}
	for _, h := range s.Histograms {
		header(h.Name, "histogram")
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := Label{Name: "le", Value: formatFloat(bound)}
			b.WriteString(h.Name + "_bucket" + labelString(h.Labels, le) + " " + strconv.FormatInt(cum, 10) + "\n")
		}
		le := Label{Name: "le", Value: "+Inf"}
		b.WriteString(h.Name + "_bucket" + labelString(h.Labels, le) + " " + strconv.FormatInt(h.Count, 10) + "\n")
		b.WriteString(h.Name + "_sum" + labelString(h.Labels) + " " + formatFloat(h.Sum) + "\n")
		b.WriteString(h.Name + "_count" + labelString(h.Labels) + " " + strconv.FormatInt(h.Count, 10) + "\n")
	}
	return b.String()
}

// PrometheusText is shorthand for r.Snapshot().PrometheusText().
func (r *Registry) PrometheusText() string { return r.Snapshot().PrometheusText() }
