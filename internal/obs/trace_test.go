package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerTree(t *testing.T) {
	tr := NewTracer()
	batch := tr.Start("batch-0")
	classify := batch.Child("classify")
	time.Sleep(time.Millisecond)
	classify.End()
	acct := batch.Child("accounting")
	acct.End()
	batch.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "batch-0" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "classify" || kids[1].Name() != "accounting" {
		t.Fatalf("children = %v", kids)
	}
	if kids[0].Duration() < time.Millisecond {
		t.Fatalf("classify duration = %v", kids[0].Duration())
	}
	if batch.Duration() < kids[0].Duration() {
		t.Fatal("parent must not be shorter than its child")
	}

	out := tr.Render()
	for _, want := range []string{"batch-0", "classify", "accounting", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Children are indented under the root.
	if !strings.Contains(out, "  classify") {
		t.Fatalf("expected indentation:\n%s", out)
	}

	tr.Reset()
	if len(tr.Roots()) != 0 || tr.Render() != "" {
		t.Fatal("reset must clear spans")
	}
}

func TestSpanDoubleEndKeepsFirst(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("x")
	d1 := sp.End()
	time.Sleep(2 * time.Millisecond)
	if d2 := sp.End(); d2 != d1 {
		t.Fatalf("second End changed duration: %v vs %v", d1, d2)
	}
}

// TestTracerConcurrent verifies span creation from many goroutines under
// -race: each worker opens its own child chain.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("worker")
			gc := c.Child("inner")
			gc.End()
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}
