package obs

import (
	"strings"
	"testing"
)

// TestMetricNameValidation: legal names pass untouched; illegal ones panic
// under `go test` (testing.Testing() is true here, so the registry's
// panic-in-tests mode is what we observe).
func TestMetricNameValidation(t *testing.T) {
	reg := NewRegistry()
	for _, ok := range []string{
		"a", "snake_case_total", "ns:subsystem:metric", "_leading", "A9",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("valid name %q panicked: %v", ok, r)
				}
			}()
			reg.Counter(ok)
		}()
	}
	for _, bad := range []string{
		"", "9leading", "has space", "has-dash", "emoji☃", "dotted.name",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name %q did not panic in tests", bad)
				}
			}()
			reg.Counter(bad)
		}()
	}
}

// TestLabelNameValidation: label names reject colons (reserved for metric
// names) and everything metric names reject.
func TestLabelNameValidation(t *testing.T) {
	reg := NewRegistry()
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("valid label panicked: %v", r)
			}
		}()
		reg.Counter("ok_total", "label_1", "any value is fine ☃")
	}()
	for _, bad := range []string{"with:colon", "9lead", "sp ace", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid label name %q did not panic in tests", bad)
				}
			}()
			reg.Gauge("ok_gauge", bad, "v")
		}()
	}
}

// TestSanitizeName covers the production fallback path directly: illegal
// characters become underscores, leading digits are replaced, and valid
// names are returned unchanged.
func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"good_name", "good_name"},
		{"has-dash", "has_dash"},
		{"has space.dot", "has_space_dot"},
		{"9leading", "_leading"},
		{"", "_"},
	}
	for _, c := range cases {
		if got := sanitizeName(c.in, true); got != c.want {
			t.Errorf("sanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
		if !validMetricName(sanitizeName(c.in, true)) {
			t.Errorf("sanitizeName(%q) still invalid", c.in)
		}
	}
	// Colons survive in metric names but not label names.
	if got := sanitizeName("a:b", true); got != "a:b" {
		t.Errorf("metric sanitize dropped colon: %q", got)
	}
	if got := sanitizeName("a:b", false); got != "a_b" {
		t.Errorf("label sanitize kept colon: %q", got)
	}
}

// TestHelpEscaping: HELP text with newlines and backslashes renders as a
// single valid exposition line.
func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("escaped_total").Inc()
	reg.Help("escaped_total", "line one\nline two with \\backslash")
	text := reg.PrometheusText()
	want := `# HELP escaped_total line one\nline two with \\backslash`
	if !strings.Contains(text, want) {
		t.Errorf("HELP not escaped:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "line two") && !strings.HasPrefix(line, "# HELP") {
			t.Errorf("HELP text leaked onto a sample line: %q", line)
		}
	}
}
