package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func rec(item, path, outcome string, fired ...string) *DecisionRecord {
	return &DecisionRecord{ItemID: item, Path: path, Outcome: outcome, Fired: fired, SnapshotVersion: 1}
}

// TestAuditLogCaptureAndTail: captured records come back from Tail in
// chronological order, capped by the ring capacity.
func TestAuditLogCaptureAndTail(t *testing.T) {
	a := NewAuditLog(AuditConfig{Capacity: 4, SampleEvery: 1})
	for i := 0; i < 6; i++ {
		a.Observe(rec(fmt.Sprintf("item-%d", i), PathPerItem, OutcomeClassified))
	}
	if got := a.Captured(); got != 6 {
		t.Fatalf("Captured = %d, want 6", got)
	}
	tail := a.Tail(10)
	if len(tail) != 4 {
		t.Fatalf("Tail returned %d records, want 4 (ring capacity)", len(tail))
	}
	for i, r := range tail {
		want := fmt.Sprintf("item-%d", i+2) // items 0,1 were overwritten
		if r.ItemID != want {
			t.Errorf("tail[%d].ItemID = %q, want %q", i, r.ItemID, want)
		}
		if i > 0 && tail[i].Seq <= tail[i-1].Seq {
			t.Errorf("tail not in Seq order: %d then %d", tail[i-1].Seq, tail[i].Seq)
		}
	}
	if short := a.Tail(2); len(short) != 2 || short[1].ItemID != "item-5" {
		t.Errorf("Tail(2) = %+v, want the 2 newest", short)
	}
}

// TestAuditLogSamplingBias: unbiased records follow the stride; declines and
// degraded-path records are always captured.
func TestAuditLogSamplingBias(t *testing.T) {
	a := NewAuditLog(AuditConfig{Capacity: 128, SampleEvery: 4})
	captured := 0
	for i := 0; i < 40; i++ {
		r := rec(fmt.Sprintf("ok-%d", i), PathBatchGate, OutcomeClassified)
		if a.ShouldCapture(r.Biased()) {
			a.Observe(r)
			captured++
		} else {
			a.CountSampledOut(r.Path, r.Outcome)
		}
	}
	if captured != 10 {
		t.Errorf("captured %d of 40 at stride 4, want 10", captured)
	}
	if got := a.SampledOut(); got != 30 {
		t.Errorf("SampledOut = %d, want 30", got)
	}
	for i := 0; i < 5; i++ {
		r := rec(fmt.Sprintf("bad-%d", i), PathClassifier, OutcomeDeclined)
		if !a.ShouldCapture(r.Biased()) {
			t.Fatalf("biased record %d not captured", i)
		}
		a.Observe(r)
	}
	declined := a.TailFiltered(100, "", "", OutcomeDeclined)
	if len(declined) != 5 {
		t.Errorf("declined records = %d, want all 5 (bias bypasses sampling)", len(declined))
	}
	// Breakdown counts every offered record, not just captured ones.
	b := a.Breakdown()
	if got := b[PathBatchGate][OutcomeClassified]; got != 40 {
		t.Errorf("breakdown[batch-gate][classified] = %d, want 40", got)
	}
	if got := b[PathClassifier][OutcomeDeclined]; got != 5 {
		t.Errorf("breakdown[classifier][declined] = %d, want 5", got)
	}
	if a.Offered() != 45 {
		t.Errorf("Offered = %d, want 45", a.Offered())
	}
}

// TestAuditLogDegradedBias: a classified outcome on the degraded path is
// still biased (always captured).
func TestAuditLogDegradedBias(t *testing.T) {
	r := rec("x", PathDegraded, OutcomeClassified)
	if !r.Biased() {
		t.Error("degraded-path record must be biased")
	}
	if !rec("y", PathServe, OutcomeShed).Biased() {
		t.Error("shed record must be biased")
	}
	if rec("z", PathPerItem, OutcomeClassified).Biased() {
		t.Error("plain classification must not be biased")
	}
}

// TestAuditLogFilters: TailFiltered matches rule IDs against fired and
// vetoed lists, and path/outcome exactly.
func TestAuditLogFilters(t *testing.T) {
	a := NewAuditLog(AuditConfig{Capacity: 16, SampleEvery: 1})
	a.Observe(rec("a", PathPerItem, OutcomeClassified, "r1", "r2"))
	a.Observe(rec("b", PathBatchGate, OutcomeClassified, "r2"))
	v := rec("c", PathClassifier, OutcomeDeclined)
	v.Vetoed = []string{"r9"}
	a.Observe(v)

	if got := a.TailFiltered(10, "r2", "", ""); len(got) != 2 {
		t.Errorf("rule r2 filter matched %d, want 2", len(got))
	}
	if got := a.TailFiltered(10, "r9", "", ""); len(got) != 1 || got[0].ItemID != "c" {
		t.Errorf("veto rule filter = %+v, want item c", got)
	}
	if got := a.TailFiltered(10, "", PathBatchGate, ""); len(got) != 1 || got[0].ItemID != "b" {
		t.Errorf("path filter = %+v, want item b", got)
	}
	if got := a.TailFiltered(10, "r1", PathBatchGate, ""); len(got) != 0 {
		t.Errorf("conjunctive filter matched %d, want 0", len(got))
	}
}

// TestAuditLogDisabled: nil and negative-capacity logs are inert everywhere.
func TestAuditLogDisabled(t *testing.T) {
	for name, a := range map[string]*AuditLog{
		"nil":      nil,
		"disabled": NewAuditLog(AuditConfig{Capacity: -1}),
	} {
		if a.Enabled() {
			t.Errorf("%s: Enabled = true", name)
		}
		if a.ShouldCapture(true) {
			t.Errorf("%s: ShouldCapture = true", name)
		}
		a.Observe(rec("x", PathPerItem, OutcomeClassified)) // must not panic
		a.Count(PathPerItem, OutcomeClassified)
		a.CountSampledOut(PathPerItem, OutcomeClassified)
		if a.Tail(5) != nil || a.Captured() != 0 || a.Breakdown() != nil {
			t.Errorf("%s: disabled log leaked state", name)
		}
	}
}

// TestAuditLogConcurrent hammers the ring from many writers and readers at
// once; run under -race this is the lock-free-capture regression test.
func TestAuditLogConcurrent(t *testing.T) {
	a := NewAuditLog(AuditConfig{Capacity: 64, SampleEvery: 2})
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				outcome := OutcomeClassified
				if i%3 == 0 {
					outcome = OutcomeDeclined
				}
				r := rec(fmt.Sprintf("w%d-%d", w, i), PathPerItem, outcome)
				if a.ShouldCapture(r.Biased()) {
					a.Observe(r)
				} else {
					a.CountSampledOut(r.Path, r.Outcome)
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Tail(32)
					a.Breakdown()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	if got := a.Offered(); got != writers*perWriter {
		t.Errorf("Offered = %d, want %d", got, writers*perWriter)
	}
	tail := a.Tail(64)
	if len(tail) == 0 {
		t.Fatal("empty tail after concurrent writes")
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail out of order at %d: %d then %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
}

// TestFormatBreakdown renders sorted aligned lines.
func TestFormatBreakdown(t *testing.T) {
	out := FormatBreakdown(map[string]map[string]uint64{
		PathPerItem:   {OutcomeClassified: 7},
		PathBatchGate: {OutcomeDeclined: 2},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "batch-gate/declined") || !strings.Contains(lines[0], "2") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "per-item/classified") || !strings.Contains(lines[1], "7") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

// TestRequestIDPropagation: EnsureRequestID generates once and round-trips
// through the context.
func TestRequestIDPropagation(t *testing.T) {
	ctx := context.Background()
	if id := RequestID(ctx); id != "" {
		t.Fatalf("empty context carries ID %q", id)
	}
	ctx, id := EnsureRequestID(ctx, "req")
	if id == "" || RequestID(ctx) != id {
		t.Fatalf("EnsureRequestID: id=%q, ctx id=%q", id, RequestID(ctx))
	}
	if !strings.HasPrefix(id, "req-") {
		t.Errorf("generated ID %q missing prefix", id)
	}
	// A second Ensure must keep the existing ID.
	ctx2, id2 := EnsureRequestID(ctx, "other")
	if id2 != id || RequestID(ctx2) != id {
		t.Errorf("EnsureRequestID regenerated: %q -> %q", id, id2)
	}
	// Explicit IDs win.
	ctx3 := WithRequestID(context.Background(), "custom-9")
	if _, got := EnsureRequestID(ctx3, "req"); got != "custom-9" {
		t.Errorf("explicit ID not preserved: %q", got)
	}
	a, b := NewRequestID("x"), NewRequestID("x")
	if a == b {
		t.Errorf("NewRequestID not unique: %q == %q", a, b)
	}
}
