package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Tracer records a tree of timed spans — the per-stage timing breakdown the
// CLIs print with -profile. It is deliberately minimal: spans carry a name,
// a wall-clock duration and children; there is no context propagation or
// export protocol. Span creation is two small allocations, cheap enough for
// per-batch (not per-item) granularity.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is one timed region. End it exactly once; children must end before
// their parent for the rendered percentages to be meaningful.
type Span struct {
	name  string
	start time.Time
	dur   time.Duration
	done  bool

	mu       sync.Mutex
	children []*Span
}

// Start opens a new root span.
func (t *Tracer) Start(name string) *Span {
	sp := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span and returns its duration. Ending twice keeps the first
// duration.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
	return s.dur
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Duration returns the span's duration (elapsed-so-far if still open).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns a copy of the span's children.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Roots returns a copy of the tracer's root spans.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.roots = nil
	t.mu.Unlock()
}

// Render prints the span tree with durations and percent-of-parent, e.g.
//
//	batch-0                          41.2ms
//	  classify                       38.9ms  94.4%
//	  evaluate                        1.8ms   4.4%
func (t *Tracer) Render() string {
	var b strings.Builder
	for _, sp := range t.Roots() {
		renderSpan(&b, sp, 0, 0)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int, parent time.Duration) {
	d := s.Duration()
	pad := strings.Repeat("  ", depth)
	line := fmt.Sprintf("%-40s %12s", pad+s.name, d.Round(time.Microsecond))
	if parent > 0 {
		line += fmt.Sprintf("  %5.1f%%", 100*float64(d)/float64(parent))
	}
	b.WriteString(line + "\n")
	for _, c := range s.Children() {
		renderSpan(b, c, depth+1, d)
	}
}
