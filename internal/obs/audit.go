package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the decision-provenance half of the observability layer: the
// paper's analyst loop (§3.3, §4) needs to answer "why did item X get verdict
// Y five minutes ago, and under which rule-set version?" — a question the
// aggregate metric series cannot answer. Every serving path (per-item, batch
// gate, batch classifier, degraded, crowd evaluation, manual onboarding)
// writes one DecisionRecord per item into a fixed-capacity sampled ring
// buffer (AuditLog), tagged with the request ID that entered the system at
// serve.Server.SubmitCtx and the snapshot version the decision was made
// under. The ring is lock-free on the write path: one atomic fetch-add for
// the slot, one atomic pointer store for the record.

// Decision paths. A record's Path names the serving route that produced it.
const (
	PathPerItem    = "per-item"   // reference path: Classify / server handler
	PathBatchGate  = "batch-gate" // batch-inverted path, decided by the Gate Keeper
	PathClassifier = "classifier" // batch-inverted path, decided by classifiers + voting
	PathDegraded   = "degraded"   // gate-only degraded fallback
	PathCrowd      = "crowd"      // crowd-verification of a sampled decision
	PathManual     = "manual"     // manual-team labeling of declined items
	PathServe      = "serve"      // serving-layer failure outcomes (shed, drain, deadline)
)

// Decision outcomes. A record's Outcome is the failure-taxonomy bucket the
// item landed in (see DESIGN.md): classified and declined are the pipeline's
// own outcomes; shed, drain-declined and deadline-expired are the serving
// layer's; verified/flagged are crowd-evaluation outcomes; labeled is the
// manual team's.
const (
	OutcomeClassified = "classified"
	OutcomeDeclined   = "declined"
	OutcomeShed       = "shed"
	OutcomeDrain      = "drain-declined"
	OutcomeExpired    = "deadline-expired"
	OutcomeVerified   = "verified"
	OutcomeFlagged    = "flagged"
	OutcomeLabeled    = "labeled"
)

// StageLatency is one named stage's share of a decision's wall-clock time.
type StageLatency struct {
	Stage string        `json:"stage"`
	D     time.Duration `json:"nanos"`
}

// DecisionRecord is the provenance of one per-item decision: who asked
// (RequestID), what was decided (Outcome, Type, Reason), on which rule-set
// state (SnapshotVersion), through which serving route (Path), because of
// which rules (Fired / Vetoed), and where the time went (Stages). Records
// are immutable once observed; readers share them.
type DecisionRecord struct {
	// Seq is the capture sequence number, assigned by AuditLog.Observe.
	Seq uint64 `json:"seq"`
	// RequestID ties the record to one submission (propagated via context
	// from serve.Server.SubmitCtx; batch-generated otherwise).
	RequestID string `json:"request_id,omitempty"`
	// ItemID is the classified item.
	ItemID string `json:"item_id"`
	// SnapshotVersion is the rulebase logical clock the deciding snapshot
	// was built at (0 when the outcome precedes snapshot pick-up, e.g. shed).
	SnapshotVersion uint64 `json:"snapshot_version"`
	// Path is the serving route (see the Path* constants).
	Path string `json:"path"`
	// Outcome is the failure-taxonomy bucket (see the Outcome* constants).
	Outcome string `json:"outcome"`
	// Type is the emitted product type (empty on declines).
	Type string `json:"type,omitempty"`
	// Reason is the decline reason or the deciding stage.
	Reason string `json:"reason,omitempty"`
	// Confidence is the decision confidence in [0,1].
	Confidence float64 `json:"confidence,omitempty"`
	// Fired lists the rule IDs whose assertions supported the decision.
	Fired []string `json:"rules_fired,omitempty"`
	// Vetoed lists the rule IDs that vetoed or filtered a candidate type.
	Vetoed []string `json:"rules_vetoed,omitempty"`
	// Stages is the per-stage latency breakdown, in decision order.
	Stages []StageLatency `json:"stages,omitempty"`
	// Time is the capture wall-clock time.
	Time time.Time `json:"time"`
}

// Biased reports whether the record is always captured regardless of the
// sampling stride: every outcome except a plain classification is rare and
// operationally interesting (declines, degraded decisions, serving-layer
// failures), so the ring keeps all of them.
func (r *DecisionRecord) Biased() bool {
	return r.Outcome != OutcomeClassified || r.Path == PathDegraded
}

// Matches reports whether the record passes the given filters; empty filter
// values match everything. ruleID matches against both Fired and Vetoed.
func (r *DecisionRecord) Matches(ruleID, path, outcome string) bool {
	if path != "" && r.Path != path {
		return false
	}
	if outcome != "" && r.Outcome != outcome {
		return false
	}
	if ruleID != "" {
		for _, id := range r.Fired {
			if id == ruleID {
				return true
			}
		}
		for _, id := range r.Vetoed {
			if id == ruleID {
				return true
			}
		}
		return false
	}
	return true
}

// DefaultAuditCapacity is the default ring size: large enough to hold a few
// serving batches of context around an incident, small enough (~a few MB of
// records) to stay resident forever.
const DefaultAuditCapacity = 4096

// DefaultAuditSampleEvery is the default sampling stride for unbiased
// (plain-classified) records: 1 in N is captured. Declines, degraded
// decisions and serving-layer failures bypass the stride (see
// DecisionRecord.Biased). The stride keeps audit capture inside the ≤5%
// overhead budget on the hot batch path while the bias guarantees the
// records an operator actually greps for are always there.
const DefaultAuditSampleEvery = 8

// AuditConfig parameterizes an AuditLog. Zero values take defaults.
type AuditConfig struct {
	// Capacity is the ring size in records (DefaultAuditCapacity when 0;
	// negative disables capture entirely — Observe becomes a no-op).
	Capacity int
	// SampleEvery captures 1 in N unbiased records (DefaultAuditSampleEvery
	// when 0; 1 captures everything). Biased records are always captured.
	SampleEvery int
}

// AuditLog is a fixed-capacity, lock-free ring of sampled DecisionRecords
// plus exact per-(path,outcome) totals over every offered record (sampled
// out or not). Writers pay one atomic fetch-add and one atomic store per
// captured record; readers (Tail, Breakdown) never block writers.
type AuditLog struct {
	slots       []atomic.Pointer[DecisionRecord]
	seq         atomic.Uint64 // capture sequence / ring write cursor
	offered     atomic.Uint64 // all records offered to Observe
	sampledOut  atomic.Uint64 // unbiased records skipped by the stride
	stride      atomic.Uint64 // round-robin clock for the sampling stride
	sampleEvery uint64
	disabled    bool

	countMu sync.RWMutex
	counts  map[string]*atomic.Uint64 // "path\x00outcome" -> total offered
}

// NewAuditLog builds an audit log from cfg. A nil *AuditLog is safe to use
// everywhere (all methods no-op), as is one built with a negative Capacity.
func NewAuditLog(cfg AuditConfig) *AuditLog {
	if cfg.Capacity < 0 {
		return &AuditLog{disabled: true}
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultAuditCapacity
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultAuditSampleEvery
	}
	return &AuditLog{
		slots:       make([]atomic.Pointer[DecisionRecord], cfg.Capacity),
		sampleEvery: uint64(cfg.SampleEvery),
		counts:      map[string]*atomic.Uint64{},
	}
}

// Enabled reports whether the log captures records at all.
func (a *AuditLog) Enabled() bool { return a != nil && !a.disabled }

// Capacity returns the ring size (0 when disabled).
func (a *AuditLog) Capacity() int {
	if !a.Enabled() {
		return 0
	}
	return len(a.slots)
}

// SampleEvery returns the configured unbiased sampling stride.
func (a *AuditLog) SampleEvery() int {
	if !a.Enabled() {
		return 0
	}
	return int(a.sampleEvery)
}

// ShouldCapture reports whether the next record with the given bias would be
// captured, advancing the sampling stride for unbiased records. Hot paths
// call this before building a record so a sampled-out decision costs one
// atomic increment, not an allocation.
func (a *AuditLog) ShouldCapture(biased bool) bool {
	if !a.Enabled() {
		return false
	}
	if biased || a.sampleEvery == 1 {
		return true
	}
	return a.stride.Add(1)%a.sampleEvery == 0
}

// Count records one offered decision in the exact per-(path,outcome) totals
// without capturing anything — the path for records that ShouldCapture
// sampled out. Observe calls it internally for captured records.
func (a *AuditLog) Count(path, outcome string) {
	if !a.Enabled() {
		return
	}
	a.offered.Add(1)
	a.counter(path, outcome).Add(1)
}

// counter returns the get-or-create total for (path, outcome).
func (a *AuditLog) counter(path, outcome string) *atomic.Uint64 {
	key := path + "\x00" + outcome
	a.countMu.RLock()
	c, ok := a.counts[key]
	a.countMu.RUnlock()
	if ok {
		return c
	}
	a.countMu.Lock()
	defer a.countMu.Unlock()
	if c, ok = a.counts[key]; ok {
		return c
	}
	c = &atomic.Uint64{}
	a.counts[key] = c
	return c
}

// Observe captures rec into the ring (assigning its Seq and Time when unset)
// and counts it in the breakdown. The caller must have already decided to
// capture (ShouldCapture); records are immutable after Observe. For a
// sampled-out record call Count instead, and SampledOut to account for it.
func (a *AuditLog) Observe(rec *DecisionRecord) {
	if !a.Enabled() || rec == nil {
		return
	}
	a.Count(rec.Path, rec.Outcome)
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	seq := a.seq.Add(1)
	rec.Seq = seq
	a.slots[(seq-1)%uint64(len(a.slots))].Store(rec)
}

// CountSampledOut accounts for one unbiased record the stride skipped.
func (a *AuditLog) CountSampledOut(path, outcome string) {
	if !a.Enabled() {
		return
	}
	a.sampledOut.Add(1)
	a.Count(path, outcome)
}

// Captured returns how many records were written into the ring so far.
func (a *AuditLog) Captured() uint64 {
	if !a.Enabled() {
		return 0
	}
	return a.seq.Load()
}

// Offered returns how many records were offered (captured + sampled out).
func (a *AuditLog) Offered() uint64 {
	if !a.Enabled() {
		return 0
	}
	return a.offered.Load()
}

// SampledOut returns how many unbiased records the stride skipped.
func (a *AuditLog) SampledOut() uint64 {
	if !a.Enabled() {
		return 0
	}
	return a.sampledOut.Load()
}

// Tail returns up to n of the most recent captured records, oldest first.
// The read is lock-free and best-effort under concurrent writers: a slot
// being overwritten mid-read yields either the old or the new record, never
// a torn one (records are immutable; the slot is an atomic pointer).
func (a *AuditLog) Tail(n int) []*DecisionRecord {
	return a.TailFiltered(n, "", "", "")
}

// TailFiltered is Tail restricted to records matching the given filters
// (empty strings match everything); it returns up to n matching records from
// the ring, oldest first.
func (a *AuditLog) TailFiltered(n int, ruleID, path, outcome string) []*DecisionRecord {
	if !a.Enabled() || n <= 0 {
		return nil
	}
	cap64 := uint64(len(a.slots))
	head := a.seq.Load()
	span := head
	if span > cap64 {
		span = cap64
	}
	out := make([]*DecisionRecord, 0, min(n, int(span)))
	// Walk backwards from the newest slot, collecting matches.
	for i := uint64(0); i < span && len(out) < n; i++ {
		rec := a.slots[(head-1-i)%cap64].Load()
		if rec == nil {
			continue
		}
		if rec.Matches(ruleID, path, outcome) {
			out = append(out, rec)
		}
	}
	// Reverse to chronological order and settle races (a concurrent writer
	// may have lapped a slot between loads) by sorting on Seq.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Breakdown returns the exact per-path, per-outcome totals over every record
// offered so far — the drill summary's "where did the items go", unaffected
// by sampling.
func (a *AuditLog) Breakdown() map[string]map[string]uint64 {
	if !a.Enabled() {
		return nil
	}
	out := map[string]map[string]uint64{}
	a.countMu.RLock()
	defer a.countMu.RUnlock()
	for key, c := range a.counts {
		for i := 0; i < len(key); i++ {
			if key[i] == 0 {
				path, outcome := key[:i], key[i+1:]
				m := out[path]
				if m == nil {
					m = map[string]uint64{}
					out[path] = m
				}
				m[outcome] = c.Load()
				break
			}
		}
	}
	return out
}

// FormatBreakdown renders a Breakdown as sorted, aligned text lines
// ("path/outcome  count"), the shape the chimera CLI prints after a drill.
func FormatBreakdown(b map[string]map[string]uint64) string {
	type row struct {
		key string
		n   uint64
	}
	var rows []row
	for path, m := range b {
		for outcome, n := range m {
			rows = append(rows, row{path + "/" + outcome, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	var out []byte
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%-32s %8s\n", r.key, strconv.FormatUint(r.n, 10))...)
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// Request-ID propagation
// ---------------------------------------------------------------------------

// requestIDKey is the context key for the request ID.
type requestIDKey struct{}

// reqSeq numbers generated request IDs, process-wide.
var reqSeq atomic.Uint64

// NewRequestID returns a process-unique request ID with the given prefix
// ("prefix-N"). IDs are sequence numbers, not random: drills and tests stay
// deterministic, and the sequence itself is useful ordering evidence.
func NewRequestID(prefix string) string {
	return prefix + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID, or "" when none was attached.
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// EnsureRequestID returns a context that definitely carries a request ID,
// generating one with the prefix when absent, plus the ID itself. This is
// the serving layer's entry hook: every submission gets exactly one ID that
// then flows through snapshots, executors and the pipeline into the audit
// log.
func EnsureRequestID(ctx context.Context, prefix string) (context.Context, string) {
	if id := RequestID(ctx); id != "" {
		return ctx, id
	}
	id := NewRequestID(prefix)
	return WithRequestID(ctx, id), id
}
