package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanEndIdempotent: End may be called any number of times, from any
// goroutine; the first call freezes the duration and later calls return it.
func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("once")
	first := sp.End()
	time.Sleep(2 * time.Millisecond)
	if again := sp.End(); again != first {
		t.Errorf("second End changed duration: %v -> %v", first, again)
	}
	if d := sp.Duration(); d != first {
		t.Errorf("Duration after End = %v, want frozen %v", d, first)
	}

	// Concurrent Ends on one span must agree (and not race).
	sp2 := tr.Start("racy-end")
	var wg sync.WaitGroup
	durs := make([]time.Duration, 8)
	for i := range durs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			durs[i] = sp2.End()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(durs); i++ {
		if durs[i] != durs[0] {
			t.Fatalf("concurrent End disagreed: %v vs %v", durs[0], durs[i])
		}
	}
}

// TestTracerConcurrentReadersWriters is the -race regression test for the
// tracer: spans start, branch, end, and render concurrently — the shape of a
// serving drill where batches trace themselves while an operator hits the
// ops surface that renders the span tree.
func TestTracerConcurrentReadersWriters(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start(fmt.Sprintf("w%d-batch-%d", w, i))
				c1 := sp.Child("classify")
				c2 := sp.Child("accounting")
				c1.End()
				c2.End()
				sp.End()
			}
		}(w)
	}
	// Concurrent readers: Roots, Render, Duration on live spans.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, sp := range tr.Roots() {
						_ = sp.Duration()
						_ = sp.Children()
						_ = sp.Name()
					}
					_ = tr.Render()
				}
			}
		}()
	}

	// Wait for the writers, then release the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4*50; {
			i = len(tr.Roots())
			time.Sleep(time.Millisecond)
		}
	}()
	<-done
	close(stop)
	wg.Wait()

	roots := tr.Roots()
	if len(roots) != 4*50 {
		t.Fatalf("got %d roots, want %d", len(roots), 4*50)
	}
	out := tr.Render()
	if n := strings.Count(out, "classify"); n != 4*50 {
		t.Errorf("rendered %d classify children, want %d", n, 4*50)
	}
	tr.Reset()
	if len(tr.Roots()) != 0 {
		t.Error("Reset left roots behind")
	}
}
