package obs

import (
	"encoding/json"
	"math"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("hits_total") != c {
		t.Fatal("get-or-create must return the same handle")
	}
	if reg.Counter("hits_total", "rule", "R1") == c {
		t.Fatal("labeled counter must be a distinct series")
	}

	g := reg.Gauge("queue_depth")
	g.Set(10)
	g.Add(-2.5)
	if g.Value() != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Mean() != h.Sum()/5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	snap := reg.Snapshot().Histograms[0]
	if want := []int64{1, 2, 1, 1}; !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", snap.Counts, want)
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Fatalf("p50 = %v, want 0.1 (bucket upper bound)", q)
	}
	// The p100 observation (5) overflowed every bucket; the estimate caps at
	// the largest finite bound rather than reporting +Inf.
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("p100 = %v, want 1 (largest finite bound)", q)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

// TestQuantileEdgeCases pins the documented contract for every degenerate
// input: quantiles must always be defined and finite when any finite summary
// of the data exists, so downstream consumers (dashboards, the ops drill's
// latency lines, alert expressions) never divide by or compare against +Inf.
func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	// q is clamped to [0, 1]; NaN is treated as 0.
	for _, q := range []float64{0, -0.5, math.Inf(-1), math.NaN()} {
		if got := h.Quantile(q); got != 0.01 {
			t.Fatalf("Quantile(%v) = %v, want 0.01 (first non-empty bucket)", q, got)
		}
	}
	for _, q := range []float64{1, 1.5, math.Inf(1)} {
		if got := h.Quantile(q); got != 1 {
			t.Fatalf("Quantile(%v) = %v, want 1 (largest finite bound)", q, got)
		}
	}

	// An empty histogram returns 0 for every q, including degenerate ones.
	empty := reg.Histogram("empty_seconds", []float64{0.01, 0.1})
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Every observation overflowed: no finite bucket describes the data, so
	// the only finite summary left is the mean.
	over := reg.Histogram("over_seconds", []float64{0.01, 0.1})
	over.Observe(10)
	over.Observe(30)
	for _, q := range []float64{0, 0.5, 1} {
		if got := over.Quantile(q); got != 20 {
			t.Fatalf("all-overflow Quantile(%v) = %v, want mean 20", q, got)
		}
	}

	// A histogram with no finite buckets at all (only the implicit +Inf
	// overflow) likewise falls back to the mean. The registry substitutes
	// LatencyBuckets for nil bounds, so this shape is only constructible
	// in-package — but Quantile must still not trip over it.
	unbounded := &Histogram{counts: make([]atomic.Int64, 1)}
	unbounded.Observe(2)
	unbounded.Observe(4)
	if got := unbounded.Quantile(0.99); got != 3 {
		t.Fatalf("unbounded Quantile(0.99) = %v, want mean 3", got)
	}

	// Sanity: no input produces a non-finite result on a populated histogram.
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.75, 0.99, 1, 2, math.NaN()} {
		for _, hh := range []*Histogram{h, over, unbounded} {
			if got := hh.Quantile(q); math.IsInf(got, 0) || math.IsNaN(got) {
				t.Fatalf("Quantile(%v) = %v: non-finite on a populated histogram", q, got)
			}
		}
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// the -race build verifies the hot paths are genuinely atomic.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("c_total")
			g := reg.Gauge("g")
			h := reg.Histogram("h_seconds", nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 1e-4)
				// Interleave get-or-create with updates.
				reg.Counter("c_total", "worker", string(rune('a'+w))).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("c_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("g").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("h_seconds", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Help("rule_fired_total", "per-rule fire counts")
	reg.Counter("rule_fired_total", "rule", "R000001").Add(7)
	reg.Counter("rule_fired_total", "rule", "R000002").Add(3)
	reg.Gauge("est_precision").Set(0.931)
	h := reg.Histogram("apply_seconds", []float64{1e-4, 1e-3, 1e-2})
	h.Observe(5e-4)
	h.Observe(2e-3)

	snap := reg.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, &back) {
		t.Fatalf("round trip mutated snapshot:\nbefore %+v\nafter  %+v", snap, &back)
	}
	// Deterministic ordering: marshaling twice gives identical bytes.
	data2, _ := json.Marshal(reg.Snapshot())
	if string(data) != string(data2) {
		t.Fatal("snapshot serialization is not deterministic")
	}
	// Re-rendered exposition from the deserialized snapshot matches.
	if back.PrometheusText() != snap.PrometheusText() {
		t.Fatal("exposition differs after JSON round trip")
	}
}

// promLine matches a valid Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?(Inf|[0-9].*))$`)

func TestPrometheusTextValid(t *testing.T) {
	reg := NewRegistry()
	reg.Help("rule_fired_total", "per-rule fire counts")
	reg.Counter("rule_fired_total", "rule", `we"ird\va`+"l\nue").Inc()
	reg.Gauge("decline_rate").Set(0.125)
	h := reg.Histogram("batch_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)

	text := reg.PrometheusText()
	sawType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			sawType[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
	for _, fam := range []string{"rule_fired_total", "decline_rate", "batch_seconds"} {
		if !sawType[fam] {
			t.Fatalf("missing # TYPE for %s in:\n%s", fam, text)
		}
	}
	// Histogram invariants: cumulative buckets, +Inf equals count.
	if !strings.Contains(text, `batch_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket must equal total count:\n%s", text)
	}
	if !strings.Contains(text, `batch_seconds_bucket{le="1"} 2`) {
		t.Fatalf("buckets must be cumulative:\n%s", text)
	}
	if !strings.Contains(text, "# HELP rule_fired_total per-rule fire counts") {
		t.Fatalf("missing HELP line:\n%s", text)
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default must return the same registry")
	}
}
