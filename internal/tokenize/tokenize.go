// Package tokenize implements the text normalization and tokenization layer
// shared by every text-facing module in the repository: the rule-pattern
// matcher, the synonym finder, the sequence miner, the learned classifiers,
// and the IE/EM substrates.
//
// The paper's rules apply "relatively simple regexes to product titles"
// (§3.3) after the preprocessing it sketches in §5.2: lowercasing and
// removing certain stop words and characters compiled in a dictionary. This
// package is that dictionary plus the tokenizer.
package tokenize

import (
	"strings"
	"unicode"
)

// DefaultStopwords is the stop-word dictionary applied by NormalizeTokens.
// It mirrors the small hand-compiled list the paper alludes to: glue words
// that carry no product-type signal. Kept deliberately short — over-zealous
// stopping destroys patterns like "2 pack value bundle" that the synonym
// tool uses as context.
var DefaultStopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "and": true,
	"or": true, "for": true, "with": true, "in": true, "on": true,
	"by": true, "to": true, "at": true, "from": true,
}

// Tokenize lower-cases s and splits it into tokens. Letters and digits are
// kept; intra-token '-', '/' and '.' are treated as separators except when a
// '.' sits between digits (sizes such as "38.5" stay one token). Everything
// else is a separator. The result is allocation-friendly: a single pass,
// one output slice.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	runes := []rune(s)
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '.' && i > 0 && i < len(runes)-1 &&
			unicode.IsDigit(runes[i-1]) && unicode.IsDigit(runes[i+1]):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// NormalizeTokens applies the stop-word dictionary to an already tokenized
// title, returning a new slice. Tokens are assumed lower-case (Tokenize
// guarantees this).
func NormalizeTokens(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if DefaultStopwords[t] {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Normalize is Tokenize followed by NormalizeTokens.
func Normalize(s string) []string { return NormalizeTokens(Tokenize(s)) }

// Join renders tokens back into a canonical single-space string, the form
// used as a map key throughout the library.
func Join(tokens []string) string { return strings.Join(tokens, " ") }

// NGrams returns all character q-grams of s (as a multiset, with duplicates)
// after lower-casing. Strings shorter than q yield a single gram equal to
// the whole string. Used by the EM substrate's Jaccard predicates
// ("tokenized into 3-grams", §6).
func NGrams(s string, q int) []string {
	s = strings.ToLower(s)
	r := []rune(s)
	if len(r) == 0 {
		return nil
	}
	if len(r) <= q {
		return []string{string(r)}
	}
	grams := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		grams = append(grams, string(r[i:i+q]))
	}
	return grams
}

// TokenSet returns the deduplicated set of tokens as a map.
func TokenSet(tokens []string) map[string]bool {
	set := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		set[t] = true
	}
	return set
}

// ContainsSubsequence reports whether needle appears in haystack as a
// (not necessarily contiguous) token subsequence, in order. This is the
// matching semantics of the mined rules of §5.2: "a title contains the word
// sequence a1 a2 … an (not necessarily consecutively)".
func ContainsSubsequence(haystack, needle []string) bool {
	if len(needle) == 0 {
		return true
	}
	j := 0
	for _, t := range haystack {
		if t == needle[j] {
			j++
			if j == len(needle) {
				return true
			}
		}
	}
	return false
}

// EditDistance returns the Levenshtein distance between a and b, used by the
// IE substrate's approximate dictionary matching ("approximately matches a
// string in a large given dictionary of brand names", §6).
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
