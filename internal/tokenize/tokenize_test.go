package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Always & Forever Platinaire Diamond Accent Ring",
			[]string{"always", "forever", "platinaire", "diamond", "accent", "ring"}},
		{"1/4 Carat T.W. Diamond Semi-Eternity Ring in 10kt White Gold",
			[]string{"1", "4", "carat", "t", "w", "diamond", "semi", "eternity", "ring", "in", "10kt", "white", "gold"}},
		{"dickies 38in. x 30in. indigo blue relaxed fit denim jeans 13-293snb 38x30",
			[]string{"dickies", "38in", "x", "30in", "indigo", "blue", "relaxed", "fit", "denim", "jeans", "13", "293snb", "38x30"}},
		{"", nil},
		{"   ", nil},
		{"!!!", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeDecimalPreserved(t *testing.T) {
	got := Tokenize("size 38.5 shoe")
	want := []string{"size", "38.5", "shoe"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeTrailingDotSplits(t *testing.T) {
	got := Tokenize("38. inch")
	want := []string{"38", "inch"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café Blend – 2 Pièces")
	want := []string{"café", "blend", "2", "pièces"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNormalizeRemovesStopwords(t *testing.T) {
	got := Normalize("the ring of fire and a sword")
	want := []string{"ring", "fire", "sword"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNormalizeTokensDoesNotMutate(t *testing.T) {
	in := []string{"the", "ring"}
	NormalizeTokens(in)
	if in[0] != "the" || in[1] != "ring" {
		t.Fatal("NormalizeTokens mutated its input")
	}
}

func TestTokensAreLowercaseProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeIdempotentProperty(t *testing.T) {
	// Tokenizing the joined tokens must reproduce the tokens, except that
	// digit.digit tokens may re-split identically; verify full fixpoint.
	f := func(s string) bool {
		once := Tokenize(s)
		twice := Tokenize(Join(once))
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("Book", 3)
	want := []string{"boo", "ook"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got := NGrams("ab", 3); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("short string: got %v", got)
	}
	if got := NGrams("", 3); got != nil {
		t.Fatalf("empty string: got %v", got)
	}
	if got := NGrams("abc", 3); !reflect.DeepEqual(got, []string{"abc"}) {
		t.Fatalf("exact length: got %v", got)
	}
}

func TestNGramsCountProperty(t *testing.T) {
	f := func(s string) bool {
		r := []rune(s)
		grams := NGrams(s, 3)
		switch {
		case len(r) == 0:
			return grams == nil
		case len(r) <= 3:
			return len(grams) == 1
		default:
			return len(grams) == len(r)-2
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsSubsequence(t *testing.T) {
	hay := []string{"dickies", "indigo", "blue", "relaxed", "fit", "denim", "jeans"}
	cases := []struct {
		needle []string
		want   bool
	}{
		{[]string{"dickies", "jeans"}, true},
		{[]string{"fit", "jeans"}, true},
		{[]string{"denim", "jeans"}, true},
		{[]string{"indigo", "fit"}, true},
		{[]string{"jeans", "denim"}, false}, // order matters
		{[]string{"leather"}, false},
		{nil, true},
		{[]string{"dickies", "indigo", "blue", "relaxed", "fit", "denim", "jeans"}, true},
	}
	for _, c := range cases {
		if got := ContainsSubsequence(hay, c.needle); got != c.want {
			t.Errorf("ContainsSubsequence(%v) = %v, want %v", c.needle, got, c.want)
		}
	}
}

func TestContainsSubsequenceRepeatedTokens(t *testing.T) {
	if !ContainsSubsequence([]string{"a", "a"}, []string{"a", "a"}) {
		t.Fatal("repeated needle should match repeated haystack")
	}
	if ContainsSubsequence([]string{"a"}, []string{"a", "a"}) {
		t.Fatal("needle longer than available repeats must not match")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"ibm", "ibn", 1},
		{"sander", "sanders", 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenSet(t *testing.T) {
	set := TokenSet([]string{"a", "b", "a"})
	if len(set) != 2 || !set["a"] || !set["b"] {
		t.Fatalf("bad token set: %v", set)
	}
}
